(* The FSMP walk-through of the paper (Figs. 6-7 and 13).

   FSMP is an opaque compositional subroutine: it calls helpers, keeps
   intermediate results in the COMMON temporaries XY/WTDET, and aborts
   with an error message on singular elements.  Conventional inlining
   refuses it (calls + I/O); the annotation summarizes its side effects
   with the [unknown] operator and omits the error branch, letting the
   element loop parallelize with XY/WTDET privatized and the final
   iteration peeled so the globals end with their sequential values.

   Run with:  dune exec examples/fsmp_opaque.exe *)

let source =
  {fort|
      PROGRAM DYN
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED
      COMMON /ELEM/ FE(16,128), SE(16,128), IDBEGS(8), IDEDON(128)
      COMMON /WORK/ XY(2,32), WTDET(32)
      CALL SETUP
      DO 35 ISS = 1, NSS
        DO 30 K = 1, NEPS
          ID = IDBEGS(ISS) + K
          CALL FSMP(ID, K)
 30     CONTINUE
 35   CONTINUE
      S = 0.0
      DO J = 1, 128
        DO I = 1, 16
          S = S + FE(I,J) + SE(I,J)
        ENDDO
      ENDDO
      WRITE(6,*) S
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED
      COMMON /ELEM/ FE(16,128), SE(16,128), IDBEGS(8), IDEDON(128)
      NSS = 8
      NEPS = 16
      NSFE = 16
      NNPED = 24
      DO I = 1, 8
        IDBEGS(I) = (I-1) * 16
      ENDDO
      DO I = 1, 128
        IDEDON(I) = 0
      ENDDO
      END

      SUBROUTINE GETCR(ID)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED
      COMMON /WORK/ XY(2,32), WTDET(32)
      DO J = 1, NNPED
        XY(1,J) = ID * 0.5 + J
        XY(2,J) = ID * 0.25 - J
      ENDDO
      END

      SUBROUTINE SHAPE1
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED
      COMMON /WORK/ XY(2,32), WTDET(32)
      DO J = 1, NNPED
        WTDET(J) = XY(1,J) * XY(2,J)
      ENDDO
      END

      SUBROUTINE FSMP(ID, IDE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED
      COMMON /ELEM/ FE(16,128), SE(16,128), IDBEGS(8), IDEDON(128)
      COMMON /WORK/ XY(2,32), WTDET(32)
      CALL GETCR(ID)
      CALL SHAPE1
      IF (IDEDON(IDE) .EQ. 0) THEN
        IDEDON(IDE) = 1
        DO I = 1, NSFE
          SE(I, IDE) = WTDET(MOD(I-1,NNPED)+1) * 2.0
        ENDDO
      ENDIF
      WMIN = 1.0E30
      DO J = 1, NNPED
        WMIN = MIN(WMIN, WTDET(J))
      ENDDO
      IF (WMIN .LT. -1.0E20) THEN
        WRITE(6,*) ' F ELEMENT ', IDE, ' IS SINGULAR '
        STOP 'F SINGULAR'
      ENDIF
      DO I = 1, NSFE
        FE(I, ID) = WTDET(MOD(I-1,NNPED)+1) + ID
      ENDDO
      END
|fort}

(* cf. the paper's Fig. 13 *)
let annotations =
  {annot|
subroutine FSMP(ID, IDE) {
  XY = unknown(ID, NNPED);
  WTDET = unknown(XY, NNPED);
  if (IDEDON[IDE] == 0) {
    IDEDON[IDE] = 1;
    SE[1:NSFE, IDE] = unknown(WTDET, NSFE);
  }
  FE[1:NSFE, ID] = unknown(WTDET, ID, NSFE);
}
|annot}

let () =
  let program = Frontend.Resolve.parse source in
  let annots = Core.Annot_parser.parse_annotations annotations in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  print_string "Loop dispositions under annotation-based inlining:\n";
  List.iter
    (fun (rep : Parallelizer.Parallelize.loop_report) ->
      if rep.rep_unit = "DYN" then
        Printf.printf "  DO %-4s -> %s%s%s\n" rep.rep_index
          (if rep.rep_marked then "PARALLEL"
           else if rep.rep_safe then "safe"
           else "sequential (" ^ rep.rep_reason ^ ")")
          (if rep.rep_private = [] then ""
           else " private(" ^ String.concat "," rep.rep_private ^ ")")
          (if rep.rep_peeled then " [last iteration peeled]" else ""))
    r.res_reports;
  print_string "\nThe element loop (DO K) parallelizes only here: the real\n";
  print_string "FSMP has helper calls and an error branch with I/O, so both\n";
  print_string "no-inlining and conventional inlining leave it sequential.\n\n";
  List.iter
    (fun mode ->
      let r' = Core.Pipeline.run ~annots ~mode program in
      let k =
        List.exists
          (fun (rep : Parallelizer.Parallelize.loop_report) ->
            rep.rep_unit = "DYN" && rep.rep_index = "K" && rep.rep_marked)
          r'.res_reports
      in
      Printf.printf "  %-18s K loop parallel: %b\n"
        (Core.Pipeline.mode_name mode) k)
    Core.Pipeline.[ No_inlining; Conventional; Annotation_based ];
  let seq = Runtime.Interp.run_program ~threads:1 program in
  let par = Runtime.Interp.run_program ~threads:4 r.res_program in
  Printf.printf "\nsequential: %sparallel:   %sagree: %b\n" seq par
    (String.equal seq par)
