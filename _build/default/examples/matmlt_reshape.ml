(* The MATMLT walk-through of the paper (Figs. 4-5 and 16-19).

   A matrix-multiply kernel declares its parameters as flat 1-D arrays;
   the caller passes 3-D array slices.  This example shows each phase of
   the enhanced-inlining pipeline:

   1. the annotation (declaring the formals' logical 2-D shapes) is
      substituted at the call site -- references map dimension-by-
      dimension onto PP/PHIT/TM1 instead of being linearized (Fig. 18);
   2. the parallelizer puts OpenMP directives on the provably independent
      loops of the inlined region (Fig. 17);
   3. reverse inlining restores the original CALL, keeping directives
      outside the region (Fig. 19);

   and contrasts the loop counts with conventional inlining.

   Run with:  dune exec examples/matmlt_reshape.exe *)

let source =
  {fort|
      PROGRAM ARC
      COMMON /SIZES/ NP, NE
      DOUBLE PRECISION PP(64,64,15), PHIT(64,64), TM1(64,64)
      COMMON /MATS/ PP, PHIT, TM1
      CALL SETUP
      DO KS = 1, 15
        IF (KS .GT. 1) THEN
          CALL MATMLT(PP(1,1,KS-1), PHIT, TM1, NE, NE, NE)
        ENDIF
      ENDDO
      S = 0.0
      DO J = 1, 4
        DO I = 1, 4
          S = S + TM1(I,J) * I * J
        ENDDO
      ENDDO
      WRITE(6,*) S
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NP, NE
      DOUBLE PRECISION PP(64,64,15), PHIT(64,64), TM1(64,64)
      COMMON /MATS/ PP, PHIT, TM1
      NP = 64
      NE = 4
      DO K = 1, 15
        DO J = 1, 64
          DO I = 1, 64
            PP(I,J,K) = I + 2*J + 3*K
          ENDDO
        ENDDO
      ENDDO
      DO J = 1, 64
        DO I = 1, 64
          PHIT(I,J) = I - J
        ENDDO
      ENDDO
      END

      SUBROUTINE MATMLT(M1, M2, M3, L, M, N)
      DOUBLE PRECISION M1(*), M2(*), M3(*)
      DO 10 JN = 1, N
        DO 10 JL = 1, L
          M3(JL + L*(JN-1)) = 0.0
 10   CONTINUE
      DO 20 JN = 1, N
        DO 20 JM = 1, M
          DO 20 JL = 1, L
            M3(JL + L*(JN-1)) = M3(JL + L*(JN-1))
     &        + M1(JL + L*(JM-1)) * M2(JM + M*(JN-1))
 20   CONTINUE
      RETURN
      END
|fort}

let annotations =
  {annot|
subroutine MATMLT(M1, M2, M3, L, M, N) {
  dimension M1[L,M], M2[M,N], M3[L,N];
  do (JN = 1:N)
    do (JL = 1:L)
      M3[JL,JN] = 0.0;
  do (JN = 1:N)
    do (JM = 1:M)
      do (JL = 1:L)
        M3[JL,JN] = M3[JL,JN] + M1[JL,JM] * M2[JM,JN];
}
|annot}

let banner s =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') s (String.make 72 '=')

let main_unit p = Frontend.Ast.find_unit_exn p "ARC"

let () =
  let program = Frontend.Resolve.parse source in
  let annots = Core.Annot_parser.parse_annotations annotations in

  banner "PHASE 1: annotation-based inlining (cf. Fig. 18)";
  let inlined, _ = Core.Annot_inline.run ~annots program in
  print_string
    (Frontend.Pretty.program_to_string
       { Frontend.Ast.p_units = [ main_unit inlined ] });

  banner "PHASE 2: automatic parallelization (cf. Fig. 17)";
  let normalized = Core.Pipeline.normalize inlined in
  let parallelized, _ = Parallelizer.Parallelize.run normalized in
  print_string
    (Frontend.Pretty.program_to_string
       { Frontend.Ast.p_units = [ main_unit parallelized ] });

  banner "PHASE 3: reverse inlining (cf. Fig. 19)";
  let restored, stats =
    Core.Reverse.run ~cfg:Core.Annot_inline.default_config ~annots parallelized
  in
  print_string
    (Frontend.Pretty.program_to_string
       { Frontend.Ast.p_units = [ main_unit restored ] });
  Printf.printf "regions matched: %d, fallbacks: %d\n" stats.matched
    (List.length stats.fallback);

  banner
    "COMPARISON: conventional inlining bloats the caller; annotation-based\n\
     inlining restores the original code (directives aside)";
  let base = Core.Pipeline.run ~mode:Core.Pipeline.No_inlining program in
  List.iter
    (fun mode ->
      let r = Core.Pipeline.run ~annots ~mode program in
      let par, loss, extra = Core.Pipeline.table2_counts ~baseline:base r in
      Printf.printf "  %-18s par=%d loss=%d extra=%d size=%d\n"
        (Core.Pipeline.mode_name mode) par loss extra r.res_code_size)
    Core.Pipeline.[ No_inlining; Conventional; Annotation_based ];

  banner "EXECUTION";
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  let seq = Runtime.Interp.run_program ~threads:1 program in
  let par = Runtime.Interp.run_program ~threads:4 r.res_program in
  Printf.printf "sequential: %sparallel:   %sagree: %b\n" seq par
    (String.equal seq par)
