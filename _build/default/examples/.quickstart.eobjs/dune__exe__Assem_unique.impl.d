examples/assem_unique.ml: Core Frontend List Parallelizer Printf Runtime String
