examples/assem_unique.mli:
