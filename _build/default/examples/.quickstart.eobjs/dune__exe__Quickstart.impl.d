examples/quickstart.ml: Core Frontend List Parallelizer Printf Runtime String
