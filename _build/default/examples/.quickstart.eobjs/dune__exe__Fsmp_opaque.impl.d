examples/fsmp_opaque.ml: Core Frontend List Parallelizer Printf Runtime String
