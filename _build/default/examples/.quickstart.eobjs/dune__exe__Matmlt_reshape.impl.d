examples/matmlt_reshape.ml: Core Frontend List Parallelizer Printf Runtime String
