examples/matmlt_reshape.mli:
