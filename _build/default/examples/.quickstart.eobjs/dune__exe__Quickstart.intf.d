examples/quickstart.mli:
