examples/fsmp_opaque.mli:
