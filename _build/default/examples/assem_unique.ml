(* The ASSEM walk-through of the paper (Figs. 10-11 and 14).

   ASSEM scatters element contributions through the one-to-one index
   arrays ICOND/IWHERD: the subscripts are non-linear, so no dependence
   test can parallelize the surrounding loop.  The developer knows the
   maps are injective and says so with [unique(IN, ID)]; the lowering
   replaces the operator with an injective linear combination the
   dependence tests can analyze, and the element loop parallelizes.

   Run with:  dune exec examples/assem_unique.exe *)

let source =
  {fort|
      PROGRAM TRK
      COMMON /SIZES/ NELEM
      COMMON /MESH/ ICOND(2,128), IWHERD(2,128), RHSB(512), RHSI(512)
      COMMON /LOADS/ PE(8,128)
      CALL SETUP
      DO 40 IN = 1, 2
        DO 30 ID = 1, NELEM
          CALL ASSEM(ID, IN)
 30     CONTINUE
 40   CONTINUE
      S = 0.0
      DO I = 1, 512
        S = S + RHSB(I) + RHSI(I)
      ENDDO
      WRITE(6,*) S
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NELEM
      COMMON /MESH/ ICOND(2,128), IWHERD(2,128), RHSB(512), RHSI(512)
      COMMON /LOADS/ PE(8,128)
      NELEM = 128
      DO I = 1, 128
        ICOND(1,I) = 2*I - 1
        ICOND(2,I) = 2*I
        IWHERD(1,I) = 256 + 2*I - 1
        IWHERD(2,I) = 256 + 2*I
      ENDDO
      DO J = 1, 128
        DO I = 1, 8
          PE(I,J) = I * 0.5 + J
        ENDDO
      ENDDO
      DO I = 1, 512
        RHSB(I) = 0.0
        RHSI(I) = 0.0
      ENDDO
      END

      SUBROUTINE ASSEM(ID, IN)
      COMMON /SIZES/ NELEM
      COMMON /MESH/ ICOND(2,128), IWHERD(2,128), RHSB(512), RHSI(512)
      COMMON /LOADS/ PE(8,128)
      RHSB(ICOND(IN,ID)) = PE(IN,ID) * 2.0
      RHSI(IWHERD(IN,ID) - 256) = PE(IN,ID) + 1.0
      END
|fort}

(* cf. the paper's Fig. 14: the unique() declaration encodes the
   developer's knowledge that ICOND/IWHERD are one-to-one maps. *)
let annotations =
  {annot|
subroutine ASSEM(ID, IN) {
  RHSB[unique(IN, ID)] = unknown(PE[IN,ID]);
  RHSI[unique(IN, ID)] = unknown(PE[IN,ID]);
}
|annot}

let () =
  let program = Frontend.Resolve.parse source in
  let annots = Core.Annot_parser.parse_annotations annotations in
  Printf.printf "ID-loop disposition per configuration:\n";
  List.iter
    (fun mode ->
      let r = Core.Pipeline.run ~annots ~mode program in
      let status =
        match
          List.find_opt
            (fun (rep : Parallelizer.Parallelize.loop_report) ->
              rep.rep_unit = "TRK" && rep.rep_index = "ID")
            r.res_reports
        with
        | Some rep when rep.rep_marked -> "PARALLEL"
        | Some rep when rep.rep_safe -> "safe"
        | Some rep -> "sequential (" ^ rep.rep_reason ^ ")"
        | None -> "?"
      in
      Printf.printf "  %-18s %s\n" (Core.Pipeline.mode_name mode) status)
    Core.Pipeline.[ No_inlining; Conventional; Annotation_based ];
  print_string
    "\nConventional inlining substitutes the real body, but the\n\
     RHSB(ICOND(IN,ID)) subscript is a subscripted subscript: the loop\n\
     stays sequential.  The unique() annotation gives the compiler the\n\
     injectivity it cannot infer.\n\n";
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  let seq = Runtime.Interp.run_program ~threads:1 program in
  let par = Runtime.Interp.run_program ~threads:4 r.res_program in
  Printf.printf "sequential: %sparallel:   %sagree: %b\n" seq par
    (String.equal seq par)
