(* Quickstart: compile a small Fortran program under the three inlining
   configurations, compare what gets parallelized, and execute the
   annotation-based result across domains.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {fort|
      PROGRAM DEMO
      COMMON /SIZES/ N
      DIMENSION A(4096), OUT(64)
      CALL SETUP(A)
      DO 10 I = 1, 64
        CALL ROWSUM(I, A, OUT)
 10   CONTINUE
      TOTAL = 0.0
      DO I = 1, 64
        TOTAL = TOTAL + OUT(I)
      ENDDO
      WRITE(6,*) TOTAL
      END

      SUBROUTINE SETUP(A)
      DIMENSION A(*)
      COMMON /SIZES/ N
      N = 64
      DO I = 1, 4096
        A(I) = MOD(I, 17) * 0.25
      ENDDO
      END

      SUBROUTINE ROWSUM(I, A, OUT)
      DIMENSION A(*), OUT(*)
      COMMON /SIZES/ N
      S = 0.0
      DO K = 1, N
        S = S + A((I-1)*64 + K)
      ENDDO
      IF (S .LT. 0.0) THEN
        WRITE(6,*) ' ROWSUM: NEGATIVE ', I
        STOP 'ROWSUM'
      ENDIF
      OUT(I) = S
      END
|fort}

(* The annotation summarizes ROWSUM: it reads a row of A and writes one
   element of OUT.  The error-checking branch is deliberately omitted
   (Section III-B.3 of the paper). *)
let annotations =
  {annot|
subroutine ROWSUM(I, A, OUT) {
  dimension A[4096], OUT[64];
  OUT[I] = unknown(A[I], I, N);
}
|annot}

let () =
  let program = Frontend.Resolve.parse source in
  let annots = Core.Annot_parser.parse_annotations annotations in
  Printf.printf "Loops parallelized per configuration:\n";
  let results =
    List.map
      (fun mode ->
        let r = Core.Pipeline.run ~annots ~mode program in
        Printf.printf "  %-18s %d parallel loops, %d output lines\n"
          (Core.Pipeline.mode_name mode)
          (List.length r.res_marked) r.res_code_size;
        (mode, r))
      Core.Pipeline.[ No_inlining; Conventional; Annotation_based ]
  in
  let _, annotated = List.nth results 2 in
  print_newline ();
  List.iter
    (fun (rep : Parallelizer.Parallelize.loop_report) ->
      Printf.printf "  [%s] DO %s -> %s%s\n" rep.rep_unit rep.rep_index
        (if rep.rep_marked then "PARALLEL"
         else if rep.rep_safe then "safe (not profitable)"
         else "sequential (" ^ rep.rep_reason ^ ")")
        (if rep.rep_private = [] then ""
         else " private(" ^ String.concat "," rep.rep_private ^ ")"))
    annotated.res_reports;
  print_newline ();
  print_string "Optimized source (annotation-based):\n\n";
  print_string (Frontend.Pretty.program_to_string annotated.res_program);
  let seq = Runtime.Interp.run_program ~threads:1 program in
  let par = Runtime.Interp.run_program ~threads:4 annotated.res_program in
  Printf.printf "\noriginal (sequential) output: %s" seq;
  Printf.printf "optimized (4 domains) output: %s" par;
  Printf.printf "outputs agree: %b\n" (String.equal seq par)
