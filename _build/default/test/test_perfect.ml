(** Suite-level integration tests: every PERFECT benchmark parses,
    validates, runs identically under all three pipelines (sequentially
    and across domains), and reproduces the paper's Table II shape. *)

open Helpers

let ci = Alcotest.(check int)
let cb = Alcotest.(check bool)

let test_twelve_benchmarks () =
  ci "twelve applications" 12 (List.length Perfect.Suite.all)

let test_parse_validate b () =
  let p = Perfect.Bench_def.parse b in
  cb "has MAIN" true
    (List.exists (fun u -> u.Frontend.Ast.u_kind = Frontend.Ast.Main)
       p.Frontend.Ast.p_units);
  ci (b.Perfect.Bench_def.name ^ " validator issues") 0
    (List.length (Frontend.Validate.check p));
  ignore (Perfect.Bench_def.annots b)

let test_outputs_agree b () =
  cb (b.Perfect.Bench_def.name ^ " outputs agree across configs") true
    (Perfect.Experiment.outputs_agree ~threads:3 b)

let test_row_invariants b () =
  let row = Perfect.Experiment.table2_row b in
  (* annotation-based inlining never loses loops (the paper's claim) *)
  ci (b.Perfect.Bench_def.name ^ " annot loss") 0 row.t2_annotation.m_loss;
  cb "annot par >= baseline" true
    (row.t2_annotation.m_par >= row.t2_no_inline.m_par);
  cb "conventional extra <= annotation extra" true
    (row.t2_conventional.m_extra <= row.t2_annotation.m_extra);
  (* annotation-based output size ~ input + directives, never smaller *)
  cb "annot size >= baseline" true
    (row.t2_annotation.m_size >= row.t2_no_inline.m_size)

let test_reverse_all_matched b () =
  if String.trim b.Perfect.Bench_def.annotations <> "" then begin
    let r =
      Core.Pipeline.run
        ~annots:(Perfect.Bench_def.annots b)
        ~mode:Core.Pipeline.Annotation_based
        (Perfect.Bench_def.parse b)
    in
    match r.res_reverse_stats with
    | Some st ->
        ci (b.Perfect.Bench_def.name ^ " fallbacks") 0 (List.length st.fallback);
        ci (b.Perfect.Bench_def.name ^ " extraction mismatches") 0
          st.extracted_mismatch
    | None -> Alcotest.fail "reverse stats missing"
  end

let test_aggregate_shape () =
  let rows = List.map Perfect.Experiment.table2_row Perfect.Suite.all in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let loss = sum (fun r -> r.Perfect.Experiment.t2_conventional.m_loss) in
  let cextra = sum (fun r -> r.Perfect.Experiment.t2_conventional.m_extra) in
  let aextra = sum (fun r -> r.Perfect.Experiment.t2_annotation.m_extra) in
  ci "paper: conventional #par-loss = 90" 90 loss;
  ci "paper: conventional #par-extra = 12" 12 cextra;
  ci "paper: annotation #par-extra = 37" 37 aextra;
  let gainers =
    List.length
      (List.filter
         (fun r -> r.Perfect.Experiment.t2_annotation.m_extra > 0)
         rows)
  in
  ci "paper: 6 of 12 benchmarks improve" 6 gainers;
  let bsize = sum (fun r -> r.Perfect.Experiment.t2_no_inline.m_size) in
  let csize = sum (fun r -> r.Perfect.Experiment.t2_conventional.m_size) in
  cb "paper: conventional code grows (~10%)" true
    (csize > bsize && float_of_int csize < 1.3 *. float_of_int bsize)

let test_tuning_keeps_output () =
  let b = Perfect.Mdg.bench in
  let program = Perfect.Bench_def.parse b in
  let annots = Perfect.Bench_def.annots b in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  let tuned = Perfect.Experiment.tune ~threads:4 r.res_program in
  Alcotest.(check string)
    "tuned output" (run_str b.source)
    (Runtime.Interp.run_program ~threads:4 tuned)

let test_projection_bounds () =
  let b = Perfect.Trfd.bench in
  let r =
    Core.Pipeline.run
      ~annots:(Perfect.Bench_def.annots b)
      ~mode:Core.Pipeline.Annotation_based
      (Perfect.Bench_def.parse b)
  in
  let t = Perfect.Experiment.projected_time ~threads:4 r.res_program in
  cb "projection positive" true (t > 0.0)

let per_bench name f =
  List.map
    (fun (b : Perfect.Bench_def.t) ->
      (Printf.sprintf "%s: %s" name b.name, `Quick, f b))
    Perfect.Suite.all

let suite =
  [ ("suite: 12 benchmarks", `Quick, test_twelve_benchmarks) ]
  @ per_bench "parse+validate" test_parse_validate
  @ per_bench "outputs agree" test_outputs_agree
  @ per_bench "row invariants" test_row_invariants
  @ per_bench "reverse matched" test_reverse_all_matched
  @ [
      ("aggregate Table II shape", `Quick, test_aggregate_shape);
      ("tuning keeps output", `Quick, test_tuning_keeps_output);
      ("projection bounded", `Quick, test_projection_bounds);
    ]
