(** Heap-state validation: beyond printed output, the full final COMMON
    state of the optimized parallel runs must match the original
    sequential run element-by-element (with a tolerance only for values
    produced by reassociated reductions). *)

open Helpers

let cb = Alcotest.(check bool)

let states_agree s1 s2 =
  List.length s1 = List.length s2
  && List.for_all2
       (fun (k1, (a1 : float array)) (k2, a2) ->
         String.equal k1 k2
         && Array.length a1 = Array.length a2
         &&
         let ok = ref true in
         Array.iteri
           (fun i x ->
             let y = a2.(i) in
             if
               not
                 (Float.abs (x -. y)
                 <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
                 )
             then ok := false)
           a1;
         !ok)
       s1 s2

let check_bench (b : Perfect.Bench_def.t) () =
  let program = Perfect.Bench_def.parse b in
  let annots = Perfect.Bench_def.annots b in
  let _, ref_state = Runtime.Interp.run_program_state ~threads:1 program in
  List.iter
    (fun mode ->
      let r = Core.Pipeline.run ~annots ~mode program in
      let _, seq_state =
        Runtime.Interp.run_program_state ~threads:1 r.res_program
      in
      let _, par_state =
        Runtime.Interp.run_program_state ~threads:3 r.res_program
      in
      cb
        (Printf.sprintf "%s %s sequential state" b.name
           (Core.Pipeline.mode_name mode))
        true
        (states_agree ref_state seq_state);
      cb
        (Printf.sprintf "%s %s parallel state" b.name
           (Core.Pipeline.mode_name mode))
        true
        (states_agree ref_state par_state))
    Core.Pipeline.[ No_inlining; Conventional; Annotation_based ]

let test_state_differs_on_change () =
  (* the checker is not vacuous: different programs yield different states *)
  let s1 =
    snd
      (Runtime.Interp.run_program_state
         (parse
            "      PROGRAM T\n      COMMON /C/ A(4)\n      A(1) = 1.0\n      END\n"))
  in
  let s2 =
    snd
      (Runtime.Interp.run_program_state
         (parse
            "      PROGRAM T\n      COMMON /C/ A(4)\n      A(1) = 2.0\n      END\n"))
  in
  cb "distinct states detected" false (states_agree s1 s2)

let suite =
  [
    ("state checker is not vacuous", `Quick, test_state_differs_on_change);
    ("DYFESM heap state (peeling-heavy)", `Quick, check_bench Perfect.Dyfesm.bench);
    ("MDG heap state", `Quick, check_bench Perfect.Mdg.bench);
    ("TRACK heap state (unique scatters)", `Quick, check_bench Perfect.Track.bench);
    ("FLO52Q heap state (linearization)", `Quick, check_bench Perfect.Flo52q.bench);
  ]
