(** Core tests: annotation language parsing, annotation-based inlining
    (unknown/unique lowering, dimension-preserving argument mapping),
    reverse inlining (matching, actual extraction, fallbacks), and the
    three-phase pipeline. *)

open Frontend
open Helpers

let ci = Alcotest.(check int)
let cs = Alcotest.(check string)
let cb = Alcotest.(check bool)

(* ---------------- annotation parser ---------------- *)

let fsmp_annot =
  {|subroutine FSMP(ID, IDE) {
      XY = unknown(XYG[1, ICOND[1, ID]], NSYMM);
      IRECT = IEGEOM[ID];
      ISTRES = 0;
      if (IDEDON[IDE] == 0) {
        IDEDON[IDE] = 1;
        FE[1:NSFE, IDE] = unknown(WTDET, NSFE);
      }
      do (JN = 1:N)
        do (JM = 1:M)
          M3[JN,JM] = 0.0;
      dimension M1[L,M];
      RHSB[unique(IN, ID)] = unknown(PE[IN, ID]);
    }|}

let test_annot_parse () =
  let a = Core.Annot_parser.parse_annotation fsmp_annot in
  cs "name" "FSMP" a.an_name;
  Alcotest.(check (list string)) "params" [ "ID"; "IDE" ] a.an_params;
  ci "statement count" 7 (List.length a.an_body);
  ci "do count" 2 (Core.Annot_ast.count_dos (Core.Annot_ast.ABlock a.an_body))

let test_annot_parse_dims () =
  let a = Core.Annot_parser.parse_annotation fsmp_annot in
  match Core.Annot_ast.declared_dims a with
  | [ ("M1", [ _; _ ]) ] -> ()
  | _ -> Alcotest.fail "dimension declaration"

let test_annot_parse_multi () =
  let src = "subroutine A(X) { X = unknown(X); }\nsubroutine B() { Y = 1; }" in
  ci "two annotations" 2 (List.length (Core.Annot_parser.parse_annotations src))

let test_annot_parse_error () =
  try
    ignore (Core.Annot_parser.parse_annotation "subroutine X { garbage !!");
    Alcotest.fail "accepted garbage"
  with Core.Annot_parser.Annot_parse_error _ -> ()

(* ---------------- annotation-based inlining ---------------- *)

let matmlt_src =
  "      PROGRAM T\n      COMMON /S/ NE\n      DIMENSION PP(8,8,4), PHIT(8,8), TM1(8,8)\n      NE = 4\n      DO KS = 2, 4\n        CALL MATMLT(PP(1,1,KS-1), PHIT, TM1, NE, NE, NE)\n      ENDDO\n      WRITE(6,*) TM1(1,1)\n      END\n      SUBROUTINE MATMLT(M1, M2, M3, L, M, N)\n      DIMENSION M1(*), M2(*), M3(*)\n      DO 10 JN = 1, N\n        DO 10 JL = 1, L\n          M3(JL + L*(JN-1)) = 0.0\n 10   CONTINUE\n      DO 20 JN = 1, N\n        DO 20 JM = 1, M\n          DO 20 JL = 1, L\n            M3(JL + L*(JN-1)) = M3(JL + L*(JN-1)) + M1(JL + L*(JM-1)) * M2(JM + M*(JN-1))\n 20   CONTINUE\n      END\n"

let matmlt_annot =
  {|subroutine MATMLT(M1, M2, M3, L, M, N) {
      dimension M1[L,M], M2[M,N], M3[L,N];
      do (JN = 1:N)
        do (JL = 1:L)
          M3[JL,JN] = 0.0;
      do (JN = 1:N)
        do (JM = 1:M)
          do (JL = 1:L)
            M3[JL,JN] = M3[JL,JN] + M1[JL,JM] * M2[JM,JN];
    }|}

let test_annot_inline_dimension_mapping () =
  (* Fig. 18: M1[i,j] with actual PP(1,1,KS-1) becomes PP(i,j,KS-1) *)
  let program = parse matmlt_src in
  let annots = Core.Annot_parser.parse_annotations matmlt_annot in
  let p, st = Core.Annot_inline.run ~annots program in
  ci "one site" 1 (List.length st.sites);
  let main = Ast.find_unit_exn p "T" in
  let found = ref false in
  ignore
    (Ast.map_exprs_in_stmts
       (fun e ->
         (match e with
         | Ast.Array_ref ("PP", [ _; _; _ ]) -> found := true
         | _ -> ());
         e)
       main.u_body);
  cb "PP referenced with full rank inside region" true !found

let test_annot_inline_unknown_lowering () =
  let program =
    parse
      "      PROGRAM T\n      COMMON /W/ XY(8)\n      DO K = 1, 8\n        CALL OP(K)\n      ENDDO\n      END\n      SUBROUTINE OP(K)\n      COMMON /W/ XY(8)\n      XY(K) = K\n      END\n"
  in
  let annots =
    Core.Annot_parser.parse_annotations
      "subroutine OP(K) { XY = unknown(K, XY); }"
  in
  let p, _ = Core.Annot_inline.run ~annots program in
  let main = Ast.find_unit_exn p "T" in
  (* the lowering creates a fresh UNKANN array: stores then a read *)
  let unk_decl =
    List.exists
      (fun (d : Ast.decl) ->
        String.length d.d_name >= 6 && String.sub d.d_name 0 6 = "UNKANN")
      main.u_decls
  in
  cb "UNKANN declared" true unk_decl

let test_annot_inline_unique_lowering () =
  let program =
    parse
      "      PROGRAM T\n      COMMON /G/ R(70000)\n      DO ID = 1, 8\n        CALL SC(ID)\n      ENDDO\n      WRITE(6,*) R(1)\n      END\n      SUBROUTINE SC(ID)\n      COMMON /G/ R(70000)\n      R(2*ID) = ID\n      END\n"
  in
  let annots =
    Core.Annot_parser.parse_annotations
      "subroutine SC(ID) { R[unique(1, ID)] = unknown(ID); }"
  in
  let p, _ = Core.Annot_inline.run ~annots program in
  let main = Ast.find_unit_exn p "T" in
  (* unique(1, ID) lowers to 1 + radix*ID *)
  let found = ref false in
  ignore
    (Ast.map_exprs_in_stmts
       (fun e ->
         (match e with
         | Ast.Binop (Ast.Add, Ast.Int_const 1, Ast.Binop (Ast.Mul, Ast.Int_const 1024, Ast.Var "ID")) ->
             found := true
         | _ -> ());
         e)
       main.u_body);
  cb "radix lowering" true !found

let test_annot_skip_records_reason () =
  let program =
    parse
      "      PROGRAM T\n      DO K = 1, 8\n        CALL OP(K, 1)\n      ENDDO\n      END\n      SUBROUTINE OP(K, J)\n      COMMON /W/ XY(8)\n      XY(K) = J\n      END\n"
  in
  (* annotation has wrong arity: site skipped, call preserved *)
  let annots =
    Core.Annot_parser.parse_annotations "subroutine OP(K) { XY = unknown(K); }"
  in
  let p, st = Core.Annot_inline.run ~annots program in
  ci "skipped" 1 (List.length st.skipped);
  let main = Ast.find_unit_exn p "T" in
  cb "call preserved" true (Analysis.Usedef.calls main.u_body <> [])

(* ---------------- full pipeline + reverse inlining ---------------- *)

let test_pipeline_matmlt_end_to_end () =
  let program = parse matmlt_src in
  let annots = Core.Annot_parser.parse_annotations matmlt_annot in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  (* reverse inlining restored the CALL *)
  let main = Ast.find_unit_exn r.res_program "T" in
  (match Analysis.Usedef.calls main.u_body with
  | [ ("MATMLT", args) ] -> ci "six actuals" 6 (List.length args)
  | _ -> Alcotest.fail "call not restored");
  (* no tagged regions or compiler temporaries survive *)
  let clean =
    Ast.fold_stmts
      (fun acc s -> acc && match s.Ast.node with Ast.Tagged _ -> false | _ -> true)
      true main.u_body
  in
  cb "no tags remain" true clean;
  (match r.res_reverse_stats with
  | Some st ->
      cb "everything matched" true (st.fallback = []);
      ci "no extraction mismatch" 0 st.extracted_mismatch
  | None -> Alcotest.fail "no reverse stats");
  (* semantics *)
  cs "output" (run_str matmlt_src)
    (Runtime.Interp.run_program ~threads:4 r.res_program)

let test_pipeline_annotation_size_restored () =
  (* code size after annotation-based inlining ~ original (directives only) *)
  let program = parse matmlt_src in
  let annots = Core.Annot_parser.parse_annotations matmlt_annot in
  let base = Core.Pipeline.run ~annots ~mode:Core.Pipeline.No_inlining program in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  cb "size unchanged up to peeling" true
    (abs (r.res_code_size - base.res_code_size) * 10 <= base.res_code_size)

let test_reverse_extracts_forward_substituted_actual () =
  (* ID = IDB(S) + K is forward-substituted into the region; unification
     must still recover a correct actual *)
  let src =
    "      PROGRAM T\n      COMMON /M/ IDB(4), FE(16,64)\n      IDB(2) = 7\n      DO K = 1, 8\n        ID = IDB(2) + K\n        CALL EL(ID)\n      ENDDO\n      WRITE(6,*) FE(1,9)\n      END\n      SUBROUTINE EL(ID)\n      COMMON /M/ IDB(4), FE(16,64)\n      DO I = 1, 16\n        FE(I,ID) = I + ID\n      ENDDO\n      END\n"
  in
  let annots =
    Core.Annot_parser.parse_annotations
      "subroutine EL(ID) { do (I = 1:16) FE[I,ID] = unknown(I, ID); }"
  in
  let program = parse src in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program
  in
  (match r.res_reverse_stats with
  | Some st -> cb "matched" true (st.matched >= 1 && st.fallback = [])
  | None -> Alcotest.fail "no stats");
  (* the K loop is the paper's gain *)
  let k_marked =
    List.exists
      (fun (rep : Parallelizer.Parallelize.loop_report) ->
        rep.rep_unit = "T" && rep.rep_index = "K" && rep.rep_marked)
      r.res_reports
  in
  cb "K loop parallelized" true k_marked;
  cs "output preserved" (run_str src)
    (Runtime.Interp.run_program ~threads:4 r.res_program)

let test_reverse_fallback_on_unregistered () =
  (* a tagged region whose annotation disappears still reverts via the
     recorded actuals *)
  let program = parse matmlt_src in
  let annots = Core.Annot_parser.parse_annotations matmlt_annot in
  let p, _ = Core.Annot_inline.run ~annots program in
  let p, st = Core.Reverse.run ~cfg:Core.Annot_inline.default_config ~annots:[] p in
  ci "fallback used" 1 (List.length st.fallback);
  let main = Ast.find_unit_exn p "T" in
  cb "call restored anyway" true (Analysis.Usedef.calls main.u_body <> [])

let test_pipeline_modes_distinct () =
  (* sanity: the three modes differ in the expected direction on MDG *)
  let b = Perfect.Mdg.bench in
  let program = Perfect.Bench_def.parse b in
  let annots = Perfect.Bench_def.annots b in
  let base = Core.Pipeline.run ~annots ~mode:Core.Pipeline.No_inlining program in
  let conv = Core.Pipeline.run ~annots ~mode:Core.Pipeline.Conventional program in
  let ann = Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based program in
  let n r = List.length r.Core.Pipeline.res_marked in
  cb "annotation finds most" true (n ann > n base);
  cb "conventional loses" true (n conv < n base + 3)

let suite =
  [
    ("annot: parse FSMP", `Quick, test_annot_parse);
    ("annot: dimension decls", `Quick, test_annot_parse_dims);
    ("annot: multiple subroutines", `Quick, test_annot_parse_multi);
    ("annot: parse error", `Quick, test_annot_parse_error);
    ("inline: dimension mapping", `Quick, test_annot_inline_dimension_mapping);
    ("inline: unknown lowering", `Quick, test_annot_inline_unknown_lowering);
    ("inline: unique lowering", `Quick, test_annot_inline_unique_lowering);
    ("inline: skip + preserve call", `Quick, test_annot_skip_records_reason);
    ("pipeline: MATMLT end-to-end", `Quick, test_pipeline_matmlt_end_to_end);
    ("pipeline: size restored", `Quick, test_pipeline_annotation_size_restored);
    ("reverse: forward-substituted actuals", `Quick,
     test_reverse_extracts_forward_substituted_actual);
    ("reverse: fallback", `Quick, test_reverse_fallback_on_unregistered);
    ("pipeline: mode ordering", `Quick, test_pipeline_modes_distinct);
  ]
