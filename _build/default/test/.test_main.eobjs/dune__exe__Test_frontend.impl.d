test/test_frontend.ml: Alcotest Ast Frontend Helpers Lexer List Option Parser Perfect Pretty String Validate
