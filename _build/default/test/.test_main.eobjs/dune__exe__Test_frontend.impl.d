test/test_frontend.ml: Alcotest Ast Diag Frontend Helpers Lexer List Option Perfect Pretty String Validate
