test/test_analysis.ml: Alcotest Analysis Ast Constprop Forward_subst Frontend Helpers Induction List Poly Pretty QCheck QCheck_alcotest Runtime Sections Simplify Usedef
