test/test_runtime.ml: Alcotest Array Core Helpers List Mutex Parallelizer Runtime
