test/test_state.ml: Alcotest Array Core Float Helpers List Perfect Printf Runtime String
