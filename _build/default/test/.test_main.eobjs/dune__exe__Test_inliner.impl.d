test/test_inliner.ml: Alcotest Analysis Ast Core Frontend Helpers Inliner List Option Perfect Printf Runtime String
