test/test_perfect.ml: Alcotest Core Frontend Helpers List Perfect Printf Runtime String
