test/test_experiment.ml: Alcotest Core Frontend Helpers List Parallelizer Perfect Printf QCheck QCheck_alcotest Runtime String
