test/test_core.ml: Alcotest Analysis Ast Core Frontend Helpers List Parallelizer Perfect Runtime String
