test/test_soundness.ml: Buffer Core Float Helpers Inliner List Printf QCheck QCheck_alcotest Runtime String
