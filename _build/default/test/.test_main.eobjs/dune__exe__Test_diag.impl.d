test/test_diag.ml: Alcotest Core Frontend Helpers List Perfect Runtime String
