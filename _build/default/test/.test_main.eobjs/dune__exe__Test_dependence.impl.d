test/test_dependence.ml: Alcotest Core Helpers List Parallelizer Runtime
