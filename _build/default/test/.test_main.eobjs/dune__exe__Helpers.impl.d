test/helpers.ml: Alcotest Ast Core Format Frontend List Parallelizer Pretty Printf Resolve Runtime String
