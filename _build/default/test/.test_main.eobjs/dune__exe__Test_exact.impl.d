test/test_exact.ml: Alcotest Core Dependence Direction Fourier_motzkin Frontend Helpers List Parallelizer QCheck QCheck_alcotest Rational Runtime
