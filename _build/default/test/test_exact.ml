(** Tests for the exact dependence machinery: rational arithmetic,
    Fourier-Motzkin elimination, direction vectors, and purity analysis. *)

open Dependence
open Helpers

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

(* ---------------- Rational ---------------- *)

module Q = Rational

let test_rational_basics () =
  cb "1/2 + 1/3 = 5/6" true (Q.equal (Q.add (Q.make 1 2) (Q.make 1 3)) (Q.make 5 6));
  cb "normalizes sign" true (Q.equal (Q.make 1 (-2)) (Q.make (-1) 2));
  cb "reduces" true (Q.equal (Q.make 6 4) (Q.make 3 2));
  cb "mul" true (Q.equal (Q.mul (Q.make 2 3) (Q.make 3 4)) (Q.make 1 2));
  cb "div" true (Q.equal (Q.div (Q.make 1 2) (Q.make 1 4)) (Q.of_int 2));
  ci "sign" (-1) (Q.sign (Q.make (-3) 7));
  cb "compare" true (Q.compare (Q.make 1 3) (Q.make 1 2) < 0)

let arb_small = QCheck.int_range (-30) 30

let prop_rational_field =
  QCheck.Test.make ~count:200 ~name:"rational: (a/b)*(b/a) = 1"
    (QCheck.pair arb_small arb_small) (fun (a, b) ->
      QCheck.assume (a <> 0 && b <> 0);
      Q.equal (Q.mul (Q.make a b) (Q.make b a)) Q.one)

let prop_rational_addsub =
  QCheck.Test.make ~count:200 ~name:"rational: a + b - b = a"
    (QCheck.triple arb_small arb_small arb_small) (fun (a, b, c) ->
      QCheck.assume (c <> 0);
      let x = Q.make a c and y = Q.make b c in
      Q.equal (Q.sub (Q.add x y) y) x)

(* ---------------- Fourier-Motzkin ---------------- *)

module FM = Fourier_motzkin

let test_fm_simple_infeasible () =
  (* x >= 3 /\ x <= 2 *)
  let cs =
    [
      FM.make_constr [ ("X", Q.one) ] (Q.of_int (-3));
      FM.make_constr [ ("X", Q.neg Q.one) ] (Q.of_int 2);
    ]
  in
  cb "3 <= x <= 2 infeasible" true (FM.solve cs = FM.Infeasible)

let test_fm_simple_feasible () =
  let cs =
    [
      FM.make_constr [ ("X", Q.one) ] (Q.of_int (-1));
      FM.make_constr [ ("X", Q.neg Q.one) ] (Q.of_int 5);
    ]
  in
  cb "1 <= x <= 5 feasible" true (FM.solve cs = FM.Maybe_feasible)

let test_fm_coupled () =
  (* x + y >= 10, x <= 4, y <= 4 : infeasible *)
  let cs =
    [
      FM.make_constr [ ("X", Q.one); ("Y", Q.one) ] (Q.of_int (-10));
      FM.make_constr [ ("X", Q.neg Q.one) ] (Q.of_int 4);
      FM.make_constr [ ("Y", Q.neg Q.one) ] (Q.of_int 4);
    ]
  in
  cb "x+y>=10 with x,y<=4 infeasible" true (FM.solve cs = FM.Infeasible)

let test_fm_equation_feasible () =
  (* 2x - y = 1 with x in [0,5], y in [0,5]: solvable (x=1,y=1) *)
  let v =
    FM.equation_feasible
      ~coeffs:[ ("X", 2); ("Y", -1) ]
      ~c0:(-1)
      ~bounds:[ ("X", [ FM.Lower 0; FM.Upper 5 ]); ("Y", [ FM.Lower 0; FM.Upper 5 ]) ]
  in
  cb "2x - y = 1 feasible" true (v = FM.Maybe_feasible)

let test_fm_equation_infeasible () =
  (* x + y = 100 with x,y in [0,5] *)
  let v =
    FM.equation_feasible
      ~coeffs:[ ("X", 1); ("Y", 1) ]
      ~c0:(-100)
      ~bounds:[ ("X", [ FM.Lower 0; FM.Upper 5 ]); ("Y", [ FM.Lower 0; FM.Upper 5 ]) ]
  in
  cb "x + y = 100 infeasible" true (v = FM.Infeasible)

let prop_fm_point_feasible =
  (* a system built around a known integer point is never Infeasible *)
  QCheck.Test.make ~count:200 ~name:"fm: systems with a witness are feasible"
    (QCheck.triple (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5)
       (QCheck.pair (QCheck.int_range (-4) 4) (QCheck.int_range (-4) 4)))
    (fun (x0, y0, (a, b)) ->
      let c0 = -((a * x0) + (b * y0)) in
      FM.equation_feasible
        ~coeffs:[ ("X", a); ("Y", b) ]
        ~c0
        ~bounds:
          [
            ("X", [ FM.Lower (x0 - 2); FM.Upper (x0 + 2) ]);
            ("Y", [ FM.Lower (y0 - 2); FM.Upper (y0 + 2) ]);
          ]
      = FM.Maybe_feasible)

(* FM catches a coupled case Banerjee misses: write A(I+J), read A(I+J+5)
   inside I,J both in [1,3]: per-variable intervals of the difference
   (-D_I - D_J - 5 ... ) still straddle 0 if treated independently with
   loose bounds, but the conjunction has no solution. *)
let test_fm_dependence_integration () =
  check_status
    ("      PROGRAM T\n      DIMENSION A(100)\n      DO I = 1, 8\n        A(2*I) = A(2*I + 9) + 1.0\n      ENDDO\n      WRITE(6,*) A(1)\n      END\n")
    "T" "I" "parallel"
(* difference 2D = +-9: GCD(2) does not divide 9 -> caught by GCD; also
   exercise a genuinely-FM case below *)

let test_fm_bounded_distance () =
  (* write A(I), read A(I+12), I in [1,10]: D = 12 > trip-1 = 9 *)
  check_status
    ("      PROGRAM T\n      DIMENSION A(100)\n      DO I = 1, 10\n        A(I) = A(I + 12) + 1.0\n      ENDDO\n      WRITE(6,*) A(1)\n      END\n")
    "T" "I" "parallel"

(* ---------------- direction vectors ---------------- *)

let nest2 =
  [
    { Direction.nindex = "I"; nlo = Frontend.Ast.Int_const 1; nhi = Frontend.Ast.Int_const 10 };
    { Direction.nindex = "J"; nlo = Frontend.Ast.Int_const 1; nhi = Frontend.Ast.Int_const 10 };
  ]

let u0 = parse_unit "      X = 1"

let test_direction_equal_subscripts () =
  (* A(I,J) vs A(I,J): only (=,=) *)
  let vecs =
    Direction.vectors u0 nest2
      ~subs_a:[ Frontend.Ast.Var "I"; Frontend.Ast.Var "J" ]
      ~subs_b:[ Frontend.Ast.Var "I"; Frontend.Ast.Var "J" ]
  in
  ci "one vector" 1 (List.length vecs);
  cb "(=,=)" true (vecs = [ [ Direction.Eq; Direction.Eq ] ])

let test_direction_shifted () =
  (* A(I,J) vs A(I-1,J): source at I must be one less: direction (<,=) *)
  let vecs =
    Direction.vectors u0 nest2
      ~subs_a:[ Frontend.Ast.Var "I"; Frontend.Ast.Var "J" ]
      ~subs_b:
        [
          Frontend.Ast.Binop (Frontend.Ast.Sub, Frontend.Ast.Var "I", Frontend.Ast.Int_const 1);
          Frontend.Ast.Var "J";
        ]
  in
  ci "one vector" 1 (List.length vecs);
  cb "(<,=)" true (vecs = [ [ Direction.Lt; Direction.Eq ] ]);
  cb "carried at loop 0" true (Direction.carried_at 0 vecs);
  cb "not carried at loop 1" false (Direction.carried_at 1 vecs)

let test_direction_inner_carried () =
  (* A(I,J) vs A(I,J+2): (=,<) *)
  let vecs =
    Direction.vectors u0 nest2
      ~subs_a:[ Frontend.Ast.Var "I"; Frontend.Ast.Var "J" ]
      ~subs_b:
        [
          Frontend.Ast.Var "I";
          Frontend.Ast.Binop (Frontend.Ast.Add, Frontend.Ast.Var "J", Frontend.Ast.Int_const 2);
        ]
  in
  cb "(=,>) feasible" true (List.mem [ Direction.Eq; Direction.Gt ] vecs);
  cb "carried at inner" false (Direction.carried_at 0 vecs)

(* ---------------- purity ---------------- *)

let test_purity_pure_function () =
  let p =
    parse
      "      PROGRAM T\n      X = SQ(2.0)\n      WRITE(6,*) X\n      END\n      REAL FUNCTION SQ(Y)\n      SQ = Y * Y\n      RETURN\n      END\n"
  in
  cb "SQ pure" true (Parallelizer.Purity.is_pure p "SQ")

let test_purity_common_impure () =
  let p =
    parse
      "      PROGRAM T\n      X = G(2.0)\n      END\n      REAL FUNCTION G(Y)\n      COMMON /C/ Z\n      G = Y + Z\n      END\n"
  in
  cb "COMMON makes impure" false (Parallelizer.Purity.is_pure p "G")

let test_purity_param_write_impure () =
  let p =
    parse
      "      PROGRAM T\n      X = H(Y)\n      END\n      REAL FUNCTION H(Y)\n      Y = 0.0\n      H = 1.0\n      END\n"
  in
  cb "writing a formal makes impure" false (Parallelizer.Purity.is_pure p "H")

let test_pure_function_parallelization () =
  let src =
    "      PROGRAM T\n      DIMENSION A(100), B(100)\n      DO I = 1, 100\n        B(I) = I * 0.5\n      ENDDO\n      DO I = 1, 100\n        A(I) = SQ(B(I)) + 1.0\n      ENDDO\n      S = 0.0\n      DO I = 1, 100\n        S = S + A(I)\n      ENDDO\n      WRITE(6,*) S\n      END\n      REAL FUNCTION SQ(Y)\n      SQ = Y * Y\n      END\n"
  in
  let strict = Parallelizer.Parallelize.default_config in
  let lax = { strict with allow_pure_functions = true } in
  (* strict: the SQ-calling loop stays sequential (2 of 3 parallel) *)
  ci "two parallel loops without purity" 2
    (List.length
       (List.filter (fun (u, _) -> u = "T") (marked_loops ~config:strict src)));
  (* with purity allowed, all three parallelize *)
  let marks = marked_loops ~config:lax src in
  ci "three parallel loops with purity" 3
    (List.length (List.filter (fun (u, _) -> u = "T") marks));
  (* semantics across domains *)
  let p = Core.Pipeline.normalize (parse src) in
  let opt, _ = Parallelizer.Parallelize.run ~config:lax p in
  Alcotest.(check string)
    "pure-function parallel output" (run_str src)
    (Runtime.Interp.run_program ~threads:4 opt)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rational_field; prop_rational_addsub; prop_fm_point_feasible ]

let suite =
  [
    ("rational: basics", `Quick, test_rational_basics);
    ("fm: infeasible interval", `Quick, test_fm_simple_infeasible);
    ("fm: feasible interval", `Quick, test_fm_simple_feasible);
    ("fm: coupled constraints", `Quick, test_fm_coupled);
    ("fm: equation feasible", `Quick, test_fm_equation_feasible);
    ("fm: equation infeasible", `Quick, test_fm_equation_infeasible);
    ("fm: GCD-strided loop", `Quick, test_fm_dependence_integration);
    ("fm: bounded distance loop", `Quick, test_fm_bounded_distance);
    ("direction: equal", `Quick, test_direction_equal_subscripts);
    ("direction: forward shift", `Quick, test_direction_shifted);
    ("direction: inner", `Quick, test_direction_inner_carried);
    ("purity: pure function", `Quick, test_purity_pure_function);
    ("purity: COMMON", `Quick, test_purity_common_impure);
    ("purity: formal write", `Quick, test_purity_param_write_impure);
    ("purity: enables parallelization", `Quick, test_pure_function_parallelization);
  ]
  @ qtests
