(** Analysis-layer tests: polynomial algebra (with qcheck properties),
    simplification, constant propagation, forward substitution, induction
    substitution and section lowering. *)

open Frontend
open Analysis
open Helpers

let ci = Alcotest.(check int)
let cb = Alcotest.(check bool)

(* ---------------- Poly: qcheck generators ---------------- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int_const n) (int_range (-20) 20);
        oneofl [ Ast.Var "I"; Ast.Var "J"; Ast.Var "N" ];
        map (fun n -> Ast.Array_ref ("IX", [ Ast.Int_const (abs n + 1) ]))
          (int_range 0 3);
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map2
              (fun a b -> Ast.Binop (Ast.Add, a, b))
              (go (depth - 1)) (go (depth - 1)) );
          ( 2,
            map2
              (fun a b -> Ast.Binop (Ast.Sub, a, b))
              (go (depth - 1)) (go (depth - 1)) );
          ( 2,
            map2
              (fun a b -> Ast.Binop (Ast.Mul, a, b))
              (go (depth - 1)) (go (depth - 1)) );
          (1, map (fun a -> Ast.Unop (Ast.Neg, a)) (go (depth - 1)));
        ]
  in
  go 3

let arb_expr =
  QCheck.make ~print:(fun e -> Pretty.expr_str e) gen_expr

(* reference evaluator for the generator's integer expressions *)
let rec eval_ref env e =
  match e with
  | Ast.Int_const n -> n
  | Ast.Var v -> List.assoc v env
  | Ast.Array_ref ("IX", [ Ast.Int_const k ]) -> (k * 7) + 3
  | Ast.Binop (Ast.Add, a, b) -> eval_ref env a + eval_ref env b
  | Ast.Binop (Ast.Sub, a, b) -> eval_ref env a - eval_ref env b
  | Ast.Binop (Ast.Mul, a, b) -> eval_ref env a * eval_ref env b
  | Ast.Unop (Ast.Neg, a) -> -eval_ref env a
  | _ -> failwith "eval_ref"

let env0 = [ ("I", 5); ("J", -3); ("N", 11) ]

let prop_poly_roundtrip =
  QCheck.Test.make ~count:300 ~name:"poly: of_expr/to_expr preserves value"
    arb_expr (fun e ->
      let p = Poly.of_expr e in
      eval_ref env0 (Poly.to_expr p) = eval_ref env0 e)

let prop_poly_sub_self =
  QCheck.Test.make ~count:200 ~name:"poly: e - e = 0" arb_expr (fun e ->
      Poly.is_zero (Poly.sub (Poly.of_expr e) (Poly.of_expr e)))

let prop_poly_add_commutes =
  QCheck.Test.make ~count:200 ~name:"poly: a+b = b+a"
    (QCheck.pair arb_expr arb_expr) (fun (a, b) ->
      Poly.equal
        (Poly.add (Poly.of_expr a) (Poly.of_expr b))
        (Poly.add (Poly.of_expr b) (Poly.of_expr a)))

let prop_poly_mul_distributes =
  QCheck.Test.make ~count:200 ~name:"poly: a*(b+c) = a*b + a*c"
    (QCheck.triple arb_expr arb_expr arb_expr) (fun (a, b, c) ->
      let pa = Poly.of_expr a and pb = Poly.of_expr b and pc = Poly.of_expr c in
      Poly.equal (Poly.mul pa (Poly.add pb pc))
        (Poly.add (Poly.mul pa pb) (Poly.mul pa pc)))

let prop_subst_var =
  QCheck.Test.make ~count:200 ~name:"poly: subst I:=J preserves value"
    arb_expr (fun e ->
      let p = Poly.subst_var "I" (Poly.atom (Ast.Var "J")) (Poly.of_expr e) in
      let env = [ ("I", -3); ("J", -3); ("N", 11) ] in
      eval_ref env (Poly.to_expr p) = eval_ref env e)

let prop_simplify_value =
  QCheck.Test.make ~count:300 ~name:"simplify preserves integer value"
    arb_expr (fun e ->
      let u = parse_unit "      X = 1" in
      eval_ref env0 (Simplify.simplify u e) = eval_ref env0 e)

let test_affine_in () =
  (* IX(7) + 2*I + 3 is affine in I with symbolic rest *)
  let e = parse_expr "IX(7) + 2 * I + 3" in
  match Poly.affine_in ~vars:[ "I" ] (Poly.of_expr e) with
  | Some ([ ("I", 2) ], rest) ->
      cb "rest mentions IX" true
        (List.exists
           (function Ast.Array_ref ("IX", _) -> true | _ -> false)
           (Poly.atoms rest))
  | _ -> Alcotest.fail "affine_in"

let test_affine_in_rejects_nonlinear () =
  let e = parse_expr "I * I + 1" in
  cb "quadratic rejected" true
    (Poly.affine_in ~vars:[ "I" ] (Poly.of_expr e) = None);
  let e2 = parse_expr "IX(I) + 1" in
  cb "subscripted subscript rejected" true
    (Poly.affine_in ~vars:[ "I" ] (Poly.of_expr e2) = None)

let test_sym_affine () =
  let e = parse_expr "N * I + J" in
  match Poly.sym_affine_in ~vars:[ "I" ] (Poly.of_expr e) with
  | Some ([ ("I", coeff) ], _) ->
      cb "symbolic coefficient N" true
        (Poly.equal coeff (Poly.atom (Ast.Var "N")))
  | _ -> Alcotest.fail "sym_affine_in"

(* ---------------- simplify ---------------- *)

let test_simplify_identities () =
  let u = parse_unit "      X = 1" in
  let s e = Simplify.simplify u (parse_expr e) in
  Alcotest.check expr_testable "fold" (Ast.Int_const 7) (s "3 + 4");
  Alcotest.check expr_testable "x*1" (Ast.Var "I") (s "I * 1");
  Alcotest.check expr_testable "x+0" (Ast.Var "I") (s "I + 0");
  Alcotest.check expr_testable "mul by zero" (Ast.Int_const 0) (s "I * 0");
  cb "canonical equality" true
    (Simplify.equal_mod_simplify u (parse_expr "I + 2*J - 1")
       (parse_expr "2*J + I - 1"));
  cb "cancellation" true
    (Simplify.equal_mod_simplify u (parse_expr "(I + J) - J") (parse_expr "I"))

(* ---------------- constprop ---------------- *)

let test_constprop_parameter () =
  let p =
    parse
      "      PROGRAM T\n      PARAMETER (N = 8)\n      X = N * 2\n      END\n"
  in
  let p = Constprop.run p in
  match (List.hd p.Ast.p_units).u_body with
  | [ { Ast.node = Ast.Assign (_, Ast.Int_const 16); _ } ] -> ()
  | _ -> Alcotest.fail "parameter not folded"

let test_constprop_straightline () =
  let p = parse_main "      N = 4\n      M = N + 1\n      X = M * 2" in
  let p = Constprop.run p in
  match List.rev (List.hd p.Ast.p_units).u_body with
  | { Ast.node = Ast.Assign (_, Ast.Int_const 10); _ } :: _ -> ()
  | _ -> Alcotest.fail "chain not folded"

let test_constprop_kill_by_call () =
  let p =
    parse
      "      PROGRAM T\n      N = 4\n      CALL S\n      X = N\n      END\n      SUBROUTINE S\n      COMMON /C/ N\n      N = 9\n      END\n"
  in
  let p = Constprop.run p in
  let main = Ast.find_unit_exn p "T" in
  match List.rev main.u_body with
  | { Ast.node = Ast.Assign (_, Ast.Var "N"); _ } :: _ -> ()
  | _ -> Alcotest.fail "call did not kill constant"

let test_constprop_kill_in_branch () =
  let p =
    parse_main
      "      N = 4\n      IF (X .GT. 0) N = 5\n      Y = N"
  in
  let p = Constprop.run p in
  match List.rev (List.hd p.Ast.p_units).u_body with
  | { Ast.node = Ast.Assign (_, Ast.Var "N"); _ } :: _ -> ()
  | _ -> Alcotest.fail "branch did not kill constant"

let test_constprop_no_array_broadcast () =
  (* a whole-array assignment must not be treated as a scalar constant *)
  let p =
    parse_main ~decls:"      DIMENSION A(4)" "      A = 0.0\n      X = A(2)"
  in
  let p = Constprop.run p in
  match List.rev (List.hd p.Ast.p_units).u_body with
  | { Ast.node = Ast.Assign (_, Ast.Array_ref ("A", _)); _ } :: _ -> ()
  | _ -> Alcotest.fail "broadcast leaked into constprop"

(* ---------------- forward substitution ---------------- *)

let test_forward_subst_exposes_subscript () =
  let p =
    parse_main ~decls:"      DIMENSION FE(16,128)\n      DIMENSION IDB(8)"
      "      DO K = 1, 10\n        ID = IDB(2) + K\n        FE(1, ID) = 1.0\n      ENDDO"
  in
  let p = Forward_subst.run p in
  let found =
    List.exists
      (fun (a : Usedef.access) ->
        a.acc_write && a.acc_name = "FE"
        && match a.acc_index with
           | [ _; Ast.Binop (Ast.Add, _, _) ] -> true
           | _ -> false)
      (Usedef.accesses_of_stmts (List.hd p.Ast.p_units).u_body)
  in
  cb "subscript substituted" true found

let test_forward_subst_killed_by_redef () =
  let p = parse_main "      N = J + 1\n      J = 5\n      X = N" in
  let p = Forward_subst.run p in
  match List.rev (List.hd p.Ast.p_units).u_body with
  | { Ast.node = Ast.Assign (_, Ast.Var "N"); _ } :: _ -> ()
  | _ -> Alcotest.fail "def should have been killed by input redefinition"

(* ---------------- induction substitution ---------------- *)

let test_induction_simple () =
  let src =
    "      PROGRAM T\n      DIMENSION X(100)\n      I = 0\n      DO J = 1, 10\n        I = I + 1\n        X(I) = J\n      ENDDO\n      WRITE(6,*) X(10), I\n      END\n"
  in
  let p = Induction.run (parse src) in
  let u = List.hd p.Ast.p_units in
  (* the increment is gone: no write of I inside the loop *)
  let loop = List.hd (Ast.collect_loops u.u_body) in
  let writes_i =
    List.exists
      (fun (a : Usedef.access) -> a.acc_write && a.acc_name = "I")
      (Usedef.accesses_of_stmts loop.body)
  in
  cb "increment removed" false writes_i;
  (* semantics preserved *)
  Alcotest.(check string)
    "output preserved"
    (Runtime.Interp.run_program (parse src))
    (Runtime.Interp.run_program p)

let test_induction_nested_pcinit () =
  (* the PCINIT pattern: both loops become affine *)
  let src =
    "      PROGRAM T\n      DIMENSION X(100)\n      I = 0\n      DO N = 1, 5\n        DO J = 1, 4\n          I = I + 1\n          X(I) = N + J\n        ENDDO\n      ENDDO\n      WRITE(6,*) X(20), I\n      END\n"
  in
  let p = Induction.run (parse src) in
  Alcotest.(check string)
    "output preserved"
    (Runtime.Interp.run_program (parse src))
    (Runtime.Interp.run_program p)

(* ---------------- section lowering ---------------- *)

let test_sections_lowering () =
  let u =
    parse_unit ~name:"S"
      "      DIMENSION A(10), B(10)\n      A(2:5) = 1.0"
  in
  let u = Sections.run_unit u in
  match Ast.collect_loops u.u_body with
  | [ l ] ->
      Alcotest.check expr_testable "lo" (Ast.Int_const 2) l.lo;
      Alcotest.check expr_testable "hi" (Ast.Int_const 5) l.hi
  | _ -> Alcotest.fail "section not lowered to one loop"

let test_sections_broadcast () =
  let u =
    parse_unit ~name:"S" "      DIMENSION A(4,6)\n      A = 0.0"
  in
  let u = Sections.run_unit u in
  ci "two loops for rank 2" 2 (List.length (Ast.collect_loops u.u_body))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_poly_roundtrip; prop_poly_sub_self; prop_poly_add_commutes;
      prop_poly_mul_distributes; prop_subst_var; prop_simplify_value;
    ]

let suite =
  qcheck_tests
  @ [
      ("poly: affine_in", `Quick, test_affine_in);
      ("poly: nonlinear rejected", `Quick, test_affine_in_rejects_nonlinear);
      ("poly: symbolic coefficients", `Quick, test_sym_affine);
      ("simplify: identities", `Quick, test_simplify_identities);
      ("constprop: PARAMETER", `Quick, test_constprop_parameter);
      ("constprop: straight line", `Quick, test_constprop_straightline);
      ("constprop: killed by CALL", `Quick, test_constprop_kill_by_call);
      ("constprop: killed in branch", `Quick, test_constprop_kill_in_branch);
      ("constprop: no broadcast leak", `Quick, test_constprop_no_array_broadcast);
      ("fwdsubst: exposes subscripts", `Quick, test_forward_subst_exposes_subscript);
      ("fwdsubst: killed by redef", `Quick, test_forward_subst_killed_by_redef);
      ("induction: simple", `Quick, test_induction_simple);
      ("induction: PCINIT nest", `Quick, test_induction_nested_pcinit);
      ("sections: explicit bounds", `Quick, test_sections_lowering);
      ("sections: broadcast", `Quick, test_sections_broadcast);
    ]
