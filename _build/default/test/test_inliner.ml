(** Conventional-inliner tests: eligibility heuristics, by-reference
    offset substitution (the subscripted-subscript pathology), array
    linearization, local renaming, and the paper's loss scenarios. *)

open Frontend
open Helpers

let ci = Alcotest.(check int)
let cb = Alcotest.(check bool)

let inline ?config src =
  Inliner.Inline.run ?config (parse src)

let leaf_callee =
  "      SUBROUTINE LEAF(X2)\n      DIMENSION X2(*)\n      DO I = 1, 10\n        X2(I) = I\n      ENDDO\n      END\n"

let test_inline_inside_loop () =
  let p, st =
    inline
      ("      PROGRAM T\n      DIMENSION A(100)\n      DO K = 1, 4\n        CALL LEAF(A(1))\n      ENDDO\n      END\n"
      ^ leaf_callee)
  in
  ci "one call inlined" 1 (List.length st.inlined_calls);
  let main = Ast.find_unit_exn p "T" in
  cb "no CALL remains in main" true (Analysis.Usedef.calls main.u_body = [])

let test_no_inline_outside_loop () =
  let _, st =
    inline
      ("      PROGRAM T\n      DIMENSION A(100)\n      CALL LEAF(A(1))\n      END\n"
      ^ leaf_callee)
  in
  ci "not inlined outside loops" 0 (List.length st.inlined_calls)

let test_no_inline_with_io () =
  let _, st =
    inline
      "      PROGRAM T\n      DO K = 1, 4\n        CALL NOISY\n      ENDDO\n      END\n      SUBROUTINE NOISY\n      WRITE(6,*) 'HI'\n      END\n"
  in
  cb "skipped for I/O" true
    (List.exists (fun (_, _, why) -> why = "contains I/O") st.skipped)

let test_no_inline_with_calls () =
  let _, st =
    inline
      ("      PROGRAM T\n      DIMENSION A(100)\n      DO K = 1, 4\n        CALL MID(A)\n      ENDDO\n      END\n      SUBROUTINE MID(B)\n      DIMENSION B(*)\n      CALL LEAF(B(1))\n      END\n"
      ^ leaf_callee)
  in
  cb "skipped for nested calls" true
    (List.exists (fun (_, _, why) -> why = "calls other subroutines") st.skipped)

let test_no_inline_too_big () =
  let big_body =
    String.concat "\n"
      (List.init 160 (fun i -> Printf.sprintf "      X%d = %d" i i))
  in
  let _, st =
    inline
      (Printf.sprintf
         "      PROGRAM T\n      DO K = 1, 4\n        CALL BIG\n      ENDDO\n      END\n      SUBROUTINE BIG\n%s\n      END\n"
         big_body)
    ~config:{ Inliner.Inline.max_stmts = 150 }
  in
  cb "skipped for size" true
    (List.exists (fun (_, _, why) -> why = "too many statements") st.skipped)

let test_offset_substitution () =
  (* actual T(IX(7)): formal X2(I) must become T(IX(7) + I - 1) *)
  let p, _ =
    inline
      ("      PROGRAM T\n      DIMENSION T(4096), IX(16)\n      DO K = 1, 4\n        CALL LEAF(T(IX(7)))\n      ENDDO\n      END\n"
      ^ leaf_callee)
  in
  let main = Ast.find_unit_exn p "T" in
  let found =
    List.exists
      (fun (a : Analysis.Usedef.access) ->
        a.acc_write && a.acc_name = "T"
        && List.exists
             (fun idx ->
               Ast.fold_expr
                 (fun acc e ->
                   acc || match e with Ast.Array_ref ("IX", _) -> true | _ -> false)
                 false idx)
             a.acc_index)
      (Analysis.Usedef.accesses_of_stmts main.u_body)
  in
  cb "subscripted subscript created" true found

let test_linearization_rewrites_all_refs () =
  (* passing C(1,2) linearizes every C reference in the unit *)
  let p, st =
    inline
      ("      PROGRAM T\n      DIMENSION C(8,8)\n      DO K = 1, 4\n        CALL LEAF(C(1,2))\n      ENDDO\n      C(3,4) = 1.0\n      END\n"
      ^ leaf_callee)
  in
  cb "linearization recorded" true (List.mem ("T", "C") st.linearized);
  let main = Ast.find_unit_exn p "T" in
  let decl = Option.get (Ast.find_decl main "C") in
  ci "C flattened to rank 1" 1 (List.length decl.d_dims);
  let ok = ref true in
  ignore
    (Ast.map_exprs_in_stmts
       (fun e ->
         (match e with
         | Ast.Array_ref ("C", idx) when List.length idx > 1 -> ok := false
         | _ -> ());
         e)
       main.u_body);
  cb "no rank-2 C references remain" true !ok

let test_same_shape_renames () =
  (* identical declared shapes: direct rename, no linearization *)
  let p, st =
    inline
      "      PROGRAM T\n      DIMENSION A(8,8)\n      DO K = 1, 8\n        CALL FILL(A)\n      ENDDO\n      END\n      SUBROUTINE FILL(B)\n      DIMENSION B(8,8)\n      DO J = 1, 8\n        B(J,J) = J\n      ENDDO\n      END\n"
  in
  ci "nothing linearized" 0 (List.length st.linearized);
  let main = Ast.find_unit_exn p "T" in
  let found2d =
    List.exists
      (fun (a : Analysis.Usedef.access) ->
        a.acc_name = "A" && List.length a.acc_index = 2)
      (Analysis.Usedef.accesses_of_stmts main.u_body)
  in
  cb "A accessed 2-D after rename" true found2d

let test_local_renaming_fresh () =
  (* callee locals must not capture caller names *)
  let src =
    "      PROGRAM T\n      DIMENSION A(100)\n      TMP = 7.0\n      DO K = 1, 4\n        CALL ADD1(A)\n      ENDDO\n      WRITE(6,*) TMP\n      END\n      SUBROUTINE ADD1(B)\n      DIMENSION B(*)\n      TMP = 1.0\n      DO I = 1, 10\n        B(I) = B(I) + TMP\n      ENDDO\n      END\n"
  in
  let p, _ = inline src in
  Alcotest.(check string)
    "semantics preserved" (run_str src)
    (Runtime.Interp.run_program p)

let test_inlined_semantics_preserved () =
  List.iter
    (fun (b : Perfect.Bench_def.t) ->
      let p, _ = Inliner.Inline.run (Perfect.Bench_def.parse b) in
      Alcotest.(check string)
        (b.name ^ " conventional inlining preserves output")
        (Runtime.Interp.run_program (Perfect.Bench_def.parse b))
        (Runtime.Interp.run_program p))
    [ Perfect.Mdg.bench; Perfect.Trfd.bench; Perfect.Flo52q.bench ]

let test_linear_index_formula () =
  let open Ast in
  let dims = [ Int_const 4; Int_const 5 ] in
  let e =
    Inliner.Linearize.linear_index dims [ Int_const 3; Int_const 2 ]
  in
  let u = parse_unit "      X = 1" in
  Alcotest.check expr_testable "A(3,2) of 4x5 = 7"
    (Ast.Int_const 7)
    (Analysis.Simplify.simplify u e)

let test_paper_loss_pcinit () =
  (* Figs. 2-3: two formal arrays bound to indirect slices of one global
     array; the distinct IX(7)/IX(8) base atoms defeat the dependence
     tests after inlining although each formal was clean standalone *)
  let src =
    "      PROGRAM T\n      COMMON /C/ T(4096), IX(16), FX(256)\n      DO K = 1, 2\n        CALL PCINIT(T(IX(7)), T(IX(8)))\n      ENDDO\n      WRITE(6,*) T(1)\n      END\n      SUBROUTINE PCINIT(X2, Y2)\n      DIMENSION X2(*), Y2(*)\n      COMMON /C/ T(4096), IX(16), FX(256)\n      DO 200 N = 1, 8\n        DO 200 J = 1, 8\n          X2(8*(N-1) + J) = FX(8*(N-1) + J) * 0.5\n          Y2(8*(N-1) + J) = FX(8*(N-1) + J) * 0.25\n 200  CONTINUE\n      END\n"
  in
  let program = parse src in
  let base = Core.Pipeline.run ~mode:Core.Pipeline.No_inlining program in
  let conv = Core.Pipeline.run ~mode:Core.Pipeline.Conventional program in
  let _, loss, _ = Core.Pipeline.table2_counts ~baseline:base conv in
  ci "both PCINIT loops lost" 2 loss

let suite =
  [
    ("inline inside loop", `Quick, test_inline_inside_loop);
    ("no inline outside loop", `Quick, test_no_inline_outside_loop);
    ("skip: I/O", `Quick, test_no_inline_with_io);
    ("skip: nested calls", `Quick, test_no_inline_with_calls);
    ("skip: too many statements", `Quick, test_no_inline_too_big);
    ("offset substitution", `Quick, test_offset_substitution);
    ("linearization rewrites unit", `Quick, test_linearization_rewrites_all_refs);
    ("same shape renames", `Quick, test_same_shape_renames);
    ("local renaming", `Quick, test_local_renaming_fresh);
    ("semantics preserved (benchmarks)", `Quick, test_inlined_semantics_preserved);
    ("linear index formula", `Quick, test_linear_index_formula);
    ("paper: PCINIT loss", `Quick, test_paper_loss_pcinit);
  ]
