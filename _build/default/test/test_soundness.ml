(** Property-based soundness: randomly generated loop programs must
    produce the same output after any pipeline configuration, sequentially
    and across domains.  This exercises the dependence tests,
    privatization, reductions, peeling, the inliners and the runtime
    against each other -- if the parallelizer ever marks an unsafe loop,
    the domain run diverges and the property fails. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Random straight-line loop programs over A(60), B(60), C(60)          *)
(* ------------------------------------------------------------------ *)

type idx = Plain | Shift of int | Stride2 | Fixed of int

let idx_str v = function
  | Plain -> v
  | Shift k -> if k >= 0 then Printf.sprintf "%s+%d" v k else Printf.sprintf "%s-%d" v (-k)
  | Stride2 -> Printf.sprintf "2*%s" v
  | Fixed k -> string_of_int k

type rhs_term = Rarr of string * idx | Rvar of string | Rconst of int

type stmt =
  | Sassign of string * idx * rhs_term * rhs_term  (** a(i) = t1 + t2 *)
  | Sreduce of rhs_term  (** s = s + t *)
  | Stemp of rhs_term  (** tmp = t; a(i) uses tmp via next assign *)

type loop = { body : stmt list; lo : int; hi : int }

let gen_idx =
  QCheck.Gen.(
    frequency
      [
        (4, return Plain);
        (2, map (fun k -> Shift k) (int_range (-2) 2));
        (1, return Stride2);
        (1, map (fun k -> Fixed k) (int_range 1 10));
      ])

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun a i -> Rarr (a, i)) (oneofl [ "A"; "B"; "C" ]) gen_idx);
        (1, map (fun k -> Rconst k) (int_range 1 9));
        (1, return (Rvar "I"));
      ])

let gen_stmt =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2
            (fun (a, i) (t1, t2) -> Sassign (a, i, t1, t2))
            (pair (oneofl [ "A"; "B"; "C" ]) gen_idx)
            (pair gen_term gen_term) );
        (1, map (fun t -> Sreduce t) gen_term);
        (1, map (fun t -> Stemp t) gen_term);
      ])

let gen_loop =
  QCheck.Gen.(
    map2
      (fun body hi -> { body; lo = 3; hi })
      (list_size (int_range 1 4) gen_stmt)
      (int_range 20 28))

let gen_prog = QCheck.Gen.(list_size (int_range 1 3) gen_loop)

let term_str = function
  | Rarr (a, i) -> Printf.sprintf "%s(%s)" a (idx_str "I" i)
  | Rvar v -> v
  | Rconst k -> Printf.sprintf "%d.0" k

let stmt_str = function
  | Sassign (a, i, t1, t2) ->
      Printf.sprintf "        %s(%s) = %s + %s" a (idx_str "I" i) (term_str t1)
        (term_str t2)
  | Sreduce t -> Printf.sprintf "        S = S + %s" (term_str t)
  | Stemp t ->
      Printf.sprintf "        TMP = %s * 0.5\n        C(I) = TMP + 1.0"
        (term_str t)

let prog_str loops =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "      PROGRAM T\n";
  Buffer.add_string buf "      DIMENSION A(60), B(60), C(60)\n";
  Buffer.add_string buf "      S = 0.0\n";
  Buffer.add_string buf
    "      DO I = 1, 60\n        A(I) = MOD(I, 7) * 0.5\n        B(I) = \
     MOD(I, 5) * 0.25\n        C(I) = I * 0.125\n      ENDDO\n";
  List.iter
    (fun l ->
      Buffer.add_string buf (Printf.sprintf "      DO I = %d, %d\n" l.lo l.hi);
      List.iter
        (fun s -> Buffer.add_string buf (stmt_str s ^ "\n"))
        l.body;
      Buffer.add_string buf "      ENDDO\n")
    loops;
  Buffer.add_string buf
    "      DO I = 1, 60\n        S = S + A(I) + B(I) * 2.0 + C(I) * 3.0\n\
    \      ENDDO\n      WRITE(6,*) S\n      END\n";
  Buffer.contents buf

let arb_prog = QCheck.make ~print:prog_str gen_prog

(* Outputs equal up to reduction reordering (tiny float tolerance). *)
let agree a b =
  String.equal a b
  ||
  match (float_of_string_opt (String.trim a), float_of_string_opt (String.trim b)) with
  | Some x, Some y ->
      Float.abs (x -. y) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> false

let prop_pipeline_sound mode_name mode =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "random programs: %s pipeline is sound" mode_name)
    arb_prog (fun loops ->
      let src = prog_str loops in
      let program = parse src in
      let reference = Runtime.Interp.run_program ~threads:1 program in
      let r = Core.Pipeline.run ~mode program in
      let seq = Runtime.Interp.run_program ~threads:1 r.res_program in
      let par = Runtime.Interp.run_program ~threads:4 r.res_program in
      agree seq reference && agree par reference)

(* The conventional inliner on a generated callee: semantics preserved. *)
let prop_inliner_sound =
  QCheck.Test.make ~count:40 ~name:"random programs: inlined callee is sound"
    arb_prog (fun loops ->
      (* wrap the generated loops in a subroutine called from a loop *)
      let body =
        String.concat "\n"
          (List.map
             (fun l ->
               Printf.sprintf "      DO I = %d, %d\n%s\n      ENDDO" l.lo l.hi
                 (String.concat "\n" (List.map stmt_str l.body)))
             loops)
      in
      let src =
        Printf.sprintf
          "      PROGRAM T\n      COMMON /D/ A(60), B(60), C(60)\n      DO I \
           = 1, 60\n        A(I) = MOD(I, 7) * 0.5\n        B(I) = MOD(I, 5) \
           * 0.25\n        C(I) = I * 0.125\n      ENDDO\n      DO K = 1, 3\n\
          \        CALL WORK\n      ENDDO\n      S = 0.0\n      DO I = 1, \
           60\n        S = S + A(I) + B(I) + C(I)\n      ENDDO\n      \
           WRITE(6,*) S\n      END\n      SUBROUTINE WORK\n      COMMON /D/ \
           A(60), B(60), C(60)\n      S = 0.0\n%s\n      END\n"
          body
      in
      let program = parse src in
      let reference = Runtime.Interp.run_program ~threads:1 program in
      let inlined, _ = Inliner.Inline.run program in
      agree (Runtime.Interp.run_program ~threads:1 inlined) reference)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pipeline_sound "no-inlining" Core.Pipeline.No_inlining;
      prop_pipeline_sound "conventional" Core.Pipeline.Conventional;
      prop_inliner_sound;
    ]

let suite = qsuite
