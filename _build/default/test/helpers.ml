(** Shared helpers for the test suites. *)

open Frontend

let parse = Resolve.parse

let parse_unit ?(name = "T") body_src =
  let src = Printf.sprintf "      SUBROUTINE %s\n%s\n      END\n" name body_src in
  Ast.find_unit_exn (parse src) name

(** Wrap a statement-list source into a MAIN program and parse it. *)
let parse_main ?(decls = "") body =
  parse (Printf.sprintf "      PROGRAM T\n%s\n%s\n      END\n" decls body)

(** Run the parallelizer on a source string; returns reports. *)
let reports_of ?config src =
  let p = Core.Pipeline.normalize (parse src) in
  snd (Parallelizer.Parallelize.run ?config p)

(** index -> marked? for loops, looked up by unit and DO-variable. *)
let marked_loops ?config src =
  List.filter_map
    (fun (r : Parallelizer.Parallelize.loop_report) ->
      if r.rep_marked then Some (r.rep_unit, r.rep_index) else None)
    (reports_of ?config src)

let loop_status ?config src uname index =
  match
    List.find_opt
      (fun (r : Parallelizer.Parallelize.loop_report) ->
        String.equal r.rep_unit uname && String.equal r.rep_index index)
      (reports_of ?config src)
  with
  | Some r ->
      if r.rep_marked then "parallel"
      else if r.rep_safe then "safe"
      else "sequential"
  | None -> "missing"

let run_str ?(threads = 1) src =
  Runtime.Interp.run_program ~threads (parse src)

let check_status ?config src uname index expected =
  Alcotest.(check string)
    (Printf.sprintf "%s/DO %s" uname index)
    expected
    (loop_status ?config src uname index)

(** Expression helper: parse an expression by wrapping in an assignment. *)
let parse_expr src =
  let p = parse (Printf.sprintf "      PROGRAM T\n      X = %s\n      END\n" src) in
  match (List.hd p.Ast.p_units).u_body with
  | [ { Ast.node = Ast.Assign (_, e); _ } ] -> e
  | _ -> failwith "parse_expr"

let expr_testable =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Pretty.expr_str e))
    Ast.equal_expr
