(** Runtime tests: interpreter semantics (arithmetic, intrinsics, COMMON
    storage, by-reference arguments, adjustable dimensions), parallel
    execution (privates, reductions, dynamic privatization through calls),
    failure injection, and the worker pool. *)

open Helpers

let cs = Alcotest.(check string)
let cb = Alcotest.(check bool)

let expect src out = cs "program output" out (run_str src)

let test_arith () =
  expect "      PROGRAM T\n      I = 7 / 2\n      X = 7.0 / 2.0\n      J = 2 ** 10\n      WRITE(6,*) I, X, J\n      END\n"
    "3 3.5 1024\n"

let test_mixed_arith () =
  expect "      PROGRAM T\n      X = 1 + 0.5\n      I = 3.9\n      WRITE(6,*) X, I\n      END\n"
    "1.5 3\n"

let test_intrinsics () =
  expect
    "      PROGRAM T\n      WRITE(6,*) MAX(3, 7), MIN(2.5, 1.5), ABS(-4), MOD(17, 5), SQRT(16.0)\n      END\n"
    "7 1.5 4 2 4\n"

let test_logical () =
  expect
    "      PROGRAM T\n      I = 3\n      IF (I .GT. 2 .AND. I .LT. 5) WRITE(6,*) 'YES'\n      IF (.NOT. (I .EQ. 3)) WRITE(6,*) 'NO'\n      END\n"
    "YES\n"

let test_do_semantics () =
  (* zero-trip loop, negative step, index value after loop *)
  expect
    "      PROGRAM T\n      N = 0\n      DO I = 5, 1\n        N = N + 1\n      ENDDO\n      DO I = 6, 2, -2\n        N = N + 10\n      ENDDO\n      WRITE(6,*) N\n      END\n"
    "30\n"

let test_common_shared () =
  expect
    "      PROGRAM T\n      COMMON /C/ X, N\n      X = 1.5\n      N = 2\n      CALL BUMP\n      WRITE(6,*) X, N\n      END\n      SUBROUTINE BUMP\n      COMMON /C/ X, N\n      X = X * 2.0\n      N = N + 1\n      END\n"
    "3 3\n"

let test_byref_scalar () =
  expect
    "      PROGRAM T\n      X = 1.0\n      CALL TWICE(X)\n      WRITE(6,*) X\n      END\n      SUBROUTINE TWICE(Y)\n      Y = Y * 2.0\n      END\n"
    "2\n"

let test_byvalue_expression_arg () =
  (* writes to a formal bound to an expression are lost, not crashing *)
  expect
    "      PROGRAM T\n      X = 3.0\n      CALL TWICE(X + 1.0)\n      WRITE(6,*) X\n      END\n      SUBROUTINE TWICE(Y)\n      Y = Y * 2.0\n      END\n"
    "3\n"

let test_array_slice_view () =
  (* passing A(3) gives the callee a view starting at element 3 *)
  expect
    "      PROGRAM T\n      DIMENSION A(10)\n      DO I = 1, 10\n        A(I) = I\n      ENDDO\n      CALL ZAP(A(3))\n      WRITE(6,*) A(3), A(4), A(2)\n      END\n      SUBROUTINE ZAP(B)\n      DIMENSION B(*)\n      B(1) = -1.0\n      B(2) = -2.0\n      END\n"
    "-1 -2 2\n"

let test_adjustable_dims () =
  (* formal reshaped by its declaration using another formal *)
  expect
    "      PROGRAM T\n      DIMENSION A(12)\n      DO I = 1, 12\n        A(I) = I\n      ENDDO\n      CALL PICK(A, 3)\n      END\n      SUBROUTINE PICK(B, LD)\n      DIMENSION B(LD, 4)\n      WRITE(6,*) B(2, 3)\n      END\n"
    "8\n"

let test_reshaped_common_after_linearization () =
  (* different units may declare different shapes over one COMMON block *)
  expect
    "      PROGRAM T\n      COMMON /C/ A(3,4)\n      A(2,2) = 9.0\n      CALL FLAT\n      END\n      SUBROUTINE FLAT\n      COMMON /C/ A(12)\n      WRITE(6,*) A(5)\n      END\n"
    "9\n"

let test_function_call () =
  expect
    "      PROGRAM T\n      X = SQ(3.0) + SQ(4.0)\n      WRITE(6,*) X\n      END\n      REAL FUNCTION SQ(Y)\n      SQ = Y * Y\n      END\n"
    "25\n"

let test_stop_message () =
  expect
    "      PROGRAM T\n      X = 1.0\n      IF (X .GT. 0.0) STOP 'BOOM'\n      WRITE(6,*) 'UNREACHED'\n      END\n"
    "STOP: BOOM\n"

let test_return_early () =
  expect
    "      PROGRAM T\n      CALL S\n      WRITE(6,*) 'AFTER'\n      END\n      SUBROUTINE S\n      WRITE(6,*) 'IN'\n      RETURN\n      END\n"
    "IN\nAFTER\n"

let test_out_of_bounds_raises () =
  let src =
    "      PROGRAM T\n      DIMENSION A(4,4)\n      I = 9\n      A(I, 2) = 1.0\n      END\n"
  in
  cb "interior bound violation raises" true
    (try
       ignore (run_str src);
       false
     with Runtime.Value.Runtime_error _ -> true)

let test_storage_overflow_raises () =
  let src =
    "      PROGRAM T\n      DIMENSION A(4)\n      I = 9\n      A(I) = 1.0\n      END\n"
  in
  cb "storage overflow raises" true
    (try
       ignore (run_str src);
       false
     with Runtime.Value.Runtime_error _ -> true)

(* ---------------- parallel execution ---------------- *)

let mark_all src =
  (* run the real pipeline so directives are sound *)
  let p = Core.Pipeline.normalize (parse src) in
  fst (Parallelizer.Parallelize.run p)

let par_equals_seq src =
  let opt = mark_all src in
  let seq = Runtime.Interp.run_program ~threads:1 opt in
  let par = Runtime.Interp.run_program ~threads:4 opt in
  cs "parallel = sequential" seq par;
  cs "optimized = original" (run_str src) seq

let test_parallel_simple () =
  par_equals_seq
    "      PROGRAM T\n      DIMENSION A(1000)\n      DO I = 1, 1000\n        A(I) = I * 2\n      ENDDO\n      S = 0.0\n      DO I = 1, 1000\n        S = S + A(I)\n      ENDDO\n      WRITE(6,*) S\n      END\n"

let test_parallel_private_scalar () =
  par_equals_seq
    "      PROGRAM T\n      DIMENSION A(200), B(200)\n      DO I = 1, 200\n        A(I) = I\n      ENDDO\n      DO I = 1, 200\n        T1 = A(I) * 2.0\n        T2 = T1 + 1.0\n        B(I) = T2\n      ENDDO\n      WRITE(6,*) B(200)\n      END\n"

let test_parallel_reduction_int () =
  par_equals_seq
    "      PROGRAM T\n      N = 0\n      DO I = 1, 500\n        N = N + I\n      ENDDO\n      WRITE(6,*) N\n      END\n"

let test_parallel_max_reduction () =
  par_equals_seq
    "      PROGRAM T\n      DIMENSION A(300)\n      DO I = 1, 300\n        A(I) = MOD(I * 37, 101)\n      ENDDO\n      M = 0\n      DO I = 1, 300\n        M = MAX(M, A(I))\n      ENDDO\n      WRITE(6,*) M\n      END\n"

let test_parallel_dynamic_privatization () =
  (* the FSMP pattern: a COMMON temp written by a callee inside a parallel
     loop resolves to the worker's private copy *)
  let src =
    "      PROGRAM T\n      COMMON /W/ TMP(64)\n      DIMENSION OUT(64)\n      DO I = 1, 64\n        CALL FILL(I)\n        S = 0.0\n        DO K = 1, 64\n          S = S + TMP(K)\n        ENDDO\n        OUT(I) = S\n      ENDDO\n      WRITE(6,*) OUT(1), OUT(64), TMP(2)\n      END\n      SUBROUTINE FILL(I)\n      COMMON /W/ TMP(64)\n      DO K = 1, 64\n        TMP(K) = I + K\n      ENDDO\n      END\n"
  in
  (* annotate FILL so the I loop parallelizes *)
  let annots =
    Core.Annot_parser.parse_annotations
      "subroutine FILL(I) { TMP = unknown(I); }"
  in
  let r =
    Core.Pipeline.run ~annots ~mode:Core.Pipeline.Annotation_based (parse src)
  in
  let marked =
    List.exists
      (fun (rep : Parallelizer.Parallelize.loop_report) ->
        rep.rep_unit = "T" && rep.rep_index = "I" && rep.rep_marked)
      r.res_reports
  in
  cb "I loop parallel" true marked;
  cs "dynamic privatization output" (run_str src)
    (Runtime.Interp.run_program ~threads:4 r.res_program)

let test_parallel_nested_runs_sequential () =
  par_equals_seq
    "      PROGRAM T\n      DIMENSION C(32,32)\n      DO J = 1, 32\n        DO I = 1, 32\n          C(I,J) = I + J * 2\n        ENDDO\n      ENDDO\n      WRITE(6,*) C(32,32)\n      END\n"

let test_pool_parallel_for () =
  let pool = Runtime.Pool.create 4 in
  let hits = Array.make 64 0 in
  Runtime.Pool.parallel_for pool ~chunks:64 (fun c -> hits.(c) <- hits.(c) + 1);
  Runtime.Pool.shutdown pool;
  cb "every chunk ran exactly once" true (Array.for_all (( = ) 1) hits)

let test_pool_propagates_exception () =
  let pool = Runtime.Pool.create 4 in
  let raised =
    try
      Runtime.Pool.parallel_for pool ~chunks:8 (fun c ->
          if c = 5 then failwith "boom");
      false
    with Failure m -> m = "boom"
  in
  Runtime.Pool.shutdown pool;
  cb "exception surfaced" true raised

let test_pool_reusable () =
  let pool = Runtime.Pool.create 3 in
  let total = ref 0 in
  let m = Mutex.create () in
  for _ = 1 to 50 do
    Runtime.Pool.parallel_for pool ~chunks:7 (fun _ ->
        Mutex.lock m;
        incr total;
        Mutex.unlock m)
  done;
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "350 tasks" 350 !total

let suite =
  [
    ("interp: arithmetic", `Quick, test_arith);
    ("interp: mixed arithmetic", `Quick, test_mixed_arith);
    ("interp: intrinsics", `Quick, test_intrinsics);
    ("interp: logicals", `Quick, test_logical);
    ("interp: DO semantics", `Quick, test_do_semantics);
    ("interp: COMMON shared", `Quick, test_common_shared);
    ("interp: by-reference scalars", `Quick, test_byref_scalar);
    ("interp: expression arguments", `Quick, test_byvalue_expression_arg);
    ("interp: array slice views", `Quick, test_array_slice_view);
    ("interp: adjustable dims", `Quick, test_adjustable_dims);
    ("interp: reshaped COMMON", `Quick, test_reshaped_common_after_linearization);
    ("interp: functions", `Quick, test_function_call);
    ("interp: STOP", `Quick, test_stop_message);
    ("interp: RETURN", `Quick, test_return_early);
    ("fault: interior bounds", `Quick, test_out_of_bounds_raises);
    ("fault: storage overflow", `Quick, test_storage_overflow_raises);
    ("parallel: simple + reduction", `Quick, test_parallel_simple);
    ("parallel: private scalars", `Quick, test_parallel_private_scalar);
    ("parallel: integer reduction", `Quick, test_parallel_reduction_int);
    ("parallel: max reduction", `Quick, test_parallel_max_reduction);
    ("parallel: dynamic privatization", `Quick, test_parallel_dynamic_privatization);
    ("parallel: nested", `Quick, test_parallel_nested_runs_sequential);
    ("pool: coverage", `Quick, test_pool_parallel_for);
    ("pool: exceptions", `Quick, test_pool_propagates_exception);
    ("pool: reuse", `Quick, test_pool_reusable);
  ]
