(** Tests for the experiment utilities (output comparison, loop unmarking,
    tuning) and a print/parse roundtrip property on random expressions. *)

open Helpers

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)

(* ---------------- outputs_equal ---------------- *)

let test_outputs_equal_exact () =
  cb "identical" true (Perfect.Experiment.outputs_equal "1 2\n" "1 2\n")

let test_outputs_equal_tolerance () =
  cb "close floats" true
    (Perfect.Experiment.outputs_equal "6689.71\n" "6689.7100001\n");
  cb "far floats" false (Perfect.Experiment.outputs_equal "6689.71\n" "6690.9\n")

let test_outputs_equal_structure () =
  cb "different line counts" false
    (Perfect.Experiment.outputs_equal "1\n2\n" "1\n");
  cb "non-numeric mismatch" false
    (Perfect.Experiment.outputs_equal "DONE\n" "FAIL\n");
  cb "mixed text equal" true
    (Perfect.Experiment.outputs_equal "STOP: X\n" "STOP: X\n")

(* ---------------- unmark ---------------- *)

let test_unmark_strips_directives () =
  let src =
    "      PROGRAM T\n      DIMENSION A(100)\n      DO I = 1, 100\n        A(I) = I\n      ENDDO\n      WRITE(6,*) A(5)\n      END\n"
  in
  let p = Core.Pipeline.normalize (parse src) in
  let opt, reps = Parallelizer.Parallelize.run p in
  let marked =
    List.filter_map
      (fun (r : Parallelizer.Parallelize.loop_report) ->
        if r.rep_marked then Some r.rep_loop_id else None)
      reps
  in
  ci "one marked loop" 1 (List.length marked);
  let stripped = Perfect.Experiment.unmark marked opt in
  let still_marked =
    List.exists
      (fun u ->
        List.exists
          (fun (l : Frontend.Ast.do_loop) -> l.parallel <> None)
          (Frontend.Ast.collect_loops u.Frontend.Ast.u_body))
      stripped.Frontend.Ast.p_units
  in
  cb "all directives removed" false still_marked;
  Alcotest.(check string)
    "semantics unchanged" (run_str src)
    (Runtime.Interp.run_program ~threads:4 stripped)

let test_tune_only_unmarks () =
  (* tuning may only remove directives, never add or change code *)
  let b = Perfect.Trfd.bench in
  let r =
    Core.Pipeline.run
      ~annots:(Perfect.Bench_def.annots b)
      ~mode:Core.Pipeline.Annotation_based (Perfect.Bench_def.parse b)
  in
  let tuned = Perfect.Experiment.tune ~threads:4 r.res_program in
  let count_loops p =
    List.fold_left
      (fun n u ->
        n
        + List.length (Frontend.Ast.collect_loops u.Frontend.Ast.u_body))
      0 p.Frontend.Ast.p_units
  in
  ci "loop count preserved" (count_loops r.res_program) (count_loops tuned);
  let marked p =
    List.fold_left
      (fun n u ->
        n
        + List.length
            (List.filter
               (fun (l : Frontend.Ast.do_loop) -> l.parallel <> None)
               (Frontend.Ast.collect_loops u.Frontend.Ast.u_body)))
      0 p.Frontend.Ast.p_units
  in
  cb "marks only removed" true (marked tuned <= marked r.res_program)

(* ---------------- print/parse roundtrip on random expressions -------- *)

let gen_pexpr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Frontend.Ast.Int_const (abs n)) (int_range 0 99);
        map
          (fun r -> Frontend.Ast.Real_const (float_of_int r *. 0.25))
          (int_range 0 40);
        oneofl
          [ Frontend.Ast.Var "X"; Frontend.Ast.Var "I"; Frontend.Ast.Var "NP" ];
        map
          (fun k ->
            Frontend.Ast.Array_ref ("A", [ Frontend.Ast.Int_const (abs k + 1) ]))
          (int_range 0 5);
      ]
  in
  let rec go d =
    if d = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            map2
              (fun (op, a) b -> Frontend.Ast.Binop (op, a, b))
              (pair
                 (oneofl
                    Frontend.Ast.[ Add; Sub; Mul; Div; Pow ])
                 (go (d - 1)))
              (go (d - 1)) );
          (1, map (fun a -> Frontend.Ast.Unop (Frontend.Ast.Neg, a)) (go (d - 1)));
        ]
  in
  go 3

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pretty/parse roundtrip on expressions"
    (QCheck.make ~print:Frontend.Pretty.expr_str gen_pexpr) (fun e ->
      let printed = Frontend.Pretty.expr_str e in
      let reparsed = parse_expr printed in
      (* compare after double print: the printer canonicalizes parens *)
      String.equal printed (Frontend.Pretty.expr_str reparsed))

let prop_stmt_roundtrip =
  QCheck.Test.make ~count:150 ~name:"pretty/parse roundtrip on assignments"
    (QCheck.make ~print:Frontend.Pretty.expr_str gen_pexpr) (fun e ->
      let src =
        Printf.sprintf "      PROGRAM T\n      Y = %s\n      END\n"
          (Frontend.Pretty.expr_str e)
      in
      let p1 = parse src in
      let p2 = parse (Frontend.Pretty.program_to_string p1) in
      Frontend.Ast.equal_body
        (List.hd p1.Frontend.Ast.p_units).u_body
        (List.hd p2.Frontend.Ast.p_units).u_body)

let suite =
  [
    ("outputs_equal: exact", `Quick, test_outputs_equal_exact);
    ("outputs_equal: tolerance", `Quick, test_outputs_equal_tolerance);
    ("outputs_equal: structure", `Quick, test_outputs_equal_structure);
    ("unmark strips directives", `Quick, test_unmark_strips_directives);
    ("tune only unmarks", `Quick, test_tune_only_unmarks);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_print_parse_roundtrip; prop_stmt_roundtrip ]
