(** Dependence-analysis and parallelizer tests: each case is a small loop
    nest with a known safe/unsafe answer, including regression tests for
    the direction (source/sink) asymmetry and the subscripted-subscript
    soundness guard. *)

open Helpers

let common = "      COMMON /S/ N, M, NP\n      DIMENSION A(100), B(100), C(64,64), T(4096), IX(16)\n"

let consumer = "      WRITE(6,*) A(1), T(1), C(1,1)\n"
let prog body = "      PROGRAM T\n" ^ common ^ body ^ consumer ^ "      END\n"

(* ---------------- classic tests ---------------- *)

let test_siv_independent () =
  check_status
    (prog "      DO I = 1, 50\n        A(I) = B(I) + 1.0\n      ENDDO\n")
    "T" "I" "parallel"

let test_siv_shifted_read_backward () =
  (* the WK1(I-1) recurrence: regression for the direction bug *)
  check_status
    (prog "      DO I = 2, 50\n        A(I) = A(I) * 0.5 + A(I-1) * 0.25\n      ENDDO\n")
    "T" "I" "sequential"

let test_siv_shifted_read_forward () =
  (* reading ahead is just as dependent *)
  check_status
    (prog "      DO I = 1, 49\n        A(I) = A(I) * 0.5 + A(I+1) * 0.25\n      ENDDO\n")
    "T" "I" "sequential"

let test_ziv_same_element () =
  check_status
    (prog "      DO I = 1, 50\n        A(5) = A(5) + B(I)\n      ENDDO\n")
    "T" "I" "sequential"

let test_ziv_distinct_elements () =
  check_status
    (prog "      DO I = 1, 50\n        A(3) = B(I)\n        B(I) = A(7)\n      ENDDO\n")
    "T" "I" "sequential"
(* A(3) written every iteration: output dependence keeps it sequential *)

let test_gcd_strided () =
  (* writes 2I, reads 2I+1: distinct parities, GCD proves independence *)
  check_status
    (prog "      DO I = 1, 49\n        A(2*I) = A(2*I + 1) + 1.0\n      ENDDO\n")
    "T" "I" "parallel"

let test_banerjee_offset () =
  (* write I, read I+60 with I <= 50: ranges cannot collide *)
  check_status
    (prog "      DO I = 1, 40\n        A(I) = A(I + 60) + 1.0\n      ENDDO\n")
    "T" "I" "parallel"

let test_multidim_column () =
  check_status
    (prog
       "      DO J = 1, 64\n        DO I = 1, 64\n          C(I,J) = C(I,J) * 2.0\n        ENDDO\n      ENDDO\n")
    "T" "J" "parallel"

let test_multidim_transpose_dep () =
  check_status
    (prog
       "      DO J = 2, 64\n        DO I = 1, 64\n          C(I,J) = C(J,I) + 1.0\n        ENDDO\n      ENDDO\n")
    "T" "J" "sequential"

(* ---------------- symbolic cases ---------------- *)

let setup_n = "      N = 40\n      CALL OPAQUE\n"

let prog_sym body =
  "      PROGRAM T\n" ^ common ^ setup_n ^ body ^ consumer
  ^ "      END\n      SUBROUTINE OPAQUE\n      COMMON /S/ N, M, NP\n      N = N + 0\n      END\n"

let test_symbolic_bound_siv () =
  (* symbolic trip count, constant coefficient: still provable *)
  check_status
    (prog_sym "      DO I = 1, N\n        A(I) = B(I)\n      ENDDO\n")
    "T" "I" "parallel"

let test_range_test_symbolic_stride () =
  (* linearized two-dimensional walk with matching symbolic bound/stride *)
  check_status
    (prog_sym
       "      DO J = 1, N\n        DO I = 1, N\n          T(I + N*(J-1)) = 1.0\n        ENDDO\n      ENDDO\n")
    "T" "J" "parallel"

let test_range_test_mismatched_stride () =
  (* stride 64 but inner bound N (unrelated): the range test must fail *)
  check_status
    (prog_sym
       "      DO J = 1, 20\n        DO I = 1, N\n          T(I + 64*(J-1)) = 1.0\n        ENDDO\n      ENDDO\n")
    "T" "J" "sequential"

let test_subscripted_subscript_guard () =
  (* IX(I) as a subscript: no independence may be concluded *)
  check_status
    (prog_sym "      DO I = 1, 16\n        A(IX(I)) = B(I)\n      ENDDO\n")
    "T" "I" "sequential"

let test_invariant_atom_cancels () =
  (* IX(7) is loop-invariant: cancels between iterations, SIV applies *)
  check_status
    (prog_sym "      DO I = 1, 50\n        T(IX(7) + I) = B(I)\n      ENDDO\n")
    "T" "I" "parallel"

let test_two_invariant_atoms_conflict () =
  (* IX(7) vs IX(8): unknown relation, must stay sequential *)
  check_status
    (prog_sym
       "      DO I = 1, 50\n        T(IX(7) + I) = 1.0\n        T(IX(8) + I) = 2.0\n      ENDDO\n")
    "T" "I" "sequential"

let test_unique_radix_independence () =
  (* the unique() lowering shape: I + 1024*K is injective per iteration *)
  check_status
    (prog_sym
       "      DO K = 1, 50\n        T(3 + 1024*K) = 1.0\n        T(7 + 1024*K) = 2.0\n      ENDDO\n")
    "T" "K" "parallel"

(* ---------------- scalars, reductions, privatization ---------------- *)

let test_scalar_reduction () =
  check_status
    (prog "      S = 0.0\n      DO I = 1, 50\n        S = S + A(I) * B(I)\n      ENDDO\n      WRITE(6,*) S\n")
    "T" "I" "parallel"

let test_scalar_max_reduction () =
  check_status
    (prog "      S = 0.0\n      DO I = 1, 50\n        S = MAX(S, A(I))\n      ENDDO\n      WRITE(6,*) S\n")
    "T" "I" "parallel"

let test_scalar_private () =
  check_status
    (prog "      DO I = 1, 50\n        TMP = A(I) * 2.0\n        B(I) = TMP + 1.0\n      ENDDO\n")
    "T" "I" "parallel"

let test_scalar_carried () =
  check_status
    (prog "      PREV = 0.0\n      DO I = 1, 50\n        B(I) = PREV\n        PREV = A(I)\n      ENDDO\n")
    "T" "I" "sequential"

let test_io_blocks () =
  check_status
    (prog "      DO I = 1, 50\n        WRITE(6,*) A(I)\n      ENDDO\n")
    "T" "I" "sequential"

let test_call_blocks () =
  let src =
    "      PROGRAM T\n      DIMENSION A(64)\n      DO I = 1, 50\n        CALL F(I)\n      ENDDO\n      END\n      SUBROUTINE F(I)\n      COMMON /C/ B(64)\n      B(I) = I\n      END\n"
  in
  check_status src "T" "I" "sequential"

let test_index_modified_blocks () =
  check_status
    (prog "      DO I = 1, 50\n        A(I) = 1.0\n        I = I + 0\n      ENDDO\n")
    "T" "I" "sequential"

let test_array_privatization () =
  (* B fully written then read each iteration: privatizable *)
  check_status
    (prog
       "      DO I = 1, 50\n        DO K = 1, 100\n          B(K) = A(K) + I\n        ENDDO\n        S = 0.0\n        DO K = 1, 100\n          S = S + B(K)\n        ENDDO\n        C(I,1) = S\n      ENDDO\n")
    "T" "I" "parallel"

let test_array_privatization_fails_on_uncovered_read () =
  (* writes B(1:50) but reads B(60): kill analysis must refuse *)
  check_status
    (prog
       "      DO I = 1, 50\n        DO K = 1, 50\n          B(K) = A(K) + I\n        ENDDO\n        C(I,1) = B(60)\n      ENDDO\n")
    "T" "I" "sequential"

let test_conditional_write_no_kill () =
  (* conditional write does not kill the later read *)
  check_status
    (prog
       "      DO I = 1, 50\n        IF (A(I) .GT. 0.0) B(1) = A(I)\n        A(I) = B(1)\n      ENDDO\n")
    "T" "I" "sequential"

let test_profitability_gate () =
  check_status
    (prog "      DO I = 1, 3\n        A(I) = 1.0\n      ENDDO\n")
    "T" "I" "safe" (* safe but below min_trip: not marked *)

let test_trust_nonlinear_ablation () =
  let cfg =
    { Parallelizer.Parallelize.default_config with trust_nonlinear = true }
  in
  check_status ~config:cfg
    (prog_sym "      DO I = 1, 16\n        A(IX(I)) = B(I)\n      ENDDO\n")
    "T" "I" "parallel"

(* ---------------- peeling ---------------- *)

let test_peel_for_liveout_private_array () =
  (* privatized COMMON array that is live after the loop: peel *)
  let src =
    "      PROGRAM T\n      COMMON /W/ B(100)\n      DIMENSION A(100)\n      DO I = 1, 50\n        DO K = 1, 100\n          B(K) = I + K\n        ENDDO\n        S = 0.0\n        DO K = 1, 100\n          S = S + B(K)\n        ENDDO\n        A(I) = S\n      ENDDO\n      WRITE(6,*) B(3), A(5)\n      END\n"
  in
  let rep =
    List.find
      (fun (r : Parallelizer.Parallelize.loop_report) ->
        r.rep_index = "I" && r.rep_unit = "T")
      (reports_of src)
  in
  Alcotest.(check bool) "peeled" true rep.rep_peeled;
  (* semantics: peeled parallel run matches the original sequential one *)
  let p = Core.Pipeline.normalize (parse src) in
  let opt, _ = Parallelizer.Parallelize.run p in
  Alcotest.(check string)
    "peel output" (run_str src)
    (Runtime.Interp.run_program ~threads:4 opt)

let suite =
  [
    ("siv: independent", `Quick, test_siv_independent);
    ("siv: backward recurrence", `Quick, test_siv_shifted_read_backward);
    ("siv: forward recurrence", `Quick, test_siv_shifted_read_forward);
    ("ziv: same element", `Quick, test_ziv_same_element);
    ("ziv: output dependence", `Quick, test_ziv_distinct_elements);
    ("gcd: strided", `Quick, test_gcd_strided);
    ("banerjee: disjoint offset", `Quick, test_banerjee_offset);
    ("mdim: column writes", `Quick, test_multidim_column);
    ("mdim: transpose dependence", `Quick, test_multidim_transpose_dep);
    ("symbolic: bound", `Quick, test_symbolic_bound_siv);
    ("range: matching stride", `Quick, test_range_test_symbolic_stride);
    ("range: mismatched stride", `Quick, test_range_test_mismatched_stride);
    ("guard: subscripted subscript", `Quick, test_subscripted_subscript_guard);
    ("atoms: invariant cancels", `Quick, test_invariant_atom_cancels);
    ("atoms: distinct bases conflict", `Quick, test_two_invariant_atoms_conflict);
    ("gen-gcd: unique radix", `Quick, test_unique_radix_independence);
    ("scalar: sum reduction", `Quick, test_scalar_reduction);
    ("scalar: max reduction", `Quick, test_scalar_max_reduction);
    ("scalar: private temp", `Quick, test_scalar_private);
    ("scalar: carried", `Quick, test_scalar_carried);
    ("blocker: I/O", `Quick, test_io_blocks);
    ("blocker: CALL", `Quick, test_call_blocks);
    ("blocker: index modified", `Quick, test_index_modified_blocks);
    ("privatize: temp array", `Quick, test_array_privatization);
    ("privatize: uncovered read", `Quick, test_array_privatization_fails_on_uncovered_read);
    ("privatize: conditional write", `Quick, test_conditional_write_no_kill);
    ("profitability gate", `Quick, test_profitability_gate);
    ("ablation: trust_nonlinear", `Quick, test_trust_nonlinear_ablation);
    ("peeling: live-out private array", `Quick, test_peel_for_liveout_private_array);
  ]
