(* parinline -- command-line driver for the enhanced-inlining pipeline.

   Usage:
     parinline compile  FILE.f [--annot FILE.annot] [--mode MODE] [-o OUT]
     parinline report   FILE.f [--annot FILE.annot]
     parinline run      FILE.f [--annot FILE.annot] [--mode MODE] [--threads N]

   MODE is one of: none | conventional | annotation (default: annotation). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mode_of_string = function
  | "none" | "no-inlining" -> Core.Pipeline.No_inlining
  | "conventional" -> Core.Pipeline.Conventional
  | "annotation" | "annotation-based" -> Core.Pipeline.Annotation_based
  | m -> failwith ("unknown mode: " ^ m)

let load source_file annot_file =
  let source = read_file source_file in
  let annot_source =
    match annot_file with Some f -> read_file f | None -> ""
  in
  (source, annot_source)

let compile_run source_file annot_file mode out =
  let source, annot_source = load source_file annot_file in
  let r =
    Core.Pipeline.run_source ~mode:(mode_of_string mode) ~annot_source source
  in
  let text = Frontend.Pretty.program_to_string r.res_program in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc
  | None -> print_string text);
  Printf.eprintf "parallel loops: %d, code size: %d lines\n"
    (List.length r.res_marked) r.res_code_size

let report_run source_file annot_file =
  let source, annot_source = load source_file annot_file in
  (* parse once so loop ids are comparable across configurations *)
  let program = Frontend.Resolve.parse source in
  let annots =
    if String.trim annot_source = "" then []
    else Core.Annot_parser.parse_annotations annot_source
  in
  let base =
    Core.Pipeline.run ~mode:Core.Pipeline.No_inlining ~annots program
  in
  List.iter
    (fun mode ->
      let r = Core.Pipeline.run ~mode ~annots program in
      let par, loss, extra = Core.Pipeline.table2_counts ~baseline:base r in
      Printf.printf "%-18s #par-loops=%3d  #par-loss=%3d  #par-extra=%3d  size=%5d\n"
        (Core.Pipeline.mode_name mode) par loss extra r.res_code_size;
      List.iter
        (fun (rep : Parallelizer.Parallelize.loop_report) ->
          Printf.printf "  [%s] loop %d (DO %s): %s%s\n" rep.rep_unit
            rep.rep_loop_id rep.rep_index
            (if rep.rep_marked then "PARALLEL"
             else if rep.rep_safe then "safe (not profitable)"
             else "sequential: " ^ rep.rep_reason)
            (if rep.rep_private <> [] then
               " private(" ^ String.concat "," rep.rep_private ^ ")"
             else ""))
        r.res_reports)
    [ Core.Pipeline.No_inlining; Core.Pipeline.Conventional;
      Core.Pipeline.Annotation_based ]

let exec_run source_file annot_file mode threads =
  let source, annot_source = load source_file annot_file in
  let r =
    Core.Pipeline.run_source ~mode:(mode_of_string mode) ~annot_source source
  in
  let t0 = Unix.gettimeofday () in
  let output = Runtime.Interp.run_program ~threads r.res_program in
  let dt = Unix.gettimeofday () -. t0 in
  print_string output;
  Printf.eprintf "elapsed: %.3fs (threads=%d)\n" dt threads

(* ---- cmdliner plumbing ---- *)

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.f")

let annot_arg =
  Arg.(value & opt (some file) None & info [ "annot" ] ~docv:"FILE.annot")

let mode_arg =
  Arg.(value & opt string "annotation" & info [ "mode" ] ~docv:"MODE")

let out_arg = Arg.(value & opt (some string) None & info [ "o"; "output" ])
let threads_arg = Arg.(value & opt int 4 & info [ "threads" ])

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Optimize a program and print the result")
    Term.(const compile_run $ source_arg $ annot_arg $ mode_arg $ out_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Compare the three inlining configurations")
    Term.(const report_run $ source_arg $ annot_arg)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Optimize then execute a program")
    Term.(const exec_run $ source_arg $ annot_arg $ mode_arg $ threads_arg)

let bench_run name threads =
  match Perfect.Suite.find name with
  | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 1
  | Some b ->
      let row = Perfect.Experiment.table2_row b in
      Printf.printf "%s: %s\n" b.name b.description;
      let show label (c : Perfect.Experiment.mode_cells) =
        Printf.printf "  %-16s par=%3d loss=%3d extra=%3d size=%5d\n" label
          c.m_par c.m_loss c.m_extra c.m_size
      in
      show "no-inlining" row.t2_no_inline;
      show "conventional" row.t2_conventional;
      show "annotation" row.t2_annotation;
      let f = Perfect.Experiment.fig20_row ~threads b in
      Printf.printf
        "  fig20 (threads=%d): seq=%.3fs  speedups: none=%.2f conv=%.2f annot=%.2f\n"
        threads f.f_seq f.f_no_inline f.f_conventional f.f_annotation

let bench_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let bench_cmd =
  Cmd.v (Cmd.info "bench" ~doc:"Run one PERFECT benchmark's experiments")
    Term.(const bench_run $ bench_name_arg $ threads_arg)

let () =
  let info = Cmd.info "parinline" ~doc:"Annotation-based inlining for interprocedural parallelization" in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; report_cmd; run_cmd; bench_cmd ]))
