(** Scalar classification for a candidate loop: each scalar written in the
    body is either privatizable (assigned before every use in each
    iteration), a recognized reduction, or a parallelization blocker. *)

open Frontend
module S = Set.Make (String)

type classification =
  | Read_only
  | Private
  | Reduction of Ast.red_op
  | Blocker of string

(* Is every statement touching [v] a reduction update [v = v op e]? *)
let reduction_of u body v : Ast.red_op option =
  let op_found = ref None in
  let ok = ref true in
  let note op =
    match !op_found with
    | None -> op_found := Some op
    | Some op' -> if op <> op' then ok := false
  in
  let reads_v e = List.mem v (Ast.expr_vars e) in
  (* Flatten an Add/Sub chain into addends; [v] must appear exactly once,
     positively, as a direct addend: S = S + a + b - c. *)
  let sum_reduction rhs =
    let rec addends sign e acc =
      match e with
      | Ast.Binop (Ast.Add, a, b) -> addends sign a (addends sign b acc)
      | Ast.Binop (Ast.Sub, a, b) -> addends sign a (addends (-sign) b acc)
      | e -> (sign, e) :: acc
    in
    let parts = addends 1 rhs [] in
    let vs, others =
      List.partition
        (function _, Ast.Var x -> String.equal x v | _ -> false)
        parts
    in
    match vs with
    | [ (1, _) ] -> List.for_all (fun (_, e) -> not (reads_v e)) others
    | _ -> false
  in
  let rec walk stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.node with
        | Ast.Assign (Ast.Lvar v', rhs) when String.equal v v' -> (
            match rhs with
            | Ast.Binop ((Ast.Add | Ast.Sub), _, _) when sum_reduction rhs ->
                note Ast.Rsum
            | Ast.Binop (Ast.Mul, Ast.Var x, e) when String.equal x v && not (reads_v e) ->
                note Ast.Rprod
            | Ast.Binop (Ast.Mul, e, Ast.Var x) when String.equal x v && not (reads_v e) ->
                note Ast.Rprod
            | Ast.Func_call (("MAX" | "AMAX1" | "DMAX1" | "MAX0"), [ a; b ])
              when (a = Ast.Var v && not (reads_v b))
                   || (b = Ast.Var v && not (reads_v a)) ->
                note Ast.Rmax
            | Ast.Func_call (("MIN" | "AMIN1" | "DMIN1" | "MIN0"), [ a; b ])
              when (a = Ast.Var v && not (reads_v b))
                   || (b = Ast.Var v && not (reads_v a)) ->
                note Ast.Rmin
            | _ -> ok := false)
        | Ast.Assign (lv, rhs) ->
            if reads_v rhs then ok := false;
            if List.exists reads_v (Ast.lvalue_indices lv) then ok := false
        | Ast.Do_loop l ->
            if String.equal l.index v then ok := false;
            if reads_v l.lo || reads_v l.hi || reads_v l.step then ok := false;
            walk l.body
        | Ast.If (c, t, e) ->
            if reads_v c then ok := false;
            walk t;
            walk e
        | Ast.Call (_, args) -> if List.exists reads_v args then ok := false
        | Ast.Print es -> if List.exists reads_v es then ok := false
        | Ast.Tagged (_, b) -> walk b
        | Ast.Return | Ast.Stop _ | Ast.Continue -> ())
      stmts
  in
  ignore u;
  walk body;
  if !ok then !op_found else None

(* Structured definitely-assigned-before-used walk.  Returns
   (ok, assigned_after): [ok] = no read of [v] can precede an assignment
   within one iteration; [assigned_after] = v definitely assigned when the
   statements complete. *)
let rec def_before_use v assigned stmts : bool * bool =
  List.fold_left
    (fun (ok, assigned) (s : Ast.stmt) ->
      if not ok then (false, assigned)
      else
        let reads_v e = List.mem v (Ast.expr_vars e) in
        match s.node with
        | Ast.Assign (lv, rhs) ->
            let read =
              reads_v rhs || List.exists reads_v (Ast.lvalue_indices lv)
            in
            let ok = ok && ((not read) || assigned) in
            let assigned =
              assigned
              ||
              match lv with
              | Ast.Lvar v' -> String.equal v v'
              | _ -> false
            in
            (ok, assigned)
        | Ast.Do_loop l ->
            let bound_read = reads_v l.lo || reads_v l.hi || reads_v l.step in
            let ok = ok && ((not bound_read) || assigned) in
            let iter_assigned = String.equal l.index v in
            let body_ok, _ =
              def_before_use v (assigned || iter_assigned) l.body
            in
            (* loop may run zero times: assigned state unchanged *)
            (ok && body_ok, assigned || iter_assigned)
        | Ast.If (c, t, e) ->
            let ok = ok && ((not (reads_v c)) || assigned) in
            let ok_t, a_t = def_before_use v assigned t in
            let ok_e, a_e = def_before_use v assigned e in
            (ok && ok_t && ok_e, a_t && a_e)
        | Ast.Call (_, args) ->
            (* a call may read v through COMMON: conservative *)
            let ok = ok && ((not (List.exists reads_v args)) || assigned) in
            (ok, assigned)
        | Ast.Print es ->
            (ok && ((not (List.exists reads_v es)) || assigned), assigned)
        | Ast.Tagged (_, b) -> def_before_use v assigned b
        | Ast.Return | Ast.Stop _ | Ast.Continue -> (ok, assigned))
    (true, assigned) stmts

(** Classify scalar (or whole-array-accessed) name [v] for the candidate
    loop body. *)
let classify u body v : classification =
  let accs =
    List.filter
      (fun (a : Access.t) -> String.equal a.ca_name v)
      (Access.collect body)
  in
  let writes = List.filter (fun a -> a.Access.ca_write) accs in
  if writes = [] then Read_only
  else
    match reduction_of u body v with
    | Some op -> Reduction op
    | None ->
        let ok, _ = def_before_use v false body in
        (* Whole-array accesses mixed with element accesses: privatization
           via the scalar rule only if every access is whole-array. *)
        let uniform =
          List.for_all (fun a -> a.Access.ca_index = []) accs
          || not (Ast.is_array u v)
        in
        if ok && uniform then Private
        else if not ok then Blocker "read before write"
        else Blocker "mixed whole/element array access"
