lib/parallelizer/access.ml: Analysis Ast Frontend Hashtbl List Usedef
