lib/parallelizer/scalars.ml: Access Ast Frontend List Set String
