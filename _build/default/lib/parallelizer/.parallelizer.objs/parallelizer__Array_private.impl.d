lib/parallelizer/array_private.ml: Access Analysis Ast Ctx Dependence Frontend List Option Poly Range_test Set Simplify String
