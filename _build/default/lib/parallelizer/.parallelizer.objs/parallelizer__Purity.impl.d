lib/parallelizer/purity.ml: Analysis Ast Frontend List Set String Usedef
