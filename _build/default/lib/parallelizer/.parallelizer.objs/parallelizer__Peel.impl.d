lib/parallelizer/peel.ml: Analysis Ast Frontend List String
