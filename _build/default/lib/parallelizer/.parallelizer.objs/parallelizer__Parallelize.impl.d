lib/parallelizer/parallelize.ml: Access Analysis Array_private Ast Ctx Ddtest Dependence Frontend List Peel Poly Printf Purity Scalars Set Simplify String Usedef
