(** Last-iteration peeling.

    When a privatized variable is live after the loop, the paper's Polaris
    "peels the last iteration of the loop before parallelizing all the
    other iterations", so the shared copies finish with the values the
    sequential execution would have produced.  Only unit-step loops are
    peeled; the parallelizer refuses live-out privatization otherwise. *)

open Frontend

(* Deep-copy statements, preserving sids and loop ids (provenance). *)
let rec copy_stmts stmts = List.map copy_stmt stmts

and copy_stmt (s : Ast.stmt) =
  let node =
    match s.node with
    | Ast.Do_loop l -> Ast.Do_loop { l with body = copy_stmts l.body }
    | Ast.If (c, t, e) -> Ast.If (c, copy_stmts t, copy_stmts e)
    | Ast.Tagged (tag, b) -> Ast.Tagged (tag, copy_stmts b)
    | n -> n
  in
  { s with node }

(** [peel_last l omp] returns the replacement statements: the main loop
    over [lo .. hi-1] marked parallel with [omp], followed by a guarded
    copy of the body for the final iteration.

    When the body leaves the bound expression's inputs unmodified, the
    index is *substituted* by [hi] inside the peeled copy (with a trailing
    assignment restoring Fortran's index-after-loop value).  Substituting
    keeps the peeled subscripts analyzable when an enclosing loop is
    examined later; the assignment form would leave an opaque scalar
    subscript behind. *)
let peel_last (l : Ast.do_loop) (omp : Ast.omp) : Ast.stmt list =
  assert (l.step = Ast.Int_const 1);
  let main =
    {
      l with
      hi = Ast.Binop (Ast.Sub, l.hi, Ast.Int_const 1);
      parallel = Some omp;
    }
  in
  let hi_mutable =
    let w = Analysis.Usedef.written l.body in
    List.exists (fun v -> Analysis.Usedef.mem v w) (Ast.expr_vars l.hi)
  in
  let copied = copy_stmts l.body in
  let last_body =
    if hi_mutable then
      Ast.mk (Ast.Assign (Ast.Lvar l.index, l.hi)) :: copied
    else
      Ast.map_exprs_in_stmts
        (function
          | Ast.Var v when String.equal v l.index -> l.hi
          | e -> e)
        copied
      @ [
          Ast.mk
            (Ast.Assign
               (Ast.Lvar l.index, Ast.Binop (Ast.Add, l.hi, Ast.Int_const 1)));
        ]
  in
  let guard =
    Ast.mk (Ast.If (Ast.Binop (Ast.Le, l.lo, l.hi), last_body, []))
  in
  [ Ast.mk (Ast.Do_loop main); guard ]
