(** Purity analysis for user FUNCTIONs.

    A function invocation inside a loop normally blocks parallelization
    (like a CALL: unknown side effects).  A function is *pure* when it

    - contains no CALLs, no I/O and no STOP,
    - declares no COMMON blocks (so it can only read globals it cannot
      even name), and
    - writes nothing but its own locals and result variable (never a
      formal parameter).

    Pure functions behave like intrinsics: invocations are opaque
    value-producing atoms whose operands are their arguments, which is
    exactly how {!Dependence.Poly} already treats an unknown
    [Func_call].  The parallelizer accepts them when
    [config.allow_pure_functions] is set (an ablation in the paper's
    spirit: Polaris special-cases such "side-effect-free" routines). *)

open Frontend
open Analysis
module S = Set.Make (String)

let is_pure (program : Ast.program) (name : string) : bool =
  match Ast.find_unit program name with
  | Some u -> (
      match u.u_kind with
      | Ast.Function _ ->
          u.u_commons = []
          && (not (Usedef.has_io u.u_body))
          && Usedef.calls u.u_body = []
          && Usedef.func_calls u.u_body = []
          &&
          let writes =
            match Usedef.written u.u_body with
            | Usedef.All -> None
            | Usedef.Vars w -> Some w
          in
          (match writes with
          | None -> false
          | Some w ->
              (* no formal parameter is written *)
              not (List.exists (fun p -> S.mem p w) u.u_params))
      | Ast.Subroutine | Ast.Main -> false)
  | None -> false

(** All pure functions of a program, by name. *)
let pure_functions (program : Ast.program) : S.t =
  List.fold_left
    (fun acc u ->
      match u.Ast.u_kind with
      | Ast.Function _ when is_pure program u.u_name -> S.add u.u_name acc
      | _ -> acc)
    S.empty program.p_units
