(** Array privatization via kill analysis.

    An array with loop-carried dependences can still be privatized if, in
    every iteration of the candidate loop, each read is covered by an
    earlier unconditional write of the same iteration (the temporary-array
    pattern of Section II-B.3 of the paper).

    Regions are rectangular boxes with symbolic polynomial bounds, one per
    dimension, derived from the access subscript and the enclosing inner
    loops.  A read is covered when some single earlier write box provably
    contains its box ([Ctx.prove_ge] on the per-dimension differences).

    If the array is live after the loop, privatization additionally
    requires the written region to be independent of the candidate index,
    and the parallelizer must peel the last iteration so the global copy
    ends with the sequential values. *)

open Frontend
open Analysis
open Dependence
module S = Set.Make (String)

type box = (Poly.t * Poly.t) list  (** per-dimension [lo, hi] *)

(* [is_prefix p q]: the IF-branch path [p] encloses [q]. *)
let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | x :: p', y :: q' -> x = y && is_prefix p' q'
  | _ -> false

(* Box of one access: subscript extremes over its inner loops. *)
let box_of (ctx : Ctx.t) (a : Access.t) : box option =
  let u = ctx.cunit in
  let inners =
    List.map
      (fun (iv, lo, hi) -> { Range_test.iv; ilo = lo; ihi = hi })
      a.ca_inner
  in
  let dim e =
    let p = Poly.of_expr (Simplify.simplify u e) in
    match
      ( Range_test.extreme ctx ~inners ~maximize:false p,
        Range_test.extreme ctx ~inners ~maximize:true p )
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None
  in
  if a.ca_index = [] then
    (* whole-array access: covers everything; represented as empty box *)
    Some []
  else
    let dims = List.map dim a.ca_index in
    if List.for_all Option.is_some dims then
      Some (List.map Option.get dims)
    else None

(* [contains outer inner]: inner box provably inside outer box. *)
let contains ctx (outer : box) (inner : box) =
  match (outer, inner) with
  | [], _ -> true (* whole-array write covers anything *)
  | _, [] -> false
  | _ ->
      List.length outer = List.length inner
      && List.for_all2
           (fun (olo, ohi) (ilo, ihi) ->
             Ctx.prove_ge ctx (Poly.sub ilo olo) 0
             && Ctx.prove_ge ctx (Poly.sub ohi ihi) 0)
           outer inner

let box_mentions_index index (b : box) =
  List.exists
    (fun (lo, hi) ->
      let mentions p =
        List.exists
          (fun a -> List.mem index (Ast.expr_vars a))
          (Poly.atoms p)
      in
      mentions lo || mentions hi)
    b

(** Can array [name] be privatized for the candidate loop whose body
    produced [accesses]?  Returns [Some live_out_needs_peel] on success. *)
let privatizable (ctx : Ctx.t) ~(live_out : bool)
    (accesses : Access.t list) : bool =
  let index = ctx.candidate.index in
  (* Privatization targets the *temporary array* pattern: values written
     then consumed within the iteration.  An array that is only written is
     not a temporary; Polaris would not privatize it (and doing so merely
     to discard dead stores would diverge from the paper's accounting). *)
  if not (List.exists (fun (a : Access.t) -> not a.ca_write) accesses) then
    false
  else
  (* accumulate unconditional write boxes in source order *)
  let exception No in
  try
    let _written =
      List.fold_left
        (fun written (a : Access.t) ->
          if a.ca_write then
            if a.ca_cond && live_out then
              (* a conditional write under live-out would leave earlier
                 iterations' values visible, which peeling cannot
                 reproduce *)
              raise No
            else
              match box_of ctx a with
              | Some b ->
                  if live_out && box_mentions_index index b then raise No
                  else (a.ca_path, b) :: written
              | None ->
                  (* unknown write region: cannot kill; with live-out we
                     also cannot verify the region is the same every
                     iteration, which peeling requires *)
                  if live_out then raise No else written
          else
            match box_of ctx a with
            | Some b ->
                if
                  List.exists
                    (fun (wpath, w) ->
                      is_prefix wpath a.ca_path && contains ctx w b)
                    written
                then written
                else raise No
            | None -> raise No)
        [] accesses
    in
    true
  with No -> false
