(** Array linearization: rewrite every reference to an array into an
    equivalent single-subscript reference, and flatten its declaration to
    one dimension "without any explicit shape information" (the paper's
    words) -- i.e. the declared dimensions are multiplied into a single
    extent and the structure is lost to dimension-by-dimension dependence
    testing.

    Column-major (Fortran) order: A(i1,i2,i3) with dims (d1,d2,d3) maps to
    A(i1 + d1*(i2-1) + d1*d2*(i3-1)). *)

open Frontend

(** Linear (1-based) index expression for subscripts [idx] under dims
    [dims]. *)
let linear_index (dims : Ast.expr list) (idx : Ast.expr list) : Ast.expr =
  let open Ast in
  let rec go stride dims idx =
    match (dims, idx) with
    | _, [] -> Int_const 0
    | [], [ e ] ->
        (* last dim (possibly assumed-size): no further stride needed *)
        Binop (Mul, stride, Binop (Sub, e, Int_const 1))
    | d :: dims', e :: idx' ->
        Binop
          ( Add,
            Binop (Mul, stride, Binop (Sub, e, Int_const 1)),
            go (Binop (Mul, stride, d)) dims' idx' )
    | [], _ :: _ -> invalid_arg "linear_index: more subscripts than dims"
  in
  Binop (Add, Int_const 1, go (Int_const 1) dims idx)

let dims_exprs (d : Ast.decl) =
  List.map
    (function Ast.Dim_expr e -> e | Ast.Dim_star -> Ast.Int_const 1)
    d.Ast.d_dims

(** Total extent of a declaration as an expression. *)
let total_extent (d : Ast.decl) =
  match d.Ast.d_dims with
  | [] -> Ast.Int_const 1
  | [ Ast.Dim_star ] -> Ast.Int_const 1
  | dims ->
      Analysis.Simplify.basic_simplify
        (List.fold_left
           (fun acc dim ->
             match dim with
             | Ast.Dim_expr e -> Ast.Binop (Ast.Mul, acc, e)
             | Ast.Dim_star -> acc)
           (Ast.Int_const 1) dims)

(** Rewrite all references to [name] in [u] to linearized form and flatten
    the declaration.  Assumed-size declarations stay assumed-size. *)
let linearize_array (u : Ast.program_unit) (name : string) : Ast.program_unit =
  match Ast.find_decl u name with
  | None -> u
  | Some d when List.length d.d_dims <= 1 -> u
  | Some d ->
      let dims = dims_exprs d in
      let rewrite e =
        match e with
        | Ast.Array_ref (a, idx) when String.equal a name && List.length idx > 1
          ->
            Ast.Array_ref (a, [ linear_index dims idx ])
        | e -> e
      in
      let body = Ast.map_exprs_in_stmts rewrite u.u_body in
      (* map_exprs_in_stmts rewrites subscript *contents*; the left-hand
         side array reference itself needs an explicit pass *)
      let body =
        Ast.map_stmts
          (fun s ->
            match s.Ast.node with
            | Ast.Assign (Ast.Larray (a, idx), e)
              when String.equal a name && List.length idx > 1 ->
                [
                  {
                    s with
                    Ast.node =
                      Ast.Assign
                        (Ast.Larray (a, [ linear_index dims idx ]), e);
                  };
                ]
            | _ -> [ s ])
          body
      in
      let has_star =
        List.exists (function Ast.Dim_star -> true | _ -> false) d.d_dims
      in
      let new_dims =
        if has_star then [ Ast.Dim_star ] else [ Ast.Dim_expr (total_extent d) ]
      in
      let decls =
        List.map
          (fun d' ->
            if String.equal d'.Ast.d_name name then
              { d' with Ast.d_dims = new_dims }
            else d')
          u.u_decls
      in
      { u with u_body = body; u_decls = decls }
