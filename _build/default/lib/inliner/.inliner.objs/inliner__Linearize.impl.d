lib/inliner/linearize.ml: Analysis Ast Frontend List String
