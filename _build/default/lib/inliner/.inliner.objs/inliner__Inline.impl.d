lib/inliner/inline.ml: Analysis Ast Frontend Linearize List Parallelizer Peel Printf Set String Usedef
