lib/runtime/pool.mli:
