lib/runtime/interp.mli: Frontend Hashtbl
