lib/runtime/interp.ml: Analysis Array Ast Atomic Buffer Diag Float Frontend Fun Hashtbl Intrinsics Lazy List Mutex Option Pool Printexc Printf String Unix Value
