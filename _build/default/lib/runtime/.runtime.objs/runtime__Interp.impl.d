lib/runtime/interp.ml: Analysis Array Ast Buffer Float Frontend Fun Hashtbl Intrinsics Lazy List Mutex Option Pool Printf String Unix Value
