lib/runtime/value.ml: Array Frontend List Printf
