(** Interpreter for the Fortran subset with OpenMP-style execution of
    directive-carrying loops across OCaml 5 domains.

    Parallel semantics follow the directives emitted by
    {!Parallelizer.Parallelize}: block-partitioned iterations over a
    persistent {!Pool}, fresh per-worker storage for PRIVATE names
    (installed as dynamic overrides so callees see the worker's copy of a
    privatized COMMON variable), identity-seeded per-worker REDUCTION
    accumulators merged at the join, and sequential execution of nested
    parallel regions. *)

exception Stop_program of string option
(** Raised internally by STOP; [run_program] converts it to output. *)

type prof_cell = {
  mutable pt : float;  (** cumulative seconds *)
  mutable pn : int;  (** executions *)
}

(** [run_program ~threads program] executes the program's MAIN unit and
    returns everything it printed.  [threads] sizes the worker pool
    (default 1 = fully sequential).  [profile], when given, accumulates
    per-loop-id wall time and execution counts for loops that carry a
    directive and execute outside any parallel region — the raw data for
    the empirical tuner. *)
val run_program :
  ?threads:int -> ?profile:(int, prof_cell) Hashtbl.t -> Frontend.Ast.program -> string

(** Like {!run_program}, but also returns the final contents of every
    COMMON block member (as floats, keyed ["BLOCK/position"]) -- the
    strongest observable state on which a sequential and a parallel run
    can be compared. *)
val run_program_state :
  ?threads:int ->
  ?profile:(int, prof_cell) Hashtbl.t ->
  Frontend.Ast.program ->
  string * (string * float array) list
