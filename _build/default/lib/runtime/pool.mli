(** Persistent worker-domain pool for parallel loop execution.

    Spawning a [Domain] per parallel loop costs hundreds of microseconds;
    the pool parks [n-1] workers once per program run and hands them chunk
    indices per loop.  Use only from one domain at a time and never
    reentrantly (the interpreter runs nested parallel loops sequentially,
    which guarantees both). *)

type t

(** The first exception captured from a dead worker, annotated with the
    label of the owning parallel loop.  Raised only when [parallel_for]
    was given a [label]; unlabeled calls re-raise the exception raw. *)
exception Worker_failure of string * exn

(** [create n] spawns [n-1] worker domains ([n <= 1] gives a pool that
    runs everything on the caller). *)
val create : int -> t

(** [parallel_for p ~chunks f] runs [f c] for each [c] in
    [0 .. chunks-1] across the pool, the caller participating, and blocks
    until all complete.  The first exception raised by any chunk is
    re-raised after the join: raw without [label], wrapped in
    {!Worker_failure} with it. *)
val parallel_for : ?label:string -> t -> chunks:int -> (int -> unit) -> unit

(** Stop and join all workers.  The pool must not be used afterwards. *)
val shutdown : t -> unit
