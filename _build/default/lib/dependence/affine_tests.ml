(** Classic dependence tests on affine difference equations.

    The driver reduces a per-dimension dependence problem to the question
    "can  sum_i c_i * x_i + c0 = 0  with each x_i in a (possibly
    half-open) integer box?".  [gcd_test] and [banerjee_test] answer it
    conservatively: [true] means *proven independent*. *)

type ext = Neg_inf | Fin of int | Pos_inf

let ext_add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (x + y)
  | Neg_inf, Pos_inf | Pos_inf, Neg_inf -> invalid_arg "ext_add: inf - inf"
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Pos_inf, _ | _, Pos_inf -> Pos_inf

(* c * [lo, hi] *)
let scale_interval c (lo, hi) =
  if c = 0 then (Fin 0, Fin 0)
  else
    let mul = function
      | Fin x -> Fin (c * x)
      | Neg_inf -> if c > 0 then Neg_inf else Pos_inf
      | Pos_inf -> if c > 0 then Pos_inf else Neg_inf
    in
    if c > 0 then (mul lo, mul hi) else (mul hi, mul lo)

(** GCD test: [coeffs] are the integer coefficients, [c0] the constant.
    Independent when gcd(coeffs) does not divide [-c0]. *)
let gcd_test ~coeffs ~c0 =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  match coeffs with
  | [] -> c0 <> 0
  | _ ->
      let g = List.fold_left (fun acc c -> gcd acc (abs c)) 0 coeffs in
      g <> 0 && c0 mod g <> 0

(** Banerjee bounds: independent when the reachable interval of the
    difference expression excludes zero.  [terms] pairs each coefficient
    with its variable's bounds. *)
let banerjee_test ~(terms : (int * (ext * ext)) list) ~c0 =
  try
    let lo, hi =
      List.fold_left
        (fun (alo, ahi) (c, bounds) ->
          let tlo, thi = scale_interval c bounds in
          (ext_add alo tlo, ext_add ahi thi))
        (Fin c0, Fin c0) terms
    in
    (* independent iff 0 outside [lo, hi] *)
    (match lo with Fin l when l > 0 -> true | Pos_inf -> true | _ -> false)
    || match hi with Fin h when h < 0 -> true | Neg_inf -> true | _ -> false
  with Invalid_argument _ -> false
