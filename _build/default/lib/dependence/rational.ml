(** Small exact rational arithmetic for the Fourier-Motzkin eliminator.

    Values are normalized fractions of OCaml [int]s.  The dependence
    systems this library builds are tiny (a handful of variables with
    coefficients bounded by array strides), so native ints never approach
    overflow in practice; [make] still normalizes by the gcd at every
    step to keep magnitudes minimal. *)

type t = { num : int; den : int }  (** den > 0, gcd(|num|, den) = 1 *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rational.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = max 1 (gcd num den) in
  { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then invalid_arg "Rational.div: by zero";
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let sign a = compare a.num 0
let compare a b = compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let is_zero a = a.num = 0
let to_float a = float_of_int a.num /. float_of_int a.den
let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den
