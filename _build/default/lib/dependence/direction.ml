(** Direction vectors for a dependence between two references under a
    common loop nest.

    For loops [L1..Ln] enclosing both references, a direction vector
    assigns each loop one of [<], [=], [>]: the source iteration is
    earlier, equal or later than the sink in that loop.  The classic use
    is reporting and loop-interchange legality; the parallelizer itself
    only needs "is a dependence carried here", but the vectors make the
    analysis inspectable and are exercised by the test-suite.

    Implementation: per dimension, the subscript difference is expressed
    over per-loop distance variables [D_k] (sink index minus source
    index); a candidate vector constrains each [D_k] to [>= 1], [= 0] or
    [<= -1], and the conjunction of all dimensions' equations plus the
    constraints goes to the Fourier-Motzkin eliminator.  Non-affine
    dimensions are ignored (conservatively allowing any direction). *)

open Frontend
open Analysis

type dir = Lt | Eq | Gt

let dir_str = function Lt -> "<" | Eq -> "=" | Gt -> ">"
let vector_str v = "(" ^ String.concat "," (List.map dir_str v) ^ ")"

type nest_loop = { nindex : string; nlo : Ast.expr; nhi : Ast.expr }

let dist_var k = Printf.sprintf "$D%d" k

(* Affine difference equation of one dimension over the distance
   variables, or None when not affine. *)
let dimension_equation u (nest : nest_loop list) sub_a sub_b :
    ((string * int) list * int) option =
  let pa = Poly.of_expr (Simplify.simplify u sub_a) in
  let pb = Poly.of_expr (Simplify.simplify u sub_b) in
  (* sink index = source index + D_k *)
  let pb =
    List.fold_left
      (fun p (k, { nindex; _ }) ->
        Poly.subst_var nindex
          (Poly.add (Poly.atom (Ast.Var nindex)) (Poly.atom (Ast.Var (dist_var k))))
          p)
      pb
      (List.mapi (fun k l -> (k, l)) nest)
  in
  let delta = Poly.sub pa pb in
  let vars = List.mapi (fun k _ -> dist_var k) nest in
  match Poly.affine_in ~vars delta with
  | Some (coeffs, rest) -> (
      match Poly.to_const rest with
      | Some c0 -> Some (coeffs, c0)
      | None -> None)
  | None -> None

(* All |dirs|^n combinations. *)
let rec combos n =
  if n = 0 then [ [] ]
  else
    let rest = combos (n - 1) in
    List.concat_map (fun d -> List.map (fun v -> d :: v) rest) [ Lt; Eq; Gt ]

(** Feasible direction vectors for the dependence between [sub_a] (source)
    and [sub_b] (sink) under [nest].  Dimensions whose difference is not
    affine contribute no constraints (any direction allowed). *)
let vectors (u : Ast.program_unit) (nest : nest_loop list)
    ~(subs_a : Ast.expr list) ~(subs_b : Ast.expr list) : dir list list =
  let n = List.length nest in
  let equations =
    List.filter_map
      (fun (sa, sb) -> dimension_equation u nest sa sb)
      (List.combine subs_a subs_b)
  in
  let trip_bound k (l : nest_loop) =
    (* |D_k| <= trip - 1 when the trip count is constant *)
    match
      ( Poly.to_const (Poly.of_expr (Simplify.simplify u l.nlo)),
        Poly.to_const (Poly.of_expr (Simplify.simplify u l.nhi)) )
    with
    | Some lo, Some hi when hi >= lo ->
        let t = hi - lo in
        [
          Fourier_motzkin.make_constr
            [ (dist_var k, Rational.one) ]
            (Rational.of_int t);
          Fourier_motzkin.make_constr
            [ (dist_var k, Rational.neg Rational.one) ]
            (Rational.of_int t);
        ]
    | _ -> []
  in
  let feasible vec =
    let dir_constrs =
      List.concat
        (List.mapi
           (fun k d ->
             match d with
             | Lt ->
                 [
                   (* D_k >= 1 *)
                   Fourier_motzkin.make_constr
                     [ (dist_var k, Rational.one) ]
                     (Rational.of_int (-1));
                 ]
             | Eq ->
                 [
                   Fourier_motzkin.make_constr
                     [ (dist_var k, Rational.one) ]
                     Rational.zero;
                   Fourier_motzkin.make_constr
                     [ (dist_var k, Rational.neg Rational.one) ]
                     Rational.zero;
                 ]
             | Gt ->
                 [
                   (* D_k <= -1 *)
                   Fourier_motzkin.make_constr
                     [ (dist_var k, Rational.neg Rational.one) ]
                     (Rational.of_int (-1));
                 ])
           vec)
    in
    let eq_constrs =
      List.concat_map
        (fun (coeffs, c0) ->
          let qc =
            List.map (fun (v, c) -> (v, Rational.of_int c)) coeffs
          in
          [
            Fourier_motzkin.make_constr qc (Rational.of_int c0);
            Fourier_motzkin.make_constr
              (List.map (fun (v, c) -> (v, Rational.of_int (-c))) coeffs)
              (Rational.of_int (-c0));
          ])
        equations
    in
    let trip_constrs =
      List.concat (List.mapi trip_bound nest)
    in
    match Fourier_motzkin.solve (dir_constrs @ eq_constrs @ trip_constrs) with
    | Fourier_motzkin.Infeasible -> false
    | Fourier_motzkin.Maybe_feasible -> true
  in
  List.filter feasible (combos n)

(** A dependence is carried by loop [k] (0-based, outermost first) when
    some feasible vector has [=] in positions [0..k-1] and [<] at [k]. *)
let carried_at k vecs =
  List.exists
    (fun v ->
      let rec check i = function
        | [] -> false
        | d :: rest ->
            if i < k then d = Eq && check (i + 1) rest
            else d = Lt
      in
      check 0 v)
    vecs
