(** Symbolic range test (after Blume & Eigenmann), used when subscripts are
    affine in the loop indices only up to *symbolic* coefficients -- e.g.
    the linearized [M1(JL + L*(JM-1))] of Fig. 4 of the paper.

    For a candidate loop index [I], we prove that the set of addresses
    touched at iteration [I] lies strictly below the set touched at
    iteration [I+1] (or strictly above, for decreasing layouts), for both
    access functions.  Extremes over inner-loop indices are taken by
    substituting a bound chosen by the provable sign of the coefficient. *)

open Frontend
open Analysis

type inner = { iv : string; ilo : Ast.expr; ihi : Ast.expr }

(* Substitute each inner variable with the bound that yields the requested
   extreme.  Returns None if some coefficient's sign cannot be proven. *)
let extreme ctx ~(inners : inner list) ~(maximize : bool) (p : Poly.t) :
    Poly.t option =
  let rec go p = function
    | [] -> Some p
    | { iv; ilo; ihi } :: rest -> (
        match Poly.sym_affine_in ~vars:[ iv ] p with
        | None -> None
        | Some ([], _) -> go p rest
        | Some ([ (_, coeff) ], _) ->
            let lo_p = Poly.of_expr ilo and hi_p = Poly.of_expr ihi in
            let pick_hi =
              if Ctx.prove_ge ctx coeff 0 then Some maximize
              else if Ctx.prove_ge ctx (Poly.neg coeff) 0 then
                Some (not maximize)
              else None
            in
            (match pick_hi with
            | None -> None
            | Some true -> go (Poly.subst_var iv hi_p p) rest
            | Some false -> go (Poly.subst_var iv lo_p p) rest)
        | Some (_, _) -> None)
  in
  go p inners

(** Does iteration [I] of the candidate touch (via [pa]) addresses provably
    disjoint from those touched via [pb] at iterations > I?  [step] is the
    candidate's constant step. *)
let disjoint_ranges ctx ~(index : string) ~(step : int)
    ~(inners_a : inner list) ~(inners_b : inner list) (pa : Poly.t)
    (pb : Poly.t) : bool =
  let next p =
    (* I -> I + step: the closest later iteration *)
    Poly.subst_var index
      (Poly.add (Poly.atom (Ast.Var index)) (Poly.const step))
      p
  in
  let check_increasing () =
    match
      ( extreme ctx ~inners:inners_a ~maximize:true pa,
        extreme ctx ~inners:inners_b ~maximize:false pb,
        extreme ctx ~inners:inners_b ~maximize:true pb,
        extreme ctx ~inners:inners_a ~maximize:false pa )
    with
    | Some max_a, Some min_b, Some max_b, Some min_a ->
        (* monotonically increasing in I: the minimum at I+step clears the
           maximum at I, in both directions (a then b, b then a) *)
        Ctx.prove_ge ctx (Poly.sub (next min_b) max_a) 1
        && Ctx.prove_ge ctx (Poly.sub (next min_a) max_b) 1
    | _ -> false
  in
  let check_decreasing () =
    match
      ( extreme ctx ~inners:inners_a ~maximize:false pa,
        extreme ctx ~inners:inners_b ~maximize:true pb,
        extreme ctx ~inners:inners_b ~maximize:false pb,
        extreme ctx ~inners:inners_a ~maximize:true pa )
    with
    | Some min_a, Some max_b, Some min_b, Some max_a ->
        Ctx.prove_ge ctx (Poly.sub min_a (next max_b)) 1
        && Ctx.prove_ge ctx (Poly.sub min_b (next max_a)) 1
    | _ -> false
  in
  step <> 0 && (check_increasing () || check_decreasing ())
