lib/dependence/affine_tests.ml: List
