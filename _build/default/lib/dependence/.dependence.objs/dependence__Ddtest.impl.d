lib/dependence/ddtest.ml: Affine_tests Analysis Ast Ctx Fourier_motzkin Frontend List Option Poly Range_test Simplify String
