lib/dependence/direction.ml: Analysis Ast Fourier_motzkin Frontend List Poly Printf Rational Simplify String
