lib/dependence/rational.ml: Format
