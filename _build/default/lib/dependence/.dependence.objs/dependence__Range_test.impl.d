lib/dependence/range_test.ml: Analysis Ast Ctx Frontend Poly
