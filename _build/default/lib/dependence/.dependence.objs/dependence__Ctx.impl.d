lib/dependence/ctx.ml: Analysis Ast Frontend List Poly Set String
