lib/dependence/fourier_motzkin.ml: Hashtbl List Rational
