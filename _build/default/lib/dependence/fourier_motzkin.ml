(** Fourier-Motzkin elimination over the rationals.

    The dependence driver reduces a per-dimension problem to "is the
    system  { delta = 0,  bounds on the variables }  feasible?".  ZIV,
    GCD and Banerjee each look at one relaxation; this eliminator decides
    the *conjunction* of all the affine constraints exactly over the
    rationals.  Rational feasibility over-approximates integer
    feasibility, so [Infeasible] soundly proves independence while
    [Maybe_feasible] stays conservative.

    Constraints are [sum_i c_i * x_i + c0 >= 0].  Variables are eliminated
    one at a time: constraints where [x] has positive coefficient give
    lower bounds, negative give upper bounds; every (lower, upper) pair
    combines into a new [x]-free constraint.  The system is tiny (at most
    a few loop indices), so the classic doubly-exponential blowup is
    irrelevant; a [max_constraints] fuse guards pathological inputs. *)

module Q = Rational

type constr = { coeffs : (string * Q.t) list; const : Q.t }
(** [sum coeffs + const >= 0]; coefficient lists are sorted and free of
    zeros. *)

type verdict = Infeasible | Maybe_feasible

let max_constraints = 512

let norm coeffs =
  List.filter (fun (_, c) -> not (Q.is_zero c)) coeffs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let make_constr coeffs const = { coeffs = norm coeffs; const }

let coeff_of v (c : constr) =
  match List.assoc_opt v c.coeffs with Some q -> q | None -> Q.zero

let drop_var v (c : constr) =
  { c with coeffs = List.filter (fun (x, _) -> x <> v) c.coeffs }

(* c1 has x with coefficient a > 0 (lower bound), c2 has coefficient b < 0
   (upper bound).  Combine to eliminate x:  (-b)*c1 + a*c2. *)
let combine v (c1 : constr) (c2 : constr) : constr =
  let a = coeff_of v c1 and b = coeff_of v c2 in
  let m1 = Q.neg b and m2 = a in
  let scale m (c : constr) =
    {
      coeffs = List.map (fun (x, q) -> (x, Q.mul m q)) c.coeffs;
      const = Q.mul m c.const;
    }
  in
  let s1 = scale m1 c1 and s2 = scale m2 c2 in
  let merged =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (x, q) ->
        let cur = try Hashtbl.find tbl x with Not_found -> Q.zero in
        Hashtbl.replace tbl x (Q.add cur q))
      (s1.coeffs @ s2.coeffs);
    Hashtbl.fold (fun x q acc -> (x, q) :: acc) tbl []
  in
  make_constr (List.filter (fun (x, _) -> x <> v) merged) (Q.add s1.const s2.const)

let variables (cs : constr list) =
  List.sort_uniq compare (List.concat_map (fun c -> List.map fst c.coeffs) cs)

(** Decide feasibility of the conjunction of [cs] over the rationals. *)
let solve (cs : constr list) : verdict =
  let rec eliminate cs =
    if List.length cs > max_constraints then Maybe_feasible
    else
      match variables cs with
      | [] ->
          if List.for_all (fun c -> Q.sign c.const >= 0) cs then
            Maybe_feasible
          else Infeasible
      | v :: _ ->
          let lowers, rest =
            List.partition (fun c -> Q.sign (coeff_of v c) > 0) cs
          in
          let uppers, free =
            List.partition (fun c -> Q.sign (coeff_of v c) < 0) rest
          in
          let combined =
            List.concat_map
              (fun lo -> List.map (fun up -> combine v lo up) uppers)
              lowers
          in
          (* constraints not mentioning v carry over; one-sided bounds on v
             are always satisfiable and disappear *)
          let next =
            free
            @ List.filter (fun c -> c.coeffs <> []) combined
            @ List.filter
                (fun c -> c.coeffs = [] && Q.sign c.const < 0)
                combined
          in
          let next = List.map (fun c -> drop_var v c) next in
          eliminate next
  in
  eliminate cs

(* ------------------------------------------------------------------ *)
(* Convenient integer-coefficient layer for the dependence driver       *)
(* ------------------------------------------------------------------ *)

type bound = Lower of int | Upper of int

(** Feasibility of  { sum coeffs + c0 = 0 } /\ bounds.
    [coeffs] are integer coefficients per variable; [bounds] associates a
    variable with available integer bounds. *)
let equation_feasible ~(coeffs : (string * int) list) ~(c0 : int)
    ~(bounds : (string * bound list) list) : verdict =
  let qc = List.map (fun (v, c) -> (v, Q.of_int c)) coeffs in
  let eq_ge = make_constr qc (Q.of_int c0) in
  let eq_le =
    make_constr (List.map (fun (v, c) -> (v, Q.neg c)) qc) (Q.of_int (-c0))
  in
  let bound_constrs =
    List.concat_map
      (fun (v, bs) ->
        List.map
          (function
            | Lower lo ->
                (* v >= lo  <=>  v - lo >= 0 *)
                make_constr [ (v, Q.one) ] (Q.of_int (-lo))
            | Upper hi ->
                (* v <= hi  <=>  -v + hi >= 0 *)
                make_constr [ (v, Q.neg Q.one) ] (Q.of_int hi))
          bs)
      bounds
  in
  solve (eq_ge :: eq_le :: bound_constrs)
