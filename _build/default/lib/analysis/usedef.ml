(** Use/def collection: every memory access in a statement tree, in source
    order, with read/write disposition -- the raw material for dependence
    testing, privatization and invariance checks. *)

open Frontend
module S = Set.Make (String)

type access = {
  acc_name : string;
  acc_index : Ast.expr list;  (** [[]] for scalars *)
  acc_write : bool;
  acc_sid : int;  (** id of the enclosing statement *)
}

(* Reads performed by an expression. *)
let rec expr_reads sid (e : Ast.expr) acc =
  match e with
  | Ast.Int_const _ | Ast.Real_const _ | Ast.Str_const _ | Ast.Logical_const _
    ->
      acc
  | Ast.Var v ->
      { acc_name = v; acc_index = []; acc_write = false; acc_sid = sid } :: acc
  | Ast.Array_ref (a, idx) ->
      let acc = List.fold_left (fun acc e -> expr_reads sid e acc) acc idx in
      { acc_name = a; acc_index = idx; acc_write = false; acc_sid = sid } :: acc
  | Ast.Func_call (_, args) ->
      List.fold_left (fun acc e -> expr_reads sid e acc) acc args
  | Ast.Binop (_, a, b) -> expr_reads sid b (expr_reads sid a acc)
  | Ast.Unop (_, a) -> expr_reads sid a acc
  | Ast.Section (a, bounds) ->
      let acc =
        List.fold_left
          (fun acc (x, y, z) ->
            List.fold_left
              (fun acc o ->
                match o with Some e -> expr_reads sid e acc | None -> acc)
              acc [ x; y; z ])
          acc bounds
      in
      (* whole-section read: index unknown *)
      { acc_name = a; acc_index = []; acc_write = false; acc_sid = sid } :: acc

let lvalue_accesses sid (lv : Ast.lvalue) acc =
  match lv with
  | Ast.Lvar v ->
      { acc_name = v; acc_index = []; acc_write = true; acc_sid = sid } :: acc
  | Ast.Larray (a, idx) ->
      let acc = List.fold_left (fun acc e -> expr_reads sid e acc) acc idx in
      { acc_name = a; acc_index = idx; acc_write = true; acc_sid = sid } :: acc
  | Ast.Lsection (a, bounds) ->
      let acc =
        List.fold_left
          (fun acc (x, y, z) ->
            List.fold_left
              (fun acc o ->
                match o with Some e -> expr_reads sid e acc | None -> acc)
              acc [ x; y; z ])
          acc bounds
      in
      { acc_name = a; acc_index = []; acc_write = true; acc_sid = sid } :: acc

(** Every access in the statement list, source order.  CALL argument
    expressions are recorded as reads; the (possible) writes through
    by-reference arguments are the caller's problem -- loops containing
    calls are never parallelized directly, and the inliners substitute the
    call away before analysis. *)
let accesses_of_stmts stmts : access list =
  let rec stmt acc (s : Ast.stmt) =
    match s.node with
    | Ast.Assign (lv, e) -> lvalue_accesses s.sid lv (expr_reads s.sid e acc)
    | Ast.Do_loop l ->
        let acc = expr_reads s.sid l.lo acc in
        let acc = expr_reads s.sid l.hi acc in
        let acc = expr_reads s.sid l.step acc in
        let acc =
          { acc_name = l.index; acc_index = []; acc_write = true; acc_sid = s.sid }
          :: acc
        in
        List.fold_left stmt acc l.body
    | Ast.If (c, t, e) ->
        let acc = expr_reads s.sid c acc in
        let acc = List.fold_left stmt acc t in
        List.fold_left stmt acc e
    | Ast.Call (_, args) ->
        List.fold_left (fun acc e -> expr_reads s.sid e acc) acc args
    | Ast.Print es ->
        List.fold_left (fun acc e -> expr_reads s.sid e acc) acc es
    | Ast.Tagged (_, body) -> List.fold_left stmt acc body
    | Ast.Return | Ast.Stop _ | Ast.Continue -> acc
  in
  List.rev (List.fold_left stmt [] stmts)

(** Variables definitely or possibly written by the statements.  [All]
    means "anything" (a CALL whose side effects we cannot see). *)
type write_set = Vars of S.t | All

let union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Vars x, Vars y -> Vars (S.union x y)

let mem name = function All -> true | Vars s -> S.mem name s

(** Names written by statements.  [callee_writes name] gives the write set
    of a CALLed subroutine if known ([None] -> assume everything). *)
let rec written ?(callee_writes = fun _ -> None) stmts : write_set =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      let w =
        match s.node with
        | Ast.Assign (lv, _) -> Vars (S.singleton (Ast.lvalue_name lv))
        | Ast.Do_loop l ->
            union
              (Vars (S.singleton l.index))
              (written ~callee_writes l.body)
        | Ast.If (_, t, e) ->
            union (written ~callee_writes t) (written ~callee_writes e)
        | Ast.Call (name, args) -> (
            match callee_writes name with
            | Some vars ->
                (* writes to by-reference actual arguments: conservatively
                   add every actual's base variable *)
                let bases =
                  List.filter_map
                    (function
                      | Ast.Var v -> Some v
                      | Ast.Array_ref (a, _) -> Some a
                      | _ -> None)
                    args
                in
                Vars (S.union vars (S.of_list bases))
            | None -> All)
        | Ast.Tagged (_, body) -> written ~callee_writes body
        | Ast.Return | Ast.Stop _ | Ast.Print _ | Ast.Continue -> Vars S.empty
      in
      union acc w)
    (Vars S.empty) stmts

(** Does the statement tree contain I/O, STOP or RETURN?  Such statements
    keep a loop sequential (the paper's "debugging and error checking"
    obstacle). *)
let has_side_exit stmts =
  Ast.fold_stmts
    (fun acc s ->
      acc
      || match s.node with Ast.Print _ | Ast.Stop _ | Ast.Return -> true | _ -> false)
    false stmts

(** Does the statement tree contain I/O or STOP (RETURN excluded)?  Used
    by purity analysis, where a trailing RETURN is legitimate. *)
let has_io stmts =
  Ast.fold_stmts
    (fun acc s ->
      acc
      || match s.node with Ast.Print _ | Ast.Stop _ -> true | _ -> false)
    false stmts

(** All CALL statements in the tree. *)
let calls stmts =
  List.rev
    (Ast.fold_stmts
       (fun acc s ->
         match s.node with Ast.Call (n, args) -> (n, args) :: acc | _ -> acc)
       [] stmts)

(** User-function invocations appearing in expressions. *)
let func_calls stmts =
  let found = ref [] in
  ignore
    (Ast.map_exprs_in_stmts
       (fun e ->
         (match e with
         | Ast.Func_call (n, _) when not (Intrinsics.is_intrinsic n) ->
             found := n :: !found
         | _ -> ());
         e)
       stmts);
  List.sort_uniq compare !found
