(** Expression typing: enough of the Fortran rules to decide whether an
    expression is integer-valued (integer expressions get the polynomial
    treatment; real expressions are only const-folded). *)

open Frontend

let int_intrinsics = [ "INT"; "NINT"; "IABS"; "MAX0"; "MIN0"; "ISIGN" ]
let real_intrinsics =
  [
    "SQRT"; "DSQRT"; "SIN"; "DSIN"; "COS"; "DCOS"; "TAN"; "EXP"; "DEXP";
    "LOG"; "DLOG"; "ALOG"; "DBLE"; "REAL"; "FLOAT"; "AMAX1"; "AMIN1";
    "DMAX1"; "DMIN1"; "ATAN"; "DATAN"; "ATAN2"; "DABS";
  ]

(** [is_int u e] is true when [e] is integer-valued in unit [u]. *)
let rec is_int (u : Ast.program_unit) (e : Ast.expr) =
  match e with
  | Ast.Int_const _ -> true
  | Ast.Real_const _ | Ast.Str_const _ | Ast.Logical_const _ -> false
  | Ast.Var v -> Ast.type_of_var u v = Ast.Integer
  | Ast.Array_ref (a, _) -> Ast.type_of_var u a = Ast.Integer
  | Ast.Func_call (f, args) ->
      if List.mem f int_intrinsics then true
      else if List.mem f real_intrinsics then false
      else if List.mem f [ "ABS"; "MAX"; "MIN"; "MOD"; "SIGN"; "DMOD" ] then
        List.for_all (is_int u) args
      else Ast.implicit_type f = Ast.Integer
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow), a, b) ->
      is_int u a && is_int u b
  | Ast.Binop (_, _, _) -> false (* relational / logical *)
  | Ast.Unop (Ast.Neg, a) -> is_int u a
  | Ast.Unop (Ast.Not, _) -> false
  | Ast.Section (a, _) -> Ast.type_of_var u a = Ast.Integer
