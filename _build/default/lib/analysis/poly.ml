(** Polynomial normal form for integer-valued expressions.

    An expression is flattened into a sum of monomials; each monomial is an
    integer coefficient times a sorted product of *atoms*.  An atom is any
    sub-expression the polynomial algebra cannot look into: a variable, an
    array reference, a function call, an integer division, etc.  The normal
    form gives us:

    - canonical symbolic equality (used by the reverse-inline matcher to
      tolerate constant propagation and expression reordering);
    - extraction of affine subscript forms for dependence testing, where
      cancellation of identical opaque atoms (e.g. [IX(7)]) falls out of the
      algebra for free. *)

open Frontend

(* A monomial: sorted list of atoms (the product), using the derived total
   order on expressions. *)
type mono = Ast.expr list

type t = (mono * int) list
(** Sorted association list of monomials to non-zero coefficients.
    The empty monomial [[]] holds the constant term. *)

let compare_mono (a : mono) (b : mono) =
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = Ast.compare_expr x y in
        if c <> 0 then c else go xs' ys'
  in
  let c = compare (List.length a) (List.length b) in
  if c <> 0 then c else go a b

let zero : t = []
let const c : t = if c = 0 then [] else [ ([], c) ]
let is_zero (p : t) = p = []

let to_const (p : t) =
  match p with
  | [] -> Some 0
  | [ ([], c) ] -> Some c
  | _ -> None

let normalize (terms : (mono * int) list) : t =
  let sorted =
    List.sort (fun (m1, _) (m2, _) -> compare_mono m1 m2) terms
  in
  let rec merge = function
    | [] -> []
    | (m, c) :: rest ->
        let same, rest' =
          List.partition (fun (m', _) -> compare_mono m m' = 0) rest
        in
        let total = List.fold_left (fun acc (_, c') -> acc + c') c same in
        if total = 0 then merge rest' else (m, total) :: merge rest'
  in
  merge sorted

let add (p : t) (q : t) : t = normalize (p @ q)
let neg (p : t) : t = List.map (fun (m, c) -> (m, -c)) p
let sub p q = add p (neg q)

let mul (p : t) (q : t) : t =
  normalize
    (List.concat_map
       (fun (m1, c1) ->
         List.map
           (fun (m2, c2) -> (List.sort Ast.compare_expr (m1 @ m2), c1 * c2))
           q)
       p)

let scale k (p : t) : t =
  if k = 0 then [] else List.map (fun (m, c) -> (m, k * c)) p

let atom (e : Ast.expr) : t = [ ([ e ], 1) ]

let equal (p : t) (q : t) = is_zero (sub p q)

(** Convert an expression to polynomial normal form.  [atomize] is applied
    to sub-expressions the algebra cannot decompose; it may recursively
    normalize inside them (e.g. normalize array subscripts). *)
let rec of_expr ?(atomize = fun e -> e) (e : Ast.expr) : t =
  let recur = of_expr ~atomize in
  match e with
  | Ast.Int_const n -> const n
  | Ast.Binop (Ast.Add, a, b) -> add (recur a) (recur b)
  | Ast.Binop (Ast.Sub, a, b) -> sub (recur a) (recur b)
  | Ast.Binop (Ast.Mul, a, b) -> mul (recur a) (recur b)
  | Ast.Unop (Ast.Neg, a) -> neg (recur a)
  | Ast.Binop (Ast.Pow, a, Ast.Int_const k) when k >= 0 && k <= 4 ->
      let pa = recur a in
      let rec pow acc i = if i = 0 then acc else pow (mul acc pa) (i - 1) in
      pow (const 1) k
  | Ast.Binop (Ast.Div, a, b) -> (
      (* Exact constant division only; otherwise opaque. *)
      let pa = recur a and pb = recur b in
      match to_const pb with
      | Some d when d <> 0 && List.for_all (fun (_, c) -> c mod d = 0) pa ->
          List.map (fun (m, c) -> (m, c / d)) pa
      | _ -> atom (atomize e))
  | _ -> atom (atomize e)

(** Rebuild an expression from the normal form (deterministic order). *)
let to_expr (p : t) : Ast.expr =
  let mono_expr (m, c) =
    let base =
      match m with
      | [] -> None
      | e :: rest ->
          Some
            (List.fold_left (fun acc x -> Ast.Binop (Ast.Mul, acc, x)) e rest)
    in
    match (base, c) with
    | None, c -> Ast.Int_const c
    | Some b, 1 -> b
    | Some b, -1 -> Ast.Unop (Ast.Neg, b)
    | Some b, c -> Ast.Binop (Ast.Mul, Ast.Int_const c, b)
  in
  match p with
  | [] -> Ast.Int_const 0
  | t0 :: rest ->
      List.fold_left
        (fun acc term ->
          let e = mono_expr term in
          match e with
          | Ast.Unop (Ast.Neg, e') -> Ast.Binop (Ast.Sub, acc, e')
          | Ast.Int_const n when n < 0 ->
              Ast.Binop (Ast.Sub, acc, Ast.Int_const (-n))
          | Ast.Binop (Ast.Mul, Ast.Int_const n, b) when n < 0 ->
              Ast.Binop (Ast.Sub, acc, Ast.Binop (Ast.Mul, Ast.Int_const (-n), b))
          | _ -> Ast.Binop (Ast.Add, acc, e))
        (mono_expr t0) rest

(** All atoms mentioned anywhere in the polynomial. *)
let atoms (p : t) : Ast.expr list =
  List.sort_uniq Ast.compare_expr (List.concat_map fst p)

(** Degree of the polynomial in the given variable set: for each monomial,
    count atoms that are [Var v] with [v] in [vars], plus atoms *containing*
    such a variable anywhere (those make the monomial non-affine). *)
let mono_degree_in ~vars (m : mono) =
  List.fold_left
    (fun (deg, opaque_varying) a ->
      match a with
      | Ast.Var v when List.mem v vars -> (deg + 1, opaque_varying)
      | _ ->
          let mentioned =
            List.exists (fun v -> List.mem v vars) (Ast.expr_vars a)
          in
          (deg, opaque_varying || mentioned))
    (0, false) m

(** Decompose a polynomial as an affine form over [vars]:
    [Some (coeffs, rest)] where [coeffs] maps each variable to its constant
    integer coefficient and [rest] is the part free of [vars]; [None] if the
    polynomial is not affine in [vars] (degree >= 2, a variable under an
    opaque atom, or a symbolic coefficient on a variable). *)
let affine_in ~vars (p : t) : ((string * int) list * t) option =
  let exception Not_affine in
  try
    let coeffs = Hashtbl.create 4 in
    let rest = ref [] in
    List.iter
      (fun (m, c) ->
        let deg, opaque = mono_degree_in ~vars m in
        if opaque then raise Not_affine
        else if deg = 0 then rest := (m, c) :: !rest
        else if deg = 1 && List.length m = 1 then
          match m with
          | [ Ast.Var v ] ->
              Hashtbl.replace coeffs v
                (c + Option.value ~default:0 (Hashtbl.find_opt coeffs v))
          | _ -> raise Not_affine
        else raise Not_affine)
      p;
    let cs =
      Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) coeffs []
    in
    Some (List.sort compare cs, normalize !rest)
  with Not_affine -> None

(** Like [affine_in] but allowing symbolic coefficients: returns for each
    variable in [vars] the polynomial coefficient, plus the var-free rest.
    [None] if any monomial has degree >= 2 in [vars] or hides a variable
    inside an opaque atom. *)
let sym_affine_in ~vars (p : t) : ((string * t) list * t) option =
  let exception Not_affine in
  try
    let coeffs : (string, t ref) Hashtbl.t = Hashtbl.create 4 in
    let rest = ref [] in
    List.iter
      (fun (m, c) ->
        let deg, opaque = mono_degree_in ~vars m in
        if opaque then raise Not_affine
        else if deg = 0 then rest := (m, c) :: !rest
        else if deg = 1 then begin
          let v =
            List.find_map
              (function Ast.Var v when List.mem v vars -> Some v | _ -> None)
              m
            |> Option.get
          in
          let others =
            List.filter
              (function Ast.Var v' when String.equal v' v -> false | _ -> true)
              m
          in
          let r =
            match Hashtbl.find_opt coeffs v with
            | Some r -> r
            | None ->
                let r = ref zero in
                Hashtbl.add coeffs v r;
                r
          in
          r := add !r [ (others, c) ]
        end
        else raise Not_affine)
      p;
    let cs =
      Hashtbl.fold
        (fun v r acc -> if is_zero !r then acc else (v, !r) :: acc)
        coeffs []
    in
    Some (List.sort (fun (a, _) (b, _) -> compare a b) cs, normalize !rest)
  with Not_affine -> None

let pp fmt (p : t) = Fmt.string fmt (Pretty.expr_str (to_expr p))

(** Substitute polynomial [q] for every atom equal to [a] in [p]. *)
let subst_atom (a : Ast.expr) (q : t) (p : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let replaced, kept =
        List.partition (fun x -> Ast.compare_expr x a = 0) m
      in
      let term = List.fold_left (fun t _ -> mul t q) [ (kept, c) ] replaced in
      add acc term)
    zero p

(** Substitute polynomial [q] for the variable [v]. *)
let subst_var (v : string) (q : t) (p : t) : t = subst_atom (Ast.Var v) q p
