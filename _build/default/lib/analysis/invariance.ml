(** Loop-invariance: whether an expression's value is unchanged across the
    iterations of a loop body. *)

open Frontend
module S = Set.Make (String)

(** Is [e] invariant w.r.t. a region whose write set is [w]?  An expression
    is invariant when none of the variables it reads (array base names
    included: a write anywhere into an array kills invariance of its
    elements) are written. *)
let expr_invariant (w : Usedef.write_set) (e : Ast.expr) =
  match w with
  | Usedef.All -> (
      (* only literals survive a call with unknown effects *)
      match e with
      | Ast.Int_const _ | Ast.Real_const _ | Ast.Str_const _
      | Ast.Logical_const _ ->
          true
      | _ -> false)
  | Usedef.Vars vars -> List.for_all (fun v -> not (S.mem v vars)) (Ast.expr_vars e)

(** Writes performed by the body of [loop] (its own index included). *)
let loop_writes ?callee_writes (loop : Ast.do_loop) =
  Usedef.union
    (Usedef.written ?callee_writes loop.body)
    (Usedef.Vars (S.singleton loop.index))

let invariant_in_loop ?callee_writes (loop : Ast.do_loop) e =
  expr_invariant (loop_writes ?callee_writes loop) e
