lib/analysis/sections.ml: Ast Frontend List Option Printf
