lib/analysis/typing.ml: Ast Frontend List
