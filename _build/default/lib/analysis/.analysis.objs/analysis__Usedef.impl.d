lib/analysis/usedef.ml: Ast Frontend Intrinsics List Set String
