lib/analysis/poly.ml: Ast Fmt Frontend Hashtbl List Option Pretty String
