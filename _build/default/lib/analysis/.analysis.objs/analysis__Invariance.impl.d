lib/analysis/invariance.ml: Ast Frontend List Set String Usedef
