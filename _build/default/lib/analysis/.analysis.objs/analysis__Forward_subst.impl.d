lib/analysis/forward_subst.ml: Ast Frontend Intrinsics Invariance List Option Set Simplify String Usedef
