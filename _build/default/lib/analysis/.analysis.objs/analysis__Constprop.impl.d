lib/analysis/constprop.ml: Ast Frontend List Map Set Simplify String Usedef
