lib/analysis/induction.ml: Ast Frontend Invariance List Simplify String Usedef
