lib/analysis/simplify.ml: Ast Frontend List Option Poly Typing
