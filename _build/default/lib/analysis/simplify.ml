(** Expression simplification.

    Integer-valued (sub-)expressions are canonicalized through the
    polynomial normal form of {!Poly}; everything else gets constant
    folding and unit-element elimination.  The result is deterministic, so
    two expressions equal modulo associativity/commutativity/constant
    arithmetic print identically -- which the reverse-inline matcher and
    the dependence tests both rely on. *)

open Frontend

let fold_int_binop op a b =
  match op with
  | Ast.Add -> Some (a + b)
  | Ast.Sub -> Some (a - b)
  | Ast.Mul -> Some (a * b)
  | Ast.Div -> if b = 0 then None else Some (a / b)
  | Ast.Pow ->
      if b < 0 || b > 30 then None
      else
        let rec pw acc i = if i = 0 then acc else pw (acc * a) (i - 1) in
        Some (pw 1 b)
  | _ -> None

let fold_real_binop op a b =
  match op with
  | Ast.Add -> Some (a +. b)
  | Ast.Sub -> Some (a -. b)
  | Ast.Mul -> Some (a *. b)
  | Ast.Div -> if b = 0.0 then None else Some (a /. b)
  | Ast.Pow -> Some (a ** b)
  | _ -> None

let rec basic_simplify (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Binop (op, a, b) -> (
      let a = basic_simplify a and b = basic_simplify b in
      match (op, a, b) with
      | _, Ast.Int_const x, Ast.Int_const y -> (
          match fold_int_binop op x y with
          | Some v -> Ast.Int_const v
          | None -> Ast.Binop (op, a, b))
      | _, Ast.Real_const x, Ast.Real_const y -> (
          match fold_real_binop op x y with
          | Some v -> Ast.Real_const v
          | None -> Ast.Binop (op, a, b))
      | Ast.Add, x, Ast.Int_const 0 | Ast.Add, Ast.Int_const 0, x -> x
      | Ast.Add, x, Ast.Real_const 0.0 | Ast.Add, Ast.Real_const 0.0, x -> x
      | Ast.Sub, x, Ast.Int_const 0 -> x
      | Ast.Sub, x, Ast.Real_const 0.0 -> x
      | Ast.Mul, x, Ast.Int_const 1 | Ast.Mul, Ast.Int_const 1, x -> x
      | Ast.Mul, x, Ast.Real_const 1.0 | Ast.Mul, Ast.Real_const 1.0, x -> x
      | Ast.Mul, _, Ast.Int_const 0 | Ast.Mul, Ast.Int_const 0, _ ->
          Ast.Int_const 0
      | Ast.Div, x, Ast.Int_const 1 -> x
      | Ast.Div, x, Ast.Real_const 1.0 -> x
      | Ast.Pow, x, Ast.Int_const 1 -> x
      | _ -> Ast.Binop (op, a, b))
  | Ast.Unop (Ast.Neg, a) -> (
      match basic_simplify a with
      | Ast.Int_const n -> Ast.Int_const (-n)
      | Ast.Real_const r -> Ast.Real_const (-.r)
      | a -> Ast.Unop (Ast.Neg, a))
  | Ast.Unop (Ast.Not, a) -> (
      match basic_simplify a with
      | Ast.Logical_const b -> Ast.Logical_const (not b)
      | a -> Ast.Unop (Ast.Not, a))
  | Ast.Array_ref (n, args) -> Ast.Array_ref (n, List.map basic_simplify args)
  | Ast.Func_call (n, args) -> (
      let args = List.map basic_simplify args in
      match (n, args) with
      | "MAX", [ Ast.Int_const a; Ast.Int_const b ] -> Ast.Int_const (max a b)
      | "MIN", [ Ast.Int_const a; Ast.Int_const b ] -> Ast.Int_const (min a b)
      | ("ABS" | "IABS"), [ Ast.Int_const a ] -> Ast.Int_const (abs a)
      | "MOD", [ Ast.Int_const a; Ast.Int_const b ] when b <> 0 ->
          Ast.Int_const (a mod b)
      | _ -> Ast.Func_call (n, args))
  | Ast.Section (n, bounds) ->
      Ast.Section
        ( n,
          List.map
            (fun (a, b, c) ->
              let g = Option.map basic_simplify in
              (g a, g b, g c))
            bounds )
  | _ -> e

(** Canonicalize [e] in the context of unit [u]: integer sub-expressions go
    through the polynomial normal form (after simplifying their own
    subscripts), others are const-folded. *)
let rec simplify (u : Ast.program_unit) (e : Ast.expr) : Ast.expr =
  let e = basic_simplify e in
  if Typing.is_int u e then
    let atomize sub =
      (* normalize inside opaque atoms too *)
      match sub with
      | Ast.Array_ref (n, args) -> Ast.Array_ref (n, List.map (simplify u) args)
      | Ast.Func_call (n, args) -> Ast.Func_call (n, List.map (simplify u) args)
      | other -> basic_simplify other
    in
    basic_simplify (Poly.to_expr (Poly.of_expr ~atomize e))
  else
    match e with
    | Ast.Binop (op, a, b) -> basic_simplify (Ast.Binop (op, simplify u a, simplify u b))
    | Ast.Unop (op, a) -> basic_simplify (Ast.Unop (op, simplify u a))
    | Ast.Array_ref (n, args) -> Ast.Array_ref (n, List.map (simplify u) args)
    | Ast.Func_call (n, args) -> Ast.Func_call (n, List.map (simplify u) args)
    | _ -> e

(** Structural equality modulo simplification. *)
let equal_mod_simplify u a b =
  Ast.equal_expr (simplify u a) (simplify u b)
  ||
  (* integer expressions: compare polynomials of the difference *)
  (Typing.is_int u a && Typing.is_int u b
  && Poly.equal (Poly.of_expr (simplify u a)) (Poly.of_expr (simplify u b)))

(** Simplify every expression in a statement list. *)
let simplify_stmts u stmts = Ast.map_exprs_in_stmts (simplify u) stmts
