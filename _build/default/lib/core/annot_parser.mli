(** Parser for the annotation language of the paper's Fig. 12.

    Top level is a sequence of [subroutine NAME(P1, ..., Pn) { stmts }];
    statements are C-flavoured assignments (possibly with multiple
    parenthesized targets fed by one [unknown]), [if]/[else], counted
    [do (i = lo:hi[:step]) stmt], [dimension]/type declarations and
    [return].  Array references use brackets and accept Fortran-90-style
    section bounds ([FE[1:NSFE, ID]]). *)

exception Annot_parse_error of string

(** Parse one [subroutine ... { ... }] annotation. *)
val parse_annotation : string -> Annot_ast.annotation

(** Parse a file containing any number of annotations. *)
val parse_annotations : string -> Annot_ast.annotation list
