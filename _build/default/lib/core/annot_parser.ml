(** Parser for the annotation language of Fig. 12.

    Syntax (C-flavoured):

    {v
    subroutine FSMP(ID, IDE) {
      XY = unknown(XYG[1, ICOND[1, ID]], NSYMM);
      IRECT = IEGEOM[ID];
      if (IDEDON[IDE] == 0) {
        IDEDON[IDE] = 1;
        FE[1:NSFE, IDE] = unknown(WTDET, NQD, NSFE);
      }
      do (JN = 1:N) do (JM = 1:M) M3[JN,JM] = 0.0;
      dimension M1[L,M], M2[M,N];
      integer K1, K2;
      (NDX, NDY, WTDET) = unknown(IRECT, XY);
      return E;
    }
    v} *)

open Annot_ast

exception Annot_parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Annot_parse_error s)) fmt

(* ---------------- lexer ---------------- *)

type tok =
  | I of int
  | R of float
  | ID of string
  | LP | RP | LB | RB | LC | RC
  | COMMA | SEMI | COLON
  | PLUS | MINUS | STAR | SLASH | POW
  | ASSIGN | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG

let lex (src : string) : tok list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && (is_digit src.[!j]) do incr j done;
      if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do incr j done;
        (if !j < n && (src.[!j] = 'e' || src.[!j] = 'E' || src.[!j] = 'd' || src.[!j] = 'D')
         then begin
           incr j;
           if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
           while !j < n && is_digit src.[!j] do incr j done
         end);
        let text = String.map (function 'd' | 'D' -> 'e' | ch -> ch)
            (String.sub src !i (!j - !i)) in
        push (R (float_of_string text));
        i := !j
      end
      else begin
        push (I (int_of_string (String.sub src !i (!j - !i))));
        i := !j
      end
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && (is_alpha src.[!j] || is_digit src.[!j]) do incr j done;
      push (ID (String.uppercase_ascii (String.sub src !i (!j - !i))));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" -> push EQ; i := !i + 2
      | "!=" -> push NE; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "&&" -> push ANDAND; i := !i + 2
      | "||" -> push OROR; i := !i + 2
      | "**" -> push POW; i := !i + 2
      | _ ->
          (match c with
          | '(' -> push LP | ')' -> push RP
          | '[' -> push LB | ']' -> push RB
          | '{' -> push LC | '}' -> push RC
          | ',' -> push COMMA | ';' -> push SEMI | ':' -> push COLON
          | '+' -> push PLUS | '-' -> push MINUS
          | '*' -> push STAR | '/' -> push SLASH
          | '=' -> push ASSIGN
          | '<' -> push LT | '>' -> push GT
          | '!' -> push BANG
          | _ -> perr "annotation lexer: unexpected character %C" c);
          incr i
    end
  done;
  List.rev !toks

(* ---------------- parser ---------------- *)

type st = { mutable toks : tok list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> perr "annotation parser: unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then perr "annotation parser: unexpected token"

let accept st t =
  match peek st with
  | Some t' when t' = t ->
      ignore (next st);
      true
  | _ -> false

let rec p_expr st = p_or st

and p_or st =
  let l = p_and st in
  if accept st OROR then ABinop (Frontend.Ast.Or, l, p_or st) else l

and p_and st =
  let l = p_not st in
  if accept st ANDAND then ABinop (Frontend.Ast.And, l, p_and st) else l

and p_not st =
  if accept st BANG then AUnop (Frontend.Ast.Not, p_not st) else p_rel st

and p_rel st =
  let l = p_add st in
  let op =
    match peek st with
    | Some EQ -> Some Frontend.Ast.Eq
    | Some NE -> Some Frontend.Ast.Ne
    | Some LT -> Some Frontend.Ast.Lt
    | Some LE -> Some Frontend.Ast.Le
    | Some GT -> Some Frontend.Ast.Gt
    | Some GE -> Some Frontend.Ast.Ge
    | _ -> None
  in
  match op with
  | None -> l
  | Some op ->
      ignore (next st);
      ABinop (op, l, p_add st)

and p_add st =
  let rec loop l =
    if accept st PLUS then loop (ABinop (Frontend.Ast.Add, l, p_mul st))
    else if accept st MINUS then loop (ABinop (Frontend.Ast.Sub, l, p_mul st))
    else l
  in
  loop (p_mul st)

and p_mul st =
  let rec loop l =
    if accept st STAR then loop (ABinop (Frontend.Ast.Mul, l, p_unary st))
    else if accept st SLASH then loop (ABinop (Frontend.Ast.Div, l, p_unary st))
    else l
  in
  loop (p_unary st)

and p_unary st =
  if accept st MINUS then AUnop (Frontend.Ast.Neg, p_unary st)
  else if accept st PLUS then p_unary st
  else p_pow st

and p_pow st =
  let b = p_primary st in
  if accept st POW then ABinop (Frontend.Ast.Pow, b, p_unary st) else b

and p_primary st =
  match next st with
  | I n -> AInt n
  | R r -> AReal r
  | LP ->
      let e = p_expr st in
      expect st RP;
      e
  | ID "UNKNOWN" ->
      expect st LP;
      let args = p_args st RP in
      AUnknown args
  | ID "UNIQUE" ->
      expect st LP;
      let args = p_args st RP in
      AUnique args
  | ID name ->
      if accept st LB then begin
        let idx = p_index_list st in
        expect st RB;
        if
          List.for_all
            (function Some a, Some b when a = b -> true | _ -> false)
            idx
        then AIndex (name, List.map (function Some a, _ -> a | _ -> assert false) idx)
        else ASection (name, idx)
      end
      else if accept st LP then begin
        let args = p_args st RP in
        ACall (name, args)
      end
      else AVar name
  | _ -> perr "annotation parser: unexpected token in expression"

and p_args st closer =
  if accept st closer then []
  else
    let rec loop acc =
      let e = p_expr st in
      if accept st COMMA then loop (e :: acc)
      else begin
        expect st closer;
        List.rev (e :: acc)
      end
    in
    loop []

(* Index element: expr or [lo]:[hi] section bound. *)
and p_index_list st =
  let one () =
    let lo =
      match peek st with
      | Some (COLON | COMMA | RB) -> None
      | _ -> Some (p_expr st)
    in
    if accept st COLON then
      let hi =
        match peek st with
        | Some (COMMA | RB) -> None
        | _ -> Some (p_expr st)
      in
      (lo, hi)
    else
      match lo with
      | Some e -> (Some e, Some e)
      | None -> perr "annotation parser: empty index"
  in
  let rec loop acc =
    let b = one () in
    if accept st COMMA then loop (b :: acc) else List.rev (b :: acc)
  in
  loop []

let p_target st =
  match next st with
  | ID name ->
      if accept st LB then begin
        let idx = p_index_list st in
        expect st RB;
        if
          List.for_all
            (function Some a, Some b when a = b -> true | _ -> false)
            idx
        then
          TIndex (name, List.map (function Some a, _ -> a | _ -> assert false) idx)
        else TSection (name, idx)
      end
      else TVar name
  | _ -> perr "annotation parser: expected assignment target"

let dtype_of_kw = function
  | "INTEGER" -> Some Frontend.Ast.Integer
  | "REAL" -> Some Frontend.Ast.Real
  | "DOUBLE" -> Some Frontend.Ast.Double
  | "LOGICAL" -> Some Frontend.Ast.Logical
  | _ -> None

let rec p_stmt st : astmt =
  match peek st with
  | Some LC ->
      ignore (next st);
      let rec loop acc =
        if accept st RC then ABlock (List.rev acc) else loop (p_stmt st :: acc)
      in
      loop []
  | Some (ID "IF") ->
      ignore (next st);
      expect st LP;
      let c = p_expr st in
      expect st RP;
      let t = p_stmt st in
      let e = if accept st (ID "ELSE") then Some (p_stmt st) else None in
      AIf (c, t, e)
  | Some (ID "DO") ->
      ignore (next st);
      expect st LP;
      let v = match next st with ID v -> v | _ -> perr "do: expected index" in
      expect st ASSIGN;
      let lo = p_expr st in
      expect st COLON;
      let hi = p_expr st in
      let step = if accept st COLON then Some (p_expr st) else None in
      expect st RP;
      let body = p_stmt st in
      ADo { av = v; alo = lo; ahi = hi; astep = step; abody = body }
  | Some (ID "RETURN") ->
      ignore (next st);
      if accept st SEMI then AReturn None
      else begin
        let e = p_expr st in
        expect st SEMI;
        AReturn (Some e)
      end
  | Some (ID "DIMENSION") ->
      ignore (next st);
      let items = p_decl_items st in
      expect st SEMI;
      ADecl (None, items)
  | Some (ID kw) when dtype_of_kw kw <> None -> (
      (* possible type declaration: TYPE name [, name]* ; -- but an
         assignment could also start with an identifier.  Disambiguate by
         lookahead: declarations are "TYPE ID (, ID)* ;" with no '='. *)
      match st.toks with
      | ID _ :: ID _ :: _ ->
          ignore (next st);
          let items = p_decl_items st in
          expect st SEMI;
          ADecl (dtype_of_kw kw, items)
      | _ -> p_assign st)
  | Some LP | Some (ID _) -> p_assign st
  | _ -> perr "annotation parser: expected statement"

and p_decl_items st =
  let one () =
    match next st with
    | ID name ->
        if accept st LB then begin
          let idx = p_index_list st in
          expect st RB;
          ( name,
            List.map
              (function
                | Some a, Some b when a = b -> a
                | None, Some h -> h
                | _ -> perr "declaration dims must be plain expressions")
              idx )
        end
        else (name, [])
    | _ -> perr "annotation parser: expected declared name"
  in
  let rec loop acc =
    let it = one () in
    if accept st COMMA then loop (it :: acc) else List.rev (it :: acc)
  in
  loop []

and p_assign st =
  let targets =
    if accept st LP then begin
      let rec loop acc =
        let t = p_target st in
        if accept st COMMA then loop (t :: acc)
        else begin
          expect st RP;
          List.rev (t :: acc)
        end
      in
      loop []
    end
    else [ p_target st ]
  in
  expect st ASSIGN;
  let rhs = p_expr st in
  expect st SEMI;
  AAssign (targets, rhs)

(** Parse one annotation:
    [subroutine NAME(P1, ..., Pn) { stmts }]. *)
let parse_annotation (src : string) : annotation =
  let st = { toks = lex src } in
  (match next st with
  | ID "SUBROUTINE" -> ()
  | _ -> perr "annotation must start with 'subroutine'");
  let name = match next st with ID n -> n | _ -> perr "expected name" in
  let params =
    if accept st LP then
      if accept st RP then []
      else
        let rec loop acc =
          match next st with
          | ID p ->
              if accept st COMMA then loop (p :: acc)
              else begin
                expect st RP;
                List.rev (p :: acc)
              end
          | _ -> perr "expected parameter name"
        in
        loop []
    else []
  in
  let body =
    match p_stmt st with ABlock b -> b | s -> [ s ]
  in
  if st.toks <> [] then perr "trailing tokens after annotation";
  { an_name = name; an_params = params; an_body = body }

(** Parse a file of several annotations. *)
let parse_annotations (src : string) : annotation list =
  let st = { toks = lex src } in
  let rec loop acc =
    match peek st with
    | None -> List.rev acc
    | Some (ID "SUBROUTINE") ->
        ignore (next st);
        let name = match next st with ID n -> n | _ -> perr "expected name" in
        let params =
          if accept st LP then
            if accept st RP then []
            else
              let rec ploop acc =
                match next st with
                | ID p ->
                    if accept st COMMA then ploop (p :: acc)
                    else begin
                      expect st RP;
                      List.rev (p :: acc)
                    end
                | _ -> perr "expected parameter name"
              in
              ploop []
          else []
        in
        let body = match p_stmt st with ABlock b -> b | s -> [ s ] in
        loop ({ an_name = name; an_params = params; an_body = body } :: acc)
    | Some _ -> perr "expected 'subroutine' at top level of annotation file"
  in
  loop []
