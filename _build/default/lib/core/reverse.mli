(** Reverse inlining (paper Section III-C.3): replace every [Tagged]
    region produced by {!Annot_inline} with a CALL to the original
    subroutine, extracting the actual parameters by unification of the
    optimized region against a marker-instantiated template. *)

type stats = {
  mutable matched : int;  (** regions restored through pattern matching *)
  mutable fallback : (string * string) list;
      (** regions restored from the recorded actuals instead, as
          (callee, reason); should be empty in healthy pipelines *)
  mutable extracted_mismatch : int;
      (** unification-extracted actuals that differ (modulo
          normalization) from the recorded ones; should be 0 *)
}

(** Reverse every tagged region of the program.  [cfg] must be the same
    configuration used at inline time (it determines the [unique] radix
    and therefore the template's lowering). *)
val run :
  cfg:Annot_inline.config ->
  annots:Annot_ast.annotation list ->
  Frontend.Ast.program ->
  Frontend.Ast.program * stats
