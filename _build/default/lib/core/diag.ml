(** Pipeline-level view of the structured diagnostics subsystem.

    The representation lives in {!Frontend.Diag} (the lexer and parser,
    which [core] depends on, must be able to raise located diagnostics);
    this module re-exports it under [Core.Diag] — the name the pipeline,
    experiment drivers and CLI use — and adds pipeline-level summaries. *)

include Frontend.Diag

(** One-line salvage summary for per-benchmark reporting, e.g.
    ["3 errors, 1 warning salvaged"]; [""] when the run was clean. *)
let summary (ds : t list) =
  let e = errors_in ds and w = warnings_in ds in
  if e = 0 && w = 0 then ""
  else
    let part n what =
      if n = 0 then []
      else [ Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") ]
    in
    String.concat ", " (part e "error" @ part w "warning") ^ " salvaged"
