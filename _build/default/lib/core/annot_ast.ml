(** Abstract syntax of the annotation language (Fig. 12 of the paper).

    Annotations are small summary programs: assignments, conditionals,
    counted [do] loops, declarations, and the two summary operators
    [unknown(...)] and [unique(...)].  Array references use brackets
    ([XYG[1, ICOND[1, ID]]]) and support Fortran-90-style sections
    ([FE[1:NSFE, ID]]). *)

type aexpr =
  | AInt of int
  | AReal of float
  | AVar of string
  | AIndex of string * aexpr list
  | ASection of string * (aexpr option * aexpr option) list
      (** [a[lo:hi, e]]; a plain index [e] is [(Some e, Some e)] *)
  | ABinop of Frontend.Ast.binop * aexpr * aexpr
  | AUnop of Frontend.Ast.unop * aexpr
  | ACall of string * aexpr list  (** intrinsic invocation *)
  | AUnknown of aexpr list
  | AUnique of aexpr list

type atarget =
  | TVar of string
  | TIndex of string * aexpr list
  | TSection of string * (aexpr option * aexpr option) list

type astmt =
  | ABlock of astmt list
  | AAssign of atarget list * aexpr
      (** multiple targets allowed for [unknown]: [(NDX,NDY) = unknown(..)] *)
  | AIf of aexpr * astmt * astmt option
  | ADo of { av : string; alo : aexpr; ahi : aexpr; astep : aexpr option; abody : astmt }
  | ADecl of Frontend.Ast.dtype option * (string * aexpr list) list
      (** [dimension M1[L,M], M2[M,N]] or [integer K1, K2] *)
  | AReturn of aexpr option

type annotation = {
  an_name : string;  (** subroutine summarized *)
  an_params : string list;
  an_body : astmt list;
}

(** Dimension declarations collected from the annotation body. *)
let declared_dims (a : annotation) : (string * aexpr list) list =
  let rec walk acc = function
    | ABlock b -> List.fold_left walk acc b
    | ADecl (_, items) ->
        List.fold_left
          (fun acc (n, dims) -> if dims <> [] then (n, dims) :: acc else acc)
          acc items
    | AIf (_, t, e) -> (
        let acc = walk acc t in
        match e with Some e -> walk acc e | None -> acc)
    | ADo d -> walk acc d.abody
    | AAssign _ | AReturn _ -> acc
  in
  List.fold_left walk [] a.an_body

(** Number of [do] statements, pre-order — used to map annotation loops to
    the real callee's loops for provenance. *)
let rec count_dos = function
  | ABlock b -> List.fold_left (fun n s -> n + count_dos s) 0 b
  | ADo d -> 1 + count_dos d.abody
  | AIf (_, t, e) ->
      count_dos t + (match e with Some e -> count_dos e | None -> 0)
  | AAssign _ | ADecl _ | AReturn _ -> 0
