lib/core/annot_parser.ml: Annot_ast Frontend List Printf String
