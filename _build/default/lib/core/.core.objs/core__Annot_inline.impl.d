lib/core/annot_inline.ml: Analysis Annot_ast Ast Frontend List Option Printexc Printf Set String
