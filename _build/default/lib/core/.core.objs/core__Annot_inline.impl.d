lib/core/annot_inline.ml: Analysis Annot_ast Ast Frontend List Option Printf Set String
