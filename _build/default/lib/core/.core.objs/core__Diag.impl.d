lib/core/diag.ml: Frontend Printf String
