lib/core/annot_ast.ml: Frontend List
