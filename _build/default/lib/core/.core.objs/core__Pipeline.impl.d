lib/core/pipeline.ml: Analysis Annot_ast Annot_inline Annot_parser Ast Diag Frontend Hashtbl Inliner List Parallelizer Pretty Printexc Resolve Reverse Set String
