lib/core/pipeline.ml: Analysis Annot_ast Annot_inline Annot_parser Ast Frontend Hashtbl Inliner List Parallelizer Pretty Resolve Reverse Set String
