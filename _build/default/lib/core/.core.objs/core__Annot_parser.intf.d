lib/core/annot_parser.mli: Annot_ast
