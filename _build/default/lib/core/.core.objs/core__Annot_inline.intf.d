lib/core/annot_inline.mli: Annot_ast Frontend
