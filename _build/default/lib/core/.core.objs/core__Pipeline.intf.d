lib/core/pipeline.mli: Annot_ast Annot_inline Ast Diag Frontend Inliner Parallelizer Reverse Set String
