lib/core/pipeline.mli: Annot_ast Annot_inline Ast Frontend Inliner Parallelizer Reverse Set String
