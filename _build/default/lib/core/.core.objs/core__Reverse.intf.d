lib/core/reverse.mli: Annot_ast Annot_inline Frontend
