lib/core/reverse.ml: Analysis Annot_ast Annot_inline Array Ast Frontend List Map String
