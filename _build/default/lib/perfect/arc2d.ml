(** ARC2D -- implicit finite-difference fluid solver of the Euler
    equations on a 2-D body-fitted grid.

    Phenomena:
    - the implicit sweeps pass workspace *slices* [Q(1,1,N)] and
      [WORK(IOFF)] to small leaf smoothers; conventional inlining flattens
      the 3-D state arrays "without explicit shape information", and every
      J/N loop that writes them dies (II-A.2) -- the benchmark's large
      #par-loss;
    - XPENTA/YPENTA are opaque pentadiagonal solvers (call helpers, carry
      singularity checks) summarized with [unknown] annotations, so the
      grid-line loops around them parallelize (the paper's Fig. 6-7
      pattern, in its ARC2D incarnation);
    - FILTRX is a small leaf filter taking a line index; conventional
      inlining also wins those loops. *)

let name = "ARC2D"
let description = "Two-dimensional fluid solver of the Euler equations"

let source =
  {fort|
      PROGRAM ARC2D
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /WRK/ WORK(4096), D(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      CALL SETUP
      DO 900 ISTEP = 1, NSTEPS
        CALL STEPFX
        DO 100 K = 1, KMAX
          CALL XPENTA(K)
 100    CONTINUE
        DO 110 J = 1, JMAX
          CALL YPENTA(J)
 110    CONTINUE
        CALL STEPFY
        DO 120 K = 1, KMAX
          CALL FILTRX(K)
 120    CONTINUE
        DO 125 K = 1, KMAX
          CALL UPDQ(K)
 125    CONTINUE
        DO 128 J = 1, JMAX
          CALL XFLUX(J)
 128    CONTINUE
        DO 129 K = 1, KMAX
          CALL YIMPL(K)
 129    CONTINUE
        DO 130 IW = 1, 2
          CALL SAVEST(IW)
          CALL SAVEST(IW)
 130    CONTINUE
 900  CONTINUE
      CHK = 0.0
      DO K = 1, KMAX
        DO J = 1, JMAX
          CHK = CHK + Q(J,K,1) + PRESS(J,K) * 0.5
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /WRK/ WORK(4096), D(64,48)
      JMAX = 60
      KMAX = 44
      NEQ = 4
      NSTEPS = 3
      DO N = 1, 4
        DO K = 1, 48
          DO J = 1, 64
            Q(J,K,N) = MOD(J + 2*K + 3*N, 23) * 0.125
            S(J,K,N) = 0.0
          ENDDO
        ENDDO
      ENDDO
      DO K = 1, 48
        DO J = 1, 64
          PRESS(J,K) = MOD(J * K, 31) * 0.0625
          D(J,K) = 1.0
        ENDDO
      ENDDO
      DO I = 1, 4096
        WORK(I) = MOD(I, 11) * 0.03125
      ENDDO
      END

      SUBROUTINE SMOOTH(A, C)
      DIMENSION A(*)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      DO 10 K = 1, 4
        DO 10 J = 1, JMAX
          A(J + 64*(K-1)) = A(J + 64*(K-1)) * C + 0.5 * K
 10   CONTINUE
      END

      SUBROUTINE STEPFX
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /WRK/ WORK(4096), D(64,48)
      DO 200 N = 1, NEQ
        DO 200 K = 1, KMAX
          DO 200 J = 1, JMAX
            S(J,K,N) = Q(J,K,N) * 0.25 + PRESS(J,K) * 0.125
 200  CONTINUE
      DO 210 N = 1, NEQ
        DO 210 K = 1, KMAX
          DO 210 J = 1, JMAX
            Q(J,K,N) = Q(J,K,N) + S(J,K,N) * 0.0625
 210  CONTINUE
      DO 220 K = 1, KMAX
        DO 220 J = 1, JMAX
          PRESS(J,K) = Q(J,K,1) * 0.4 + Q(J,K,4) * 0.1
 220  CONTINUE
      DO 230 N = 1, NEQ
        DO 230 K = 1, KMAX
          DO 230 J = 1, JMAX
            S(J,K,N) = S(J,K,N) * 0.5 + PRESS(J,K) * 0.03125
 230  CONTINUE
      DO 240 N = 1, NEQ
        DO 240 K = 1, KMAX
          DO 240 J = 1, JMAX
            Q(J,K,N) = Q(J,K,N) + S(J,K,N) * 0.015625
 240  CONTINUE
      DO 250 K = 1, KMAX
        DO 250 J = 1, JMAX
          D(J,K) = PRESS(J,K) * 2.0 - D(J,K) * 0.5
 250  CONTINUE
      DO 260 N = 1, 2
        CALL SMOOTH(Q(1,1,N), 0.96)
 260  CONTINUE
      DO 270 N = 1, 2
        CALL SMOOTH(S(1,1,N), 0.98)
 270  CONTINUE
      DO 280 N = 1, 2
        CALL SMOOTH(PRESS(1,N), 0.99)
 280  CONTINUE
      END

      SUBROUTINE STEPFY
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /WRK/ WORK(4096), D(64,48)
      DO 500 N = 1, NEQ
        DO 500 K = 1, KMAX
          DO 500 J = 1, JMAX
            S(J,K,N) = Q(J,K,N) * 0.2 + D(J,K) * 0.05
 500  CONTINUE
      DO 510 N = 1, NEQ
        DO 510 K = 1, KMAX
          DO 510 J = 1, JMAX
            Q(J,K,N) = Q(J,K,N) + S(J,K,N) * 0.025
 510  CONTINUE
      DO 520 K = 1, KMAX
        DO 520 J = 1, JMAX
          PRESS(J,K) = PRESS(J,K) * 0.9 + Q(J,K,2) * 0.05
 520  CONTINUE
      DO 530 N = 1, NEQ
        DO 530 K = 1, KMAX
          DO 530 J = 1, JMAX
            S(J,K,N) = S(J,K,N) + Q(J,K,N) * 0.0125
 530  CONTINUE
      DO 540 N = 1, NEQ
        DO 540 K = 1, KMAX
          DO 540 J = 1, JMAX
            Q(J,K,N) = Q(J,K,N) * 0.999 + S(J,K,N) * 0.001
 540  CONTINUE
      DO 560 N = 1, 2
        CALL SMOOTH(Q(1,1,N+2), 0.97)
 560  CONTINUE
      DO 570 N = 1, 2
        CALL SMOOTH(S(1,1,N+2), 0.95)
 570  CONTINUE
      DO 580 N = 1, 2
        CALL SMOOTH(PRESS(1,N+2), 0.98)
 580  CONTINUE
      END

      SUBROUTINE UPDQ(K)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      DO J = 1, JMAX
        Q(J,K,3) = Q(J,K,3) * 0.998 + S(J,K,3) * 0.002
      ENDDO
      END

      SUBROUTINE XFLUX(J)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      CALL TRIDIA(1)
      FSUM = 0.0
      DO K = 1, KMAX
        FSUM = FSUM + PRESS(J,K) * 0.5
      ENDDO
      IF (FSUM .GT. 1.0E20) THEN
        WRITE(6,*) ' XFLUX: FLUX OVERFLOW AT LINE ', J
        STOP 'XFLUX OVERFLOW'
      ENDIF
      DO K = 1, KMAX
        S(J,K,1) = S(J,K,1) + FSUM * 0.001 + XLINE(J) * 0.0001
      ENDDO
      END

      SUBROUTINE TRIDIA(K)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      DO J = 1, JMAX
        XLINE(J) = Q(J,K,1) + 2.0
        YLINE(J) = Q(J,K,2) * 0.5
      ENDDO
      DO J = 2, JMAX
        YLINE(J) = YLINE(J) - YLINE(J-1) * 0.25 / XLINE(J-1)
      ENDDO
      END

      SUBROUTINE XPENTA(K)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      CALL TRIDIA(K)
      PIVMIN = 1.0E30
      DO J = 1, JMAX
        PIVMIN = MIN(PIVMIN, XLINE(J))
      ENDDO
      IF (PIVMIN .LE. 0.0) THEN
        WRITE(6,*) ' XPENTA: SINGULAR PIVOT ON LINE ', K
        STOP 'XPENTA SINGULAR'
      ENDIF
      DO J = 1, JMAX
        Q(J,K,1) = Q(J,K,1) + YLINE(J) / XLINE(J) * 0.1
        Q(J,K,2) = Q(J,K,2) + YLINE(J) * 0.05
      ENDDO
      END

      SUBROUTINE YPENTA(J)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      DO K = 1, KMAX
        ZLINE(K) = Q(J,K,3) + PRESS(J,K)
      ENDDO
      DO K = 2, KMAX
        ZLINE(K) = ZLINE(K) + ZLINE(K-1) * 0.125
      ENDDO
      SCAL = 0.0
      DO K = 1, KMAX
        SCAL = SCAL + ZLINE(K)
      ENDDO
      DO K = 1, KMAX
        Q(J,K,3) = Q(J,K,3) + ZLINE(K) / (1.0 + SCAL * SCAL) * 0.2
      ENDDO
      END

      SUBROUTINE FILTRX(K)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      DO J = 1, JMAX
        Q(J,K,4) = Q(J,K,4) * 0.99 + S(J,K,4) * 0.01
        S(J,K,4) = S(J,K,4) * 0.95
      ENDDO
      END

      SUBROUTINE YIMPL(K)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      COMMON /LINE/ XLINE(64), YLINE(64), ZLINE(64)
      CALL TRIDIA(K)
      YMAX = 0.0
      DO J = 1, JMAX
        YMAX = MAX(YMAX, ABS(YLINE(J)))
      ENDDO
      IF (YMAX .GT. 1.0E25) THEN
        WRITE(6,*) ' YIMPL: IMPLICIT SWEEP DIVERGED ON LINE ', K
        STOP 'YIMPL DIVERGED'
      ENDIF
      DO J = 1, JMAX
        S(J,K,2) = S(J,K,2) * 0.97 + YLINE(J) / (1.0 + YMAX) * 0.01
      ENDDO
      END

      SUBROUTINE SAVEST(IW)
      COMMON /SIZES/ JMAX, KMAX, NEQ, NSTEPS
      COMMON /WRK/ WORK(4096), D(64,48)
      COMMON /STATE/ Q(64,48,4), S(64,48,4), PRESS(64,48)
      DO J = 1, JMAX
        WORK(J + 64*(IW-1)) = PRESS(J, IW) * 0.5
        WORK(J + 64*(IW+1)) = PRESS(J, IW+2) * 0.25
        WORK(J + 64*(IW+3)) = D(J, IW) * 0.125
        WORK(J + 64*(IW+5)) = D(J, IW+2) * 0.0625
      ENDDO
      END
|fort}

let annotations =
  {annot|
subroutine XPENTA(K) {
  XLINE = unknown(Q[1,K,1], JMAX);
  YLINE = unknown(Q[1,K,2], XLINE, JMAX);
  do (J = 1:JMAX) {
    Q[J,K,1] = unknown(Q[J,K,1], XLINE, YLINE);
    Q[J,K,2] = unknown(Q[J,K,2], YLINE);
  }
}

subroutine YPENTA(J) {
  ZLINE = unknown(Q[J,1,3], PRESS[J,1], KMAX);
  SCAL = unknown(ZLINE, KMAX);
  do (K = 1:KMAX)
    Q[J,K,3] = unknown(Q[J,K,3], ZLINE, SCAL);
}

subroutine FILTRX(K) {
  do (J = 1:JMAX) {
    Q[J,K,4] = unknown(Q[J,K,4], S[J,K,4]);
    S[J,K,4] = unknown(S[J,K,4]);
  }
}

subroutine UPDQ(K) {
  do (J = 1:JMAX)
    Q[J,K,3] = unknown(Q[J,K,3], S[J,K,3]);
}

subroutine YIMPL(K) {
  XLINE = unknown(Q[1,K,1], JMAX);
  YLINE = unknown(Q[1,K,2], XLINE, JMAX);
  YMAX = unknown(YLINE, JMAX);
  do (J = 1:JMAX)
    S[J,K,2] = unknown(S[J,K,2], YLINE, YMAX);
}

subroutine XFLUX(J) {
  XLINE = unknown(Q[1,1,1], JMAX);
  YLINE = unknown(Q[1,1,2], XLINE, JMAX);
  FSUM = unknown(PRESS[J,1], KMAX);
  do (K = 1:KMAX)
    S[J,K,1] = unknown(S[J,K,1], FSUM, XLINE[J]);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
