(** The 12 synthetic PERFECT-club benchmarks (Table I). *)

let all : Bench_def.t list = [
    Adm.bench; Arc2d.bench; Flo52q.bench; Ocean.bench; Bdna.bench;
    Mdg.bench; Qcd.bench; Trfd.bench; Dyfesm.bench; Mg3d.bench;
    Track.bench; Spec77.bench;
  ]

let find name =
  List.find_opt
    (fun (b : Bench_def.t) ->
      String.equal (String.uppercase_ascii name) b.name)
    all
