lib/perfect/bdna.ml: Bench_def
