lib/perfect/mdg.ml: Bench_def
