lib/perfect/experiment.ml: Bench_def Core Diag Domain Float Frontend Hashtbl List Pipeline Runtime String Unix
