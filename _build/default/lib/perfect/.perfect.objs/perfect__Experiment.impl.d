lib/perfect/experiment.ml: Bench_def Core Domain Float Frontend Hashtbl List Pipeline Printf Runtime String Unix
