lib/perfect/adm.ml: Bench_def
