lib/perfect/qcd.ml: Bench_def
