lib/perfect/spec77.ml: Bench_def
