lib/perfect/arc2d.ml: Bench_def
