lib/perfect/track.ml: Bench_def
