lib/perfect/ocean.ml: Bench_def
