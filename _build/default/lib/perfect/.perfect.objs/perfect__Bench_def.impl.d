lib/perfect/bench_def.ml: Core Frontend String
