lib/perfect/dyfesm.ml: Bench_def
