lib/perfect/mg3d.ml: Bench_def
