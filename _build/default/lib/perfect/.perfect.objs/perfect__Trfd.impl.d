lib/perfect/trfd.ml: Bench_def
