lib/perfect/suite.ml: Adm Arc2d Bdna Bench_def Dyfesm Flo52q List Mdg Mg3d Ocean Qcd Spec77 String Track Trfd
