lib/perfect/flo52q.ml: Bench_def
