(** MG3D -- seismic depth-migration code.

    A pure #par-loss benchmark: the wavefield planes live in 3-D arrays
    that the trace-extrapolation phases hand to small leaf kernels as
    column slices ([UR(1,1,IZ)]); conventional inlining flattens the
    arrays, and the plane (K) and depth (N) loops of every extrapolation
    nest -- two per 3-D nest -- become unanalyzable (II-A.2).  The
    call-bearing loops themselves gain nothing from any inlining flavor
    (the slice kernels carry genuine cross-column recurrences), and no
    annotations are registered, matching the paper's "no improvement"
    rows. *)

let name = "MG3D"
let description = "Depth migration code"

let source =
  {fort|
      PROGRAM MG3D
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      COMMON /WAVE/ UR(40,24,8), UI(40,24,8), VEL(40,24,8)
      COMMON /TRACE/ TR(40,24)
      CALL SETUP
      DO 900 ISTEP = 1, NSTEP
        CALL EXTRAP
        CALL CONVOL
        CALL IMAGE
 900  CONTINUE
      CHK = 0.0
      DO K = 1, NY
        DO J = 1, NX
          CHK = CHK + UR(J,K,1) + TR(J,K) * 0.5
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      COMMON /WAVE/ UR(40,24,8), UI(40,24,8), VEL(40,24,8)
      COMMON /TRACE/ TR(40,24)
      NX = 36
      NY = 20
      NZ = 8
      NSTEP = 4
      DO N = 1, 8
        DO K = 1, 24
          DO J = 1, 40
            UR(J,K,N) = MOD(J + 2*K + 5*N, 17) * 0.125
            UI(J,K,N) = MOD(2*J + K + 3*N, 19) * 0.0625
            VEL(J,K,N) = 1.0 + MOD(J * K + N, 7) * 0.25
          ENDDO
        ENDDO
      ENDDO
      DO K = 1, 24
        DO J = 1, 40
          TR(J,K) = MOD(J + K, 9) * 0.5
        ENDDO
      ENDDO
      END

      SUBROUTINE TAPER(A, B)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      DO I = 2, NX
        A(I) = A(I) * 0.9 + A(I-1) * 0.05 + B(I) * 0.05
      ENDDO
      END

      SUBROUTINE EXTRAP
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      COMMON /WAVE/ UR(40,24,8), UI(40,24,8), VEL(40,24,8)
      COMMON /TRACE/ TR(40,24)
      DO 100 N = 1, NZ
        DO 100 K = 1, NY
          DO 100 J = 1, NX
            UR(J,K,N) = UR(J,K,N) * 0.95 + UI(J,K,N) * VEL(J,K,N) * 0.01
 100  CONTINUE
      DO 110 N = 1, NZ
        DO 110 K = 1, NY
          DO 110 J = 1, NX
            UI(J,K,N) = UI(J,K,N) * 0.95 - UR(J,K,N) * VEL(J,K,N) * 0.01
 110  CONTINUE
      DO 120 N = 1, NZ
        DO 120 K = 1, NY
          DO 120 J = 1, NX
            UR(J,K,N) = UR(J,K,N) + VEL(J,K,N) * 0.001
 120  CONTINUE
      DO 125 N = 1, NZ
        DO 125 K = 1, NY
          DO 125 J = 1, NX
            UI(J,K,N) = UI(J,K,N) + UR(J,K,N) * VEL(J,K,N) * 0.0005
 125  CONTINUE
      DO 130 IZ = 1, NZ
        CALL TAPER(UR(1,1,IZ), UI(1,1,IZ))
 130  CONTINUE
      END

      SUBROUTINE CONVOL
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      COMMON /WAVE/ UR(40,24,8), UI(40,24,8), VEL(40,24,8)
      COMMON /TRACE/ TR(40,24)
      DO 200 N = 1, NZ
        DO 200 K = 1, NY
          DO 200 J = 1, NX
            UI(J,K,N) = UI(J,K,N) + UR(J,K,N) * 0.125
 200  CONTINUE
      DO 210 N = 1, NZ
        DO 210 K = 1, NY
          DO 210 J = 1, NX
            UR(J,K,N) = UR(J,K,N) * 0.875 + UI(J,K,N) * 0.0625
 210  CONTINUE
      DO 220 N = 1, NZ
        DO 220 K = 1, NY
          DO 220 J = 1, NX
            UI(J,K,N) = UI(J,K,N) * 0.96 + VEL(J,K,N) * 0.002
 220  CONTINUE
      DO 230 IZ = 1, NZ
        CALL TAPER(UI(1,1,IZ), UR(1,1,IZ))
 230  CONTINUE
      END

      SUBROUTINE IMAGE
      COMMON /SIZES/ NX, NY, NZ, NSTEP
      COMMON /WAVE/ UR(40,24,8), UI(40,24,8), VEL(40,24,8)
      COMMON /TRACE/ TR(40,24)
      DO 300 N = 1, NZ
        DO 300 K = 1, NY
          DO 300 J = 1, NX
            UR(J,K,N) = UR(J,K,N) + TR(J,K) * 0.004
 300  CONTINUE
      DO 310 N = 1, NZ
        DO 310 K = 1, NY
          DO 310 J = 1, NX
            UI(J,K,N) = UI(J,K,N) * 0.99 + TR(J,K) * 0.002
 310  CONTINUE
      DO 320 K = 1, NY
        DO 320 J = 1, NX
          TR(J,K) = TR(J,K) * 0.98 + UR(J,K,1) * 0.01
 320  CONTINUE
      DO 330 IZ = 1, NZ
        CALL TAPER(UR(1,1,IZ), UI(1,1,IZ))
 330  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
