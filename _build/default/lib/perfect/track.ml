(** TRACK -- missile tracking.

    Mechanisms: tracks are assigned to observation slots through the
    one-to-one index arrays [LOCT]/[LOCO]; the annotated scatter routines
    (NEWTRK, FUSE) summarize them with [unique] so the track loops
    parallelize (Figs. 10-14).  KALMAN and EXTKAL are opaque filter
    updates (helper calls, divergence check, COMMON scratch [GK]/[PK]).
    The observation-history planes of [OBS]/[RES] go to the leaf SMOBS as
    column slices, so conventional inlining linearizes both and loses the
    history loops; PREDCT and GAINUP are the small index-passing leaves
    where conventional inlining still wins. *)

let name = "TRACK"
let description = "Missile tracking"

let source =
  {fort|
      PROGRAM TRACK
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /MAPS/ LOCT(2,128), LOCO(2,128)
      COMMON /HIST/ OBS(160,5), RES(160,5)
      COMMON /SCR/ GK(128), PK(128)
      COMMON /ACC/ RESID
      CALL SETUP
      DO 800 ISCAN = 1, NSCAN
        DO 100 IT = 1, NTRK
          CALL PREDCT(IT)
 100    CONTINUE
        DO 110 IT = 1, NTRK
          CALL KALMAN(IT)
 110    CONTINUE
        DO 120 IT = 1, NTRK
          CALL EXTKAL(IT)
 120    CONTINUE
        DO 130 IT = 1, NTRK
          CALL GAINUP(IT)
 130    CONTINUE
        DO 140 IT = 1, NTRK
          CALL NEWTRK(IT)
 140    CONTINUE
        DO 150 IT = 1, NTRK
          CALL FUSE(IT)
 150    CONTINUE
        CALL HISTUP
        CALL COVUP
 800  CONTINUE
      CHK = RESID
      DO I = 1, 256
        CHK = CHK + X(I) * 0.01 + PVAR(I) * 0.001
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /MAPS/ LOCT(2,128), LOCO(2,128)
      COMMON /HIST/ OBS(160,5), RES(160,5)
      COMMON /ACC/ RESID
      NTRK = 96
      NOBS = 144
      NSCAN = 4
      RESID = 0.0
      DO I = 1, 512
        X(I) = MOD(I, 37) * 0.125
        VX(I) = MOD(I, 17) * 0.0625
        PVAR(I) = 1.0 + MOD(I, 7) * 0.25
      ENDDO
      DO I = 1, 128
        LOCT(1,I) = 2*I - 1
        LOCT(2,I) = 2*I
        LOCO(1,I) = 256 + 2*I - 1
        LOCO(2,I) = 256 + 2*I
      ENDDO
      DO J = 1, 5
        DO I = 1, 160
          OBS(I,J) = MOD(I + 3*J, 23) * 0.25
          RES(I,J) = 0.0
        ENDDO
      ENDDO
      END

      SUBROUTINE PREDCT(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      X(IT) = X(IT) + VX(IT) * 0.1
      VX(IT) = VX(IT) * 0.999
      PVAR(IT) = PVAR(IT) * 1.001
      END

      SUBROUTINE INNOV(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /HIST/ OBS(160,5), RES(160,5)
      COMMON /SCR/ GK(128), PK(128)
      DO K = 1, NTRK
        GK(K) = OBS(K,1) - X(IT) * 0.5
      ENDDO
      DO K = 1, NTRK
        PK(K) = GK(K) * GK(K) * 0.125 + PVAR(IT) * 0.0625
      ENDDO
      END

      SUBROUTINE KALMAN(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /SCR/ GK(128), PK(128)
      COMMON /ACC/ RESID
      CALL INNOV(IT)
      GSUM = 0.0
      DO K = 1, NTRK
        GSUM = GSUM + GK(K) / (1.0 + PK(K))
      ENDDO
      IF (GSUM .GT. 1.0E25) THEN
        WRITE(6,*) ' KALMAN: FILTER DIVERGED ON TRACK ', IT
        STOP 'KALMAN DIVERGED'
      ENDIF
      X(IT) = X(IT) + GSUM * 0.001
      RESID = RESID + GSUM * 0.0001
      END

      SUBROUTINE EXTKAL(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /SCR/ GK(128), PK(128)
      CALL INNOV(IT)
      PSUM = 0.0
      DO K = 1, NTRK
        PSUM = PSUM + PK(K) * 0.03125
      ENDDO
      PVAR(IT) = PVAR(IT) * 0.99 + PSUM * 0.0005
      END

      SUBROUTINE GAINUP(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      VX(IT) = VX(IT) + X(IT) * 0.001 - PVAR(IT) * 0.0001
      END

      SUBROUTINE NEWTRK(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /MAPS/ LOCT(2,128), LOCO(2,128)
      X(LOCT(1,IT)) = X(LOCT(1,IT)) * 0.998 + VX(IT) * 0.002
      X(LOCT(2,IT)) = X(LOCT(2,IT)) * 0.998 - VX(IT) * 0.001
      END

      SUBROUTINE FUSE(IT)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      COMMON /MAPS/ LOCT(2,128), LOCO(2,128)
      PVAR(LOCO(1,IT) - 256) = PVAR(LOCO(1,IT) - 256) * 0.995
      PVAR(LOCO(2,IT) - 256) = PVAR(LOCO(2,IT) - 256) * 0.99
      END

      SUBROUTINE SMOBS(A, B)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      DO I = 1, NOBS
        A(I) = A(I) * 0.9 + B(I) * 0.05
      ENDDO
      END

      SUBROUTINE HISTUP
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /HIST/ OBS(160,5), RES(160,5)
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      DO 300 J = 1, 5
        DO 300 I = 1, NOBS
          RES(I,J) = RES(I,J) * 0.8 + OBS(I,J) * 0.1
 300  CONTINUE
      DO 310 J = 1, 5
        DO 310 I = 1, NOBS
          OBS(I,J) = OBS(I,J) * 0.9 + X(MOD(I-1,512)+1) * 0.01
 310  CONTINUE
      DO 320 J = 1, 5
        DO 320 I = 1, NOBS
          RES(I,J) = RES(I,J) + OBS(I,J) * 0.05
 320  CONTINUE
      DO 330 J = 1, 5
        DO 330 I = 1, NOBS
          OBS(I,J) = OBS(I,J) + RES(I,J) * 0.025
 330  CONTINUE
      DO 335 J = 1, 5
        DO 335 I = 1, NOBS
          RES(I,J) = RES(I,J) * 0.95 + OBS(I,J) * 0.01
 335  CONTINUE
      DO 340 K = 1, 5
        CALL SMOBS(OBS(1,K), RES(1,K))
 340  CONTINUE
      END

      SUBROUTINE COVUP
      COMMON /SIZES/ NTRK, NOBS, NSCAN
      COMMON /HIST/ OBS(160,5), RES(160,5)
      COMMON /TRKS/ X(512), VX(512), PVAR(512)
      DO 400 J = 1, 5
        DO 400 I = 1, NOBS
          OBS(I,J) = OBS(I,J) * 0.99 + PVAR(MOD(I-1,512)+1) * 0.001
 400  CONTINUE
      DO 410 J = 1, 5
        DO 410 I = 1, NOBS
          RES(I,J) = RES(I,J) * 0.97 + OBS(I,J) * 0.015
 410  CONTINUE
      DO 420 J = 1, 5
        DO 420 I = 1, NOBS
          OBS(I,J) = OBS(I,J) + RES(I,J) * 0.0075
 420  CONTINUE
      DO 430 J = 1, 5
        DO 430 I = 1, NOBS
          RES(I,J) = RES(I,J) + OBS(I,J) * 0.00375
 430  CONTINUE
      DO 440 J = 1, 5
        DO 440 I = 1, NOBS
          OBS(I,J) = OBS(I,J) * 0.995 + RES(I,J) * 0.0025
 440  CONTINUE
      DO 450 K = 1, 5
        CALL SMOBS(RES(1,K), OBS(1,K))
 450  CONTINUE
      END
|fort}

let annotations =
  {annot|
subroutine PREDCT(IT) {
  X[IT] = unknown(X[IT], VX[IT]);
  VX[IT] = unknown(VX[IT]);
  PVAR[IT] = unknown(PVAR[IT]);
}

subroutine KALMAN(IT) {
  GK = unknown(OBS[1,1], X[IT], NTRK);
  PK = unknown(GK, PVAR[IT], NTRK);
  X[IT] = unknown(X[IT], GK, PK);
  RESID = RESID + unknown(GK, PK);
}

subroutine EXTKAL(IT) {
  GK = unknown(OBS[1,1], X[IT], NTRK);
  PK = unknown(GK, PVAR[IT], NTRK);
  PVAR[IT] = unknown(PVAR[IT], PK);
}

subroutine GAINUP(IT) {
  VX[IT] = unknown(VX[IT], X[IT], PVAR[IT]);
}

subroutine NEWTRK(IT) {
  X[unique(1, IT)] = unknown(X[unique(1, IT)], VX[IT]);
  X[unique(2, IT)] = unknown(X[unique(2, IT)], VX[IT]);
}

subroutine FUSE(IT) {
  PVAR[unique(1, IT)] = unknown(PVAR[unique(1, IT)]);
  PVAR[unique(2, IT)] = unknown(PVAR[unique(2, IT)]);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
