(** Common shape of a synthetic PERFECT benchmark: Fortran source, optional
    annotation file, and the descriptive row of Table I. *)

type t = {
  name : string;
  description : string;  (** the Table I description *)
  source : string;  (** Fortran-subset program text *)
  annotations : string;  (** annotation-language text; may be empty *)
}

let parse (b : t) = Frontend.Resolve.parse b.source

let annots (b : t) =
  if String.trim b.annotations = "" then []
  else Core.Annot_parser.parse_annotations b.annotations
