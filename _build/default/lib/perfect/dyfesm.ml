(** DYFESM -- structural dynamics finite-element benchmark.

    The paper's flagship: every annotation-only mechanism appears here.
    FSMP (Fig. 6) is the opaque compositional element-matrix routine --
    helper calls, COMMON temporaries (XY, WTDET, P), an error check with
    I/O and STOP -- whose annotation (Fig. 13) lets the element loop
    parallelize with the temporaries privatized and the last iteration
    peeled.  ASSEM (Figs. 10-11) scatters through one-to-one index arrays
    ICOND/IWHERD, summarized with [unique] (Fig. 14).  MULTEL passes
    element blocks with reshaped dimensions, which the annotation's
    [dimension] declarations preserve.  Conventional inlining is
    inapplicable throughout (every candidate has I/O or calls), so it
    neither gains nor loses loops here -- exactly the paper's account. *)

let name = "DYFESM"
let description = "Structural dynamics benchmark (finite element)"

let source =
  {fort|
      PROGRAM DYFESM
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /MAPS/ IDBEGS(8), IDEDON(128), ICOND(2,128), IWHERD(2,128)
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL SETUP
      DO 500 ISTEP = 1, NSTEP
        DO 35 ISS = 1, NSS
          DO 30 K = 1, NEPS
            ID = IDBEGS(ISS) + K
            CALL FSMP(ID, K)
 30       CONTINUE
 35     CONTINUE
        DO 40 IN = 1, 2
          DO 38 ID = 1, NELEM
            CALL ASSEM(ID, IN)
 38       CONTINUE
 40     CONTINUE
        DO 50 IE = 1, NELEM
          CALL MULTEL(FE(1,IE), SE(1,IE), PE(1,IE))
 50     CONTINUE
        DO 60 IE = 1, NELEM
          CALL FRCEL(IE)
 60     CONTINUE
        DO 70 IE = 1, NELEM
          CALL STRSEL(IE)
 70     CONTINUE
        DO 80 IE = 1, NELEM
          CALL UPDEL(IE)
 80     CONTINUE
        DO 45 ID = 1, NELEM
          CALL ASSEM2(ID)
 45     CONTINUE
        DO 75 IE = 1, NELEM
          CALL MASSEL(IE)
 75     CONTINUE
        DO 85 IE = 1, NELEM
          CALL DAMPEL(IE)
 85     CONTINUE
        CALL REDUCE
 500  CONTINUE
      CHK = 0.0
      DO I = 1, 512
        CHK = CHK + RHSB(I) + DISP(I) * 0.5
      ENDDO
      DO J = 1, NELEM
        DO I = 1, NSFE
          CHK = CHK + FE(I,J) * 0.125
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /MAPS/ IDBEGS(8), IDEDON(128), ICOND(2,128), IWHERD(2,128)
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      NSS = 8
      NEPS = 16
      NSFE = 16
      NNPED = 24
      NELEM = 128
      NSTEP = 3
      DO I = 1, 8
        IDBEGS(I) = (I-1) * 16
      ENDDO
      DO I = 1, 128
        IDEDON(I) = 0
        ICOND(1,I) = 2*I - 1
        ICOND(2,I) = 2*I
        IWHERD(1,I) = 256 + 2*I - 1
        IWHERD(2,I) = 256 + 2*I
      ENDDO
      DO J = 1, 128
        DO I = 1, 16
          FE(I,J) = 0.0
          SE(I,J) = 0.0
          ME(I,J) = MOD(I + J, 9) * 0.25
          PE(I,J) = MOD(I * J, 13) * 0.125
        ENDDO
      ENDDO
      DO I = 1, 512
        RHSB(I) = 0.0
        RHSI(I) = 0.0
        DISP(I) = MOD(I, 29) * 0.0625
        VELO(I) = MOD(I, 23) * 0.03125
      ENDDO
      END

      SUBROUTINE GETCR(ID)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      DO J = 1, NNPED
        XY(1,J) = DISP(MOD(ID + J - 2, 512) + 1) + ID * 0.015625
        XY(2,J) = VELO(MOD(ID + 2*J - 3, 512) + 1) - J * 0.03125
      ENDDO
      END

      SUBROUTINE SHAPE1
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      DO J = 1, NNPED
        WTDET(J) = XY(1,J) * XY(2,J) + 0.125
      ENDDO
      DO J = 1, NNPED
        P(J) = WTDET(J) * 0.5 + XY(1,J) * 0.25
      ENDDO
      END

      SUBROUTINE FSMP(ID, IDE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /MAPS/ IDBEGS(8), IDEDON(128), ICOND(2,128), IWHERD(2,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL GETCR(ID)
      CALL SHAPE1
      IF (IDEDON(IDE) .EQ. 0) THEN
        IDEDON(IDE) = 1
        DO I = 1, NSFE
          SE(I,IDE) = WTDET(MOD(I-1,NNPED)+1) * 2.0
          ME(I,IDE) = ME(I,IDE) + P(MOD(I-1,NNPED)+1) * 0.5
        ENDDO
      ENDIF
      WMIN = 1.0E30
      DO J = 1, NNPED
        WMIN = MIN(WMIN, WTDET(J))
      ENDDO
      IF (WMIN .LT. -1.0E20) THEN
        WRITE(6,*) ' F ELEMENT ', IDE, ' IS SINGULAR '
        STOP 'F SINGULAR'
      ENDIF
      DO I = 1, NSFE
        FE(I,ID) = FE(I,ID) * 0.5 + WTDET(MOD(I-1,NNPED)+1) + ID * 0.0078125
      ENDDO
      END

      SUBROUTINE ASSEM(ID, IN)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /MAPS/ IDBEGS(8), IDEDON(128), ICOND(2,128), IWHERD(2,128)
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      RHSB(ICOND(IN,ID)) = FE(IN,ID) * 2.0 + PE(IN,ID)
      RHSI(IWHERD(IN,ID) - 256) = SE(IN,ID) + ME(IN,ID) * 0.5
      END

      SUBROUTINE MULTEL(M1, M2, M3)
      DIMENSION M1(*), M2(*), M3(*)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      EMAX = 0.0
      DO I = 1, NSFE
        EMAX = MAX(EMAX, ABS(M1(I)))
      ENDDO
      IF (EMAX .GT. 1.0E25) THEN
        WRITE(6,*) ' MULTEL: ELEMENT MATRIX OVERFLOW '
        STOP 'MULTEL OVERFLOW'
      ENDIF
      DO I = 1, NSFE
        M3(I) = M3(I) + M1(I) * 0.25 + M2(I) * 0.125
      ENDDO
      END

      SUBROUTINE FRCEL(IE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL GETCR(IE)
      CALL SHAPE1
      DO I = 1, NSFE
        FE(I,IE) = FE(I,IE) + P(MOD(I-1,NNPED)+1) * 0.0625
      ENDDO
      END

      SUBROUTINE STRSEL(IE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL GETCR(IE)
      SMAX = 0.0
      DO J = 1, NNPED
        SMAX = MAX(SMAX, ABS(XY(1,J)))
      ENDDO
      IF (SMAX .GT. 1.0E25) THEN
        WRITE(6,*) ' STRSEL: STRESS OVERFLOW IN ELEMENT ', IE
        STOP 'STRSEL OVERFLOW'
      ENDIF
      DO I = 1, NSFE
        SE(I,IE) = SE(I,IE) * 0.9 + SMAX * 0.001
      ENDDO
      END

      SUBROUTINE UPDEL(IE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL SHAPE1
      DO I = 1, NSFE
        PE(I,IE) = PE(I,IE) * 0.95 + FE(I,IE) * 0.05 + WTDET(1) * 0.001
      ENDDO
      END

      SUBROUTINE ASSEM2(ID)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /MAPS/ IDBEGS(8), IDEDON(128), ICOND(2,128), IWHERD(2,128)
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      VELO(ICOND(1,ID)) = VELO(ICOND(1,ID)) * 0.99 + FE(1,ID) * 0.01
      VELO(ICOND(2,ID)) = VELO(ICOND(2,ID)) * 0.99 + FE(2,ID) * 0.01
      END

      SUBROUTINE MASSEL(IE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL GETCR(IE)
      CALL SHAPE1
      DO I = 1, NSFE
        ME(I,IE) = ME(I,IE) * 0.98 + WTDET(MOD(I-1,NNPED)+1) * 0.02
      ENDDO
      END

      SUBROUTINE DAMPEL(IE)
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /ELEM/ FE(16,128), SE(16,128), ME(16,128), PE(16,128)
      COMMON /WORK/ XY(2,32), WTDET(32), P(32)
      CALL SHAPE1
      DO I = 1, NSFE
        SE(I,IE) = SE(I,IE) + P(MOD(I-1,NNPED)+1) * 0.001 - ME(I,IE) * 0.0001
      ENDDO
      END

      SUBROUTINE REDUCE
      COMMON /SIZES/ NSS, NEPS, NSFE, NNPED, NELEM, NSTEP
      COMMON /GLOB/ RHSB(512), RHSI(512), DISP(512), VELO(512)
      DO I = 1, 512
        DISP(I) = DISP(I) + RHSB(I) * 0.001 + RHSI(I) * 0.0005
      ENDDO
      DO I = 1, 512
        VELO(I) = VELO(I) * 0.999 + DISP(I) * 0.001
      ENDDO
      END
|fort}

let annotations =
  {annot|
subroutine FSMP(ID, IDE) {
  XY = unknown(DISP[ID], VELO[ID], ID, NNPED);
  WTDET = unknown(XY, NNPED);
  P = unknown(WTDET, XY);
  if (IDEDON[IDE] == 0) {
    IDEDON[IDE] = 1;
    SE[1:NSFE, IDE] = unknown(WTDET, NSFE);
    ME[1:NSFE, IDE] = unknown(ME[1:NSFE, IDE], P, NSFE);
  }
  FE[1:NSFE, ID] = unknown(FE[1:NSFE, ID], WTDET, ID, NSFE);
}

subroutine ASSEM(ID, IN) {
  RHSB[unique(IN, ID)] = unknown(FE[IN,ID], PE[IN,ID]);
  RHSI[unique(IN, ID)] = unknown(SE[IN,ID], ME[IN,ID]);
}

subroutine MULTEL(M1, M2, M3) {
  dimension M1[NSFE], M2[NSFE], M3[NSFE];
  EMAX = unknown(M1[1], NSFE);
  do (I = 1:NSFE)
    M3[I] = unknown(M3[I], M1[I], M2[I]);
}

subroutine FRCEL(IE) {
  XY = unknown(DISP[IE], VELO[IE], IE, NNPED);
  WTDET = unknown(XY, NNPED);
  P = unknown(WTDET, XY);
  FE[1:NSFE, IE] = unknown(FE[1:NSFE, IE], P, NSFE);
}

subroutine STRSEL(IE) {
  XY = unknown(DISP[IE], VELO[IE], IE, NNPED);
  SMAX = unknown(XY, NNPED);
  SE[1:NSFE, IE] = unknown(SE[1:NSFE, IE], SMAX, NSFE);
}

subroutine ASSEM2(ID) {
  VELO[unique(1, ID)] = unknown(VELO[unique(1, ID)], FE[1,ID]);
  VELO[unique(2, ID)] = unknown(VELO[unique(2, ID)], FE[2,ID]);
}

subroutine MASSEL(IE) {
  XY = unknown(DISP[IE], VELO[IE], IE, NNPED);
  WTDET = unknown(XY, NNPED);
  P = unknown(WTDET, XY);
  ME[1:NSFE, IE] = unknown(ME[1:NSFE, IE], WTDET, NSFE);
}

subroutine DAMPEL(IE) {
  WTDET = unknown(XY, NNPED);
  P = unknown(WTDET, XY);
  SE[1:NSFE, IE] = unknown(SE[1:NSFE, IE], P, ME[1:NSFE, IE], NSFE);
}

subroutine UPDEL(IE) {
  WTDET = unknown(XY, NNPED);
  P = unknown(WTDET, XY);
  PE[1:NSFE, IE] = unknown(PE[1:NSFE, IE], FE[1:NSFE, IE], WTDET, NSFE);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
