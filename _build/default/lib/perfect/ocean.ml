(** OCEAN -- two-dimensional ocean simulation (spectral shallow-water).

    One of the paper's "no improvement" rows: the loops containing calls
    invoke FFT-style butterfly passes with genuine cross-iteration
    recurrences, the transform routines are too large and call-laden for
    conventional inlining, and no annotations are supplied.  The suite
    still carries plenty of directly parallelizable loops, so all three
    configurations report the same counts. *)

let name = "OCEAN"
let description = "Two-dimensional ocean simulation"

let source =
  {fort|
      PROGRAM OCEAN
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      CALL SETUP
      DO 900 IT = 1, NTIME
        CALL FTRVMT
        CALL JACOBI
        CALL SOLVPS
        CALL TIMSTP
 900  CONTINUE
      CHK = 0.0
      DO J = 1, NYO
        DO I = 1, NXO
          CHK = CHK + PSI(I,J) + VORT(I,J) * 0.5
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      NXO = 64
      NYO = 64
      NTIME = 4
      DO J = 1, 66
        DO I = 1, 66
          PSI(I,J) = MOD(I + 2*J, 13) * 0.125
          VORT(I,J) = MOD(3*I + J, 11) * 0.0625
          WK1(I,J) = 0.0
          WK2(I,J) = 0.0
        ENDDO
      ENDDO
      END

      SUBROUTINE BUTTER(J)
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      IF (J .LT. 1) THEN
        WRITE(6,*) ' BUTTER: BAD COLUMN ', J
        STOP 'BUTTER BAD COLUMN'
      ENDIF
      DO I = 2, NXO
        WK1(I,J) = WK1(I,J) * 0.5 + WK1(I-1,J) * 0.25
      ENDDO
      END

      SUBROUTINE FTRVMT
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      DO 100 J = 1, NYO
        DO 100 I = 1, NXO
          WK1(I,J) = VORT(I,J) * 0.5 + PSI(I,J) * 0.25
 100  CONTINUE
      DO 110 J = 1, NYO
        CALL BUTTER(J)
 110  CONTINUE
      DO 120 J = 1, NYO
        DO 120 I = 1, NXO
          WK2(I,J) = WK1(I,J) * 0.75
 120  CONTINUE
      END

      SUBROUTINE JACOBI
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      DO 200 J = 2, NYO
        DO 200 I = 2, NXO
          WK1(I,J) = (PSI(I+1,J) - PSI(I-1,J)) * (VORT(I,J+1) - VORT(I,J-1))
     &             - (PSI(I,J+1) - PSI(I,J-1)) * (VORT(I+1,J) - VORT(I-1,J))
 200  CONTINUE
      DO 210 J = 1, NYO
        DO 210 I = 1, NXO
          WK2(I,J) = WK2(I,J) + WK1(I,J) * 0.0625
 210  CONTINUE
      END

      SUBROUTINE SOLVPS
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      DO 300 J = 2, NYO
        DO 300 I = 1, NXO
          WK2(I,J) = WK2(I,J) + WK2(I,J-1) * 0.125
 300  CONTINUE
      DO 310 J = 1, NYO
        DO 310 I = 1, NXO
          PSI(I,J) = PSI(I,J) * 0.9 + WK2(I,J) * 0.05
 310  CONTINUE
      END

      SUBROUTINE TIMSTP
      COMMON /SIZES/ NXO, NYO, NTIME
      COMMON /FIELDS/ PSI(66,66), VORT(66,66), WK1(66,66), WK2(66,66)
      DO 400 J = 1, NYO
        DO 400 I = 1, NXO
          VORT(I,J) = VORT(I,J) + WK1(I,J) * 0.01
 400  CONTINUE
      DO 410 J = 1, NYO
        DO 410 I = 1, NXO
          WK1(I,J) = WK1(I,J) * 0.5
          WK2(I,J) = WK2(I,J) * 0.5
 410  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
