(** FLO52Q -- transonic inviscid flow past an airfoil (multigrid Euler).

    This benchmark is one of the paper's *negative* cases for inlining:
    annotation gains nothing (its call-bearing loops carry genuine
    cross-iteration flux dependences), while conventional inlining of the
    small boundary/damping helpers -- invoked on column slices of the flow
    variables -- linearizes W, FW and DW and costs every outer loop that
    writes them (II-A.2).  No annotations are registered. *)

let name = "FLO52Q"
let description = "Transonic inviscid flow past an airfoil"

let source =
  {fort|
      PROGRAM FLO52Q
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      CALL SETUP
      DO 900 ICYC = 1, NCYC
        CALL EFLUX
        CALL DFLUX
        CALL PSMOO
        CALL ADDW
 900  CONTINUE
      CHK = 0.0
      DO J = 1, JL
        DO I = 1, IL
          CHK = CHK + W(I,J,1) + DW(I,J,4) * 0.25
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      IL = 64
      JL = 20
      NCYC = 4
      DO N = 1, 4
        DO J = 1, 24
          DO I = 1, 68
            W(I,J,N) = MOD(I + 3*J + 7*N, 19) * 0.125
            FW(I,J,N) = 0.0
            DW(I,J,N) = 0.0
          ENDDO
        ENDDO
      ENDDO
      DO J = 1, 24
        DO I = 1, 68
          VOL(I,J) = 1.0 + MOD(I + J, 5) * 0.125
          RAD(I,J) = MOD(I * J, 7) * 0.25 + 0.5
        ENDDO
      ENDDO
      END

      SUBROUTINE BCLINE(A, B, C)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ IL, JL, NCYC
      DO I = 1, IL
        A(I) = A(I) * C + B(I) * (1.0 - C)
      ENDDO
      END

      SUBROUTINE EFLUX
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      DO 100 N = 1, 4
        DO 100 J = 1, JL
          DO 100 I = 1, IL
            FW(I,J,N) = W(I,J,N) * RAD(I,J) * 0.25
 100  CONTINUE
      DO 110 N = 1, 4
        DO 110 J = 1, JL
          DO 110 I = 1, IL
            DW(I,J,N) = FW(I,J,N) / VOL(I,J)
 110  CONTINUE
      DO 120 N = 1, 2
        CALL BCLINE(FW(1,1,N), DW(1,2,N), 0.75)
 120  CONTINUE
      END

      SUBROUTINE DFLUX
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      DO 200 N = 1, 4
        DO 200 J = 1, JL
          DO 200 I = 1, IL
            DW(I,J,N) = DW(I,J,N) + FW(I,J,N) * 0.125
 200  CONTINUE
      DO 210 N = 1, 4
        DO 210 J = 1, JL
          DO 210 I = 1, IL
            FW(I,J,N) = FW(I,J,N) * 0.5 + W(I,J,N) * 0.03125
 210  CONTINUE
      DO 220 N = 1, 2
        CALL BCLINE(DW(1,1,N), FW(1,2,N), 0.5)
 220  CONTINUE
      END

      SUBROUTINE PSMOO
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      DO 300 N = 1, 4
        DO 300 J = 1, JL
          DO 300 I = 1, IL
            DW(I,J,N) = DW(I,J,N) * 0.8 + FW(I,J,N) * 0.1
 300  CONTINUE
      DO 310 N = 1, 4
        DO 310 J = 1, JL
          DO 310 I = 1, IL
            FW(I,J,N) = FW(I,J,N) + DW(I,J,N) * 0.0625
 310  CONTINUE
      DO 320 N = 1, 2
        CALL BCLINE(FW(1,3,N), DW(1,4,N), 0.9)
 320  CONTINUE
      END

      SUBROUTINE ADDW
      COMMON /SIZES/ IL, JL, NCYC
      COMMON /FLOW/ W(68,24,4), FW(68,24,4), DW(68,24,4)
      COMMON /METRIC/ VOL(68,24), RAD(68,24)
      DO 400 N = 1, 4
        DO 400 J = 1, JL
          DO 400 I = 1, IL
            W(I,J,N) = W(I,J,N) + DW(I,J,N) * 0.05
 400  CONTINUE
      DO 410 J = 1, JL
        DO 410 I = 1, IL
          RAD(I,J) = RAD(I,J) * 0.999 + W(I,J,1) * 0.001
 410  CONTINUE
      DO 415 N = 1, 4
        DO 415 J = 1, JL
          DO 415 I = 1, IL
            DW(I,J,N) = DW(I,J,N) * 0.25
 415  CONTINUE
      DO 420 N = 1, 2
        CALL BCLINE(W(1,1,N), DW(1,2,N), 0.85)
 420  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
