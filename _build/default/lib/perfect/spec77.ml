(** SPEC77 -- spectral atmospheric general-circulation model (weather
    simulation).

    The last "no improvement" row: the spectral transform core is a
    single large routine (too many statements for the inlining
    threshold), the semi-implicit solver carries latitude recurrences,
    and no annotations are registered.  Its directly parallelizable
    Gaussian-latitude loops behave identically in all configurations. *)

let name = "SPEC77"
let description = "Spectral weather simulation (atmospheric flow)"

let source =
  {fort|
      PROGRAM SPEC77
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /SPECT/ VORSP(34,34), DIVSP(34,34), TEMSP(34,34)
      COMMON /GRID/ UG(36,34), VG(36,34), TG(36,34)
      CALL SETUP
      DO 900 ISTEP = 1, NSTEP
        CALL SPTOGR
        CALL PHYSIC
        CALL GRTOSP
        CALL IMPLIC
 900  CONTINUE
      CHK = 0.0
      DO J = 1, NLAT
        DO I = 1, NLON
          CHK = CHK + UG(I,J) + TG(I,J) * 0.5
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /SPECT/ VORSP(34,34), DIVSP(34,34), TEMSP(34,34)
      COMMON /GRID/ UG(36,34), VG(36,34), TG(36,34)
      NLAT = 32
      NLON = 36
      NWAVE = 30
      NSTEP = 4
      DO J = 1, 34
        DO I = 1, 34
          VORSP(I,J) = MOD(I + 2*J, 13) * 0.0625
          DIVSP(I,J) = MOD(2*I + J, 11) * 0.03125
          TEMSP(I,J) = MOD(I * J, 7) * 0.125
        ENDDO
      ENDDO
      DO J = 1, 34
        DO I = 1, 36
          UG(I,J) = 0.0
          VG(I,J) = 0.0
          TG(I,J) = MOD(I + J, 9) * 0.25
        ENDDO
      ENDDO
      END

      SUBROUTINE SPTOGR
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /SPECT/ VORSP(34,34), DIVSP(34,34), TEMSP(34,34)
      COMMON /GRID/ UG(36,34), VG(36,34), TG(36,34)
      DO 100 J = 1, NLAT
        DO 100 I = 1, NLON
          UG(I,J) = VORSP(MOD(I-1,30)+1, MOD(J-1,30)+1) * 0.5
     &            + DIVSP(MOD(I-1,30)+1, MOD(J-1,30)+1) * 0.25
 100  CONTINUE
      DO 110 J = 1, NLAT
        DO 110 I = 1, NLON
          VG(I,J) = UG(I,J) * 0.5 + TG(I,J) * 0.125
 110  CONTINUE
      DO 120 J = 2, NLAT
        DO 120 I = 1, NLON
          TG(I,J) = TG(I,J) + TG(I,J-1) * 0.0625
 120  CONTINUE
      END

      SUBROUTINE PHYSIC
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /GRID/ UG(36,34), VG(36,34), TG(36,34)
      DO 200 J = 1, NLAT
        DO 200 I = 1, NLON
          TG(I,J) = TG(I,J) + (UG(I,J) * UG(I,J) + VG(I,J) * VG(I,J)) * 0.01
 200  CONTINUE
      DO 210 J = 1, NLAT
        DO 210 I = 1, NLON
          UG(I,J) = UG(I,J) * 0.995
          VG(I,J) = VG(I,J) * 0.995
 210  CONTINUE
      END

      SUBROUTINE GRTOSP
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /SPECT/ VORSP(34,34), DIVSP(34,34), TEMSP(34,34)
      COMMON /GRID/ UG(36,34), VG(36,34), TG(36,34)
      DO 300 J = 1, NWAVE
        DO 300 I = 1, NWAVE
          VORSP(I,J) = VORSP(I,J) * 0.9 + UG(I,J) * 0.05
 300  CONTINUE
      DO 310 J = 1, NWAVE
        DO 310 I = 1, NWAVE
          DIVSP(I,J) = DIVSP(I,J) * 0.9 + VG(I,J) * 0.05
 310  CONTINUE
      DO 320 J = 1, NWAVE
        DO 320 I = 1, NWAVE
          TEMSP(I,J) = TEMSP(I,J) * 0.95 + TG(I,J) * 0.025
 320  CONTINUE
      END

      SUBROUTINE IMPLIC
      COMMON /SIZES/ NLAT, NLON, NWAVE, NSTEP
      COMMON /SPECT/ VORSP(34,34), DIVSP(34,34), TEMSP(34,34)
      DO 400 J = 2, NWAVE
        DO 400 I = 1, NWAVE
          DIVSP(I,J) = DIVSP(I,J) + DIVSP(I,J-1) * 0.125
 400  CONTINUE
      DO 410 J = 1, NWAVE
        DO 410 I = 1, NWAVE
          VORSP(I,J) = VORSP(I,J) - DIVSP(I,J) * 0.03125
 410  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
