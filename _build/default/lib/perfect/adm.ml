(** ADM -- pseudospectral air-pollution simulation.

    The paper reports no inlining benefit for ADM; here the transport
    phases call the vertical-diffusion solver (a recurrence) and the
    large spectral routines (call chains), so neither inlining flavor
    unlocks anything.  One small helper (DCOPY-style plane copy) is
    conventionally inlined on a slice of the concentration array and
    costs a single outer loop -- ADM's one-loop entry in the #par-loss
    column. *)

let name = "ADM"
let description = "Pseudospectral air pollution simulation"

let source =
  {fort|
      PROGRAM ADM
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      CALL SETUP
      DO 900 ISTEP = 1, NSTEP
        CALL ADVECX
        CALL DIFFUZ
        CALL SETTLE
 900  CONTINUE
      CHK = 0.0
      DO K = 1, NLEV
        DO J = 1, NYA
          DO I = 1, NXA
            CHK = CHK + C(I,J,K)
          ENDDO
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      NXA = 32
      NYA = 32
      NLEV = 6
      NSTEP = 4
      DO K = 1, 6
        DO J = 1, 36
          DO I = 1, 36
            C(I,J,K) = MOD(I + 2*J + 3*K, 11) * 0.125
            CNEW(I,J,K) = 0.0
          ENDDO
        ENDDO
      ENDDO
      DO J = 1, 36
        DO I = 1, 36
          WIND(I,J) = MOD(I * J, 9) * 0.25 - 1.0
        ENDDO
      ENDDO
      END

      SUBROUTINE PLCOPY(A, B)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      DO I = 1, NXA
        A(I) = B(I)
      ENDDO
      END

      SUBROUTINE ADVECX
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      DO 100 J = 1, NYA
        DO 100 I = 2, NXA
          DO 100 K = 1, NLEV
            CNEW(I,J,K) = C(I,J,K) - WIND(I,J) * (C(I,J,K) - C(I-1,J,K)) * 0.1
 100  CONTINUE
      DO 110 K = 1, NLEV
        DO 110 J = 1, NYA
          DO 110 I = 1, NXA
            C(I,J,K) = CNEW(I,J,K)
 110  CONTINUE
      DO 120 K = 1, 2
        CALL PLCOPY(CNEW(1,1,K), CNEW(1,1,K+2))
 120  CONTINUE
      END

      SUBROUTINE VDIFF(I, J)
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      IF (I .LT. 1 .OR. J .LT. 1) THEN
        WRITE(6,*) ' VDIFF: BAD COLUMN ', I, J
        STOP 'VDIFF BAD COLUMN'
      ENDIF
      DO K = 2, NLEV
        C(I,J,K) = C(I,J,K) + (C(I,J,K-1) - C(I,J,K)) * 0.05
      ENDDO
      DO K = NLEV-1, 1, -1
        C(I,J,K) = C(I,J,K) + (C(I,J,K+1) - C(I,J,K)) * 0.05
      ENDDO
      END

      SUBROUTINE DIFFUZ
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      DO 200 J = 1, NYA
        DO 200 I = 1, NXA
          CALL VDIFF(I, J)
 200  CONTINUE
      DO 210 K = 1, NLEV
        DO 210 J = 1, NYA
          DO 210 I = 1, NXA
            CNEW(I,J,K) = CNEW(I,J,K) * 0.5 + C(I,J,K) * 0.25
 210  CONTINUE
      END

      SUBROUTINE SETTLE
      COMMON /SIZES/ NXA, NYA, NLEV, NSTEP
      COMMON /CONC/ C(36,36,6), CNEW(36,36,6), WIND(36,36)
      DO 300 K = 1, NLEV
        DO 300 J = 1, NYA
          DO 300 I = 1, NXA
            C(I,J,K) = C(I,J,K) * 0.999 + CNEW(I,J,K) * 0.0005
 300  CONTINUE
      DO 310 J = 1, NYA
        DO 310 I = 1, NXA
          WIND(I,J) = WIND(I,J) * 0.99
 310  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
