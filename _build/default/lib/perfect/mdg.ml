(** MDG -- molecular dynamics for the simulation of liquid water.

    Phenomena exercised (paper section in parentheses):
    - PCINIT/CORREC/SCALEF predictor-corrector routines whose loops are
      parallel standalone but die under conventional inlining because the
      actual arguments are indirect slices [T(IX(k))] of one big
      coordinate array (II-A.1, Figs. 2-3);
    - INTRAF's bond-geometry workspace arrays get linearized when BNDRY is
      conventionally inlined on column slices, killing the outer loops of
      every nest that writes them (II-A.2);
    - INTERF/POTENG/SHAKEL are opaque compositional force routines (they
      call helpers, keep intermediate results in COMMON temporaries and
      carry an error check), summarized by [unknown] annotations so the
      molecule loops around them parallelize (II-B.1..3, Figs. 6-7);
    - UPDATE/TORQUE are small leaf routines where conventional inlining
      already wins -- the subset of gains conventional inlining shares. *)

let name = "MDG"
let description = "Molecular dynamics for the simulation of liquid water"

let source =
  {fort|
      PROGRAM MDG
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /COORD/ T(6144), IX(16)
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      COMMON /VELS/ VEL(1024), ACC(1024)
      COMMON /ENG/ EP(256), EK(256), TOTE
      CALL SETUP
      DO 500 ISTEP = 1, NSTEP
        CALL PCINIT(T(IX(1)), T(IX(2)), T(IX(3)), 0.5)
        CALL CORREC(T(IX(4)), T(IX(5)), T(IX(6)))
        CALL SCALEF(T(IX(2)), T(IX(5)))
        DO 100 M = 1, NMOL
          CALL INTERF(M)
 100    CONTINUE
        DO 110 M = 1, NMOL
          CALL POTENG(M)
 110    CONTINUE
        DO 120 M = 1, NMOL
          CALL UPDATE(M)
 120    CONTINUE
        DO 130 M = 1, NMOL
          CALL TORQUE(M)
 130    CONTINUE
        DO 140 M = 1, NMOL
          CALL SHAKEL(M)
 140    CONTINUE
        CALL INTRAF
        CALL KINETI
 500  CONTINUE
      S = 0.0
      DO I = 1, NATOMS
        S = S + T(I) + T(1024+I) + VEL(I) + FX(I)
      ENDDO
      S = S + TOTE
      WRITE(6,*) S
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /COORD/ T(6144), IX(16)
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      COMMON /VELS/ VEL(1024), ACC(1024)
      COMMON /ENG/ EP(256), EK(256), TOTE
      NMOL = 128
      NATOMS = 384
      NSTEP = 3
      NORDER = 6
      TOTE = 0.0
      DO I = 1, 16
        IX(I) = MOD(I-1, 6) * 1024 + 1
      ENDDO
      DO I = 1, 6144
        T(I) = MOD(I, 97) * 0.03125
      ENDDO
      DO I = 1, 1024
        FX(I) = MOD(I, 13) * 0.25
        FY(I) = MOD(I, 17) * 0.125
        FZ(I) = MOD(I, 19) * 0.0625
        VEL(I) = MOD(I, 7) * 0.5
        ACC(I) = MOD(I, 5) * 0.25
      ENDDO
      DO N = 1, 256
        DSUMM(N) = N + 1
        EP(N) = 0.0
        EK(N) = 0.0
      ENDDO
      END

      SUBROUTINE PCINIT(X2, Y2, Z2, TSTEP)
      DIMENSION X2(*), Y2(*), Z2(*)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      I = 0
      DO 200 N = 1, NMOL
        DO 200 J = 1, NORDER
          I = I + 1
          X2(I) = FX(I) * TSTEP**2 / 2.0 / DSUMM(N)
          Y2(I) = FY(I) * TSTEP**2 / 2.0 / DSUMM(N)
          Z2(I) = FZ(I) * TSTEP**2 / 2.0 / DSUMM(N)
 200  CONTINUE
      END

      SUBROUTINE CORREC(X2, Y2, Z2)
      DIMENSION X2(*), Y2(*), Z2(*)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /VELS/ VEL(1024), ACC(1024)
      I = 0
      DO 210 N = 1, NMOL
        DO 210 J = 1, NORDER
          I = I + 1
          X2(I) = X2(I) + VEL(I) * 0.1
          Y2(I) = Y2(I) + ACC(I) * 0.01
          Z2(I) = Z2(I) + VEL(I) * ACC(I) * 0.001
 210  CONTINUE
      END

      SUBROUTINE SCALEF(X2, Y2)
      DIMENSION X2(*), Y2(*)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      I = 0
      DO 220 N = 1, NMOL
        DO 220 J = 1, NORDER
          I = I + 1
          X2(I) = X2(I) * 0.998 + FX(I) * 0.002
          Y2(I) = Y2(I) * 0.998 + FY(I) * 0.002
 220  CONTINUE
      END

      SUBROUTINE CSHIFT(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /COORD/ T(6144), IX(16)
      COMMON /TEMPS/ RL(256), GG(256), SML(256)
      DO K = 1, NMOL
        RL(K) = T(3*M-2) - T(3*K-2) + (T(3*M-1) - T(3*K-1)) * 0.5
      ENDDO
      DO K = 1, NMOL
        GG(K) = RL(K) * RL(K) + 0.25
      ENDDO
      END

      SUBROUTINE INTERF(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /COORD/ T(6144), IX(16)
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      COMMON /TEMPS/ RL(256), GG(256), SML(256)
      COMMON /ENG/ EP(256), EK(256), TOTE
      CALL CSHIFT(M)
      FCUM = 0.0
      DO K = 1, NMOL
        FCUM = FCUM + GG(K) / (1.0 + RL(K) * RL(K))
      ENDDO
      IF (FCUM .LT. 0.0) THEN
        WRITE(6,*) ' INTERF: NEGATIVE FORCE SUM AT ', M
        STOP 'INTERF FAILED'
      ENDIF
      DO K = 1, 3
        FX(3*M - 3 + K) = FCUM * 0.5 + K
        FY(3*M - 3 + K) = FCUM * 0.25 - K
        FZ(3*M - 3 + K) = FCUM * 0.125 + K * 0.5
      ENDDO
      EP(M) = FCUM * 0.0625
      END

      SUBROUTINE POTENG(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /TEMPS/ RL(256), GG(256), SML(256)
      COMMON /ENG/ EP(256), EK(256), TOTE
      CALL CSHIFT(M)
      PSUM = 0.0
      DO K = 1, NMOL
        PSUM = PSUM + GG(K) * 0.5 - RL(K) * 0.125
      ENDDO
      EP(M) = EP(M) + PSUM / NMOL
      END

      SUBROUTINE SHAKEL(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /VELS/ VEL(1024), ACC(1024)
      COMMON /TEMPS/ RL(256), GG(256), SML(256)
      CALL CSHIFT(M)
      DO K = 1, NMOL
        SML(K) = GG(K) * 0.0625 + RL(K) * 0.03125
      ENDDO
      CSUM = 0.0
      DO K = 1, NMOL
        CSUM = CSUM + SML(K)
      ENDDO
      IF (CSUM .GT. 1.0E12) THEN
        WRITE(6,*) ' SHAKEL: CONSTRAINT BLOWUP AT ', M
        STOP 'SHAKEL FAILED'
      ENDIF
      DO K = 1, 3
        VEL(3*M - 3 + K) = VEL(3*M - 3 + K) + CSUM / NMOL * 0.001
      ENDDO
      END

      SUBROUTINE UPDATE(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      COMMON /VELS/ VEL(1024), ACC(1024)
      DO K = 1, 3
        VEL(3*M - 3 + K) = VEL(3*M - 3 + K) * 0.9 + FX(3*M - 3 + K) * 0.1
        ACC(3*M - 3 + K) = ACC(3*M - 3 + K) * 0.9 + FY(3*M - 3 + K) * 0.1
      ENDDO
      END

      SUBROUTINE TORQUE(M)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /FORCES/ FX(1024), FY(1024), FZ(1024), DSUMM(256)
      COMMON /VELS/ VEL(1024), ACC(1024)
      DO K = 1, 3
        ACC(3*M - 3 + K) = ACC(3*M - 3 + K) + FZ(3*M - 3 + K) * 0.05
      ENDDO
      END

      SUBROUTINE BNDRY(A, B)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      DO I = 1, NATOMS
        A(I) = A(I) * 0.5 + B(I) * 0.25
      ENDDO
      END

      SUBROUTINE INTRAF
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /BONDS/ RS(512,8), FS(512,8), VM(512,8)
      COMMON /VELS/ VEL(1024), ACC(1024)
      DO 300 J = 1, 8
        DO 300 I = 1, NATOMS
          RS(I,J) = VEL(I) * 0.5 + J
 300  CONTINUE
      DO 310 J = 1, 8
        DO 310 I = 1, NATOMS
          FS(I,J) = RS(I,J) * 0.25 + ACC(I)
 310  CONTINUE
      DO 320 J = 1, 8
        DO 320 I = 1, NATOMS
          VM(I,J) = RS(I,J) + FS(I,J)
 320  CONTINUE
      DO 330 J = 1, 8
        DO 330 I = 1, NATOMS
          RS(I,J) = RS(I,J) + VM(I,J) * 0.125
 330  CONTINUE
      DO 340 J = 1, 8
        DO 340 I = 1, NATOMS
          FS(I,J) = FS(I,J) * 0.75 + VM(I,J) * 0.125
 340  CONTINUE
      DO 350 J = 1, 8
        DO 350 I = 1, NATOMS
          RS(I,J) = RS(I,J) * 0.875 + FS(I,J) * 0.0625
 350  CONTINUE
      DO 360 J = 1, 8
        DO 360 I = 1, NATOMS
          VM(I,J) = VM(I,J) * 0.5 + RS(I,J) * 0.25
 360  CONTINUE
      DO 400 K = 1, 8
        CALL BNDRY(RS(1,K), FS(1,K))
 400  CONTINUE
      DO 405 K = 1, 8
        CALL BNDRY(VM(1,K), FS(1,K))
 405  CONTINUE
      DO 410 I = 1, NATOMS
        VEL(I) = VEL(I) + RS(I,1) * 0.015625 + VM(I,1) * 0.0078125
 410  CONTINUE
      END

      SUBROUTINE KINETI
      COMMON /SIZES/ NMOL, NATOMS, NSTEP, NORDER
      COMMON /VELS/ VEL(1024), ACC(1024)
      COMMON /ENG/ EP(256), EK(256), TOTE
      SUM = 0.0
      DO I = 1, NATOMS
        SUM = SUM + VEL(I) * VEL(I) * 0.5
      ENDDO
      DO M = 1, NMOL
        EK(M) = SUM / NMOL + EP(M)
      ENDDO
      TOTE = TOTE + SUM * 0.001
      END
|fort}

let annotations =
  {annot|
subroutine INTERF(M) {
  RL = unknown(T[3*M], M, NMOL);
  GG = unknown(RL, NMOL);
  FX[3*M-2 : 3*M] = unknown(GG, M);
  FY[3*M-2 : 3*M] = unknown(GG, M);
  FZ[3*M-2 : 3*M] = unknown(GG, M);
  EP[M] = unknown(GG);
}

subroutine POTENG(M) {
  RL = unknown(T[3*M], M, NMOL);
  GG = unknown(RL, NMOL);
  EP[M] = unknown(EP[M], GG, RL);
}

subroutine SHAKEL(M) {
  RL = unknown(T[3*M], M, NMOL);
  GG = unknown(RL, NMOL);
  SML = unknown(GG, RL);
  VEL[3*M-2 : 3*M] = unknown(VEL[3*M-2 : 3*M], SML);
}

subroutine UPDATE(M) {
  do (K = 1:3) {
    VEL[3*M - 3 + K] = unknown(VEL[3*M - 3 + K], FX[3*M - 3 + K]);
    ACC[3*M - 3 + K] = unknown(ACC[3*M - 3 + K], FY[3*M - 3 + K]);
  }
}

subroutine TORQUE(M) {
  do (K = 1:3)
    ACC[3*M - 3 + K] = unknown(ACC[3*M - 3 + K], FZ[3*M - 3 + K]);
}

subroutine BNDRY(A, B) {
  dimension A[NATOMS], B[NATOMS];
  do (I = 1:NATOMS)
    A[I] = unknown(A[I], B[I]);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
