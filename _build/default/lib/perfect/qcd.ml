(** QCD -- quantum chromodynamics (lattice gauge theory).

    Another "no improvement" row: the link-update routines form a deep
    call chain (UPDATE -> STAPLE -> SU3MUL), so conventional inlining's
    leaf-only heuristic never fires, and no annotations are written (the
    paper notes only a subset of subroutines was annotated).  The lattice
    sweeps that do not call subroutines parallelize identically in every
    configuration. *)

let name = "QCD"
let description = "Quantum chromodynamics"

let source =
  {fort|
      PROGRAM QCD
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      COMMON /RAND/ ISEED
      CALL SETUP
      DO 900 ISW = 1, NSWEEP
        DO 100 MU = 1, NDIR
          CALL UPDATE(MU)
 100    CONTINUE
        CALL MEASUR
 900  CONTINUE
      CHK = 0.0
      DO I = 1, NSITE
        CHK = CHK + ACT(I) + U(I,1,1) * 0.25
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      COMMON /RAND/ ISEED
      NSITE = 240
      NDIR = 4
      NSWEEP = 4
      ISEED = 12345
      DO K = 1, 2
        DO MU = 1, 4
          DO I = 1, 256
            U(I,MU,K) = MOD(I + 7*MU + 3*K, 15) * 0.125 + 0.0625
          ENDDO
        ENDDO
      ENDDO
      DO I = 1, 256
        ACT(I) = 0.0
        STAP(I,1) = 0.0
        STAP(I,2) = 0.0
      ENDDO
      END

      SUBROUTINE SU3MUL(I, MU)
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      STAP(I,1) = U(I,MU,1) * U(MOD(I,NSITE)+1,MU,1)
     &          - U(I,MU,2) * U(MOD(I,NSITE)+1,MU,2)
      STAP(I,2) = U(I,MU,1) * U(MOD(I,NSITE)+1,MU,2)
     &          + U(I,MU,2) * U(MOD(I,NSITE)+1,MU,1)
      U(I,MU,2) = U(I,MU,2) * 0.9999 + U(MOD(I,NSITE)+1,MU,2) * 0.0001
      END

      SUBROUTINE STAPLE(MU)
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      DO I = 1, NSITE
        CALL SU3MUL(I, MU)
      ENDDO
      END

      SUBROUTINE UPDATE(MU)
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      COMMON /RAND/ ISEED
      CALL STAPLE(MU)
      DO 200 I = 1, NSITE
        U(I,MU,1) = U(I,MU,1) * 0.95 + STAP(I,1) * 0.05
        U(I,MU,2) = U(I,MU,2) * 0.95 + STAP(I,2) * 0.05
 200  CONTINUE
      ISEED = MOD(ISEED * 1103 + 12345, 65536)
      SCALE = ISEED * 0.0000152587890625
      DO 210 I = 1, NSITE
        U(I,MU,1) = U(I,MU,1) + SCALE * 0.001
 210  CONTINUE
      END

      SUBROUTINE MEASUR
      COMMON /SIZES/ NSITE, NDIR, NSWEEP
      COMMON /GAUGE/ U(256,4,2), STAP(256,2), ACT(256)
      PLAQ = 0.0
      DO 300 I = 1, NSITE
        PLAQ = PLAQ + U(I,1,1) * U(I,2,1) - U(I,1,2) * U(I,2,2)
 300  CONTINUE
      DO 310 I = 1, NSITE
        ACT(I) = ACT(I) * 0.9 + PLAQ / NSITE * 0.1
 310  CONTINUE
      DO 320 MU = 1, 4
        DO 320 I = 1, NSITE
          STAP(I,1) = STAP(I,1) * 0.5
          STAP(I,2) = STAP(I,2) * 0.5
 320  CONTINUE
      END
|fort}

let annotations = ""
let bench : Bench_def.t = { name; description; source; annotations }
