(** TRFD -- kernel simulating a two-electron integral transformation.

    The paper's clean *conventional-inlining-wins* case: the
    transformation is phrased as index-passing leaf routines (one matrix
    row / integral block per call), so conventional inlining exposes the
    surrounding block loops with no reshaping at all; annotations cover
    the same routines, so both inlining flavors find the same extra
    loops and nothing is ever lost. *)

let name = "TRFD"
let description = "Kernel simulating a two-electron integral transformation"

let source =
  {fort|
      PROGRAM TRFD
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      CALL SETUP
      DO 900 IPASS = 1, NPASS
        DO 100 IP = 1, NPAIR
          CALL TRF1(IP)
 100    CONTINUE
        DO 110 IP = 1, NPAIR
          CALL TRF2(IP)
 110    CONTINUE
        DO 120 IR = 1, NORB
          CALL TRF3(IR)
 120    CONTINUE
        DO 130 IR = 1, NORB
          CALL TRF4(IR)
 130    CONTINUE
 900  CONTINUE
      CHK = 0.0
      DO J = 1, NPAIR
        DO I = 1, NORB
          CHK = CHK + XRS(I,J) + XKL(I,J) * 0.5
        ENDDO
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      NORB = 40
      NPAIR = 48
      NPASS = 4
      DO J = 1, 64
        DO I = 1, 128
          XIJ(I,J) = MOD(I + 2*J, 17) * 0.0625
          XKL(I,J) = MOD(3*I + J, 13) * 0.125
          XRS(I,J) = 0.0
        ENDDO
      ENDDO
      DO J = 1, 64
        DO I = 1, 64
          V(I,J) = MOD(I * J, 11) * 0.25
        ENDDO
      ENDDO
      END

      SUBROUTINE TRF1(IP)
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      DO I = 1, NORB
        XKL(I,IP) = XIJ(I,IP) * V(I,1) + XKL(I,IP) * 0.5
      ENDDO
      END

      SUBROUTINE TRF2(IP)
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      DO I = 1, NORB
        XRS(I,IP) = XRS(I,IP) + XKL(I,IP) * V(1,I) * 0.25
      ENDDO
      END

      SUBROUTINE TRF3(IR)
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      DO J = 1, NPAIR
        XIJ(IR,J) = XIJ(IR,J) * 0.9 + XRS(IR,J) * 0.1
      ENDDO
      END

      SUBROUTINE TRF4(IR)
      COMMON /SIZES/ NORB, NPAIR, NPASS
      COMMON /INTS/ XIJ(128,64), XKL(128,64), XRS(128,64), V(64,64)
      TSUM = 0.0
      DO J = 1, NPAIR
        TSUM = TSUM + XIJ(IR,J)
      ENDDO
      DO J = 1, NPAIR
        XRS(IR,J) = XRS(IR,J) + TSUM / NPAIR * 0.01
      ENDDO
      END
|fort}

let annotations =
  {annot|
subroutine TRF1(IP) {
  do (I = 1:NORB)
    XKL[I,IP] = unknown(XIJ[I,IP], XKL[I,IP], V[I,1]);
}

subroutine TRF2(IP) {
  do (I = 1:NORB)
    XRS[I,IP] = unknown(XRS[I,IP], XKL[I,IP], V[1,I]);
}

subroutine TRF3(IR) {
  do (J = 1:NPAIR)
    XIJ[IR,J] = unknown(XIJ[IR,J], XRS[IR,J]);
}

subroutine TRF4(IR) {
  TSUM = unknown(XIJ[IR,1], NPAIR);
  do (J = 1:NPAIR)
    XRS[IR,J] = unknown(XRS[IR,J], TSUM);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
