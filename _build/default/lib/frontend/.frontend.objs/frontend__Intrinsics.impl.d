lib/frontend/intrinsics.pp.ml: List String
