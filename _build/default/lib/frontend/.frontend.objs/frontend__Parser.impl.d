lib/frontend/parser.pp.ml: Array Ast Diag Hashtbl Lexer List Option Printf String
