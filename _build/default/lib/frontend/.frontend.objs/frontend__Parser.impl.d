lib/frontend/parser.pp.ml: Array Ast Hashtbl Lexer List Printf String
