lib/frontend/resolve.pp.ml: Ast Diag Intrinsics List Parser
