lib/frontend/resolve.pp.ml: Ast Intrinsics List Parser
