lib/frontend/pretty.pp.ml: Ast Buffer List Printf String
