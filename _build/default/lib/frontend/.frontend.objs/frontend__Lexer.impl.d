lib/frontend/lexer.pp.ml: Buffer Diag List Option Ppx_deriving_runtime Printf String
