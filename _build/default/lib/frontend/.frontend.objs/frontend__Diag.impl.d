lib/frontend/diag.pp.ml: List Printexc Printf String
