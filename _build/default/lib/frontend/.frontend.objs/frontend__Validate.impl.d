lib/frontend/validate.pp.ml: Ast Format Hashtbl Intrinsics List Option Printf String
