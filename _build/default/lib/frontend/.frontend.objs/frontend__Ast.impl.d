lib/frontend/ast.pp.ml: List Option Ppx_deriving_runtime Printf String
