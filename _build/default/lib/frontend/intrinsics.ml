(** Fortran intrinsic functions recognized by the frontend and runtime. *)

let table =
  [
    "ABS"; "IABS"; "DABS"; "MAX"; "MAX0"; "AMAX1"; "DMAX1"; "MIN"; "MIN0";
    "AMIN1"; "DMIN1"; "MOD"; "DMOD"; "SQRT"; "DSQRT"; "SIN"; "DSIN"; "COS";
    "DCOS"; "TAN"; "EXP"; "DEXP"; "LOG"; "DLOG"; "ALOG"; "INT"; "NINT";
    "DBLE"; "REAL"; "FLOAT"; "SIGN"; "ISIGN"; "ATAN"; "DATAN"; "ATAN2";
  ]

let is_intrinsic name = List.mem (String.uppercase_ascii name) table

(** Intrinsics whose result is uniquely determined by their arguments and
    that are safe to reorder (all of ours: no side effects). *)
let is_pure = is_intrinsic
