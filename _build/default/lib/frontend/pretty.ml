(** Pretty-printer: emits the AST back as Fortran source, including
    [!$OMP] directives for parallelized loops and [!*annot*] tag comments
    around annotation-inlined regions (mirroring Fig. 17/18 of the paper). *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> ".EQ."
  | Ne -> ".NE."
  | Lt -> ".LT."
  | Le -> ".LE."
  | Gt -> ".GT."
  | Ge -> ".GE."
  | And -> ".AND."
  | Or -> ".OR."

let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5
  | Pow -> 7

let rec expr_str ?(p = 0) e =
  let s, my_p =
    match e with
    | Int_const n -> ((if n < 0 then Printf.sprintf "(%d)" n else string_of_int n), 10)
    | Real_const r ->
        let s = Printf.sprintf "%.12g" r in
        let s =
          if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
          then s
          else s ^ ".0"
        in
        (s, 10)
    | Str_const s -> (Printf.sprintf "'%s'" s, 10)
    | Logical_const true -> (".TRUE.", 10)
    | Logical_const false -> (".FALSE.", 10)
    | Var v -> (v, 10)
    | Array_ref (a, args) | Func_call (a, args) ->
        (Printf.sprintf "%s(%s)" a (args_str args), 10)
    | Section (a, bounds) ->
        ( Printf.sprintf "%s(%s)" a
            (String.concat ", " (List.map bound_str bounds)),
          10 )
    | Unop (Neg, a) -> (Printf.sprintf "-%s" (expr_str ~p:6 a), 6)
    | Unop (Not, a) -> (Printf.sprintf ".NOT. %s" (expr_str ~p:3 a), 3)
    | Binop (op, a, b) ->
        let mp = prec op in
        (* [**] is right-associative: the LEFT operand needs the tighter
           context; every other binop is left-associative *)
        let pl, pr = if op = Pow then (mp + 1, mp) else (mp, mp + 1) in
        ( Printf.sprintf "%s %s %s"
            (expr_str ~p:pl a) (binop_str op)
            (expr_str ~p:pr b),
          mp )
  in
  if my_p < p then "(" ^ s ^ ")" else s

and args_str args = String.concat ", " (List.map (expr_str ~p:0) args)

and bound_str (lo, hi, step) =
  match (lo, hi, step) with
  | Some a, Some b, None when equal_expr a b -> expr_str a
  | _ ->
      let f = function Some e -> expr_str e | None -> "" in
      let base = Printf.sprintf "%s:%s" (f lo) (f hi) in
      (match step with Some s -> base ^ ":" ^ expr_str s | None -> base)

let lvalue_str = function
  | Lvar v -> v
  | Larray (a, args) -> Printf.sprintf "%s(%s)" a (args_str args)
  | Lsection (a, bounds) ->
      Printf.sprintf "%s(%s)" a
        (String.concat ", " (List.map bound_str bounds))

let dtype_str = function
  | Integer -> "INTEGER"
  | Real -> "REAL"
  | Double -> "DOUBLE PRECISION"
  | Logical -> "LOGICAL"
  | Character -> "CHARACTER"

let dim_str = function Dim_star -> "*" | Dim_expr e -> expr_str e

let omp_clause_str omp =
  let buf = Buffer.create 32 in
  if omp.omp_private <> [] then
    Buffer.add_string buf
      (Printf.sprintf " PRIVATE(%s)" (String.concat ", " omp.omp_private));
  List.iter
    (fun (op, v) ->
      let op_s =
        match op with
        | Rsum -> "+"
        | Rprod -> "*"
        | Rmax -> "MAX"
        | Rmin -> "MIN"
      in
      Buffer.add_string buf (Printf.sprintf " REDUCTION(%s:%s)" op_s v))
    omp.omp_reductions;
  Buffer.contents buf

let rec emit_stmt buf indent s =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match s.node with
  | Assign (lv, e) -> line "%s = %s" (lvalue_str lv) (expr_str e)
  | Call (n, []) -> line "CALL %s" n
  | Call (n, args) -> line "CALL %s(%s)" n (args_str args)
  | Return -> line "RETURN"
  | Stop None -> line "STOP"
  | Stop (Some m) -> line "STOP '%s'" m
  | Print [] -> line "WRITE(6,*)"
  | Print es -> line "WRITE(6,*) %s" (args_str es)
  | Continue -> line "CONTINUE"
  | If (c, t, []) -> begin
      match t with
      | [ { node = Assign _ | Call _ | Return | Stop _ | Print _ | Continue; _ } as single ]
        ->
          let sub = Buffer.create 64 in
          emit_stmt sub 0 single;
          let text = String.trim (Buffer.contents sub) in
          line "IF (%s) %s" (expr_str c) text
      | _ ->
          line "IF (%s) THEN" (expr_str c);
          List.iter (emit_stmt buf (indent + 2)) t;
          line "ENDIF"
    end
  | If (c, t, e) ->
      line "IF (%s) THEN" (expr_str c);
      List.iter (emit_stmt buf (indent + 2)) t;
      line "ELSE";
      List.iter (emit_stmt buf (indent + 2)) e;
      line "ENDIF"
  | Do_loop l ->
      (match l.parallel with
      | Some omp ->
          line "!$OMP PARALLEL DO DEFAULT(SHARED)%s" (omp_clause_str omp)
      | None -> ());
      line "DO %s = %s, %s%s" l.index (expr_str l.lo) (expr_str l.hi)
        (match l.step with
        | Int_const 1 -> ""
        | s -> ", " ^ expr_str s);
      List.iter (emit_stmt buf (indent + 2)) l.body;
      line "ENDDO";
      (match l.parallel with
      | Some _ -> line "!$OMP END PARALLEL DO"
      | None -> ())
  | Tagged (tag, body) ->
      line "!*annot* BEGIN %d inline %s (%s)" tag.tag_id tag.tag_callee
        (args_str tag.tag_actuals);
      List.iter (emit_stmt buf (indent + 2)) body;
      line "!*annot* END %d" tag.tag_id

let emit_unit buf (u : program_unit) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match u.u_kind with
  | Main -> line "PROGRAM %s" u.u_name
  | Subroutine ->
      line "SUBROUTINE %s(%s)" u.u_name (String.concat ", " u.u_params)
  | Function ty ->
      line "%s FUNCTION %s(%s)" (dtype_str ty) u.u_name
        (String.concat ", " u.u_params));
  List.iter
    (fun d ->
      if d.d_dims = [] then line "  %s %s" (dtype_str d.d_type) d.d_name
      else
        line "  %s %s(%s)" (dtype_str d.d_type) d.d_name
          (String.concat ", " (List.map dim_str d.d_dims)))
    u.u_decls;
  List.iter
    (fun (blk, members) ->
      line "  COMMON /%s/ %s" blk (String.concat ", " members))
    u.u_commons;
  List.iter
    (fun (n, e) -> line "  PARAMETER (%s = %s)" n (expr_str e))
    u.u_params_const;
  List.iter (emit_stmt buf 2) u.u_body;
  line "END";
  line ""

(** Render a whole program back to Fortran source. *)
let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  List.iter (emit_unit buf) p.p_units;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 256 in
  emit_stmt buf 0 s;
  Buffer.contents buf

(** Number of non-comment source lines -- the paper's code-size metric. *)
let code_size (p : program) =
  let src = program_to_string p in
  List.length
    (List.filter
       (fun l ->
         let t = String.trim l in
         t <> "" && not (String.length t >= 1 && t.[0] = '!'))
       (String.split_on_char '\n' src))

(** Code size including directive lines (for reporting both). *)
let total_lines (p : program) =
  let src = program_to_string p in
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' src))
