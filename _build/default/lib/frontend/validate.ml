(** Static sanity checks applied after parsing/resolution:
    - every CALL targets a defined SUBROUTINE with matching arity;
    - every non-intrinsic Func_call targets a defined FUNCTION with
      matching arity;
    - COMMON blocks have a consistent member list across units (this subset
      requires identical names and shapes, which our benchmarks satisfy);
    - array references use the declared rank (or rank 1 for assumed-size). *)

open Ast

type issue = { unit_name : string; message : string }

let pp_issue fmt i = Format.fprintf fmt "[%s] %s" i.unit_name i.message

let check_calls program u =
  let issues = ref [] in
  let add fmt =
    Printf.ksprintf
      (fun m -> issues := { unit_name = u.u_name; message = m } :: !issues)
      fmt
  in
  let check_target kind name nargs =
    match find_unit program name with
    | None -> add "%s %s is not defined" kind name
    | Some callee ->
        (match (kind, callee.u_kind) with
        | "CALL", Subroutine | "function", Function _ -> ()
        | _ -> add "%s %s resolves to the wrong kind of unit" kind name);
        let np = List.length callee.u_params in
        if np <> nargs then
          add "%s %s expects %d arguments, got %d" kind name np nargs
  in
  let rec walk_expr e =
    (match e with
    | Func_call (name, args) when not (Intrinsics.is_intrinsic name) ->
        check_target "function" name (List.length args)
    | Array_ref (name, args) -> (
        match find_decl u name with
        | Some d when d.d_dims <> [] ->
            if List.length d.d_dims <> List.length args then
              add "array %s has rank %d but is referenced with %d subscripts"
                name (List.length d.d_dims) (List.length args)
        | Some _ | None ->
            if not (List.mem name u.u_params) then
              add "reference %s(...) is neither a declared array nor a function"
                name)
    | _ -> ());
    match e with
    | Array_ref (_, args) | Func_call (_, args) -> List.iter walk_expr args
    | Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Unop (_, a) -> walk_expr a
    | Section (_, bounds) ->
        List.iter
          (fun (a, b, c) ->
            List.iter (Option.iter walk_expr) [ a; b; c ])
          bounds
    | _ -> ()
  in
  let walk_lvalue = function
    | Lvar _ -> ()
    | Larray (_, idx) -> List.iter walk_expr idx
    | Lsection (_, bounds) ->
        List.iter
          (fun (a, b, c) -> List.iter (Option.iter walk_expr) [ a; b; c ])
          bounds
  in
  ignore
    (fold_stmts
       (fun () s ->
         match s.node with
         | Call (name, args) ->
             check_target "CALL" name (List.length args);
             List.iter walk_expr args
         | Assign (lv, e) ->
             walk_lvalue lv;
             walk_expr e
         | Do_loop l ->
             walk_expr l.lo;
             walk_expr l.hi;
             walk_expr l.step
         | If (c, _, _) -> walk_expr c
         | Print es -> List.iter walk_expr es
         | Return | Stop _ | Continue | Tagged _ -> ())
       () u.u_body);
  !issues

let check_commons program =
  let blocks : (string, string * string list) Hashtbl.t = Hashtbl.create 8 in
  let issues = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun (blk, members) ->
          match Hashtbl.find_opt blocks blk with
          | None -> Hashtbl.add blocks blk (u.u_name, members)
          | Some (first_unit, members0) ->
              if members0 <> members then
                issues :=
                  {
                    unit_name = u.u_name;
                    message =
                      Printf.sprintf
                        "COMMON /%s/ member list differs from unit %s" blk
                        first_unit;
                  }
                  :: !issues)
        u.u_commons)
    program.p_units;
  !issues

(** All issues found in a program; empty means the program is well-formed. *)
let check (program : program) : issue list =
  check_commons program
  @ List.concat_map (check_calls program) program.p_units

let check_exn program =
  match check program with
  | [] -> ()
  | issues ->
      let msg =
        String.concat "; "
          (List.map
             (fun i -> Printf.sprintf "[%s] %s" i.unit_name i.message)
             issues)
      in
      invalid_arg ("Validate.check_exn: " ^ msg)
