      PROGRAM MAIN
      DOUBLE PRECISION PP(64,64,15), PHIT(64,64), TM1(64,64)
      COMMON /SIZES/ NP, NE
      COMMON /MATS/ PP, PHIT, TM1
      NP = 64
      NE = 4
      DO K = 1, 15
        DO J = 1, 64
          DO I = 1, 64
            PP(I,J,K) = I + 2*J + 3*K
          ENDDO
        ENDDO
      ENDDO
      DO J = 1, 64
        DO I = 1, 64
          PHIT(I,J) = I - J
        ENDDO
      ENDDO
      DO KS = 1, 15
        IF (KS .GT. 1) THEN
          CALL MATMLT(PP(1,1,KS-1), PHIT, TM1, NE, NE, NE)
        ENDIF
      ENDDO
      S = 0.0
      DO J = 1, 4
        DO I = 1, 4
          S = S + TM1(I,J)*I*J
        ENDDO
      ENDDO
      WRITE(6,*) S
      END

      SUBROUTINE MATMLT(M1, M2, M3, L, M, N)
      DOUBLE PRECISION M1(*), M2(*), M3(*)
      DO 10 JN = 1, N
        DO 10 JL = 1, L
          M3(JL + L*(JN-1)) = 0.0
 10   CONTINUE
      DO 20 JN = 1, N
        DO 20 JM = 1, M
          DO 20 JL = 1, L
            M3(JL + L*(JN-1)) = M3(JL + L*(JN-1))
     &        + M1(JL + L*(JM-1)) * M2(JM + M*(JN-1))
 20   CONTINUE
      RETURN
      END
