(* parinline -- command-line driver for the enhanced-inlining pipeline.

   Usage:
     parinline compile  FILE.f [--annot FILE.annot] [--mode MODE] [-o OUT]
     parinline report   FILE.f [--annot FILE.annot]
     parinline run      FILE.f [--annot FILE.annot] [--mode MODE] [--threads N]
     parinline check    FILE.f [--annot FILE.annot] [--mode MODE] [--threads N]

   MODE is one of: none | conventional | annotation (default: annotation).

   check optimizes the program, replays it serially under the access
   tracer to detect cross-iteration races not excused by the emitted
   PRIVATE/REDUCTION clauses, then runs it in parallel and compares the
   final observable state against the serial run (exit 1 on any race or
   divergence).

   Robustness flags (all commands taking FILE.f):
     --keep-going     salvage what parses/optimizes, accumulating diagnostics
     --max-errors N   stop after N errors in --keep-going mode (default 20)
     --fuel N         (run) trap execution after ~N loop iterations + calls

   Profiling (compile, run):
     --profile        dump the per-pass timing breakdown and analysis
                      counters (same schema as the bench driver) on stderr

   Exit codes: 0 = clean, 1 = diagnostics emitted but work salvaged,
   2 = fatal (nothing usable produced). *)

open Cmdliner

let fail_cli fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("parinline: " ^ s);
      exit 2)
    fmt

let read_file path =
  if not (Sys.file_exists path) then fail_cli "no such file: %s" path;
  match open_in_bin path with
  | exception Sys_error m -> fail_cli "%s" m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let mode_of_string = function
  | "none" | "no-inlining" -> Core.Pipeline.No_inlining
  | "conventional" -> Core.Pipeline.Conventional
  | "annotation" | "annotation-based" -> Core.Pipeline.Annotation_based
  | m -> fail_cli "unknown mode %S (expected none | conventional | annotation)" m

let load source_file annot_file =
  let source = read_file source_file in
  let annot_source =
    match annot_file with Some f -> read_file f | None -> ""
  in
  (source, annot_source)

let print_diags ds =
  List.iter (fun d -> prerr_endline (Core.Diag.render d)) ds

(* Exit per the contract once all output is flushed: 1 when any error
   diagnostic was salvaged, 0 otherwise (warnings alone stay 0). *)
let finish_with ds = if Core.Diag.errors_in ds > 0 then exit 1

(* Run [f ()] under the strict pipeline, converting the first fault into a
   rendered diagnostic and exit 2. *)
let strict f =
  match f () with
  | r -> r
  | exception Core.Diag.Fatal d ->
      prerr_endline (Core.Diag.render d);
      exit 2
  | exception Core.Annot_parser.Annot_parse_error m ->
      fail_cli "annotation file rejected: %s" m

(* Run [f ()] under the salvaging pipeline; the error cap aborts. *)
let robust f =
  match f () with
  | r -> r
  | exception Core.Diag.Error_limit n ->
      fail_cli "error limit (%d) reached; giving up" n

(* --profile support: build a profile when asked, render it on stderr
   once the work is done. *)
let make_prof profile = if profile then Some (Core.Prof.create ()) else None

let dump_prof = function
  | None -> ()
  | Some p -> prerr_string (Core.Prof.render p)

let compile_run source_file annot_file mode out keep_going max_errors profile =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  let prof = make_prof profile in
  let r =
    if keep_going then
      robust (fun () ->
          Core.Pipeline.run_source_robust ?prof ~max_errors ~mode
            ~annot_source source)
    else
      strict (fun () ->
          Core.Pipeline.run_source ?prof ~mode ~annot_source source)
  in
  let text = Frontend.Pretty.program_to_string r.res_program in
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
  | None -> print_string text);
  print_diags r.res_diags;
  Printf.eprintf "parallel loops: %d, code size: %d lines%s\n"
    (List.length r.res_marked) r.res_code_size
    (match Core.Diag.summary r.res_diags with
    | "" -> ""
    | s -> " (" ^ s ^ ")");
  dump_prof prof;
  finish_with r.res_diags

let report_run source_file annot_file keep_going max_errors =
  let source, annot_source = load source_file annot_file in
  (* parse once so loop ids are comparable across configurations *)
  let program, annots, parse_diags =
    if keep_going then
      robust (fun () ->
          let p, ds = Frontend.Resolve.parse_robust ~max_errors source in
          let annots, ads =
            if String.trim annot_source = "" then ([], [])
            else
              match Core.Annot_parser.parse_annotations annot_source with
              | a -> (a, [])
              | exception Core.Annot_parser.Annot_parse_error m ->
                  ( [],
                    [
                      Core.Diag.make Core.Diag.Annot
                        ("annotation file rejected ("
                        ^ m
                        ^ "); continuing without annotations");
                    ] )
          in
          (p, annots, ds @ ads))
    else
      strict (fun () ->
          let p = Frontend.Resolve.parse source in
          let annots =
            if String.trim annot_source = "" then []
            else Core.Annot_parser.parse_annotations annot_source
          in
          (p, annots, []))
  in
  let run_mode mode =
    if keep_going then Core.Pipeline.run_robust ~annots ~mode program
    else strict (fun () -> Core.Pipeline.run ~annots ~mode program)
  in
  let all_diags = ref parse_diags in
  let base = run_mode Core.Pipeline.No_inlining in
  List.iter
    (fun mode ->
      let r = if mode = Core.Pipeline.No_inlining then base else run_mode mode in
      all_diags := !all_diags @ r.res_diags;
      let par, loss, extra = Core.Pipeline.table2_counts ~baseline:base r in
      Printf.printf
        "%-18s #par-loops=%3d  #par-loss=%3d  #par-extra=%3d  size=%5d%s\n"
        (Core.Pipeline.mode_name mode) par loss extra r.res_code_size
        (match Core.Diag.summary r.res_diags with
        | "" -> ""
        | s -> "  [" ^ s ^ "]")
      ;
      List.iter
        (fun (rep : Parallelizer.Parallelize.loop_report) ->
          Printf.printf "  [%s] loop %d (DO %s): %s%s\n" rep.rep_unit
            rep.rep_loop_id rep.rep_index
            (if rep.rep_marked then "PARALLEL"
             else if rep.rep_safe then "safe (not profitable)"
             else "sequential: " ^ rep.rep_reason)
            (if rep.rep_private <> [] then
               " private(" ^ String.concat "," rep.rep_private ^ ")"
             else ""))
        r.res_reports)
    [ Core.Pipeline.No_inlining; Core.Pipeline.Conventional;
      Core.Pipeline.Annotation_based ];
  print_diags parse_diags;
  finish_with !all_diags

let exec_run source_file annot_file mode threads keep_going max_errors fuel
    profile =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  let prof = make_prof profile in
  let r =
    if keep_going then
      robust (fun () ->
          Core.Pipeline.run_source_robust ?prof ~max_errors ~mode
            ~annot_source source)
    else
      strict (fun () ->
          Core.Pipeline.run_source ?prof ~mode ~annot_source source)
  in
  print_diags r.res_diags;
  let fuel = if fuel <= 0 then None else Some fuel in
  let t0 = Unix.gettimeofday () in
  match
    Core.Prof.with_opt prof (fun () ->
        Core.Prof.time "execute" (fun () ->
            Runtime.Interp.run_program ~threads ?fuel r.res_program))
  with
  | output ->
      let dt = Unix.gettimeofday () -. t0 in
      print_string output;
      Printf.eprintf "elapsed: %.3fs (threads=%d)\n" dt threads;
      dump_prof prof;
      finish_with r.res_diags
  | exception Runtime.Interp.Trap d ->
      print_diags (r.res_diags @ [ d ]);
      dump_prof prof;
      exit 1
  | exception Runtime.Value.Runtime_error m ->
      prerr_endline (Core.Diag.render (Core.Diag.make Core.Diag.Exec m));
      exit 2

let check_run source_file annot_file mode threads keep_going max_errors fuel
    profile =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  let prof = make_prof profile in
  let r =
    if keep_going then
      robust (fun () ->
          Core.Pipeline.run_source_robust ?prof ~max_errors ~mode
            ~annot_source source)
    else
      strict (fun () ->
          Core.Pipeline.run_source ?prof ~mode ~annot_source source)
  in
  print_diags r.res_diags;
  let fuel = if fuel <= 0 then None else Some fuel in
  let v =
    Core.Prof.with_opt prof (fun () ->
        Core.Prof.time "validate" (fun () ->
            Checker.Oracle.validate ~threads ?fuel r.res_program))
  in
  print_diags v.Checker.Oracle.v_diags;
  Printf.eprintf
    "check (%s, threads=%d): %s — %d directive loop(s), %d iterations \
     traced, %d conflict(s) (%d excused)\n"
    (Core.Pipeline.mode_name mode)
    threads
    (Checker.Oracle.verdict_summary v)
    (List.length r.res_marked)
    v.Checker.Oracle.v_iterations
    (v.Checker.Oracle.v_unexcused + v.Checker.Oracle.v_excused)
    v.Checker.Oracle.v_excused;
  dump_prof prof;
  if not v.Checker.Oracle.v_ok then exit 1;
  finish_with r.res_diags

(* ---- cmdliner plumbing ---- *)

(* positional FILE argument as a plain string: existence is checked by
   [read_file] so the missing-file path owns the exit-2 contract instead
   of cmdliner's generic 124 *)
let source_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.f")

let annot_arg =
  Arg.(value & opt (some string) None & info [ "annot" ] ~docv:"FILE.annot")

let mode_arg =
  Arg.(value & opt string "annotation" & info [ "mode" ] ~docv:"MODE")

let out_arg = Arg.(value & opt (some string) None & info [ "o"; "output" ])
let threads_arg = Arg.(value & opt int 4 & info [ "threads" ])

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:"Salvage what parses and optimizes, accumulating diagnostics.")

let max_errors_arg =
  Arg.(
    value
    & opt int Core.Diag.default_max_errors
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Give up after $(docv) errors in --keep-going mode.")

let fuel_arg =
  Arg.(
    value & opt int 0
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Trap execution after roughly $(docv) loop iterations plus calls \
           (0 = unlimited).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Dump the per-pass timing breakdown and analysis counters on \
           stderr (the bench driver's schema).")

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Optimize a program and print the result")
    Term.(
      const compile_run $ source_arg $ annot_arg $ mode_arg $ out_arg
      $ keep_going_arg $ max_errors_arg $ profile_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Compare the three inlining configurations")
    Term.(
      const report_run $ source_arg $ annot_arg $ keep_going_arg
      $ max_errors_arg)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Optimize then execute a program")
    Term.(
      const exec_run $ source_arg $ annot_arg $ mode_arg $ threads_arg
      $ keep_going_arg $ max_errors_arg $ fuel_arg $ profile_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate the emitted PARALLEL DO directives: clause-aware race \
          detection over a traced serial replay, then a serial/parallel \
          differential run")
    Term.(
      const check_run $ source_arg $ annot_arg $ mode_arg $ threads_arg
      $ keep_going_arg $ max_errors_arg $ fuel_arg $ profile_arg)

let bench_run name threads =
  match Perfect.Suite.find name with
  | None -> fail_cli "unknown benchmark %s" name
  | Some b -> (
      match
        let row = Perfect.Experiment.table2_row b in
        Printf.printf "%s: %s\n" b.name b.description;
        let show label (c : Perfect.Experiment.mode_cells) =
          Printf.printf "  %-16s par=%3d loss=%3d extra=%3d size=%5d%s\n"
            label c.m_par c.m_loss c.m_extra c.m_size
            (match Core.Diag.summary c.m_diags with
            | "" -> ""
            | s -> "  [" ^ s ^ "]")
        in
        show "no-inlining" row.t2_no_inline;
        show "conventional" row.t2_conventional;
        show "annotation" row.t2_annotation;
        let f = Perfect.Experiment.fig20_row ~threads b in
        Printf.printf
          "  fig20 (threads=%d): seq=%.3fs  speedups: none=%.2f conv=%.2f \
           annot=%.2f\n"
          threads f.f_seq f.f_no_inline f.f_conventional f.f_annotation
      with
      | () -> ()
      | exception Core.Diag.Fatal d ->
          prerr_endline (Core.Diag.render d);
          exit 2)

let bench_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let bench_cmd =
  Cmd.v (Cmd.info "bench" ~doc:"Run one PERFECT benchmark's experiments")
    Term.(const bench_run $ bench_name_arg $ threads_arg)

let () =
  let info = Cmd.info "parinline" ~doc:"Annotation-based inlining for interprocedural parallelization" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; report_cmd; run_cmd; check_cmd; bench_cmd ]))
