(* parinline -- command-line driver for the enhanced-inlining pipeline.

   Usage:
     parinline compile  FILE.f [--annot FILE.annot] [--mode MODE] [-o OUT]
     parinline report   FILE.f [--annot FILE.annot]
     parinline explain  FILE.f [--annot FILE.annot] [--mode MODE]
                               [--loop ID] [--json]
     parinline run      FILE.f [--annot FILE.annot] [--mode MODE] [--threads N]
     parinline check    FILE.f [--annot FILE.annot] [--mode MODE] [--threads N]
     parinline plan     FILE.f [--annot FILE.annot] [--growth-budget F]
                               [--max-rounds N] [--json]
     parinline serve    [--socket PATH] [--cache-dir DIR] [--jobs N]
     parinline client   --socket PATH [--op OP] [FILE.f] [--annot FILE.annot]
                               [--mode MODE]

   MODE is one of: none | conventional | annotation | demand
   (default: annotation).  demand runs the verdict-guided planner: only
   the callees whose opaque-call blockers actually serialize a loop are
   inlined, one fixpoint round at a time, until nothing more resolves
   or the --growth-budget (x the original statement count) is spent.

   explain prints the structured verdict of every analyzed loop — stable
   identity (unit, nesting path, source line), outcome, clauses, and the
   complete blocker list for serial loops; --json round-trips.

   plan prints the planner's decision trace without emitting code: per
   round, the callees inlined (and by which method), the callees
   refused (and why), and the loops each round's inlining unlocked;
   --json emits the machine-readable plan document instead.

   Tracing (compile, explain, run, check): --trace-out FILE records
   begin/end spans of every instrumented region and writes Chrome
   trace_event JSON for chrome://tracing / Perfetto.

   check optimizes the program, replays it serially under the access
   tracer to detect cross-iteration races not excused by the emitted
   PRIVATE/REDUCTION clauses, then runs it in parallel and compares the
   final observable state against the serial run (exit 1 on any race or
   divergence).

   Robustness flags (all commands taking FILE.f):
     --keep-going     salvage what parses/optimizes, accumulating diagnostics
     --max-errors N   stop after N errors in --keep-going mode (default 20)
     --fuel N         (run) trap execution after ~N loop iterations + calls
     --chaos SEED[:SPEC]
                      arm the deterministic fault-injection registry for the
                      duration of the command; a firing summary lands on
                      stderr at exit.  SPEC rules look like
                      dependence.ddtest=3 (third arrival), inliner.*=*2
                      (every 2nd), *=0.5% (probability), or
                      runtime.pool.stall=1~50 (stall 50ms).  Bare SEED uses
                      the default 0.5%-everywhere schedule.

   Fuzzing:
     parinline fuzz --seed S --count N [--mutate] [--dump-dir DIR]
   generates N deterministic F77 programs (seeds S..S+N-1), runs each
   through the salvaging pipeline with the validation oracle armed, and
   fails (exit 1) if any exception escapes the structured diagnostic
   channel or any emitted PARALLEL DO races/diverges.  --mutate applies
   token-level damage to exercise parser recovery (runtime crashes of
   salvaged programs are tolerated there; races never are).

   Profiling (compile, run):
     --profile        dump the per-pass timing breakdown and analysis
                      counters (same schema as the bench driver) on stderr

   Exit codes: 0 = clean, 1 = diagnostics emitted but work salvaged,
   2 = fatal (nothing usable produced). *)

open Cmdliner

let () = Printexc.record_backtrace true

let fail_cli fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("parinline: " ^ s);
      exit 2)
    fmt

let read_file path =
  if not (Sys.file_exists path) then fail_cli "no such file: %s" path;
  match open_in_bin path with
  | exception Sys_error m -> fail_cli "%s" m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

let mode_of_string = function
  | "none" | "no-inlining" -> Core.Pipeline.No_inlining
  | "conventional" -> Core.Pipeline.Conventional
  | "annotation" | "annotation-based" -> Core.Pipeline.Annotation_based
  | "demand" | "demand-driven" -> Core.Pipeline.Demand
  | m ->
      fail_cli
        "unknown mode %S (expected none | conventional | annotation | demand)"
        m

let load source_file annot_file =
  let source = read_file source_file in
  let annot_source =
    match annot_file with Some f -> read_file f | None -> ""
  in
  (source, annot_source)

let print_diags ds =
  List.iter (fun d -> prerr_endline (Core.Diag.render d)) ds

(* Exit per the contract once all output is flushed: 1 when any error
   diagnostic was salvaged, 0 otherwise (warnings alone stay 0). *)
let finish_with ds = if Core.Diag.errors_in ds > 0 then exit 1

(* Run [f ()] under the strict pipeline, converting the first fault into a
   rendered diagnostic and exit 2.  An injected chaos fault reaching this
   barrier (strict mode has no salvage) follows the same contract. *)
let strict f =
  match f () with
  | r -> r
  | exception Core.Diag.Fatal d ->
      prerr_endline (Core.Diag.render d);
      exit 2
  | exception Core.Annot_parser.Annot_parse_error m ->
      fail_cli "annotation file rejected: %s" m
  | exception Core.Fault.Injected (site, n) ->
      prerr_endline
        (Core.Diag.render
           (Core.Diag.make Core.Diag.Exec
              (Printf.sprintf "injected fault at %s (arrival %d)" site n)));
      exit 2

(* Run [f ()] under the salvaging pipeline; the error cap aborts. *)
let robust f =
  match f () with
  | r -> r
  | exception Core.Diag.Error_limit n ->
      fail_cli "error limit (%d) reached; giving up" n

(* --chaos support: parse the schedule spec, arm the registry for the
   duration of [f], and report what fired on stderr at exit (the
   commands exit from inside [f] on diagnostics; at_exit still gets the
   summary out on those paths). *)
let with_chaos chaos f =
  match chaos with
  | None -> f ()
  | Some spec -> (
      match Core.Fault.parse_spec spec with
      | Error m -> fail_cli "bad --chaos spec: %s" m
      | Ok pl ->
          at_exit (fun () -> prerr_endline (Core.Fault.summary pl));
          Core.Fault.with_plan pl f)

(* --profile support: build a profile when asked, render it on stderr
   once the work is done. *)
let make_prof profile = if profile then Some (Core.Prof.create ()) else None

let dump_prof = function
  | None -> ()
  | Some p -> prerr_string (Core.Prof.render p)

(* --trace-out support: arm a span sink for the duration of [f] and
   export the stream as Chrome trace_event JSON (atomically — a killed
   run never leaves a truncated trace for tooling to choke on). *)
let with_trace trace_out f =
  match trace_out with
  | None -> f ()
  | Some path ->
      let s = Core.Span.create () in
      let written = ref false in
      let write () =
        if not !written then begin
          written := true;
          Perfect.Driver.write_file_atomic path (Core.Span.to_chrome_json s);
          Printf.eprintf "trace: wrote %d events to %s%s\n"
            (List.length (Core.Span.events s))
            path
            (match Core.Span.dropped s with
            | 0 -> ""
            | n -> Printf.sprintf " (%d spans dropped)" n)
        end
      in
      (* the commands exit from inside [f] on diagnostics (1) and fatals
         (2); at_exit still gets the trace out on those paths *)
      at_exit write;
      let r = Core.Span.with_tracing s f in
      write ();
      r

(* Parse the source and annotation text under the chosen robustness —
   the commands that plan on the pristine program (demand mode, the
   plan subcommand) need the AST before any inlining touches it. *)
let parse_program ~keep_going ~max_errors source annot_source =
  if keep_going then
    robust (fun () ->
        let p, ds = Frontend.Resolve.parse_robust ~max_errors source in
        let annots, ads =
          if String.trim annot_source = "" then ([], [])
          else
            match Core.Annot_parser.parse_annotations annot_source with
            | a -> (a, [])
            | exception Core.Annot_parser.Annot_parse_error m ->
                ( [],
                  [
                    Core.Diag.make Core.Diag.Annot
                      ("annotation file rejected ("
                      ^ m
                      ^ "); continuing without annotations");
                  ] )
        in
        (p, annots, ds @ ads))
  else
    strict (fun () ->
        let p = Frontend.Resolve.parse source in
        let annots =
          if String.trim annot_source = "" then []
          else Core.Annot_parser.parse_annotations annot_source
        in
        (p, annots, []))

(* One pipeline entry for the FILE.f commands.  Demand must route
   through the verdict-guided planner — a plain [run_source] would
   silently skip the planning fixpoint and behave like no-inlining.
   The planner drives the salvaging pipeline internally (structured
   diagnostics, never a bare exception); without --keep-going an error
   diagnostic still degrades the exit status per the 0/1 contract. *)
let run_pipeline ?prof ~keep_going ~max_errors ~mode ~annot_source source =
  match mode with
  | Core.Pipeline.Demand ->
      let program, annots, parse_diags =
        parse_program ~keep_going ~max_errors source annot_source
      in
      let dg = Core.Diag.collector ~max_errors () in
      List.iter (Core.Diag.emit dg) parse_diags;
      let r, plan =
        robust (fun () ->
            strict (fun () ->
                Core.Prof.with_opt prof (fun () ->
                    Planner.run ~annots ~dg program)))
      in
      (r, Some plan)
  | _ ->
      let r =
        if keep_going then
          robust (fun () ->
              Core.Pipeline.run_source_robust ?prof ~max_errors ~mode
                ~annot_source source)
        else
          strict (fun () ->
              Core.Pipeline.run_source ?prof ~mode ~annot_source source)
      in
      (r, None)

let compile_run source_file annot_file mode out keep_going max_errors profile
    trace_out chaos =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  with_trace trace_out @@ fun () ->
  let prof = make_prof profile in
  let r, _plan =
    run_pipeline ?prof ~keep_going ~max_errors ~mode ~annot_source source
  in
  let text = Frontend.Pretty.program_to_string r.res_program in
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
  | None -> print_string text);
  print_diags r.res_diags;
  Printf.eprintf "parallel loops: %d, code size: %d lines%s\n"
    (List.length r.res_marked) r.res_code_size
    (match Core.Diag.summary r.res_diags with
    | "" -> ""
    | s -> " (" ^ s ^ ")");
  dump_prof prof;
  finish_with r.res_diags

let report_run source_file annot_file keep_going max_errors chaos =
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  (* parse once so loop ids are comparable across configurations *)
  let program, annots, parse_diags =
    parse_program ~keep_going ~max_errors source annot_source
  in
  let run_mode mode =
    match mode with
    | Core.Pipeline.Demand ->
        let dg = Core.Diag.collector ~max_errors () in
        fst
          (robust (fun () ->
               strict (fun () -> Planner.run ~annots ~dg program)))
    | _ ->
        if keep_going then Core.Pipeline.run_robust ~annots ~mode program
        else strict (fun () -> Core.Pipeline.run ~annots ~mode program)
  in
  let all_diags = ref parse_diags in
  let base = run_mode Core.Pipeline.No_inlining in
  List.iter
    (fun mode ->
      let r = if mode = Core.Pipeline.No_inlining then base else run_mode mode in
      all_diags := !all_diags @ r.res_diags;
      let par, loss, extra = Core.Pipeline.table2_counts ~baseline:base r in
      Printf.printf
        "%-18s #par-loops=%3d  #par-loss=%3d  #par-extra=%3d  size=%5d%s\n"
        (Core.Pipeline.mode_name mode) par loss extra r.res_code_size
        (match Core.Diag.summary r.res_diags with
        | "" -> ""
        | s -> "  [" ^ s ^ "]")
      ;
      List.iter
        (fun (rep : Parallelizer.Parallelize.loop_report) ->
          Printf.printf "  [%s] loop %d (DO %s): %s%s\n" rep.rep_unit
            rep.rep_loop_id rep.rep_index
            (if rep.rep_marked then "PARALLEL"
             else if rep.rep_safe then "safe (not profitable)"
             else "sequential: " ^ rep.rep_reason)
            (if rep.rep_private <> [] then
               " private(" ^ String.concat "," rep.rep_private ^ ")"
             else ""))
        r.res_reports)
    [ Core.Pipeline.No_inlining; Core.Pipeline.Conventional;
      Core.Pipeline.Annotation_based; Core.Pipeline.Demand ];
  print_diags parse_diags;
  finish_with !all_diags

let exec_run source_file annot_file mode threads keep_going max_errors fuel
    profile trace_out chaos =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  with_trace trace_out @@ fun () ->
  let prof = make_prof profile in
  let r, _plan =
    run_pipeline ?prof ~keep_going ~max_errors ~mode ~annot_source source
  in
  print_diags r.res_diags;
  let fuel = if fuel <= 0 then None else Some fuel in
  let t0 = Unix.gettimeofday () in
  match
    Core.Prof.with_opt prof (fun () ->
        Core.Prof.time "execute" (fun () ->
            Runtime.Interp.run_program ~threads ?fuel r.res_program))
  with
  | output ->
      let dt = Unix.gettimeofday () -. t0 in
      print_string output;
      Printf.eprintf "elapsed: %.3fs (threads=%d)\n" dt threads;
      dump_prof prof;
      finish_with r.res_diags
  | exception Runtime.Interp.Trap d ->
      print_diags (r.res_diags @ [ d ]);
      dump_prof prof;
      exit 1
  | exception Runtime.Value.Runtime_error m ->
      prerr_endline (Core.Diag.render (Core.Diag.make Core.Diag.Exec m));
      exit 2
  | exception Core.Fault.Injected (site, n) ->
      print_diags
        (r.res_diags
        @ [
            Core.Diag.make Core.Diag.Exec
              (Printf.sprintf "execution hit injected fault at %s (arrival %d)"
                 site n);
          ]);
      dump_prof prof;
      exit 1
  | exception Runtime.Pool.Worker_failure (l, e) ->
      print_diags
        (r.res_diags
        @ [
            Core.Diag.make
              ~backtrace:(Printexc.get_backtrace ())
              Core.Diag.Exec
              (Printf.sprintf "execution lost worker (%s): %s" l
                 (Printexc.to_string e));
          ]);
      dump_prof prof;
      exit 1

let check_run source_file annot_file mode threads keep_going max_errors fuel
    profile trace_out chaos =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  with_trace trace_out @@ fun () ->
  let prof = make_prof profile in
  let r, _plan =
    run_pipeline ?prof ~keep_going ~max_errors ~mode ~annot_source source
  in
  print_diags r.res_diags;
  let fuel = if fuel <= 0 then None else Some fuel in
  let v =
    Core.Prof.with_opt prof (fun () ->
        Core.Prof.time "validate" (fun () ->
            Checker.Oracle.validate ~threads ?fuel r.res_program))
  in
  print_diags v.Checker.Oracle.v_diags;
  Printf.eprintf
    "check (%s, threads=%d): %s — %d directive loop(s), %d iterations \
     traced, %d conflict(s) (%d excused)\n"
    (Core.Pipeline.mode_name mode)
    threads
    (Checker.Oracle.verdict_summary v)
    (List.length r.res_marked)
    v.Checker.Oracle.v_iterations
    (v.Checker.Oracle.v_unexcused + v.Checker.Oracle.v_excused)
    v.Checker.Oracle.v_excused;
  dump_prof prof;
  if not v.Checker.Oracle.v_ok then exit 1;
  finish_with r.res_diags

(* The explain subcommand: structured per-loop verdicts (the provenance
   layer behind Table II).  Every analyzed loop prints its stable id,
   outcome, clauses, and — for serial loops — the complete blocker list
   (the parallelizer no longer stops at the first obstacle).  [--loop]
   filters by gensym id or by the structural "UNIT:PATH@LINE" key;
   [--json] emits the round-trippable verdict objects instead. *)
let explain_run source_file annot_file mode loop_filter json keep_going
    max_errors trace_out chaos =
  let mode = mode_of_string mode in
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  with_trace trace_out @@ fun () ->
  let r, _plan =
    run_pipeline ~keep_going ~max_errors ~mode ~annot_source source
  in
  let verdicts =
    List.map
      (fun (rep : Parallelizer.Parallelize.loop_report) -> rep.rep_verdict)
      r.res_reports
  in
  let verdicts =
    match loop_filter with
    | None -> verdicts
    | Some want ->
        List.filter
          (fun (v : Parallelizer.Verdict.t) ->
            let l = v.Parallelizer.Verdict.v_loop in
            String.equal (string_of_int l.lid_loop) want
            || String.equal (Parallelizer.Verdict.key l) want)
          verdicts
  in
  if json then
    print_string
      (Frontend.Json.to_string
         (Frontend.Json.List
            (List.map Parallelizer.Verdict.to_json verdicts))
      ^ "\n")
  else begin
    Printf.printf "%s: %d loop verdict(s)\n"
      (Core.Pipeline.mode_name mode)
      (List.length verdicts);
    List.iter
      (fun v -> print_endline (Parallelizer.Verdict.render v))
      verdicts
  end;
  print_diags r.res_diags;
  finish_with r.res_diags

(* The plan subcommand: run the demand-driven planner and print its
   decision trace — which callees were inlined in which round (and by
   which method), which were refused and why, and which loops each
   round unlocked — without emitting the optimized program.  [--json]
   emits the machine-readable plan document (the same object the bench
   driver embeds per demand point). *)
let plan_run source_file annot_file growth_budget max_rounds json keep_going
    max_errors trace_out chaos =
  let source, annot_source = load source_file annot_file in
  with_chaos chaos @@ fun () ->
  with_trace trace_out @@ fun () ->
  if growth_budget <= 0.0 then fail_cli "--growth-budget must be positive";
  if max_rounds < 1 then fail_cli "--max-rounds must be at least 1";
  let program, annots, parse_diags =
    parse_program ~keep_going ~max_errors source annot_source
  in
  let dg = Core.Diag.collector ~max_errors () in
  List.iter (Core.Diag.emit dg) parse_diags;
  let r, plan =
    robust (fun () ->
        strict (fun () ->
            Planner.run ~growth_budget ~max_rounds ~annots ~dg program))
  in
  if json then
    print_string (Frontend.Json.to_string (Planner.to_json plan) ^ "\n")
  else print_string (Planner.render plan);
  print_diags r.res_diags;
  finish_with r.res_diags

(* ---- cmdliner plumbing ---- *)

(* positional FILE argument as a plain string: existence is checked by
   [read_file] so the missing-file path owns the exit-2 contract instead
   of cmdliner's generic 124 *)
let source_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.f")

let annot_arg =
  Arg.(value & opt (some string) None & info [ "annot" ] ~docv:"FILE.annot")

let mode_arg =
  Arg.(value & opt string "annotation" & info [ "mode" ] ~docv:"MODE")

let out_arg = Arg.(value & opt (some string) None & info [ "o"; "output" ])
let threads_arg = Arg.(value & opt int 4 & info [ "threads" ])

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:"Salvage what parses and optimizes, accumulating diagnostics.")

let max_errors_arg =
  Arg.(
    value
    & opt int Core.Diag.default_max_errors
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Give up after $(docv) errors in --keep-going mode.")

let fuel_arg =
  Arg.(
    value & opt int 0
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Trap execution after roughly $(docv) loop iterations plus calls \
           (0 = unlimited).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Dump the per-pass timing breakdown and analysis counters on \
           stderr (the bench driver's schema).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record begin/end spans of every instrumented region (pipeline \
           phases, per-loop analysis, dependence tests, inline sites, \
           reverse matches) and write them to $(docv) as Chrome \
           trace_event JSON (load in chrome://tracing or Perfetto).")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED[:SPEC]"
        ~doc:
          "Arm the deterministic fault-injection registry for the duration \
           of the command.  $(docv) is a seed optionally followed by \
           colon-separated rules (SITE=TRIGGER[~MILLIS]); a bare seed uses \
           the default 0.5%-everywhere schedule.  The firing summary is \
           printed on stderr at exit.")

let loop_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "loop" ] ~docv:"ID"
        ~doc:
          "Only the verdict(s) of this loop: a numeric loop id or a \
           structural UNIT:PATH@LINE key as printed by explain.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit verdicts as JSON (round-trippable) instead of text.")

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Optimize a program and print the result")
    Term.(
      const compile_run $ source_arg $ annot_arg $ mode_arg $ out_arg
      $ keep_going_arg $ max_errors_arg $ profile_arg $ trace_out_arg
      $ chaos_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Compare the four inlining configurations")
    Term.(
      const report_run $ source_arg $ annot_arg $ keep_going_arg
      $ max_errors_arg $ chaos_arg)

let growth_budget_arg =
  Arg.(
    value
    & opt float Planner.default_growth_budget
    & info [ "growth-budget" ] ~docv:"F"
        ~doc:
          "Refuse any inlining step that would grow the program past \
           $(docv) times its original statement count.")

let max_rounds_arg =
  Arg.(
    value
    & opt int Planner.default_max_rounds
    & info [ "max-rounds" ] ~docv:"N"
        ~doc:"Stop the planning fixpoint after $(docv) rounds.")

let plan_cmd =
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Run the verdict-guided demand-driven inlining planner and print \
          its decision trace: per round, the callees inlined (and by which \
          method), the callees refused (and why), and the loops the round \
          unlocked")
    Term.(
      const plan_run $ source_arg $ annot_arg $ growth_budget_arg
      $ max_rounds_arg $ json_arg $ keep_going_arg $ max_errors_arg
      $ trace_out_arg $ chaos_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the structured parallelization verdict of every analyzed \
          loop: stable loop identity, outcome, PRIVATE/REDUCTION clauses, \
          and the complete blocker list for serial loops")
    Term.(
      const explain_run $ source_arg $ annot_arg $ mode_arg $ loop_arg
      $ json_arg $ keep_going_arg $ max_errors_arg $ trace_out_arg
      $ chaos_arg)

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Optimize then execute a program")
    Term.(
      const exec_run $ source_arg $ annot_arg $ mode_arg $ threads_arg
      $ keep_going_arg $ max_errors_arg $ fuel_arg $ profile_arg
      $ trace_out_arg $ chaos_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate the emitted PARALLEL DO directives: clause-aware race \
          detection over a traced serial replay, then a serial/parallel \
          differential run")
    Term.(
      const check_run $ source_arg $ annot_arg $ mode_arg $ threads_arg
      $ keep_going_arg $ max_errors_arg $ fuel_arg $ profile_arg
      $ trace_out_arg $ chaos_arg)

let bench_run name threads chaos =
  match Perfect.Suite.find name with
  | None -> fail_cli "unknown benchmark %s" name
  | Some b -> (
      match
        with_chaos chaos @@ fun () ->
        let row = Perfect.Experiment.table2_row b in
        Printf.printf "%s: %s\n" b.name b.description;
        let show label (c : Perfect.Experiment.mode_cells) =
          Printf.printf "  %-16s par=%3d loss=%3d extra=%3d size=%5d%s\n"
            label c.m_par c.m_loss c.m_extra c.m_size
            (match Core.Diag.summary c.m_diags with
            | "" -> ""
            | s -> "  [" ^ s ^ "]")
        in
        show "no-inlining" row.t2_no_inline;
        show "conventional" row.t2_conventional;
        show "annotation" row.t2_annotation;
        let f = Perfect.Experiment.fig20_row ~threads b in
        Printf.printf
          "  fig20 (threads=%d): seq=%.3fs  speedups: none=%.2f conv=%.2f \
           annot=%.2f\n"
          threads f.f_seq f.f_no_inline f.f_conventional f.f_annotation
      with
      | () -> ()
      | exception Core.Diag.Fatal d ->
          prerr_endline (Core.Diag.render d);
          exit 2)

(* The fuzz gate: generate a deterministic corpus, push every program
   through the salvaging pipeline with the oracle armed, and fail loudly
   on any invariant violation.  Violating programs are dumped to
   --dump-dir (when given) for CI artifact upload. *)
let fuzz_run seed count mutate dump_dir =
  if count <= 0 then fail_cli "--count must be positive";
  let progress n =
    if n mod 100 = 0 then Printf.eprintf "fuzz: %d/%d\n%!" n count
  in
  let s = Fuzz.Harness.run_corpus ~mutate ~progress ~seed ~count () in
  Printf.printf
    "fuzz: %d program(s) from seed %d%s: %d directive(s) validated, %d \
     violation(s), corpus md5 %s\n"
    s.s_total seed
    (if mutate then " (mutated)" else "")
    s.s_marked_total
    (List.length s.s_violations)
    s.s_digest;
  match s.s_violations with
  | [] -> ()
  | vs ->
      (match dump_dir with
      | None -> ()
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          List.iter
            (fun (sd, _) ->
              let o = Fuzz.Harness.run_one ~mutate ~seed:sd () in
              let path = Filename.concat dir (Printf.sprintf "seed-%d.f" sd) in
              Perfect.Driver.write_file_atomic path o.Fuzz.Harness.o_source)
            vs);
      List.iter
        (fun (sd, why) -> Printf.eprintf "fuzz: seed %d: %s\n" sd why)
        vs;
      exit 1

let fuzz_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"S" ~doc:"First seed of the corpus.")

let fuzz_count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let fuzz_mutate_arg =
  Arg.(
    value & flag
    & info [ "mutate" ]
        ~doc:
          "Apply deterministic token-level damage to each program to \
           exercise parser recovery (runtime crashes of salvaged programs \
           are tolerated; races and divergence never are).")

let fuzz_dump_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:"Write every violating program to $(docv)/seed-N.f.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate a deterministic corpus of F77 programs and enforce the \
          crash-free gate: no exception escapes the structured diagnostic \
          channel, and every emitted PARALLEL DO passes the race detector \
          and the serial/parallel differential oracle")
    Term.(
      const fuzz_run $ fuzz_seed_arg $ fuzz_count_arg $ fuzz_mutate_arg
      $ fuzz_dump_arg)

(* ---- the analysis daemon (serve) and its protocol client ---- *)

(* Run the long-lived analysis daemon: NDJSON over a Unix-domain socket
   (--socket) or over stdin/stdout (default).  The loops own the
   never-crash contract; this wrapper owns startup/teardown — restore
   diagnostics on stderr, signal-triggered graceful drain, and the
   warm-cache snapshot on the way out. *)
let serve_run socket cache_dir jobs conn_jobs backlog max_inflight
    max_cache_units max_cache_bytes max_errors chaos log_file log_level =
  if jobs < 1 then fail_cli "--jobs must be at least 1";
  if conn_jobs < 0 then fail_cli "--conn-jobs must be at least 0";
  if backlog < 1 then fail_cli "--backlog must be at least 1";
  if max_inflight < 1 then fail_cli "--max-inflight must be at least 1";
  if max_cache_units < 0 then fail_cli "--max-cache-units must be at least 0";
  if max_cache_bytes < 0 then fail_cli "--max-cache-bytes must be at least 0";
  let log_level =
    match Server.Serve.log_level_of_string log_level with
    | Ok l -> l
    | Error m -> fail_cli "%s" m
  in
  with_chaos chaos @@ fun () ->
  let t, start_diags =
    Server.Serve.create ~jobs ~conn_jobs ~backlog ~max_inflight
      ~max_cache_units ~max_cache_bytes ?cache_dir ~max_errors ?log_file
      ~log_level ()
  in
  print_diags start_diags;
  let on_signal =
    Sys.Signal_handle
      (fun _ ->
        Server.Serve.stop t;
        raise Exit)
  in
  (try
     Sys.set_signal Sys.sigterm on_signal;
     Sys.set_signal Sys.sigint on_signal
   with Invalid_argument _ | Sys_error _ -> ());
  (try
     match socket with
     | Some path ->
         Printf.eprintf
           "parinline serve: listening on %s (jobs=%d, conn-jobs=%d, \
            backlog=%d%s)\n\
            %!"
           path jobs conn_jobs backlog
           (match cache_dir with
           | None -> ""
           | Some d -> ", cache-dir=" ^ d);
         Server.Serve.serve_socket t ~path
     | None -> Server.Serve.serve_channels t stdin stdout
   with Exit -> ());
  print_diags (Server.Serve.drain t);
  exit 0

(* One protocol round-trip against a running daemon.  Work-op output is
   printed so it is byte-identical to the one-shot commands: analyze
   prints the verdict array exactly as [explain --json] would, compile
   prints the optimized source, plan prints the plan document as
   [plan --json] would.  Cache provenance goes to stderr. *)
let client_run socket op source_file annot_file mode growth_budget max_rounds
    json =
  let module Json = Frontend.Json in
  let req =
    match op with
    | "ping" | "stats" | "metrics" | "snapshot" | "shutdown" ->
        Server.Serve.request ~op ()
    | "analyze" | "compile" | "plan" -> (
        match source_file with
        | None -> fail_cli "client --op %s needs FILE.f" op
        | Some f ->
            if growth_budget <= 0.0 then
              fail_cli "--growth-budget must be positive";
            if max_rounds < 1 then fail_cli "--max-rounds must be at least 1";
            let source, annot_source = load f annot_file in
            Server.Serve.request ~op ~mode ~source ~annot:annot_source
              ~growth_budget ~max_rounds ())
    | op -> fail_cli "unknown op %S (expected ping | stats | metrics | snapshot | shutdown | analyze | compile | plan)" op
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      fail_cli "cannot connect to %s: %s" socket (Unix.error_message e));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc (Json.to_string req);
  output_char oc '\n';
  flush oc;
  let line =
    match input_line ic with
    | line -> line
    | exception End_of_file -> fail_cli "server closed the connection"
  in
  close_out_noerr oc;
  match Json.parse line with
  | Error m -> fail_cli "unparseable server response: %s" m
  | Ok j ->
      if not (Json.to_bool (Json.member "ok" j)) then begin
        List.iter
          (fun d -> prerr_endline (Json.to_str d))
          (Json.to_list (Json.member "diags" j));
        exit 1
      end;
      let result = Json.member "result" j in
      (match op with
      | "analyze" ->
          print_string (Json.to_string (Json.member "verdicts" result) ^ "\n")
      | "compile" -> print_string (Json.to_str (Json.member "program" result))
      | "plan" ->
          print_string (Json.to_string (Json.member "plan" result) ^ "\n")
      | "metrics" ->
          (* text exposition by default, the JSON form with --json *)
          if json then
            print_string (Json.to_string (Json.member "metrics" j) ^ "\n")
          else print_string (Json.to_str (Json.member "exposition" j))
      | _ -> print_endline line);
      (match op with
      | "analyze" | "compile" | "plan" ->
          Printf.eprintf "client: %s (%s)\n"
            (if Json.to_bool (Json.member "cached" j) then "unit-cache hit"
             else "computed")
            (Json.to_str (Json.member "hash" j))
      | _ -> ())

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the daemon.")

let serve_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket at $(docv) (an existing file is \
           replaced).  Without it the daemon speaks the same \
           newline-delimited-JSON protocol on stdin/stdout.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist the warm caches (dependence memo store + content-hashed \
           unit cache) as a versioned snapshot under $(docv), restored on \
           the next startup.  A corrupt or version-mismatched snapshot is \
           rejected with a warning and the daemon cold-starts.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Shard batch requests across $(docv) worker domains.")

let conn_jobs_arg =
  Arg.(
    value & opt int 4
    & info [ "conn-jobs" ] ~docv:"N"
        ~doc:
          "Serve up to $(docv) connections concurrently on a fixed pool of \
           worker domains (socket mode only).  0 serves each connection \
           synchronously on the accept loop.")

let backlog_arg =
  Arg.(
    value & opt int 64
    & info [ "backlog" ] ~docv:"N"
        ~doc:
          "Kernel listen(2) backlog for the daemon socket: connections \
           queued by the OS before accept, beyond which connects fail.")

let max_inflight_arg =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admission control: with $(docv) accepted connections already \
           queued or being served, new connections are shed with a \
           structured overload error instead of waiting.")

let max_cache_units_arg =
  Arg.(
    value & opt int 0
    & info [ "max-cache-units" ] ~docv:"N"
        ~doc:
          "Bound the content-hashed unit cache to $(docv) entries; the \
           least-recently-used entry is evicted when the bound is \
           exceeded.  0 means unbounded.")

let max_cache_bytes_arg =
  Arg.(
    value & opt int 0
    & info [ "max-cache-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the unit cache's resident body bytes to $(docv); \
           least-recently-used entries are evicted until the cache fits.  \
           0 means unbounded.")

let op_arg =
  Arg.(
    value & opt string "analyze"
    & info [ "op" ] ~docv:"OP"
        ~doc:
          "Request to send: analyze | compile | plan (need FILE.f) or ping \
           | stats | metrics | snapshot | shutdown.")

let client_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "With --op metrics, print the JSON snapshot instead of the \
           Prometheus-style text exposition.")

let serve_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Write a structured NDJSON request log to $(docv): one line per \
           request with request_id, op, unit hash, cache outcome, latency \
           and the chaos fault sites that fired.")

let serve_log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Request-log threshold: debug (control ops included) | info \
           (work requests and lifecycle) | warn (degraded requests) | \
           error (dropped connections).")

let client_source_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.f")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: batched analyze/compile/plan \
          requests over newline-delimited JSON (stdin/stdout or a \
          Unix-domain socket), content-hashed unit caching, the dependence \
          memo store kept warm across requests, and optional on-disk \
          snapshots (--cache-dir) that survive restarts")
    Term.(
      const serve_run $ serve_socket_arg $ cache_dir_arg $ jobs_arg
      $ conn_jobs_arg $ backlog_arg $ max_inflight_arg $ max_cache_units_arg
      $ max_cache_bytes_arg $ max_errors_arg $ chaos_arg $ serve_log_arg
      $ serve_log_level_arg)

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running analysis daemon and print the \
          result (analyze output is byte-identical to explain --json; plan \
          output to plan --json)")
    Term.(
      const client_run $ socket_arg $ op_arg $ client_source_arg $ annot_arg
      $ mode_arg $ growth_budget_arg $ max_rounds_arg $ client_json_arg)

let bench_name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH")

let bench_cmd =
  Cmd.v (Cmd.info "bench" ~doc:"Run one PERFECT benchmark's experiments")
    Term.(const bench_run $ bench_name_arg $ threads_arg $ chaos_arg)

let () =
  let info = Cmd.info "parinline" ~doc:"Annotation-based inlining for interprocedural parallelization" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; report_cmd; explain_cmd; plan_cmd; run_cmd;
            check_cmd; bench_cmd; fuzz_cmd; serve_cmd; client_cmd ]))
