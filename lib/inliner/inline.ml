(** Conventional inlining with the Polaris default heuristics (Section II
    of the paper): a CALL is inlined when the call sits inside a loop nest
    and the callee is a leaf subroutine with no I/O and at most
    [max_stmts] statements.

    The two loss mechanisms of Section II-A are reproduced faithfully:

    - an actual argument that is an array *element* turns the formal's
      references into base-offset references ([X2(I)] becomes
      [T(IX(7) + I - 1)]), creating subscripted subscripts;
    - an actual whose declared shape differs from the formal's triggers
      linearization of the caller's array (all its references, program
      text wide in that unit), destroying dimension-by-dimension
      analyzability. *)

open Frontend
open Analysis
open Parallelizer
module S = Set.Make (String)

(* Conventional-inliner half of the shared site counter; the annotation
   half ticks from Prof.tick_annot_site (same family, different label). *)
let m_conv_sites =
  Metrics.counter "parinline_inline_sites_total"
    ~labels:[ ("inliner", "conventional") ]

type config = { max_stmts : int }

let default_config = { max_stmts = 150 }

type stats = {
  mutable inlined_calls : (string * string) list;  (** (caller, callee) *)
  mutable linearized : (string * string) list;  (** (unit, array) *)
  mutable skipped : (string * string * string) list;
      (** (caller, callee, reason) *)
  mutable removed_units : string list;
}

let new_stats () =
  { inlined_calls = []; linearized = []; skipped = []; removed_units = [] }

(* ------------------------------------------------------------------ *)
(* Eligibility                                                          *)
(* ------------------------------------------------------------------ *)

let stmt_count stmts = Ast.fold_stmts (fun n _ -> n + 1) 0 stmts

let has_print stmts =
  Ast.fold_stmts
    (fun acc s -> acc || match s.Ast.node with Ast.Print _ -> true | _ -> false)
    false stmts

let has_early_return stmts =
  (* RETURN anywhere except as the final top-level statement *)
  let count_returns stmts =
    Ast.fold_stmts
      (fun n s -> match s.Ast.node with Ast.Return -> n + 1 | _ -> n)
      0 stmts
  in
  let total = count_returns stmts in
  match List.rev stmts with
  | { Ast.node = Ast.Return; _ } :: _ -> total > 1
  | _ -> total > 0

let eligibility cfg (callee : Ast.program_unit) : string option =
  if callee.u_kind <> Ast.Subroutine then Some "not a subroutine"
  else if stmt_count callee.u_body > cfg.max_stmts then Some "too many statements"
  else if has_print callee.u_body then Some "contains I/O"
  else if Usedef.calls callee.u_body <> [] then Some "calls other subroutines"
  else if has_early_return callee.u_body then Some "early RETURN"
  else None

(* ------------------------------------------------------------------ *)
(* Parameter binding                                                    *)
(* ------------------------------------------------------------------ *)

(* Domain-local: concurrent compilations (the suite driver) must not
   race on the tag counter. *)
let inline_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(** Reset the calling domain's tag counter (per-compilation, for
    deterministic output regardless of task scheduling). *)
let reset_gensym () = Domain.DLS.get inline_counter := 0

exception Skip of string

(* substitution entry for a formal array *)
type array_binding =
  | Rename of string  (** formal maps 1:1 to the caller array *)
  | Flatten of {
      base : string;  (** caller array *)
      offset : Ast.expr;  (** 0-based element offset of the actual *)
      callee_dims : Ast.expr list;  (** instantiated formal shape *)
    }

let writes_var (callee : Ast.program_unit) v =
  match Usedef.written callee.u_body with
  | Usedef.All -> true
  | Usedef.Vars w -> S.mem v w

(* Substitute scalar formals (and PARAMETER constants) in an expression. *)
let subst_scalars (bindings : (string * Ast.expr) list) e =
  Ast.map_expr
    (function
      | Ast.Var v as e -> (
          match List.assoc_opt v bindings with Some a -> a | None -> e)
      | e -> e)
    e

(** Inline one call; returns replacement statements plus caller updates. *)
let inline_call cfg stats (caller : Ast.program_unit)
    (callee : Ast.program_unit) (args : Ast.expr list) :
    Ast.stmt list * Ast.decl list * (string * string list) list * string list
    =
  ignore cfg;
  let ctr = Domain.DLS.get inline_counter in
  incr ctr;
  let tagn = !ctr in
  if List.length args <> List.length callee.u_params then
    raise (Skip "arity mismatch");
  (* PARAMETER constants of the callee become scalar bindings. *)
  let param_consts = callee.u_params_const in
  (* scalar formal bindings, checked for writability *)
  let scalar_bindings =
    List.filter_map
      (fun (f, a) ->
        if Ast.is_array callee f then None
        else begin
          (match a with
          | Ast.Var _ -> ()
          | _ ->
              if writes_var callee f then
                raise (Skip ("written scalar formal " ^ f ^ " bound to expression")));
          Some (f, a)
        end)
      (List.combine callee.u_params args)
  in
  let scalar_bindings = scalar_bindings @ param_consts in
  let inst e = subst_scalars scalar_bindings e in
  (* array formal bindings *)
  let caller_dims name =
    match Ast.find_decl caller name with
    | Some d -> Linearize.dims_exprs d
    | None -> raise (Skip ("actual " ^ name ^ " is not a declared array"))
  in
  let array_bindings =
    List.filter_map
      (fun (f, a) ->
        if not (Ast.is_array callee f) then None
        else
          let fdims =
            match Ast.find_decl callee f with
            | Some d -> List.map inst (Linearize.dims_exprs d)
            | None -> assert false
          in
          let fdims_raw =
            match Ast.find_decl callee f with
            | Some d -> d.Ast.d_dims
            | None -> assert false
          in
          let is_star =
            List.exists (function Ast.Dim_star -> true | _ -> false) fdims_raw
          in
          match a with
          | Ast.Var arr ->
              let adims = caller_dims arr in
              let same_shape =
                (not is_star)
                && List.length adims = List.length fdims
                && List.for_all2 Ast.equal_expr adims fdims
              in
              if same_shape then Some (f, Rename arr)
              else
                Some
                  (f, Flatten { base = arr; offset = Ast.Int_const 0; callee_dims = fdims })
          | Ast.Array_ref (arr, eidx) ->
              let adims = caller_dims arr in
              let offset =
                Ast.Binop
                  ( Ast.Sub,
                    Linearize.linear_index adims eidx,
                    Ast.Int_const 1 )
              in
              Some (f, Flatten { base = arr; offset; callee_dims = fdims })
          | _ -> raise (Skip ("array formal " ^ f ^ " bound to expression")))
      (List.combine callee.u_params args)
  in
  (* local renaming *)
  let commons_members = List.concat_map snd callee.u_commons in
  let is_local v =
    (not (List.mem v callee.u_params))
    && (not (List.mem v commons_members))
    && not (List.mem_assoc v param_consts)
  in
  let locals =
    let names = ref S.empty in
    List.iter
      (fun (a : Usedef.access) ->
        if is_local a.acc_name then names := S.add a.acc_name !names)
      (Usedef.accesses_of_stmts callee.u_body);
    (* also declared-but-unused locals are irrelevant *)
    S.elements !names
  in
  let rename v = Printf.sprintf "%s_IL%d" v tagn in
  let local_map = List.map (fun v -> (v, rename v)) locals in
  (* new declarations for renamed locals *)
  let new_decls =
    List.filter_map
      (fun (v, v') ->
        let ty = Ast.type_of_var callee v in
        let dims =
          match Ast.find_decl callee v with
          | Some d ->
              List.map
                (function
                  | Ast.Dim_star -> Ast.Dim_star
                  | Ast.Dim_expr e -> Ast.Dim_expr (inst e))
                d.Ast.d_dims
          | None -> []
        in
        Some { Ast.d_name = v'; d_type = ty; d_dims = dims })
      local_map
  in
  (* COMMON blocks the caller lacks *)
  let new_commons =
    List.filter
      (fun (blk, _) -> not (List.mem_assoc blk caller.u_commons))
      callee.u_commons
  in
  let new_common_decls =
    List.concat_map
      (fun (_, members) ->
        List.filter_map
          (fun m ->
            match Ast.find_decl callee m with
            | Some d when Ast.find_decl caller m = None -> Some d
            | Some _ -> None
            | None ->
                if Ast.find_decl caller m = None then
                  Some
                    { Ast.d_name = m; d_type = Ast.implicit_type m; d_dims = [] }
                else None)
          members)
      new_commons
  in
  (* expression rewriting: scalars, locals, array formals *)
  let rewrite e =
    match e with
    | Ast.Var v -> (
        match List.assoc_opt v scalar_bindings with
        | Some a -> a
        | None -> (
            match List.assoc_opt v local_map with
            | Some v' -> Ast.Var v'
            | None -> e))
    | Ast.Array_ref (v, idx) -> (
        match List.assoc_opt v array_bindings with
        | Some (Rename arr) -> Ast.Array_ref (arr, idx)
        | Some (Flatten { base; offset; callee_dims }) ->
            Ast.Array_ref
              ( base,
                [
                  Ast.Binop
                    (Ast.Add, offset, Linearize.linear_index callee_dims idx);
                ] )
        | None -> (
            match List.assoc_opt v local_map with
            | Some v' -> Ast.Array_ref (v', idx)
            | None -> e))
    | e -> e
  in
  (* instantiate the body *)
  let body = Peel.copy_stmts callee.u_body in
  let body =
    match List.rev body with
    | { Ast.node = Ast.Return; _ } :: rest -> List.rev rest
    | _ -> body
  in
  let body = Ast.map_exprs_in_stmts rewrite body in
  (* rewrite left-hand sides (array formals and renamed local arrays) and
     DO indices, which are local scalars *)
  let body =
    Ast.map_stmts
      (fun s ->
        match s.Ast.node with
        | Ast.Do_loop l -> (
            match List.assoc_opt l.index local_map with
            | Some idx' -> [ { s with node = Ast.Do_loop { l with index = idx' } } ]
            | None -> [ s ])
        | Ast.Assign (Ast.Larray (v, idx), e) ->
            let lv =
              match List.assoc_opt v array_bindings with
              | Some (Rename arr) -> Ast.Larray (arr, idx)
              | Some (Flatten { base; offset; callee_dims }) ->
                  Ast.Larray
                    ( base,
                      [
                        Ast.Binop
                          ( Ast.Add,
                            offset,
                            Linearize.linear_index callee_dims idx );
                      ] )
              | None -> (
                  match List.assoc_opt v local_map with
                  | Some v' -> Ast.Larray (v', idx)
                  | None -> Ast.Larray (v, idx))
            in
            [ { s with node = Ast.Assign (lv, e) } ]
        | Ast.Assign (Ast.Lvar v, e) ->
            let lv =
              match List.assoc_opt v local_map with
              | Some v' -> Ast.Lvar v'
              | None -> (
                  match List.assoc_opt v scalar_bindings with
                  | Some (Ast.Var v') -> Ast.Lvar v'
                  | _ -> Ast.Lvar v)
            in
            [ { s with node = Ast.Assign (lv, e) } ]
        | _ -> [ s ])
      body
  in
  (* record linearizations needed in the caller *)
  let to_linearize =
    List.filter_map
      (fun (_, b) ->
        match b with
        | Flatten { base; _ } -> Some base
        | Rename _ -> None)
      array_bindings
  in
  List.iter
    (fun arr ->
      if not (List.mem (caller.u_name, arr) stats.linearized) then
        stats.linearized <- (caller.u_name, arr) :: stats.linearized)
    to_linearize;
  (body, new_decls @ new_common_decls, new_commons, to_linearize)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** [run ?only program] inlines eligible calls inside loop nests.  With
    [?only], inlining is restricted to the named callees (the
    demand-driven planner's selection); calls to any other subroutine
    are left untouched without being recorded as skipped — they were
    never candidates. *)
let run ?(config = default_config) ?(only : S.t option) (program : Ast.program)
    : Ast.program * stats =
  Fault.point "inliner.inline";
  let selected name =
    match only with None -> true | Some s -> S.mem name s
  in
  let stats = new_stats () in
  let process_unit (u : Ast.program_unit) =
    let extra_decls = ref [] in
    let extra_commons = ref [] in
    let linearize_marks = ref S.empty in
    let rec walk depth stmts =
      List.concat_map
        (fun (s : Ast.stmt) ->
          match s.Ast.node with
          | Ast.Do_loop l ->
              [ { s with node = Ast.Do_loop { l with body = walk (depth + 1) l.body } } ]
          | Ast.If (c, t, e) ->
              [ { s with node = Ast.If (c, walk depth t, walk depth e) } ]
          | Ast.Call (name, args) when depth > 0 && selected name -> (
              match Ast.find_unit program name with
              | None -> [ s ]
              | Some callee -> (
                  match eligibility config callee with
                  | Some why ->
                      stats.skipped <- (u.u_name, name, why) :: stats.skipped;
                      [ s ]
                  | None -> (
                      try
                        let body, decls, commons, lins =
                          Span.span ~cat:"inline" ~unit_:u.u_name
                            ("inline-site:" ^ name) (fun () ->
                              inline_call config stats u callee args)
                        in
                        Metrics.incr m_conv_sites;
                        stats.inlined_calls <-
                          (u.u_name, name) :: stats.inlined_calls;
                        extra_decls := !extra_decls @ decls;
                        extra_commons := !extra_commons @ commons;
                        List.iter
                          (fun a -> linearize_marks := S.add a !linearize_marks)
                          lins;
                        body
                      with Skip why ->
                        stats.skipped <-
                          (u.u_name, name, why) :: stats.skipped;
                        [ s ])))
          | _ -> [ s ])
        stmts
    in
    let body = walk 0 u.u_body in
    let u =
      {
        u with
        u_body = body;
        u_decls = u.u_decls @ !extra_decls;
        u_commons = u.u_commons @ !extra_commons;
      }
    in
    S.fold (fun arr u -> Linearize.linearize_array u arr) !linearize_marks u
  in
  let units = List.map process_unit program.p_units in
  (* Polaris keeps inlined subroutines in the emitted source (they still
     contribute to the code-size metric); record which became uncalled so
     the loop accounting can ignore their now-dead standalone bodies. *)
  let called =
    List.fold_left
      (fun acc u ->
        let acc =
          List.fold_left
            (fun acc (n, _) -> S.add n acc)
            acc
            (Usedef.calls u.Ast.u_body)
        in
        List.fold_left (fun acc f -> S.add f acc) acc
          (Usedef.func_calls u.Ast.u_body))
      S.empty units
  in
  List.iter
    (fun u ->
      match u.Ast.u_kind with
      | Ast.Main -> ()
      | Ast.Subroutine | Ast.Function _ ->
          if not (S.mem u.Ast.u_name called) then
            stats.removed_units <- u.Ast.u_name :: stats.removed_units)
    units;
  ({ Ast.p_units = units }, stats)
