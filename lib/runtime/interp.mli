(** Interpreter for the Fortran subset with OpenMP-style execution of
    directive-carrying loops across OCaml 5 domains.

    Parallel semantics follow the directives emitted by
    {!Parallelizer.Parallelize}: block-partitioned iterations over a
    persistent {!Pool}, fresh per-worker storage for PRIVATE names
    (installed as dynamic overrides so callees see the worker's copy of a
    privatized COMMON variable), identity-seeded per-worker REDUCTION
    accumulators merged at the join, and sequential execution of nested
    parallel regions. *)

exception Stop_program of string option
(** Raised internally by STOP; [run_program] converts it to output. *)

exception Trap of Frontend.Diag.t
(** A runtime guard fired: the step budget ([fuel]) ran out or the
    call-depth limit was exceeded.  Carries a structured diagnostic so
    drivers can report the trap instead of hanging. *)

val default_max_depth : int
(** Default call-depth limit (1000). *)

type prof_cell = {
  mutable pt : float;  (** cumulative seconds *)
  mutable pn : int;  (** executions *)
}

(** [run_program ~threads program] executes the program's MAIN unit and
    returns everything it printed.  [threads] sizes the worker pool
    (default 1 = fully sequential).  [profile], when given, accumulates
    per-loop-id wall time and execution counts for loops that carry a
    directive and execute outside any parallel region — the raw data for
    the empirical tuner.  [fuel] caps total work (in loop iterations plus
    calls) and [max_depth] caps call nesting; exceeding either raises
    {!Trap} with a structured diagnostic. *)
val run_program :
  ?threads:int ->
  ?profile:(int, prof_cell) Hashtbl.t ->
  ?fuel:int ->
  ?max_depth:int ->
  Frontend.Ast.program ->
  string

(** Like {!run_program}, but also returns the final contents of every
    COMMON block member (as floats, keyed ["BLOCK/position"]) -- the
    strongest observable state on which a sequential and a parallel run
    can be compared. *)
val run_program_state :
  ?threads:int ->
  ?profile:(int, prof_cell) Hashtbl.t ->
  ?fuel:int ->
  ?max_depth:int ->
  Frontend.Ast.program ->
  string * (string * float array) list

(** State keys (as in {!run_program_state}) of COMMON members named in
    some PRIVATE clause.  Their post-loop contents are unspecified — a
    parallel run leaves the shared storage untouched while a serial run
    writes it — so differential state comparison must skip them.
    REDUCTION names merge back into shared storage and are not
    included. *)
val private_state_keys : Frontend.Ast.program -> string list
