(** Persistent, self-healing worker-domain pool for parallel loop
    execution.

    Spawning a [Domain] per parallel loop costs hundreds of microseconds;
    the pool parks [n-1] workers once per program run and hands them chunk
    indices per loop.  Use only from one domain at a time and never
    reentrantly (the interpreter runs nested parallel loops sequentially,
    which guarantees both).

    Failure containment: per-chunk capture with backtraces, bounded
    retry-with-backoff for transient failures, lazy respawn of dead
    worker domains, and an optional per-job deadline enforced by the
    calling domain acting as watchdog (see [pool.ml] for the full
    semantics). *)

type t

(** The first exception captured from a dead chunk, annotated with the
    label of the owning parallel loop.  Raised only when [parallel_for]
    was given a [label] and no [~report]; unlabeled calls re-raise the
    exception raw (both with the original backtrace). *)
exception Worker_failure of string * exn

(** Per-chunk outcome delivered to [~report] after the join. *)
type event =
  | Chunk_failed of { chunk : int; error : exn; backtrace : string }
  | Chunk_retried of { chunk : int; attempt : int }
  | Deadline_missed of { chunk : int; waited_s : float }
  | Worker_died of { slot : int; error : exn }

(** Lifetime counters, for tests and post-run reporting. *)
type stats = {
  deaths : int;
  respawns : int;
  retries : int;
  deadline_misses : int;
}

(** [create n] spawns [n-1] worker domains ([n <= 1] gives a pool that
    runs everything on the caller). *)
val create : int -> t

(** [parallel_for p ~chunks f] runs [f c] for each [c] in
    [0 .. chunks-1] across the pool and blocks until all complete (or
    the [deadline_s] watchdog abandons the job).

    - [retries]/[backoff_s]: failures classified [transient] (default:
      injected chaos faults) are re-executed up to [retries] times with
      exponential backoff.  Retries re-run the chunk — enable only for
      idempotent chunk functions.
    - [deadline_s]: per-job wall-clock budget.  Requires a pool with
      workers; the caller then acts as watchdog instead of draining
      chunks.  Unenforced on a single-domain pool.
    - [report]: when present, nothing is raised; per-chunk {!event}s are
      delivered after the join.  When absent, the first failure is
      re-raised with its original backtrace (wrapped in
      {!Worker_failure} when [label] is present), and a missed deadline
      raises [Diag.Fatal] with a [Timeout] diagnostic.

    Raises [Diag.Fatal] (code [Exec]) if the pool was shut down. *)
val parallel_for :
  ?label:string ->
  ?deadline_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?transient:(exn -> bool) ->
  ?report:(event list -> unit) ->
  t ->
  chunks:int ->
  (int -> unit) ->
  unit

(** Lifetime failure/recovery counters. *)
val stats : t -> stats

(** Stop and join all workers.  Idempotent. *)
val shutdown : t -> unit
