(** Persistent domain pool.

    Spawning a [Domain] per parallel loop execution costs hundreds of
    microseconds -- ruinous for programs that enter small parallel loops
    thousands of times (exactly the PERFECT profile).  The pool parks
    [n-1] worker domains once per program run; a parallel loop hands every
    worker a chunk index and blocks until all chunks complete.  The pool
    is used only from the main domain and only outside parallel regions
    (the interpreter runs nested parallel loops sequentially), so a single
    job slot suffices. *)

exception Worker_failure of string * exn

type t = {
  m : Mutex.t;
  cv_job : Condition.t;  (** signaled when a new job is published *)
  cv_done : Condition.t;  (** signaled when the last chunk finishes *)
  mutable job : (int -> unit) option;
  mutable generation : int;
  mutable next_chunk : int;
  mutable total_chunks : int;
  mutable batch : int;
      (** chunks grabbed per lock acquisition, set per job: large enough
          to cut lock traffic on many-small-chunk jobs, small enough
          (total/(4*size)) that stragglers still rebalance *)
  mutable finished_chunks : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;  (** number of workers + 1 (the caller participates) *)
}

(* Drain the current job's chunks, [p.batch] per lock acquisition.
   Called (and returns) with [p.m] held.  Each chunk keeps its own
   failure capture — a dead chunk never prevents the rest of its batch
   (or the job) from running, so every chunk executes exactly once. *)
let drain (p : t) (job : int -> unit) =
  let rec go () =
    if p.next_chunk < p.total_chunks then begin
      let first = p.next_chunk in
      let last = min p.total_chunks (first + p.batch) in
      p.next_chunk <- last;
      Mutex.unlock p.m;
      for c = first to last - 1 do
        try job c
        with e ->
          Mutex.lock p.m;
          if p.failure = None then p.failure <- Some e;
          Mutex.unlock p.m
      done;
      Mutex.lock p.m;
      p.finished_chunks <- p.finished_chunks + (last - first);
      if p.finished_chunks = p.total_chunks then Condition.broadcast p.cv_done;
      go ()
    end
  in
  go ()

let worker_loop (p : t) () =
  let my_generation = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.m;
    while (not p.stop) && (p.job = None || p.generation = !my_generation) do
      Condition.wait p.cv_job p.m
    done;
    if p.stop then begin
      Mutex.unlock p.m;
      continue_ := false
    end
    else begin
      my_generation := p.generation;
      let job = Option.get p.job in
      drain p job;
      Mutex.unlock p.m
    end
  done

let create n_threads : t =
  let p =
    {
      m = Mutex.create ();
      cv_job = Condition.create ();
      cv_done = Condition.create ();
      job = None;
      generation = 0;
      next_chunk = 0;
      total_chunks = 0;
      batch = 1;
      finished_chunks = 0;
      failure = None;
      stop = false;
      workers = [];
      size = max 1 n_threads;
    }
  in
  p.workers <-
    List.init (max 0 (n_threads - 1)) (fun _ -> Domain.spawn (worker_loop p));
  p

(** Run [f c] for every chunk [c] in [0 .. chunks-1] across the pool,
    with the calling domain participating.  Re-raises the first failure --
    raw when [label] is absent, wrapped in {!Worker_failure} (so the
    caller knows which loop owned the dead worker) when present. *)
let parallel_for ?label (p : t) ~(chunks : int) (f : int -> unit) =
  let reraise e =
    match label with
    | None -> raise e
    | Some l -> raise (Worker_failure (l, e))
  in
  if chunks <= 0 then ()
  else if p.size = 1 || chunks = 1 then
    try
      for c = 0 to chunks - 1 do
        f c
      done
    with e -> reraise e
  else begin
    Mutex.lock p.m;
    p.job <- Some f;
    p.generation <- p.generation + 1;
    p.next_chunk <- 0;
    p.total_chunks <- chunks;
    p.batch <- max 1 (chunks / (4 * p.size));
    p.finished_chunks <- 0;
    p.failure <- None;
    Condition.broadcast p.cv_job;
    (* participate *)
    drain p f;
    while p.finished_chunks < p.total_chunks do
      Condition.wait p.cv_done p.m
    done;
    p.job <- None;
    let failure = p.failure in
    Mutex.unlock p.m;
    match failure with Some e -> reraise e | None -> ()
  end

let shutdown (p : t) =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.cv_job;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []
