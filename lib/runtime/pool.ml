(** Persistent, self-healing domain pool.

    Spawning a [Domain] per parallel loop execution costs hundreds of
    microseconds -- ruinous for programs that enter small parallel loops
    thousands of times (exactly the PERFECT profile).  The pool parks
    [n-1] worker domains once per program run; a parallel loop hands every
    worker a chunk index and blocks until all chunks complete.  The pool
    is used only from the main domain and only outside parallel regions
    (the interpreter runs nested parallel loops sequentially), so a single
    job slot suffices.

    Failure containment is layered:

    - Every chunk keeps its own failure capture (with the raw backtrace),
      so a dead chunk never prevents the rest of its batch or the job
      from running.  Failures classified transient are retried with
      exponential backoff up to a per-job bound — retries re-execute the
      chunk, so callers enable them only for idempotent chunk functions
      (the suite driver's [out.(i) <- ...] tasks qualify; interpreter
      reductions do not).
    - A worker whose loop itself dies (possible only at the injected
      ["runtime.pool.worker"] fault point — [drain] never lets a chunk
      exception escape) is recorded and lazily respawned at the next
      [parallel_for], so a killed domain degrades one job, not the pool.
    - With a [deadline_s], the calling domain stays out of the chunk work
      and acts as a watchdog: when the job exceeds its budget, unfinished
      chunks are abandoned and reported as {!Deadline_missed} events, and
      any stalled worker finishes its orphaned chunk against the dead
      job's private state, harmless to later jobs.  Per-job bookkeeping
      lives in a fresh {!job} record for exactly this reason.  With a
      single-domain pool there is nobody to preempt the caller, so
      deadlines are not enforced there.

    With [~report], failures and deadline misses are delivered as
    {!event}s after the join instead of being re-raised — the suite
    driver turns each into a degraded benchmark point. *)

exception Worker_failure of string * exn

(** Per-chunk outcome delivered to [~report] after the join. *)
type event =
  | Chunk_failed of { chunk : int; error : exn; backtrace : string }
      (** the chunk's last attempt raised [error] *)
  | Chunk_retried of { chunk : int; attempt : int }
      (** a transient failure; attempt [attempt] follows after backoff *)
  | Deadline_missed of { chunk : int; waited_s : float }
      (** the watchdog abandoned this chunk (running or never started) *)
  | Worker_died of { slot : int; error : exn }
      (** a worker domain's loop died; it is respawned on the next job *)

(** Lifetime counters, for tests and post-run reporting. *)
type stats = {
  deaths : int;  (** worker domains whose loop died *)
  respawns : int;  (** replacement domains spawned by [heal] *)
  retries : int;  (** chunk re-executions after transient failures *)
  deadline_misses : int;  (** chunks abandoned by the watchdog *)
}

(* All per-job bookkeeping lives here, never on the pool: a worker
   stalled in an abandoned job updates its own job's counters, so it can
   never corrupt a later job's progress accounting. *)
type job = {
  j_f : int -> unit;
  j_published_ns : int64;  (** publish time, for the queue-wait histogram *)
  j_total : int;
  j_batch : int;
      (** chunks grabbed per lock acquisition: large enough to cut lock
          traffic on many-small-chunk jobs, small enough
          (total/(4*size)) that stragglers still rebalance *)
  j_retries : int;
  j_backoff : float;
  j_transient : exn -> bool;
  j_track : bool;  (** maintain [j_running] (only needed with a deadline) *)
  mutable j_next : int;
  mutable j_finished : int;
  mutable j_abandoned : bool;
  mutable j_failure : (exn * Printexc.raw_backtrace) option;
  mutable j_events : event list;  (** newest first *)
  j_running : (int, unit) Hashtbl.t;  (** chunks currently executing *)
}

type t = {
  m : Mutex.t;
  cv_job : Condition.t;  (** signaled when a new job is published *)
  cv_done : Condition.t;  (** signaled when the last chunk finishes *)
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable closed : bool;  (** [shutdown] ran; [parallel_for] must refuse *)
  mutable workers : (int * unit Domain.t) list;  (** slot, domain *)
  mutable dead : int list;  (** slots awaiting respawn *)
  mutable n_deaths : int;
  mutable n_respawns : int;
  mutable n_retries : int;
  mutable n_deadline_misses : int;
  size : int;  (** number of workers + 1 (the caller participates) *)
}

let now_s () = Int64.to_float (Frontend.Prof.monotonic_ns ()) /. 1e9

(* Live telemetry: queue wait vs execute time plus the self-healing
   counters, fed to the armed Metrics registry (no-ops otherwise). *)
let m_queue_wait =
  Frontend.Metrics.histogram "parinline_pool_queue_wait_seconds"
    ~help:"time from job publish until a participant starts draining"

let m_chunk_exec =
  Frontend.Metrics.histogram "parinline_pool_chunk_exec_seconds"
    ~help:"per-chunk execute wall time, retries included"

let m_chunks =
  Frontend.Metrics.counter "parinline_pool_chunks_total"
    ~help:"pool chunks executed"

let m_retries =
  Frontend.Metrics.counter "parinline_pool_retries_total"
    ~help:"chunk re-executions after transient failures"

let m_respawns =
  Frontend.Metrics.counter "parinline_pool_respawns_total"
    ~help:"worker domains respawned after a death"

let m_deadline_misses =
  Frontend.Metrics.counter "parinline_pool_deadline_misses_total"
    ~help:"chunks abandoned by the watchdog"

(* Injected faults are the canonical transient failure; everything else
   is assumed real (a logic bug does not get better by rerunning). *)
let default_transient = function
  | Frontend.Fault.Injected _ -> true
  | _ -> false

(* User-supplied classifiers must not take the pool down. *)
let is_transient (j : job) e = try j.j_transient e with _ -> false

(* Drain the job's chunks, [j.j_batch] per lock acquisition.  Called
   (and returns) with [p.m] held; never lets a chunk exception escape. *)
let drain (p : t) (j : job) =
  if Frontend.Metrics.on () then
    Frontend.Metrics.observe_ns m_queue_wait
      (Int64.to_int
         (Int64.sub (Frontend.Prof.monotonic_ns ()) j.j_published_ns));
  let rec go () =
    if (not j.j_abandoned) && j.j_next < j.j_total then begin
      let first = j.j_next in
      let last = min j.j_total (first + j.j_batch) in
      j.j_next <- last;
      if j.j_track then
        for c = first to last - 1 do
          Hashtbl.replace j.j_running c ()
        done;
      Mutex.unlock p.m;
      for c = first to last - 1 do
        (* chaos: simulate a hung worker; the watchdog's deadline is the
           recovery path under test *)
        let s = Frontend.Fault.stall "runtime.pool.stall" in
        if s > 0.0 then Unix.sleepf s;
        let mon = Frontend.Metrics.on () in
        let exec_t0 = if mon then Frontend.Prof.monotonic_ns () else 0L in
        let rec attempt tries =
          match
            Frontend.Fault.point "runtime.pool.chunk";
            j.j_f c
          with
          | () -> ()
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              if is_transient j e && tries < j.j_retries then begin
                Frontend.Metrics.incr m_retries;
                Mutex.lock p.m;
                p.n_retries <- p.n_retries + 1;
                j.j_events <-
                  Chunk_retried { chunk = c; attempt = tries + 1 }
                  :: j.j_events;
                Mutex.unlock p.m;
                Unix.sleepf (j.j_backoff *. float_of_int (1 lsl tries));
                attempt (tries + 1)
              end
              else begin
                Mutex.lock p.m;
                if j.j_failure = None then j.j_failure <- Some (e, bt);
                j.j_events <-
                  Chunk_failed
                    {
                      chunk = c;
                      error = e;
                      backtrace = Printexc.raw_backtrace_to_string bt;
                    }
                  :: j.j_events;
                Mutex.unlock p.m
              end
        in
        attempt 0;
        if mon then begin
          Frontend.Metrics.observe_ns m_chunk_exec
            (Int64.to_int
               (Int64.sub (Frontend.Prof.monotonic_ns ()) exec_t0));
          Frontend.Metrics.incr m_chunks
        end
      done;
      Mutex.lock p.m;
      if j.j_track then
        for c = first to last - 1 do
          Hashtbl.remove j.j_running c
        done;
      j.j_finished <- j.j_finished + (last - first);
      if j.j_finished >= j.j_total then Condition.broadcast p.cv_done;
      go ()
    end
  in
  go ()

let worker_loop (p : t) (slot : int) () =
  let my_generation = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.m;
    while (not p.stop) && (p.job = None || p.generation = !my_generation) do
      Condition.wait p.cv_job p.m
    done;
    if p.stop then begin
      Mutex.unlock p.m;
      continue_ := false
    end
    else begin
      my_generation := p.generation;
      let j = Option.get p.job in
      (* [drain] never raises, so a death can only come from the injected
         worker fault point — exactly the "worker domain dies" scenario.
         Record it for lazy respawn; the job completes via the remaining
         participants (or the watchdog). *)
      (match Frontend.Fault.point "runtime.pool.worker" with
      | () -> drain p j
      | exception e ->
          p.n_deaths <- p.n_deaths + 1;
          p.dead <- slot :: p.dead;
          j.j_events <- Worker_died { slot; error = e } :: j.j_events;
          continue_ := false);
      Mutex.unlock p.m
    end
  done

let create n_threads : t =
  let p =
    {
      m = Mutex.create ();
      cv_job = Condition.create ();
      cv_done = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      closed = false;
      workers = [];
      dead = [];
      n_deaths = 0;
      n_respawns = 0;
      n_retries = 0;
      n_deadline_misses = 0;
      size = max 1 n_threads;
    }
  in
  p.workers <-
    List.init
      (max 0 (n_threads - 1))
      (fun i -> (i, Domain.spawn (worker_loop p i)));
  p

(* Respawn any workers that died since the last job.  The dead domain's
   loop has exited, so joining it here is immediate; spawning happens
   outside the lock. *)
let heal (p : t) =
  Mutex.lock p.m;
  let dead = p.dead in
  p.dead <- [];
  let gone, kept =
    List.partition (fun (s, _) -> List.mem s dead) p.workers
  in
  p.workers <- kept;
  Mutex.unlock p.m;
  List.iter (fun (_, d) -> Domain.join d) gone;
  List.iter
    (fun slot ->
      let d = Domain.spawn (worker_loop p slot) in
      Frontend.Metrics.incr m_respawns;
      Mutex.lock p.m;
      p.workers <- (slot, d) :: p.workers;
      p.n_respawns <- p.n_respawns + 1;
      Mutex.unlock p.m)
    dead

let stats (p : t) : stats =
  Mutex.lock p.m;
  let s =
    {
      deaths = p.n_deaths;
      respawns = p.n_respawns;
      retries = p.n_retries;
      deadline_misses = p.n_deadline_misses;
    }
  in
  Mutex.unlock p.m;
  s

(** Run [f c] for every chunk [c] in [0 .. chunks-1] across the pool.
    Without [~report], the first failure is re-raised with its original
    backtrace after the join -- raw when [label] is absent, wrapped in
    {!Worker_failure} when present -- and a missed deadline raises
    [Diag.Fatal] with a [Timeout] diagnostic.  With [~report], nothing
    is raised: per-chunk {!event}s are delivered after the join and the
    caller decides how to degrade. *)
let parallel_for ?label ?deadline_s ?(retries = 0) ?(backoff_s = 0.002)
    ?(transient = default_transient) ?report (p : t) ~(chunks : int)
    (f : int -> unit) =
  if p.closed then
    raise
      (Frontend.Diag.Fatal
         (Frontend.Diag.make Frontend.Diag.Exec
            (Printf.sprintf "parallel_for%s called on a shut-down pool"
               (match label with None -> "" | Some l -> " (" ^ l ^ ")"))));
  if chunks <= 0 then ()
  else begin
    heal p;
    (* With a deadline and workers available, the caller stays out of
       the chunk work: a watchdog stalled inside a hung chunk could
       never fire.  Without workers nobody can preempt the caller, so
       the deadline is not enforced (documented). *)
    let watchdog = deadline_s <> None && p.size > 1 in
    let use_workers = p.size > 1 && (chunks > 1 || watchdog) in
    let j =
      {
        j_f = f;
        j_published_ns = Frontend.Prof.monotonic_ns ();
        j_total = chunks;
        j_batch =
          (if use_workers then max 1 (chunks / (4 * p.size)) else chunks);
        j_retries = max 0 retries;
        j_backoff = backoff_s;
        j_transient = transient;
        j_track = deadline_s <> None;
        j_next = 0;
        j_finished = 0;
        j_abandoned = false;
        j_failure = None;
        j_events = [];
        j_running = Hashtbl.create 8;
      }
    in
    Mutex.lock p.m;
    if use_workers then begin
      p.job <- Some j;
      p.generation <- p.generation + 1;
      Condition.broadcast p.cv_job
    end;
    let t0 = now_s () in
    if not watchdog then drain p j;
    (match deadline_s with
    | None ->
        while j.j_finished < j.j_total do
          Condition.wait p.cv_done p.m
        done
    | Some dl ->
        (* Condition has no timed wait; poll at 0.5ms, cheap against any
           realistic deadline and only while a deadline is armed. *)
        while j.j_finished < j.j_total && not j.j_abandoned do
          Mutex.unlock p.m;
          Unix.sleepf 0.0005;
          Mutex.lock p.m;
          if j.j_finished < j.j_total && now_s () -. t0 > dl then begin
            j.j_abandoned <- true;
            let waited = now_s () -. t0 in
            let miss c =
              j.j_events <-
                Deadline_missed { chunk = c; waited_s = waited }
                :: j.j_events;
              Frontend.Metrics.incr m_deadline_misses;
              p.n_deadline_misses <- p.n_deadline_misses + 1
            in
            Hashtbl.iter (fun c () -> miss c) j.j_running;
            for c = j.j_next to j.j_total - 1 do
              miss c
            done;
            j.j_next <- j.j_total
          end
        done);
    if use_workers then p.job <- None;
    let failure = j.j_failure in
    let abandoned = j.j_abandoned in
    let events = List.rev j.j_events in
    Mutex.unlock p.m;
    match report with
    | Some k -> k events
    | None -> (
        match failure with
        | Some (e, bt) -> (
            match label with
            | None -> Printexc.raise_with_backtrace e bt
            | Some l ->
                Printexc.raise_with_backtrace (Worker_failure (l, e)) bt)
        | None ->
            if abandoned then
              raise
                (Frontend.Diag.Fatal
                   (Frontend.Diag.make Frontend.Diag.Timeout
                      (Printf.sprintf
                         "parallel job%s exceeded its %.0f ms deadline"
                         (match label with
                         | None -> ""
                         | Some l -> " (" ^ l ^ ")")
                         (Option.get deadline_s *. 1000.0)))))
  end

(** Stop and join all workers.  Idempotent: a second call is a no-op.
    [parallel_for] on a shut-down pool raises a structured [Diag.Fatal]
    instead of hanging on [cv_done]. *)
let shutdown (p : t) =
  Mutex.lock p.m;
  if p.closed then Mutex.unlock p.m
  else begin
    p.closed <- true;
    p.stop <- true;
    Condition.broadcast p.cv_job;
    Mutex.unlock p.m;
    List.iter (fun (_, d) -> Domain.join d) p.workers;
    p.workers <- []
  end
