(** Dynamic access tracing for the validation oracle.

    The interpreter's compiled closures report every scalar/array read and
    write here; while a sink is installed (via {!with_tracing}, same
    domain-local discipline as [Frontend.Prof]) and at least one
    directive-carrying loop is active, each access is folded into a
    per-loop conflict map.  The checker replays a program *serially* under
    a sink and then asks which [PARALLEL DO] loops performed
    cross-iteration conflicting accesses — the raw material for the race
    detector in [lib/checker].

    Zero-cost when off: instrumentation sites first test {!on}, a single
    uncontended atomic load; only when some domain has armed tracing do
    they consult the domain-local slot.  Worker domains of a parallel run
    never see the main domain's sink, so tracing is meaningful only for
    sequential replays — exactly how the oracle uses it.

    Conflict detection is online and bounded: per (loop execution,
    location) we keep one small mutable cell and report at most one
    write-write and one read-write witness pair, so memory is proportional
    to the touched footprint, not to the access count.  Locations are
    (physical storage, element offset) pairs — COMMON aliasing through
    different names or reshaped views lands on the same location. *)

open Value

type kind = Ww  (** write-write *) | Rw  (** read-write *)

let kind_name = function Ww -> "write-write" | Rw -> "read-write"

(** One witness of a cross-iteration conflict inside a directive loop.
    [c_var]/[c_var'] are the names the two endpoint accesses used (they
    can differ under aliasing); [c_iter]/[c_iter'] are the two iteration
    values of the loop's index ([c_iter <> c_iter']).  [c_off] is the
    0-based flattened element offset within the variable's storage, [-1]
    for a whole-object access (array broadcast). *)
type conflict = {
  c_loop : int;  (** loop id of the directive loop *)
  c_var : string;
  c_var' : string;
  c_kind : kind;
  c_iter : int;
  c_iter' : int;
  c_off : int;
}

(* Per-location state within one execution of one directive loop.
   [min_int] means "no such access yet". *)
type cell = {
  mutable w_iter : int;
  mutable w_name : string;
  mutable r_iter : int;
  mutable r_name : string;
  mutable ww_done : bool;  (** a WW witness was already reported here *)
  mutable rw_done : bool;
}

(* One active execution of a directive loop (innermost first on the
   stack).  Cells are keyed by [store_id * 2^32 + (off + 1)]; offset -1
   (whole-object) packs to low bits 0 and doubles as the store-level
   cell consulted by every element access. *)
type lframe = {
  f_loop : int;
  mutable f_iter : int;
  mutable f_iters : int;  (** iterations begun in this execution *)
  f_cells : (int, cell) Hashtbl.t;
}

type sink = {
  mutable stores : storage array;  (** physical-identity table *)
  mutable n_stores : int;
  mutable last_store : int;  (** MRU index into [stores]; -1 when empty *)
  mutable frames : lframe list;
  mutable conflicts : conflict list;  (** newest first *)
  mutable iterations : int;  (** directive-loop iterations traced *)
  mutable events : int;  (** accesses recorded under some frame *)
}

let create () =
  {
    stores = [||];
    n_stores = 0;
    last_store = -1;
    frames = [];
    conflicts = [];
    iterations = 0;
    events = 0;
  }

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

(* Count of domains with an installed sink: the single-load fast path. *)
let armed = Atomic.make 0

let on () = Atomic.get armed > 0

let slot : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get slot

(** Install [s] as the calling domain's sink for the duration of [f]. *)
let with_tracing (s : sink) (f : unit -> 'a) : 'a =
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some s);
  Atomic.incr armed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr armed;
      Domain.DLS.set slot prev)
    f

(* ------------------------------------------------------------------ *)
(* Storage identity                                                    *)
(* ------------------------------------------------------------------ *)

(* Index of [st] in the sink's physical-identity table, interning on
   first sight.  MRU cache first (loop bodies hammer a handful of
   storages), then a backward scan (fresh storages sit at the end).
   Inside directive loops the table stays small: the parallelizer admits
   no calls there, so no per-call storage is allocated mid-trace. *)
let store_id (s : sink) (st : storage) : int =
  if s.last_store >= 0 && s.stores.(s.last_store) == st then s.last_store
  else begin
    let rec scan i =
      if i < 0 then begin
        if s.n_stores = Array.length s.stores then begin
          let bigger =
            Array.make (max 16 (2 * Array.length s.stores)) st
          in
          Array.blit s.stores 0 bigger 0 s.n_stores;
          s.stores <- bigger
        end;
        s.stores.(s.n_stores) <- st;
        s.n_stores <- s.n_stores + 1;
        s.n_stores - 1
      end
      else if s.stores.(i) == st then i
      else scan (i - 1)
    in
    let id = scan (s.n_stores - 1) in
    s.last_store <- id;
    id
  end

let key_of sid off = (sid lsl 32) lor (off + 1)

(* ------------------------------------------------------------------ *)
(* Online conflict detection                                           *)
(* ------------------------------------------------------------------ *)

let fresh_cell () =
  {
    w_iter = min_int;
    w_name = "";
    r_iter = min_int;
    r_name = "";
    ww_done = false;
    rw_done = false;
  }

let cell_of (fr : lframe) key =
  match Hashtbl.find_opt fr.f_cells key with
  | Some c -> c
  | None ->
      let c = fresh_cell () in
      Hashtbl.replace fr.f_cells key c;
      c

(* Fold one access into one frame's map, appending any fresh witness to
   the sink's conflict list. *)
let touch (s : sink) (fr : lframe) ~write name off key =
  let c = cell_of fr key in
  let iter = fr.f_iter in
  let report kind var var' iter' =
    s.conflicts <-
      {
        c_loop = fr.f_loop;
        c_var = var;
        c_var' = var';
        c_kind = kind;
        c_iter = iter';
        c_iter' = iter;
        c_off = off;
      }
      :: s.conflicts
  in
  if write then begin
    if c.w_iter <> min_int && c.w_iter <> iter && not c.ww_done then begin
      c.ww_done <- true;
      report Ww c.w_name name c.w_iter
    end;
    if c.r_iter <> min_int && c.r_iter <> iter && not c.rw_done then begin
      c.rw_done <- true;
      report Rw c.r_name name c.r_iter
    end;
    c.w_iter <- iter;
    c.w_name <- name
  end
  else begin
    if c.w_iter <> min_int && c.w_iter <> iter && not c.rw_done then begin
      c.rw_done <- true;
      report Rw c.w_name name c.w_iter
    end;
    c.r_iter <- iter;
    c.r_name <- name
  end

let record (s : sink) ~write name (v : view) off =
  match s.frames with
  | [] -> ()
  | frames ->
      s.events <- s.events + 1;
      let sid = store_id s v.st in
      let abs = if off < 0 then -1 else v.off + off in
      let key = key_of sid abs in
      let whole_key = key_of sid (-1) in
      List.iter
        (fun fr ->
          (* a prior whole-object write conflicts with any element access *)
          (if abs >= 0 then
             match Hashtbl.find_opt fr.f_cells whole_key with
             | Some wc
               when wc.w_iter <> min_int && wc.w_iter <> fr.f_iter
                    && not wc.rw_done ->
                 wc.rw_done <- true;
                 s.conflicts <-
                   {
                     c_loop = fr.f_loop;
                     c_var = wc.w_name;
                     c_var' = name;
                     c_kind = (if write then Ww else Rw);
                     c_iter = wc.w_iter;
                     c_iter' = fr.f_iter;
                     c_off = -1;
                   }
                   :: s.conflicts
             | _ -> ());
          touch s fr ~write name abs key)
        frames

(* ------------------------------------------------------------------ *)
(* Instrumentation entry points (no-ops without an installed sink)     *)
(* ------------------------------------------------------------------ *)

let read name v off =
  match current () with
  | None -> ()
  | Some s -> record s ~write:false name v off

let write name v off =
  match current () with
  | None -> ()
  | Some s -> record s ~write:true name v off

(** The interpreter is entering an execution of directive loop [loop_id]. *)
let loop_begin loop_id =
  match current () with
  | None -> ()
  | Some s ->
      s.frames <-
        { f_loop = loop_id; f_iter = min_int; f_iters = 0;
          f_cells = Hashtbl.create 64 }
        :: s.frames

(** The loop's index takes the value [i] for the next iteration. *)
let loop_iter loop_id i =
  match current () with
  | None -> ()
  | Some s -> (
      match s.frames with
      | fr :: _ when fr.f_loop = loop_id ->
          fr.f_iter <- i;
          fr.f_iters <- fr.f_iters + 1;
          s.iterations <- s.iterations + 1
      | _ -> ())

(** The execution of directive loop [loop_id] completed (or was abandoned
    by an exception); drops its frame and anything stacked above it. *)
let loop_end loop_id =
  match current () with
  | None -> ()
  | Some s ->
      let rec drop = function
        | [] -> s.frames (* unmatched end: leave the stack untouched *)
        | fr :: rest when fr.f_loop = loop_id -> rest
        | _ :: rest -> drop rest
      in
      s.frames <- drop s.frames

(* ---- readers ---- *)

(** All witnesses, in discovery order. *)
let conflicts (s : sink) = List.rev s.conflicts

let iterations (s : sink) = s.iterations
let events (s : sink) = s.events
