(** Interpreter for the Fortran subset, with OpenMP-style parallel
    execution of directive-carrying loops across OCaml 5 domains.

    Execution is staged: each program unit's body is compiled once into
    typed closures ([float], [int] and [bool] evaluators), so the hot path
    allocates almost nothing -- important both for raw speed and because
    the OCaml 5 runtime taxes allocation-heavy code heavily once extra
    domains exist.

    Parallel semantics follow the directives the parallelizer emits:

    - iterations are block-partitioned over a persistent {!Pool} of worker
      domains;
    - PRIVATE names get fresh per-worker storage.  Inside the directive's
      own unit the override is name-keyed; across call boundaries it is
      keyed by *physical storage* instead, so subroutines called from the
      loop body resolve privatized COMMON variables to the worker's copy
      (the paper's treatment of global temporary arrays like [XY] in
      FSMP) while their own locals and formals that merely share a name
      with a privatized variable stay untouched;
    - REDUCTION names accumulate per worker from the identity element and
      merge under a lock at the join;
    - nested parallel regions execute sequentially (one level, like the
      default OpenMP nesting policy).

    The interpreter is strict: out-of-bounds interior subscripts and type
    confusion raise {!Value.Runtime_error}, which the test-suite uses for
    failure-injection tests. *)

open Frontend
open Value

exception Stop_program of string option
exception Return_exn

(** Raised when a runtime guard fires: the step budget ([fuel]) runs out
    or the call-depth limit is exceeded.  Carries a structured diagnostic
    so drivers report a trap instead of hanging or dying raw. *)
exception Trap of Diag.t

let trap fmt =
  Printf.ksprintf (fun s -> raise (Trap (Diag.make Diag.Trap s))) fmt

(* Remaining step budget, shared by every domain of the run. *)
type fuel_cell = { remaining : int Atomic.t; budget : int }

let default_max_depth = 1000

(* ------------------------------------------------------------------ *)
(* Global state and frames                                              *)
(* ------------------------------------------------------------------ *)

type cenv = {
  ce_program : Ast.program;
  ce_unit : Ast.program_unit;
  ce_slots : (string, int) Hashtbl.t;
      (** variable name -> dense per-unit slot index, assigned at compile
          time; every frame of the unit carries a [slots] array indexed by
          these, so the per-access hot path is an array load instead of a
          string-hashing [Hashtbl.find] *)
  mutable ce_nslots : int;
  mutable ce_frozen : bool;
      (** set once the unit's body is compiled: post-freeze compilations
          (dynamic [eval_dims] / argument snapshots, possibly from worker
          domains) must not mutate the slot table, so unknown names get
          slot [-1] and fall back to name lookup *)
}

type global = {
  program : Ast.program;
  commons : (string, view array) Hashtbl.t;  (** block -> member views *)
  common_layout : (string, (string * (string * int)) list) Hashtbl.t;
      (** per unit: member name -> (block, position) *)
  out : Buffer.t;
  out_mutex : Mutex.t;
  threads : int;
  pool : Pool.t;
  code_cache : (string, cstmt array) Hashtbl.t;  (** compiled unit bodies *)
  cenvs : (string, cenv) Hashtbl.t;
      (** per-unit compile environments; populated during the up-front
          precompile and frozen before execution starts *)
  params_const_cache : (string, (string * pconst) list) Hashtbl.t;
      (** per-unit precompiled PARAMETER evaluators, so binding a frame
          does not recompile the constant expressions on every call *)
  profile : (int, prof_cell) Hashtbl.t option;
  fuel : fuel_cell option;  (** step budget; [None] = unlimited *)
  max_depth : int;  (** call-depth limit *)
}

and prof_cell = { mutable pt : float;  (** cumulative seconds *)
                  mutable pn : int  (** executions *) }

and frame = {
  glb : global;
  unit_ : Ast.program_unit;
  vars : (string, view) Hashtbl.t;
  slots : view array;
      (** slot-resolved name cache, indexed by the unit's [cenv] slot
          numbers.  Entries start as the shared {!unresolved} sentinel and
          are filled by the first access through {!resolver} with whatever
          [lookup] returns for this frame — so per-frame semantics
          (privatization overrides, lazily allocated locals, COMMON
          remapping) are untouched; only the repeated string-keyed lookups
          are.  Worker frames get a fresh array: their privatized names
          resolve differently from the parent's. *)
  consts : (string, value) Hashtbl.t;
  overrides : (string, view) Hashtbl.t list;
      (** dynamic privatization stack, innermost first; consulted only in
          the unit that lexically contains the directive — it stops at
          the call boundary *)
  st_overrides : (storage * view) list;
      (** storage-keyed privatization, innermost first: shared COMMON
          storage -> private per-worker copy.  Callee frames re-map
          COMMON members through this by physical identity, so a callee
          local or formal that shares a *name* with a privatized
          variable is never captured *)
  in_parallel : bool;
  depth : int;  (** call nesting depth, checked against [glb.max_depth] *)
  fstk : float array;
      (** per-domain scratch stack: float expressions evaluate into slots
          instead of returning (boxed) floats.  Shared down the call
          chain; workers get their own. *)
}

and cstmt = frame -> unit
and pconst = frame -> value

let fstk_size = 512

(* Distinguished "not yet resolved" slot entry, recognized by physical
   equality.  Never read or written as storage. *)
let unresolved : view = { st = Bs [||]; off = -1; dims = [||] }

(* The compile environment of [u] under [glb].  Environments are created
   (and registered) during the up-front precompile; a miss afterwards
   returns a frozen throwaway so dynamic compilation still works, just
   without slot resolution. *)
let cenv_of (glb : global) (u : Ast.program_unit) : cenv =
  match Hashtbl.find_opt glb.cenvs u.Ast.u_name with
  | Some env when env.ce_unit == u -> env
  | _ ->
      {
        ce_program = glb.program;
        ce_unit = u;
        ce_slots = Hashtbl.create 1;
        ce_nslots = 0;
        ce_frozen = true;
      }

let make_cenv (glb : global) (u : Ast.program_unit) : cenv =
  let env =
    {
      ce_program = glb.program;
      ce_unit = u;
      ce_slots = Hashtbl.create 32;
      ce_nslots = 0;
      ce_frozen = false;
    }
  in
  Hashtbl.replace glb.cenvs u.Ast.u_name env;
  env

let slot_of (env : cenv) name : int =
  match Hashtbl.find_opt env.ce_slots name with
  | Some s -> s
  | None ->
      if env.ce_frozen then -1
      else begin
        let s = env.ce_nslots in
        env.ce_nslots <- s + 1;
        Hashtbl.replace env.ce_slots name s;
        s
      end

(* Charge [n] steps against the run's fuel.  The subset has only counted
   DO loops (no GOTO), so charging each loop's trip count once at entry —
   plus one step per call — bounds total work at O(1) bookkeeping per
   loop execution, leaving the per-iteration hot path untouched. *)
let charge (fr : frame) (n : int) =
  (* chaos: a tripped fuel fault takes the native trap channel, so it is
     indistinguishable from a genuine budget exhaustion downstream *)
  if Fault.check "runtime.interp.fuel" then
    trap "injected fault at runtime.interp.fuel; execution trapped";
  match fr.glb.fuel with
  | None -> ()
  | Some f ->
      let old = Atomic.fetch_and_add f.remaining (-n) in
      if old - n < 0 then
        trap "step budget of %d exhausted; runaway execution trapped"
          f.budget

(* Run a compiled block without allocating an iteration closure. *)
let run_code (code : cstmt array) (fr : frame) =
  for k = 0 to Array.length code - 1 do
    (Array.unsafe_get code k) fr
  done

(* ------------------------------------------------------------------ *)
(* COMMON allocation                                                    *)
(* ------------------------------------------------------------------ *)

let eval_const_int (u : Ast.program_unit) (e : Ast.expr) : int option =
  let env = Analysis.Constprop.parameter_env u in
  let e' = Analysis.Constprop.subst_env env e in
  match Analysis.Simplify.basic_simplify e' with
  | Ast.Int_const n -> Some n
  | _ -> None

let decl_total_size u (d : Ast.decl) : int option =
  if d.Ast.d_dims = [] then Some 1
  else
    List.fold_left
      (fun acc dim ->
        match (acc, dim) with
        | None, _ -> None
        | Some _, Ast.Dim_star -> None
        | Some n, Ast.Dim_expr e -> (
            match eval_const_int u e with
            | Some k when k >= 0 -> Some (n * k)
            | _ -> None))
      (Some 1) d.Ast.d_dims

(* Allocate every COMMON block: per member position, the max constant size
   over all declaring units (shapes may legally differ across units, e.g.
   after linearization). *)
let build_commons (program : Ast.program) =
  let sizes : (string, (int * Ast.dtype) array) Hashtbl.t = Hashtbl.create 8 in
  let layouts = Hashtbl.create 16 in
  List.iter
    (fun (u : Ast.program_unit) ->
      let layout = ref [] in
      List.iter
        (fun (blk, members) ->
          List.iteri
            (fun pos m ->
              layout := (m, (blk, pos)) :: !layout;
              let size =
                match Ast.find_decl u m with
                | Some d -> Option.value ~default:1 (decl_total_size u d)
                | None -> 1
              in
              let ty = Ast.type_of_var u m in
              let arr =
                match Hashtbl.find_opt sizes blk with
                | Some a when Array.length a > pos -> a
                | Some a ->
                    let a' =
                      Array.init (pos + 1) (fun i ->
                          if i < Array.length a then a.(i) else (1, ty))
                    in
                    Hashtbl.replace sizes blk a';
                    a'
                | None ->
                    let a = Array.make (pos + 1) (1, ty) in
                    Hashtbl.replace sizes blk a;
                    a
              in
              let old_size, old_ty = arr.(pos) in
              arr.(pos) <-
                (max old_size size, if old_size = 1 then ty else old_ty))
            members)
        u.u_commons;
      Hashtbl.replace layouts u.u_name !layout)
    program.p_units;
  let commons = Hashtbl.create 8 in
  Hashtbl.iter
    (fun blk arr ->
      Hashtbl.replace commons blk
        (Array.map
           (fun (n, ty) -> { st = alloc_storage ty n; off = 0; dims = [| n |] })
           arr))
    sizes;
  (commons, layouts)

(* ------------------------------------------------------------------ *)
(* Name resolution                                                      *)
(* ------------------------------------------------------------------ *)

let rec find_override stack name =
  match stack with
  | [] -> None
  | tbl :: rest -> (
      match Hashtbl.find_opt tbl name with
      | Some v -> Some v
      | None -> find_override rest name)

(* forward reference: dimension evaluation needs expression evaluation *)
let eval_int_ref : (frame -> Ast.expr -> int) ref =
  ref (fun _ _ -> assert false)

let eval_dims fr (d : Ast.decl) : int array =
  match d.Ast.d_dims with
  | [] -> [||]
  | dims ->
      Array.of_list
        (List.map
           (function
             | Ast.Dim_star -> 1 (* assumed-size: extent bounded by storage *)
             | Ast.Dim_expr e -> max 0 (!eval_int_ref fr e))
           dims)

(* Slow path of [lookup]: COMMON resolution / lazy local allocation. *)
let lookup_slow (fr : frame) name : view =
  match find_override fr.overrides name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt fr.vars name with
      | Some v -> v
      | None -> (
          let layout =
            Option.value ~default:[]
              (Hashtbl.find_opt fr.glb.common_layout fr.unit_.u_name)
          in
          match List.assoc_opt name layout with
          | Some (blk, pos) ->
              let base = (Hashtbl.find fr.glb.commons blk).(pos) in
              let base =
                (* privatized COMMON member: follow the storage to this
                   worker's private copy, whatever this unit calls it *)
                let rec remap = function
                  | [] -> base
                  | (s, p) :: tl ->
                      if same_storage s base.st then p else remap tl
                in
                remap fr.st_overrides
              in
              let dims =
                match Ast.find_decl fr.unit_ name with
                | Some d -> eval_dims fr d
                | None -> [||]
              in
              let v = { base with dims } in
              Hashtbl.replace fr.vars name v;
              v
          | None ->
              let ty = Ast.type_of_var fr.unit_ name in
              let v =
                match Ast.find_decl fr.unit_ name with
                | Some d when d.d_dims <> [] ->
                    let dims = eval_dims fr d in
                    let n = max 1 (Array.fold_left ( * ) 1 dims) in
                    { st = alloc_storage ty n; off = 0; dims }
                | _ -> scalar_view ty
              in
              Hashtbl.replace fr.vars name v;
              v))

(* Resolve a name to a view.  The fast path is a direct hit in the frame
   table with no option allocation.  Frames are constructed so that
   vars-first is always correct: worker frames *remove* privatized names
   from their table (so they fall through to the override stack), and
   callee frames start with formals only (so COMMON members resolve
   through the override stack once and are then cached per frame). *)
let lookup (fr : frame) name : view =
  try Hashtbl.find fr.vars name with Not_found -> lookup_slow fr name

(* Compile-time name resolution: bind [name] to its per-unit slot and
   return a [frame -> view] that reads the frame's slot cache, resolving
   through [lookup] once per frame on first touch.  Frames whose slot
   array predates this slot (or names compiled post-freeze, slot -1)
   fall back to plain lookup — slower, never wrong. *)
let resolver (env : cenv) name : frame -> view =
  let s = slot_of env name in
  if s < 0 then fun fr -> lookup fr name
  else
    fun fr ->
      let slots = fr.slots in
      if s < Array.length slots then begin
        let v = Array.unsafe_get slots s in
        if v != unresolved then v
        else begin
          let w = lookup fr name in
          Array.unsafe_set slots s w;
          w
        end
      end
      else lookup fr name

(* ------------------------------------------------------------------ *)
(* Unboxed element access                                               *)
(* ------------------------------------------------------------------ *)

(* The offset of a scalar view is normally 0, but an array element passed
   by reference binds a dummy scalar to an arbitrary element — including
   one past the end when the caller's subscript was out of range (only
   interior dimensions are checked at the call site).  So scalar access
   is bounds-checked like element access. *)
let scalar_get_f (v : view) =
  let i = v.off in
  match v.st with
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      Array.unsafe_get a i
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      float_of_int (Array.unsafe_get a i)
  | Bs _ -> rerror "logical used as number"

let scalar_get_i (v : view) =
  let i = v.off in
  match v.st with
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      Array.unsafe_get a i
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      int_of_float (Array.unsafe_get a i)
  | Bs _ -> rerror "logical used as integer"

(* 0-based linear offset of [n] subscripts (in [buf]) within view [v];
   interior dimensions are bounds-checked, the final dimension (or a
   linearized single-subscript access) may run to the end of storage. *)
let offset_of (v : view) (buf : int array) (n : int) : int =
  let dims = v.dims in
  let rank = Array.length dims in
  if n = 0 then 0
  else if n = 1 then buf.(0) - 1
  else begin
    if n <> rank then
      rerror "rank mismatch: %d subscripts on rank-%d view" n rank;
    let acc = ref 0 and stride = ref 1 in
    for k = 0 to n - 1 do
      let i = buf.(k) in
      if k < rank - 1 && (i < 1 || i > dims.(k)) then
        rerror "subscript %d out of bounds 1..%d (dim %d)" i dims.(k) (k + 1);
      acc := !acc + ((i - 1) * !stride);
      stride := !stride * dims.(k)
    done;
    !acc
  end

let elem_get_f (v : view) off =
  let i = v.off + off in
  match v.st with
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      Array.unsafe_get a i
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      float_of_int (Array.unsafe_get a i)
  | Bs _ -> rerror "logical used as number"

let elem_get_i (v : view) off =
  let i = v.off + off in
  match v.st with
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      Array.unsafe_get a i
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "load outside storage";
      int_of_float (Array.unsafe_get a i)
  | Bs _ -> rerror "logical used as integer"

let elem_set_f (v : view) off (x : float) =
  let i = v.off + off in
  match v.st with
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "store outside storage";
      Array.unsafe_set a i x
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "store outside storage";
      Array.unsafe_set a i (int_of_float x)
  | Bs _ -> rerror "logical store of number"

let elem_set_i (v : view) off (x : int) =
  let i = v.off + off in
  match v.st with
  | Is a ->
      if i < 0 || i >= Array.length a then rerror "store outside storage";
      Array.unsafe_set a i x
  | Fs a ->
      if i < 0 || i >= Array.length a then rerror "store outside storage";
      Array.unsafe_set a i (float_of_int x)
  | Bs _ -> rerror "logical store of number"

let int_pow x y =
  if y < 0 then
    if x = 1 then 1 else if x = -1 then if y mod 2 = 0 then 1 else -1 else 0
  else begin
    let r = ref 1 in
    for _ = 1 to y do
      r := !r * x
    done;
    !r
  end

(* ------------------------------------------------------------------ *)
(* Typed expression compilation                                         *)
(* ------------------------------------------------------------------ *)

(* A float evaluator writes its result into scratch slot [i]; integer and
   logical evaluators return unboxed immediates directly. *)
type fexp = frame -> int -> unit

type comp = CF of fexp | CI of (frame -> int) | CB of (frame -> bool)

exception Compile_error of string

let cerror fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* forward reference for user-function calls *)
let call_function_ref : (frame -> string -> Ast.expr list -> value) ref =
  ref (fun _ _ _ -> assert false)

let rec compile_expr (env : cenv) (e : Ast.expr) : comp =
  let u = env.ce_unit in
  let is_int = Analysis.Typing.is_int u in
  match e with
  | Ast.Int_const n -> CI (fun _ -> n)
  | Ast.Real_const r -> CF (fun fr i -> Array.unsafe_set fr.fstk i r)
  | Ast.Logical_const b -> CB (fun _ -> b)
  | Ast.Str_const _ -> cerror "string literal in numeric expression"
  | Ast.Var v
    when List.mem_assoc v u.Ast.u_params_const
         && Ast.type_of_var u v <> Ast.Logical -> (
      (* PARAMETER name: keep the dynamic consts probe — while the frame's
         constants are being bound in order, an earlier one may be read
         before later ones exist, falling through to lookup as before *)
      match Ast.type_of_var u v with
      | Ast.Integer ->
          CI
            (fun fr ->
              match Hashtbl.find_opt fr.consts v with
              | Some c -> to_int c
              | None ->
                  let w = lookup fr v in
                  if Trace.on () then Trace.read v w 0;
                  scalar_get_i w)
      | _ ->
          CF
            (fun fr i ->
              Array.unsafe_set fr.fstk i
                (match Hashtbl.find_opt fr.consts v with
                | Some c -> to_float c
                | None ->
                    let w = lookup fr v in
                    if Trace.on () then Trace.read v w 0;
                    scalar_get_f w)))
  | Ast.Var v -> (
      (* not a PARAMETER of this unit (the consts table can never hold
         it), so the probe is compiled away and the view is slot-cached *)
      let res = resolver env v in
      match Ast.type_of_var u v with
      | Ast.Integer ->
          CI
            (fun fr ->
              let w = res fr in
              if Trace.on () then Trace.read v w 0;
              scalar_get_i w)
      | Ast.Logical ->
          CB
            (fun fr ->
              let w = res fr in
              if Trace.on () then Trace.read v w 0;
              match w.st with
              | Bs a ->
                  if w.off < 0 || w.off >= Array.length a then
                    rerror "load outside storage";
                  Array.unsafe_get a w.off
              | _ -> rerror "logical variable %s has numeric storage" v)
      | Ast.Real | Ast.Double | Ast.Character ->
          CF
            (fun fr i ->
              let w = res fr in
              if Trace.on () then Trace.read v w 0;
              Array.unsafe_set fr.fstk i (scalar_get_f w)))
  | Ast.Array_ref (a, idx) ->
      let off = compile_offset env a idx in
      let res = resolver env a in
      if Ast.type_of_var u a = Ast.Integer then
        CI
          (fun fr ->
            let v = res fr in
            let o = off fr v in
            if Trace.on () then Trace.read a v o;
            elem_get_i v o)
      else
        CF
          (fun fr i ->
            let v = res fr in
            let o = off fr v in
            if Trace.on () then Trace.read a v o;
            Array.unsafe_set fr.fstk i (elem_get_f v o))
  | Ast.Func_call (f, args) when Intrinsics.is_intrinsic f ->
      compile_intrinsic env f args
  | Ast.Func_call (f, args) ->
      if is_int e then CI (fun fr -> to_int (!call_function_ref fr f args))
      else
        CF
          (fun fr i ->
            Array.unsafe_set fr.fstk i
              (to_float (!call_function_ref fr f args)))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow) as op, a, b)
    ->
      if is_int e then
        let fa = compile_int env a and fb = compile_int env b in
        CI
          (match op with
          | Ast.Add -> fun fr -> fa fr + fb fr
          | Ast.Sub -> fun fr -> fa fr - fb fr
          | Ast.Mul -> fun fr -> fa fr * fb fr
          | Ast.Div ->
              fun fr ->
                let d = fb fr in
                if d = 0 then rerror "integer division by zero" else fa fr / d
          | Ast.Pow -> fun fr -> int_pow (fa fr) (fb fr)
          | _ -> assert false)
      else
        let fa = compile_float env a and fb = compile_float env b in
        CF
          (match op with
          | Ast.Add ->
              fun fr i ->
                fa fr i;
                fb fr (i + 1);
                Array.unsafe_set fr.fstk i
                  (Array.unsafe_get fr.fstk i +. Array.unsafe_get fr.fstk (i + 1))
          | Ast.Sub ->
              fun fr i ->
                fa fr i;
                fb fr (i + 1);
                Array.unsafe_set fr.fstk i
                  (Array.unsafe_get fr.fstk i -. Array.unsafe_get fr.fstk (i + 1))
          | Ast.Mul ->
              fun fr i ->
                fa fr i;
                fb fr (i + 1);
                Array.unsafe_set fr.fstk i
                  (Array.unsafe_get fr.fstk i *. Array.unsafe_get fr.fstk (i + 1))
          | Ast.Div ->
              fun fr i ->
                fa fr i;
                fb fr (i + 1);
                Array.unsafe_set fr.fstk i
                  (Array.unsafe_get fr.fstk i /. Array.unsafe_get fr.fstk (i + 1))
          | Ast.Pow ->
              fun fr i ->
                fa fr i;
                fb fr (i + 1);
                Array.unsafe_set fr.fstk i
                  (Float.pow (Array.unsafe_get fr.fstk i)
                     (Array.unsafe_get fr.fstk (i + 1)))
          | _ -> assert false)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b)
    ->
      if is_int a && is_int b then
        let fa = compile_int env a and fb = compile_int env b in
        CB
          (match op with
          | Ast.Eq -> fun fr -> fa fr = fb fr
          | Ast.Ne -> fun fr -> fa fr <> fb fr
          | Ast.Lt -> fun fr -> fa fr < fb fr
          | Ast.Le -> fun fr -> fa fr <= fb fr
          | Ast.Gt -> fun fr -> fa fr > fb fr
          | Ast.Ge -> fun fr -> fa fr >= fb fr
          | _ -> assert false)
      else
        let fa = compile_float env a and fb = compile_float env b in
        let cmp2 rel =
          fun fr ->
            fa fr 0;
            fb fr 1;
            rel (Array.unsafe_get fr.fstk 0) (Array.unsafe_get fr.fstk 1)
        in
        CB
          (match op with
          | Ast.Eq -> cmp2 (fun x y -> x = y)
          | Ast.Ne -> cmp2 (fun x y -> x <> y)
          | Ast.Lt -> cmp2 (fun x y -> x < y)
          | Ast.Le -> cmp2 (fun x y -> x <= y)
          | Ast.Gt -> cmp2 (fun x y -> x > y)
          | Ast.Ge -> cmp2 (fun x y -> x >= y)
          | _ -> assert false)
  | Ast.Binop (Ast.And, a, b) ->
      let fa = compile_bool env a and fb = compile_bool env b in
      CB (fun fr -> fa fr && fb fr)
  | Ast.Binop (Ast.Or, a, b) ->
      let fa = compile_bool env a and fb = compile_bool env b in
      CB (fun fr -> fa fr || fb fr)
  | Ast.Unop (Ast.Neg, a) ->
      if is_int e then
        let fa = compile_int env a in
        CI (fun fr -> -fa fr)
      else
        let fa = compile_float env a in
        CF
          (fun fr i ->
            fa fr i;
            Array.unsafe_set fr.fstk i (-.Array.unsafe_get fr.fstk i))
  | Ast.Unop (Ast.Not, a) ->
      let fa = compile_bool env a in
      CB (fun fr -> not (fa fr))
  | Ast.Section (a, _) -> cerror "array section %s reached execution" a

(* Rank-specialized subscript->offset computation; avoids per-access
   buffer allocation for the common ranks. *)
and compile_offset env a idx : frame -> view -> int =
  match List.map (compile_int env) idx with
  | [] -> fun _ _ -> 0
  | [ i1 ] -> fun fr _ -> i1 fr - 1
  | [ i1; i2 ] ->
      fun fr v ->
        let dims = v.dims in
        if Array.length dims <> 2 then
          rerror "rank mismatch: 2 subscripts on rank-%d view %s"
            (Array.length dims) a;
        let x1 = i1 fr and x2 = i2 fr in
        let d0 = Array.unsafe_get dims 0 in
        if x1 < 1 || x1 > d0 then
          rerror "subscript %d out of bounds 1..%d (dim 1 of %s)" x1 d0 a;
        (x1 - 1) + ((x2 - 1) * d0)
  | [ i1; i2; i3 ] ->
      fun fr v ->
        let dims = v.dims in
        if Array.length dims <> 3 then
          rerror "rank mismatch: 3 subscripts on rank-%d view %s"
            (Array.length dims) a;
        let x1 = i1 fr and x2 = i2 fr and x3 = i3 fr in
        let d0 = Array.unsafe_get dims 0 and d1 = Array.unsafe_get dims 1 in
        if x1 < 1 || x1 > d0 then
          rerror "subscript %d out of bounds 1..%d (dim 1 of %s)" x1 d0 a;
        if x2 < 1 || x2 > d1 then
          rerror "subscript %d out of bounds 1..%d (dim 2 of %s)" x2 d1 a;
        (x1 - 1) + ((x2 - 1) * d0) + ((x3 - 1) * d0 * d1)
  | idxc ->
      let idxc = Array.of_list idxc in
      let n = Array.length idxc in
      fun fr v ->
        let buf = Array.make n 0 in
        for k = 0 to n - 1 do
          buf.(k) <- (Array.unsafe_get idxc k) fr
        done;
        offset_of v buf n

and compile_int env e : frame -> int =
  match compile_expr env e with
  | CI f -> f
  | CF f ->
      fun fr ->
        f fr 0;
        int_of_float (Array.unsafe_get fr.fstk 0)
  | CB _ -> cerror "logical value where integer expected"

and compile_float env e : fexp =
  match compile_expr env e with
  | CF f -> f
  | CI f -> fun fr i -> Array.unsafe_set fr.fstk i (float_of_int (f fr))
  | CB _ -> cerror "logical value where number expected"

and compile_bool env e : frame -> bool =
  match compile_expr env e with
  | CB f -> f
  | CI f -> fun fr -> f fr <> 0
  | CF _ -> cerror "numeric value where logical expected"

and compile_intrinsic (env : cenv) f args : comp =
  let all_int = List.for_all (Analysis.Typing.is_int env.ce_unit) args in
  let unary_f g =
    match args with
    | [ a ] ->
        let fa = compile_float env a in
        CF
          (fun fr i ->
            fa fr i;
            Array.unsafe_set fr.fstk i (g (Array.unsafe_get fr.fstk i)))
    | _ -> cerror "%s expects one argument" f
  in
  match (f, args) with
  | ("ABS" | "DABS"), [ a ] ->
      if all_int then
        let fa = compile_int env a in
        CI (fun fr -> abs (fa fr))
      else
        let fa = compile_float env a in
        CF
          (fun fr i ->
            fa fr i;
            Array.unsafe_set fr.fstk i (Float.abs (Array.unsafe_get fr.fstk i)))
  | "IABS", [ a ] ->
      let fa = compile_int env a in
      CI (fun fr -> abs (fa fr))
  | ("MAX" | "MAX0" | "AMAX1" | "DMAX1"), _ :: _ ->
      if all_int && (f = "MAX" || f = "MAX0") then
        let fs = List.map (compile_int env) args in
        CI (fun fr -> List.fold_left (fun acc g -> max acc (g fr)) min_int fs)
      else
        let fs = List.map (compile_float env) args in
        CF
          (fun fr i ->
            Array.unsafe_set fr.fstk i neg_infinity;
            List.iter
              (fun g ->
                g fr (i + 1);
                if Array.unsafe_get fr.fstk (i + 1) > Array.unsafe_get fr.fstk i
                then
                  Array.unsafe_set fr.fstk i (Array.unsafe_get fr.fstk (i + 1)))
              fs)
  | ("MIN" | "MIN0" | "AMIN1" | "DMIN1"), _ :: _ ->
      if all_int && (f = "MIN" || f = "MIN0") then
        let fs = List.map (compile_int env) args in
        CI (fun fr -> List.fold_left (fun acc g -> min acc (g fr)) max_int fs)
      else
        let fs = List.map (compile_float env) args in
        CF
          (fun fr i ->
            Array.unsafe_set fr.fstk i infinity;
            List.iter
              (fun g ->
                g fr (i + 1);
                if Array.unsafe_get fr.fstk (i + 1) < Array.unsafe_get fr.fstk i
                then
                  Array.unsafe_set fr.fstk i (Array.unsafe_get fr.fstk (i + 1)))
              fs)
  | ("MOD" | "DMOD"), [ a; b ] ->
      if all_int then
        let fa = compile_int env a and fb = compile_int env b in
        CI
          (fun fr ->
            let d = fb fr in
            if d = 0 then rerror "MOD by zero" else fa fr mod d)
      else
        let fa = compile_float env a and fb = compile_float env b in
        CF
          (fun fr i ->
            fa fr i;
            fb fr (i + 1);
            Array.unsafe_set fr.fstk i
              (Float.rem (Array.unsafe_get fr.fstk i)
                 (Array.unsafe_get fr.fstk (i + 1))))
  | ("SQRT" | "DSQRT"), _ -> unary_f sqrt
  | ("SIN" | "DSIN"), _ -> unary_f sin
  | ("COS" | "DCOS"), _ -> unary_f cos
  | "TAN", _ -> unary_f tan
  | ("EXP" | "DEXP"), _ -> unary_f exp
  | ("LOG" | "DLOG" | "ALOG"), _ -> unary_f log
  | ("ATAN" | "DATAN"), _ -> unary_f atan
  | "ATAN2", [ a; b ] ->
      let fa = compile_float env a and fb = compile_float env b in
      CF
        (fun fr i ->
          fa fr i;
          fb fr (i + 1);
          Array.unsafe_set fr.fstk i
            (atan2 (Array.unsafe_get fr.fstk i) (Array.unsafe_get fr.fstk (i + 1))))
  | "INT", [ a ] ->
      let fa = compile_float env a in
      CI
        (fun fr ->
          fa fr 0;
          int_of_float (Array.unsafe_get fr.fstk 0))
  | "NINT", [ a ] ->
      let fa = compile_float env a in
      CI
        (fun fr ->
          fa fr 0;
          int_of_float (Float.round (Array.unsafe_get fr.fstk 0)))
  | ("DBLE" | "REAL" | "FLOAT"), [ a ] ->
      let fa = compile_float env a in
      CF fa
  | ("SIGN" | "ISIGN"), [ a; b ] ->
      if all_int then
        let fa = compile_int env a and fb = compile_int env b in
        CI (fun fr -> if fb fr >= 0 then abs (fa fr) else -abs (fa fr))
      else
        let fa = compile_float env a and fb = compile_float env b in
        CF
          (fun fr i ->
            fa fr i;
            fb fr (i + 1);
            let x = Float.abs (Array.unsafe_get fr.fstk i) in
            Array.unsafe_set fr.fstk i
              (if Array.unsafe_get fr.fstk (i + 1) >= 0.0 then x else -.x))
  | _ -> cerror "unknown intrinsic %s/%d" f (List.length args)

(* Boxed evaluation: slow boundaries only (PRINT, PARAMETER values,
   by-value argument snapshots). *)
let eval_boxed (env : cenv) (e : Ast.expr) : frame -> value =
  match e with
  | Ast.Str_const s -> fun _ -> VStr s
  | _ -> (
      match compile_expr env e with
      | CF f ->
          fun fr ->
            f fr 0;
            VReal (Array.unsafe_get fr.fstk 0)
      | CI f -> fun fr -> VInt (f fr)
      | CB f -> fun fr -> VBool (f fr))

(* Dynamic (post-freeze) compilation: adjustable dims, argument
   snapshots.  The unit's frozen cenv assigns no new slots, so these
   compile to plain lookup-based closures — slow path, never racy. *)
let dyn_eval_int fr e = (compile_int (cenv_of fr.glb fr.unit_) e) fr
let () = eval_int_ref := dyn_eval_int

(* ------------------------------------------------------------------ *)
(* Statement compilation                                                *)
(* ------------------------------------------------------------------ *)

(* names a parallel loop body touches; resolved at compile time *)
let touch_names program body =
  List.filter_map
    (fun (a : Analysis.Usedef.access) ->
      if
        Intrinsics.is_intrinsic a.acc_name
        || Ast.find_unit program a.acc_name <> None
      then None
      else Some a.acc_name)
    (Analysis.Usedef.accesses_of_stmts body)
  |> List.sort_uniq compare

let rec compile_stmts (env : cenv) (stmts : Ast.stmt list) : cstmt array =
  Array.of_list (List.map (compile_stmt env) stmts)

and compile_stmt (env : cenv) (s : Ast.stmt) : cstmt =
  let u = env.ce_unit in
  match s.node with
  | Ast.Continue -> fun _ -> ()
  | Ast.Return -> fun _ -> raise Return_exn
  | Ast.Stop msg -> fun _ -> raise (Stop_program msg)
  | Ast.Print es ->
      let fs = List.map (eval_boxed env) es in
      fun fr ->
        let line =
          String.concat " " (List.map (fun f -> string_of_value (f fr)) fs)
        in
        Mutex.lock fr.glb.out_mutex;
        Buffer.add_string fr.glb.out (line ^ "\n");
        Mutex.unlock fr.glb.out_mutex
  | Ast.Call (name, args) -> (
      (* resolve the callee and compile the argument binders now; the
         per-call work left is frame construction.  Anything irregular
         (undefined, non-subroutine, arity mismatch) keeps the dynamic
         path, which raises the same runtime errors as before. *)
      match Ast.find_unit env.ce_program name with
      | Some callee
        when callee.Ast.u_kind = Ast.Subroutine
             && List.length args = List.length callee.Ast.u_params ->
          let binders = List.map (compile_binder env) args in
          fun fr ->
            let nfr = bind_frame ~binders fr callee args in
            let code = unit_code fr callee in
            (try run_code code nfr with Return_exn -> ())
      | _ -> fun fr -> call_subroutine fr name args)
  | Ast.Assign (Ast.Lvar v, e) -> (
      match Ast.find_decl u v with
      | Some d when d.d_dims <> [] ->
          (* whole-array broadcast: one write of the entire object *)
          let f = eval_boxed env e in
          let res = resolver env v in
          fun fr ->
            let x = f fr in
            let w = res fr in
            if Trace.on () then Trace.write v w (-1);
            fill w x
      | _ -> (
          let res = resolver env v in
          match Ast.type_of_var u v with
          | Ast.Integer ->
              let f = compile_int env e in
              fun fr ->
                let x = f fr in
                let w = res fr in
                if Trace.on () then Trace.write v w 0;
                elem_set_i w 0 x
          | Ast.Logical ->
              let f = compile_bool env e in
              fun fr ->
                let x = f fr in
                let w = res fr in
                if Trace.on () then Trace.write v w 0;
                set w [] (VBool x)
          | Ast.Real | Ast.Double | Ast.Character ->
              let f = compile_float env e in
              fun fr ->
                f fr 0;
                let w = res fr in
                if Trace.on () then Trace.write v w 0;
                elem_set_f w 0 (Array.unsafe_get fr.fstk 0)))
  | Ast.Assign (Ast.Larray (a, idx), e) ->
      let off = compile_offset env a idx in
      let res = resolver env a in
      if Ast.type_of_var u a = Ast.Integer then
        let f = compile_int env e in
        fun fr ->
          let x = f fr in
          let v = res fr in
          let o = off fr v in
          if Trace.on () then Trace.write a v o;
          elem_set_i v o x
      else
        let f = compile_float env e in
        fun fr ->
          f fr 0;
          let x = Array.unsafe_get fr.fstk 0 in
          let v = res fr in
          let o = off fr v in
          if Trace.on () then Trace.write a v o;
          elem_set_f v o x
  | Ast.Assign (Ast.Lsection (a, _), _) ->
      fun _ -> rerror "array section %s reached execution" a
  | Ast.If (c, t, e) ->
      let fc = compile_bool env c in
      let ft = compile_stmts env t in
      let fe = compile_stmts env e in
      fun fr -> if fc fr then run_code ft fr else run_code fe fr
  | Ast.Tagged (_, body) ->
      let fb = compile_stmts env body in
      fun fr -> run_code fb fr
  | Ast.Do_loop l -> compile_loop env l

and compile_loop (env : cenv) (l : Ast.do_loop) : cstmt =
  let flo = compile_int env l.lo in
  let fhi = compile_int env l.hi in
  let fstep = compile_int env l.step in
  let fbody = compile_stmts env l.body in
  let touches = lazy (touch_names env.ce_program l.body) in
  let res_idx = resolver env l.index in
  let run_seq fr lo hi step =
    let idx = res_idx fr in
    let tron = Trace.on () in
    (* directive loops open a conflict frame; plain loops only record
       their index writes (an un-privatized inner index is a real shared
       write the enclosing directive loop must answer for) *)
    let tracing = tron && l.parallel <> None in
    if tracing then Trace.loop_begin l.loop_id;
    (try
       let i = ref lo in
       while (step > 0 && !i <= hi) || (step < 0 && !i >= hi) do
         if tracing then Trace.loop_iter l.loop_id !i;
         elem_set_i idx 0 !i;
         if tron then Trace.write l.index idx 0;
         run_code fbody fr;
         i := !i + step
       done;
       elem_set_i idx 0 !i;
       if tron then Trace.write l.index idx 0
     with e ->
       if tracing then Trace.loop_end l.loop_id;
       raise e);
    if tracing then Trace.loop_end l.loop_id
  in
  fun fr ->
    let lo = flo fr and hi = fhi fr and step = fstep fr in
    if step = 0 then rerror "zero DO step";
    (match fr.glb.fuel with
    | None -> ()
    | Some _ ->
        let niter =
          if step > 0 then max 0 (((hi - lo) / step) + 1)
          else max 0 (((lo - hi) / -step) + 1)
        in
        charge fr (niter + 1));
    let profiled = l.parallel <> None && not fr.in_parallel in
    let t0 =
      match fr.glb.profile with
      | Some _ when profiled -> Unix.gettimeofday ()
      | _ -> 0.0
    in
    (match l.parallel with
    | Some omp when (not fr.in_parallel) && fr.glb.threads > 1 ->
        exec_parallel fr l omp fbody (Lazy.force touches) ~lo ~hi ~step
    | _ -> run_seq fr lo hi step);
    match fr.glb.profile with
    | Some tbl when profiled -> (
        let dt = Unix.gettimeofday () -. t0 in
        match Hashtbl.find_opt tbl l.loop_id with
        | Some c ->
            c.pt <- c.pt +. dt;
            c.pn <- c.pn + 1
        | None -> Hashtbl.replace tbl l.loop_id { pt = dt; pn = 1 })
    | _ -> ()

and exec_parallel fr (l : Ast.do_loop) (omp : Ast.omp) fbody touches ~lo ~hi
    ~step =
  let niter =
    if step > 0 then max 0 (((hi - lo) / step) + 1)
    else max 0 (((lo - hi) / -step) + 1)
  in
  if niter = 0 then ()
  else begin
    let nw = min fr.glb.threads (max 1 niter) in
    (* pre-touch so lazily-allocated locals exist in the parent frame
       before per-worker copies are made *)
    List.iter
      (fun name ->
        match Hashtbl.find_opt fr.consts name with
        | Some _ -> ()
        | None -> ignore (lookup fr name))
      touches;
    let red_base =
      List.map (fun (op, name) -> (op, name, lookup fr name)) omp.omp_reductions
    in
    let merge_mutex = Mutex.create () in
    let worker w =
      let per = (niter + nw - 1) / nw in
      let first = w * per and last = min niter ((w + 1) * per) in
      if first >= last then ()
      else begin
        let priv_tbl = Hashtbl.create 8 in
        let st_over = ref fr.st_overrides in
        let mk_private name =
          let orig = lookup fr name in
          let p = fresh_like orig in
          Hashtbl.replace priv_tbl name p;
          st_over := (orig.st, p) :: !st_over
        in
        List.iter mk_private omp.omp_private;
        mk_private l.index;
        List.iter
          (fun (op, name, view) ->
            let p = fresh_like view in
            let ident =
              match (op, view.st) with
              | Ast.Rsum, Fs _ -> VReal 0.0
              | Ast.Rsum, _ -> VInt 0
              | Ast.Rprod, Fs _ -> VReal 1.0
              | Ast.Rprod, _ -> VInt 1
              | Ast.Rmax, Fs _ -> VReal neg_infinity
              | Ast.Rmax, _ -> VInt min_int
              | Ast.Rmin, Fs _ -> VReal infinity
              | Ast.Rmin, _ -> VInt max_int
            in
            set p [] ident;
            Hashtbl.replace priv_tbl name p;
            st_over := (view.st, p) :: !st_over)
          red_base;
        let wfr =
          {
            fr with
            overrides = priv_tbl :: fr.overrides;
            st_overrides = !st_over;
            in_parallel = true;
            vars = Hashtbl.copy fr.vars;
            (* fresh, all-unresolved: privatized names must re-resolve
               through the override stack, not reuse the parent's cached
               shared views *)
            slots = Array.make (Array.length fr.slots) unresolved;
            fstk = Array.make fstk_size 0.0;
          }
        in
        List.iter
          (fun n -> Hashtbl.remove wfr.vars n)
          (l.index :: omp.omp_private);
        List.iter (fun (_, n, _) -> Hashtbl.remove wfr.vars n) red_base;
        let idx = Hashtbl.find priv_tbl l.index in
        for k = first to last - 1 do
          elem_set_i idx 0 (lo + (k * step));
          run_code fbody wfr
        done;
        Mutex.lock merge_mutex;
        List.iter
          (fun (op, name, view) ->
            ignore name;
            let p = Hashtbl.find priv_tbl name in
            let cur = get view [] and mine = get p [] in
            let merged =
              match op with
              | Ast.Rsum -> arith Ast.Add cur mine
              | Ast.Rprod -> arith Ast.Mul cur mine
              | Ast.Rmax -> if to_float mine > to_float cur then mine else cur
              | Ast.Rmin -> if to_float mine < to_float cur then mine else cur
            in
            set view [] merged)
          red_base;
        Mutex.unlock merge_mutex
      end
    in
    let label =
      Printf.sprintf "parallel loop %d of unit %s" l.loop_id fr.unit_.u_name
    in
    (try Pool.parallel_for ~label fr.glb.pool ~chunks:nw worker
     with Pool.Worker_failure (lbl, e) -> (
       (* surface the dead worker's exception with the owning loop id,
          preserving the kinds drivers dispatch on *)
       match e with
       | Stop_program _ | Return_exn -> raise e
       | Trap d ->
           raise
             (Trap
                (Diag.make ?loc:d.Diag.d_loc ~severity:d.Diag.d_severity
                   Diag.Trap
                   (Printf.sprintf "%s (in %s)" d.Diag.d_message lbl)))
       | Runtime_error m -> rerror "%s (in %s)" m lbl
       | e -> rerror "worker died in %s: %s" lbl (Printexc.to_string e)));
    let idx = lookup fr l.index in
    elem_set_i idx 0 (lo + (niter * step))
  end

(* ------------------------------------------------------------------ *)
(* Calls                                                                *)
(* ------------------------------------------------------------------ *)

(* By-value argument snapshot: a fresh scalar view holding the value. *)
and snapshot_view (value : value) : view =
  let ty =
    match value with
    | VInt _ -> Ast.Integer
    | VReal _ -> Ast.Double
    | VBool _ -> Ast.Logical
    | VStr _ -> Ast.Character
  in
  let view = scalar_view ty in
  set view [] value;
  view

(* Compile one actual argument of a CALL into a [caller frame -> view]
   binder, mirroring [bind_frame]'s dynamic dispatch: by-reference for
   variables and array elements the caller knows, by-value snapshot
   otherwise.  The subscript evaluators and the by-value expression are
   compiled once here instead of on every call. *)
and compile_binder (env : cenv) (actual : Ast.expr) : frame -> view =
  let u = env.ce_unit in
  match actual with
  | Ast.Var name when not (List.mem_assoc name u.Ast.u_params_const) ->
      resolver env name
  | Ast.Array_ref (name, idx) ->
      let static_array = Ast.is_array u name in
      let res = resolver env name in
      let idxc = Array.of_list (List.map (compile_int env) idx) in
      let n = Array.length idxc in
      let boxed = eval_boxed env actual in
      fun fr ->
        if static_array || Hashtbl.mem fr.vars name then begin
          let base = res fr in
          let buf = Array.make n 0 in
          for k = 0 to n - 1 do
            buf.(k) <- (Array.unsafe_get idxc k) fr
          done;
          { base with off = base.off + offset_of base buf n; dims = [||] }
        end
        else snapshot_view (boxed fr)
  | e ->
      let boxed = eval_boxed env e in
      fun fr -> snapshot_view (boxed fr)

and unit_code (fr : frame) (callee : Ast.program_unit) : cstmt array =
  match Hashtbl.find_opt fr.glb.code_cache callee.u_name with
  | Some c -> c
  | None ->
      let c = compile_stmts (cenv_of fr.glb callee) callee.u_body in
      Hashtbl.replace fr.glb.code_cache callee.u_name c;
      c

(* [eval_fr] is the frame used to evaluate actual arguments.  For CALL
   statements it is the caller itself (statement position: scratch slots
   are free); for function invocations it must carry a fresh scratch so
   that argument evaluation cannot clobber the caller's live slots. *)
(* Per-unit PARAMETER evaluators, compiled once per run during the
   up-front precompile.  A cache miss (possible only for units outside
   [program.p_units]) compiles without touching the shared table, which
   worker domains must not mutate. *)
and params_const_code (glb : global) (callee : Ast.program_unit) :
    (string * pconst) list =
  match Hashtbl.find_opt glb.params_const_cache callee.u_name with
  | Some l -> l
  | None ->
      let env = cenv_of glb callee in
      List.map (fun (n, e) -> (n, eval_boxed env e)) callee.u_params_const

and bind_frame ?eval_fr ?binders (fr : frame) (callee : Ast.program_unit)
    (args : Ast.expr list) : frame =
  let efr = match eval_fr with Some f -> f | None -> fr in
  let depth = fr.depth + 1 in
  if depth > fr.glb.max_depth then
    trap "call depth limit of %d exceeded calling %s; runaway recursion \
          trapped"
      fr.glb.max_depth callee.u_name;
  charge fr 1;
  let nfr =
    {
      glb = fr.glb;
      unit_ = callee;
      vars = Hashtbl.create 16;
      consts = Hashtbl.create 4;
      slots = Array.make (cenv_of fr.glb callee).ce_nslots unresolved;
      (* name-keyed overrides stop here: the callee's locals and formals
         are distinct variables even when they share a privatized name.
         Privatized COMMON follows the storage via [st_overrides]. *)
      overrides = [];
      st_overrides = fr.st_overrides;
      in_parallel = fr.in_parallel;
      depth;
      fstk = fr.fstk;
    }
  in
  List.iter
    (fun (n, f) -> Hashtbl.replace nfr.consts n (f nfr))
    (params_const_code fr.glb callee);
  if List.length args <> List.length callee.u_params then
    rerror "call to %s: arity mismatch" callee.u_name;
  (match binders with
  | Some bs ->
      (* precompiled CALL path: each binder already encodes the
         by-reference / by-value dispatch against the caller's frame *)
      List.iter2
        (fun formal b -> Hashtbl.replace nfr.vars formal (b fr))
        callee.u_params bs
  | None ->
      List.iter2
        (fun formal actual ->
          let v =
            match actual with
            | Ast.Var name when Hashtbl.find_opt fr.consts name = None ->
                lookup fr name
            | Ast.Array_ref (name, idx)
              when Ast.is_array fr.unit_ name
                   || Hashtbl.find_opt fr.vars name <> None ->
                let base = lookup fr name in
                let n = List.length idx in
                let buf = Array.make n 0 in
                List.iteri (fun k e -> buf.(k) <- dyn_eval_int efr e) idx;
                { base with off = base.off + offset_of base buf n; dims = [||] }
            | e -> snapshot_view ((eval_boxed (cenv_of fr.glb fr.unit_) e) efr)
          in
          Hashtbl.replace nfr.vars formal v)
        callee.u_params args);
  (* reshape formal arrays per the callee's declarations (adjustable dims
     evaluated now, with scalar formals already bound) *)
  List.iter
    (fun formal ->
      match Ast.find_decl callee formal with
      | Some d when d.d_dims <> [] ->
          let base = Hashtbl.find nfr.vars formal in
          let dims = eval_dims nfr d in
          Hashtbl.replace nfr.vars formal { base with dims }
      | _ -> ())
    callee.u_params;
  (* constant evaluation or reshaping above may have resolved slots to
     views that were since rebound in [vars]; drop any cached entries so
     the body's first access re-resolves against the final bindings *)
  Array.fill nfr.slots 0 (Array.length nfr.slots) unresolved;
  nfr

and call_subroutine fr name args =
  match Ast.find_unit fr.glb.program name with
  | Some callee when callee.u_kind = Ast.Subroutine ->
      let nfr = bind_frame fr callee args in
      let code = unit_code fr callee in
      (try run_code code nfr with Return_exn -> ())
  | Some _ -> rerror "CALL to non-subroutine %s" name
  | None -> rerror "CALL to undefined subroutine %s" name

and call_function fr name args : value =
  match Ast.find_unit fr.glb.program name with
  | Some callee -> (
      match callee.u_kind with
      | Ast.Function ty ->
          (* functions are invoked mid-expression: the caller may hold live
             values in low scratch slots, so both the argument evaluation
             and the callee body get their own stack *)
          let fresh = Array.make fstk_size 0.0 in
          let eval_fr = { fr with fstk = fresh } in
          let nfr = { (bind_frame ~eval_fr fr callee args) with fstk = fresh } in
          Hashtbl.replace nfr.vars name (scalar_view ty);
          let code = unit_code fr callee in
          (try run_code code nfr with Return_exn -> ());
          get (Hashtbl.find nfr.vars name) []
      | _ -> rerror "function call to non-function %s" name)
  | None -> rerror "call to undefined function %s" name

let () = call_function_ref := call_function

(* ------------------------------------------------------------------ *)
(* Entry                                                                *)
(* ------------------------------------------------------------------ *)

(* Flatten a storage into floats for state comparison. *)
let storage_floats = function
  | Fs a -> Array.copy a
  | Is a -> Array.map float_of_int a
  | Bs a -> Array.map (fun b -> if b then 1.0 else 0.0) a

(** State keys (as produced by {!run_program_state}) of COMMON members
    named in some PRIVATE clause.  Their contents after the loop are
    unspecified — each worker wrote only its own copy while a serial run
    writes the shared storage — so a differential state comparison must
    ignore them.  REDUCTION names are {e not} included: they merge back
    into shared storage at the join and stay comparable. *)
let private_state_keys (program : Ast.program) : string list =
  let _, layouts = build_commons program in
  let keys = Hashtbl.create 8 in
  List.iter
    (fun (u : Ast.program_unit) ->
      let layout =
        Option.value ~default:[] (Hashtbl.find_opt layouts u.Ast.u_name)
      in
      List.iter
        (fun (l : Ast.do_loop) ->
          match l.Ast.parallel with
          | Some omp ->
              List.iter
                (fun n ->
                  match List.assoc_opt n layout with
                  | Some (blk, pos) ->
                      Hashtbl.replace keys
                        (Printf.sprintf "%s/%d" blk pos)
                        ()
                  | None -> ())
                omp.Ast.omp_private
          | None -> ())
        (Ast.collect_loops u.Ast.u_body))
    program.p_units;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) keys [])

(** Execute a program's MAIN unit; returns everything it printed plus the
    final contents of every COMMON block (member by member, as floats) --
    the strongest observable state two runs can be compared on. *)
let run_program_state ?(threads = 1) ?profile ?fuel
    ?(max_depth = default_max_depth) (program : Ast.program) :
    string * (string * float array) list =
  let commons, common_layout = build_commons program in
  let pool = Pool.create threads in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let glb =
        {
          program;
          commons;
          common_layout;
          out = Buffer.create 1024;
          out_mutex = Mutex.create ();
          threads;
          pool;
          code_cache = Hashtbl.create 16;
          cenvs = Hashtbl.create 16;
          params_const_cache = Hashtbl.create 16;
          profile;
          fuel =
            Option.map
              (fun n -> { remaining = Atomic.make n; budget = n })
              fuel;
          max_depth;
        }
      in
      let main =
        match
          List.find_opt (fun u -> u.Ast.u_kind = Ast.Main) program.p_units
        with
        | Some u -> u
        | None -> rerror "program has no MAIN unit"
      in
      (* precompile every unit up front (MAIN included): code cache, slot
         tables and PARAMETER evaluators are then read-only, so worker
         domains may safely invoke (pure) functions concurrently and slot
         resolution never mutates a shared table mid-run *)
      List.iter
        (fun (u : Ast.program_unit) ->
          let env = make_cenv glb u in
          Hashtbl.replace glb.code_cache u.Ast.u_name
            (compile_stmts env u.Ast.u_body);
          Hashtbl.replace glb.params_const_cache u.Ast.u_name
            (List.map
               (fun (n, e) -> (n, eval_boxed env e))
               u.Ast.u_params_const))
        program.p_units;
      Hashtbl.iter (fun _ env -> env.ce_frozen <- true) glb.cenvs;
      let fr =
        {
          glb;
          unit_ = main;
          vars = Hashtbl.create 16;
          consts = Hashtbl.create 4;
          slots = Array.make (cenv_of glb main).ce_nslots unresolved;
          overrides = [];
          st_overrides = [];
          in_parallel = false;
          depth = 0;
          fstk = Array.make fstk_size 0.0;
        }
      in
      List.iter
        (fun (n, f) -> Hashtbl.replace fr.consts n (f fr))
        (params_const_code glb main);
      Array.fill fr.slots 0 (Array.length fr.slots) unresolved;
      let code =
        match Hashtbl.find_opt glb.code_cache main.u_name with
        | Some c -> c
        | None -> compile_stmts (cenv_of glb main) main.u_body
      in
      (try run_code code fr with
      | Return_exn -> ()
      | Stop_program (Some msg) ->
          Buffer.add_string glb.out ("STOP: " ^ msg ^ "\n")
      | Stop_program None -> ());
      let state =
        Hashtbl.fold
          (fun blk views acc ->
            Array.to_list
              (Array.mapi
                 (fun i (v : view) ->
                   (Printf.sprintf "%s/%d" blk i, storage_floats v.st))
                 views)
            @ acc)
          commons []
        |> List.sort compare
      in
      (Buffer.contents glb.out, state))

(** Execute a program's MAIN unit; returns everything it printed.
    [profile], when given, accumulates per-loop-id wall time of top-level
    directive-carrying loops (used by the empirical tuner). *)
let run_program ?threads ?profile ?fuel ?max_depth (program : Ast.program) :
    string =
  fst (run_program_state ?threads ?profile ?fuel ?max_depth program)
