(** Runtime storage model.

    Fortran semantics demand raw, aliasable storage: COMMON blocks are
    shared memory, and passing [A(i,j)] to a subroutine hands over a
    by-reference *view* starting at that element, which the callee may
    re-shape through its own declaration (adjustable and assumed-size
    arrays).  Scalars are 1-element views so that by-reference scalar
    arguments work uniformly. *)

type storage =
  | Fs of float array
  | Is of int array
  | Bs of bool array

type view = {
  st : storage;
  off : int;  (** element offset of this view's first element *)
  dims : int array;  (** column-major extents; [||] for scalars *)
}

type value = VInt of int | VReal of float | VBool of bool | VStr of string

exception Runtime_error of string

let rerror fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let storage_len = function
  | Fs a -> Array.length a
  | Is a -> Array.length a
  | Bs a -> Array.length a

(** Physical identity of the underlying array — the notion of "same
    variable" that survives re-declaration of a COMMON member under a
    different name (or shape) in another program unit. *)
let same_storage (a : storage) (b : storage) =
  match (a, b) with
  | Fs x, Fs y -> x == y
  | Is x, Is y -> x == y
  | Bs x, Bs y -> x == y
  | _ -> false

let alloc_storage (ty : Frontend.Ast.dtype) n : storage =
  match ty with
  | Frontend.Ast.Integer -> Is (Array.make (max 1 n) 0)
  | Frontend.Ast.Real | Frontend.Ast.Double -> Fs (Array.make (max 1 n) 0.0)
  | Frontend.Ast.Logical -> Bs (Array.make (max 1 n) false)
  | Frontend.Ast.Character -> Is (Array.make (max 1 n) 0)

let scalar_view ty : view = { st = alloc_storage ty 1; off = 0; dims = [||] }

let fresh_like (v : view) : view =
  let n = max 1 (Array.fold_left ( * ) 1 v.dims) in
  let st =
    match v.st with
    | Fs _ -> Fs (Array.make n 0.0)
    | Is _ -> Is (Array.make n 0)
    | Bs _ -> Bs (Array.make n false)
  in
  { st; off = 0; dims = v.dims }

(** Copy the [n] accessible elements of [src] into [dst] (used to seed
    first-private semantics and merge last values). *)
let blit_view (src : view) (dst : view) =
  let n =
    min
      (storage_len src.st - src.off)
      (storage_len dst.st - dst.off)
  in
  match (src.st, dst.st) with
  | Fs a, Fs b -> Array.blit a src.off b dst.off n
  | Is a, Is b -> Array.blit a src.off b dst.off n
  | Bs a, Bs b -> Array.blit a src.off b dst.off n
  | _ -> rerror "blit between views of different element types"

(* 0-based linear element index of subscripts [idx] in view [v]. *)
let element_index (v : view) (idx : int list) : int =
  let dims = v.dims in
  let rank = Array.length dims in
  let nidx = List.length idx in
  if nidx = 0 then 0
  else begin
    (* allow a 1-subscript reference into any view (linearized access),
       and references matching the declared rank *)
    if nidx <> rank && nidx <> 1 then
      rerror "rank mismatch: %d subscripts for rank-%d view" nidx rank;
    (* interior dims are bounds-checked; the final dim (or a linearized
       single-subscript access) may legally run to the end of storage *)
    let rec go k stride acc = function
      | [] -> acc
      | i :: rest ->
          let extent = if k < rank then dims.(k) else 1 in
          if nidx = rank && k < rank - 1 && (i < 1 || i > extent) then
            rerror "subscript %d out of bounds 1..%d (dim %d)" i extent (k + 1);
          go (k + 1) (stride * extent) (acc + ((i - 1) * stride)) rest
    in
    go 0 1 0 idx
  end

let get (v : view) (idx : int list) : value =
  let i = v.off + element_index v idx in
  if i < 0 || i >= storage_len v.st then
    rerror "access outside storage (index %d, size %d)" i (storage_len v.st);
  match v.st with
  | Fs a -> VReal a.(i)
  | Is a -> VInt a.(i)
  | Bs a -> VBool a.(i)

let set (v : view) (idx : int list) (x : value) =
  let i = v.off + element_index v idx in
  if i < 0 || i >= storage_len v.st then
    rerror "store outside storage (index %d, size %d)" i (storage_len v.st);
  match (v.st, x) with
  | Fs a, VReal r -> a.(i) <- r
  | Fs a, VInt n -> a.(i) <- float_of_int n
  | Is a, VInt n -> a.(i) <- n
  | Is a, VReal r -> a.(i) <- int_of_float r
  | Bs a, VBool b -> a.(i) <- b
  | Is a, VBool b -> a.(i) <- (if b then 1 else 0)
  | _ -> rerror "type mismatch in store"

(** Fill every accessible element of the view. *)
let fill (v : view) (x : value) =
  let n = storage_len v.st - v.off in
  let total = if v.dims = [||] then 1 else min n (Array.fold_left ( * ) 1 v.dims) in
  for i = v.off to v.off + total - 1 do
    match (v.st, x) with
    | Fs a, VReal r -> a.(i) <- r
    | Fs a, VInt k -> a.(i) <- float_of_int k
    | Is a, VInt k -> a.(i) <- k
    | Is a, VReal r -> a.(i) <- int_of_float r
    | Bs a, VBool b -> a.(i) <- b
    | _ -> rerror "type mismatch in fill"
  done

(* ---- value arithmetic ---- *)

let to_float = function
  | VReal r -> r
  | VInt n -> float_of_int n
  | VBool _ | VStr _ -> rerror "numeric value expected"

let to_int = function
  | VInt n -> n
  | VReal r -> int_of_float r
  | VBool _ | VStr _ -> rerror "integer value expected"

let to_bool = function
  | VBool b -> b
  | VInt n -> n <> 0
  | _ -> rerror "logical value expected"

let is_real = function VReal _ -> true | _ -> false

let arith op a b =
  if is_real a || is_real b then
    let x = to_float a and y = to_float b in
    VReal
      (match op with
      | Frontend.Ast.Add -> x +. y
      | Frontend.Ast.Sub -> x -. y
      | Frontend.Ast.Mul -> x *. y
      | Frontend.Ast.Div -> x /. y
      | Frontend.Ast.Pow -> x ** y
      | _ -> rerror "arith: not an arithmetic operator")
  else
    let x = to_int a and y = to_int b in
    match op with
    | Frontend.Ast.Add -> VInt (x + y)
    | Frontend.Ast.Sub -> VInt (x - y)
    | Frontend.Ast.Mul -> VInt (x * y)
    | Frontend.Ast.Div ->
        if y = 0 then rerror "integer division by zero" else VInt (x / y)
    | Frontend.Ast.Pow ->
        if y < 0 then VReal (float_of_int x ** float_of_int y)
        else begin
          let rec pw acc i = if i = 0 then acc else pw (acc * x) (i - 1) in
          VInt (pw 1 y)
        end
    | _ -> rerror "arith: not an arithmetic operator"

let compare_vals op a b =
  let c =
    if is_real a || is_real b then compare (to_float a) (to_float b)
    else compare (to_int a) (to_int b)
  in
  VBool
    (match op with
    | Frontend.Ast.Eq -> c = 0
    | Frontend.Ast.Ne -> c <> 0
    | Frontend.Ast.Lt -> c < 0
    | Frontend.Ast.Le -> c <= 0
    | Frontend.Ast.Gt -> c > 0
    | Frontend.Ast.Ge -> c >= 0
    | _ -> rerror "compare: not a relational operator")

let string_of_value = function
  | VInt n -> string_of_int n
  | VReal r -> Printf.sprintf "%.6g" r
  | VBool true -> "T"
  | VBool false -> "F"
  | VStr s -> s
