(** Persistent task-queue worker pool — {!Pool}'s long-lived sibling.

    {!Pool} is fork-join: a caller publishes a fixed chunk range, every
    participant drains it, the caller blocks until the last chunk
    lands.  That shape fits a parallel loop but not a server: the
    analysis daemon accepts connections forever, each connection has
    its own lifetime, and the acceptor must never block on a slow
    client.  This module provides the missing shape — a fixed set of
    worker domains pulling items off a bounded queue:

    - {b Bounded admission}: {!submit} enqueues up to [max_pending]
      in-flight items (queued plus executing) and {e sheds} beyond
      that, returning {!Shed} so the caller can answer with a
      structured overload error instead of queuing forever.  The bound
      is the daemon's [--max-inflight] admission control.
    - {b Failure containment}, layered exactly like {!Pool}: the
      handler runs under a per-item barrier (an escaping exception
      discards that item and is counted, the worker survives), and a
      worker whose loop itself dies — possible only at the injected
      ["runtime.workers.worker"] fault point — is recorded and lazily
      respawned by the next {!submit}, so a killed domain degrades one
      item, not the pool.
    - {b Idempotent shutdown}: {!shutdown} stops the workers after
      their current item, discards anything still queued (via the
      caller's [discard] cleanup, e.g. closing a connection so the
      peer sees EOF), and joins the domains.  {!submit} afterwards
      sheds.

    With [size = 0] no domains are spawned and {!submit} runs the
    handler synchronously on the caller — the sequential-serving
    escape hatch, useful for tests and single-core hosts. *)

type verdict =
  | Accepted  (** queued (or, with [size = 0], already handled) *)
  | Shed  (** at [max_pending] in-flight items, or shut down *)

(** Lifetime counters, for the daemon's [stats] op and tests. *)
type stats = {
  accepted : int;  (** items admitted by {!submit} *)
  shed : int;  (** items refused at the admission bound *)
  handler_errors : int;  (** items whose handler raised *)
  deaths : int;  (** worker domains whose loop died *)
  respawns : int;  (** replacement domains spawned *)
  inflight : int;  (** currently queued + executing *)
  workers : int;  (** live worker domains *)
}

type 'a t = {
  m : Mutex.t;
  cv : Condition.t;  (** signaled on submit and on shutdown *)
  queue : 'a Queue.t;
  handler : 'a -> unit;
  discard : 'a -> unit;  (** cleanup for shed / abandoned items *)
  max_pending : int;
  size : int;
  mutable inflight : int;
  mutable stop : bool;
  mutable workers : (int * unit Domain.t) list;  (** slot, domain *)
  mutable dead : int list;  (** slots awaiting respawn *)
  mutable n_accepted : int;
  mutable n_shed : int;
  mutable n_handler_errors : int;
  mutable n_deaths : int;
  mutable n_respawns : int;
}

let m_deaths =
  Frontend.Metrics.counter "parinline_conn_worker_deaths_total"
    ~help:"connection-worker domains whose loop died"

let m_respawns_total =
  Frontend.Metrics.counter "parinline_conn_worker_respawns_total"
    ~help:"connection-worker domains respawned after a death"

(* Never let an item's cleanup take the pool down. *)
let discard_quiet (p : 'a t) item = try p.discard item with _ -> ()

(* The per-item barrier: a handler exception is counted and the worker
   keeps serving; only the injected worker fault kills the loop. *)
let worker_loop (p : 'a t) (slot : int) () =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.m;
    while Queue.is_empty p.queue && not p.stop do
      Condition.wait p.cv p.m
    done;
    if p.stop then begin
      Mutex.unlock p.m;
      continue_ := false
    end
    else begin
      let item = Queue.pop p.queue in
      Mutex.unlock p.m;
      (* the death site is checked outside the handler barrier, so a
         fault injected inside the handler (e.g. server.conn) degrades
         the item, not the domain *)
      (match Frontend.Fault.point "runtime.workers.worker" with
      | exception _ ->
          discard_quiet p item;
          Frontend.Metrics.incr m_deaths;
          Mutex.lock p.m;
          p.inflight <- p.inflight - 1;
          p.n_deaths <- p.n_deaths + 1;
          p.dead <- slot :: p.dead;
          Mutex.unlock p.m;
          continue_ := false
      | () -> (
          match p.handler item with
          | () ->
              Mutex.lock p.m;
              p.inflight <- p.inflight - 1;
              Mutex.unlock p.m
          | exception _ ->
              discard_quiet p item;
              Mutex.lock p.m;
              p.inflight <- p.inflight - 1;
              p.n_handler_errors <- p.n_handler_errors + 1;
              Mutex.unlock p.m))
    end
  done

let create ?(max_pending = 64) ~size ~handler ~discard () : 'a t =
  let p =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      handler;
      discard;
      max_pending = max 1 max_pending;
      size = max 0 size;
      inflight = 0;
      stop = false;
      workers = [];
      dead = [];
      n_accepted = 0;
      n_shed = 0;
      n_handler_errors = 0;
      n_deaths = 0;
      n_respawns = 0;
    }
  in
  p.workers <-
    List.init (max 0 size) (fun i -> (i, Domain.spawn (worker_loop p i)));
  p

(* Lazily replace workers that died since the last submit; the dead
   domain's loop has exited, so the join is immediate. *)
let heal (p : 'a t) =
  Mutex.lock p.m;
  let dead = p.dead in
  p.dead <- [];
  let gone, kept = List.partition (fun (s, _) -> List.mem s dead) p.workers in
  p.workers <- kept;
  Mutex.unlock p.m;
  List.iter (fun (_, d) -> Domain.join d) gone;
  List.iter
    (fun slot ->
      let d = Domain.spawn (worker_loop p slot) in
      Frontend.Metrics.incr m_respawns_total;
      Mutex.lock p.m;
      p.workers <- (slot, d) :: p.workers;
      p.n_respawns <- p.n_respawns + 1;
      Mutex.unlock p.m)
    dead

(** Offer [item] to the pool.  {!Accepted} means a worker will run the
    handler on it (synchronously, with [size = 0]); {!Shed} means the
    in-flight bound (or shutdown) refused it — the item is NOT
    discarded, the caller still owns it and answers the overload. *)
let submit (p : 'a t) (item : 'a) : verdict =
  if p.size > 0 then heal p;
  Mutex.lock p.m;
  if p.stop || p.inflight >= p.max_pending then begin
    p.n_shed <- p.n_shed + 1;
    Mutex.unlock p.m;
    Shed
  end
  else begin
    p.inflight <- p.inflight + 1;
    p.n_accepted <- p.n_accepted + 1;
    if p.size = 0 then begin
      Mutex.unlock p.m;
      (* sequential mode: the caller is the worker *)
      (match p.handler item with
      | () -> ()
      | exception _ ->
          discard_quiet p item;
          Mutex.lock p.m;
          p.n_handler_errors <- p.n_handler_errors + 1;
          Mutex.unlock p.m);
      Mutex.lock p.m;
      p.inflight <- p.inflight - 1;
      Mutex.unlock p.m;
      Accepted
    end
    else begin
      Queue.push item p.queue;
      Condition.signal p.cv;
      Mutex.unlock p.m;
      Accepted
    end
  end

let stats (p : 'a t) : stats =
  Mutex.lock p.m;
  let s =
    {
      accepted = p.n_accepted;
      shed = p.n_shed;
      handler_errors = p.n_handler_errors;
      deaths = p.n_deaths;
      respawns = p.n_respawns;
      inflight = p.inflight;
      workers = List.length p.workers;
    }
  in
  Mutex.unlock p.m;
  s

(** Stop the workers after their current item, discard whatever is
    still queued, and join the domains.  Idempotent. *)
let shutdown (p : 'a t) =
  Mutex.lock p.m;
  if p.stop then Mutex.unlock p.m
  else begin
    p.stop <- true;
    let abandoned = Queue.fold (fun acc it -> it :: acc) [] p.queue in
    Queue.clear p.queue;
    p.inflight <- p.inflight - List.length abandoned;
    Condition.broadcast p.cv;
    Mutex.unlock p.m;
    List.iter (discard_quiet p) abandoned;
    List.iter (fun (_, d) -> Domain.join d) p.workers;
    p.workers <- []
  end
