(** Verdict-guided, demand-driven inlining planner.

    The paper's central claim is that inlining pays off for
    parallelization only when it is *targeted*: whole-program inlining
    explodes code size while most call sites never block a loop.  PR 4's
    verdicts record, per serial loop, exactly which callee is the opaque
    blocker, and PR 5's unit-independent dependence memo cache makes
    re-analysis nearly free — only the newly inlined regions miss.  This
    module closes that loop, in the spirit of Way & Pollock's
    demand-driven, region-based inlining:

    {ol
    {- Analyze the pristine program ([Pipeline.Demand] = no inlining).}
    {- Collect the callees named by [Unknown_call]/[Unknown_func]
       blockers on still-serial loops of the {e original} program.}
    {- For each such callee pick the inlining method the blocker
       demands: annotation-style when an annotation exists for it,
       conventional when the unit passes the Polaris eligibility
       heuristics; refuse (with a structured [Diag.Plan] warning)
       recursive callees, undefined callees, and selections that would
       push the statement count past [growth_budget × base].}
    {- Probe the surviving candidate through the (memoized) analysis
       and refuse it if it would {e lose} any loop that is currently
       parallel — the conventional-inlining damage of the paper's
       Section II-A never enters a demand plan — or if it makes no
       progress (resolves no opaque-call blocker, parallelizes
       nothing).}
    {- Re-instantiate the selection from the pristine program,
       re-analyze through the memoized dependence layer, attribute every
       newly parallel loop to the round and callee that unlocked it, and
       iterate until no blocker is resolvable, the budget is exhausted,
       or [max_rounds] is hit.}}

    The selection only ever grows and every callee is probed at most
    once, so the fixpoint terminates.  Determinism: the candidate order
    is a pure function of the verdicts (blocked-loop count, then name),
    so the plan is identical across [--jobs] shardings.

    Chaos points: ["planner.plan"] (entry — a fault degrades demand to
    the unplanned baseline), ["planner.round"] (a faulting round stops
    with the partial plan), ["planner.select"] (a faulting probe refuses
    that candidate and planning continues).  All degradation flows
    through the [Diag] ladder as [Plan]-coded warnings. *)

open Frontend
module S = Set.Make (String)
module Verdict = Parallelizer.Verdict
module Pipeline = Core.Pipeline

(* Live telemetry for the fixpoint: round count/duration plus the
   commit/refusal split (no-ops unless a Metrics registry is armed). *)
let m_rounds =
  Metrics.counter "parinline_planner_rounds_total"
    ~help:"demand-driven planning rounds executed"

let m_commits =
  Metrics.counter "parinline_planner_commits_total"
    ~help:"planner selections committed after a successful probe"

let m_refusals =
  Metrics.counter "parinline_planner_refusals_total"
    ~help:"planner candidates refused"

let m_round_seconds =
  Metrics.histogram "parinline_planner_round_seconds"
    ~help:"wall time per planning round"

(** How a selected callee is inlined. *)
type meth = Conventional_site | Annotation_site

let meth_name = function
  | Conventional_site -> "conventional"
  | Annotation_site -> "annotation"

(** A callee committed into the selection. *)
type chosen = {
  ch_callee : string;
  ch_method : meth;
  ch_loops : string list;  (** structural keys of the loops it blocked *)
}

(** A candidate rejected, permanently (the program only grows, so a
    refusal can never become viable later). *)
type refusal = { rf_callee : string; rf_why : string; rf_loops : string list }

(** One loop's parallelization attributed to the planning step that
    unlocked it. *)
type attribution = {
  at_loop : int;  (** stable loop id *)
  at_key : string;  (** structural key, ["UNIT:PATH@LINE"] *)
  at_round : int;  (** 1-based planning round *)
  at_callee : string;  (** the inlined callee credited *)
}

type round = {
  rn_round : int;  (** 1-based *)
  rn_chosen : chosen list;
  rn_refused : refusal list;
  rn_resolved : attribution list;  (** loops newly parallel this round *)
  rn_remaining : int;  (** call-blocked original loops still serial *)
  rn_stmts : int;  (** statement count after this round's inlining *)
  rn_growth : float;  (** [rn_stmts / base] *)
}

type plan = {
  pl_budget : float;  (** the growth budget the plan ran under *)
  pl_budget_exhausted : bool;  (** some selection was refused over budget *)
  pl_max_rounds : int;
  pl_base_stmts : int;
  pl_final_stmts : int;
  pl_growth : float;
  pl_rounds : round list;  (** in planning order *)
  pl_sites : int;  (** call sites actually inlined in the final program *)
  pl_callees : (string * meth) list;  (** final selection, sorted *)
  pl_resolved : attribution list;  (** all rounds' resolutions, in order *)
  pl_remaining : (string * string list) list;
      (** structural loop key → blocker callees still opaque at the end *)
}

let default_growth_budget = 2.0
let default_max_rounds = 8

(* Same backtrace-preserving re-raise discipline as the pipeline's
   salvage barriers: collector control flow is never swallowed. *)
let reraise e = Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())

let bt_string () =
  Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())

(* The still-serial loops of the original program whose blocker list
   names at least one opaque callee: loop id → (structural key, callee
   names).  Order follows the verdict map (analysis order). *)
let call_blocked ~original (res : Pipeline.result) :
    (int * (string * string list)) list =
  List.filter_map
    (fun (id, v) ->
      if not (List.mem id original) then None
      else
        match
          List.sort_uniq compare
            (List.filter_map
               (function
                 | Verdict.Unknown_call c | Verdict.Unknown_func c -> Some c
                 | _ -> None)
               (Verdict.blockers v))
        with
        | [] -> None
        | cs -> Some (id, (Verdict.key v.Verdict.v_loop, cs)))
    (Pipeline.verdict_map res)

(* Candidates of one round: blocker callees grouped over the blocked
   loops, most-blocking first (ties by name) — a deterministic order
   independent of hashing and sharding. *)
let candidates (blocked : (int * (string * string list)) list) :
    (string * string list) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, (key, callees)) ->
      List.iter
        (fun c ->
          let ks = Option.value ~default:[] (Hashtbl.find_opt tbl c) in
          Hashtbl.replace tbl c (key :: ks))
        callees)
    blocked;
  Hashtbl.fold (fun c ks acc -> (c, List.rev ks) :: acc) tbl []
  |> List.sort (fun (c1, k1) (c2, k2) ->
         match compare (List.length k2) (List.length k1) with
         | 0 -> compare c1 c2
         | n -> n)

(* [name] can reach itself through the static call graph of the pristine
   program.  Checked on the real unit even for annotated callees: an
   annotation body is call-free, but committing a recursive callee would
   misrepresent a nonterminating expansion as resolved. *)
let recursive (program : Ast.program) (name : string) : bool =
  let callees (u : Ast.program_unit) =
    List.map fst (Analysis.Usedef.calls u.Ast.u_body)
    @ Analysis.Usedef.func_calls u.Ast.u_body
  in
  match Ast.find_unit program name with
  | None -> false
  | Some u0 ->
      let rec visit seen n =
        if S.mem n seen then seen
        else
          match Ast.find_unit program n with
          | None -> S.add n seen
          | Some u -> List.fold_left visit (S.add n seen) (callees u)
      in
      S.mem name (List.fold_left visit S.empty (callees u0))

(** Run the planner over a parsed program.  Returns the final analysis
    result (the inlined, normalized, parallelized, reverse-restored
    program — [res_mode = Demand]) together with the {!plan} trace.

    [dg] accumulates every diagnostic across rounds; pass the collector
    that already holds parse diagnostics to get one unified salvage
    record.  With [~validate:true] only the {e final} program runs under
    the validation oracle — intermediate rounds never pay for it. *)
let run ?(growth_budget = default_growth_budget)
    ?(max_rounds = default_max_rounds) ?par_config ?inline_config
    ?annot_config ?(annots : Core.Annot_ast.annotation list = [])
    ?(dg = Diag.collector ()) ?(validate = false) ?validate_threads
    (pristine : Ast.program) : Pipeline.result * plan =
  let icfg =
    Option.value ~default:Inliner.Inline.default_config inline_config
  in
  let acfg =
    Option.value ~default:Core.Annot_inline.default_config annot_config
  in
  let selected_annots sel =
    List.filter
      (fun (a : Core.Annot_ast.annotation) -> S.mem a.an_name sel)
      annots
  in
  (* Annotation-instantiation failures repeat identically on every probe
     (each one re-instantiates from the pristine program); warn once. *)
  let warned = Hashtbl.create 8 in
  let instantiate sel_annot sel_conv : Ast.program * int =
    let program, asites =
      if S.is_empty sel_annot then (pristine, 0)
      else begin
        let p, st =
          Core.Annot_inline.run ~config:acfg ~robust:true
            ~annots:(selected_annots sel_annot) pristine
        in
        List.iter
          (fun ((caller, callee, why) as k) ->
            if not (Hashtbl.mem warned k) then begin
              Hashtbl.add warned k ();
              Diag.warn dg ~unit_:caller Diag.Annot
                "annotation for %s failed to instantiate in %s (%s); call \
                 site left un-inlined"
                callee caller why
            end)
          st.Core.Annot_inline.failed;
        (p, List.length st.Core.Annot_inline.sites)
      end
    in
    let program, csites =
      if S.is_empty sel_conv then (program, 0)
      else
        let p, st = Inliner.Inline.run ~config:icfg ~only:sel_conv program in
        (p, List.length st.Inliner.Inline.inlined_calls)
    in
    (program, asites + csites)
  in
  let analyze ?(validate = false) ~sel_annot program =
    Pipeline.run_robust ?par_config ~annot_config:acfg
      ~annots:(selected_annots sel_annot) ~dg ~validate ?validate_threads
      ~mode:Pipeline.Demand program
  in
  let enabled =
    match Fault.point "planner.plan" with
    | () -> true
    | exception ((Diag.Error_limit _ | Diag.Fatal _) as e) -> reraise e
    | exception e ->
        Diag.warn dg Diag.Plan
          "planner disabled by a fault at entry (%s); demand degrades to \
           the unplanned baseline"
          (Printexc.to_string e);
        false
  in
  let base_stmts = Pipeline.stmt_count pristine in
  let limit = growth_budget *. float_of_int base_stmts in
  let base_res = analyze ~sel_annot:S.empty pristine in
  let original = base_res.Pipeline.res_original_loops in
  (* Original-program loops carrying a directive (any surviving copy
     counts) — the set the damage check keeps monotone. *)
  let marked_orig (r : Pipeline.result) =
    List.filter (fun i -> List.mem i original) r.Pipeline.res_marked
  in
  (* Opaque-call pressure: total (blocked loop, opaque callee) pairs.
     Inlining a demanded callee strictly reduces it, so "probe reduces
     pressure or marks a new loop" is the planner's progress measure. *)
  let pressure (r : Pipeline.result) =
    List.fold_left
      (fun n (_, (_, cs)) -> n + List.length cs)
      0
      (call_blocked ~original r)
  in
  (* Monotone state: selections only grow, refusals are permanent. *)
  let sel_annot = ref S.empty and sel_conv = ref S.empty in
  let refused_ever = Hashtbl.create 8 in
  let cur_prog = ref pristine in
  let cur_res = ref base_res in
  let cur_sites = ref 0 in
  let last_stmts = ref base_stmts in
  let rounds = ref [] in
  let resolved_all = ref [] in
  let budget_exhausted = ref false in
  let stopped = ref (not enabled) in
  let round_no = ref 0 in
  while (not !stopped) && !round_no < max_rounds do
    incr round_no;
    Metrics.incr m_rounds;
    let round_t0 = Prof.monotonic_ns () in
    let observe_round () =
      if Metrics.on () then
        Metrics.observe_ns m_round_seconds
          (Int64.to_int (Int64.sub (Prof.monotonic_ns ()) round_t0))
    in
    match
      Fault.point "planner.round";
      let blocked = call_blocked ~original !cur_res in
      let cands = candidates blocked in
      let chosen = ref [] and refusals = ref [] in
      let commits = ref 0 in
      let refuse callee keys why =
        Metrics.incr m_refusals;
        Hashtbl.replace refused_ever callee ();
        Diag.warn dg Diag.Plan
          "round %d: callee %s refused (%s); %d blocked loop(s) stay serial"
          !round_no callee why (List.length keys);
        refusals :=
          { rf_callee = callee; rf_why = why; rf_loops = keys } :: !refusals
      in
      List.iter
        (fun (callee, keys) ->
          if
            S.mem callee !sel_annot || S.mem callee !sel_conv
            || Hashtbl.mem refused_ever callee
          then ()
          else
            let outcome =
              try
                Fault.point "planner.select";
                let meth =
                  if recursive pristine callee then
                    Error "recursive call chain; inlining would not terminate"
                  else if
                    List.exists
                      (fun (a : Core.Annot_ast.annotation) ->
                        String.equal a.an_name callee)
                      annots
                  then Ok Annotation_site
                  else
                    match Ast.find_unit pristine callee with
                    | None -> Error "no definition in this program"
                    | Some u -> (
                        match Inliner.Inline.eligibility icfg u with
                        | Some why ->
                            Error
                              ("ineligible for conventional inlining: " ^ why)
                        | None -> Ok Conventional_site)
                in
                match meth with
                | Error why -> `Refuse why
                | Ok m ->
                    let sa =
                      if m = Annotation_site then S.add callee !sel_annot
                      else !sel_annot
                    in
                    let sc =
                      if m = Conventional_site then S.add callee !sel_conv
                      else !sel_conv
                    in
                    let prog, sites = instantiate sa sc in
                    let stmts = Pipeline.stmt_count prog in
                    if float_of_int stmts > limit then begin
                      budget_exhausted := true;
                      `Refuse
                        (Printf.sprintf
                           "over growth budget: %d stmts would exceed %.2fx \
                            of the %d-stmt baseline"
                           stmts growth_budget base_stmts)
                    end
                    else begin
                      (* the probe: re-analyze the tentative selection
                         through the memoized dependence layer and keep
                         the parallel set monotone *)
                      let res = analyze ~sel_annot:sa prog in
                      let before = marked_orig !cur_res in
                      let after = marked_orig res in
                      let lost =
                        List.filter (fun i -> not (List.mem i after)) before
                      in
                      let gained =
                        List.filter (fun i -> not (List.mem i before)) after
                      in
                      if lost <> [] then
                        `Refuse
                          (Printf.sprintf
                             "would lose %d currently-parallel loop(s) \
                              (inlining damage)"
                             (List.length lost))
                      else if
                        gained = [] && pressure res >= pressure !cur_res
                      then
                        `Refuse
                          "no progress: resolves no opaque-call blocker and \
                           parallelizes nothing"
                      else `Commit (m, sa, sc, prog, sites, stmts, res)
                    end
              with
              | (Diag.Error_limit _ | Diag.Fatal _) as e -> reraise e
              | e ->
                  `Refuse
                    (Printf.sprintf "selection probe crashed (%s)"
                       (Printexc.to_string e))
            in
            match outcome with
            | `Refuse why -> refuse callee keys why
            | `Commit (m, sa, sc, prog, sites, stmts, res) ->
                sel_annot := sa;
                sel_conv := sc;
                cur_prog := prog;
                cur_sites := sites;
                last_stmts := stmts;
                cur_res := res;
                Metrics.incr m_commits;
                incr commits;
                chosen :=
                  { ch_callee = callee; ch_method = m; ch_loops = keys }
                  :: !chosen)
        cands;
      if !commits = 0 then begin
        (* Fixpoint: every remaining blocker is unresolvable. *)
        stopped := true;
        if !refusals <> [] then
          rounds :=
            {
              rn_round = !round_no;
              rn_chosen = [];
              rn_refused = List.rev !refusals;
              rn_resolved = [];
              rn_remaining = List.length blocked;
              rn_stmts = !last_stmts;
              rn_growth = float_of_int !last_stmts /. float_of_int base_stmts;
            }
            :: !rounds
      end
      else begin
        (* The last committed probe's analysis IS the round's state:
           commits update [cur_res] as they land, so no extra pass. *)
        let res = !cur_res in
        let vm = Pipeline.verdict_map res in
        let chosen_names = List.rev_map (fun c -> c.ch_callee) !chosen in
        let resolved =
          List.filter_map
            (fun (id, (key, callees)) ->
              match List.assoc_opt id vm with
              | Some v when Verdict.is_marked v ->
                  let callee =
                    match
                      List.find_opt
                        (fun c -> List.mem c callees)
                        chosen_names
                    with
                    | Some c -> c
                    | None -> (
                        match chosen_names with c :: _ -> c | [] -> "?")
                  in
                  Some
                    {
                      at_loop = id;
                      at_key = key;
                      at_round = !round_no;
                      at_callee = callee;
                    }
              | _ -> None)
            blocked
        in
        resolved_all := !resolved_all @ resolved;
        let remaining = List.length (call_blocked ~original res) in
        rounds :=
          {
            rn_round = !round_no;
            rn_chosen = List.rev !chosen;
            rn_refused = List.rev !refusals;
            rn_resolved = resolved;
            rn_remaining = remaining;
            rn_stmts = !last_stmts;
            rn_growth = float_of_int !last_stmts /. float_of_int base_stmts;
          }
          :: !rounds;
        if remaining = 0 then stopped := true
      end
    with
    | () -> observe_round ()
    | exception ((Diag.Error_limit _ | Diag.Fatal _) as e) ->
        observe_round ();
        reraise e
    | exception e ->
        observe_round ();
        let backtrace = bt_string () in
        Diag.warn dg ~backtrace Diag.Plan
          "planning round %d faulted (%s); stopping with the partial plan"
          !round_no (Printexc.to_string e);
        stopped := true
  done;
  let final_res =
    if validate then analyze ~validate:true ~sel_annot:!sel_annot !cur_prog
    else
      (* refresh the salvage record: refusal warnings of the terminal
         fixpoint scan postdate the last analysis *)
      { !cur_res with Pipeline.res_diags = Diag.to_list dg }
  in
  let remaining_list =
    List.map
      (fun (_, (key, callees)) -> (key, callees))
      (call_blocked ~original final_res)
  in
  let callees_sel =
    List.sort compare
      (List.map (fun c -> (c, Annotation_site)) (S.elements !sel_annot)
      @ List.map (fun c -> (c, Conventional_site)) (S.elements !sel_conv))
  in
  ( final_res,
    {
      pl_budget = growth_budget;
      pl_budget_exhausted = !budget_exhausted;
      pl_max_rounds = max_rounds;
      pl_base_stmts = base_stmts;
      pl_final_stmts = !last_stmts;
      pl_growth = float_of_int !last_stmts /. float_of_int base_stmts;
      pl_rounds = List.rev !rounds;
      pl_sites = !cur_sites;
      pl_callees = callees_sel;
      pl_resolved = !resolved_all;
      pl_remaining = remaining_list;
    } )

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let attribution_to_json (a : attribution) : Json.t =
  Json.Obj
    [
      ("loop", Json.Int a.at_loop);
      ("key", Json.Str a.at_key);
      ("round", Json.Int a.at_round);
      ("callee", Json.Str a.at_callee);
    ]

let round_to_json (r : round) : Json.t =
  Json.Obj
    [
      ("round", Json.Int r.rn_round);
      ( "chosen",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("callee", Json.Str c.ch_callee);
                   ("method", Json.Str (meth_name c.ch_method));
                   ( "blocked_loops",
                     Json.List (List.map (fun k -> Json.Str k) c.ch_loops) );
                 ])
             r.rn_chosen) );
      ( "refused",
        Json.List
          (List.map
             (fun rf ->
               Json.Obj
                 [
                   ("callee", Json.Str rf.rf_callee);
                   ("why", Json.Str rf.rf_why);
                   ( "blocked_loops",
                     Json.List (List.map (fun k -> Json.Str k) rf.rf_loops) );
                 ])
             r.rn_refused) );
      ("resolved", Json.List (List.map attribution_to_json r.rn_resolved));
      ("remaining", Json.Int r.rn_remaining);
      ("stmts", Json.Int r.rn_stmts);
      ("growth", Json.Float r.rn_growth);
    ]

let to_json (p : plan) : Json.t =
  Json.Obj
    [
      ("growth_budget", Json.Float p.pl_budget);
      ("budget_exhausted", Json.Bool p.pl_budget_exhausted);
      ("max_rounds", Json.Int p.pl_max_rounds);
      ("base_stmts", Json.Int p.pl_base_stmts);
      ("final_stmts", Json.Int p.pl_final_stmts);
      ("growth", Json.Float p.pl_growth);
      ("rounds", Json.List (List.map round_to_json p.pl_rounds));
      ("sites_inlined", Json.Int p.pl_sites);
      ( "callees",
        Json.List
          (List.map
             (fun (c, m) ->
               Json.Obj
                 [ ("name", Json.Str c); ("method", Json.Str (meth_name m)) ])
             p.pl_callees) );
      ("resolved", Json.List (List.map attribution_to_json p.pl_resolved));
      ( "remaining",
        Json.List
          (List.map
             (fun (key, cs) ->
               Json.Obj
                 [
                   ("loop", Json.Str key);
                   ( "blocked_by",
                     Json.List (List.map (fun c -> Json.Str c) cs) );
                 ])
             p.pl_remaining) );
    ]

let render (p : plan) : string =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "plan: %d round(s), %d site(s) inlined, growth %.2fx (budget %.2fx over \
     %d stmts)%s\n"
    (List.length p.pl_rounds)
    p.pl_sites p.pl_growth p.pl_budget p.pl_base_stmts
    (if p.pl_budget_exhausted then " [budget exhausted]" else "");
  List.iter
    (fun r ->
      Printf.bprintf b "round %d: %d stmt(s) (%.2fx)\n" r.rn_round r.rn_stmts
        r.rn_growth;
      List.iter
        (fun c ->
          Printf.bprintf b "  inline %s (%s) -- demanded by %s\n" c.ch_callee
            (meth_name c.ch_method)
            (String.concat ", " c.ch_loops))
        r.rn_chosen;
      List.iter
        (fun rf -> Printf.bprintf b "  refuse %s: %s\n" rf.rf_callee rf.rf_why)
        r.rn_refused;
      List.iter
        (fun a ->
          Printf.bprintf b "  resolved %s (loop %d)\n" a.at_key a.at_loop)
        r.rn_resolved;
      Printf.bprintf b "  %d call-blocked loop(s) remain\n" r.rn_remaining)
    p.pl_rounds;
  List.iter
    (fun (key, cs) ->
      Printf.bprintf b "remaining: %s blocked by %s\n" key
        (String.concat ", " cs))
    p.pl_remaining;
  Buffer.contents b
