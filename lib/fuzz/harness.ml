(** The fuzz harness: drive {!Gen} corpora through the robust pipeline
    and enforce the two crash-free-gate invariants.

    1. {b No bare escapes}: for every generated program, the pipeline
       either completes or fails through the structured diagnostic
       channel ({!Frontend.Diag.Fatal} / {!Frontend.Diag.Error_limit}).
       Any other exception reaching the harness is a bug.
    2. {b Every directive validated}: each run executes with
       [~validate:true], so every emitted [PARALLEL DO] passes the race
       detector and the serial/parallel differential oracle.  A valid
       (unmutated) program must come back [v_ok]; a mutated one may be
       salvaged into something that traps at runtime ([v_crashed] is
       tolerated there), but an unexcused race or a divergence is a bug
       in either mode.

    Each seed is compiled under one of the three pipeline modes (picked
    by [seed mod 3]) so a corpus sweep exercises conventional and
    annotation-based inlining, not just the baseline.  Gensym counters
    are reset per seed, making every run independent of corpus order
    and the whole corpus a pure function of the seed range. *)

open Frontend

(** What happened to one seed. *)
type outcome = {
  o_seed : int;
  o_mode : Core.Pipeline.mode;
  o_source : string;  (** the program text that was compiled *)
  o_escaped : string option;
      (** [Some (Printexc.to_string e)] when a non-[Diag] exception
          escaped the pipeline — an invariant-1 violation *)
  o_fatal : bool;  (** structured [Diag.Fatal] / [Error_limit] outcome *)
  o_diags : Diag.t list;
  o_marked : int;  (** loops that received a directive *)
  o_verdict : Checker.Oracle.verdict option;
}

let mode_of_seed seed : Core.Pipeline.mode =
  match abs seed mod 3 with
  | 0 -> No_inlining
  | 1 -> Conventional
  | _ -> Annotation_based

(* Fresh-compilation hygiene: without this, statement/loop ids depend on
   how many programs ran earlier in the process and corpora would not be
   reproducible run-to-run. *)
let reset_gensyms () =
  Frontend.Ast.reset_ids ();
  Analysis.Sections.reset_gensym ();
  Inliner.Inline.reset_gensym ();
  Core.Annot_inline.reset_gensym ()

(** Compile-and-validate one seed.  Never raises. *)
let run_one ?(mutate = false) ~seed () : outcome =
  reset_gensyms ();
  let source =
    if mutate then Gen.source_mutated ~seed else Gen.source ~seed
  in
  let mode = mode_of_seed seed in
  let base =
    {
      o_seed = seed;
      o_mode = mode;
      o_source = source;
      o_escaped = None;
      o_fatal = false;
      o_diags = [];
      o_marked = 0;
      o_verdict = None;
    }
  in
  match Core.Pipeline.run_source_robust ~validate:true ~mode source with
  | res ->
      {
        base with
        o_diags = res.res_diags;
        o_marked = List.length res.res_marked;
        o_verdict = res.res_validation;
      }
  | exception Diag.Fatal d -> { base with o_fatal = true; o_diags = [ d ] }
  | exception Diag.Error_limit n ->
      {
        base with
        o_fatal = true;
        o_diags =
          [
            Diag.make Diag.Parse
              (Printf.sprintf "error limit reached (%d diagnostics)" n);
          ];
      }
  | exception e -> { base with o_escaped = Some (Printexc.to_string e) }

(** Why an outcome violates the gate, if it does.  [mutate] relaxes the
    oracle contract to tolerate [v_crashed] (salvaged programs may trap)
    but never races or divergence. *)
let violation ?(mutate = false) (o : outcome) : string option =
  match o.o_escaped with
  | Some e -> Some (Printf.sprintf "exception escaped the pipeline: %s" e)
  | None -> (
      match o.o_verdict with
      | None -> if o.o_fatal || mutate then None
          else Some "validation verdict missing on a completed run"
      | Some v ->
          if v.v_unexcused > 0 then
            Some (Printf.sprintf "%d unexcused race(s)" v.v_unexcused)
          else if v.v_diverged then Some "serial/parallel divergence"
          else if v.v_crashed && not mutate then
            Some "execution crashed on a valid program"
          else None)

type summary = {
  s_total : int;
  s_marked_total : int;  (** directives emitted (and validated) in all *)
  s_violations : (int * string) list;  (** (seed, reason), worst first *)
  s_digest : string;  (** MD5 over the corpus text — reproducibility *)
}

(** Run seeds [seed .. seed+count-1]; the corpus digest covers every
    generated source in order, so two runs with the same arguments must
    report the same digest byte-for-byte. *)
let run_corpus ?(mutate = false) ?(progress = fun _ -> ()) ~seed ~count () :
    summary =
  let ctx = ref [] in
  let violations = ref [] in
  let marked = ref 0 in
  for i = 0 to count - 1 do
    let s = seed + i in
    let o = run_one ~mutate ~seed:s () in
    ctx := o.o_source :: !ctx;
    marked := !marked + o.o_marked;
    (match violation ~mutate o with
    | Some why -> violations := (s, why) :: !violations
    | None -> ());
    progress (i + 1)
  done;
  {
    s_total = count;
    s_marked_total = !marked;
    s_violations = List.rev !violations;
    s_digest =
      Digest.to_hex (Digest.string (String.concat "\x00" (List.rev !ctx)));
  }
