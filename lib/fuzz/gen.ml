(** Grammar-driven F77 program generator for the crash-free fuzz gate.

    Emits programs over exactly the subset the frontend supports (counted
    [DO]/[ENDDO] loops, block [IF], [CALL]/[FUNCTION], [COMMON],
    [PRINT]), drawn from a small grammar of loop-nest shapes the
    parallelizer and the inliners care about: maps, carried dependences,
    reductions, privatizable temporaries, guarded updates, 2-D nests,
    and calls-inside-loops (the paper's inlining fodder).

    Two invariants make every *valid* program safe to execute under the
    oracle: all subscripts stay inside the declared bounds by
    construction (loops run over [2 .. hi <= 11] with offsets of at most
    one against arrays of size {!dim}), and every read location is
    initialized by the fixed prologue.  So a generated program that
    parses must run to completion — any interpreter crash or oracle
    violation is a real bug, not fuzz noise.

    Generation is a pure function of the seed: the PRNG is a
    self-contained splitmix64 (no [Stdlib.Random], whose sequence may
    change across OCaml releases), so the same seed reproduces the same
    corpus byte-for-byte on any build.  {!source_mutated} additionally
    applies token-level damage to exercise the parser's recovery. *)

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG (splitmix64)                                     *)
(* ------------------------------------------------------------------ *)

module Rng = struct
  type t = { mutable s : int64 }

  let golden = 0x9e3779b97f4a7c15L

  let mix64 (z : int64) : int64 =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)

  let create seed = { s = mix64 (Int64.of_int (seed * 2 + 1)) }

  let next r =
    r.s <- Int64.add r.s golden;
    mix64 r.s

  (** Uniform in [0, n). *)
  let int r n =
    if n <= 1 then 0 else Int64.to_int (next r) land max_int mod n

  let pick r l = List.nth l (int r (List.length l))
  let chance r percent = int r 100 < percent
end

(* ------------------------------------------------------------------ *)
(* Program shapes                                                      *)
(* ------------------------------------------------------------------ *)

let dim = 16

(* Loop header over [2 .. hi]: lo of 2 keeps an [i-1] subscript at >= 1,
   hi of at most 11 keeps [i+1] at <= 12 < dim; trips of 4..9 clear the
   parallelizer's min_trip threshold. *)
let loop_bounds rng =
  let trip = 4 + Rng.int rng 6 in
  (2, 2 + trip - 1)

let arrays = [ "A"; "B"; "C" ]

(* A safe element reference of [arr] around index var [iv]. *)
let elem rng arr iv =
  match Rng.int rng 4 with
  | 0 -> Printf.sprintf "%s(%s-1)" arr iv
  | 1 -> Printf.sprintf "%s(%s+1)" arr iv
  | _ -> Printf.sprintf "%s(%s)" arr iv

let coef rng = Rng.pick rng [ "0.5"; "2.0"; "0.25"; "1.5"; "3.0" ]

(* A side-effect-free real-valued expression reading arrays/scalars. *)
let rec expr rng depth iv =
  if depth <= 0 then atom rng iv
  else
    match Rng.int rng 5 with
    | 0 -> Printf.sprintf "%s + %s" (expr rng (depth - 1) iv) (atom rng iv)
    | 1 -> Printf.sprintf "%s - %s" (atom rng iv) (expr rng (depth - 1) iv)
    | 2 -> Printf.sprintf "%s * %s" (atom rng iv) (coef rng)
    | 3 -> Printf.sprintf "ABS(%s)" (expr rng (depth - 1) iv)
    | _ ->
        Printf.sprintf "MAX(%s, %s)" (atom rng iv) (expr rng (depth - 1) iv)

and atom rng iv =
  match Rng.int rng 4 with
  | 0 -> coef rng
  | 1 -> Printf.sprintf "FLOAT(%s)" iv
  | _ -> elem rng (Rng.pick rng arrays) iv

(* One compute block.  Returns the lines (6-space indented) and a flag
   set when the block contains a CALL that wants the callee emitted. *)
type block_out = { lines : string list; wants_sub : bool; wants_fn : bool }

let map_block rng =
  let lo, hi = loop_bounds rng in
  let dst = Rng.pick rng arrays in
  let body = Printf.sprintf "        %s(I) = %s" dst (expr rng 2 "I") in
  {
    lines =
      [ Printf.sprintf "      DO I = %d, %d" lo hi; body; "      ENDDO" ];
    wants_sub = false;
    wants_fn = false;
  }

let carried_block rng =
  let lo, hi = loop_bounds rng in
  let dst = Rng.pick rng arrays in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        %s(I) = %s(I-1) + %s" dst dst (atom rng "I");
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = false;
  }

let reduction_block rng =
  let lo, hi = loop_bounds rng in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        S = S + %s" (expr rng 1 "I");
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = false;
  }

let private_block rng =
  let lo, hi = loop_bounds rng in
  let dst = Rng.pick rng arrays in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        T = %s" (expr rng 1 "I");
        Printf.sprintf "        %s(I) = T + %s" dst (coef rng);
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = false;
  }

let guarded_block rng =
  let lo, hi = loop_bounds rng in
  let dst = Rng.pick rng arrays in
  let src = Rng.pick rng arrays in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        IF (%s(I) .GT. %s) THEN" src (coef rng);
        Printf.sprintf "          %s(I) = %s(I) * 0.5" dst src;
        "        ELSE";
        Printf.sprintf "          %s(I) = %s" dst (coef rng);
        "        ENDIF";
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = false;
  }

let nest2d_block rng =
  let lo, hi = loop_bounds rng in
  let lo2, hi2 = loop_bounds rng in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        DO J = %d, %d" lo2 hi2;
        Printf.sprintf "          M(I,J) = M(I,J) + %s * %s"
          (elem rng (Rng.pick rng arrays) "I")
          (elem rng (Rng.pick rng arrays) "J");
        "        ENDDO";
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = false;
  }

(* CALL inside a loop: the conventional inliner's target shape.  The
   callee writes X(I) from Y(I), so post-inlining the loop is a map. *)
let call_block rng =
  let lo, hi = loop_bounds rng in
  let x = Rng.pick rng arrays in
  let y = Rng.pick rng (List.filter (fun a -> a <> x) arrays) in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        CALL SFILL(%s, %s, I)" x y;
        "      ENDDO";
      ];
    wants_sub = true;
    wants_fn = false;
  }

let fn_block rng =
  let lo, hi = loop_bounds rng in
  let dst = Rng.pick rng arrays in
  let src = Rng.pick rng (List.filter (fun a -> a <> dst) arrays) in
  {
    lines =
      [
        Printf.sprintf "      DO I = %d, %d" lo hi;
        Printf.sprintf "        %s(I) = FMA1(%s(I), %s)" dst src (coef rng);
        "      ENDDO";
      ];
    wants_sub = false;
    wants_fn = true;
  }

let block_kinds =
  [
    map_block;
    map_block;
    carried_block;
    reduction_block;
    private_block;
    guarded_block;
    nest2d_block;
    call_block;
    fn_block;
  ]

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

let prologue =
  [
    Printf.sprintf "      REAL A(%d), B(%d), C(%d)" dim dim dim;
    Printf.sprintf "      REAL M(%d,%d)" dim dim;
    "      REAL S, T";
    "      INTEGER I, J";
    "      S = 0.0";
    "      T = 0.0";
    Printf.sprintf "      DO I = 1, %d" dim;
    "        A(I) = FLOAT(I) * 0.5";
    "        B(I) = 8.0 - FLOAT(I) * 0.25";
    "        C(I) = 1.0";
    Printf.sprintf "        DO J = 1, %d" dim;
    "          M(I,J) = FLOAT(I) + FLOAT(J)";
    "        ENDDO";
    "      ENDDO";
  ]

let epilogue =
  [
    "      PRINT *, S";
    "      PRINT *, A(3), B(7), C(11)";
    "      PRINT *, M(2,5)";
  ]

let sfill_unit =
  [
    "      SUBROUTINE SFILL(X, Y, I)";
    Printf.sprintf "      REAL X(%d), Y(%d)" dim dim;
    "      INTEGER I";
    "      X(I) = Y(I) * 2.0 + 1.0";
    "      END";
  ]

let fma1_unit =
  [
    "      REAL FUNCTION FMA1(U, V)";
    "      REAL U, V";
    "      FMA1 = U * V + 1.0";
    "      END";
  ]

(** The program for [seed], as source text.  Pure in the seed. *)
let source ~seed : string =
  let rng = Rng.create seed in
  let n_blocks = 2 + Rng.int rng 3 in
  let blocks = List.init n_blocks (fun _ -> (Rng.pick rng block_kinds) rng) in
  let wants_sub = List.exists (fun b -> b.wants_sub) blocks in
  let wants_fn = List.exists (fun b -> b.wants_fn) blocks in
  let main =
    ("      PROGRAM FZMAIN" :: prologue)
    @ List.concat_map (fun b -> b.lines) blocks
    @ epilogue @ [ "      END" ]
  in
  let units =
    [ main ]
    @ (if wants_sub then [ sfill_unit ] else [])
    @ if wants_fn then [ fma1_unit ] else []
  in
  String.concat "\n" (List.concat units) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Mutations (parser-recovery fuzzing)                                 *)
(* ------------------------------------------------------------------ *)

(* Token-level damage over the rendered text: the salvaged program may
   compute anything, so callers tolerate oracle "crashed" outcomes in
   this mode; the contract under test is crash-free parsing/recovery
   plus race/divergence-free directives on whatever survives. *)
let mutate_once rng lines =
  let n = List.length lines in
  if n = 0 then lines
  else
    let victim = Rng.int rng n in
    List.concat
      (List.mapi
         (fun i l ->
           if i <> victim then [ l ]
           else
             match Rng.int rng 5 with
             | 0 -> [] (* drop the line *)
             | 1 -> [ l; l ] (* duplicate it *)
             | 2 ->
                 (* truncate at a random column *)
                 [ String.sub l 0 (Rng.int rng (max 1 (String.length l))) ]
             | 3 -> [ l ^ " ((" ] (* trailing garbage *)
             | _ ->
                 (* smash one character *)
                 if String.length l = 0 then [ l ]
                 else
                   let b = Bytes.of_string l in
                   Bytes.set b
                     (Rng.int rng (Bytes.length b))
                     (Rng.pick rng [ '('; ')'; ','; '='; 'Q' ]);
                   [ Bytes.to_string b ])
         lines)

(** [source ~seed] with 1-3 deterministic token-level mutations. *)
let source_mutated ~seed : string =
  let rng = Rng.create (seed lxor 0x5eed) in
  let lines = String.split_on_char '\n' (source ~seed) in
  let n_mut = 1 + Rng.int rng 3 in
  let rec go k lines = if k = 0 then lines else go (k - 1) (mutate_once rng lines) in
  String.concat "\n" (go n_mut lines)
