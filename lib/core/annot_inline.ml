(** Annotation-based inlining (Section III of the paper).

    A CALL to an annotated subroutine is replaced by the *annotation* body
    translated to Fortran, bracketed by a [Tagged] region:

    - scalar formals are substituted by the actual expressions;
    - array formals map dimension-by-dimension onto the actual argument's
      array -- [M1[i,j]] with actual [PP(1,1,KS-1)] becomes
      [PP(i, j, KS-1)] -- which is precisely how the paper avoids the
      linearization pathology of conventional inlining;
    - [y = unknown(x1..xn)] lowers to stores of the operands into a fresh
      uninitialized array followed by a read of that array (the paper's
      translation), so dependence analysis sees "reads x1..xn, writes y,
      arbitrary relation";
    - [unique(x1..xn)] lowers to the injective linear combination
      [x1 + R*x2 + R^2*x3 + ...] for a radix [R] exceeding the value
      ranges, giving the dependence tests an affine handle;
    - [do] loops and F90-style sections become counted DO loops whose
      [loop_id]s are mapped onto the real callee's loops (pre-order), so
      Table II can attribute parallelized annotation loops to the original
      source loops.

    The same translation runs in [`Match] mode with formals bound to
    ["?NAME"] marker variables; the reverse inliner unifies that template
    against the optimized region to recover actual parameters. *)

open Frontend
open Annot_ast
module S = Set.Make (String)

type config = {
  unique_radix : int;
  only_in_loops : bool;  (** substitute only call sites inside a loop *)
}

let default_config = { unique_radix = 1024; only_in_loops = true }

type stats = {
  mutable sites : (string * string * int) list;
      (** (caller, callee, tag_id) *)
  mutable skipped : (string * string * string) list;
  mutable failed : (string * string * string) list;
      (** call sites kept un-inlined because instantiation raised an
          *unexpected* exception (robust mode only) *)
}

let new_stats () = { sites = []; skipped = []; failed = [] }

exception Skip of string

let skip fmt = Printf.ksprintf (fun s -> raise (Skip s)) fmt

(* ------------------------------------------------------------------ *)
(* Instantiation environment                                            *)
(* ------------------------------------------------------------------ *)

type abind =
  | Scalar of Ast.expr
  | Array_base of { base : string; base_idx : Ast.expr list }

(* Generated names are unique program-wide so that distinct inlined
   regions never share temporaries (a collision would make them look
   live across regions).  The reverse-inline matcher treats these names
   as wildcard classes, so renumbering between the inline-time and
   match-time instantiations is harmless.  Domain-local: concurrent
   compilations (the suite driver) must not race on the counters. *)
let global_ian : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let global_unk : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(** Reset the calling domain's name counters (per-compilation, for
    deterministic output regardless of task scheduling). *)
let reset_gensym () =
  Domain.DLS.get global_ian := 0;
  Domain.DLS.get global_unk := 0

type env = {
  cfg : config;
  annot : annotation;
  bind : (string * abind) list;
  renames : (string * string) list;  (** do-index renaming *)
  loop_ids : int list;  (** callee loop ids, pre-order *)
  next_do : int ref;  (** ordinal of the next [do] encountered *)
  new_decls : Ast.decl list ref;
}

let fresh_ian _env =
  let r = Domain.DLS.get global_ian in
  incr r;
  Printf.sprintf "IAN%d" !r

let fresh_unk env k =
  let r = Domain.DLS.get global_unk in
  incr r;
  let name = Printf.sprintf "UNKANN%d" !r in
  env.new_decls :=
    { Ast.d_name = name; d_type = Ast.Real; d_dims = [ Ast.Dim_expr (Ast.Int_const (max 1 k)) ] }
    :: !(env.new_decls);
  name

let take_loop_id env =
  let ord = !(env.next_do) in
  incr env.next_do;
  match List.nth_opt env.loop_ids ord with
  | Some id -> id
  | None -> Ast.fresh_loop_id ()

(* Map an indexed reference to a formal array onto the actual: leading
   annotation dims add to the actual's base indices, trailing dims keep the
   base values. *)
let map_onto_base ~base_idx (idx : Ast.expr list) : Ast.expr list =
  let m = List.length idx and n = List.length base_idx in
  if m > n then skip "annotation rank exceeds actual array rank";
  List.mapi
    (fun k b ->
      if k < m then
        let i = List.nth idx k in
        match b with
        | Ast.Int_const 1 -> i
        | _ ->
            Ast.Binop (Ast.Add, b, Ast.Binop (Ast.Sub, i, Ast.Int_const 1))
      else b)
    base_idx

(* ------------------------------------------------------------------ *)
(* Expression translation.  Returns pre-statements (from [unknown]) plus
   the translated expression. *)
(* ------------------------------------------------------------------ *)

let rec tr_expr env (e : aexpr) : Ast.stmt list * Ast.expr =
  match e with
  | AInt n -> ([], Ast.Int_const n)
  | AReal r -> ([], Ast.Real_const r)
  | AVar v -> ([], tr_name env v)
  | AIndex (a, idx) ->
      let pres, idx' = tr_exprs env idx in
      (pres, tr_indexed env a idx')
  | ASection (a, _) ->
      skip "array section for %s outside a section assignment" a
  | ABinop (op, x, y) ->
      let p1, x' = tr_expr env x in
      let p2, y' = tr_expr env y in
      (p1 @ p2, Ast.Binop (op, x', y'))
  | AUnop (op, x) ->
      let p, x' = tr_expr env x in
      (p, Ast.Unop (op, x'))
  | ACall (f, args) ->
      let pres, args' = tr_exprs env args in
      (pres, Ast.Func_call (f, args'))
  | AUnique args ->
      let pres, args' = tr_exprs env args in
      let r = env.cfg.unique_radix in
      let combined =
        match args' with
        | [] -> skip "unique() needs at least one operand"
        | x :: rest ->
            List.fold_left
              (fun (acc, stride) a ->
                ( Ast.Binop
                    (Ast.Add, acc, Ast.Binop (Ast.Mul, Ast.Int_const stride, a)),
                  stride * r ))
              (x, r) rest
            |> fst
      in
      (pres, combined)
  | AUnknown args ->
      let pres, args' = tr_exprs env args in
      let unk = fresh_unk env (List.length args') in
      let stores =
        List.mapi
          (fun i a ->
            Ast.mk
              (Ast.Assign (Ast.Larray (unk, [ Ast.Int_const (i + 1) ]), a)))
          args'
      in
      (pres @ stores, Ast.Array_ref (unk, [ Ast.Int_const 1 ]))

and tr_exprs env es =
  List.fold_left
    (fun (pres, acc) e ->
      let p, e' = tr_expr env e in
      (pres @ p, acc @ [ e' ]))
    ([], []) es

and tr_name env v : Ast.expr =
  match List.assoc_opt v env.bind with
  | Some (Scalar e) -> e
  | Some (Array_base { base; base_idx = [] }) -> Ast.Var base
  | Some (Array_base { base; base_idx }) ->
      if List.for_all (fun b -> b = Ast.Int_const 1) base_idx then
        Ast.Var base
      else skip "whole-array use of offset actual %s" base
  | None -> (
      match List.assoc_opt v env.renames with
      | Some v' -> Ast.Var v'
      | None -> Ast.Var v)

and tr_indexed env a (idx : Ast.expr list) : Ast.expr =
  match List.assoc_opt a env.bind with
  | Some (Scalar _) -> skip "scalar formal %s used with subscripts" a
  | Some (Array_base { base; base_idx = [] }) ->
      (* pattern mode: keep subscripts as written *)
      Ast.Array_ref (base, idx)
  | Some (Array_base { base; base_idx }) ->
      Ast.Array_ref (base, map_onto_base ~base_idx idx)
  | None -> Ast.Array_ref (a, idx)

(* ------------------------------------------------------------------ *)
(* Targets and statements                                               *)
(* ------------------------------------------------------------------ *)

let tr_target env (t : atarget) : Ast.lvalue =
  match t with
  | TVar v -> (
      match List.assoc_opt v env.bind with
      | Some (Scalar (Ast.Var v')) -> Ast.Lvar v'
      | Some (Scalar _) -> skip "formal %s written but bound to an expression" v
      | Some (Array_base { base; base_idx = [] }) -> Ast.Lvar base
      | Some (Array_base { base; base_idx }) ->
          if List.for_all (fun b -> b = Ast.Int_const 1) base_idx then
            Ast.Lvar base
          else skip "whole-array write through offset actual %s" base
      | None -> (
          match List.assoc_opt v env.renames with
          | Some v' -> Ast.Lvar v'
          | None -> Ast.Lvar v))
  | TIndex (a, idx) -> (
      let pres, idx' = tr_exprs env idx in
      if pres <> [] then skip "unknown() inside a target subscript";
      match tr_indexed env a idx' with
      | Ast.Array_ref (b, i) -> Ast.Larray (b, i)
      | _ -> assert false)
  | TSection _ -> invalid_arg "tr_target: sections handled by tr_assign"

(* Expand [TSection] assignments into loops, elementizing matching
   sections on the right-hand side positionally. *)
let rec tr_assign env (targets : atarget list) (rhs : aexpr) : Ast.stmt list =
  match targets with
  | [ TSection (a, bounds) ] ->
      (* loop per sectioned dim *)
      let sectioned =
        List.filter
          (function Some x, Some y when x = y -> false | _ -> true)
          bounds
      in
      let idxs = List.map (fun _ -> fresh_ian env) sectioned in
      (* rewrite target to TIndex with loop indices *)
      let k = ref (-1) in
      let tgt_idx =
        List.map
          (fun (lo, hi) ->
            match (lo, hi) with
            | Some x, Some y when x = y -> x
            | _ ->
                incr k;
                AVar (List.nth idxs !k))
          bounds
      in
      (* elementize rhs sections positionally with the same indices *)
      let rec elem e =
        match e with
        | ASection (b, bbounds) ->
            let k = ref (-1) in
            AIndex
              ( b,
                List.map
                  (fun (lo, hi) ->
                    match (lo, hi) with
                    | Some x, Some y when x = y -> x
                    | _ ->
                        incr k;
                        AVar (List.nth idxs !k))
                  bbounds )
        | ABinop (op, x, y) -> ABinop (op, elem x, elem y)
        | AUnop (op, x) -> AUnop (op, elem x)
        | ACall (f, args) -> ACall (f, List.map elem args)
        | AUnknown args -> AUnknown (List.map elem args)
        | AUnique args -> AUnique (List.map elem args)
        | AInt _ | AReal _ | AVar _ | AIndex _ -> e
      in
      let inner = tr_assign env [ TIndex (a, tgt_idx) ] (elem rhs) in
      (* wrap loops: first sectioned dim innermost *)
      let with_bounds =
        List.map2
          (fun iv (lo, hi) ->
            let lo = Option.value ~default:(AInt 1) lo in
            let hi = Option.value ~default:(AInt 1) hi in
            (iv, lo, hi))
          idxs sectioned
      in
      List.fold_left
        (fun body (iv, lo, hi) ->
          let p1, lo' = tr_expr env lo in
          let p2, hi' = tr_expr env hi in
          if p1 <> [] || p2 <> [] then skip "unknown() in section bounds";
          let l =
            {
              Ast.index = iv;
              lo = lo';
              hi = hi';
              step = Ast.Int_const 1;
              body;
              do_label = None;
              parallel = None;
              loop_id = Ast.fresh_loop_id ();
              do_line = 0;
            }
          in
          [ Ast.mk (Ast.Do_loop l) ])
        inner with_bounds
  | [ t ] -> (
      match rhs with
      | AUnknown _ | _ ->
          let pres, e = tr_expr env rhs in
          pres @ [ Ast.mk (Ast.Assign (tr_target env t, e)) ])
  | ts -> (
      (* multiple targets: only meaningful with unknown() *)
      match rhs with
      | AUnknown args ->
          let pres, args' = tr_exprs env args in
          let k = List.length args' in
          let unk = fresh_unk env k in
          let stores =
            List.mapi
              (fun i a ->
                Ast.mk
                  (Ast.Assign (Ast.Larray (unk, [ Ast.Int_const (i + 1) ]), a)))
              args'
          in
          let assigns =
            List.concat
              (List.mapi
                 (fun j t ->
                   let src =
                     Ast.Array_ref
                       (unk, [ Ast.Int_const ((j mod max 1 k) + 1) ])
                   in
                   match t with
                   | TSection _ ->
                       (* reuse the section machinery with a scalar rhs *)
                       tr_assign env [ t ]
                         (AIndex (unk, [ AInt ((j mod max 1 k) + 1) ]))
                   | _ -> [ Ast.mk (Ast.Assign (tr_target env t, src)) ])
                 ts)
          in
          pres @ stores @ assigns
      | _ -> skip "multiple targets require unknown()")

let rec tr_stmt env (s : astmt) : Ast.stmt list =
  match s with
  | ABlock b -> List.concat_map (tr_stmt env) b
  | ADecl _ -> []
  | AReturn _ -> []
  | AAssign (targets, rhs) -> tr_assign env targets rhs
  | AIf (c, t, e) ->
      let pres, c' = tr_expr env c in
      let t' = tr_stmt env t in
      let e' = match e with Some e -> tr_stmt env e | None -> [] in
      pres @ [ Ast.mk (Ast.If (c', t', e')) ]
  | ADo d ->
      let loop_id = take_loop_id env in
      let iv = fresh_ian env in
      let env' = { env with renames = (d.av, iv) :: env.renames } in
      let p1, lo = tr_expr env d.alo in
      let p2, hi = tr_expr env d.ahi in
      let p3, step =
        match d.astep with
        | Some e -> tr_expr env e
        | None -> ([], Ast.Int_const 1)
      in
      let body = tr_stmt env' d.abody in
      p1 @ p2 @ p3
      @ [
          Ast.mk
            (Ast.Do_loop
               {
                 index = iv;
                 lo;
                 hi;
                 step;
                 body;
                 do_label = None;
                 parallel = None;
                 loop_id;
                 do_line = 0;
               });
        ]

(* ------------------------------------------------------------------ *)
(* Binding construction                                                 *)
(* ------------------------------------------------------------------ *)

(* Is formal [f] used as an array in the annotation? *)
let formal_is_array (a : annotation) f =
  List.mem_assoc f (declared_dims a)
  ||
  let found = ref false in
  let rec we = function
    | AIndex (n, args) ->
        if String.equal n f then found := true;
        List.iter we args
    | ASection (n, bounds) ->
        if String.equal n f then found := true;
        List.iter
          (fun (x, y) ->
            Option.iter we x;
            Option.iter we y)
          bounds
    | ABinop (_, x, y) ->
        we x;
        we y
    | AUnop (_, x) -> we x
    | ACall (_, args) | AUnknown args | AUnique args -> List.iter we args
    | AInt _ | AReal _ | AVar _ -> ()
  in
  let rec ws = function
    | ABlock b -> List.iter ws b
    | AAssign (ts, rhs) ->
        List.iter
          (function
            | TVar _ -> ()
            | TIndex (n, args) ->
                if String.equal n f then found := true;
                List.iter we args
            | TSection (n, bounds) ->
                if String.equal n f then found := true;
                List.iter
                  (fun (x, y) ->
                    Option.iter we x;
                    Option.iter we y)
                  bounds)
          ts;
        we rhs
    | AIf (c, t, e) ->
        we c;
        ws t;
        Option.iter ws e
    | ADo d ->
        we d.alo;
        we d.ahi;
        Option.iter we d.astep;
        ws d.abody
    | ADecl _ | AReturn _ -> ()
  in
  List.iter ws a.an_body;
  !found

(** Build formal bindings for inline mode. *)
let bindings_for ~(caller : Ast.program_unit) (a : annotation)
    (actuals : Ast.expr list) : (string * abind) list =
  if List.length actuals <> List.length a.an_params then
    skip "arity mismatch for %s" a.an_name;
  List.map2
    (fun f actual ->
      if formal_is_array a f then
        match actual with
        | Ast.Var arr ->
            let rank =
              match Ast.find_decl caller arr with
              | Some d when d.d_dims <> [] -> List.length d.d_dims
              | _ -> skip "actual %s for array formal %s is not an array" arr f
            in
            ( f,
              Array_base
                {
                  base = arr;
                  base_idx = List.init rank (fun _ -> Ast.Int_const 1);
                } )
        | Ast.Array_ref (arr, idx) ->
            (f, Array_base { base = arr; base_idx = idx })
        | _ -> skip "array formal %s bound to a non-array expression" f
      else (f, Scalar actual))
    a.an_params actuals

(** Marker bindings for [`Match] mode: scalars become ["?F"] variables,
    arrays become pattern bases ["?F"] with no base index. *)
let pattern_bindings (a : annotation) : (string * abind) list =
  List.map
    (fun f ->
      if formal_is_array a f then
        (f, Array_base { base = "?" ^ f; base_idx = [] })
      else (f, Scalar (Ast.Var ("?" ^ f))))
    a.an_params

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

(* loop ids of the real callee, pre-order *)
let callee_loop_ids program name =
  match Ast.find_unit program name with
  | None -> []
  | Some u -> List.map (fun (l : Ast.do_loop) -> l.loop_id) (Ast.collect_loops u.u_body)

(** Instantiate an annotation.  Returns translated statements and the
    declarations to add to the enclosing unit. *)
let instantiate ~(cfg : config) ~(program : Ast.program)
    ~(caller : Ast.program_unit) ~(annot : annotation)
    ~(mode : [ `Inline of Ast.expr list | `Match ]) :
    Ast.stmt list * Ast.decl list =
  let bind =
    match mode with
    | `Inline actuals -> bindings_for ~caller annot actuals
    | `Match -> pattern_bindings annot
  in
  let env =
    {
      cfg;
      annot;
      bind;
      renames = [];
      loop_ids = callee_loop_ids program annot.an_name;
      next_do = ref 0;
      new_decls = ref [];
    }
  in
  let stmts = List.concat_map (tr_stmt env) annot.an_body in
  (stmts, List.rev !(env.new_decls))

(* COMMON blocks needed by names the instantiated body references but the
   caller does not declare: imported (with member declarations) from
   whichever unit declares them. *)
let import_commons program (caller : Ast.program_unit) stmts :
    Ast.decl list * (string * string list) list =
  let referenced =
    List.fold_left
      (fun acc (a : Analysis.Usedef.access) -> S.add a.acc_name acc)
      S.empty
      (Analysis.Usedef.accesses_of_stmts stmts)
  in
  let caller_names =
    S.union
      (S.of_list (List.map (fun d -> d.Ast.d_name) caller.u_decls))
      (S.union
         (S.of_list caller.u_params)
         (S.of_list (List.concat_map snd caller.u_commons)))
  in
  let missing = S.diff referenced caller_names in
  let new_blocks = ref [] in
  let new_decls = ref [] in
  S.iter
    (fun name ->
      (* find a unit whose COMMON contains [name] *)
      let found =
        List.find_opt
          (fun u ->
            List.exists (fun (_, ms) -> List.mem name ms) u.Ast.u_commons)
          program.Ast.p_units
      in
      match found with
      | None -> ()
      | Some u ->
          let blk, members =
            List.find (fun (_, ms) -> List.mem name ms) u.u_commons
          in
          if
            (not (List.mem_assoc blk caller.u_commons))
            && not (List.mem_assoc blk !new_blocks)
          then begin
            new_blocks := (blk, members) :: !new_blocks;
            List.iter
              (fun m ->
                if
                  (not (S.mem m caller_names))
                  && not
                       (List.exists
                          (fun d -> String.equal d.Ast.d_name m)
                          !new_decls)
                then
                  match Ast.find_decl u m with
                  | Some d -> new_decls := d :: !new_decls
                  | None ->
                      new_decls :=
                        {
                          Ast.d_name = m;
                          d_type = Ast.implicit_type m;
                          d_dims = [];
                        }
                        :: !new_decls)
              members
          end)
    missing;
  (List.rev !new_decls, List.rev !new_blocks)

(** Apply annotation-based inlining over the whole program. *)
let run ?(config = default_config) ?(robust = false)
    ~(annots : annotation list) (program : Ast.program) :
    Ast.program * stats =
  Fault.point "inliner.annot";
  let stats = new_stats () in
  let find_annot name =
    List.find_opt (fun a -> String.equal a.an_name name) annots
  in
  let process_unit (u : Ast.program_unit) =
    let extra_decls = ref [] in
    let extra_commons = ref [] in
    let rec walk depth stmts =
      List.concat_map
        (fun (s : Ast.stmt) ->
          match s.Ast.node with
          | Ast.Do_loop l ->
              [
                {
                  s with
                  node = Ast.Do_loop { l with body = walk (depth + 1) l.body };
                };
              ]
          | Ast.If (c, t, e) ->
              [ { s with node = Ast.If (c, walk depth t, walk depth e) } ]
          | Ast.Call (name, args)
            when (depth > 0 || not config.only_in_loops)
                 && find_annot name <> None -> (
              let annot = Option.get (find_annot name) in
              try
                Fault.point "inliner.annot.site";
                let body, decls =
                  Span.span ~cat:"inline" ~unit_:u.u_name
                    ("annot-site:" ^ name) (fun () ->
                      instantiate ~cfg:config ~program ~caller:u ~annot
                        ~mode:(`Inline args))
                in
                let cdecls, cblocks = import_commons program u body in
                extra_decls := !extra_decls @ decls @ cdecls;
                extra_commons := !extra_commons @ cblocks;
                let tag =
                  {
                    Ast.tag_id = Ast.fresh_tag_id ();
                    tag_callee = name;
                    tag_actuals = args;
                  }
                in
                stats.sites <- (u.u_name, name, tag.tag_id) :: stats.sites;
                Prof.tick_annot_site ();
                [ Ast.mk (Ast.Tagged (tag, body)) ]
              with
              | Skip why ->
                  stats.skipped <- (u.u_name, name, why) :: stats.skipped;
                  [ s ]
              | e when robust ->
                  (* fault barrier: an annotation that fails to instantiate
                     degrades this call site to no inlining instead of
                     killing the run *)
                  stats.failed <-
                    (u.u_name, name, Printexc.to_string e) :: stats.failed;
                  [ s ])
          | _ -> [ s ])
        stmts
    in
    let body = walk 0 u.u_body in
    {
      u with
      u_body = body;
      u_decls = u.u_decls @ !extra_decls;
      u_commons = u.u_commons @ !extra_commons;
    }
  in
  ({ Ast.p_units = List.map process_unit program.p_units }, stats)
