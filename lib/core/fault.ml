(** Pipeline-level name for the fault-injection registry.

    The single source of truth is {!Frontend.Fault} (the lexer, the
    analysis passes and the dependence tester host fault points from
    below [core]); this module is a pure re-export shim so the pipeline,
    the suite driver and the CLI can keep saying [Core.Fault]. *)

include Frontend.Fault
