(** Reverse inlining (Section III-C.3 of the paper).

    After parallelization, every [Tagged] region is pattern-matched against
    the [`Match]-mode instantiation of its annotation -- a template whose
    formals appear as ["?F"] marker variables -- and replaced by a CALL to
    the original subroutine with the actual parameters *extracted by
    unification*.  The matcher tolerates the normalizations the optimizer
    applies inside the region:

    - OpenMP directives on loops (ignored);
    - constant propagation and forward substitution (ground sub-terms are
      compared by polynomial equality, and a formal bound to a substituted
      expression stays consistent across all its occurrences);
    - compiler-generated names ([UNKANN*], [IAN*]) which unify by prefix
      class rather than by spelling;
    - statement reordering (a greedy multiset match is attempted when the
      ordered match fails);
    - loop peeling (each copy of the region carries its own tag and is
      reversed independently).

    If matching fails the region is still replaced by a call built from
    the actuals recorded in the tag -- our optimizer only inserts
    directives inside regions, so this fallback is semantics-preserving --
    but the failure is reported, mirroring the paper's caveat that drastic
    transformations would defeat reverse inlining. *)

open Frontend
open Annot_ast
module M = Map.Make (String)

type stats = {
  mutable matched : int;
  mutable fallback : (string * string) list;  (** (callee, reason) *)
  mutable extracted_mismatch : int;
      (** actuals recovered by unification that differ from the recorded
          ones (after normalization) -- should be 0 *)
}

let new_stats () = { matched = 0; fallback = []; extracted_mismatch = 0 }

(* ------------------------------------------------------------------ *)
(* Unification state                                                    *)
(* ------------------------------------------------------------------ *)

type binding = {
  scalars : Ast.expr M.t;  (** "?F" -> bound expression *)
  arrays : (string * Ast.expr list) M.t;  (** "?F" -> (base, base_idx) *)
  gen : string M.t;  (** template generated name -> region name *)
}

let empty_binding = { scalars = M.empty; arrays = M.empty; gen = M.empty }

let is_marker name = String.length name > 0 && name.[0] = '?'

let gen_class name =
  let pfx p = String.length name >= String.length p
              && String.sub name 0 (String.length p) = p in
  if pfx "UNKANN" then Some "UNKANN"
  else if pfx "IAN" then Some "IAN"
  else if pfx "ITSEC" then Some "ITSEC"
  else None

exception No_match

(* Substitute current bindings into a template expression; raises
   [Not_found] when an unbound marker or generated name remains. *)
let rec subst_template b (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var v when is_marker v -> M.find v b.scalars
  | Ast.Var v -> (
      match gen_class v with
      | Some _ -> Ast.Var (M.find v b.gen)
      | None -> e)
  | Ast.Array_ref (a, idx) when is_marker a ->
      let base, base_idx = M.find a b.arrays in
      let idx' = List.map (subst_template b) idx in
      Ast.Array_ref (base, Annot_inline.map_onto_base ~base_idx idx')
  | Ast.Array_ref (a, idx) ->
      let a' =
        match gen_class a with Some _ -> M.find a b.gen | None -> a
      in
      Ast.Array_ref (a', List.map (subst_template b) idx)
  | Ast.Func_call (f, args) ->
      Ast.Func_call (f, List.map (subst_template b) args)
  | Ast.Binop (op, x, y) ->
      Ast.Binop (op, subst_template b x, subst_template b y)
  | Ast.Unop (op, x) -> Ast.Unop (op, subst_template b x)
  | _ -> e

let ground b e = match subst_template b e with e' -> Some e' | exception Not_found -> None

let poly_eq u a b' =
  Analysis.Simplify.equal_mod_simplify u a b'

(* ------------------------------------------------------------------ *)
(* Expression matching                                                  *)
(* ------------------------------------------------------------------ *)

let rec match_expr u (b : binding) (t : Ast.expr) (r : Ast.expr) : binding =
  match (t, r) with
  | Ast.Var v, _ when is_marker v -> (
      match M.find_opt v b.scalars with
      | Some bound -> if poly_eq u bound r then b else raise No_match
      | None -> { b with scalars = M.add v r b.scalars })
  | Ast.Var v, Ast.Var rv when gen_class v <> None -> (
      if gen_class v <> gen_class rv then raise No_match
      else
        match M.find_opt v b.gen with
        | Some bound -> if String.equal bound rv then b else raise No_match
        | None -> { b with gen = M.add v rv b.gen })
  | Ast.Array_ref (a, tidx), Ast.Array_ref (base, ridx) when is_marker a ->
      match_marker_array u b a tidx base ridx
  | Ast.Array_ref (a, tidx), Ast.Array_ref (ra, ridx)
    when gen_class a <> None ->
      if gen_class a <> gen_class ra then raise No_match
      else
        let b =
          match M.find_opt a b.gen with
          | Some bound ->
              if String.equal bound ra then b else raise No_match
          | None -> { b with gen = M.add a ra b.gen }
        in
        match_list u b tidx ridx
  | Ast.Array_ref (a, tidx), Ast.Array_ref (ra, ridx) when String.equal a ra
    ->
      match_list u b tidx ridx
  | Ast.Func_call (f, targs), Ast.Func_call (rf, rargs)
    when String.equal f rf ->
      match_list u b targs rargs
  | Ast.Binop (op, x, y), Ast.Binop (rop, rx, ry) when op = rop -> (
      try match_expr u (match_expr u b x rx) y ry
      with No_match -> fallback_ground u b t r)
  | Ast.Unop (op, x), Ast.Unop (rop, rx) when op = rop -> match_expr u b x rx
  | Ast.Int_const a, Ast.Int_const c when a = c -> b
  | Ast.Real_const a, Ast.Real_const c when a = c -> b
  | Ast.Str_const a, Ast.Str_const c when String.equal a c -> b
  | Ast.Logical_const a, Ast.Logical_const c when a = c -> b
  | Ast.Var a, Ast.Var c when String.equal a c -> b
  | _ -> fallback_ground u b t r

(* When structure diverges (the optimizer rewrote the region expression),
   compare modulo polynomial normalization.  A fully bound template must be
   polynomially equal; a template with exactly one unbound scalar marker in
   an affine position is *solved* for -- this is how actual parameters
   buried in arithmetic (FX(3*M - 3 + K)) are extracted. *)
and fallback_ground u b t r =
  match ground b t with
  | Some t' -> if poly_eq u t' r then b else raise No_match
  | None -> solve_marker u b t r

and solve_marker u (b : binding) t r =
  (* collect unbound scalar markers of t *)
  let unbound = ref M.empty in
  ignore
    (Ast.fold_expr
       (fun () e ->
         match e with
         | Ast.Var v when is_marker v && not (M.mem v b.scalars) ->
             unbound := M.add v () !unbound
         | Ast.Array_ref (a, _) when is_marker a && not (M.mem a b.arrays) ->
             (* array markers cannot be solved algebraically *)
             raise No_match
         | _ -> ())
       () t);
  match M.bindings !unbound with
  | [ (m, ()) ] -> (
      let t_partial =
        match
          subst_template { b with scalars = M.add m (Ast.Var m) b.scalars } t
        with
        | t' -> t'
        | exception Not_found -> raise No_match
      in
      if not (Analysis.Typing.is_int u t_partial && Analysis.Typing.is_int u r)
      then raise No_match
      else
        let pt = Analysis.Poly.of_expr (Analysis.Simplify.simplify u t_partial) in
        let pr = Analysis.Poly.of_expr (Analysis.Simplify.simplify u r) in
        match Analysis.Poly.affine_in ~vars:[ m ] pt with
        | Some ([ (_, c) ], rest) when c <> 0 ->
            let diff = Analysis.Poly.sub pr rest in
            if List.for_all (fun (_, k) -> k mod c = 0) diff then
              let solved =
                Analysis.Simplify.simplify u
                  (Analysis.Poly.to_expr
                     (List.map (fun (mn, k) -> (mn, k / c)) diff))
              in
              { b with scalars = M.add m solved b.scalars }
            else raise No_match
        | _ -> raise No_match)
  | _ -> raise No_match

and match_list u b ts rs =
  if List.length ts <> List.length rs then raise No_match
  else List.fold_left2 (match_expr u) b ts rs

and match_marker_array u b a tidx base ridx =
  match M.find_opt a b.arrays with
  | Some (base', base_idx) ->
      if not (String.equal base base') then raise No_match
      else if List.length ridx <> List.length base_idx then raise No_match
      else
        let m = List.length tidx in
        List.fold_left
          (fun b (k, bk) ->
            let rk = List.nth ridx k in
            if k < m then
              let tk = List.nth tidx k in
              match bk with
              | Ast.Int_const 1 -> match_expr u b tk rk
              | _ -> (
                  (* expect rk = bk + tk - 1 *)
                  match ground b tk with
                  | Some tk' ->
                      let expected =
                        Analysis.Simplify.simplify u
                          (Ast.Binop
                             ( Ast.Add,
                               bk,
                               Ast.Binop (Ast.Sub, tk', Ast.Int_const 1) ))
                      in
                      if poly_eq u expected rk then b else raise No_match
                  | None ->
                      let candidate =
                        Analysis.Simplify.simplify u
                          (Ast.Binop
                             ( Ast.Sub,
                               rk,
                               Ast.Binop (Ast.Sub, bk, Ast.Int_const 1) ))
                      in
                      match_expr u b tk candidate)
            else if poly_eq u bk rk then b
            else raise No_match)
          b
          (List.mapi (fun k bk -> (k, bk)) base_idx)
  | None ->
      (* infer the base index: leading dims assumed 1-based, trailing dims
         taken from the region reference *)
      let m = List.length tidx and n = List.length ridx in
      if m > n then raise No_match
      else
        let base_idx =
          List.mapi
            (fun k rk -> if k < m then Ast.Int_const 1 else rk)
            ridx
        in
        let b = { b with arrays = M.add a (base, base_idx) b.arrays } in
        match_marker_array u b a tidx base ridx

(* ------------------------------------------------------------------ *)
(* Statement matching                                                   *)
(* ------------------------------------------------------------------ *)

let strip stmts =
  List.filter
    (fun (s : Ast.stmt) ->
      match s.node with Ast.Continue -> false | _ -> true)
    stmts

let match_lvalue u b (t : Ast.lvalue) (r : Ast.lvalue) : binding =
  match (t, r) with
  | Ast.Lvar v, _ when is_marker v -> (
      let r_expr =
        match r with
        | Ast.Lvar rv -> Ast.Var rv
        | Ast.Larray (ra, ridx) -> Ast.Array_ref (ra, ridx)
        | Ast.Lsection _ -> raise No_match
      in
      match M.find_opt v b.scalars with
      | Some bound -> if poly_eq u bound r_expr then b else raise No_match
      | None -> { b with scalars = M.add v r_expr b.scalars })
  | Ast.Lvar v, Ast.Lvar rv -> (
      match gen_class v with
      | Some _ ->
          if gen_class v <> gen_class rv then raise No_match
          else (
            match M.find_opt v b.gen with
            | Some bound ->
                if String.equal bound rv then b else raise No_match
            | None -> { b with gen = M.add v rv b.gen })
      | None -> if String.equal v rv then b else raise No_match)
  | Ast.Larray (a, tidx), Ast.Larray (ra, ridx) ->
      match_expr u b (Ast.Array_ref (a, tidx)) (Ast.Array_ref (ra, ridx))
  | _ -> raise No_match

let rec match_stmt u (b : binding) (t : Ast.stmt) (r : Ast.stmt) : binding =
  match (t.node, r.node) with
  | Ast.Assign (tlv, te), Ast.Assign (rlv, re) ->
      let b = match_lvalue u b tlv rlv in
      match_expr u b te re
  | Ast.Do_loop tl, Ast.Do_loop rl ->
      let b = match_expr u b (Ast.Var tl.index) (Ast.Var rl.index) in
      let b = match_expr u b tl.lo rl.lo in
      let b = match_expr u b tl.hi rl.hi in
      let b = match_expr u b tl.step rl.step in
      match_body u b tl.body rl.body
  | Ast.If (tc, tt, te), Ast.If (rc, rt, re) ->
      let b = match_expr u b tc rc in
      let b = match_body u b tt rt in
      match_body u b te re
  | Ast.Call (tn, targs), Ast.Call (rn, rargs) when String.equal tn rn ->
      match_list u b targs rargs
  | Ast.Print tes, Ast.Print res -> match_list u b tes res
  | Ast.Stop tm, Ast.Stop rm when tm = rm -> b
  | Ast.Return, Ast.Return -> b
  | _ -> raise No_match

and match_body u b ts rs : binding =
  let ts = strip ts and rs = strip rs in
  if List.length ts <> List.length rs then raise No_match
  else
    (* ordered first; greedy multiset on failure (tolerates reordering) *)
    try List.fold_left2 (match_stmt u) b ts rs
    with No_match ->
      let used = Array.make (List.length rs) false in
      let rs = Array.of_list rs in
      List.fold_left
        (fun b t ->
          let rec try_at i =
            if i >= Array.length rs then raise No_match
            else if used.(i) then try_at (i + 1)
            else
              match match_stmt u b t rs.(i) with
              | b' ->
                  used.(i) <- true;
                  b'
              | exception No_match -> try_at (i + 1)
          in
          try_at 0)
        b ts

(* ------------------------------------------------------------------ *)
(* Region reversal                                                      *)
(* ------------------------------------------------------------------ *)

(** Recover the actual argument expressions from a successful match. *)
let extract_actuals (caller : Ast.program_unit) (annot : annotation)
    (b : binding) ~(recorded : Ast.expr list) : Ast.expr list =
  List.map2
    (fun f recorded_actual ->
      let marker = "?" ^ f in
      match M.find_opt marker b.scalars with
      | Some e -> e
      | None -> (
          match M.find_opt marker b.arrays with
          | Some (base, base_idx) ->
              let all_ones =
                List.for_all (fun e -> e = Ast.Int_const 1) base_idx
              in
              let caller_rank =
                match Ast.find_decl caller base with
                | Some d -> List.length d.d_dims
                | None -> List.length base_idx
              in
              if all_ones && caller_rank = List.length base_idx then
                Ast.Var base
              else Ast.Array_ref (base, base_idx)
          | None -> recorded_actual))
    annot.an_params recorded

(* Apply the pipeline's normalization sequence to a template body. *)
let normalize_template (u : Ast.program_unit) (stmts : Ast.stmt list) :
    Ast.stmt list =
  let env0 = Analysis.Constprop.parameter_env u in
  stmts
  |> Analysis.Constprop.propagate_stmts u env0
  |> Analysis.Induction.run_stmts u
  |> Analysis.Forward_subst.process_block u []
  |> Analysis.Constprop.propagate_stmts u env0

(** Reverse all tagged regions in the program. *)
let run ~(cfg : Annot_inline.config) ~(annots : annotation list)
    (program : Ast.program) : Ast.program * stats =
  Fault.point "core.reverse";
  let stats = new_stats () in
  let process_unit (u : Ast.program_unit) =
    let rec walk stmts =
      List.concat_map
        (fun (s : Ast.stmt) ->
          match s.Ast.node with
          | Ast.Do_loop l ->
              [ { s with node = Ast.Do_loop { l with body = walk l.body } } ]
          | Ast.If (c, t, e) -> [ { s with node = Ast.If (c, walk t, walk e) } ]
          | Ast.Tagged (tag, region) -> (
              let region = walk region in
              match
                List.find_opt
                  (fun a -> String.equal a.an_name tag.tag_callee)
                  annots
              with
              | None ->
                  stats.fallback <-
                    (tag.tag_callee, "no annotation registered")
                    :: stats.fallback;
                  [ Ast.mk (Ast.Call (tag.tag_callee, tag.tag_actuals)) ]
              | Some annot -> (
                  (* instantiate the template and push it through the SAME
                     normalizations the optimizer applied to the region, so
                     matching only has to bridge the unification markers *)
                  let template, _ =
                    Annot_inline.instantiate ~cfg ~program ~caller:u ~annot
                      ~mode:`Match
                  in
                  let template = normalize_template u template in
                  match
                    Span.span ~cat:"reverse" ~unit_:u.u_name
                      ("reverse-match:" ^ tag.tag_callee) (fun () ->
                        match_body u empty_binding template region)
                  with
                  | b ->
                      stats.matched <- stats.matched + 1;
                      Prof.tick_reverse_match ();
                      let actuals =
                        extract_actuals u annot b ~recorded:tag.tag_actuals
                      in
                      List.iter2
                        (fun e1 e2 ->
                          if not (Analysis.Simplify.equal_mod_simplify u e1 e2)
                          then
                            stats.extracted_mismatch <-
                              stats.extracted_mismatch + 1)
                        actuals tag.tag_actuals;
                      [ Ast.mk (Ast.Call (tag.tag_callee, actuals)) ]
                  | exception No_match ->
                      stats.fallback <-
                        (tag.tag_callee, "pattern match failed")
                        :: stats.fallback;
                      [ Ast.mk (Ast.Call (tag.tag_callee, tag.tag_actuals)) ]))
          | _ -> [ s ])
        stmts
    in
    let body = walk u.u_body in
    (* drop now-unreferenced compiler-generated declarations *)
    let referenced =
      List.fold_left
        (fun acc (a : Analysis.Usedef.access) ->
          Analysis.Usedef.S.add a.acc_name acc)
        Analysis.Usedef.S.empty
        (Analysis.Usedef.accesses_of_stmts body)
    in
    let decls =
      List.filter
        (fun d ->
          match gen_class d.Ast.d_name with
          | Some _ -> Analysis.Usedef.S.mem d.Ast.d_name referenced
          | None -> true)
        u.u_decls
    in
    { u with u_body = body; u_decls = decls }
  in
  ({ Ast.p_units = List.map process_unit program.p_units }, stats)
