(** Pipeline-level name for the pass profiler.

    The single source of truth is {!Frontend.Prof} (the dependence tester,
    the inliners and the validation oracle tick its counters from below
    [core]); this module is a pure re-export shim so the pipeline, the
    suite driver and the CLI can keep saying [Core.Prof]. *)

include Frontend.Prof
