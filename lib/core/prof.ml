(** Pipeline-level view of the pass profiler.

    The representation lives in {!Frontend.Prof} (the dependence tester
    and the inliners, which [core] depends on, tick its counters); this
    module re-exports it under [Core.Prof] — the name the pipeline, the
    suite driver and the CLI use — and adds human-readable rendering. *)

include Frontend.Prof

(** Multi-line report: pass timings in pipeline order plus the work
    counters, e.g. for [parinline --profile]. *)
let render (p : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b "profile: pass timings (ms)\n";
  List.iter
    (fun (name, ms) -> Buffer.add_string b (Printf.sprintf "  %-14s %9.3f\n" name ms))
    (pass_ms p);
  Buffer.add_string b (Printf.sprintf "  %-14s %9.3f\n" "total" (total_ms p));
  let c = snapshot p in
  Buffer.add_string b
    (Printf.sprintf
       "counters: dep-tests %d run / %d independent; annot-sites %d \
        inlined; reverse %d matched; stmts %d normalized\n"
       c.dep_tests_run c.dep_tests_independent c.annot_sites_inlined
       c.reverse_sites_matched c.stmts_normalized);
  Buffer.contents b
