(** Pipeline-level name for the live telemetry registry.

    The single source of truth is {!Frontend.Metrics} (the dependence
    tester, the inliners, the pool and the daemon all tick it from their
    own layers); this module is a pure re-export shim so pipeline-level
    code can keep saying [Core.Metrics], matching {!Core.Prof} and
    {!Core.Fault}. *)

include Frontend.Metrics
