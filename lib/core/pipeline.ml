(** The compilation pipelines compared in the paper's evaluation:

    - [No_inlining]      : normalize, parallelize.
    - [Conventional]     : Polaris-default inlining, normalize, parallelize.
    - [Annotation_based] : annotation-based inlining, normalize,
                           parallelize, reverse inlining (Fig. 15).
    - [Demand]           : analysis leg of the demand-driven planner
                           ([Planner.run]).  The planner materializes its
                           current callee selection *before* calling the
                           pipeline, so the inline phase is a no-op here;
                           the reverse phase restores the selected
                           annotation regions exactly as [Annotation_based]
                           does (pass only the selected annotations).

    Normalization = constant propagation, induction-variable substitution,
    forward substitution, and a final constant-propagation sweep -- the
    transformations the reverse-inline matcher is built to tolerate. *)

open Frontend

type mode = No_inlining | Conventional | Annotation_based | Demand

let mode_name = function
  | No_inlining -> "no-inlining"
  | Conventional -> "conventional"
  | Annotation_based -> "annotation-based"
  | Demand -> "demand"

type result = {
  res_mode : mode;
  res_program : Ast.program;  (** final optimized source *)
  res_reports : Parallelizer.Parallelize.loop_report list;
  res_marked : int list;  (** loop ids carrying a directive, deduplicated *)
  res_code_size : int;  (** non-comment line count of the output *)
  res_original_loops : int list;  (** loop ids present in the input *)
  res_inline_stats : Inliner.Inline.stats option;
  res_annot_stats : Annot_inline.stats option;
  res_reverse_stats : Reverse.stats option;
  res_diags : Diag.t list;
      (** diagnostics accumulated by {!run_robust}; [[]] from {!run} *)
  res_validation : Checker.Oracle.verdict option;
      (** oracle verdict when {!run_robust} ran with [~validate:true] *)
}

let stmt_count (p : Ast.program) =
  List.fold_left
    (fun n u -> Ast.fold_stmts (fun n _ -> n + 1) n u.Ast.u_body)
    0 p.Ast.p_units

(* One pipeline phase: wall time lands in the [name] pass bucket and,
   when a span sink is armed, the phase emits a begin/end span pair.
   Both instruments are inert (a load and a branch each) when off. *)
let phase name f = Prof.time name (fun () -> Span.span ~cat:"pipeline" name f)

let normalize (p : Ast.program) : Ast.program =
  (* the count is gathered only under an installed profile; the sweep
     itself stays untouched when profiling is off *)
  if Prof.enabled () then Prof.add_stmts_normalized (stmt_count p);
  phase "normalize" (fun () ->
      p |> Analysis.Constprop.run |> Analysis.Induction.run
      |> Analysis.Forward_subst.run |> Analysis.Constprop.run)

let original_loop_ids (p : Ast.program) =
  List.concat_map
    (fun u -> List.map (fun (l : Ast.do_loop) -> l.loop_id)
        (Ast.collect_loops u.Ast.u_body))
    p.Ast.p_units

(* Units reachable from MAIN through calls and function references:
   standalone bodies of fully-inlined subroutines never execute, and the
   paper's loop accounting follows the executed code. *)
let reachable_units (p : Ast.program) =
  let module S = Set.Make (String) in
  let tbl = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace tbl u.Ast.u_name u) p.Ast.p_units;
  let rec visit seen name =
    if S.mem name seen then seen
    else
      match Hashtbl.find_opt tbl name with
      | None -> seen
      | Some u ->
          let seen = S.add name seen in
          let callees =
            List.map fst (Analysis.Usedef.calls u.Ast.u_body)
            @ Analysis.Usedef.func_calls u.Ast.u_body
          in
          List.fold_left visit seen callees
  in
  let mains =
    List.filter_map
      (fun u -> if u.Ast.u_kind = Ast.Main then Some u.Ast.u_name else None)
      p.Ast.p_units
  in
  List.fold_left visit S.empty mains

let marked_ids program reports =
  let module S = Set.Make (String) in
  let live = reachable_units program in
  List.sort_uniq compare
    (List.filter_map
       (fun (r : Parallelizer.Parallelize.loop_report) ->
         if r.rep_marked && S.mem r.rep_unit live then Some r.rep_loop_id
         else None)
       reports)

(* Representative verdict per loop id over the units reachable from
   MAIN: a marked copy wins over any serial copy, otherwise the first
   report in analysis order stands — the same "parallel anywhere live"
   rule as {!marked_ids}. *)
let verdict_map (r : result) : (int * Parallelizer.Verdict.t) list =
  let module SS = Set.Make (String) in
  let live = reachable_units r.res_program in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (rep : Parallelizer.Parallelize.loop_report) ->
      if SS.mem rep.rep_unit live then
        match Hashtbl.find_opt tbl rep.rep_loop_id with
        | None ->
            Hashtbl.add tbl rep.rep_loop_id rep.rep_verdict;
            order := rep.rep_loop_id :: !order
        | Some old ->
            if
              (not (Parallelizer.Verdict.is_marked old))
              && Parallelizer.Verdict.is_marked rep.rep_verdict
            then Hashtbl.replace tbl rep.rep_loop_id rep.rep_verdict)
    r.res_reports;
  List.rev_map (fun id -> (id, Hashtbl.find tbl id)) !order

(** Run one pipeline configuration.  With [?prof], the profile is
    installed for the duration of the run: each phase's wall time lands in
    its pass bucket and the analysis counters accumulate. *)
let run ?prof ?(par_config = Parallelizer.Parallelize.default_config)
    ?(inline_config = Inliner.Inline.default_config)
    ?(annot_config = Annot_inline.default_config)
    ?(annots : Annot_ast.annotation list = []) ~(mode : mode)
    (program : Ast.program) : result =
  Prof.with_opt prof @@ fun () ->
  let original_loops = original_loop_ids program in
  let program, inline_stats, annot_stats =
    phase "inline" (fun () ->
        match mode with
        | No_inlining | Demand -> (program, None, None)
        | Conventional ->
            let p, st = Inliner.Inline.run ~config:inline_config program in
            (p, Some st, None)
        | Annotation_based ->
            let p, st = Annot_inline.run ~config:annot_config ~annots program in
            (p, None, Some st))
  in
  let program = normalize program in
  let program, reports =
    phase "parallelize" (fun () ->
        Parallelizer.Parallelize.run ~config:par_config program)
  in
  let program, reverse_stats =
    phase "reverse" (fun () ->
        match mode with
        | Annotation_based | Demand ->
            let p, st = Reverse.run ~cfg:annot_config ~annots program in
            (p, Some st)
        | No_inlining | Conventional -> (program, None))
  in
  {
    res_mode = mode;
    res_program = program;
    res_reports = reports;
    res_marked = marked_ids program reports;
    res_code_size = Pretty.code_size program;
    res_original_loops = List.sort_uniq compare original_loops;
    res_inline_stats = inline_stats;
    res_annot_stats = annot_stats;
    res_reverse_stats = reverse_stats;
    res_diags = [];
    res_validation = None;
  }

(** Parse + resolve source and annotations, then run. *)
let run_source ?prof ?par_config ?inline_config ?annot_config ~mode
    ?(annot_source = "") (source : string) : result =
  Prof.with_opt prof @@ fun () ->
  let program = phase "parse" (fun () -> Resolve.parse source) in
  let annots =
    Prof.time "parse" (fun () ->
        if String.trim annot_source = "" then []
        else Annot_parser.parse_annotations annot_source)
  in
  run ?par_config ?inline_config ?annot_config ~annots ~mode program

(* ------------------------------------------------------------------ *)
(* Fault-isolated pipeline: every pass runs behind a per-unit barrier
   so one sick unit degrades locally instead of killing the program. *)

(* Every salvage barrier captures the raw backtrace first thing in its
   handler (before any allocation can clobber it): collector control
   flow is re-raised with the original trace preserved, and salvage
   diagnostics carry the rendered trace in their payload. *)
let reraise e = Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())

let bt_string () =
  Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())

(* Run [f] on [u]; on an unexpected exception keep the pre-pass unit and
   record a warning attributed to [pass].  [Error_limit] is the
   collector's own control flow and must not be swallowed. *)
let guard_unit dg ~code ~pass (u : Ast.program_unit)
    (f : Ast.program_unit -> Ast.program_unit) : Ast.program_unit =
  try f u with
  | (Diag.Error_limit _ | Diag.Fatal _) as e -> reraise e
  | e ->
      let backtrace = bt_string () in
      Diag.warn dg ~unit_:u.Ast.u_name ~backtrace code
        "%s crashed on unit %s (%s); pass skipped for this unit" pass
        u.Ast.u_name (Printexc.to_string e);
      u

(* Same normalization sequence as {!normalize}, but each pass is guarded
   per unit: a crashing pass restores the pre-pass body of that unit and
   moves on. *)
let normalize_robust dg (p : Ast.program) : Ast.program =
  if Prof.enabled () then Prof.add_stmts_normalized (stmt_count p);
  phase "normalize" @@ fun () ->
  let passes =
    [
      ("constant propagation", Analysis.Constprop.run_unit);
      ("induction substitution", Analysis.Induction.run_unit);
      ("forward substitution", Analysis.Forward_subst.run_unit);
      ("constant propagation", Analysis.Constprop.run_unit);
    ]
  in
  let norm_unit u =
    List.fold_left
      (fun u (pass, f) -> guard_unit dg ~code:Diag.Normalize ~pass u f)
      u passes
  in
  { Ast.p_units = List.map norm_unit p.Ast.p_units }

(** Fault-tolerant variant of {!run}.  Degradation ladder:
    annotation-based inlining falls back per call site (see
    [Annot_inline.run ~robust]), then per program to conventional
    inlining, then to no inlining; a normalization pass that crashes is
    skipped for that unit with the pre-pass AST restored; a crashing
    parallelizer leaves the unit serial; a reverse-inline failure keeps
    the inlined regions.  Everything salvaged is recorded in
    [res_diags].  Pass [dg] to accumulate into an existing collector
    (e.g. one already holding parse diagnostics). *)
let run_robust ?prof ?(par_config = Parallelizer.Parallelize.default_config)
    ?(inline_config = Inliner.Inline.default_config)
    ?(annot_config = Annot_inline.default_config)
    ?(annots : Annot_ast.annotation list = [])
    ?(dg = Diag.collector ()) ?(validate = false)
    ?(validate_threads = Checker.Oracle.default_threads) ~(mode : mode)
    (program : Ast.program) : result =
  Prof.with_opt prof @@ fun () ->
  let original_loops = original_loop_ids program in
  let conventional p =
    try
      let p', st = Inliner.Inline.run ~config:inline_config p in
      (p', Some st)
    with
    | (Diag.Error_limit _ | Diag.Fatal _) as e -> reraise e
    | e ->
        let backtrace = bt_string () in
        Diag.warn dg ~backtrace Diag.Inline
          "conventional inlining failed (%s); continuing without inlining"
          (Printexc.to_string e);
        (p, None)
  in
  let program, inline_stats, annot_stats =
    phase "inline" @@ fun () ->
    match mode with
    | No_inlining | Demand -> (program, None, None)
    | Conventional ->
        let p, st = conventional program in
        (p, st, None)
    | Annotation_based -> (
        match Annot_inline.run ~config:annot_config ~robust:true ~annots
                program
        with
        | p, st ->
            List.iter
              (fun (caller, callee, why) ->
                Diag.warn dg ~unit_:caller Diag.Annot
                  "annotation for %s failed to instantiate in %s (%s); \
                   call site left un-inlined"
                  callee caller why)
              st.Annot_inline.failed;
            (p, None, Some st)
        | exception ((Diag.Error_limit _ | Diag.Fatal _) as e) -> reraise e
        | exception e ->
            let backtrace = bt_string () in
            Diag.warn dg ~backtrace Diag.Annot
              "annotation-based inlining failed (%s); falling back to \
               conventional inlining"
              (Printexc.to_string e);
            let p, st = conventional program in
            (p, st, None))
  in
  let program = normalize_robust dg program in
  let program, reports =
    phase "parallelize" @@ fun () ->
    let pure =
      if not par_config.Parallelizer.Parallelize.allow_pure_functions then
        Parallelizer.Parallelize.S.empty
      else
        try Parallelizer.Purity.pure_functions program with
        | (Diag.Error_limit _ | Diag.Fatal _) as e -> reraise e
        | e ->
            let backtrace = bt_string () in
            Diag.warn dg ~backtrace Diag.Parallel
              "purity analysis failed (%s); treating all functions as impure"
              (Printexc.to_string e);
            Parallelizer.Parallelize.S.empty
    in
    let units, reports =
      List.fold_left
        (fun (us, rs) u ->
          match Parallelizer.Parallelize.run_unit ~config:par_config ~pure u
          with
          | u', r -> (u' :: us, rs @ r)
          | exception ((Diag.Error_limit _ | Diag.Fatal _) as e) -> reraise e
          | exception e ->
              let backtrace = bt_string () in
              Diag.warn dg ~unit_:u.Ast.u_name ~backtrace Diag.Parallel
                "parallelizer crashed on unit %s (%s); unit left serial"
                u.Ast.u_name (Printexc.to_string e);
              (u :: us, rs))
        ([], []) program.Ast.p_units
    in
    ({ Ast.p_units = List.rev units }, reports)
  in
  let program, reverse_stats =
    phase "reverse" @@ fun () ->
    match mode with
    | No_inlining | Conventional -> (program, None)
    | Annotation_based | Demand -> (
        match Reverse.run ~cfg:annot_config ~annots program with
        | p, st ->
            List.iter
              (fun (callee, why) ->
                Diag.warn dg Diag.Reverse
                  "reverse-inline mismatch for %s (%s); region restored \
                   from recorded actuals"
                  callee why)
              st.Reverse.fallback;
            if st.Reverse.extracted_mismatch > 0 then
              Diag.warn dg Diag.Reverse
                "%d unified actual(s) disagree with recorded actuals"
                st.Reverse.extracted_mismatch;
            (p, Some st)
        | exception ((Diag.Error_limit _ | Diag.Fatal _) as e) -> reraise e
        | exception e ->
            let backtrace = bt_string () in
            Diag.warn dg ~backtrace Diag.Reverse
              "reverse inlining failed (%s); inlined regions kept"
              (Printexc.to_string e);
            (program, None))
  in
  (* Validation oracle: serial traced replay + differential parallel run
     over the optimized program.  The verdict's diagnostics join the
     salvage record; the oracle itself never raises on a bad program. *)
  let validation =
    if not validate then None
    else
      Some
        (phase "validate" (fun () ->
             Checker.Oracle.validate ~threads:validate_threads program))
  in
  let validation_diags =
    match validation with
    | None -> []
    | Some v -> v.Checker.Oracle.v_diags
  in
  {
    res_mode = mode;
    res_program = program;
    res_reports = reports;
    res_marked = marked_ids program reports;
    res_code_size = Pretty.code_size program;
    res_original_loops = List.sort_uniq compare original_loops;
    res_inline_stats = inline_stats;
    res_annot_stats = annot_stats;
    res_reverse_stats = reverse_stats;
    res_diags = Diag.to_list dg @ validation_diags;
    res_validation = validation;
  }

(** Robust end-to-end entry: salvaging parse (units that fail to parse
    are dropped with located diagnostics), annotation-file faults degrade
    to no annotations, then {!run_robust}. *)
let run_source_robust ?prof ?par_config ?inline_config ?annot_config
    ?max_errors ?validate ?validate_threads ~mode ?(annot_source = "")
    (source : string) : result =
  Prof.with_opt prof @@ fun () ->
  let dg = Diag.collector ?max_errors () in
  let program, parse_diags =
    phase "parse" (fun () -> Resolve.parse_robust ?max_errors source)
  in
  let annots =
    Prof.time "parse" @@ fun () ->
    if String.trim annot_source = "" then []
    else
      try Annot_parser.parse_annotations annot_source with
      | Annot_parser.Annot_parse_error why ->
          Diag.error dg Diag.Annot
            "annotation file rejected (%s); continuing without annotations"
            why;
          []
      | Diag.Fatal d ->
          Diag.emit dg d;
          []
  in
  let r = run_robust ?par_config ?inline_config ?annot_config ~annots ~dg
      ?validate ?validate_threads ~mode program
  in
  { r with res_diags = parse_diags @ r.res_diags }

(** Parallel-loop accounting for Table II: given a baseline (no-inlining)
    result and a mode result, compute (#par, #loss, #extra) counting only
    loops of the original program, a loop counting as parallelized when any
    surviving copy carries a directive. *)
let table2_counts ~(baseline : result) (r : result) : int * int * int =
  let original = baseline.res_original_loops in
  let in_original ids = List.filter (fun i -> List.mem i original) ids in
  let base = in_original baseline.res_marked in
  let mine = in_original r.res_marked in
  let loss = List.filter (fun i -> not (List.mem i mine)) base in
  let extra = List.filter (fun i -> not (List.mem i base)) mine in
  (List.length mine, List.length loss, List.length extra)
