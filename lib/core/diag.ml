(** Pipeline-level name for the structured diagnostics subsystem.

    The single source of truth is {!Frontend.Diag} (the lexer and parser,
    which [core] depends on, must be able to raise located diagnostics,
    and the checker renders race reports without depending on [core]);
    this module is a pure re-export shim so the pipeline, experiment
    drivers and CLI can keep saying [Core.Diag]. *)

include Frontend.Diag
