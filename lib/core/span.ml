(** Pipeline-level name for the span tracer.

    The single source of truth is {!Frontend.Span} (the dependence
    tester, the inliners and the reverse matcher emit spans from below
    [core]); this module is a pure re-export shim, symmetric with
    {!Core.Prof} and {!Core.Diag}, so the pipeline, the suite driver
    and the CLI can keep saying [Core.Span]. *)

include Frontend.Span
