(** The three compilation pipelines compared in the paper's evaluation. *)

open Frontend

(** Inlining configuration: none, Polaris-default conventional inlining,
    the paper's annotation-based inlining (with reverse inlining), or the
    analysis leg of the demand-driven planner.  [Demand] expects the
    planner to have materialized its callee selection already, so the
    inline phase is a no-op; the reverse phase restores the *selected*
    annotation regions exactly as [Annotation_based] does. *)
type mode = No_inlining | Conventional | Annotation_based | Demand

val mode_name : mode -> string

type result = {
  res_mode : mode;
  res_program : Ast.program;  (** final optimized source *)
  res_reports : Parallelizer.Parallelize.loop_report list;
      (** one report per analyzed loop (copies share loop ids) *)
  res_marked : int list;
      (** ids of loops carrying a directive in code reachable from MAIN *)
  res_code_size : int;  (** non-comment line count of the output *)
  res_original_loops : int list;  (** loop ids present in the input *)
  res_inline_stats : Inliner.Inline.stats option;  (** [Conventional] only *)
  res_annot_stats : Annot_inline.stats option;  (** [Annotation_based] only *)
  res_reverse_stats : Reverse.stats option;  (** [Annotation_based] only *)
  res_diags : Diag.t list;
      (** diagnostics accumulated by the robust entry points; [[]] from
          {!run} / {!run_source} *)
  res_validation : Checker.Oracle.verdict option;
      (** validation-oracle verdict (race detection + serial/parallel
          differential) when {!run_robust} ran with [~validate:true];
          [None] otherwise *)
}

(** The normalization sequence applied before dependence analysis (and,
    symmetrically, to reverse-inline templates): constant propagation,
    induction-variable substitution, forward substitution, constant
    propagation. *)
val normalize : Ast.program -> Ast.program

(** Units reachable from MAIN through calls and function references. *)
val reachable_units : Ast.program -> Set.Make(String).t

(** Total statement count of a program — the planner's code-growth
    currency. *)
val stmt_count : Ast.program -> int

(** Representative verdict per analyzed loop id, restricted to units
    reachable from MAIN; a marked copy wins over a serial copy (a loop
    parallel *anywhere live* counts as parallel, matching the Table II
    accounting). *)
val verdict_map : result -> (int * Parallelizer.Verdict.t) list

(** Run one pipeline configuration over a parsed program.  With
    [?prof], the profile is installed (domain-locally) for the duration:
    phase wall times land in pass buckets ("inline", "normalize",
    "parallelize", "reverse") and the analysis counters accumulate.
    Without it the instrumentation is inert — a load and a branch. *)
val run :
  ?prof:Prof.t ->
  ?par_config:Parallelizer.Parallelize.config ->
  ?inline_config:Inliner.Inline.config ->
  ?annot_config:Annot_inline.config ->
  ?annots:Annot_ast.annotation list ->
  mode:mode ->
  Ast.program ->
  result

(** Parse source (and annotation source) and run. *)
val run_source :
  ?prof:Prof.t ->
  ?par_config:Parallelizer.Parallelize.config ->
  ?inline_config:Inliner.Inline.config ->
  ?annot_config:Annot_inline.config ->
  mode:mode ->
  ?annot_source:string ->
  string ->
  result

(** Fault-tolerant variant of {!run}: every pass runs behind a per-unit
    fault barrier, degrading locally instead of killing the run.  The
    degradation ladder is annotation-based inlining (per call site) →
    conventional inlining → no inlining; a crashing normalization pass is
    skipped for that unit with the pre-pass AST restored; a crashing
    parallelizer leaves the unit serial; a reverse-inline failure keeps
    the inlined regions.  Salvage events land in [res_diags] as warnings.
    Pass [dg] to accumulate into an existing collector; its
    [Error_limit] is not caught.

    With [~validate:true] the optimized program additionally runs under
    the validation oracle (serial traced replay for clause-aware race
    detection, then a differential parallel run at [validate_threads]
    domains); the verdict lands in [res_validation] and its diagnostics
    join [res_diags]. *)
val run_robust :
  ?prof:Prof.t ->
  ?par_config:Parallelizer.Parallelize.config ->
  ?inline_config:Inliner.Inline.config ->
  ?annot_config:Annot_inline.config ->
  ?annots:Annot_ast.annotation list ->
  ?dg:Diag.collector ->
  ?validate:bool ->
  ?validate_threads:int ->
  mode:mode ->
  Ast.program ->
  result

(** Robust end-to-end entry: salvaging parse (bad units are dropped with
    located diagnostics), annotation-file faults degrade to running
    without annotations, then {!run_robust}.  [max_errors] caps the
    parser's error budget (default {!Diag.default_max_errors}). *)
val run_source_robust :
  ?prof:Prof.t ->
  ?par_config:Parallelizer.Parallelize.config ->
  ?inline_config:Inliner.Inline.config ->
  ?annot_config:Annot_inline.config ->
  ?max_errors:int ->
  ?validate:bool ->
  ?validate_threads:int ->
  mode:mode ->
  ?annot_source:string ->
  string ->
  result

(** Table II accounting: [(par, loss, extra)] of a configuration against
    the no-inlining baseline, counting only loops of the original program;
    a loop counts as parallelized when any reachable copy is marked. *)
val table2_counts : baseline:result -> result -> int * int * int
