(** Annotation-based inlining (paper Section III): substitute CALLs to
    annotated subroutines with their annotation bodies translated to
    Fortran, bracketed in [Tagged] regions for later reverse inlining.

    Key translations:
    - scalar formals are replaced by the actual expressions;
    - array formals map dimension-by-dimension onto the actual's array
      ([M1[i,j]] with actual [PP(1,1,KS-1)] gives [PP(i,j,KS-1)]),
      avoiding the linearization pathology of conventional inlining;
    - [y = unknown(x1..xn)] becomes stores of the operands into a fresh
      uninitialized array plus a read of it;
    - [unique(x1..xn)] becomes [x1 + R*x2 + R^2*x3 + ...];
    - [do] loops and sections become counted DO loops whose loop ids map
      onto the real callee's loops (pre-order), for Table II accounting. *)

type config = {
  unique_radix : int;  (** the injectivity radix [R]; must exceed operand
                           ranges (developer obligation, as in the paper) *)
  only_in_loops : bool;  (** substitute only call sites inside a loop *)
}

val default_config : config

type stats = {
  mutable sites : (string * string * int) list;
      (** inlined call sites as (caller, callee, tag id) *)
  mutable skipped : (string * string * string) list;
      (** skipped sites as (caller, callee, reason) *)
  mutable failed : (string * string * string) list;
      (** sites kept un-inlined after an *unexpected* instantiation
          exception, as (caller, callee, exn); robust mode only *)
}

exception Skip of string

(** Map annotation-rank subscripts onto an actual's base indices (exposed
    for the reverse inliner's unification). *)
val map_onto_base :
  base_idx:Frontend.Ast.expr list ->
  Frontend.Ast.expr list ->
  Frontend.Ast.expr list

(** Instantiate one annotation at a call site ([`Inline actuals]) or as a
    unification template with ["?F"] markers ([`Match]).  Returns the
    translated statements and the declarations to add to the caller. *)
val instantiate :
  cfg:config ->
  program:Frontend.Ast.program ->
  caller:Frontend.Ast.program_unit ->
  annot:Annot_ast.annotation ->
  mode:[ `Inline of Frontend.Ast.expr list | `Match ] ->
  Frontend.Ast.stmt list * Frontend.Ast.decl list

(** Reset the calling domain's generated-name counters (IAN/UNKANN).
    Called once per compilation task by the suite driver so output text
    is deterministic regardless of task scheduling. *)
val reset_gensym : unit -> unit

(** Apply annotation-based inlining over the whole program.  With
    [~robust:true], a call site whose instantiation raises an unexpected
    exception is kept un-inlined and recorded in [stats.failed] instead of
    aborting the run. *)
val run :
  ?config:config ->
  ?robust:bool ->
  annots:Annot_ast.annotation list ->
  Frontend.Ast.program ->
  Frontend.Ast.program * stats
