(** Hash-consed subscripts and memoized dependence testing.

    Inlining — conventional or annotation-based — multiplies the array
    references visible inside each candidate loop, and the pairwise
    dependence tester pays for that blow-up quadratically: the Prof
    counters show [dep_tests_run] dominating analysis time on the suite
    matrix.  Most of those pairs are re-tests: inlined code repeats the
    same subscript expressions over and over, sibling loops with the
    same header shape ask the exact same questions, and the three
    inlining configurations re-analyze every unit the inliner left
    untouched.

    This module removes the redundancy without changing a single verdict:

    - {b Interning}: structurally equal array references ([aref]s: the
      subscript expression list plus the enclosing inner-loop context)
      are hash-consed to a small integer id, giving O(1) equality and a
      stable key.
    - {b Context fingerprints}: everything {!Ddtest.may_carry_why}
      reads from its {!Ctx.t} — the candidate loop's index, bounds and
      step, and the positivity assumptions — is interned to a second id.
    - {b Type signatures}: the unit itself influences a test only
      through {!Frontend.Ast.type_of_var} on the identifiers occurring
      in the keyed expressions (typing decides which sub-expressions
      {!Analysis.Simplify} sends through the polynomial normal form).
      Both intern keys therefore carry the sorted [(identifier, type)]
      signature of their expressions, which makes entries
      unit-independent: the cache survives across units, across the
      three inlining configurations, and across whole programs for the
      lifetime of the domain.  Sharing is a pure-function equality, not
      a heuristic.
    - {b Memoization}: [may_carry_why] results are cached on the
      [(ctx-fingerprint, aref, aref)] triple.  The pair order is part of
      the key (the deciding-test provenance string is
      direction-sensitive), so a cached answer is byte-identical to a
      recomputed one.

    All state lives in domain-local storage (the same [Domain.DLS]
    pattern as {!Frontend.Prof} and {!Frontend.Span}), so the [--jobs N]
    suite driver's concurrent compilations never share or race on a
    table.  Per-point hit/miss counters depend on what the domain
    analyzed earlier; run the bench suite single-job when pinning them
    in CI. *)

open Frontend

(* Identifiers whose typing can influence a dependence test: variable,
   array and section heads (typed via [Ast.type_of_var]); function names
   type by intrinsic table or the implicit rule — name-only — but are
   included anyway since a declaration for the name shadows nothing and
   splitting the cache on it is merely conservative. *)
let rec add_idents acc (e : Ast.expr) =
  match e with
  | Ast.Var v -> v :: acc
  | Ast.Array_ref (n, args) | Ast.Func_call (n, args) ->
      List.fold_left add_idents (n :: acc) args
  | Ast.Section (n, bounds) ->
      List.fold_left
        (fun acc (a, b, c) ->
          List.fold_left add_idents acc (List.filter_map Fun.id [ a; b; c ]))
        (n :: acc) bounds
  | Ast.Binop (_, a, b) -> add_idents (add_idents acc a) b
  | Ast.Unop (_, a) -> add_idents acc a
  | Ast.Int_const _ | Ast.Real_const _ | Ast.Str_const _
  | Ast.Logical_const _ ->
      acc

(* Sorted, deduplicated [(identifier, type)] signature of [exprs] plus
   the explicitly [named] identifiers (loop index variables). *)
let type_sig (u : Ast.program_unit) ~(named : string list)
    (exprs : Ast.expr list) : (string * Ast.dtype) list =
  let names = List.fold_left add_idents named exprs in
  List.sort_uniq compare (List.map (fun n -> (n, Ast.type_of_var u n)) names)

(* One aref as the tester sees it: subscripts + inner-loop context +
   the type signature that fixes how they simplify. *)
type aref_key =
  Ast.expr list
  * (string * Ast.expr * Ast.expr) list
  * (string * Ast.dtype) list

(* Everything [may_carry_why] reads from the context besides the unit
   (whose influence the type signature captures — see module comment). *)
type ctx_key = {
  ck_index : string;
  ck_lo : Ast.expr;
  ck_hi : Ast.expr;
  ck_step : Ast.expr;
  ck_positive : string list;  (** sorted *)
  ck_types : (string * Ast.dtype) list;  (** sorted *)
}

type state = {
  arefs : (aref_key, int) Hashtbl.t;
  ctxs : (ctx_key, int) Hashtbl.t;
  table : (int * int * int, bool * string) Hashtbl.t;
      (** (ctx fp, aref a, aref b) -> (may-carry, deciding test / reason) *)
  mutable next_id : int;
  mutable enabled : bool;
}

let fresh () =
  {
    arefs = Hashtbl.create 64;
    ctxs = Hashtbl.create 16;
    table = Hashtbl.create 256;
    next_id = 0;
    enabled = true;
  }

let slot : state Domain.DLS.key = Domain.DLS.new_key fresh
let state () = Domain.DLS.get slot

(** Drop every table entry.  Not needed for soundness (keys are
    self-contained); exists for tests and as a pressure valve for
    long-lived domains. *)
let reset () =
  let s = state () in
  Hashtbl.reset s.arefs;
  Hashtbl.reset s.ctxs;
  Hashtbl.reset s.table;
  s.next_id <- 0

(** Run [f] with memoization forced on/off (domain-local), restoring the
    previous setting afterwards.  The differential test drives the whole
    suite under [with_cache false] and asserts byte-identical verdicts. *)
let with_cache on f =
  let s = state () in
  let prev = s.enabled in
  s.enabled <- on;
  Fun.protect ~finally:(fun () -> s.enabled <- prev) f

let enabled () = (state ()).enabled

(* Ids are drawn from one counter across both intern tables, so an aref
   id can never collide with a ctx fingerprint even if a key were ever
   used in the wrong position. *)
let intern_in (s : state) tbl key =
  match Hashtbl.find_opt tbl key with
  | Some id -> id
  | None ->
      let id = s.next_id in
      s.next_id <- id + 1;
      Hashtbl.replace tbl key id;
      id

let intern tbl key = intern_in (state ()) tbl key

(** Intern one array reference of unit [u]; structurally equal
    references (same subscript expressions, same inner-loop context,
    same identifier typing) map to the same id. *)
let intern_aref (u : Ast.program_unit) (index : Ast.expr list)
    (inner : (string * Ast.expr * Ast.expr) list) : int =
  Fault.point "dependence.memo.intern";
  let bounds =
    List.concat_map (fun (_, lo, hi) -> [ lo; hi ]) inner
  in
  let named = List.map (fun (iv, _, _) -> iv) inner in
  let sig_ = type_sig u ~named (index @ bounds) in
  intern (state ()).arefs (index, inner, sig_)

(** Intern a dependence-test context fingerprint. *)
let intern_ctx ~(u : Ast.program_unit) ~(index : string) ~(lo : Ast.expr)
    ~(hi : Ast.expr) ~(step : Ast.expr) ~(positive : string list) : int =
  intern (state ()).ctxs
    { ck_index = index; ck_lo = lo; ck_hi = hi; ck_step = step;
      ck_positive = positive;
      ck_types = type_sig u ~named:[ index ] [ lo; hi; step ] }

let find ~fp ~a ~b =
  let s = state () in
  if not s.enabled then None else Hashtbl.find_opt s.table (fp, a, b)

let add ~fp ~a ~b result =
  let s = state () in
  if s.enabled then Hashtbl.replace s.table (fp, a, b) result

(** (interned arefs, interned contexts, memoized pairs) — table sizes of
    the current domain, for tests and diagnostics. *)
let sizes () =
  let s = state () in
  (Hashtbl.length s.arefs, Hashtbl.length s.ctxs, Hashtbl.length s.table)

(* ------------------------------------------------------------------ *)
(* Snapshots (warm-cache persistence)                                  *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_arefs : (aref_key * int) list;
  sn_ctxs : (ctx_key * int) list;
  sn_table : ((int * int * int) * (bool * string)) list;
}
(** A self-contained copy of one domain's memo store.  Entries are keyed
    by the typed intern keys themselves (plus the id maps that resolve
    the table's triples), so a snapshot is portable across processes:
    the ids inside are local to the snapshot and are re-interned on
    import.  The payload is plain algebraic data ([Ast.expr] trees,
    strings, ints) — safe to [Marshal] with no closures or custom
    blocks; the on-disk framing (versioning, integrity hash) belongs to
    the persistence layer ([Server.Store]). *)

(** Copy [s]'s memo store into a portable snapshot. *)
let export_of (s : state) : snapshot =
  {
    sn_arefs = Hashtbl.fold (fun k id acc -> (k, id) :: acc) s.arefs [];
    sn_ctxs = Hashtbl.fold (fun k id acc -> (k, id) :: acc) s.ctxs [];
    sn_table = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table [];
  }

(** Copy the calling domain's memo store into a portable snapshot. *)
let export () : snapshot = export_of (state ())

(** Merge [sn] into [s].  Every key is re-interned (snapshot-local ids
    never leak), so importing into a warm table is safe:
    already-present questions keep their existing answer — both sides
    computed the same pure function — and new ones are added.  Returns
    the number of memoized pairs the table gained. *)
let import_into (s : state) (sn : snapshot) : int =
  let remap = Hashtbl.create 256 in
  List.iter
    (fun (k, old_id) -> Hashtbl.replace remap old_id (intern_in s s.arefs k))
    sn.sn_arefs;
  List.iter
    (fun (k, old_id) -> Hashtbl.replace remap old_id (intern_in s s.ctxs k))
    sn.sn_ctxs;
  let before = Hashtbl.length s.table in
  List.iter
    (fun ((fp, a, b), result) ->
      match
        ( Hashtbl.find_opt remap fp,
          Hashtbl.find_opt remap a,
          Hashtbl.find_opt remap b )
      with
      | Some fp, Some a, Some b ->
          if not (Hashtbl.mem s.table (fp, a, b)) then
            Hashtbl.replace s.table (fp, a, b) result
      | _ ->
          (* a triple referencing an id its own snapshot never interned:
             corrupt beyond use, drop the entry (never guess) *)
          ())
    sn.sn_table;
  Hashtbl.length s.table - before

(** Merge [sn] into the calling domain's memo store. *)
let import (sn : snapshot) : int = import_into (state ()) sn

(* ------------------------------------------------------------------ *)
(* The shared hub (cross-domain warm cache for the daemon)             *)
(* ------------------------------------------------------------------ *)

(* Each connection-worker domain still answers dependence queries out
   of its own DLS store — the hot path stays lock-free and the ids stay
   domain-local.  What the daemon needs on top is for domain A's cold
   miss to warm domain B, so a mutex-guarded hub store accumulates
   every domain's discoveries and hands them back on demand.  Exchange
   is snapshot-merged (the issue's sanctioned alternative to lock
   striping): [sync] publishes the local store into the hub and, when
   the hub has moved past what this domain last saw, imports the hub
   back.  Both directions re-intern structural keys, so merging is
   idempotent and order-insensitive; answers are pure functions of
   their keys, so concurrent discoveries of the same pair agree.  A
   version counter makes the steady state (nobody learned anything) one
   export + no import.  Only the daemon calls [sync]; one-shot runs and
   the bench suite never touch the hub. *)

let hub_m = Mutex.create ()
let hub : state = fresh ()
let hub_version = ref 0

(* Last hub version this domain has fully imported; -1 = never. *)
let seen_slot : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref (-1))

(** Publish the calling domain's memo store into the hub and pull back
    anything other domains have contributed since this domain last
    synced.  Returns [(published, imported)] pair counts. *)
let sync () : int * int =
  let local = state () in
  let seen = Domain.DLS.get seen_slot in
  Mutex.lock hub_m;
  let was_current = !seen = !hub_version in
  let published = import_into hub (export_of local) in
  if published > 0 then incr hub_version;
  let imported =
    if was_current then begin
      (* local ⊇ hub already held, and we just pushed the difference *)
      seen := !hub_version;
      0
    end
    else begin
      let gained = import_into local (export_of hub) in
      seen := !hub_version;
      gained
    end
  in
  Mutex.unlock hub_m;
  (published, imported)

(** Hub table sizes (arefs, ctxs, memoized pairs), for stats/tests. *)
let hub_sizes () =
  Mutex.lock hub_m;
  let r =
    (Hashtbl.length hub.arefs, Hashtbl.length hub.ctxs,
     Hashtbl.length hub.table)
  in
  Mutex.unlock hub_m;
  r
