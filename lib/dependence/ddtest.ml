(** Per-pair dependence driver.

    [may_carry ctx ra rb] decides whether a dependence between the two
    array references can be *carried by the candidate loop* of [ctx].
    [false] means proven independent (or at most loop-independent, which
    does not prevent parallelization); [true] is the conservative answer.

    Reduction to an equation: rename the candidate index [I] on the second
    reference to [I + step*D] with [D >= 1], rename the second reference's
    inner-loop indices apart, and test whether the per-dimension subscript
    differences can all be zero.  Proving *any* dimension non-zero proves
    independence.  Tests tried in order: ZIV (symbolic), GCD, Banerjee
    bounds, then the symbolic range test. *)

open Frontend
open Analysis

let delta_var = "$D"
let rename_inner v = v ^ "$2"

type aref = {
  ar_index : Ast.expr list;  (** subscripts, [] = unknown/whole array *)
  ar_inner : (string * Ast.expr * Ast.expr) list;
      (** inner loops enclosing the ref, as (index, lo, hi), outermost first *)
  ar_id : int;
      (** interned id ({!Memo.intern_aref}): equal ids iff structurally
          equal subscripts + inner context + identifier typing *)
}

(** The only way to build an {!aref}: interning at construction is what
    gives every reference a memo-key id consistent with its structure.
    [u] is the enclosing unit — its declarations type the identifiers in
    the subscripts, and that typing is folded into the interned key. *)
let mk_aref u ~index ~inner =
  { ar_index = index; ar_inner = inner; ar_id = Memo.intern_aref u index inner }

let const_of u e = Poly.to_const (Poly.of_expr (Simplify.simplify u e))

(* Bounds of a variable as extended intervals, for Banerjee. *)
let bound_of u (lo, hi) =
  let f e =
    match const_of u e with
    | Some c -> Affine_tests.Fin c
    | None -> Affine_tests.Pos_inf
  in
  let g e =
    match const_of u e with
    | Some c -> Affine_tests.Fin c
    | None -> Affine_tests.Neg_inf
  in
  (g lo, f hi)

(* Candidate trip count if constant. *)
let trip_count u (l : Ast.do_loop) =
  match (const_of u l.lo, const_of u l.hi, const_of u l.step) with
  | Some lo, Some hi, Some st when st <> 0 ->
      let n = ((hi - lo) / st) + 1 in
      Some (max 0 n)
  | _ -> None

(* Test one subscript dimension.  [Some test] = independence proven, with
   the name of the deciding test (the provenance layer reports it in
   [Dep_cycle] blockers and the explain output); [None] = inconclusive. *)
let test_dimension (ctx : Ctx.t) ~(step : int) (ra : aref) (rb : aref) sub_a
    sub_b : string option =
  let u = ctx.cunit in
  let index = ctx.candidate.index in
  let pa = Poly.of_expr (Simplify.simplify u sub_a) in
  let pb0 = Poly.of_expr (Simplify.simplify u sub_b) in
  (* Soundness guard: an opaque atom that *contains* the candidate index
     (a subscripted subscript like IDBEGS(ISS)) varies between the two
     iterations but would cancel syntactically between the two sides.  No
     independence can be concluded from such subscripts. *)
  let has_varying_atom p =
    List.exists
      (fun a ->
        match a with
        | Ast.Var v when String.equal v index -> false
        | a -> List.mem index (Ast.expr_vars a))
      (Poly.atoms p)
  in
  if has_varying_atom pa || has_varying_atom pb0 then None
  else
  (* rename candidate index and inner indices on the B side *)
  let pb =
    let p =
      Poly.subst_var index
        (Poly.add (Poly.atom (Ast.Var index))
           (Poly.scale step (Poly.atom (Ast.Var delta_var))))
        pb0
    in
    List.fold_left
      (fun p (iv, _, _) ->
        Poly.subst_var iv (Poly.atom (Ast.Var (rename_inner iv))) p)
      p rb.ar_inner
  in
  let delta = Poly.sub pa pb in
  let inner_a = List.map (fun (iv, lo, hi) -> (iv, lo, hi)) ra.ar_inner in
  let inner_b =
    List.map (fun (iv, lo, hi) -> (rename_inner iv, lo, hi)) rb.ar_inner
  in
  let vars =
    (delta_var :: List.map (fun (v, _, _) -> v) inner_a)
    @ List.map (fun (v, _, _) -> v) inner_b
    @ [ index ]
  in
  let affine_result =
    match Poly.affine_in ~vars delta with
    | None -> None
    | Some (coeffs, rest) -> (
        match Poly.to_const rest with
        | Some c0 ->
            if coeffs = [] then (if c0 <> 0 then Some "ziv" else None)
            else if Affine_tests.gcd_test ~coeffs:(List.map snd coeffs) ~c0
            then Some "gcd"
            else
              (* Banerjee *)
              let bound_for v =
                if String.equal v delta_var then
                  let hi =
                    match trip_count u ctx.candidate with
                    | Some n -> Affine_tests.Fin (max 0 (n - 1))
                    | None -> Affine_tests.Pos_inf
                  in
                  (Affine_tests.Fin 1, hi)
                else if String.equal v index then
                  bound_of u (ctx.candidate.lo, ctx.candidate.hi)
                else
                  match
                    List.find_opt
                      (fun (iv, _, _) -> String.equal iv v)
                      (inner_a @ inner_b)
                  with
                  | Some (_, lo, hi) -> bound_of u (lo, hi)
                  | None -> (Affine_tests.Neg_inf, Affine_tests.Pos_inf)
              in
              let terms =
                List.map (fun (v, c) -> (c, bound_for v)) coeffs
              in
              if Affine_tests.banerjee_test ~terms ~c0 then Some "banerjee"
              else
                (* Generalized GCD on the iteration distance: writing the
                   equation as cD*D + sum(ci*xi) + c0 = 0, a solution needs
                   cD*D + c0 = 0 (mod gcd ci).  With the radix coefficients
                   produced by lowering [unique], no admissible D
                   qualifies, proving independence (the ASSEM pattern). *)
                let cd =
                  Option.value ~default:0 (List.assoc_opt delta_var coeffs)
                in
                let others =
                  List.filter_map
                    (fun (v, c) ->
                      if String.equal v delta_var then None else Some c)
                    coeffs
                in
                let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
                let g = List.fold_left (fun acc c -> gcd acc (abs c)) 0 others in
                let gen_gcd_independent =
                  if cd = 0 || g <= 1 then false
                  else
                    let gg = gcd (abs cd) g in
                    if c0 mod gg <> 0 then true
                    else
                      let dmax =
                        match trip_count u ctx.candidate with
                        | Some n -> Some (max 0 (n - 1))
                        | None -> None
                      in
                      let solvable =
                        match dmax with
                        | Some dmax when dmax < g ->
                            (* residues are periodic in D; with few
                               iterations just try each *)
                            let rec try_d d =
                              d <= dmax
                              && ((((cd * d) + c0) mod g + g) mod g = 0
                                 || try_d (d + 1))
                            in
                            try_d 1
                        | _ -> true
                      in
                      not solvable
                in
                if gen_gcd_independent then Some "gen-gcd"
                else begin
                  (* last exact resort: Fourier-Motzkin on the full
                     conjunction of the equation and every known bound *)
                  let bound_list v =
                    if String.equal v delta_var then
                      Fourier_motzkin.Lower 1
                      ::
                      (match trip_count u ctx.candidate with
                      | Some n -> [ Fourier_motzkin.Upper (max 0 (n - 1)) ]
                      | None -> [])
                    else
                      let lo, hi =
                        if String.equal v index then
                          bound_of u (ctx.candidate.lo, ctx.candidate.hi)
                        else
                          match
                            List.find_opt
                              (fun (iv, _, _) -> String.equal iv v)
                              (inner_a @ inner_b)
                          with
                          | Some (_, lo, hi) -> bound_of u (lo, hi)
                          | None -> (Affine_tests.Neg_inf, Affine_tests.Pos_inf)
                      in
                      (match lo with
                      | Affine_tests.Fin l -> [ Fourier_motzkin.Lower l ]
                      | _ -> [])
                      @
                      (match hi with
                      | Affine_tests.Fin h -> [ Fourier_motzkin.Upper h ]
                      | _ -> [])
                  in
                  let bounds = List.map (fun (v, _) -> (v, bound_list v)) coeffs in
                  match
                    Fourier_motzkin.equation_feasible ~coeffs ~c0 ~bounds
                  with
                  | Fourier_motzkin.Infeasible -> Some "fourier-motzkin"
                  | Fourier_motzkin.Maybe_feasible -> None
                end
        | None ->
            if coeffs = [] then
              (* symbolic ZIV: constant-per-iteration-pair difference *)
              if Ctx.prove_nonzero ctx rest then Some "symbolic-ziv" else None
            else None)
  in
  match affine_result with
  | Some test -> Some test
  | None ->
      (* affine tests inconclusive (or inapplicable): try the range test.
         A [Some false] only means the affine machinery could not exclude
         a solution -- e.g. when inner-loop bounds are symbolic functions
         of the candidate index, which is precisely the range test's
         territory.  The two
         sides are examined with their *original* inner-loop names: the
         extremes are taken independently per side, so no renaming is
         needed. *)
      let mk_inners l =
        List.map
          (fun (iv, lo, hi) -> { Range_test.iv; ilo = lo; ihi = hi })
          l
      in
      if
        Range_test.disjoint_ranges ctx ~index ~step
          ~inners_a:(mk_inners ra.ar_inner) ~inners_b:(mk_inners rb.ar_inner)
          pa pb0
      then Some "range"
      else None

(** May a dependence between references [ra] and [rb] (same base array) be
    carried by the candidate loop?  The second component names the
    deciding test on a [false] (proven-independent) answer, and the
    reason the pair is conservatively assumed dependent on [true]. *)
let may_carry_why_impl (ctx : Ctx.t) (ra : aref) (rb : aref) : bool * string =
  let u = ctx.cunit in
  match trip_count u ctx.candidate with
  | Some n when n <= 1 ->
      (false, "trip-count") (* at most one iteration: nothing carried *)
  | _ -> (
      match const_of u ctx.candidate.step with
      | None | Some 0 -> (true, "symbolic-step") (* symbolic step: give up *)
      | Some step ->
          if
            ra.ar_index = [] || rb.ar_index = []
            || List.length ra.ar_index <> List.length rb.ar_index
          then (true, "subscript-shape")
          else
            (* A dimension proves independence only when the collision
               equation is infeasible in BOTH directions: [ra] at the
               earlier iteration with [rb] later, and vice versa (the
               classic source-sink asymmetry: WK1(I-1) reading what a
               previous iteration wrote is only visible with rb earlier). *)
            let rec find_dim sas sbs =
              match (sas, sbs) with
              | [], _ | _, [] -> None
              | sa :: sas', sb :: sbs' -> (
                  match
                    ( test_dimension ctx ~step ra rb sa sb,
                      test_dimension ctx ~step rb ra sb sa )
                  with
                  | Some ta, Some tb ->
                      Some (if String.equal ta tb then ta else ta ^ "+" ^ tb)
                  | _ -> find_dim sas' sbs')
            in
            (match find_dim ra.ar_index rb.ar_index with
            | Some test -> (false, test)
            | None -> (true, "inconclusive")))

(* Memoization + profiling + tracing chokepoint.  The memo key is the
   context fingerprint plus both interned aref ids *in request order*:
   the why-string of a two-sided decision ("ta+tb") is
   direction-sensitive, so the symmetric entry is not reused — a hit is
   byte-identical to a recomputation by construction.  Only a miss runs
   the tester and emits a span (a hit costs one table probe, so tracing
   it would drown real work in noise); both tick the run counter, split
   into hits/misses, and independence still ticks the decided counter on
   either path.  All no-ops unless a profile/sink is installed. *)
let may_carry_why ctx ra rb =
  let fp = ctx.Ctx.fp in
  match Memo.find ~fp ~a:ra.ar_id ~b:rb.ar_id with
  | Some ((r, _) as cached) ->
      Prof.tick_dep_test ~independent:(not r) ~cached:true;
      cached
  | None ->
      (* fault point on the miss path only, and before [Memo.add]: an
         injected failure must never pollute the (cross-config) cache *)
      Fault.point "dependence.ddtest";
      let ((r, _) as result) =
        Span.span ~cat:"ddtest" ~unit_:ctx.Ctx.cunit.Ast.u_name
          ~loop:ctx.Ctx.candidate.Ast.loop_id "dep-test" (fun () ->
            may_carry_why_impl ctx ra rb)
      in
      Memo.add ~fp ~a:ra.ar_id ~b:rb.ar_id result;
      Prof.tick_dep_test ~independent:(not r) ~cached:false;
      result

let may_carry ctx ra rb = fst (may_carry_why ctx ra rb)

(** Convenience wrapper returning [true] when the pair is PROVEN free of
    carried dependence. *)
let independent ctx ra rb = not (may_carry ctx ra rb)
