(** Dependence-analysis context: the candidate loop, its surroundings, and
    the facts symbolic reasoning is allowed to assume. *)

open Frontend
open Analysis
module S = Set.Make (String)

type t = {
  cunit : Ast.program_unit;
  outer : Ast.do_loop list;  (** loops enclosing the candidate, outermost first *)
  candidate : Ast.do_loop;
  positive : S.t;
      (** integer scalars assumed >= 1: array-dimension symbols, integer
          formal parameters used as sizes, and loop indices with constant
          lower bound >= 1.  Polaris makes the analogous assumptions when
          its range test compares symbolic bounds. *)
  fp : int;
      (** interned fingerprint of everything the dependence tester reads
          from this context besides the unit (candidate index, bounds,
          step, positivity set) — the memo key half contributed by the
          context; see {!Memo}.  Contexts with equal [fp] are
          interchangeable for [Ddtest.may_carry_why] within one
          [Parallelize.run_unit] generation. *)
}

(* Integer scalars appearing in array dimension declarations. *)
let dim_symbols (u : Ast.program_unit) =
  List.fold_left
    (fun acc (d : Ast.decl) ->
      List.fold_left
        (fun acc dim ->
          match dim with
          | Ast.Dim_star -> acc
          | Ast.Dim_expr e -> S.union acc (S.of_list (Ast.expr_vars e)))
        acc d.d_dims)
    S.empty u.u_decls

let positive_set (u : Ast.program_unit) loops =
  let dims = dim_symbols u in
  let formals =
    List.filter (fun p -> Ast.type_of_var u p = Ast.Integer) u.u_params
  in
  let indices =
    List.filter_map
      (fun (l : Ast.do_loop) ->
        match (l.lo, l.step) with
        | Ast.Int_const lo, Ast.Int_const st when lo >= 1 && st >= 1 ->
            Some l.index
        | _ -> None)
      loops
  in
  S.union dims (S.union (S.of_list formals) (S.of_list indices))

let make ~cunit ~outer ~candidate ~inner_loops =
  let positive = positive_set cunit ((candidate :: outer) @ inner_loops) in
  {
    cunit;
    outer;
    candidate;
    positive;
    fp =
      Memo.intern_ctx ~u:cunit ~index:candidate.index ~lo:candidate.lo
        ~hi:candidate.hi ~step:candidate.step ~positive:(S.elements positive);
  }

(** Prove [p >= k] under the context's positivity assumptions: every
    non-constant monomial must have a non-negative coefficient and consist
    solely of variables assumed positive; then
    [p >= const + sum of other coefficients]. *)
let prove_ge ctx (p : Poly.t) k =
  let ok = ref true in
  let lower = ref 0 in
  List.iter
    (fun (m, c) ->
      match m with
      | [] -> lower := !lower + c
      | atoms ->
          let all_positive =
            List.for_all
              (function
                | Ast.Var v -> S.mem v ctx.positive
                | Ast.Int_const n -> n >= 1
                | _ -> false)
              atoms
          in
          if c >= 0 && all_positive then lower := !lower + c else ok := false)
    p;
  !ok && !lower >= k

(** Prove [p <> 0]: either [p >= 1] or [-p >= 1]. *)
let prove_nonzero ctx p = prove_ge ctx p 1 || prove_ge ctx (Poly.neg p) 1
