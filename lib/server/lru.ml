(** Bounded unit-body cache with intrusive LRU eviction.

    PR 8's unit cache was a bare [(hash, body) Hashtbl.t] that only
    grew; this replaces it with a recency-ordered store so a long-lived
    daemon can cap its memory.  Two independent caps (0 = unbounded):

    - [max_units] — resident entry count ([--max-cache-units]);
    - [max_bytes] — resident key+body bytes ([--max-cache-bytes]).

    An {!add} that pushes the cache over either cap evicts from the
    cold end of an intrusive doubly-linked list until both hold,
    ticking [parinline_unit_cache_evictions_total].  Eviction is safe,
    never wrong: bodies are pure functions of their content hash, so an
    evicted unit re-requested later recomputes byte-identical output —
    the cap trades recompute time for memory, not correctness.

    All operations take the internal mutex; connection workers on
    different domains share one instance.  {!find} promotes the entry
    to the hot end, so {!to_alist}'s cold→hot order is the daemon's
    live recency order — snapshots persist that order and restore
    replays it, meaning the hot tail survives a restart into a
    {e smaller} cap (the cold head is evicted on insert). *)

type node = {
  n_key : string;
  n_body : string;
  mutable n_prev : node option;  (** toward the cold (LRU) end *)
  mutable n_next : node option;  (** toward the hot (MRU) end *)
}

type t = {
  m : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable cold : node option;  (** eviction end *)
  mutable hot : node option;  (** promotion end *)
  mutable bytes : int;  (** resident key+body bytes *)
  mutable evictions : int;
  max_units : int;  (** 0 = unbounded *)
  max_bytes : int;  (** 0 = unbounded *)
}

type stats = {
  units : int;  (** resident entries *)
  bytes : int;  (** resident key+body bytes *)
  evictions : int;  (** lifetime evictions *)
  max_units : int;
  max_bytes : int;
}

let m_evictions =
  Frontend.Metrics.counter "parinline_unit_cache_evictions_total"
    ~help:"unit-cache entries evicted by the LRU bound"

let create ?(max_units = 0) ?(max_bytes = 0) () : t =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 64;
    cold = None;
    hot = None;
    bytes = 0;
    evictions = 0;
    max_units = max 0 max_units;
    max_bytes = max 0 max_bytes;
  }

let node_cost n = String.length n.n_key + String.length n.n_body

(* -- intrusive list surgery; caller holds [c.m] ------------------- *)

let unlink (c : t) (n : node) =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> c.cold <- n.n_next);
  (match n.n_next with
  | Some nx -> nx.n_prev <- n.n_prev
  | None -> c.hot <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_hot (c : t) (n : node) =
  n.n_prev <- c.hot;
  n.n_next <- None;
  (match c.hot with Some h -> h.n_next <- Some n | None -> c.cold <- Some n);
  c.hot <- Some n

let evict_cold (c : t) =
  match c.cold with
  | None -> ()
  | Some n ->
      unlink c n;
      Hashtbl.remove c.tbl n.n_key;
      c.bytes <- c.bytes - node_cost n;
      c.evictions <- c.evictions + 1;
      Frontend.Metrics.incr m_evictions

let over_cap (c : t) =
  (c.max_units > 0 && Hashtbl.length c.tbl > c.max_units)
  || (c.max_bytes > 0 && c.bytes > c.max_bytes)

(* -- public surface ----------------------------------------------- *)

(** Look up [key]; a hit promotes the entry to the hot end. *)
let find (c : t) (key : string) : string option =
  Mutex.lock c.m;
  let r =
    match Hashtbl.find_opt c.tbl key with
    | None -> None
    | Some n ->
        unlink c n;
        push_hot c n;
        Some n.n_body
  in
  Mutex.unlock c.m;
  r

(** Insert (or refresh) [key → body] at the hot end, then evict from
    the cold end until both caps hold.  Re-adding an existing key is a
    promotion: bodies are content-addressed, so concurrent misses on
    the same unit insert identical bytes. *)
let add (c : t) (key : string) (body : string) : unit =
  Mutex.lock c.m;
  (match Hashtbl.find_opt c.tbl key with
  | Some n ->
      unlink c n;
      c.bytes <- c.bytes - node_cost n;
      Hashtbl.remove c.tbl n.n_key
  | None -> ());
  let n = { n_key = key; n_body = body; n_prev = None; n_next = None } in
  Hashtbl.replace c.tbl key n;
  c.bytes <- c.bytes + node_cost n;
  push_hot c n;
  while over_cap c do
    evict_cold c
  done;
  Mutex.unlock c.m

let length (c : t) : int =
  Mutex.lock c.m;
  let n = Hashtbl.length c.tbl in
  Mutex.unlock c.m;
  n

let stats (c : t) : stats =
  Mutex.lock c.m;
  let s =
    {
      units = Hashtbl.length c.tbl;
      bytes = c.bytes;
      evictions = c.evictions;
      max_units = c.max_units;
      max_bytes = c.max_bytes;
    }
  in
  Mutex.unlock c.m;
  s

(** Entries in cold→hot recency order — the snapshot format.  Restoring
    with in-order {!add} replays the recency, so the hot tail is what
    survives if the new cap is smaller. *)
let to_alist (c : t) : (string * string) list =
  Mutex.lock c.m;
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.n_key, n.n_body) :: acc) n.n_next
  in
  let l = walk [] c.cold in
  Mutex.unlock c.m;
  l
