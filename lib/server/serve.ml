(** The analysis daemon behind [parinline serve].

    A long-lived server that accepts batched analysis / parallelization
    / plan requests over a newline-delimited-JSON protocol (stdin/stdout
    or a Unix-domain socket — the framing is identical) and keeps two
    caches warm across requests:

    - the {b unit cache}: every work request is content-hashed (source
      digest + annotation digest + mode + options + protocol schema);
      an unchanged unit is a pure end-to-end hit that returns the stored
      response body without re-parsing, and

    - the {b dependence memo store} ({!Dependence.Memo}): PR 5 made its
      entries unit-independent, so they legally persist across requests,
      units, and all four inlining configurations.

    Both survive restarts through {!Store} snapshots ([--cache-dir]),
    and both are shared across the daemon's connection workers: the
    unit cache is an LRU-bounded {!Lru} store with its own lock
    ([--max-cache-units] / [--max-cache-bytes]), and each worker
    domain's memo store exchanges entries with a process-wide hub via
    {!Dependence.Memo.sync} around every cache miss.  Socket serving is
    concurrent ([--conn-jobs] worker domains, [--backlog] listen depth,
    [--max-inflight] admission bound — excess connections get a
    structured overload envelope, never a silent close).

    Protocol: one JSON object per line in, one per line out.

    {v
    REQUEST  := { "op": OP, "id": INT, ... }
    OP       := "ping" | "stats" | "metrics" | "analyze" | "compile"
              | "plan" | "batch" | "snapshot" | "shutdown"
    work ops (analyze/compile/plan) add:
                "source": STR   Fortran source text (required)
                "annot":  STR   annotation text (default "")
                "mode":   STR   none|conventional|annotation|demand
                "growth_budget": FLOAT, "max_rounds": INT   (plan/demand)
    batch adds: "requests": [ WORK-REQUEST... ]  — sharded across the
                {!Runtime.Pool} domains, responses in request order
    v}

    Responses are [{"id":N,"ok":true,"cached":BOOL,"hash":STR,
    "request_id":STR,"result":BODY}] for work, [{"id":N,"ok":false,
    "request_id":STR,"error":STR,"diags":[STR...]}] on failure.  Every
    response (and every Diag and request-log line the daemon emits)
    carries a daemon-unique [request_id] ([r1], [r2], ...) so failures
    are correlatable across channels; the [request_id] lives in the
    envelope, never in the cached [result] body, which stays a pure
    function of the input.  The failure contract matches the
    pipeline's degradation ladder: a poisoned request — bad JSON, an
    unknown op, a source that defeats even the salvaging parser, or an
    injected [server.request] chaos fault — degrades to a per-request
    error response carrying structured {!Core.Diag} records; the daemon
    itself never crashes.

    Determinism: every cache miss resets the domain-local gensyms before
    compiling (exactly like the bench driver), so response bodies are a
    pure function of (source, annot, mode, options) — byte-identical
    across request order, domain placement, and daemon restarts, and
    equal to what a one-shot [parinline] run prints for the same unit. *)

open Core
module Json = Frontend.Json
module Verdict = Parallelizer.Verdict

(** Version of the protocol and of the response-body shapes.  Bumped
    whenever a body would change for the same input; snapshots carry it
    so a stale cache can never replay an old shape (see {!Store}). *)
let protocol_version = 1

(* ------------------------------------------------------------------ *)
(* Request log                                                         *)
(* ------------------------------------------------------------------ *)

(** Severity of one request-log line; [--log-level] filters below. *)
type log_level = L_debug | L_info | L_warn | L_error

let level_rank = function L_debug -> 0 | L_info -> 1 | L_warn -> 2 | L_error -> 3

let level_name = function
  | L_debug -> "debug"
  | L_info -> "info"
  | L_warn -> "warn"
  | L_error -> "error"

let log_level_of_string = function
  | "debug" -> Ok L_debug
  | "info" -> Ok L_info
  | "warn" | "warning" -> Ok L_warn
  | "error" -> Ok L_error
  | s ->
      Error
        (Printf.sprintf "unknown log level %S (want debug|info|warn|error)" s)

type logger = {
  lg_oc : out_channel;
  lg_min : log_level;
  lg_m : Mutex.t;  (** one NDJSON line per write, never interleaved *)
}

type t = {
  srv_jobs : int;
  srv_pool : Runtime.Pool.t;
  srv_batch_m : Mutex.t;
      (** serializes batch sharding: {!Runtime.Pool} runs one job at a
          time, so concurrent connection workers take turns *)
  srv_cache_dir : string option;
  srv_max_errors : int;
  srv_m : Mutex.t;  (** guards [srv_prof] *)
  srv_units : Lru.t;
      (** content hash (hex) → serialized response body, LRU-bounded;
          has its own lock — shared by all connection workers *)
  srv_prof : Prof.t;  (** server-lifetime counter aggregate *)
  srv_metrics : Metrics.t;  (** live registry, armed for the daemon's life *)
  srv_log : logger option;
  srv_t0_ns : int64;  (** startup, for the uptime gauge *)
  srv_inflight : int Atomic.t;  (** requests being handled right now *)
  srv_rid : int Atomic.t;  (** next request id *)
  srv_cid : int Atomic.t;  (** next connection id *)
  srv_backlog : int;  (** [Unix.listen] queue depth *)
  srv_max_inflight : int;  (** connection admission bound *)
  srv_conn_jobs : int;  (** connection-worker domains (0 = sequential) *)
  mutable srv_workers : Unix.file_descr Runtime.Workers.t option;
      (** live while {!serve_socket} runs; its stats feed the stats op *)
  mutable srv_stop : bool;
}

(* Live telemetry handles.  The per-op request families are interned on
   demand (op and cache outcome are only known per request); interning
   is a mutex + hashtable probe, and only happens with a registry armed. *)
let g_uptime =
  Metrics.gauge "parinline_uptime_seconds" ~help:"daemon uptime at scrape time"

let g_inflight =
  Metrics.gauge "parinline_requests_in_flight"
    ~help:"requests currently being handled"

let g_units_cached =
  Metrics.gauge "parinline_units_cached" ~help:"entries in the unit cache"

let g_cache_bytes =
  Metrics.gauge "parinline_unit_cache_bytes"
    ~help:"resident key+body bytes in the unit cache"

let g_connections =
  Metrics.gauge "parinline_connections_active"
    ~help:"socket connections currently open"

let m_connections ~outcome =
  Metrics.counter "parinline_connections_total"
    ~help:"socket connections by outcome"
    ~labels:[ ("outcome", outcome) ]

let m_request_hist ~op ~cache =
  Metrics.histogram "parinline_request_duration_seconds"
    ~help:"request wall time by op and cache outcome"
    ~labels:[ ("op", op); ("cache", cache) ]

let m_requests ~op ~status =
  Metrics.counter "parinline_requests_total"
    ~help:"protocol requests answered, by op and status"
    ~labels:[ ("op", op); ("status", status) ]

(* Request/connection ids are fetch-and-add so concurrent workers never
   mint the same id (and never contend on a lock to avoid it). *)
let next_rid t = Printf.sprintf "r%d" (Atomic.fetch_and_add t.srv_rid 1)
let next_cid t = Printf.sprintf "c%d" (Atomic.fetch_and_add t.srv_cid 1)

(* One NDJSON request-log line.  A poisoned write — the [server.log]
   chaos site or a real I/O error — degrades to a Diag warning on
   stderr; the response already on its way is never affected. *)
let log_line t ~(level : log_level) (fields : (string * Json.t) list) : unit =
  match t.srv_log with
  | None -> ()
  | Some lg when level_rank level < level_rank lg.lg_min -> ()
  | Some lg -> (
      let line =
        Json.to_string
          (Json.Obj
             (("ts", Json.Float (Unix.gettimeofday ()))
             :: ("level", Json.Str (level_name level))
             :: fields))
      in
      Mutex.lock lg.lg_m;
      match
        Fault.point "server.log";
        output_string lg.lg_oc line;
        output_char lg.lg_oc '\n';
        flush lg.lg_oc
      with
      | () -> Mutex.unlock lg.lg_m
      | exception e ->
          Mutex.unlock lg.lg_m;
          prerr_endline
            (Diag.render
               (Diag.make ~severity:Diag.Warning Diag.Io
                  (Printf.sprintf "request log write failed (%s); line dropped"
                     (Printexc.to_string e)))))

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_string = function
  | "none" | "no-inlining" -> Ok Pipeline.No_inlining
  | "conventional" -> Ok Pipeline.Conventional
  | "" | "annotation" | "annotation-based" -> Ok Pipeline.Annotation_based
  | "demand" | "demand-driven" -> Ok Pipeline.Demand
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(** Build a work/control request object — the one true spelling, shared
    by the CLI client and the serve-bench harness. *)
let request ?(id = 0) ~op ?(mode = "annotation") ?(source = "")
    ?(annot = "") ?growth_budget ?max_rounds () : Json.t =
  Json.Obj
    ([ ("op", Json.Str op); ("id", Json.Int id) ]
    @ (if source = "" then [] else [ ("source", Json.Str source) ])
    @ (if annot = "" then [] else [ ("annot", Json.Str annot) ])
    @ (if mode = "" then [] else [ ("mode", Json.Str mode) ])
    @ (match growth_budget with
      | None -> []
      | Some f -> [ ("growth_budget", Json.Float f) ])
    @
    match max_rounds with
    | None -> []
    | Some n -> [ ("max_rounds", Json.Int n) ])

(** The content-hash key of a work request: an unchanged unit under the
    same options is a pure cache hit, and any change to source text,
    annotations, mode, planner options, or the protocol schema lands in
    a different slot. *)
let unit_hash ~op ~mode ~growth_budget ~max_rounds ~source ~annot =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            string_of_int protocol_version;
            op;
            mode;
            Printf.sprintf "%.6f" growth_budget;
            string_of_int max_rounds;
            source;
            annot;
          ]))

(* Responses.  The envelope around a cached body is assembled by string
   concatenation so a hit replays the stored bytes verbatim; the
   request_id lives only in the envelope, so the cached [result] stays
   byte-identical across requests. *)
let ok_envelope ~rid ~id ~cached ~hash body =
  Printf.sprintf
    "{\"id\":%d,\"ok\":true,\"cached\":%b,\"hash\":\"%s\",\"request_id\":\"%s\",\"result\":%s}"
    id cached hash rid body

(* Error responses thread the request id through every rendered Diag so
   a stderr line, a log line and a response are correlatable. *)
let error_response ?rid ~id (ds : Diag.t list) =
  let tag r = match rid with None -> r | Some rid -> "req " ^ rid ^ ": " ^ r in
  let rendered = List.map (fun d -> tag (Diag.render d)) ds in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Int id); ("ok", Json.Bool false) ]
       @ (match rid with
         | None -> []
         | Some rid -> [ ("request_id", Json.Str rid) ])
       @ [
           ( "error",
             Json.Str
               (match rendered with [] -> "request failed" | r :: _ -> r) );
           ("diags", Json.List (List.map (fun r -> Json.Str r) rendered));
         ]))

let counters_json (c : Prof.counters) : Json.t =
  Json.Obj
    [
      ("dep_tests_run", Json.Int c.Prof.dep_tests_run);
      ("dep_tests_independent", Json.Int c.Prof.dep_tests_independent);
      ("dep_cache_hits", Json.Int c.Prof.dep_cache_hits);
      ("dep_cache_misses", Json.Int c.Prof.dep_cache_misses);
      ("annot_sites_inlined", Json.Int c.Prof.annot_sites_inlined);
      ("reverse_sites_matched", Json.Int c.Prof.reverse_sites_matched);
      ("stmts_normalized", Json.Int c.Prof.stmts_normalized);
      ("iterations_traced", Json.Int c.Prof.iterations_traced);
      ("race_conflicts", Json.Int c.Prof.race_conflicts);
      ("race_excused", Json.Int c.Prof.race_excused);
      ("faults_injected", Json.Int c.Prof.faults_injected);
      ("requests_served", Json.Int c.Prof.requests_served);
      ("unit_cache_hits", Json.Int c.Prof.unit_cache_hits);
      ("snapshot_restores", Json.Int c.Prof.snapshot_restores);
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let units_cached t = Lru.length t.srv_units

(** Resident size / byte / eviction stats of the unit cache. *)
let cache_stats t = Lru.stats t.srv_units

(** Connection-pool stats while {!serve_socket} runs (zeros otherwise). *)
let conn_stats t : Runtime.Workers.stats =
  match t.srv_workers with
  | Some w -> Runtime.Workers.stats w
  | None ->
      {
        Runtime.Workers.accepted = 0;
        shed = 0;
        handler_errors = 0;
        deaths = 0;
        respawns = 0;
        inflight = 0;
        workers = 0;
      }

(** Counter snapshot of the server-lifetime aggregate. *)
let counters t =
  Mutex.lock t.srv_m;
  let c = Prof.snapshot t.srv_prof in
  Mutex.unlock t.srv_m;
  c

(** Ask the serve loops to wind down after the in-flight message (also
    flipped by the [shutdown] op; signal handlers call this). *)
let stop t = t.srv_stop <- true
let stopping t = t.srv_stop

(** Create a server.  [jobs] sizes the {!Runtime.Pool} batch sharding
    ([<= 1] runs everything on the caller); [conn_jobs] sizes the
    {!Runtime.Workers} connection pool ([0] serves connections
    sequentially on the acceptor); [backlog] is the [Unix.listen] queue
    depth and [max_inflight] the admission bound beyond which new
    connections are shed with an overload envelope.  [max_cache_units]
    / [max_cache_bytes] bound the unit cache (0 = unbounded) with LRU
    eviction.  With [cache_dir] the warm caches are restored from the
    snapshot on disk (if any) and saved back on {!drain}; restore
    replays the snapshot's recency order, so the hot tail survives into
    a smaller cap.  With [log_file] an NDJSON request log is opened
    (truncating; [log_level] filters, default info).  Creation arms the
    server's live {!Metrics} registry for the daemon's lifetime —
    {!drain} disarms it.  Returns the startup diagnostics — a rejected
    snapshot or an unopenable log file degrades to a warning here. *)
let create ?(jobs = 1) ?(conn_jobs = 0) ?(backlog = 16) ?(max_inflight = 64)
    ?(max_cache_units = 0) ?(max_cache_bytes = 0) ?cache_dir
    ?(max_errors = Diag.default_max_errors) ?log_file ?(log_level = L_info) ()
    : t * Diag.t list =
  let log, log_diags =
    match log_file with
    | None -> (None, [])
    | Some path -> (
        match open_out path with
        | oc ->
            (Some { lg_oc = oc; lg_min = log_level; lg_m = Mutex.create () }, [])
        | exception Sys_error m ->
            ( None,
              [
                Diag.make ~severity:Diag.Warning Diag.Io
                  (Printf.sprintf
                     "cannot open request log %s (%s); logging disabled" path m);
              ] ))
  in
  let t =
    {
      srv_jobs = max 1 jobs;
      srv_pool = Runtime.Pool.create (max 1 jobs);
      srv_batch_m = Mutex.create ();
      srv_cache_dir = cache_dir;
      srv_max_errors = max_errors;
      srv_m = Mutex.create ();
      srv_units = Lru.create ~max_units:max_cache_units
          ~max_bytes:max_cache_bytes ();
      srv_prof = Prof.create ();
      srv_metrics = Metrics.create ();
      srv_log = log;
      srv_t0_ns = Prof.monotonic_ns ();
      srv_inflight = Atomic.make 0;
      srv_rid = Atomic.make 1;
      srv_cid = Atomic.make 1;
      srv_backlog = max 1 backlog;
      srv_max_inflight = max 1 max_inflight;
      srv_conn_jobs = max 0 conn_jobs;
      srv_workers = None;
      srv_stop = false;
    }
  in
  Metrics.install t.srv_metrics;
  (* seed the event-driven gauges so a scrape before any traffic still
     exposes the families *)
  Metrics.set_gauge g_inflight 0.0;
  Metrics.set_gauge g_connections 0.0;
  let diags =
    match cache_dir with
    | None -> []
    | Some dir -> (
        match Store.load ~dir ~schema:protocol_version with
        | Store.Absent -> []
        | Store.Rejected d -> [ d ]
        | Store.Restored p ->
            let (_ : int) = Dependence.Memo.import p.Store.pay_memo in
            (* publish the restored memo to the hub so every connection
               worker starts warm, not just the control domain *)
            let (_ : int * int) = Dependence.Memo.sync () in
            (* pay_units is in cold→hot recency order: in-order adds
               replay it, so under a smaller cap the hot tail wins *)
            List.iter
              (fun (h, body) -> Lru.add t.srv_units h body)
              p.Store.pay_units;
            t.srv_prof.Prof.c.Prof.snapshot_restores <-
              t.srv_prof.Prof.c.Prof.snapshot_restores + 1;
            [])
  in
  log_line t ~level:L_info
    [
      ("event", Json.Str "start");
      ("protocol", Json.Int protocol_version);
      ("jobs", Json.Int t.srv_jobs);
      ("conn_jobs", Json.Int t.srv_conn_jobs);
      ("units_restored", Json.Int (units_cached t));
    ];
  (t, log_diags @ diags)

(* Snapshot the warm state: the merged memo store (hub + this domain)
   plus the unit cache in cold→hot recency order, so a restart re-warms
   hot entries first.  The payload is deterministic given the request
   history: recency order is a pure function of the (deterministic)
   request order. *)
let save_snapshot t : (string, Diag.t) result =
  match t.srv_cache_dir with
  | None -> Error (Diag.make ~severity:Diag.Warning Diag.Io "no --cache-dir")
  | Some dir ->
      (* fold every domain's discoveries into the calling domain before
         exporting — the snapshot must not depend on which domain saves *)
      let (_ : int * int) = Dependence.Memo.sync () in
      Store.save ~dir ~schema:protocol_version
        {
          Store.pay_memo = Dependence.Memo.export ();
          pay_units = Lru.to_alist t.srv_units;
        }

(** Graceful drain: persist the warm caches (when [--cache-dir] was
    given), then stop and join the pool.  Returns the snapshot
    diagnostics; a failed write is a warning, never a crash. *)
let drain t : Diag.t list =
  t.srv_stop <- true;
  let ds =
    match t.srv_cache_dir with
    | None -> []
    | Some _ -> ( match save_snapshot t with Ok _ -> [] | Error d -> [ d ])
  in
  Runtime.Pool.shutdown t.srv_pool;
  log_line t ~level:L_info
    [
      ("event", Json.Str "drain");
      ("requests_served", Json.Int (counters t).Prof.requests_served);
    ];
  (match t.srv_log with Some lg -> close_out_noerr lg.lg_oc | None -> ());
  Metrics.uninstall t.srv_metrics;
  ds

(* ------------------------------------------------------------------ *)
(* Unit work                                                           *)
(* ------------------------------------------------------------------ *)

(* Same reset as the bench driver: ids and generated names become a pure
   function of the unit source, independent of what this domain compiled
   before — the cache-miss path must produce the bytes a fresh one-shot
   process would. *)
let reset_gensyms () =
  Frontend.Ast.reset_ids ();
  Analysis.Sections.reset_gensym ();
  Inliner.Inline.reset_gensym ();
  Annot_inline.reset_gensym ()

let render_diags ds = Json.List (List.map (fun d -> Json.Str (Diag.render d)) ds)

(* Salvaging parse of source + annotations, demand/plan flavor: the
   planner needs the pristine AST before any inlining touches it. *)
let parse_program ~max_errors source annot_source =
  let p, ds = Frontend.Resolve.parse_robust ~max_errors source in
  let annots, ads =
    if String.trim annot_source = "" then ([], [])
    else
      match Annot_parser.parse_annotations annot_source with
      | a -> (a, [])
      | exception Annot_parser.Annot_parse_error m ->
          ( [],
            [
              Diag.make Diag.Annot
                ("annotation file rejected (" ^ m
               ^ "); continuing without annotations");
            ] )
  in
  (p, annots, ds @ ads)

(* One work request body, computed (the cache-miss path).  Runs under
   the caller's per-request profile; raises only through the barrier in
   [handle_work]. *)
let compute_body ~max_errors ~op ~mode ~growth_budget ~max_rounds ~source
    ~annot : Json.t =
  let run_result () =
    match mode with
    | Pipeline.Demand ->
        let program, annots, parse_diags =
          parse_program ~max_errors source annot
        in
        let dg = Diag.collector ~max_errors () in
        List.iter (Diag.emit dg) parse_diags;
        let r, pl = Planner.run ~growth_budget ~max_rounds ~annots ~dg program in
        (r, Some pl)
    | _ ->
        ( Pipeline.run_source_robust ~max_errors ~mode ~annot_source:annot
            source,
          None )
  in
  match op with
  | "analyze" ->
      let r, _ = run_result () in
      let verdicts =
        List.map
          (fun (rep : Parallelizer.Parallelize.loop_report) -> rep.rep_verdict)
          r.Pipeline.res_reports
      in
      let parallel = List.filter Verdict.is_parallel verdicts in
      Json.Obj
        [
          ("op", Json.Str "analyze");
          ("mode", Json.Str (Pipeline.mode_name mode));
          ("verdicts", Json.List (List.map Verdict.to_json verdicts));
          ("parallel", Json.Int (List.length parallel));
          ("marked", Json.Int (List.length r.Pipeline.res_marked));
          ( "serial",
            Json.Int (List.length verdicts - List.length parallel) );
          ("code_size", Json.Int r.Pipeline.res_code_size);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | "compile" ->
      let r, _ = run_result () in
      Json.Obj
        [
          ("op", Json.Str "compile");
          ("mode", Json.Str (Pipeline.mode_name mode));
          ( "program",
            Json.Str (Frontend.Pretty.program_to_string r.Pipeline.res_program)
          );
          ("marked", Json.Int (List.length r.Pipeline.res_marked));
          ("code_size", Json.Int r.Pipeline.res_code_size);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | "plan" ->
      let program, annots, parse_diags =
        parse_program ~max_errors source annot
      in
      let dg = Diag.collector ~max_errors () in
      List.iter (Diag.emit dg) parse_diags;
      let r, pl = Planner.run ~growth_budget ~max_rounds ~annots ~dg program in
      Json.Obj
        [
          ("op", Json.Str "plan");
          ("plan", Planner.to_json pl);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | op -> Diag.fatal Diag.Cli "unknown op %S" op

(* The per-request fault barrier around one work request.  Everything —
   a tripped [server.request] chaos fault, a fatal diagnostic, the
   error-budget overflow, an unknown mode — degrades to an error
   response for this request; the daemon and its caches are untouched
   (failed results are never cached). *)
let handle_work t (j : Json.t) : string =
  let id = Json.to_int (Json.member "id" j) in
  let rid = next_rid t in
  let op_s =
    match Json.member "op" j with Json.Null -> "analyze" | v -> Json.to_str v
  in
  let t0 = Prof.monotonic_ns () in
  let faults0 = Fault.armed_fired_count () in
  (* event-driven in-flight accounting: refresh-at-scrape was racy once
     workers run in parallel — inc here, dec after the barrier, so a
     scrape from another connection observes the true concurrent count *)
  Atomic.incr t.srv_inflight;
  Metrics.add_gauge g_inflight 1.0;
  (* (response, ok, unit hash) plus the cache-outcome label for the
     per-op latency histogram: "hit" | "miss" | "error". *)
  let (response, ok, hash), cache =
    match
      Fault.point "server.request";
      let mode_s = Json.to_str (Json.member "mode" j) in
      let source = Json.to_str (Json.member "source" j) in
      let annot = Json.to_str (Json.member "annot" j) in
      let growth_budget =
        match Json.member "growth_budget" j with
        | Json.Null -> Planner.default_growth_budget
        | v -> Json.to_float v
      in
      let max_rounds =
        match Json.member "max_rounds" j with
        | Json.Null -> Planner.default_max_rounds
        | v -> Json.to_int v
      in
      if source = "" then Diag.fatal Diag.Cli "work request without source";
      if growth_budget <= 0.0 then
        Diag.fatal Diag.Cli "growth_budget must be positive";
      if max_rounds < 1 then
        Diag.fatal Diag.Cli "max_rounds must be at least 1";
      match mode_of_string mode_s with
      | Error m -> Diag.fatal Diag.Cli "%s" m
      | Ok mode -> (
          let hash =
            unit_hash ~op:op_s ~mode:(Pipeline.mode_name mode) ~growth_budget
              ~max_rounds ~source ~annot
          in
          match Lru.find t.srv_units hash with
          | Some body ->
              Mutex.lock t.srv_m;
              t.srv_prof.Prof.c.Prof.requests_served <-
                t.srv_prof.Prof.c.Prof.requests_served + 1;
              t.srv_prof.Prof.c.Prof.unit_cache_hits <-
                t.srv_prof.Prof.c.Prof.unit_cache_hits + 1;
              Mutex.unlock t.srv_m;
              ((ok_envelope ~rid ~id ~cached:true ~hash body, true, Some hash),
               "hit")
          | None ->
              (* warm this domain's memo store from the hub before the
                 compute, publish what the compute learned after: domain
                 A's cold miss becomes domain B's warm hit.  Both are
                 no-ops for the stdio/sequential daemon beyond one
                 mutex round-trip. *)
              let (_ : int * int) = Dependence.Memo.sync () in
              let prof = Prof.create () in
              let body =
                Prof.with_profiling prof (fun () ->
                    reset_gensyms ();
                    compute_body ~max_errors:t.srv_max_errors ~op:op_s ~mode
                      ~growth_budget ~max_rounds ~source ~annot)
              in
              let body = Json.to_string body in
              let (_ : int * int) = Dependence.Memo.sync () in
              Lru.add t.srv_units hash body;
              Mutex.lock t.srv_m;
              Prof.absorb t.srv_prof (Prof.snapshot prof);
              t.srv_prof.Prof.c.Prof.requests_served <-
                t.srv_prof.Prof.c.Prof.requests_served + 1;
              Mutex.unlock t.srv_m;
              ((ok_envelope ~rid ~id ~cached:false ~hash body, true, Some hash),
               "miss"))
    with
    | result -> result
    | exception Fault.Injected (site, n) ->
        ( ( error_response ~rid ~id
              [
                Diag.make Diag.Exec
                  (Printf.sprintf
                     "request hit injected fault at %s (arrival %d)" site n);
              ],
            false,
            None ),
          "error" )
    | exception Diag.Error_limit n ->
        ( ( error_response ~rid ~id
              [
                Diag.make Diag.Cli (Printf.sprintf "error limit (%d) reached" n);
              ],
            false,
            None ),
          "error" )
    | exception e ->
        ( ( error_response ~rid ~id
              [ Diag.of_exn ~backtrace:(Printexc.get_backtrace ()) Diag.Exec e ],
            false,
            None ),
          "error" )
  in
  Atomic.decr t.srv_inflight;
  Metrics.add_gauge g_inflight (-1.0);
  let dur_ns = Int64.to_int (Int64.sub (Prof.monotonic_ns ()) t0) in
  if Metrics.on () then begin
    Metrics.observe_ns (m_request_hist ~op:op_s ~cache) dur_ns;
    Metrics.incr (m_requests ~op:op_s ~status:(if ok then "ok" else "error"))
  end;
  let fault_sites = Fault.armed_fired_since faults0 in
  log_line t
    ~level:(if ok && fault_sites = [] then L_info else L_warn)
    ([
       ("request_id", Json.Str rid);
       ("op", Json.Str op_s);
       ("id", Json.Int id);
     ]
    @ (match hash with None -> [] | Some h -> [ ("hash", Json.Str h) ])
    @ [
        ("cache", Json.Str cache);
        ("ok", Json.Bool ok);
        ("latency_ms", Json.Float (float_of_int dur_ns /. 1e6));
        ("faults", Json.List (List.map (fun s -> Json.Str s) fault_sites));
      ]);
  response

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* A batch shards its work requests across the pool domains.  Chunk
   functions are idempotent pure writes into distinct slots, and
   [handle_work] already owns all failure modes, so a pool-level report
   only matters for the chunks a dying worker abandoned.  The pool runs
   one job at a time, so concurrent connection workers queue on
   [srv_batch_m] for their turn. *)
let handle_batch t ~rid ~id (reqs : Json.t list) : string =
  let reqs = Array.of_list reqs in
  let out = Array.make (Array.length reqs) "" in
  let events = ref [] in
  Mutex.lock t.srv_batch_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.srv_batch_m)
    (fun () ->
      Runtime.Pool.parallel_for ~label:"server-batch"
        ~report:(fun evs -> events := evs)
        t.srv_pool ~chunks:(Array.length reqs)
        (fun i -> out.(i) <- handle_work t reqs.(i)));
  List.iter
    (fun (ev : Runtime.Pool.event) ->
      match ev with
      | Runtime.Pool.Chunk_failed { chunk; error; backtrace } ->
          out.(chunk) <-
            error_response ~rid
              ~id:(Json.to_int (Json.member "id" reqs.(chunk)))
              [ Diag.of_exn ~backtrace Diag.Exec error ]
      | _ -> ())
    !events;
  Printf.sprintf
    "{\"id\":%d,\"ok\":true,\"request_id\":\"%s\",\"responses\":[%s]}" id rid
    (String.concat "," (Array.to_list out))

let uptime_s t =
  Int64.to_float (Int64.sub (Prof.monotonic_ns ()) t.srv_t0_ns) /. 1e9

(* Refresh the sampled gauges just before a scrape.  The in-flight
   gauge is NOT here: it is event-driven (inc/dec around each request),
   because a refresh-at-scrape value is stale the instant a concurrent
   worker starts or finishes a request. *)
let refresh_gauges t =
  let cs = cache_stats t in
  Metrics.set_gauge g_uptime (uptime_s t);
  Metrics.set_gauge g_units_cached (float_of_int cs.Lru.units);
  Metrics.set_gauge g_cache_bytes (float_of_int cs.Lru.bytes)

(* Histogram snapshots as a JSON object keyed by family{labels}, for the
   extended [stats] op. *)
let histograms_json (snap : Metrics.snapshot) : Json.t =
  match Metrics.to_json snap with
  | Json.Obj kvs -> (
      match List.assoc_opt "histograms" kvs with Some h -> h | None -> Json.Obj [])
  | _ -> Json.Obj []

let log_control t ~level ~rid ~op ~id ~ok =
  if Metrics.on () then
    Metrics.incr (m_requests ~op ~status:(if ok then "ok" else "error"));
  log_line t ~level
    [
      ("request_id", Json.Str rid);
      ("op", Json.Str op);
      ("id", Json.Int id);
      ("ok", Json.Bool ok);
    ]

(** Handle one protocol message (a parsed JSON line) and return the
    response line. *)
let handle_request t (j : Json.t) : string =
  let id = Json.to_int (Json.member "id" j) in
  let op =
    match Json.member "op" j with Json.Null -> "analyze" | v -> Json.to_str v
  in
  match op with
  | "ping" ->
      let rid = next_rid t in
      log_control t ~level:L_debug ~rid ~op ~id ~ok:true;
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "ping");
             ("request_id", Json.Str rid);
             ("protocol", Json.Int protocol_version);
           ])
  | "stats" ->
      let rid = next_rid t in
      log_control t ~level:L_debug ~rid ~op ~id ~ok:true;
      refresh_gauges t;
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "stats");
             ("request_id", Json.Str rid);
             ("protocol", Json.Int protocol_version);
             ("jobs", Json.Int t.srv_jobs);
             ("conn_jobs", Json.Int t.srv_conn_jobs);
             ("backlog", Json.Int t.srv_backlog);
             ("max_inflight", Json.Int t.srv_max_inflight);
             ("units_cached", Json.Int (units_cached t));
             ("uptime_s", Json.Float (uptime_s t));
             ("requests_in_flight", Json.Int (Atomic.get t.srv_inflight));
             ( "cache",
               let cs = cache_stats t in
               Json.Obj
                 [
                   ("units", Json.Int cs.Lru.units);
                   ("bytes", Json.Int cs.Lru.bytes);
                   ("evictions", Json.Int cs.Lru.evictions);
                   ("max_units", Json.Int cs.Lru.max_units);
                   ("max_bytes", Json.Int cs.Lru.max_bytes);
                 ] );
             ( "connections",
               let ws = conn_stats t in
               Json.Obj
                 [
                   ("accepted", Json.Int ws.Runtime.Workers.accepted);
                   ("shed", Json.Int ws.Runtime.Workers.shed);
                   ("handler_errors",
                    Json.Int ws.Runtime.Workers.handler_errors);
                   ("worker_deaths", Json.Int ws.Runtime.Workers.deaths);
                   ("worker_respawns", Json.Int ws.Runtime.Workers.respawns);
                   ("inflight", Json.Int ws.Runtime.Workers.inflight);
                   ("workers", Json.Int ws.Runtime.Workers.workers);
                 ] );
             ("counters", counters_json (counters t));
             ("histograms", histograms_json (Metrics.snapshot t.srv_metrics));
           ])
  | "metrics" ->
      let rid = next_rid t in
      log_control t ~level:L_debug ~rid ~op ~id ~ok:true;
      refresh_gauges t;
      let snap = Metrics.snapshot t.srv_metrics in
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "metrics");
             ("request_id", Json.Str rid);
             ("exposition", Json.Str (Metrics.to_prometheus snap));
             ("metrics", Metrics.to_json snap);
           ])
  | "snapshot" -> (
      let rid = next_rid t in
      match save_snapshot t with
      | Ok path ->
          log_control t ~level:L_info ~rid ~op ~id ~ok:true;
          Json.to_string
            (Json.Obj
               [
                 ("id", Json.Int id);
                 ("ok", Json.Bool true);
                 ("op", Json.Str "snapshot");
                 ("request_id", Json.Str rid);
                 ("path", Json.Str path);
               ])
      | Error d ->
          log_control t ~level:L_warn ~rid ~op ~id ~ok:false;
          error_response ~rid ~id [ d ])
  | "shutdown" ->
      let rid = next_rid t in
      t.srv_stop <- true;
      log_control t ~level:L_info ~rid ~op ~id ~ok:true;
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "shutdown");
             ("request_id", Json.Str rid);
           ])
  | "batch" ->
      let rid = next_rid t in
      let reqs = Json.to_list (Json.member "requests" j) in
      let response = handle_batch t ~rid ~id reqs in
      log_control t ~level:L_info ~rid ~op ~id ~ok:true;
      response
  | "analyze" | "compile" | "plan" -> handle_work t j
  | op ->
      let rid = next_rid t in
      log_control t ~level:L_warn ~rid ~op ~id ~ok:false;
      error_response ~rid ~id
        [ Diag.make Diag.Cli (Printf.sprintf "unknown op %S" op) ]

(** Handle one raw protocol line.  Unparseable JSON degrades to an
    error response (id 0 — the id was unreadable), per the
    never-crash-the-daemon contract. *)
let handle_line t (line : string) : string =
  match Json.parse line with
  | Error m ->
      let rid = next_rid t in
      log_control t ~level:L_warn ~rid ~op:"parse" ~id:0 ~ok:false;
      error_response ~rid ~id:0
        [ Diag.make Diag.Cli (Printf.sprintf "bad request JSON: %s" m) ]
  | Ok j -> handle_request t j

(* ------------------------------------------------------------------ *)
(* Serve loops                                                         *)
(* ------------------------------------------------------------------ *)

(** Newline-delimited-JSON loop over a channel pair; returns on EOF or
    once a [shutdown] op has been answered.  The [server.accept] chaos
    point guards message receipt: a tripped arrival degrades to an
    error response for that line and the loop continues. *)
let serve_channels t (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    if t.srv_stop then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
          let response =
            match Fault.point "server.accept" with
            | () -> handle_line t line
            | exception Fault.Injected (site, n) ->
                let rid = next_rid t in
                log_control t ~level:L_error ~rid ~op:"accept" ~id:0 ~ok:false;
                error_response ~rid ~id:0
                  [
                    Diag.make Diag.Exec
                      (Printf.sprintf
                         "request dropped by injected fault at %s (arrival %d)"
                         site n);
                  ]
          in
          output_string oc response;
          output_char oc '\n';
          flush oc;
          loop ()
  in
  loop ()

(* The structured overload envelope an admission-shed connection gets
   before being closed: machine-readable ([overloaded]:true) so a
   client can back off and retry, never a silent close. *)
let overload_response t ~rid : string =
  let msg =
    Printf.sprintf "server overloaded: %d connections in flight (max %d)"
      (conn_stats t).Runtime.Workers.inflight t.srv_max_inflight
  in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int 0);
         ("ok", Json.Bool false);
         ("overloaded", Json.Bool true);
         ("request_id", Json.Str rid);
         ("error", Json.Str msg);
         ("diags", Json.List [ Json.Str (Diag.render (Diag.make Diag.Exec msg)) ]);
       ])

(** Serve one accepted connection to completion — the connection-pool
    handler.  Every exit path closes [fd].  The [server.conn] chaos
    site guards the whole connection: a tripped arrival (or any
    per-connection I/O error) drops {e this} connection with a warning,
    never the acceptor or a sibling worker. *)
let handle_conn t (fd : Unix.file_descr) : unit =
  let cid = next_cid t in
  Metrics.add_gauge g_connections 1.0;
  let finish outcome =
    Metrics.add_gauge g_connections (-1.0);
    Metrics.incr (m_connections ~outcome)
  in
  match Fault.point "server.conn" with
  | exception Fault.Injected (site, n) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      finish "dropped";
      log_line t ~level:L_error
        [
          ("conn_id", Json.Str cid);
          ("event", Json.Str "conn_dropped");
          ("fault", Json.Str site);
        ];
      prerr_endline
        (Diag.render
           (Diag.make ~severity:Diag.Warning Diag.Exec
              (Printf.sprintf
                 "conn %s: connection dropped by injected fault at %s \
                  (arrival %d)"
                 cid site n)))
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      match serve_channels t ic oc with
      | () ->
          close_out_noerr oc;
          finish "served";
          log_line t ~level:L_debug
            [ ("conn_id", Json.Str cid); ("event", Json.Str "conn_closed") ]
      | exception e ->
          close_out_noerr oc;
          finish "dropped";
          log_line t ~level:L_error
            [
              ("conn_id", Json.Str cid);
              ("event", Json.Str "conn_dropped");
              ("error", Json.Str (Printexc.to_string e));
            ];
          prerr_endline
            (Diag.render
               (Diag.make ~severity:Diag.Warning Diag.Exec
                  (Printf.sprintf "conn %s: connection dropped: %s" cid
                     (Printexc.to_string e)))))

(* Admission refusal: answer with the overload envelope, then close.
   Best-effort — a client that already went away loses nothing. *)
let shed_conn t (fd : Unix.file_descr) : unit =
  let rid = next_rid t in
  (try
     let oc = Unix.out_channel_of_descr fd in
     output_string oc (overload_response t ~rid);
     output_char oc '\n';
     flush oc
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Metrics.incr (m_connections ~outcome:"shed");
  log_line t ~level:L_warn
    [ ("request_id", Json.Str rid); ("event", Json.Str "conn_shed") ]

(** Accept loop on a Unix-domain socket at [path] (an existing file
    there is replaced).  Accepted connections are handed to a
    fixed-size {!Runtime.Workers} pool of [conn_jobs] domains
    ([conn_jobs = 0] serves them sequentially on the acceptor, the
    pre-concurrency behavior); admission is bounded by the [backlog]
    passed to [Unix.listen] plus the [max_inflight] shed, which answers
    a structured overload envelope instead of queuing forever.  The
    loop returns once a [shutdown] op was answered or {!stop} was
    called (the acceptor polls the flag, so a shutdown handled on a
    worker domain is noticed promptly).  A tripped [server.accept]
    fault drops the connection before admission; [server.conn] and
    per-connection I/O errors drop only their own connection — the
    acceptor and the other workers keep going. *)
let serve_socket t ~(path : string) : unit =
  (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let workers =
    Runtime.Workers.create ~max_pending:t.srv_max_inflight
      ~size:t.srv_conn_jobs
      ~handler:(fun fd -> handle_conn t fd)
      ~discard:(fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  t.srv_workers <- Some workers;
  Fun.protect
    ~finally:(fun () ->
      Runtime.Workers.shutdown workers;
      t.srv_workers <- None;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock t.srv_backlog;
      let rec accept_loop () =
        if t.srv_stop then ()
        else
          (* poll-accept so a stop flag flipped on a worker domain (the
             shutdown op) stops the acceptor within one tick *)
          match Unix.select [ sock ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ ->
              (match Unix.accept sock with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | fd, _ -> (
                  match Fault.point "server.accept" with
                  | () -> (
                      match Runtime.Workers.submit workers fd with
                      | Runtime.Workers.Accepted -> ()
                      | Runtime.Workers.Shed -> shed_conn t fd)
                  | exception Fault.Injected (site, n) ->
                      (try Unix.close fd with Unix.Unix_error _ -> ());
                      Metrics.incr (m_connections ~outcome:"dropped");
                      let rid = next_rid t in
                      log_control t ~level:L_error ~rid ~op:"connection" ~id:0
                        ~ok:false;
                      prerr_endline
                        (Diag.render
                           (Diag.make ~severity:Diag.Warning Diag.Exec
                              (Printf.sprintf
                                 "req %s: connection dropped by injected \
                                  fault at %s (arrival %d)"
                                 rid site n)))));
              accept_loop ()
      in
      accept_loop ())
