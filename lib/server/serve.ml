(** The analysis daemon behind [parinline serve].

    A long-lived server that accepts batched analysis / parallelization
    / plan requests over a newline-delimited-JSON protocol (stdin/stdout
    or a Unix-domain socket — the framing is identical) and keeps two
    caches warm across requests:

    - the {b unit cache}: every work request is content-hashed (source
      digest + annotation digest + mode + options + protocol schema);
      an unchanged unit is a pure end-to-end hit that returns the stored
      response body without re-parsing, and

    - the {b dependence memo store} ({!Dependence.Memo}): PR 5 made its
      entries unit-independent, so they legally persist across requests,
      units, and all four inlining configurations.

    Both survive restarts through {!Store} snapshots ([--cache-dir]).

    Protocol: one JSON object per line in, one per line out.

    {v
    REQUEST  := { "op": OP, "id": INT, ... }
    OP       := "ping" | "stats" | "analyze" | "compile" | "plan"
              | "batch" | "snapshot" | "shutdown"
    work ops (analyze/compile/plan) add:
                "source": STR   Fortran source text (required)
                "annot":  STR   annotation text (default "")
                "mode":   STR   none|conventional|annotation|demand
                "growth_budget": FLOAT, "max_rounds": INT   (plan/demand)
    batch adds: "requests": [ WORK-REQUEST... ]  — sharded across the
                {!Runtime.Pool} domains, responses in request order
    v}

    Responses are [{"id":N,"ok":true,"cached":BOOL,"hash":STR,
    "result":BODY}] for work, [{"id":N,"ok":false,"error":STR,
    "diags":[STR...]}] on failure.  The failure contract matches the
    pipeline's degradation ladder: a poisoned request — bad JSON, an
    unknown op, a source that defeats even the salvaging parser, or an
    injected [server.request] chaos fault — degrades to a per-request
    error response carrying structured {!Core.Diag} records; the daemon
    itself never crashes.

    Determinism: every cache miss resets the domain-local gensyms before
    compiling (exactly like the bench driver), so response bodies are a
    pure function of (source, annot, mode, options) — byte-identical
    across request order, domain placement, and daemon restarts, and
    equal to what a one-shot [parinline] run prints for the same unit. *)

open Core
module Json = Frontend.Json
module Verdict = Parallelizer.Verdict

(** Version of the protocol and of the response-body shapes.  Bumped
    whenever a body would change for the same input; snapshots carry it
    so a stale cache can never replay an old shape (see {!Store}). *)
let protocol_version = 1

type t = {
  srv_jobs : int;
  srv_pool : Runtime.Pool.t;
  srv_cache_dir : string option;
  srv_max_errors : int;
  srv_m : Mutex.t;  (** guards [srv_units] and [srv_prof] *)
  srv_units : (string, string) Hashtbl.t;
      (** content hash (hex) → serialized response body *)
  srv_prof : Prof.t;  (** server-lifetime counter aggregate *)
  mutable srv_stop : bool;
}

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let mode_of_string = function
  | "none" | "no-inlining" -> Ok Pipeline.No_inlining
  | "conventional" -> Ok Pipeline.Conventional
  | "" | "annotation" | "annotation-based" -> Ok Pipeline.Annotation_based
  | "demand" | "demand-driven" -> Ok Pipeline.Demand
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(** Build a work/control request object — the one true spelling, shared
    by the CLI client and the serve-bench harness. *)
let request ?(id = 0) ~op ?(mode = "annotation") ?(source = "")
    ?(annot = "") ?growth_budget ?max_rounds () : Json.t =
  Json.Obj
    ([ ("op", Json.Str op); ("id", Json.Int id) ]
    @ (if source = "" then [] else [ ("source", Json.Str source) ])
    @ (if annot = "" then [] else [ ("annot", Json.Str annot) ])
    @ (if mode = "" then [] else [ ("mode", Json.Str mode) ])
    @ (match growth_budget with
      | None -> []
      | Some f -> [ ("growth_budget", Json.Float f) ])
    @
    match max_rounds with
    | None -> []
    | Some n -> [ ("max_rounds", Json.Int n) ])

(** The content-hash key of a work request: an unchanged unit under the
    same options is a pure cache hit, and any change to source text,
    annotations, mode, planner options, or the protocol schema lands in
    a different slot. *)
let unit_hash ~op ~mode ~growth_budget ~max_rounds ~source ~annot =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            string_of_int protocol_version;
            op;
            mode;
            Printf.sprintf "%.6f" growth_budget;
            string_of_int max_rounds;
            source;
            annot;
          ]))

(* Responses.  The envelope around a cached body is assembled by string
   concatenation so a hit replays the stored bytes verbatim. *)
let ok_envelope ~id ~cached ~hash body =
  Printf.sprintf "{\"id\":%d,\"ok\":true,\"cached\":%b,\"hash\":\"%s\",\"result\":%s}"
    id cached hash body

let error_response ~id (ds : Diag.t list) =
  let rendered = List.map Diag.render ds in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Str (match rendered with [] -> "request failed" | r :: _ -> r)
         );
         ("diags", Json.List (List.map (fun r -> Json.Str r) rendered));
       ])

let counters_json (c : Prof.counters) : Json.t =
  Json.Obj
    [
      ("dep_tests_run", Json.Int c.Prof.dep_tests_run);
      ("dep_tests_independent", Json.Int c.Prof.dep_tests_independent);
      ("dep_cache_hits", Json.Int c.Prof.dep_cache_hits);
      ("dep_cache_misses", Json.Int c.Prof.dep_cache_misses);
      ("annot_sites_inlined", Json.Int c.Prof.annot_sites_inlined);
      ("reverse_sites_matched", Json.Int c.Prof.reverse_sites_matched);
      ("stmts_normalized", Json.Int c.Prof.stmts_normalized);
      ("iterations_traced", Json.Int c.Prof.iterations_traced);
      ("race_conflicts", Json.Int c.Prof.race_conflicts);
      ("race_excused", Json.Int c.Prof.race_excused);
      ("faults_injected", Json.Int c.Prof.faults_injected);
      ("requests_served", Json.Int c.Prof.requests_served);
      ("unit_cache_hits", Json.Int c.Prof.unit_cache_hits);
      ("snapshot_restores", Json.Int c.Prof.snapshot_restores);
    ]

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let units_cached t =
  Mutex.lock t.srv_m;
  let n = Hashtbl.length t.srv_units in
  Mutex.unlock t.srv_m;
  n

(** Counter snapshot of the server-lifetime aggregate. *)
let counters t =
  Mutex.lock t.srv_m;
  let c = Prof.snapshot t.srv_prof in
  Mutex.unlock t.srv_m;
  c

(** Ask the serve loops to wind down after the in-flight message (also
    flipped by the [shutdown] op; signal handlers call this). *)
let stop t = t.srv_stop <- true
let stopping t = t.srv_stop

(** Create a server.  [jobs] sizes the {!Runtime.Pool} batch sharding
    ([<= 1] runs everything on the caller); with [cache_dir] the warm
    caches are restored from the snapshot on disk (if any) and saved
    back on {!drain}.  Returns the startup diagnostics — a rejected
    snapshot degrades to a warning here and a cold start. *)
let create ?(jobs = 1) ?cache_dir ?(max_errors = Diag.default_max_errors) ()
    : t * Diag.t list =
  let t =
    {
      srv_jobs = max 1 jobs;
      srv_pool = Runtime.Pool.create (max 1 jobs);
      srv_cache_dir = cache_dir;
      srv_max_errors = max_errors;
      srv_m = Mutex.create ();
      srv_units = Hashtbl.create 64;
      srv_prof = Prof.create ();
      srv_stop = false;
    }
  in
  let diags =
    match cache_dir with
    | None -> []
    | Some dir -> (
        match Store.load ~dir ~schema:protocol_version with
        | Store.Absent -> []
        | Store.Rejected d -> [ d ]
        | Store.Restored p ->
            let (_ : int) = Dependence.Memo.import p.Store.pay_memo in
            List.iter
              (fun (h, body) -> Hashtbl.replace t.srv_units h body)
              p.Store.pay_units;
            t.srv_prof.Prof.c.Prof.snapshot_restores <-
              t.srv_prof.Prof.c.Prof.snapshot_restores + 1;
            [])
  in
  (t, diags)

(* Snapshot the warm state: the control domain's memo store plus the
   unit cache, sorted by key so the payload is deterministic. *)
let save_snapshot t : (string, Diag.t) result =
  match t.srv_cache_dir with
  | None -> Error (Diag.make ~severity:Diag.Warning Diag.Io "no --cache-dir")
  | Some dir ->
      let units =
        Mutex.lock t.srv_m;
        let us = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.srv_units [] in
        Mutex.unlock t.srv_m;
        List.sort compare us
      in
      Store.save ~dir ~schema:protocol_version
        { Store.pay_memo = Dependence.Memo.export (); pay_units = units }

(** Graceful drain: persist the warm caches (when [--cache-dir] was
    given), then stop and join the pool.  Returns the snapshot
    diagnostics; a failed write is a warning, never a crash. *)
let drain t : Diag.t list =
  t.srv_stop <- true;
  let ds =
    match t.srv_cache_dir with
    | None -> []
    | Some _ -> ( match save_snapshot t with Ok _ -> [] | Error d -> [ d ])
  in
  Runtime.Pool.shutdown t.srv_pool;
  ds

(* ------------------------------------------------------------------ *)
(* Unit work                                                           *)
(* ------------------------------------------------------------------ *)

(* Same reset as the bench driver: ids and generated names become a pure
   function of the unit source, independent of what this domain compiled
   before — the cache-miss path must produce the bytes a fresh one-shot
   process would. *)
let reset_gensyms () =
  Frontend.Ast.reset_ids ();
  Analysis.Sections.reset_gensym ();
  Inliner.Inline.reset_gensym ();
  Annot_inline.reset_gensym ()

let render_diags ds = Json.List (List.map (fun d -> Json.Str (Diag.render d)) ds)

(* Salvaging parse of source + annotations, demand/plan flavor: the
   planner needs the pristine AST before any inlining touches it. *)
let parse_program ~max_errors source annot_source =
  let p, ds = Frontend.Resolve.parse_robust ~max_errors source in
  let annots, ads =
    if String.trim annot_source = "" then ([], [])
    else
      match Annot_parser.parse_annotations annot_source with
      | a -> (a, [])
      | exception Annot_parser.Annot_parse_error m ->
          ( [],
            [
              Diag.make Diag.Annot
                ("annotation file rejected (" ^ m
               ^ "); continuing without annotations");
            ] )
  in
  (p, annots, ds @ ads)

(* One work request body, computed (the cache-miss path).  Runs under
   the caller's per-request profile; raises only through the barrier in
   [handle_work]. *)
let compute_body ~max_errors ~op ~mode ~growth_budget ~max_rounds ~source
    ~annot : Json.t =
  let run_result () =
    match mode with
    | Pipeline.Demand ->
        let program, annots, parse_diags =
          parse_program ~max_errors source annot
        in
        let dg = Diag.collector ~max_errors () in
        List.iter (Diag.emit dg) parse_diags;
        let r, pl = Planner.run ~growth_budget ~max_rounds ~annots ~dg program in
        (r, Some pl)
    | _ ->
        ( Pipeline.run_source_robust ~max_errors ~mode ~annot_source:annot
            source,
          None )
  in
  match op with
  | "analyze" ->
      let r, _ = run_result () in
      let verdicts =
        List.map
          (fun (rep : Parallelizer.Parallelize.loop_report) -> rep.rep_verdict)
          r.Pipeline.res_reports
      in
      let parallel = List.filter Verdict.is_parallel verdicts in
      Json.Obj
        [
          ("op", Json.Str "analyze");
          ("mode", Json.Str (Pipeline.mode_name mode));
          ("verdicts", Json.List (List.map Verdict.to_json verdicts));
          ("parallel", Json.Int (List.length parallel));
          ("marked", Json.Int (List.length r.Pipeline.res_marked));
          ( "serial",
            Json.Int (List.length verdicts - List.length parallel) );
          ("code_size", Json.Int r.Pipeline.res_code_size);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | "compile" ->
      let r, _ = run_result () in
      Json.Obj
        [
          ("op", Json.Str "compile");
          ("mode", Json.Str (Pipeline.mode_name mode));
          ( "program",
            Json.Str (Frontend.Pretty.program_to_string r.Pipeline.res_program)
          );
          ("marked", Json.Int (List.length r.Pipeline.res_marked));
          ("code_size", Json.Int r.Pipeline.res_code_size);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | "plan" ->
      let program, annots, parse_diags =
        parse_program ~max_errors source annot
      in
      let dg = Diag.collector ~max_errors () in
      List.iter (Diag.emit dg) parse_diags;
      let r, pl = Planner.run ~growth_budget ~max_rounds ~annots ~dg program in
      Json.Obj
        [
          ("op", Json.Str "plan");
          ("plan", Planner.to_json pl);
          ("diags", render_diags r.Pipeline.res_diags);
        ]
  | op -> Diag.fatal Diag.Cli "unknown op %S" op

(* The per-request fault barrier around one work request.  Everything —
   a tripped [server.request] chaos fault, a fatal diagnostic, the
   error-budget overflow, an unknown mode — degrades to an error
   response for this request; the daemon and its caches are untouched
   (failed results are never cached). *)
let handle_work t (j : Json.t) : string =
  let id = Json.to_int (Json.member "id" j) in
  match
    Fault.point "server.request";
    let op =
      match Json.member "op" j with
      | Json.Null -> "analyze"
      | v -> Json.to_str v
    in
    let mode_s = Json.to_str (Json.member "mode" j) in
    let source = Json.to_str (Json.member "source" j) in
    let annot = Json.to_str (Json.member "annot" j) in
    let growth_budget =
      match Json.member "growth_budget" j with
      | Json.Null -> Planner.default_growth_budget
      | v -> Json.to_float v
    in
    let max_rounds =
      match Json.member "max_rounds" j with
      | Json.Null -> Planner.default_max_rounds
      | v -> Json.to_int v
    in
    if source = "" then Diag.fatal Diag.Cli "work request without source";
    if growth_budget <= 0.0 then
      Diag.fatal Diag.Cli "growth_budget must be positive";
    if max_rounds < 1 then Diag.fatal Diag.Cli "max_rounds must be at least 1";
    match mode_of_string mode_s with
    | Error m -> Diag.fatal Diag.Cli "%s" m
    | Ok mode -> (
        let hash =
          unit_hash ~op ~mode:(Pipeline.mode_name mode) ~growth_budget
            ~max_rounds ~source ~annot
        in
        Mutex.lock t.srv_m;
        let cached = Hashtbl.find_opt t.srv_units hash in
        Mutex.unlock t.srv_m;
        match cached with
        | Some body ->
            Mutex.lock t.srv_m;
            t.srv_prof.Prof.c.Prof.requests_served <-
              t.srv_prof.Prof.c.Prof.requests_served + 1;
            t.srv_prof.Prof.c.Prof.unit_cache_hits <-
              t.srv_prof.Prof.c.Prof.unit_cache_hits + 1;
            Mutex.unlock t.srv_m;
            ok_envelope ~id ~cached:true ~hash body
        | None ->
            let prof = Prof.create () in
            let body =
              Prof.with_profiling prof (fun () ->
                  reset_gensyms ();
                  compute_body ~max_errors:t.srv_max_errors ~op ~mode
                    ~growth_budget ~max_rounds ~source ~annot)
            in
            let body = Json.to_string body in
            Mutex.lock t.srv_m;
            Hashtbl.replace t.srv_units hash body;
            Prof.absorb t.srv_prof (Prof.snapshot prof);
            t.srv_prof.Prof.c.Prof.requests_served <-
              t.srv_prof.Prof.c.Prof.requests_served + 1;
            Mutex.unlock t.srv_m;
            ok_envelope ~id ~cached:false ~hash body)
  with
  | response -> response
  | exception Fault.Injected (site, n) ->
      error_response ~id
        [
          Diag.make Diag.Exec
            (Printf.sprintf "request hit injected fault at %s (arrival %d)"
               site n);
        ]
  | exception Diag.Error_limit n ->
      error_response ~id
        [ Diag.make Diag.Cli (Printf.sprintf "error limit (%d) reached" n) ]
  | exception e ->
      error_response ~id
        [ Diag.of_exn ~backtrace:(Printexc.get_backtrace ()) Diag.Exec e ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* A batch shards its work requests across the pool domains.  Chunk
   functions are idempotent pure writes into distinct slots, and
   [handle_work] already owns all failure modes, so a pool-level report
   only matters for the chunks a dying worker abandoned. *)
let handle_batch t ~id (reqs : Json.t list) : string =
  let reqs = Array.of_list reqs in
  let out = Array.make (Array.length reqs) "" in
  let events = ref [] in
  Runtime.Pool.parallel_for ~label:"server-batch"
    ~report:(fun evs -> events := evs)
    t.srv_pool ~chunks:(Array.length reqs)
    (fun i -> out.(i) <- handle_work t reqs.(i));
  List.iter
    (fun (ev : Runtime.Pool.event) ->
      match ev with
      | Runtime.Pool.Chunk_failed { chunk; error; backtrace } ->
          out.(chunk) <-
            error_response
              ~id:(Json.to_int (Json.member "id" reqs.(chunk)))
              [ Diag.of_exn ~backtrace Diag.Exec error ]
      | _ -> ())
    !events;
  Printf.sprintf "{\"id\":%d,\"ok\":true,\"responses\":[%s]}" id
    (String.concat "," (Array.to_list out))

(** Handle one protocol message (a parsed JSON line) and return the
    response line. *)
let handle_request t (j : Json.t) : string =
  let id = Json.to_int (Json.member "id" j) in
  let op =
    match Json.member "op" j with Json.Null -> "analyze" | v -> Json.to_str v
  in
  match op with
  | "ping" ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "ping");
             ("protocol", Json.Int protocol_version);
           ])
  | "stats" ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "stats");
             ("protocol", Json.Int protocol_version);
             ("jobs", Json.Int t.srv_jobs);
             ("units_cached", Json.Int (units_cached t));
             ("counters", counters_json (counters t));
           ])
  | "snapshot" -> (
      match save_snapshot t with
      | Ok path ->
          Json.to_string
            (Json.Obj
               [
                 ("id", Json.Int id);
                 ("ok", Json.Bool true);
                 ("op", Json.Str "snapshot");
                 ("path", Json.Str path);
               ])
      | Error d -> error_response ~id [ d ])
  | "shutdown" ->
      t.srv_stop <- true;
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("ok", Json.Bool true);
             ("op", Json.Str "shutdown");
           ])
  | "batch" -> handle_batch t ~id (Json.to_list (Json.member "requests" j))
  | "analyze" | "compile" | "plan" -> handle_work t j
  | op ->
      error_response ~id
        [ Diag.make Diag.Cli (Printf.sprintf "unknown op %S" op) ]

(** Handle one raw protocol line.  Unparseable JSON degrades to an
    error response (id 0 — the id was unreadable), per the
    never-crash-the-daemon contract. *)
let handle_line t (line : string) : string =
  match Json.parse line with
  | Error m ->
      error_response ~id:0
        [ Diag.make Diag.Cli (Printf.sprintf "bad request JSON: %s" m) ]
  | Ok j -> handle_request t j

(* ------------------------------------------------------------------ *)
(* Serve loops                                                         *)
(* ------------------------------------------------------------------ *)

(** Newline-delimited-JSON loop over a channel pair; returns on EOF or
    once a [shutdown] op has been answered.  The [server.accept] chaos
    point guards message receipt: a tripped arrival degrades to an
    error response for that line and the loop continues. *)
let serve_channels t (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    if t.srv_stop then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
          let response =
            match Fault.point "server.accept" with
            | () -> handle_line t line
            | exception Fault.Injected (site, n) ->
                error_response ~id:0
                  [
                    Diag.make Diag.Exec
                      (Printf.sprintf
                         "request dropped by injected fault at %s (arrival %d)"
                         site n);
                  ]
          in
          output_string oc response;
          output_char oc '\n';
          flush oc;
          loop ()
  in
  loop ()

(** Accept loop on a Unix-domain socket at [path] (an existing file
    there is replaced).  Connections are served sequentially; the loop
    returns once a [shutdown] op was answered or {!stop} was called.  A
    tripped [server.accept] fault, or any per-connection I/O error,
    drops that connection with a warning on stderr and keeps
    accepting. *)
let serve_socket t ~(path : string) : unit =
  (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let rec accept_loop () =
        if t.srv_stop then ()
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | fd, _ ->
              (match Fault.point "server.accept" with
              | () -> (
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  try serve_channels t ic oc; close_out_noerr oc
                  with e ->
                    close_out_noerr oc;
                    prerr_endline
                      (Diag.render
                         (Diag.make ~severity:Diag.Warning Diag.Exec
                            (Printf.sprintf "connection dropped: %s"
                               (Printexc.to_string e)))))
              | exception Fault.Injected (site, n) ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  prerr_endline
                    (Diag.render
                       (Diag.make ~severity:Diag.Warning Diag.Exec
                          (Printf.sprintf
                             "connection dropped by injected fault at %s \
                              (arrival %d)"
                             site n))));
              accept_loop ()
      in
      accept_loop ())
