(** On-disk warm-cache snapshots for the analysis daemon.

    A snapshot persists the two caches that make a daemon restart cheap:
    the dependence memo store ({!Dependence.Memo.snapshot} — the typed
    intern keys plus memoized pair answers) and the content-hashed unit
    cache (digest → stored response body).  Both are pure data, so the
    body is a [Marshal] stream framed by a human-readable header line:

    {v parinline-snapshot FORMAT SCHEMA OCAML_VERSION MD5HEX LENGTH v}

    Every field of the header gates the restore:

    - [FORMAT] is this module's framing version ({!format_version});
    - [SCHEMA] is the daemon's protocol schema version — the same number
      that versions response bodies, so a cache written by an
      incompatible daemon can never replay stale verdict shapes;
    - [OCAML_VERSION] pins the [Marshal] encoding (the stream is not
      stable across compiler versions);
    - [MD5HEX]/[LENGTH] are the integrity hash and byte length of the
      marshaled body — a truncated or bit-flipped file is rejected
      before [Marshal] ever sees it.

    Any mismatch degrades to a structured {!Core.Diag} warning and a
    clean cold start: restoring a warm cache is an optimization, never a
    correctness dependency.  Writes are atomic (temp file in the same
    directory, fsync, rename), the same crash contract as the bench
    driver's JSON artifacts. *)

let format_version = 1
let magic = "parinline-snapshot"
let snapshot_file = "warm.snapshot"

type payload = {
  pay_memo : Dependence.Memo.snapshot;
      (** the merged dependence memo store (hub + saving domain) *)
  pay_units : (string * string) list;
      (** unit cache: content-hash hex → stored response body, in
          cold→hot LRU recency order — restore replays it with in-order
          inserts, so the hot tail survives into a smaller cap *)
}

type load_result =
  | Restored of payload
  | Absent  (** no snapshot on disk: silent cold start *)
  | Rejected of Core.Diag.t
      (** corrupt or version-mismatched snapshot: warning + cold start *)

let path_in dir = Filename.concat dir snapshot_file

let reject fmt =
  Printf.ksprintf
    (fun m ->
      Rejected
        (Core.Diag.make ~severity:Core.Diag.Warning Core.Diag.Io
           ("snapshot rejected, cold-starting: " ^ m)))
    fmt

(* Atomic write: temp file in the target directory, fsync, rename. *)
let write_atomic path content =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> try close_out oc with _ -> ())
    (fun () ->
      output_string oc content;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

(** Write [payload] under [dir] (created if missing) for protocol
    [schema].  An I/O failure — or a tripped [server.snapshot] chaos
    fault — degrades to an [Error] diagnostic; the daemon reports it and
    keeps running (a lost snapshot only costs the next cold start). *)
let save ~dir ~schema (payload : payload) : (string, Core.Diag.t) result =
  match
    Core.Fault.point "server.snapshot";
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let body = Marshal.to_string payload [] in
    let header =
      Printf.sprintf "%s %d %d %s %s %d\n" magic format_version schema
        Sys.ocaml_version
        (Digest.to_hex (Digest.string body))
        (String.length body)
    in
    let path = path_in dir in
    write_atomic path (header ^ body);
    path
  with
  | path -> Ok path
  | exception e ->
      Error
        (Core.Diag.make ~severity:Core.Diag.Warning Core.Diag.Io
           (Printf.sprintf "snapshot write to %s failed: %s" dir
              (Printexc.to_string e)))

(** Load the snapshot under [dir], validating the full header before
    unmarshaling.  Never raises: every failure mode (including a tripped
    [server.snapshot] chaos fault) collapses into {!Rejected} with a
    structured warning, and a missing file is a silent {!Absent}. *)
let load ~dir ~schema : load_result =
  let path = path_in dir in
  if not (Sys.file_exists path) then Absent
  else
    match
      Core.Fault.point "server.snapshot";
      In_channel.with_open_bin path In_channel.input_all
    with
    | exception e -> reject "cannot read %s: %s" path (Printexc.to_string e)
    | contents -> (
        match String.index_opt contents '\n' with
        | None -> reject "%s: missing snapshot header" path
        | Some nl -> (
            let header = String.sub contents 0 nl in
            let body =
              String.sub contents (nl + 1) (String.length contents - nl - 1)
            in
            match String.split_on_char ' ' header with
            | [ m; fmt; sch; ocaml; digest; len ] -> (
                if not (String.equal m magic) then
                  reject "%s: bad magic %S" path m
                else
                  match
                    (int_of_string_opt fmt, int_of_string_opt sch,
                     int_of_string_opt len)
                  with
                  | Some fmt, Some sch, Some len ->
                      if fmt <> format_version then
                        reject "%s: format version %d, expected %d" path fmt
                          format_version
                      else if sch <> schema then
                        reject "%s: protocol schema %d, expected %d" path sch
                          schema
                      else if not (String.equal ocaml Sys.ocaml_version) then
                        reject "%s: written by OCaml %s, running %s" path
                          ocaml Sys.ocaml_version
                      else if len <> String.length body then
                        reject "%s: truncated body (%d of %d bytes)" path
                          (String.length body) len
                      else if
                        not
                          (String.equal digest
                             (Digest.to_hex (Digest.string body)))
                      then reject "%s: integrity hash mismatch" path
                      else begin
                        match (Marshal.from_string body 0 : payload) with
                        | payload -> Restored payload
                        | exception e ->
                            reject "%s: unmarshal failed: %s" path
                              (Printexc.to_string e)
                      end
                  | _ -> reject "%s: malformed header %S" path header)
            | _ -> reject "%s: malformed header %S" path header))
