(** BDNA -- molecular dynamics package for the simulation of nucleic
    acids in water (biomolecular dynamics).

    Mechanisms: the solvent coordinates live in one banked array [XT0]
    addressed through the pointer table [IPTR]; ACTFOR/HYDFOR/IONFOR are
    predictor-style routines called on [XT0(IPTR(k))] slices whose loops
    die under conventional inlining (subscripted subscripts, II-A.1).
    NBLIST passes the pair-list planes of [RLIST]/[FLIST] to the leaf
    CUTOFF, linearizing both (II-A.2).  The annotated solute routines
    (BASPAIR, BACKBN, SOLVF) carry helper calls, an error check and the
    COMMON scratch vectors [RW]/[EW], so only annotation-based inlining
    parallelizes the residue loops around them. *)

let name = "BDNA"
let description = "Molecular dynamics package for the simulation of nucleic acids"

let source =
  {fort|
      PROGRAM BDNA
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /BANK/ XT0(8192), IPTR(12)
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /PAIRS/ RLIST(320,6), FLIST(320,6)
      COMMON /SCRATCH/ RW(256), EW(256)
      COMMON /OUTE/ EBOND, EANGL
      CALL SETUP
      DO 800 ISTEP = 1, NSTEP
        CALL ACTFOR(XT0(IPTR(1)), XT0(IPTR(2)), 0.25)
        CALL HYDFOR(XT0(IPTR(3)), XT0(IPTR(4)))
        CALL IONFOR(XT0(IPTR(5)), XT0(IPTR(6)), 0.5)
        DO 100 IR = 1, NRES
          CALL BASPAIR(IR)
 100    CONTINUE
        DO 110 IR = 1, NRES
          CALL BACKBN(IR)
 110    CONTINUE
        DO 115 IR = 1, NRES
          CALL IONPR(IR)
 115    CONTINUE
        DO 120 IW = 1, NWAT
          CALL SOLVF(IW)
 120    CONTINUE
        DO 130 IW = 1, NWAT
          CALL WUPD(IW)
 130    CONTINUE
        CALL NBLIST
 800  CONTINUE
      CHK = EBOND + EANGL
      DO I = 1, 1024
        CHK = CHK + XT0(I) * 0.001 + FW1(I) * 0.01
      ENDDO
      WRITE(6,*) CHK
      END

      SUBROUTINE SETUP
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /BANK/ XT0(8192), IPTR(12)
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /PAIRS/ RLIST(320,6), FLIST(320,6)
      COMMON /OUTE/ EBOND, EANGL
      NRES = 96
      NWAT = 112
      NSTEP = 3
      NORD = 5
      EBOND = 0.0
      EANGL = 0.0
      DO I = 1, 12
        IPTR(I) = MOD(I-1, 8) * 1024 + 1
      ENDDO
      DO I = 1, 8192
        XT0(I) = MOD(I, 101) * 0.015625
      ENDDO
      DO I = 1, 1024
        FW1(I) = MOD(I, 7) * 0.25
        FW2(I) = MOD(I, 11) * 0.125
        QW(I) = MOD(I, 5) * 0.5 - 1.0
      ENDDO
      DO J = 1, 6
        DO I = 1, 320
          RLIST(I,J) = MOD(I + J, 13) * 0.25
          FLIST(I,J) = 0.0
        ENDDO
      ENDDO
      END

      SUBROUTINE ACTFOR(X1, X2, TS)
      DIMENSION X1(*), X2(*)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      I = 0
      DO 200 N = 1, NRES
        DO 200 J = 1, NORD
          I = I + 1
          X1(I) = X1(I) + FW1(I) * TS * TS / 2.0
          X2(I) = X2(I) + FW2(I) * TS
 200  CONTINUE
      END

      SUBROUTINE HYDFOR(X1, X2)
      DIMENSION X1(*), X2(*)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      I = 0
      DO 210 N = 1, NRES
        DO 210 J = 1, NORD
          I = I + 1
          X1(I) = X1(I) * 0.998 + QW(I) * 0.002
          X2(I) = X2(I) * 0.996 + QW(I) * 0.004
 210  CONTINUE
      END

      SUBROUTINE IONFOR(X1, X2, SC)
      DIMENSION X1(*), X2(*)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      I = 0
      DO 220 N = 1, NRES
        DO 220 J = 1, NORD
          I = I + 1
          X1(I) = X1(I) + QW(I) * SC * 0.01
          X2(I) = X2(I) - QW(I) * SC * 0.005
 220  CONTINUE
      END

      SUBROUTINE PAIRGEO(IR)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /BANK/ XT0(8192), IPTR(12)
      COMMON /SCRATCH/ RW(256), EW(256)
      DO K = 1, NRES
        RW(K) = XT0(IR + K) - XT0(2*IR + K) * 0.5
      ENDDO
      DO K = 1, NRES
        EW(K) = RW(K) * RW(K) * 0.25 + 0.0625
      ENDDO
      END

      SUBROUTINE BASPAIR(IR)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /BANK/ XT0(8192), IPTR(12)
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /SCRATCH/ RW(256), EW(256)
      COMMON /OUTE/ EBOND, EANGL
      CALL PAIRGEO(IR)
      BSUM = 0.0
      DO K = 1, NRES
        BSUM = BSUM + EW(K) / (1.0 + RW(K) * RW(K))
      ENDDO
      IF (BSUM .LT. 0.0) THEN
        WRITE(6,*) ' BASPAIR: NEGATIVE PAIR ENERGY AT RESIDUE ', IR
        STOP 'BASPAIR NEGATIVE'
      ENDIF
      FW1(IR) = FW1(IR) * 0.9 + BSUM * 0.01
      EBOND = EBOND + BSUM * 0.0001
      END

      SUBROUTINE BACKBN(IR)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /SCRATCH/ RW(256), EW(256)
      COMMON /OUTE/ EBOND, EANGL
      CALL PAIRGEO(IR)
      ASUM = 0.0
      DO K = 1, NRES
        ASUM = ASUM + RW(K) * 0.125 - EW(K) * 0.0625
      ENDDO
      FW2(IR) = FW2(IR) * 0.95 + ASUM * 0.005
      EANGL = EANGL + ASUM * 0.0001
      END

      SUBROUTINE SOLVF(IW)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /SCRATCH/ RW(256), EW(256)
      CALL PAIRGEO(IW)
      WSUM = 0.0
      DO K = 1, NRES
        WSUM = WSUM + EW(K) * RW(K)
      ENDDO
      QW(IW) = QW(IW) * 0.999 + WSUM * 0.0001
      END

      SUBROUTINE IONPR(IR)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /BANK/ XT0(8192), IPTR(12)
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      COMMON /SCRATCH/ RW(256), EW(256)
      COMMON /OUTE/ EBOND, EANGL
      CALL PAIRGEO(IR)
      PSUM = 0.0
      DO K = 1, NRES
        PSUM = PSUM + RW(K) * QW(K) * 0.0625
      ENDDO
      IF (PSUM .GT. 1.0E25) THEN
        WRITE(6,*) ' IONPR: ION ENERGY OVERFLOW AT ', IR
        STOP 'IONPR OVERFLOW'
      ENDIF
      FW1(IR) = FW1(IR) + PSUM * 0.001
      END

      SUBROUTINE WUPD(IW)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      FW1(IW) = FW1(IW) * 0.99 + FW2(IW) * 0.01
      FW2(IW) = FW2(IW) * 0.98 + QW(IW) * 0.002
      END

      SUBROUTINE CUTOFF(A, B)
      DIMENSION A(*), B(*)
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      DO I = 1, NWAT
        B(I) = B(I) * 0.5 + A(I) * 0.25
      ENDDO
      END

      SUBROUTINE NBLIST
      COMMON /SIZES/ NRES, NWAT, NSTEP, NORD
      COMMON /PAIRS/ RLIST(320,6), FLIST(320,6)
      COMMON /SOLV/ FW1(1024), FW2(1024), QW(1024)
      DO 300 J = 1, 6
        DO 300 I = 1, NWAT
          RLIST(I,J) = QW(I) * 0.5 + J * 0.125
 300  CONTINUE
      DO 310 J = 1, 6
        DO 310 I = 1, NWAT
          FLIST(I,J) = FLIST(I,J) * 0.75 + RLIST(I,J) * 0.125
 310  CONTINUE
      DO 320 J = 1, 6
        DO 320 I = 1, NWAT
          RLIST(I,J) = RLIST(I,J) + FLIST(I,J) * 0.0625
 320  CONTINUE
      DO 330 J = 1, 6
        DO 330 I = 1, NWAT
          FLIST(I,J) = FLIST(I,J) * 0.9 + QW(I) * 0.01
 330  CONTINUE
      DO 335 J = 1, 6
        DO 335 I = 1, NWAT
          RLIST(I,J) = RLIST(I,J) * 0.875 + FLIST(I,J) * 0.0625
 335  CONTINUE
      DO 338 J = 1, 6
        DO 338 I = 1, NWAT
          FLIST(I,J) = FLIST(I,J) + RLIST(I,J) * 0.03125
 338  CONTINUE
      DO 340 K = 1, 6
        CALL CUTOFF(RLIST(1,K), FLIST(1,K))
 340  CONTINUE
      DO 350 I = 1, NWAT
        QW(I) = QW(I) + FLIST(I,1) * 0.001
 350  CONTINUE
      END
|fort}

let annotations =
  {annot|
subroutine BASPAIR(IR) {
  RW = unknown(XT0[IR], IR, NRES);
  EW = unknown(RW, NRES);
  FW1[IR] = unknown(FW1[IR], EW, RW);
  EBOND = EBOND + unknown(EW);
}

subroutine BACKBN(IR) {
  RW = unknown(XT0[IR], IR, NRES);
  EW = unknown(RW, NRES);
  FW2[IR] = unknown(FW2[IR], EW, RW);
  EANGL = EANGL + unknown(EW);
}

subroutine IONPR(IR) {
  RW = unknown(XT0[IR], IR, NRES);
  EW = unknown(RW, NRES);
  FW1[IR] = unknown(FW1[IR], RW, QW[IR]);
}

subroutine WUPD(IW) {
  FW1[IW] = unknown(FW1[IW], FW2[IW]);
  FW2[IW] = unknown(FW2[IW], QW[IW]);
}

subroutine SOLVF(IW) {
  RW = unknown(XT0[IW], IW, NRES);
  EW = unknown(RW, NRES);
  QW[IW] = unknown(QW[IW], EW);
}
|annot}

let bench : Bench_def.t = { name; description; source; annotations }
