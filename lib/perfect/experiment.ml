(** Experiment driver: reproduces the paper's evaluation artifacts for one
    benchmark -- the Table II row (three configurations compared on loop
    counts and code size) and the Figure 20 measurements (speedups of the
    optimized programs over the sequential original, after the paper's
    "empirical performance tuning" step that disables counterproductive
    parallel loops). *)

open Core

type mode_cells = {
  m_par : int;  (** #par-loops *)
  m_loss : int;
  m_extra : int;
  m_size : int;  (** non-comment lines after optimization *)
  m_diags : Diag.t list;
      (** per-benchmark salvage record from the fault-isolated pipeline;
          empty on a healthy run *)
}

type table2_row = {
  t2_name : string;
  t2_no_inline : mode_cells;
  t2_conventional : mode_cells;
  t2_annotation : mode_cells;
}

(* Benchmarks run through the fault-isolated pipeline: a sick unit or a
   failing annotation degrades locally, and whatever was salvaged is
   reported per benchmark through [m_diags]. *)
let run_modes ?par_config (b : Bench_def.t) =
  let program = Bench_def.parse b in
  let annots = Bench_def.annots b in
  let run mode = Pipeline.run_robust ?par_config ~annots ~mode program in
  let base = run Pipeline.No_inlining in
  let conv = run Pipeline.Conventional in
  let annot = run Pipeline.Annotation_based in
  (base, conv, annot)

let table2_row ?par_config (b : Bench_def.t) : table2_row =
  let base, conv, annot = run_modes ?par_config b in
  let cells (r : Pipeline.result) =
    let par, loss, extra = Pipeline.table2_counts ~baseline:base r in
    {
      m_par = par;
      m_loss = loss;
      m_extra = extra;
      m_size = r.res_code_size;
      m_diags = r.res_diags;
    }
  in
  {
    t2_name = b.name;
    t2_no_inline = cells base;
    t2_conventional = cells conv;
    t2_annotation = cells annot;
  }

(* ------------------------------------------------------------------ *)
(* Figure 20: runtime speedups                                          *)
(* ------------------------------------------------------------------ *)

type fig20_row = {
  f_name : string;
  f_seq : float;  (** original program, sequential *)
  f_no_inline : float;  (** speedup vs sequential *)
  f_conventional : float;
  f_annotation : float;
}

(* Numeric output comparison with a small relative tolerance; the single
   definition lives with the validation oracle (parallel reductions
   legally reassociate floating-point sums, so the last printed digit may
   differ from the sequential run). *)
let outputs_equal = Checker.Oracle.outputs_equal

let time_run ?(repeat = 1) ~threads program =
  (* best-of-N wall clock; also checks output stability *)
  let best = ref infinity in
  let out = ref "" in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let o = Runtime.Interp.run_program ~threads program in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    out := o
  done;
  (!best, !out)

(** The paper's empirical tuning step plus the Figure 20 measurement.

    The authors ran on 4- and 8-core machines; this container may have a
    single core, where wall-clock "speedups" of a multi-domain run are
    meaningless.  We therefore support two measurement modes:

    - [`Measured]: run the optimized program across domains after a
      profile-guided tuning pass that disables directive loops whose
      parallel execution is slower than their sequential execution (the
      paper's "empirical performance tuning");
    - [`Projected]: measure each directive loop's *sequential* time and
      execution count, then project the parallel time with an Amdahl
      model  t/P + n*fork_cost  per loop, choosing for every marked-loop
      nest the level (outer vs inner) that maximizes the benefit -- the
      same choice the tuner makes.  The projection is documented in
      DESIGN.md as the substitution for the paper's multicore testbeds.

    [`Auto] picks [`Measured] when the machine actually has at least
    [threads] cores. *)

type measure_mode = [ `Measured | `Projected | `Auto ]

let fork_cost = 10e-6 (* pool dispatch cost per parallel loop execution *)

(* Which directive loops actually fork at run time?  Loops nested in a
   parallel region (statically or through calls) never fork; a profile of
   a multi-domain run records exactly the forking loops, with their
   top-level execution counts. *)
let forking_loops ~threads program =
  let tbl : (int, Runtime.Interp.prof_cell) Hashtbl.t = Hashtbl.create 32 in
  ignore (Runtime.Interp.run_program ~threads ~profile:tbl program);
  tbl

let unmark ids program =
  let module P = Frontend.Ast in
  {
    P.p_units =
      List.map
        (fun u ->
          {
            u with
            P.u_body =
              P.map_stmts
                (fun s ->
                  match s.P.node with
                  | P.Do_loop l when List.mem l.loop_id ids ->
                      [ { s with P.node = P.Do_loop { l with parallel = None } } ]
                  | _ -> [ s ])
                u.P.u_body;
          })
        program.P.p_units;
  }

(* Per-loop sequential times, execution counts and the total wall time,
   all from one run (the best of [repeat] runs), so the loop times and
   the total are mutually consistent even on a noisy machine. *)
let seq_profile ~repeat program =
  let best = ref infinity in
  let best_tbl = ref (Hashtbl.create 0) in
  for _ = 1 to max 1 repeat do
    let tbl : (int, Runtime.Interp.prof_cell) Hashtbl.t = Hashtbl.create 32 in
    let t0 = Unix.gettimeofday () in
    ignore (Runtime.Interp.run_program ~threads:1 ~profile:tbl program);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then begin
      best := dt;
      best_tbl := tbl
    end
  done;
  (!best_tbl, !best)

(* Amdahl gain of parallelizing one forking loop at [threads] ways:
   saved = t_forked*(1 - 1/P) - n*fork_cost, where t_forked scales the
   measured per-execution sequential time by the number of executions
   that actually fork (a loop may also run, without forking, inside other
   parallel regions -- e.g. in a peeled last iteration). *)
let loop_gain ~threads ~(tseq : (int, Runtime.Interp.prof_cell) Hashtbl.t) id n
    =
  match Hashtbl.find_opt tseq id with
  | None -> 0.0
  | Some c when c.Runtime.Interp.pn = 0 -> 0.0
  | Some c ->
      let p = float_of_int threads in
      let per_exec =
        c.Runtime.Interp.pt /. float_of_int c.Runtime.Interp.pn
      in
      let n = min n c.Runtime.Interp.pn in
      (per_exec *. float_of_int n *. (1.0 -. (1.0 /. p)))
      -. (float_of_int n *. fork_cost)

(* Iteratively disable forking loops with non-positive gain; disabling an
   outer loop lets inner directive loops fork on the next round, so the
   loop/nest level selection is implicit.  Returns the tuned program and
   its total projected gain. *)
let rec tune_rounds ~threads ~repeat program round =
  let forking = forking_loops ~threads program in
  let tseq, t_total = seq_profile ~repeat program in
  let gains =
    Hashtbl.fold
      (fun id (c : Runtime.Interp.prof_cell) acc ->
        (id, loop_gain ~threads ~tseq id c.Runtime.Interp.pn) :: acc)
      forking []
  in
  let bad =
    List.filter_map (fun (id, g) -> if g <= 0.0 then Some id else None) gains
  in
  if bad = [] || round >= 3 then
    ( program,
      List.fold_left (fun acc (_, g) -> acc +. Float.max 0.0 g) 0.0 gains,
      t_total )
  else tune_rounds ~threads ~repeat (unmark bad program) (round + 1)

(** The empirical tuning step: disable directive loops whose
    parallelization does not pay. *)
let tune ?(repeat = 1) ~threads program =
  let p, _, _ = tune_rounds ~threads ~repeat program 0 in
  p

(** Projected wall-clock of the tuned program at [threads] ways.  The
    per-loop gains and the total they are subtracted from come from the
    same profiled run; the result is floored at total/threads (Amdahl). *)
let projected_time ?(repeat = 1) ~threads program =
  let _, gain, t_total = tune_rounds ~threads ~repeat program 0 in
  Float.max (t_total /. float_of_int threads) (t_total -. gain)

let have_cores threads = Domain.recommended_domain_count () >= threads

let fig20_row ?par_config ?(threads = 4) ?(repeat = 2)
    ?(measure : measure_mode = `Auto) (b : Bench_def.t) : fig20_row =
  let base, conv, annot = run_modes ?par_config b in
  let original = Bench_def.parse b in
  let t_seq, out_seq = time_run ~repeat ~threads:1 original in
  let measured =
    match measure with
    | `Measured -> true
    | `Projected -> false
    | `Auto -> have_cores threads
  in
  let speedup (r : Pipeline.result) =
    if measured then begin
      let tuned = tune ~repeat ~threads r.res_program in
      let t, out = time_run ~repeat ~threads tuned in
      if not (outputs_equal out out_seq) then
        Diag.fatal Diag.Verify "%s: output mismatch under %s" b.name
          (Pipeline.mode_name r.res_mode);
      t_seq /. t
    end
    else begin
      (* correctness still validated with real domains, timing projected *)
      let out = Runtime.Interp.run_program ~threads r.res_program in
      if not (outputs_equal out out_seq) then
        Diag.fatal Diag.Verify "%s: output mismatch under %s" b.name
          (Pipeline.mode_name r.res_mode);
      (* run-to-run noise can make the baseline slower than the optimized
         sequential run; the model never yields super-linear speedup *)
      Float.min
        (float_of_int threads)
        (t_seq /. projected_time ~repeat ~threads r.res_program)
    end
  in
  {
    f_name = b.name;
    f_seq = t_seq;
    f_no_inline = speedup base;
    f_conventional = speedup conv;
    f_annotation = speedup annot;
  }

(** Sanity harness used by tests: all three optimized programs and the
    original produce identical output, sequentially and in parallel. *)
let outputs_agree ?par_config ?(threads = 4) (b : Bench_def.t) : bool =
  let base, conv, annot = run_modes ?par_config b in
  let original = Bench_def.parse b in
  let reference = Runtime.Interp.run_program ~threads:1 original in
  List.for_all
    (fun (r : Pipeline.result) ->
      let seq = Runtime.Interp.run_program ~threads:1 r.res_program in
      let par = Runtime.Interp.run_program ~threads r.res_program in
      outputs_equal seq reference && outputs_equal par reference)
    [ base; conv; annot ]
