(** Profiled parallel suite driver.

    Shards the 12-benchmark × 4-configuration experiment matrix across
    the {!Runtime.Pool} domain pool — the same pool (and the same
    fault-isolation semantics, PR 1) the interpreter uses for parallel
    loops.  One task = one (benchmark, configuration) compilation; a task
    that crashes beyond what the robust pipeline can salvage degrades to
    a crashed {!point} carrying its diagnostics, and the other 35 tasks
    are unaffected.

    Determinism: every task starts by resetting the calling domain's
    gensym counters ({!reset_gensyms}), so statement/loop/tag ids and
    generated names are a pure function of the benchmark source — a
    parallel ([~jobs]) run produces results identical to the sequential
    one regardless of how tasks land on domains.  All the id counters
    this relies on are domain-local (see [Frontend.Ast]).

    Each task carries its own {!Core.Prof} profile (installed
    domain-locally), so per-pass timings and analysis counters of
    concurrent compilations never mix.  {!to_json} serializes the
    resulting points in the stable schema CI archives on every run. *)

open Core
module Verdict = Parallelizer.Verdict
module Json = Frontend.Json

(** One (benchmark, configuration) measurement. *)
type point = {
  pt_bench : string;
  pt_config : Pipeline.mode;
  pt_par : int;  (** #par-loops (original-program loops only) *)
  pt_loss : int;  (** baseline loops lost by this configuration *)
  pt_extra : int;  (** loops gained over the baseline *)
  pt_size : int;  (** non-comment lines of the optimized output *)
  pt_wall_ms : float;  (** whole-task wall clock, monotonic *)
  pt_exec_ms : float option;
      (** serial execution wall clock of the optimized program, measured
          when the suite ran with [~time_exec:true]; [None] otherwise or
          when execution failed *)
  pt_pass_ms : (string * float) list;  (** per-pass milliseconds *)
  pt_counters : Prof.counters;
  pt_diags : Diag.t list;  (** salvage record; [[]] on a healthy run *)
  pt_crashed : bool;
      (** the task died beyond salvage (e.g. unparseable source); the
          numeric fields are zero and [pt_diags] holds the cause *)
  pt_retries : int;
      (** pool-level chunk re-executions this task needed (transient
          failures, e.g. injected chaos faults); 0 on a clean run *)
  pt_deadline_misses : int;
      (** 1 when the pool watchdog abandoned this task past its
          deadline (the point is then also crashed); 0 otherwise *)
  pt_validation : Checker.Oracle.verdict option;
      (** oracle verdict when the suite ran with [~validate:true] *)
  pt_verdicts : (int * Verdict.t) list;
      (** representative verdict per analyzed loop id, restricted to
          units reachable from MAIN; a marked copy wins over a serial
          copy (a loop parallel *anywhere live* counts as parallel,
          matching the Table II accounting).  [[]] on a crashed point *)
  pt_original : int list;  (** loop ids of the benchmark's input program *)
  pt_plan : Planner.plan option;
      (** the demand configuration's plan trace; [None] elsewhere *)
}

let configs =
  [
    Pipeline.No_inlining;
    Pipeline.Conventional;
    Pipeline.Annotation_based;
    Pipeline.Demand;
  ]

(** Reset every domain-local gensym the compilation pipeline draws from.
    Called once per task; makes ids deterministic per benchmark source
    independent of task order and domain placement. *)
let reset_gensyms () =
  Frontend.Ast.reset_ids ();
  Analysis.Sections.reset_gensym ();
  Inliner.Inline.reset_gensym ();
  Annot_inline.reset_gensym ()

(* Intermediate per-task record, before baseline-relative accounting. *)
type task_result = {
  tr_result : Pipeline.result option;  (** [None] = crashed beyond salvage *)
  tr_wall_ms : float;
  tr_exec_ms : float option;
  tr_prof : Prof.t;
  tr_diags : Diag.t list;
  tr_plan : Planner.plan option;  (** [Demand] tasks only *)
}

let run_task ?par_config ?growth_budget ?validate ?validate_threads ?span
    ?(time_exec = false) (b : Bench_def.t) (mode : Pipeline.mode) :
    task_result =
  let prof = Prof.create () in
  let dg = Diag.collector () in
  let t0 = Prof.monotonic_ns () in
  let result, crash =
    match
      Prof.with_profiling prof @@ fun () ->
      Span.with_opt span @@ fun () ->
      Span.span ~cat:"driver" ~unit_:b.name
        ("task:" ^ Pipeline.mode_name mode)
      @@ fun () ->
      reset_gensyms ();
      let program = Prof.time "parse" (fun () -> Bench_def.parse b) in
      let annots = Prof.time "parse" (fun () -> Bench_def.annots b) in
      match mode with
      | Pipeline.Demand ->
          let r, pl =
            Planner.run ?growth_budget ?par_config ?validate ?validate_threads
              ~annots ~dg program
          in
          (r, Some pl)
      | _ ->
          ( Pipeline.run_robust ?par_config ?validate ?validate_threads ~annots
              ~dg ~mode program,
            None )
    with
    | r, pl -> (Some (r, pl), [])
    | exception e ->
        (* the whole-task fault barrier: anything the robust pipeline
           could not absorb (unparseable source, error-limit overflow)
           becomes a diagnostic on this point *)
        let backtrace =
          Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
        in
        let d = Diag.of_exn ~backtrace Diag.Exec e in
        let d =
          {
            d with
            Diag.d_message =
              Printf.sprintf "benchmark %s (%s) crashed: %s" b.name
                (Pipeline.mode_name mode) d.Diag.d_message;
          }
        in
        (None, [ d ])
  in
  let wall_ms =
    Int64.to_float (Int64.sub (Prof.monotonic_ns ()) t0) /. 1e6
  in
  (* Serial execution timing of the optimized program (schema v4): a
     single-threaded interpreter run, so the number measures the
     compiled-statement hot path without pool scheduling noise.  An
     execution failure degrades to [None] — timing is reporting, never a
     fault source. *)
  let exec_ms =
    if not time_exec then None
    else
      match result with
      | None -> None
      | Some (r, _) -> (
          let e0 = Prof.monotonic_ns () in
          match Runtime.Interp.run_program ~threads:1 r.Pipeline.res_program with
          | (_ : string) ->
              Some
                (Int64.to_float (Int64.sub (Prof.monotonic_ns ()) e0) /. 1e6)
          | exception _ -> None)
  in
  let diags =
    match result with
    | Some (r, _) -> r.Pipeline.res_diags
    | None -> Diag.to_list dg @ crash
  in
  (* qualify the owning unit with the benchmark, so a suite-wide salvage
     log renders e.g. [warning[parallel] MDG:INTERF line 42: ...] *)
  let diags =
    List.map
      (fun (d : Diag.t) ->
        match d.Diag.d_unit with
        | Some u -> Diag.with_unit (b.name ^ ":" ^ u) d
        | None -> Diag.with_unit b.name d)
      diags
  in
  {
    tr_result = Option.map fst result;
    tr_wall_ms = wall_ms;
    tr_exec_ms = exec_ms;
    tr_prof = prof;
    tr_diags = diags;
    tr_plan = Option.bind result snd;
  }

(** Run the suite matrix.  [jobs] is the domain count ([<= 1] runs
    everything on the caller — the same code path, minus the workers).
    Points come back in deterministic order: benchmark-major, then
    no-inlining / conventional / annotation-based / demand.  With
    [~validate:true] every optimized program additionally runs under the
    validation oracle and the per-point verdict lands in
    [pt_validation].  [growth_budget] caps the demand planner's code
    growth (default {!Planner.default_growth_budget}). *)
let run_suite ?(jobs = 1) ?par_config ?growth_budget ?validate
    ?validate_threads ?span ?time_exec ?deadline_s ?(retries = 0)
    ?(benches = Suite.all) () : point list =
  let tasks =
    Array.of_list
      (List.concat_map (fun b -> List.map (fun m -> (b, m)) configs) benches)
  in
  let n = Array.length tasks in
  let out : task_result option array = Array.make n None in
  let retries_arr = Array.make n 0 in
  let dmiss_arr = Array.make n 0 in
  (* A failed or abandoned chunk degrades to a crashed point carrying
     the cause; the remaining 47 tasks are untouched.  Tasks are
     idempotent ([out.(i) <- ...]), so pool-level retries are safe. *)
  let degrade chunk (d : Diag.t) =
    out.(chunk) <-
      Some
        {
          tr_result = None;
          tr_wall_ms = 0.0;
          tr_exec_ms = None;
          tr_prof = Prof.create ();
          tr_diags = [ d ];
          tr_plan = None;
        }
  in
  let absorb (ev : Runtime.Pool.event) =
    match ev with
    | Runtime.Pool.Chunk_retried { chunk; _ } ->
        retries_arr.(chunk) <- retries_arr.(chunk) + 1
    | Runtime.Pool.Chunk_failed { chunk; error; backtrace } ->
        let b, m = tasks.(chunk) in
        let d = Diag.of_exn ~backtrace Diag.Exec error in
        degrade chunk
          (Diag.with_unit b.Bench_def.name
             {
               d with
               Diag.d_message =
                 Printf.sprintf "benchmark %s (%s) crashed in pool: %s"
                   b.Bench_def.name (Pipeline.mode_name m) d.Diag.d_message;
             })
    | Runtime.Pool.Deadline_missed { chunk; waited_s } ->
        let b, m = tasks.(chunk) in
        dmiss_arr.(chunk) <- dmiss_arr.(chunk) + 1;
        degrade chunk
          (Diag.make ~unit_:b.Bench_def.name Diag.Timeout
             (Printf.sprintf
                "benchmark %s (%s) abandoned by the pool watchdog after %.0f \
                 ms"
                b.Bench_def.name (Pipeline.mode_name m) (waited_s *. 1000.0)))
    | Runtime.Pool.Worker_died _ ->
        (* the pool respawns the domain before the next job; the failed
           chunks it owned (if any) arrive as their own events *)
        ()
  in
  let pool = Runtime.Pool.create jobs in
  let events = ref [] in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      Runtime.Pool.parallel_for ~label:"suite-driver" ?deadline_s ~retries
        ~report:(fun evs -> events := evs)
        pool ~chunks:n (fun i ->
          let b, m = tasks.(i) in
          out.(i) <-
            Some
              (run_task ?par_config ?growth_budget ?validate ?validate_threads
                 ?span ?time_exec b m)));
  (* Absorb events only after shutdown joined every worker: a worker
     stalled past the deadline may still have been writing its (now
     abandoned) slot, and the degraded point must win deterministically. *)
  List.iter absorb !events;
  (* Baseline-relative accounting: group the per-bench tasks and count
     against the no-inlining result.  A crashed baseline degrades
     loss/extra to 0 (each result is counted against itself). *)
  List.concat
    (List.mapi
       (fun bi (b : Bench_def.t) ->
         let tr m =
           match out.((bi * List.length configs) + m) with
           | Some r -> r
           | None ->
               (* unreachable: parallel_for ran every chunk *)
               { tr_result = None; tr_wall_ms = 0.0; tr_exec_ms = None;
                 tr_prof = Prof.create (); tr_diags = []; tr_plan = None }
         in
         let base = (tr 0).tr_result in
         List.mapi
           (fun m mode ->
             let t = tr m in
             let chunk = (bi * List.length configs) + m in
             let par, loss, extra, size =
               match t.tr_result with
               | None -> (0, 0, 0, 0)
               | Some r ->
                   let baseline = match base with Some b -> b | None -> r in
                   let par, loss, extra =
                     Pipeline.table2_counts ~baseline r
                   in
                   (par, loss, extra, r.Pipeline.res_code_size)
             in
             {
               pt_bench = b.name;
               pt_config = mode;
               pt_par = par;
               pt_loss = loss;
               pt_extra = extra;
               pt_size = size;
               pt_wall_ms = t.tr_wall_ms;
               pt_exec_ms = t.tr_exec_ms;
               pt_pass_ms = Prof.pass_ms t.tr_prof;
               pt_counters = Prof.snapshot t.tr_prof;
               pt_diags = t.tr_diags;
               pt_crashed = t.tr_result = None;
               pt_retries = retries_arr.(chunk);
               pt_deadline_misses = dmiss_arr.(chunk);
               pt_validation =
                 Option.bind t.tr_result (fun r ->
                     r.Pipeline.res_validation);
               pt_verdicts =
                 (match t.tr_result with
                 | None -> []
                 | Some r -> Pipeline.verdict_map r);
               pt_original =
                 (match t.tr_result with
                 | None -> []
                 | Some r -> r.Pipeline.res_original_loops);
               pt_plan = t.tr_plan;
             })
           configs)
       benches)

(** Join the suite's points into the explain-diff attribution: per
    benchmark, each inlined configuration's original-program loops
    classified kept / lost / gained / serial against the no-inlining
    baseline, with the blocker deltas (see {!Explain}). *)
let explain (points : point list) : Explain.t =
  let benches =
    List.fold_left
      (fun acc p -> if List.mem p.pt_bench acc then acc else p.pt_bench :: acc)
      [] points
  in
  let rows =
    List.concat_map
      (fun bench ->
        let mine = List.filter (fun p -> String.equal p.pt_bench bench) points in
        let find m = List.find_opt (fun p -> p.pt_config = m) mine in
        match find Pipeline.No_inlining with
        | None -> []
        | Some base ->
            let others =
              List.filter_map
                (fun m -> Option.map (fun p -> (m, p.pt_verdicts)) (find m))
                [
                  Pipeline.Conventional;
                  Pipeline.Annotation_based;
                  Pipeline.Demand;
                ]
            in
            (* demand's gained loops attribute to the planning round and
               inlined callee that unlocked them (from the plan trace) *)
            let attrs =
              match find Pipeline.Demand with
              | Some { pt_plan = Some pl; _ } ->
                  [
                    ( Pipeline.Demand,
                      List.map
                        (fun (a : Planner.attribution) ->
                          (a.at_loop, (a.at_round, a.at_callee)))
                        pl.Planner.pl_resolved );
                  ]
              | _ -> []
            in
            Explain.diff_bench ~bench ~attrs ~original:base.pt_original
              ~baseline:base.pt_verdicts others)
      (List.rev benches)
  in
  Explain.make rows

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled JSON: the container has no JSON library and the schema is
   small and flat.  Floats print as %.3f (finite by construction). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_num f = Printf.sprintf "%.3f" f

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields)
  ^ "}"

let json_of_point (p : point) =
  let c = p.pt_counters in
  json_obj
    [
      ("bench", json_str p.pt_bench);
      ("config", json_str (Pipeline.mode_name p.pt_config));
      ("par_loops", string_of_int p.pt_par);
      ("loss", string_of_int p.pt_loss);
      ("extra", string_of_int p.pt_extra);
      ("code_size", string_of_int p.pt_size);
      ("wall_ms", json_num p.pt_wall_ms);
      ( "exec_ms",
        match p.pt_exec_ms with None -> "null" | Some ms -> json_num ms );
      ("retries", string_of_int p.pt_retries);
      ("deadline_misses", string_of_int p.pt_deadline_misses);
      ( "cache_hit_ratio",
        if c.Prof.dep_tests_run = 0 then "null"
        else
          json_num
            (float_of_int c.Prof.dep_cache_hits
            /. float_of_int c.Prof.dep_tests_run) );
      ( "pass_ms",
        json_obj (List.map (fun (k, ms) -> (k, json_num ms)) p.pt_pass_ms) );
      ( "counters",
        json_obj
          [
            ("dep_tests_run", string_of_int c.Prof.dep_tests_run);
            ("dep_tests_independent", string_of_int c.Prof.dep_tests_independent);
            ("dep_cache_hits", string_of_int c.Prof.dep_cache_hits);
            ("dep_cache_misses", string_of_int c.Prof.dep_cache_misses);
            ("annot_sites_inlined", string_of_int c.Prof.annot_sites_inlined);
            ("reverse_sites_matched", string_of_int c.Prof.reverse_sites_matched);
            ("stmts_normalized", string_of_int c.Prof.stmts_normalized);
            ("iterations_traced", string_of_int c.Prof.iterations_traced);
            ("race_conflicts", string_of_int c.Prof.race_conflicts);
            ("race_excused", string_of_int c.Prof.race_excused);
            ("faults_injected", string_of_int c.Prof.faults_injected);
            ("requests_served", string_of_int c.Prof.requests_served);
            ("unit_cache_hits", string_of_int c.Prof.unit_cache_hits);
            ("snapshot_restores", string_of_int c.Prof.snapshot_restores);
          ] );
      ( "validation",
        match p.pt_validation with
        | None -> "null"
        | Some v ->
            json_obj
              [
                ("ok", if v.Checker.Oracle.v_ok then "true" else "false");
                ("races", string_of_int v.Checker.Oracle.v_unexcused);
                ("excused", string_of_int v.Checker.Oracle.v_excused);
                ("iterations", string_of_int v.Checker.Oracle.v_iterations);
                ( "diverged",
                  if v.Checker.Oracle.v_diverged then "true" else "false" );
                ( "crashed",
                  if v.Checker.Oracle.v_crashed then "true" else "false" );
                ("verdict", json_str (Checker.Oracle.verdict_summary v));
              ] );
      ( "salvage",
        json_obj
          [
            ("errors", string_of_int (Diag.errors_in p.pt_diags));
            ("warnings", string_of_int (Diag.warnings_in p.pt_diags));
            ("crashed", if p.pt_crashed then "true" else "false");
            ( "messages",
              "["
              ^ String.concat ","
                  (List.map (fun d -> json_str (Diag.render d)) p.pt_diags)
              ^ "]" );
          ] );
      ( "planner",
        match p.pt_plan with
        | None -> "null"
        | Some pl ->
            json_obj
              [
                ("rounds", string_of_int (List.length pl.Planner.pl_rounds));
                ("sites_inlined", string_of_int pl.Planner.pl_sites);
                ("growth_ratio", json_num pl.Planner.pl_growth);
                ( "blockers_resolved",
                  string_of_int (List.length pl.Planner.pl_resolved) );
                ( "blockers_remaining",
                  string_of_int (List.length pl.Planner.pl_remaining) );
                ( "budget_exhausted",
                  if pl.Planner.pl_budget_exhausted then "true" else "false"
                );
              ] );
      ( "verdicts",
        let vs = List.map snd p.pt_verdicts in
        let parallel = List.filter Verdict.is_parallel vs in
        let serial = List.filter (fun v -> not (Verdict.is_parallel v)) vs in
        let hist = Hashtbl.create 8 in
        List.iter
          (fun v ->
            List.iter
              (fun b ->
                let k = Verdict.blocker_kind b in
                Hashtbl.replace hist k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt hist k)))
              (Verdict.blockers v))
          serial;
        json_obj
          [
            ("parallel", string_of_int (List.length parallel));
            ( "marked",
              string_of_int (List.length (List.filter Verdict.is_marked vs)) );
            ("serial", string_of_int (List.length serial));
            ( "blockers",
              json_obj
                (List.sort compare
                   (Hashtbl.fold
                      (fun k n acc -> (k, string_of_int n) :: acc)
                      hist [])) );
          ] );
    ]

(** The stable bench schema, one JSON document per suite run.  CI
    archives this as [BENCH_*.json]; consumers key on [schema_version].
    Version 2 added the per-point ["validation"] object ([null] when the
    suite ran without [--validate]) and the oracle counters.  Version 3
    adds per-point ["verdicts"] counts (parallel / marked / serial plus
    a blocker-kind histogram) and, with [?explain], the top-level
    ["explain_diff"] attribution object.  Version 4 adds per-point
    ["exec_ms"] (serial execution wall clock, [null] unless the suite
    ran with [--time-exec]), ["cache_hit_ratio"], and the
    ["dep_cache_hits"]/["dep_cache_misses"] counters — the dependence
    memo trajectory CI gates on.  Version 5 adds per-point ["retries"]
    and ["deadline_misses"] (pool-level recovery accounting) and the
    ["faults_injected"] counter (chaos faults fired inside the task);
    all three are zero whenever no [--chaos] plan is armed, so a
    faults-off v5 document differs from v4 only by the new fields.
    Version 6 adds the fourth ["demand"] configuration and its per-point
    ["planner"] object (rounds, sites inlined, growth ratio, blockers
    resolved/remaining, budget exhaustion); ["planner"] is [null] on the
    other three configurations.  Version 7 adds the analysis-daemon
    counters (["requests_served"], ["unit_cache_hits"],
    ["snapshot_restores"] — all zero outside serve runs) and, with
    [?serve], the top-level ["serve"] throughput object produced by
    [bench serve-bench]: request count, cold/warm requests per second,
    p50/p99 request latency, and the end-to-end unit-cache hit ratio.
    Version 8 splits the serve latency distribution by pass — per-pass
    ["cold_p50_ms"/"cold_p90_ms"/"cold_p99_ms"] and
    ["warm_p50_ms"/"warm_p90_ms"/"warm_p99_ms"] quantiles next to the
    pooled v7 ["p50_ms"/"p99_ms"] — so the serve SLO gate
    ([bench/slo.json], [scripts/check_serve_slo.sh]) can put a ceiling
    on warm p99 instead of only a floor under warm throughput.
    Version 9 adds the concurrency and eviction surface of the
    multi-connection daemon: a serve ["clients"] array with warm
    rps/p50/p99 per concurrent-client count, ["concurrent_speedup"]
    (warm rps at the highest client count over single-client),
    ["cores"] (the machine's recommended domain count, so a gate can
    tell "no speedup" from "no cores to speed up on"), and the unit
    cache's ["evictions"], ["cache_units"], ["max_cache_units"]. *)

type client_point = {
  cp_clients : int;  (** concurrent client connections driven *)
  cp_rps : float;  (** aggregate warm requests per second *)
  cp_p50_ms : float;
  cp_p99_ms : float;
}

type serve_stats = {
  sv_requests : int;  (** work requests driven through the daemon *)
  sv_cold_rps : float;  (** first (cold) pass requests per second *)
  sv_warm_rps : float;  (** second (warm) pass requests per second *)
  sv_p50_ms : float;  (** median request latency, both passes *)
  sv_p99_ms : float;  (** 99th-percentile request latency, both passes *)
  sv_cold_p50_ms : float;  (** v8: cold-pass quantiles *)
  sv_cold_p90_ms : float;
  sv_cold_p99_ms : float;
  sv_warm_p50_ms : float;  (** v8: warm-pass quantiles (the SLO surface) *)
  sv_warm_p90_ms : float;
  sv_warm_p99_ms : float;
  sv_hit_ratio : float;  (** unit-cache hits / requests served *)
  sv_snapshot_restores : int;
  sv_clients : client_point list;  (** v9: warm throughput per client count *)
  sv_speedup : float;  (** v9: rps at max clients / rps at 1 client *)
  sv_cores : int;  (** v9: recommended domain count of the bench host *)
  sv_evictions : int;  (** v9: unit-cache LRU evictions over the run *)
  sv_cache_units : int;  (** v9: resident unit-cache entries at the end *)
  sv_max_cache_units : int;  (** v9: the cap driven (0 = unbounded) *)
}

let json_of_serve (s : serve_stats) =
  json_obj
    [
      ("requests", string_of_int s.sv_requests);
      ("cold_rps", json_num s.sv_cold_rps);
      ("warm_rps", json_num s.sv_warm_rps);
      ("p50_ms", json_num s.sv_p50_ms);
      ("p99_ms", json_num s.sv_p99_ms);
      ("cold_p50_ms", json_num s.sv_cold_p50_ms);
      ("cold_p90_ms", json_num s.sv_cold_p90_ms);
      ("cold_p99_ms", json_num s.sv_cold_p99_ms);
      ("warm_p50_ms", json_num s.sv_warm_p50_ms);
      ("warm_p90_ms", json_num s.sv_warm_p90_ms);
      ("warm_p99_ms", json_num s.sv_warm_p99_ms);
      ("unit_hit_ratio", json_num s.sv_hit_ratio);
      ("snapshot_restores", string_of_int s.sv_snapshot_restores);
      ( "clients",
        "["
        ^ String.concat ","
            (List.map
               (fun cp ->
                 json_obj
                   [
                     ("clients", string_of_int cp.cp_clients);
                     ("rps", json_num cp.cp_rps);
                     ("p50_ms", json_num cp.cp_p50_ms);
                     ("p99_ms", json_num cp.cp_p99_ms);
                   ])
               s.sv_clients)
        ^ "]" );
      ("concurrent_speedup", json_num s.sv_speedup);
      ("cores", string_of_int s.sv_cores);
      ("evictions", string_of_int s.sv_evictions);
      ("cache_units", string_of_int s.sv_cache_units);
      ("max_cache_units", string_of_int s.sv_max_cache_units);
    ]

let to_json ?(explain : Explain.t option) ?(serve : serve_stats option)
    (points : point list) : string =
  json_obj
    ([
       ("schema_version", "9");
       ("suite", json_str "perfect");
       ("jobs_deterministic", "true");
       ( "points",
         "[" ^ String.concat "," (List.map json_of_point points) ^ "]" );
     ]
    @ (match explain with
      | None -> []
      | Some e -> [ ("explain_diff", Json.to_string (Explain.to_json e)) ])
    @
    match serve with
    | None -> []
    | Some s -> [ ("serve", json_of_serve s) ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Backward-compatible reader                                          *)
(* ------------------------------------------------------------------ *)

(** Minimal parsed view of an archived bench document — the fields CI
    consumers actually key on.  [rd_verdicts] is the (parallel, serial)
    pair of the version-3 ["verdicts"] object; [None] for version-2
    documents, which predate it.  The wall-clock and dependence-cache
    fields are version-4; on older documents they read as their zero /
    [None] defaults so the compare tooling degrades gracefully. *)
type read_planner = {
  rp_rounds : int;
  rp_sites : int;
  rp_growth : float;
  rp_resolved : int;
}

type read_point = {
  rd_bench : string;
  rd_config : string;
  rd_par : int;
  rd_loss : int;
  rd_extra : int;
  rd_verdicts : (int * int) option;
  rd_wall_ms : float;
  rd_exec_ms : float option;
  rd_dep_tests_run : int;
  rd_dep_cache_hits : int;
  rd_dep_cache_misses : int;
  rd_retries : int;  (** v5; 0 on older documents *)
  rd_deadline_misses : int;  (** v5; 0 on older documents *)
  rd_faults_injected : int;  (** v5; 0 on older documents *)
  rd_planner : read_planner option;  (** v6 demand points; [None] elsewhere *)
  rd_counter_keys : string list;
      (** the counter keys this point actually carries — lets consumers
          distinguish "absent in this schema version" from "zero" *)
}

type read_serve = {
  rs_requests : int;
  rs_cold_rps : float;
  rs_warm_rps : float;
  rs_p50_ms : float;
  rs_p99_ms : float;
  rs_cold_p50_ms : float;  (** v8; 0 on v7 documents *)
  rs_cold_p90_ms : float;
  rs_cold_p99_ms : float;
  rs_warm_p50_ms : float;
  rs_warm_p90_ms : float;
  rs_warm_p99_ms : float;
  rs_hit_ratio : float;
  rs_clients : (int * float * float * float) list;
      (** v9 [(clients, rps, p50_ms, p99_ms)]; empty on older documents *)
  rs_speedup : float;  (** v9; 0 on older documents *)
  rs_evictions : int;  (** v9; 0 on older documents *)
}
(** The version-7+ top-level ["serve"] throughput object; [None] on
    older documents and on suite runs without [serve-bench].  The v8
    per-pass quantiles read as [0.0] on v7 documents; the v9
    concurrency fields read as empty/zero on v7–v8 documents. *)

type read_doc = {
  rd_version : int;
  rd_points : read_point list;
  rd_serve : read_serve option;
}

(** Parse a bench JSON document produced by this driver — the current
    version 9 or the archived versions 2 through 8 — into a {!read_doc}.
    Unknown fields are ignored, so the reader keeps working as the
    schema grows. *)
let read_json (s : string) : (read_doc, string) result =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Json.member "schema_version" j with
      | Json.Null -> Error "missing schema_version"
      | v ->
          let version = Json.to_int ~default:0 v in
          if version < 2 || version > 9 then
            Error (Printf.sprintf "unsupported schema_version %d" version)
          else
            Ok
              {
                rd_version = version;
                rd_serve =
                  (match Json.member "serve" j with
                  | Json.Null -> None
                  | sv ->
                      Some
                        {
                          rs_requests =
                            Json.to_int (Json.member "requests" sv);
                          rs_cold_rps =
                            Json.to_float (Json.member "cold_rps" sv);
                          rs_warm_rps =
                            Json.to_float (Json.member "warm_rps" sv);
                          rs_p50_ms = Json.to_float (Json.member "p50_ms" sv);
                          rs_p99_ms = Json.to_float (Json.member "p99_ms" sv);
                          rs_cold_p50_ms =
                            Json.to_float (Json.member "cold_p50_ms" sv);
                          rs_cold_p90_ms =
                            Json.to_float (Json.member "cold_p90_ms" sv);
                          rs_cold_p99_ms =
                            Json.to_float (Json.member "cold_p99_ms" sv);
                          rs_warm_p50_ms =
                            Json.to_float (Json.member "warm_p50_ms" sv);
                          rs_warm_p90_ms =
                            Json.to_float (Json.member "warm_p90_ms" sv);
                          rs_warm_p99_ms =
                            Json.to_float (Json.member "warm_p99_ms" sv);
                          rs_hit_ratio =
                            Json.to_float (Json.member "unit_hit_ratio" sv);
                          rs_clients =
                            (match Json.member "clients" sv with
                            | Json.List cps ->
                                List.map
                                  (fun cp ->
                                    ( Json.to_int (Json.member "clients" cp),
                                      Json.to_float (Json.member "rps" cp),
                                      Json.to_float (Json.member "p50_ms" cp),
                                      Json.to_float (Json.member "p99_ms" cp)
                                    ))
                                  cps
                            | _ -> []);
                          rs_speedup =
                            Json.to_float ~default:0.0
                              (Json.member "concurrent_speedup" sv);
                          rs_evictions =
                            Json.to_int ~default:0
                              (Json.member "evictions" sv);
                        });
                rd_points =
                  List.map
                    (fun p ->
                      let counters = Json.member "counters" p in
                      {
                        rd_bench = Json.to_str (Json.member "bench" p);
                        rd_config = Json.to_str (Json.member "config" p);
                        rd_par = Json.to_int (Json.member "par_loops" p);
                        rd_loss = Json.to_int (Json.member "loss" p);
                        rd_extra = Json.to_int (Json.member "extra" p);
                        rd_verdicts =
                          (match Json.member "verdicts" p with
                          | Json.Null -> None
                          | v ->
                              Some
                                ( Json.to_int (Json.member "parallel" v),
                                  Json.to_int (Json.member "serial" v) ));
                        rd_wall_ms = Json.to_float (Json.member "wall_ms" p);
                        rd_exec_ms =
                          (match Json.member "exec_ms" p with
                          | Json.Null -> None
                          | v -> Some (Json.to_float v));
                        rd_dep_tests_run =
                          Json.to_int (Json.member "dep_tests_run" counters);
                        rd_dep_cache_hits =
                          Json.to_int (Json.member "dep_cache_hits" counters);
                        rd_dep_cache_misses =
                          Json.to_int
                            (Json.member "dep_cache_misses" counters);
                        rd_retries =
                          Json.to_int ~default:0 (Json.member "retries" p);
                        rd_deadline_misses =
                          Json.to_int ~default:0
                            (Json.member "deadline_misses" p);
                        rd_faults_injected =
                          Json.to_int ~default:0
                            (Json.member "faults_injected" counters);
                        rd_planner =
                          (match Json.member "planner" p with
                          | Json.Null -> None
                          | pl ->
                              Some
                                {
                                  rp_rounds =
                                    Json.to_int (Json.member "rounds" pl);
                                  rp_sites =
                                    Json.to_int
                                      (Json.member "sites_inlined" pl);
                                  rp_growth =
                                    Json.to_float
                                      (Json.member "growth_ratio" pl);
                                  rp_resolved =
                                    Json.to_int
                                      (Json.member "blockers_resolved" pl);
                                });
                        rd_counter_keys =
                          (match counters with
                          | Json.Obj kvs -> List.map fst kvs
                          | _ -> []);
                      })
                    (Json.to_list (Json.member "points" j));
              })

(** Write [content] to [path] atomically: temp file in the same
    directory, fsync, rename.  A crashed run can leave a stale temp file
    behind but never a truncated [path] for CI to ingest. *)
let write_file_atomic (path : string) (content : string) =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  Fun.protect
    ~finally:(fun () -> try close_out oc with _ -> ())
    (fun () ->
      output_string oc content;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

(** Worst exit status over the points, per the 0/1/2 contract: 0 clean,
    1 when any point salvaged errors, crashed, or failed validation (the
    suite as a whole is still usable), callers map whole-run fatals to 2
    themselves. *)
let exit_status (points : point list) =
  if
    List.exists
      (fun p ->
        p.pt_crashed
        || Diag.errors_in p.pt_diags > 0
        || match p.pt_validation with
           | Some v -> not v.Checker.Oracle.v_ok
           | None -> false)
      points
  then 1
  else 0
