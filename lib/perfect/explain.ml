(** Explain-diff: loop-level attribution across inlining configurations.

    The paper's Table II reports *counts* (par / loss / extra); this
    module reports the *loops* behind the counts.  For one benchmark the
    three configurations' verdicts are joined by loop id (deterministic
    thanks to the driver's per-task gensym reset — copies of a loop made
    by inlining share the id) and every original-program loop is
    classified against the no-inlining baseline:

    - [Kept]   : parallel in the baseline and in this configuration;
    - [Lost]   : parallel in the baseline, serial here (the conventional
                 -inlining damage of Section II-A);
    - [Gained] : serial in the baseline, parallel here (the loops
                 annotation-based inlining exists to win);
    - [Serial] : serial in both.

    Each row carries both blocker lists, so the delta is mechanical:
    a [Gained] row's baseline blockers are the obstacles inlining
    removed; a [Lost] row's own blockers are the obstacles inlining
    introduced. *)

open Core
module Verdict = Parallelizer.Verdict
module Json = Frontend.Json

type cls = Kept | Lost | Gained | Serial

let cls_name = function
  | Kept -> "kept"
  | Lost -> "lost"
  | Gained -> "gained"
  | Serial -> "serial"

type row = {
  row_bench : string;
  row_config : Pipeline.mode;  (** never [No_inlining] (it is the baseline) *)
  row_loop : Verdict.loop_id;  (** baseline identity when available *)
  row_class : cls;
  row_blockers : Verdict.blocker list;  (** this configuration's blockers *)
  row_base_blockers : Verdict.blocker list;  (** baseline blockers *)
  row_attr : (int * string) option;
      (** demand-planner attribution of a [Gained] row: the planning
          round and the inlined callee that unlocked the loop *)
}

(** Per-configuration totals.  [sum_resolved] histograms the baseline
    blocker kinds of [Gained] rows (what inlining removed);
    [sum_introduced] histograms the own blocker kinds of [Lost] rows
    (what inlining broke). *)
type summary = {
  sum_config : Pipeline.mode;
  sum_kept : int;
  sum_lost : int;
  sum_gained : int;
  sum_serial : int;
  sum_resolved : (string * int) list;
  sum_introduced : (string * int) list;
}

type t = { rows : row list; summaries : summary list }

(* ------------------------------------------------------------------ *)

(* Histogram of blocker kinds, sorted by kind for determinism. *)
let histogram blockers =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun b ->
      let k = Verdict.blocker_kind b in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    blockers;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

let not_analyzed = [ Verdict.Not_analyzed "no verdict in this configuration" ]

(** Join one benchmark.  [original] are the loop ids of the input
    program; [baseline] and each [(mode, verdicts)] map loop id to the
    representative verdict of that configuration (marked copy preferred
    — see {!Driver}).  Rows come out in loop-id order, configurations in
    the order given.  [attrs] maps a mode's loop ids to the planner's
    [(round, callee)] attribution; a [Gained] row of that mode carries
    it in [row_attr]. *)
let diff_bench ~(bench : string)
    ?(attrs : (Pipeline.mode * (int * (int * string)) list) list = [])
    ~(original : int list) ~(baseline : (int * Verdict.t) list)
    (others : (Pipeline.mode * (int * Verdict.t) list) list) : row list =
  let ids =
    List.sort_uniq compare
      (List.filter
         (fun id ->
           List.mem_assoc id baseline
           || List.exists (fun (_, vs) -> List.mem_assoc id vs) others)
         original)
  in
  List.concat_map
    (fun (mode, verdicts) ->
      List.map
        (fun id ->
          let bv = List.assoc_opt id baseline in
          let mv = List.assoc_opt id verdicts in
          let marked = function Some v -> Verdict.is_marked v | None -> false in
          let cls =
            match (marked bv, marked mv) with
            | true, true -> Kept
            | true, false -> Lost
            | false, true -> Gained
            | false, false -> Serial
          in
          let blockers_of = function
            | Some v -> Verdict.blockers v
            | None -> not_analyzed
          in
          let loop =
            match (bv, mv) with
            | Some v, _ | None, Some v -> v.Verdict.v_loop
            | None, None ->
                (* unreachable: id came from one of the two maps *)
                {
                  Verdict.lid_unit = "?";
                  lid_line = 0;
                  lid_index = "?";
                  lid_path = [];
                  lid_loop = id;
                }
          in
          {
            row_bench = bench;
            row_config = mode;
            row_loop = loop;
            row_class = cls;
            (* a parallel verdict has no blockers, so these are [] on the
               parallel side of every class automatically *)
            row_blockers = blockers_of mv;
            row_base_blockers = blockers_of bv;
            row_attr =
              (if cls = Gained then
                 Option.bind (List.assoc_opt mode attrs) (List.assoc_opt id)
               else None);
          })
        ids)
    others

let summarize (rows : row list) : summary list =
  let modes =
    List.fold_left
      (fun acc r -> if List.mem r.row_config acc then acc else r.row_config :: acc)
      [] rows
  in
  List.map
    (fun mode ->
      let mine = List.filter (fun r -> r.row_config = mode) rows in
      let count c = List.length (List.filter (fun r -> r.row_class = c) mine) in
      let gained_base =
        List.concat_map
          (fun r -> if r.row_class = Gained then r.row_base_blockers else [])
          mine
      in
      let lost_own =
        List.concat_map
          (fun r -> if r.row_class = Lost then r.row_blockers else [])
          mine
      in
      {
        sum_config = mode;
        sum_kept = count Kept;
        sum_lost = count Lost;
        sum_gained = count Gained;
        sum_serial = count Serial;
        sum_resolved = histogram gained_base;
        sum_introduced = histogram lost_own;
      })
    (List.rev modes)

let make rows = { rows; summaries = summarize rows }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_blockers = function
  | [] -> "-"
  | bs -> String.concat "; " (List.map Verdict.describe_blocker bs)

(** Human-readable diff table (``bench table2 --explain-diff``).  Kept
    and always-serial rows are summarized in the footer; the table body
    shows only the loops that *moved* (lost or gained), which is the
    attribution the paper cares about. *)
let render (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "explain-diff vs no-inlining (moved loops only)\n\
     bench      config          loop                        class   detail\n";
  List.iter
    (fun r ->
      match r.row_class with
      | Kept | Serial -> ()
      | Lost ->
          Buffer.add_string buf
            (Printf.sprintf "%-10s %-15s %-27s lost    now blocked: %s\n"
               r.row_bench
               (Pipeline.mode_name r.row_config)
               (Verdict.key r.row_loop)
               (render_blockers r.row_blockers))
      | Gained ->
          Buffer.add_string buf
            (Printf.sprintf "%-10s %-15s %-27s gained  was blocked: %s%s\n"
               r.row_bench
               (Pipeline.mode_name r.row_config)
               (Verdict.key r.row_loop)
               (render_blockers r.row_base_blockers)
               (match r.row_attr with
               | None -> ""
               | Some (round, callee) ->
                   Printf.sprintf "  [round %d via %s]" round callee)))
    t.rows;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-15s kept %d  lost %d  gained %d  serial %d%s%s\n"
           (Pipeline.mode_name s.sum_config)
           s.sum_kept s.sum_lost s.sum_gained s.sum_serial
           (if s.sum_resolved = [] then ""
            else
              "  resolved: "
              ^ String.concat ","
                  (List.map
                     (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                     s.sum_resolved))
           (if s.sum_introduced = [] then ""
            else
              "  introduced: "
              ^ String.concat ","
                  (List.map
                     (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                     s.sum_introduced))))
    t.summaries;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let row_to_json (r : row) : Json.t =
  Json.Obj
    [
      ("bench", Json.Str r.row_bench);
      ("config", Json.Str (Pipeline.mode_name r.row_config));
      ("loop_id", Verdict.loop_id_to_json r.row_loop);
      ("class", Json.Str (cls_name r.row_class));
      ("blockers", Json.List (List.map Verdict.blocker_to_json r.row_blockers));
      ( "baseline_blockers",
        Json.List (List.map Verdict.blocker_to_json r.row_base_blockers) );
      ( "attribution",
        match r.row_attr with
        | None -> Json.Null
        | Some (round, callee) ->
            Json.Obj
              [ ("round", Json.Int round); ("callee", Json.Str callee) ] );
    ]

let summary_to_json (s : summary) : Json.t =
  let hist h = Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) h) in
  Json.Obj
    [
      ("config", Json.Str (Pipeline.mode_name s.sum_config));
      ("kept", Json.Int s.sum_kept);
      ("lost", Json.Int s.sum_lost);
      ("gained", Json.Int s.sum_gained);
      ("serial", Json.Int s.sum_serial);
      ("resolved_blockers", hist s.sum_resolved);
      ("introduced_blockers", hist s.sum_introduced);
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("rows", Json.List (List.map row_to_json t.rows));
      ("summaries", Json.List (List.map summary_to_json t.summaries));
    ]
