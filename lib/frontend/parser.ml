(** Recursive-descent parser for the Fortran-77 subset.

    Grammar notes:
    - One statement per logical line (the lexer already merged continuations).
    - Labeled [DO n ... n CONTINUE] and block [DO ... ENDDO] are supported,
      including nested loops sharing one terminal label (Fig. 2 of the paper).
    - [IF (e) stmt], [IF (e) THEN ... ELSE IF ... ELSE ... ENDIF].
    - Declarations: type statements, [DIMENSION], [COMMON], [PARAMETER],
      [IMPLICIT NONE] (accepted and ignored: implicit I-N typing is always
      applied to undeclared names). *)

open Lexer

(* Parser faults raise [Diag.Fatal] carrying the source line (the old bare
   [Parse_error of string] is gone).  [?line] is omitted only for
   end-of-file conditions, which have no meaningful line. *)
let perr ?line fmt =
  Printf.ksprintf
    (fun s ->
      let loc = Option.map Diag.loc line in
      raise (Diag.Fatal (Diag.make ?loc Diag.Parse s)))
    fmt

(* ------------------------------------------------------------------ *)
(* Expression parsing over one line's token list                       *)
(* ------------------------------------------------------------------ *)

type estate = { mutable toks : token list; lineno : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with
  | [] -> perr ~line:st.lineno "unexpected end of line"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok =
  let t = advance st in
  if not (Lexer.equal_token t tok) then
    perr ~line:st.lineno "expected %s, found %s" (Lexer.show_token tok)
      (Lexer.show_token t)

let accept st tok =
  match peek st with
  | Some t when Lexer.equal_token t tok ->
      ignore (advance st);
      true
  | _ -> false

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st TOR then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st TAND then Ast.Binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept st TNOT then Ast.Unop (Ast.Not, parse_not st) else parse_rel st

and parse_rel st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Some TEQ -> Some Ast.Eq
    | Some TNE -> Some Ast.Ne
    | Some TLT -> Some Ast.Lt
    | Some TLE -> Some Ast.Le
    | Some TGT -> Some Ast.Gt
    | Some TGE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      ignore (advance st);
      Ast.Binop (op, lhs, parse_additive st)

and parse_additive st =
  let rec loop lhs =
    if accept st TPLUS then loop (Ast.Binop (Ast.Add, lhs, parse_term st))
    else if accept st TMINUS then
      loop (Ast.Binop (Ast.Sub, lhs, parse_term st))
    else lhs
  in
  loop (parse_term st)

and parse_term st =
  let rec loop lhs =
    if accept st TSTAR then loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    else if accept st TSLASH then
      loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    else lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st TMINUS then Ast.Unop (Ast.Neg, parse_unary st)
  else if accept st TPLUS then parse_unary st
  else parse_power st

and parse_power st =
  let base = parse_primary st in
  if accept st TPOW then Ast.Binop (Ast.Pow, base, parse_unary st) else base

and parse_primary st =
  match advance st with
  | TINT n -> Ast.Int_const n
  | TREAL r -> Ast.Real_const r
  | TSTR s -> Ast.Str_const s
  | TTRUE -> Ast.Logical_const true
  | TFALSE -> Ast.Logical_const false
  | TLP ->
      let e = parse_expr st in
      expect st TRP;
      e
  | TID name ->
      if accept st TLP then begin
        let args, has_section = parse_arg_list st in
        expect st TRP;
        if has_section then
          Ast.Section
            ( name,
              List.map
                (function
                  | `Expr e -> (Some e, Some e, None)
                  | `Section b -> b)
                args )
        else
          Ast.Array_ref
            ( name,
              List.map
                (function `Expr e -> e | `Section _ -> assert false)
                args )
      end
      else Ast.Var name
  | t -> perr ~line:st.lineno "unexpected token %s" (Lexer.show_token t)

(* Argument: expr, or a section bound [lo]:[hi][:step].  An empty bound is
   allowed on either side of ':'. *)
and parse_arg_list st =
  let has_section = ref false in
  let parse_arg () =
    let lo =
      match peek st with
      | Some (TCOLON | TCOMMA | TRP) -> None
      | _ -> Some (parse_expr st)
    in
    if accept st TCOLON then begin
      has_section := true;
      let hi =
        match peek st with
        | Some (TCOLON | TCOMMA | TRP) -> None
        | _ -> Some (parse_expr st)
      in
      let step = if accept st TCOLON then Some (parse_expr st) else None in
      `Section (lo, hi, step)
    end
    else
      match lo with
      | Some e -> `Expr e
      | None -> perr ~line:st.lineno "empty argument"
  in
  let rec loop acc =
    let a = parse_arg () in
    if accept st TCOMMA then loop (a :: acc) else List.rev (a :: acc)
  in
  match peek st with
  | Some TRP -> ([], false)
  | _ ->
      let args = loop [] in
      (args, !has_section)

let parse_expr_of_tokens lineno toks =
  let st = { toks; lineno } in
  let e = parse_expr st in
  if st.toks <> [] then perr ~line:lineno "trailing tokens after expression";
  e

(* ------------------------------------------------------------------ *)
(* Statement / unit parsing over the line stream                       *)
(* ------------------------------------------------------------------ *)

type pstate = {
  lines : Lexer.line array;
  mutable pos : int;
  dg : Diag.collector option;
      (** when set, statement-level faults are emitted here and parsing
          resumes at the next statement boundary *)
}

let cur ps = if ps.pos < Array.length ps.lines then Some ps.lines.(ps.pos) else None

let next_line ps =
  match cur ps with
  | None -> perr "unexpected end of file"
  | Some l ->
      ps.pos <- ps.pos + 1;
      l

let starts_with line ids =
  let rec go toks ids =
    match (toks, ids) with
    | _, [] -> true
    | TID t :: toks', id :: ids' when String.equal t id -> go toks' ids'
    | _ -> false
  in
  go line.tokens ids

(* END of a program unit: END alone, or END SUBROUTINE/FUNCTION/PROGRAM. *)
let is_unit_end line =
  match line.tokens with
  | [ TID "END" ] -> true
  | TID "END" :: TID ("SUBROUTINE" | "FUNCTION" | "PROGRAM") :: _ -> true
  | _ -> false

let is_enddo line =
  starts_with line [ "ENDDO" ] || starts_with line [ "END"; "DO" ]

let is_endif line =
  starts_with line [ "ENDIF" ] || starts_with line [ "END"; "IF" ]

let is_else line =
  match line.tokens with TID "ELSE" :: _ -> true | _ -> false

(* ---- declarations ---- *)

type decl_acc = {
  mutable types : (string * Ast.dtype) list;
  mutable dims : (string * Ast.dim list) list;
  mutable commons : (string * string list) list;
  mutable params : (string * Ast.expr) list;
}

let parse_decl_items st =
  (* NAME [ (dims) ] {, NAME [ (dims) ]} *)
  let parse_dims () =
    let rec loop acc =
      let d =
        if accept st TSTAR then Ast.Dim_star else Ast.Dim_expr (parse_expr st)
      in
      if accept st TCOMMA then loop (d :: acc) else List.rev (d :: acc)
    in
    let dims = loop [] in
    expect st TRP;
    dims
  in
  let rec loop acc =
    match advance st with
    | TID name ->
        let dims = if accept st TLP then parse_dims () else [] in
        let acc = (name, dims) :: acc in
        if accept st TCOMMA then loop acc else List.rev acc
    | t -> perr ~line:st.lineno "expected name in declaration, found %s"
             (Lexer.show_token t)
  in
  loop []

(* Recognize a type keyword prefix; returns remaining tokens. *)
let type_prefix tokens =
  match tokens with
  | TID "INTEGER" :: rest -> Some (Ast.Integer, rest)
  | TID "LOGICAL" :: rest -> Some (Ast.Logical, rest)
  | TID "CHARACTER" :: rest -> Some (Ast.Character, rest)
  | TID "DOUBLE" :: TID "PRECISION" :: rest -> Some (Ast.Double, rest)
  | TID "DOUBLEPRECISION" :: rest -> Some (Ast.Double, rest)
  | TID "REAL" :: TSTAR :: TINT 8 :: rest -> Some (Ast.Double, rest)
  | TID "REAL" :: TSTAR :: TINT 4 :: rest -> Some (Ast.Real, rest)
  | TID "REAL" :: rest -> Some (Ast.Real, rest)
  | _ -> None

(* Is this line a declaration?  (A type keyword followed by FUNCTION is a
   unit header, not a declaration.) *)
let is_decl_line line =
  match type_prefix line.tokens with
  | Some (_, TID "FUNCTION" :: _) -> false
  | Some _ -> true
  | None ->
      starts_with line [ "DIMENSION" ]
      || starts_with line [ "COMMON" ]
      || starts_with line [ "PARAMETER" ]
      || starts_with line [ "IMPLICIT" ]

let parse_decl_line acc line =
  match type_prefix line.tokens with
  | Some (ty, rest) ->
      let st = { toks = rest; lineno = line.lineno } in
      let items = parse_decl_items st in
      List.iter
        (fun (name, dims) ->
          acc.types <- (name, ty) :: acc.types;
          if dims <> [] then acc.dims <- (name, dims) :: acc.dims)
        items
  | None ->
      let st = { toks = List.tl line.tokens; lineno = line.lineno } in
      if starts_with line [ "DIMENSION" ] then
        List.iter
          (fun (name, dims) ->
            if dims = [] then
              perr ~line:line.lineno "DIMENSION item %s has no dims" name;
            acc.dims <- (name, dims) :: acc.dims)
          (parse_decl_items st)
      else if starts_with line [ "COMMON" ] then begin
        (* COMMON /BLK/ a, b(10) *)
        expect st TSLASH;
        let blk =
          match advance st with
          | TID b -> b
          | t ->
              perr ~line:line.lineno "expected common block name, found %s"
                (Lexer.show_token t)
        in
        expect st TSLASH;
        let items = parse_decl_items st in
        List.iter
          (fun (name, dims) ->
            if dims <> [] then acc.dims <- (name, dims) :: acc.dims)
          items;
        acc.commons <- (blk, List.map fst items) :: acc.commons
      end
      else if starts_with line [ "PARAMETER" ] then begin
        expect st TLP;
        let rec loop () =
          let name =
            match advance st with
            | TID n -> n
            | t ->
                perr ~line:line.lineno "expected parameter name, found %s"
                  (Lexer.show_token t)
          in
          expect st TASSIGN;
          let e = parse_expr st in
          acc.params <- (name, e) :: acc.params;
          if accept st TCOMMA then loop ()
        in
        loop ();
        expect st TRP
      end
      else if starts_with line [ "IMPLICIT" ] then () (* IMPLICIT NONE: noop *)
      else perr ~line:line.lineno "unrecognized declaration"

(* ---- statements ---- *)

(* Count of nested DO loops currently waiting on each terminal label, so
   that nested loops sharing one label (DO 200 ... DO 200 ... 200 CONTINUE)
   attach the terminal statement to the outermost loop only.  Domain-local:
   the suite driver parses benchmarks on concurrent domains, and a shared
   table would interleave their label bookkeeping. *)
let pending_labels_slot : (int, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let pending_labels () = Domain.DLS.get pending_labels_slot

(* Parse a statement from the tokens of one line; block constructs continue
   consuming lines from [ps]. *)
let rec parse_stmt ps (line : Lexer.line) : Ast.stmt =
  (* chaos: a tripped statement fault takes the native [Diag.Fatal]
     channel so the recovery loops exercise the real salvage path *)
  if Fault.check "frontend.parser.stmt" then
    perr ~line:line.lineno "injected fault at frontend.parser.stmt";
  match line.tokens with
  | TID "DO" :: TINT label :: rest -> parse_do ps line (Some label) rest
  | TID "DO" :: rest -> parse_do ps line None rest
  | TID "IF" :: _ -> parse_if ps line
  | TID "CALL" :: TID name :: rest ->
      let args =
        match rest with
        | [] -> []
        | TLP :: _ ->
            let st = { toks = rest; lineno = line.lineno } in
            expect st TLP;
            let args, has_section = parse_arg_list st in
            expect st TRP;
            if st.toks <> [] then
              perr ~line:line.lineno "trailing tokens after CALL";
            if has_section then
              perr ~line:line.lineno "array section in CALL argument";
            List.map (function `Expr e -> e | `Section _ -> assert false) args
        | _ -> perr ~line:line.lineno "malformed CALL"
      in
      Ast.mk (Ast.Call (name, args))
  | [ TID "RETURN" ] -> Ast.mk Ast.Return
  | [ TID "STOP" ] -> Ast.mk (Ast.Stop None)
  | [ TID "STOP"; TSTR msg ] -> Ast.mk (Ast.Stop (Some msg))
  | [ TID "CONTINUE" ] -> Ast.mk Ast.Continue
  | TID "WRITE" :: rest -> parse_write line rest
  | TID "PRINT" :: TSTAR :: rest ->
      let exprs =
        match rest with
        | [] -> []
        | TCOMMA :: rest' -> parse_expr_list line.lineno rest'
        | _ -> perr ~line:line.lineno "malformed PRINT"
      in
      Ast.mk (Ast.Print exprs)
  | TID "GOTO" :: _ | TID "GO" :: TID "TO" :: _ ->
      perr ~line:line.lineno "GOTO is not supported by this subset"
  | _ -> parse_assignment line

and parse_expr_list lineno toks =
  let st = { toks; lineno } in
  let rec loop acc =
    let e = parse_expr st in
    if accept st TCOMMA then loop (e :: acc) else List.rev (e :: acc)
  in
  if toks = [] then []
  else begin
    let es = loop [] in
    if st.toks <> [] then perr ~line:lineno "trailing tokens in list";
    es
  end

and parse_write line rest =
  (* List-directed WRITE: unit is an integer or a star, format is a star. *)
  let st = { toks = rest; lineno = line.lineno } in
  expect st TLP;
  (match advance st with
  | TINT _ | TSTAR -> ()
  | t ->
      perr ~line:line.lineno "expected WRITE unit, found %s"
        (Lexer.show_token t));
  expect st TCOMMA;
  expect st TSTAR;
  expect st TRP;
  let exprs = parse_expr_list line.lineno st.toks in
  Ast.mk (Ast.Print exprs)

and parse_assignment line =
  (* lvalue = expr.  The lvalue is ID or ID(args) followed by '='. *)
  let st = { toks = line.tokens; lineno = line.lineno } in
  let name =
    match advance st with
    | TID n -> n
    | t ->
        perr ~line:line.lineno "expected statement, found %s"
          (Lexer.show_token t)
  in
  let lv =
    if accept st TLP then begin
      let args, has_section = parse_arg_list st in
      expect st TRP;
      if has_section then
        Ast.Lsection
          ( name,
            List.map
              (function `Expr e -> (Some e, Some e, None) | `Section b -> b)
              args )
      else
        Ast.Larray
          (name, List.map (function `Expr e -> e | `Section _ -> assert false) args)
    end
    else Ast.Lvar name
  in
  expect st TASSIGN;
  let e = parse_expr st in
  if st.toks <> [] then perr ~line:line.lineno "trailing tokens after assignment";
  Ast.mk (Ast.Assign (lv, e))

and parse_do ps line label rest =
  (* DO [label] ID = e1, e2 [, e3] *)
  let st = { toks = rest; lineno = line.lineno } in
  let index =
    match advance st with
    | TID n -> n
    | t ->
        perr ~line:line.lineno "expected DO index, found %s"
          (Lexer.show_token t)
  in
  expect st TASSIGN;
  let lo = parse_expr st in
  expect st TCOMMA;
  let hi = parse_expr st in
  let step = if accept st TCOMMA then parse_expr st else Ast.Int_const 1 in
  if st.toks <> [] then perr ~line:line.lineno "trailing tokens in DO";
  let body =
    match label with
    | Some l -> parse_block_until_label ps l
    | None -> parse_block_until_enddo ps
  in
  Ast.mk_loop ~label ~line:line.lineno index lo hi step body

and parse_block_until_enddo ps =
  let rec loop acc =
    match cur ps with
    | None -> perr "unexpected end of file inside DO"
    | Some line when is_enddo line ->
        ps.pos <- ps.pos + 1;
        List.rev acc
    | Some line ->
        ps.pos <- ps.pos + 1;
        loop (parse_stmt ps line :: acc)
  in
  loop []

(* Parse statements until reaching the line bearing [label].  The labeled
   line itself is consumed by the *outermost* loop waiting on the label:
   we detect sharing by peeking whether the labeled statement would also
   terminate us after an inner loop stopped before it. *)
and parse_block_until_label ps label =
  let rec loop acc =
    match cur ps with
    | None -> perr "unexpected end of file inside labeled DO %d" label
    | Some line when line.label = Some label ->
        (* Terminal statement: usually CONTINUE.  Nested DOs sharing this
           label each stop here; only the outermost consumes the line.  We
           implement that by leaving the line in place and letting the
           caller consume it; to know whether *we* are outermost we peek at
           a marker the caller manages.  Simpler: consume it here, and make
           inner loops not consume by checking a shared-seen set. *)
        if Hashtbl.mem (pending_labels ()) label && Hashtbl.find (pending_labels ()) label > 1
        then begin
          (* inner loop: leave the labeled line for the enclosing DO *)
          Hashtbl.replace (pending_labels ()) label
            (Hashtbl.find (pending_labels ()) label - 1);
          List.rev acc
        end
        else begin
          Hashtbl.remove (pending_labels ()) label;
          ps.pos <- ps.pos + 1;
          let term = parse_stmt ps line in
          List.rev (term :: acc)
        end
    | Some line ->
        ps.pos <- ps.pos + 1;
        loop (parse_stmt ps line :: acc)
  in
  Hashtbl.replace (pending_labels ()) label
    (1 + (try Hashtbl.find (pending_labels ()) label with Not_found -> 0));
  loop []

and parse_if ps line =
  let st = { toks = List.tl line.tokens; lineno = line.lineno } in
  expect st TLP;
  let cond = parse_expr st in
  expect st TRP;
  match st.toks with
  | [ TID "THEN" ] ->
      let then_b, else_b = parse_if_blocks ps line.lineno in
      Ast.mk (Ast.If (cond, then_b, else_b))
  | [] -> perr ~line:line.lineno "IF with empty body"
  | rest ->
      (* logical IF: the rest of the line is a single simple statement *)
      let inner = parse_stmt ps { line with tokens = rest; label = None } in
      Ast.mk (Ast.If (cond, [ inner ], []))

and parse_if_blocks ps lineno =
  let rec loop acc =
    match cur ps with
    | None -> perr ~line:lineno "unexpected end of file inside IF"
    | Some line when is_endif line ->
        ps.pos <- ps.pos + 1;
        (List.rev acc, [])
    | Some line when is_else line -> begin
        ps.pos <- ps.pos + 1;
        match line.tokens with
        | [ TID "ELSE" ] ->
            let rec else_loop acc2 =
              match cur ps with
              | None -> perr ~line:lineno "unexpected end of file inside ELSE"
              | Some l when is_endif l ->
                  ps.pos <- ps.pos + 1;
                  List.rev acc2
              | Some l ->
                  ps.pos <- ps.pos + 1;
                  else_loop (parse_stmt ps l :: acc2)
            in
            (List.rev acc, else_loop [])
        | TID "ELSE" :: TID "IF" :: rest | TID "ELSEIF" :: rest ->
            let st = { toks = rest; lineno = line.lineno } in
            expect st TLP;
            let cond = parse_expr st in
            expect st TRP;
            (match st.toks with
            | [ TID "THEN" ] -> ()
            | _ -> perr ~line:line.lineno "ELSE IF requires THEN");
            let then_b, else_b = parse_if_blocks ps line.lineno in
            (List.rev acc, [ Ast.mk (Ast.If (cond, then_b, else_b)) ])
        | _ -> perr ~line:line.lineno "malformed ELSE"
      end
    | Some line ->
        ps.pos <- ps.pos + 1;
        loop (parse_stmt ps line :: acc)
  in
  loop []

(* ---- program units ---- *)

let parse_param_names (line : Lexer.line) st =
  if accept st TLP then begin
    if accept st TRP then []
    else
      let rec loop acc =
        match advance st with
        | TID n -> if accept st TCOMMA then loop (n :: acc) else List.rev (n :: acc)
        | t ->
            perr ~line:line.lineno "expected parameter name, found %s"
              (Lexer.show_token t)
      in
      let ps = loop [] in
      expect st TRP;
      ps
  end
  else []

let parse_unit ps : Ast.program_unit =
  let header = next_line ps in
  (* after the header is consumed, so unit-level recovery resyncs
     forward instead of retrying the same header *)
  if Fault.check "frontend.parser.unit" then
    perr ~line:header.lineno "injected fault at frontend.parser.unit";
  let kind, name, params =
    match header.tokens with
    | TID "PROGRAM" :: TID n :: [] -> (Ast.Main, n, [])
    | TID "SUBROUTINE" :: TID n :: rest ->
        let st = { toks = rest; lineno = header.lineno } in
        let params = parse_param_names header st in
        (Ast.Subroutine, n, params)
    | _ -> (
        match type_prefix header.tokens with
        | Some (ty, TID "FUNCTION" :: TID n :: rest) ->
            let st = { toks = rest; lineno = header.lineno } in
            let params = parse_param_names header st in
            (Ast.Function ty, n, params)
        | _ -> (
            match header.tokens with
            | TID "FUNCTION" :: TID n :: rest ->
                let st = { toks = rest; lineno = header.lineno } in
                let params = parse_param_names header st in
                (Ast.Function (Ast.implicit_type n), n, params)
            | _ -> perr ~line:header.lineno "expected unit header"))
  in
  (* declarations *)
  let acc = { types = []; dims = []; commons = []; params = [] } in
  let rec decl_loop () =
    match cur ps with
    | Some line when is_decl_line line ->
        ps.pos <- ps.pos + 1;
        (match parse_decl_line acc line with
        | () -> ()
        | exception Diag.Fatal d when ps.dg <> None ->
            Diag.emit (Option.get ps.dg) d);
        decl_loop ()
    | _ -> ()
  in
  decl_loop ();
  (* body; with a collector, a faulting statement is recorded and dropped
     and parsing resumes at the next statement boundary *)
  let rec body_loop stmts =
    match cur ps with
    | None -> (
        match ps.dg with
        | Some dg ->
            Diag.error dg Diag.Parse "missing END in unit %s" name;
            List.rev stmts
        | None -> perr "unexpected end of file in unit %s" name)
    | Some line when is_unit_end line ->
        ps.pos <- ps.pos + 1;
        List.rev stmts
    | Some line -> (
        ps.pos <- ps.pos + 1;
        match parse_stmt ps line with
        | stmt -> body_loop (stmt :: stmts)
        | exception Diag.Fatal d when ps.dg <> None ->
            Diag.emit (Option.get ps.dg) d;
            (* a half-parsed block construct may have left label bookkeeping
               behind; clear it so later loops are not miscounted *)
            Hashtbl.reset (pending_labels ());
            body_loop stmts)
  in
  let body = body_loop [] in
  (* assemble declarations: types first, then dims merge *)
  let tbl : (string, Ast.decl) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n, ty) ->
      let prev =
        try Hashtbl.find tbl n
        with Not_found -> { Ast.d_name = n; d_type = ty; d_dims = [] }
      in
      Hashtbl.replace tbl n { prev with Ast.d_type = ty })
    (List.rev acc.types);
  List.iter
    (fun (n, dims) ->
      let prev =
        try Hashtbl.find tbl n
        with Not_found ->
          { Ast.d_name = n; d_type = Ast.implicit_type n; d_dims = [] }
      in
      Hashtbl.replace tbl n { prev with Ast.d_dims = dims })
    (List.rev acc.dims);
  let decls = Hashtbl.fold (fun _ d l -> d :: l) tbl [] in
  let decls = List.sort (fun a b -> compare a.Ast.d_name b.Ast.d_name) decls in
  {
    u_name = name;
    u_kind = kind;
    u_params = params;
    u_decls = decls;
    u_commons = List.rev acc.commons;
    u_params_const = List.rev acc.params;
    u_body = body;
  }

(** Parse a whole source file into a program.  Strict: the first fault
    raises {!Diag.Fatal}. *)
let parse_program source : Ast.program =
  Hashtbl.reset (pending_labels ());
  let lines = Array.of_list (Lexer.logical_lines source) in
  let ps = { lines; pos = 0; dg = None } in
  let rec loop units =
    match cur ps with
    | None -> List.rev units
    | Some _ -> loop (parse_unit ps :: units)
  in
  { p_units = loop [] }

(* Recovery sync point: a plausible unit header. *)
let is_unit_header line =
  match line.tokens with
  | TID ("PROGRAM" | "SUBROUTINE" | "FUNCTION") :: TID _ :: _ -> true
  | _ -> (
      match type_prefix line.tokens with
      | Some (_, TID "FUNCTION" :: _) -> true
      | _ -> false)

(** Parse a whole source file, salvaging what the faults allow.

    Statement faults drop one statement (or one enclosing block construct),
    unit-header faults skip forward to the next unit boundary; every fault
    is accumulated as a located diagnostic.  Parsing stops early only when
    [max_errors] (default {!Diag.default_max_errors}) errors have been
    recorded.  Returns the units that survived plus the diagnostics. *)
let parse_program_robust ?max_errors source : Ast.program * Diag.t list =
  Hashtbl.reset (pending_labels ());
  let dg = Diag.collector ?max_errors () in
  let units = ref [] in
  (try
     let lines = Array.of_list (Lexer.logical_lines ~dg source) in
     let ps = { lines; pos = 0; dg = Some dg } in
     while cur ps <> None do
       match parse_unit ps with
       | u -> units := u :: !units
       | exception Diag.Fatal d ->
           Diag.emit dg d;
           Hashtbl.reset (pending_labels ());
           (* resync: skip to just past the next END, or to the next
              plausible unit header, whichever comes first *)
           let rec skip () =
             match cur ps with
             | None -> ()
             | Some l when is_unit_header l -> ()
             | Some l ->
                 ps.pos <- ps.pos + 1;
                 if not (is_unit_end l) then skip ()
           in
           skip ()
     done
   with Diag.Error_limit _ -> ());
  ({ Ast.p_units = List.rev !units }, Diag.to_list dg)
