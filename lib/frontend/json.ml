(** Minimal JSON values: a printer and a recursive-descent parser.

    The container ships no JSON library, and three subsystems now need
    one representation instead of three hand-rolled emitters: the
    provenance layer (verdict round-trips), the span tracer (Chrome
    [trace_event] export) and the bench schema reader (version-2
    backward compatibility).  The module lives in [frontend] — the
    lowest layer — so every library can use it without a cycle.

    The subset is exactly what those producers emit: no surrogate-pair
    decoding on input (escapes beyond the JSON basics are preserved
    verbatim as their codepoint when in the BMP), numbers are [float]
    with an integer fast path on output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.3f" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string (v : t) =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type pstate = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let fail st what =
  raise (Bad (Printf.sprintf "%s at offset %d" what st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.s then
                  fail st "truncated \\u escape";
                let hex = String.sub st.s st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                (* encode the BMP codepoint as UTF-8 *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st (Printf.sprintf "bad escape \\%C" c));
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse (s : string) : (t, string) result =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors (total: [Null]/default on shape mismatch)                 *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List xs -> xs | _ -> []
let to_obj = function Obj kvs -> kvs | _ -> []

let to_int ?(default = 0) = function
  | Int n -> n
  | Float f -> int_of_float f
  | _ -> default

let to_float ?(default = 0.0) = function
  | Float f -> f
  | Int n -> float_of_int n
  | _ -> default

let to_str ?(default = "") = function Str s -> s | _ -> default
let to_bool ?(default = false) = function Bool b -> b | _ -> default
