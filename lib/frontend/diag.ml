(** Structured diagnostics for every layer of the pipeline.

    A diagnostic is severity × error code × source location × message.
    Layers raise {!Fatal} for unrecoverable conditions (replacing the old
    bare [Lex_error]/[Parse_error] string exceptions) or {!emit} into a
    {!collector} when they can degrade and keep going.  The collector
    enforces a [--max-errors] cap so a pathological input cannot spam an
    unbounded diagnostic stream. *)

type severity = Error | Warning | Note

(** Which layer produced the diagnostic.  Codes are stable identifiers
    rendered in brackets, e.g. [error[parse] line 3: ...]. *)
type code =
  | Lex  (** tokenizer *)
  | Parse  (** Fortran parser *)
  | Annot  (** annotation language parser / instantiation *)
  | Inline  (** conventional inliner *)
  | Reverse  (** reverse-inline matcher *)
  | Normalize  (** constprop / induction / forward-subst passes *)
  | Parallel  (** parallelizer *)
  | Trap  (** runtime guard: fuel, call depth *)
  | Exec  (** interpreter / worker-pool failure *)
  | Timeout  (** pool watchdog: a job exceeded its deadline *)
  | Race  (** validation oracle: unexcused cross-iteration conflict *)
  | Verify  (** output-comparison harness / differential checker *)
  | Io  (** file system *)
  | Cli  (** command-line usage *)
  | Plan  (** demand-driven inlining planner *)

type loc = { l_line : int; l_col : int  (** 0 when unknown *) }

type t = {
  d_severity : severity;
  d_code : code;
  d_loc : loc option;
  d_unit : string option;
      (** owning program unit / routine (drivers may prefix the
          benchmark, e.g. ["MDG:INTERF"]); rendered before the location *)
  d_message : string;
  d_backtrace : string option;
      (** raw backtrace captured where the underlying exception was
          caught (salvage barriers); rendered only on request *)
}

exception Fatal of t
(** An unrecoverable diagnostic, caught at phase boundaries (or by the
    CLI driver, which renders it and exits 2). *)

let code_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Annot -> "annot"
  | Inline -> "inline"
  | Reverse -> "reverse"
  | Normalize -> "normalize"
  | Parallel -> "parallel"
  | Trap -> "trap"
  | Exec -> "exec"
  | Timeout -> "timeout"
  | Race -> "race"
  | Verify -> "verify"
  | Io -> "io"
  | Cli -> "cli"
  | Plan -> "plan"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let loc ?(col = 0) line = { l_line = line; l_col = col }

let make ?(severity = Error) ?loc ?unit_ ?backtrace code message =
  {
    d_severity = severity;
    d_code = code;
    d_loc = loc;
    d_unit = unit_;
    d_message = message;
    d_backtrace = backtrace;
  }

(** [fatal ?loc code fmt ...] raises {!Fatal} with a formatted message. *)
let fatal ?loc ?unit_ code fmt =
  Printf.ksprintf (fun s -> raise (Fatal (make ?loc ?unit_ code s))) fmt

(** Attach (or replace) the owning unit, e.g. a driver prefixing its
    benchmark name onto diagnostics salvaged from a deeper layer. *)
let with_unit unit_ (d : t) = { d with d_unit = Some unit_ }

let render (d : t) =
  let owner =
    match d.d_unit with None -> "" | Some u -> Printf.sprintf " %s" u
  in
  let where =
    match d.d_loc with
    | None -> (if owner = "" then "" else ":")
    | Some { l_line; l_col = 0 } -> Printf.sprintf " line %d:" l_line
    | Some { l_line; l_col } -> Printf.sprintf " line %d, col %d:" l_line l_col
  in
  Printf.sprintf "%s[%s]%s%s %s"
    (severity_name d.d_severity)
    (code_name d.d_code) owner where d.d_message

(* ------------------------------------------------------------------ *)
(* Collector                                                            *)
(* ------------------------------------------------------------------ *)

exception Error_limit of int
(** Raised by {!emit} when the error count reaches the collector's cap;
    recovery loops catch it and stop salvaging. *)

type collector = {
  mutable items : t list;  (** newest first *)
  mutable n_errors : int;
  mutable n_warnings : int;
  max_errors : int;
}

let default_max_errors = 20

let collector ?(max_errors = default_max_errors) () =
  { items = []; n_errors = 0; n_warnings = 0; max_errors = max 1 max_errors }

let emit dg (d : t) =
  dg.items <- d :: dg.items;
  (match d.d_severity with
  | Error -> dg.n_errors <- dg.n_errors + 1
  | Warning -> dg.n_warnings <- dg.n_warnings + 1
  | Note -> ());
  if d.d_severity = Error && dg.n_errors >= dg.max_errors then
    raise (Error_limit dg.n_errors)

let error dg ?loc ?unit_ ?backtrace code fmt =
  Printf.ksprintf (fun s -> emit dg (make ?loc ?unit_ ?backtrace code s)) fmt

let warn dg ?loc ?unit_ ?backtrace code fmt =
  Printf.ksprintf
    (fun s -> emit dg (make ~severity:Warning ?loc ?unit_ ?backtrace code s))
    fmt

let note dg ?loc ?unit_ code fmt =
  Printf.ksprintf
    (fun s -> emit dg (make ~severity:Note ?loc ?unit_ code s))
    fmt

let to_list dg = List.rev dg.items
let error_count dg = dg.n_errors
let warning_count dg = dg.n_warnings

(** Convert an arbitrary exception into a diagnostic (fault barriers wrap
    passes whose failure modes we cannot enumerate).  [backtrace], when
    given, is the raw backtrace captured at the same catch. *)
let of_exn ?(severity = Error) ?backtrace code (e : exn) : t =
  match e with
  | Fatal d ->
      let d = { d with d_severity = severity } in
      if d.d_backtrace = None then { d with d_backtrace = backtrace } else d
  | e -> make ~severity ?backtrace code (Printexc.to_string e)

let render_all (ds : t list) =
  String.concat "" (List.map (fun d -> render d ^ "\n") ds)

(** Exit-code contract: 0 clean, 1 error diagnostics but output salvaged,
    2 fatal (no output).  Warnings alone keep exit code 0. *)
let exit_code (ds : t list) =
  if List.exists (fun d -> d.d_severity = Error) ds then 1 else 0

let errors_in (ds : t list) =
  List.length (List.filter (fun d -> d.d_severity = Error) ds)

let warnings_in (ds : t list) =
  List.length (List.filter (fun d -> d.d_severity = Warning) ds)

(** One-line salvage summary for per-benchmark reporting, e.g.
    ["3 errors, 1 warning salvaged"]; [""] when the run was clean. *)
let summary (ds : t list) =
  let e = errors_in ds and w = warnings_in ds in
  if e = 0 && w = 0 then ""
  else
    let part n what =
      if n = 0 then []
      else [ Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") ]
    in
    String.concat ", " (part e "error" @ part w "warning") ^ " salvaged"
