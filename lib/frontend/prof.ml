(** Pass-level profiling: monotonic-clock pass timers plus work counters
    for the analyses that dominate compile time (dependence tests,
    annotation instantiation, reverse matching, normalization).

    Like {!Diag}, the representation lives in [frontend] — the lowest
    layer every library depends on — so the dependence tester and the
    inliners can tick counters without a dependency cycle; [Core.Prof]
    re-exports it with pipeline-level rendering.

    The interface is zero-cost when off: a profile is installed with
    {!with_profiling} into domain-local storage, and every tick or timer
    first checks the domain-local slot — when no profile is installed the
    instrumentation is a load and a branch.  Domain-local installation
    means the parallel suite driver can profile concurrent compilations
    independently: each worker domain sees only the profile of the task
    it is running. *)

external monotonic_ns : unit -> int64 = "parinline_monotonic_ns"

(** Work counters.  Mutable fields, read directly by reporters. *)
type counters = {
  mutable dep_tests_run : int;
      (** dependence pair tests attempted ([Ddtest.may_carry]) *)
  mutable dep_tests_independent : int;
      (** of those, pairs proven independent (the test decided) *)
  mutable dep_cache_hits : int;
      (** dependence tests answered from the memo table ([Dependence.Memo]) *)
  mutable dep_cache_misses : int;
      (** dependence tests actually computed (hits + misses = run) *)
  mutable annot_sites_inlined : int;
      (** annotation call sites successfully instantiated *)
  mutable reverse_sites_matched : int;
      (** tagged regions pattern-matched back into CALLs *)
  mutable stmts_normalized : int;
      (** statements swept by the normalization passes *)
  mutable iterations_traced : int;
      (** directive-loop iterations replayed under the access tracer *)
  mutable race_conflicts : int;
      (** cross-iteration conflicts the race detector witnessed *)
  mutable race_excused : int;
      (** of those, conflicts excused by PRIVATE/REDUCTION clauses *)
  mutable faults_injected : int;
      (** chaos faults fired ([Fault]); 0 whenever no plan is armed *)
  mutable requests_served : int;
      (** protocol requests answered by the analysis daemon ([Server]) *)
  mutable unit_cache_hits : int;
      (** of those, answered end-to-end from the content-hashed unit
          cache — no re-parse, no re-analysis *)
  mutable snapshot_restores : int;
      (** on-disk warm-cache snapshots successfully restored at startup *)
}

type t = {
  c : counters;
  mutable passes : (string * float) list;
      (** accumulated milliseconds per pass, insertion-ordered *)
}

let create () =
  {
    c =
      {
        dep_tests_run = 0;
        dep_tests_independent = 0;
        dep_cache_hits = 0;
        dep_cache_misses = 0;
        annot_sites_inlined = 0;
        reverse_sites_matched = 0;
        stmts_normalized = 0;
        iterations_traced = 0;
        race_conflicts = 0;
        race_excused = 0;
        faults_injected = 0;
        requests_served = 0;
        unit_cache_hits = 0;
        snapshot_restores = 0;
      };
    passes = [];
  }

(* The installed profile of the current domain, if any. *)
let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get slot
let enabled () = current () <> None

(** Install [p] as the current domain's profile for the duration of [f],
    restoring the previous profile afterwards (exceptions included). *)
let with_profiling (p : t) (f : unit -> 'a) : 'a =
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some p);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

(** [with_opt prof f]: profile under [Some p], plain call under [None] —
    the shape of the pipeline's optional [?prof] argument. *)
let with_opt (prof : t option) (f : unit -> 'a) : 'a =
  match prof with None -> f () | Some p -> with_profiling p f

(* Accumulate [ms] into the pass entry [name], keeping first-insertion
   order so reports read in pipeline order. *)
let add_pass (p : t) name ms =
  let rec go = function
    | [] -> [ (name, ms) ]
    | (n, v) :: tl when String.equal n name -> (n, v +. ms) :: tl
    | hd :: tl -> hd :: go tl
  in
  p.passes <- go p.passes

(* ---- telemetry bridge ----
   When a Metrics registry is armed, pass timings and the hot work
   counters also feed the live registry, independent of whether a
   per-run profile is installed — the daemon keeps per-request profiles
   short-lived but wants service-lifetime distributions.  All bridges
   are behind Metrics' own armed check (a load and a branch when off). *)

let m_dep_hits =
  Metrics.counter "parinline_dep_tests_total"
    ~help:"dependence pair tests by memo outcome"
    ~labels:[ ("memo", "hit") ]

let m_dep_misses =
  Metrics.counter "parinline_dep_tests_total" ~labels:[ ("memo", "miss") ]

let m_annot_sites =
  Metrics.counter "parinline_inline_sites_total"
    ~help:"call sites inlined, by inliner"
    ~labels:[ ("inliner", "annotation") ]

let m_reverse_matches =
  Metrics.counter "parinline_reverse_matches_total"
    ~help:"tagged regions pattern-matched back into CALLs"

let m_faults =
  Metrics.counter "parinline_faults_injected_total"
    ~help:"chaos faults fired by the armed plan"

(** Time [f] under the pass name [name] when a profile is installed;
    otherwise just run it.  Faulting passes still record their time (the
    robust pipeline salvages them, and the time was genuinely spent).
    When a Metrics registry is armed the duration also lands in the
    per-pass latency histogram, profile or no profile. *)
let time (name : string) (f : unit -> 'a) : 'a =
  let prof = current () in
  if prof = None && not (Metrics.on ()) then f ()
  else
    let t0 = monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        let ns = Int64.sub (monotonic_ns ()) t0 in
        (match prof with
        | Some p -> add_pass p name (Int64.to_float ns /. 1e6)
        | None -> ());
        if Metrics.on () then
          Metrics.observe_ns
            (Metrics.histogram "parinline_pass_duration_seconds"
               ~help:"pipeline pass wall time" ~labels:[ ("pass", name) ])
            (Int64.to_int ns))
      f

(* ---- ticks (no-ops when no profile is installed) ---- *)

(** One dependence-pair request.  [cached] distinguishes memo-table hits
    from tests actually computed, so [hits + misses = run] always holds
    and the deterministic perf gate can bound the expensive half. *)
let tick_dep_test ~independent ~cached =
  Metrics.incr (if cached then m_dep_hits else m_dep_misses);
  match current () with
  | None -> ()
  | Some p ->
      p.c.dep_tests_run <- p.c.dep_tests_run + 1;
      if cached then p.c.dep_cache_hits <- p.c.dep_cache_hits + 1
      else p.c.dep_cache_misses <- p.c.dep_cache_misses + 1;
      if independent then
        p.c.dep_tests_independent <- p.c.dep_tests_independent + 1

let tick_annot_site () =
  Metrics.incr m_annot_sites;
  match current () with
  | None -> ()
  | Some p -> p.c.annot_sites_inlined <- p.c.annot_sites_inlined + 1

let tick_reverse_match () =
  Metrics.incr m_reverse_matches;
  match current () with
  | None -> ()
  | Some p -> p.c.reverse_sites_matched <- p.c.reverse_sites_matched + 1

let add_stmts_normalized n =
  match current () with
  | None -> ()
  | Some p -> p.c.stmts_normalized <- p.c.stmts_normalized + n

let add_iterations_traced n =
  match current () with
  | None -> ()
  | Some p -> p.c.iterations_traced <- p.c.iterations_traced + n

(** One conflict witnessed by the race detector; [excused] when a
    PRIVATE/REDUCTION clause exempts it. *)
let tick_race_conflict ~excused =
  match current () with
  | None -> ()
  | Some p ->
      p.c.race_conflicts <- p.c.race_conflicts + 1;
      if excused then p.c.race_excused <- p.c.race_excused + 1

(** One chaos fault fired by [Fault] under the calling domain's profile.
    Also visible through the live registry ([parinline_faults_injected_total])
    even when no profile is installed. *)
let tick_fault_injected () =
  Metrics.incr m_faults;
  match current () with
  | None -> ()
  | Some p -> p.c.faults_injected <- p.c.faults_injected + 1

(** Add a detached counter snapshot into [p], field by field.  The
    analysis daemon runs every request under its own short-lived profile
    (domain-locally, possibly on a pool worker) and folds the result into
    one server-lifetime aggregate; like {!snapshot}, the explicit
    field list fails to compile when the record grows. *)
let absorb (p : t) (c : counters) =
  p.c.dep_tests_run <- p.c.dep_tests_run + c.dep_tests_run;
  p.c.dep_tests_independent <-
    p.c.dep_tests_independent + c.dep_tests_independent;
  p.c.dep_cache_hits <- p.c.dep_cache_hits + c.dep_cache_hits;
  p.c.dep_cache_misses <- p.c.dep_cache_misses + c.dep_cache_misses;
  p.c.annot_sites_inlined <- p.c.annot_sites_inlined + c.annot_sites_inlined;
  p.c.reverse_sites_matched <-
    p.c.reverse_sites_matched + c.reverse_sites_matched;
  p.c.stmts_normalized <- p.c.stmts_normalized + c.stmts_normalized;
  p.c.iterations_traced <- p.c.iterations_traced + c.iterations_traced;
  p.c.race_conflicts <- p.c.race_conflicts + c.race_conflicts;
  p.c.race_excused <- p.c.race_excused + c.race_excused;
  p.c.faults_injected <- p.c.faults_injected + c.faults_injected;
  p.c.requests_served <- p.c.requests_served + c.requests_served;
  p.c.unit_cache_hits <- p.c.unit_cache_hits + c.unit_cache_hits;
  p.c.snapshot_restores <- p.c.snapshot_restores + c.snapshot_restores

(* ---- readers ---- *)

(** Accumulated pass timings in milliseconds, pipeline order. *)
let pass_ms (p : t) = p.passes

let total_ms (p : t) = List.fold_left (fun a (_, ms) -> a +. ms) 0.0 p.passes

(** Copy of the counters, detached from further mutation.  Every field is
    copied explicitly: the previous [{ p.c with f = p.c.f }] spelling read
    as an update but relied on record-copy syntax for the freshness of the
    other seven fields, and silently kept "copying" if a field was added
    — this shape fails to compile instead when the record grows. *)
let snapshot (p : t) : counters =
  {
    dep_tests_run = p.c.dep_tests_run;
    dep_tests_independent = p.c.dep_tests_independent;
    dep_cache_hits = p.c.dep_cache_hits;
    dep_cache_misses = p.c.dep_cache_misses;
    annot_sites_inlined = p.c.annot_sites_inlined;
    reverse_sites_matched = p.c.reverse_sites_matched;
    stmts_normalized = p.c.stmts_normalized;
    iterations_traced = p.c.iterations_traced;
    race_conflicts = p.c.race_conflicts;
    race_excused = p.c.race_excused;
    faults_injected = p.c.faults_injected;
    requests_served = p.c.requests_served;
    unit_cache_hits = p.c.unit_cache_hits;
    snapshot_restores = p.c.snapshot_restores;
  }

(** Multi-line report: pass timings in pipeline order plus the work
    counters, e.g. for [parinline --profile]. *)
let render (p : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b "profile: pass timings (ms)\n";
  List.iter
    (fun (name, ms) ->
      Buffer.add_string b (Printf.sprintf "  %-14s %9.3f\n" name ms))
    (pass_ms p);
  Buffer.add_string b (Printf.sprintf "  %-14s %9.3f\n" "total" (total_ms p));
  let c = snapshot p in
  Buffer.add_string b
    (Printf.sprintf
       "counters: dep-tests %d run / %d independent (%d cached, %d \
        computed); annot-sites %d inlined; reverse %d matched; stmts %d \
        normalized\n"
       c.dep_tests_run c.dep_tests_independent c.dep_cache_hits
       c.dep_cache_misses c.annot_sites_inlined c.reverse_sites_matched
       c.stmts_normalized);
  if c.iterations_traced > 0 || c.race_conflicts > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "oracle: %d iterations traced; %d conflicts (%d excused by clause)\n"
         c.iterations_traced c.race_conflicts c.race_excused);
  if c.faults_injected > 0 then
    Buffer.add_string b
      (Printf.sprintf "chaos: %d fault%s injected\n" c.faults_injected
         (if c.faults_injected = 1 then "" else "s"));
  if c.requests_served > 0 || c.snapshot_restores > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "serve: %d request%s served (%d unit-cache hit%s); %d snapshot \
          restore%s\n"
         c.requests_served
         (if c.requests_served = 1 then "" else "s")
         c.unit_cache_hits
         (if c.unit_cache_hits = 1 then "" else "s")
         c.snapshot_restores
         (if c.snapshot_restores = 1 then "" else "s"));
  Buffer.contents b
