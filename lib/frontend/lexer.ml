(** Line-oriented lexer for the Fortran-77 subset.

    The source is free-form-ish: one statement per logical line, [!]
    comments, [&] line continuation at end of line, optional numeric
    statement labels, and [*] comment lines.  Keywords are recognized by the
    parser; the lexer just produces tokens with identifiers uppercased
    (Fortran is case-insensitive). *)

type token =
  | TINT of int
  | TREAL of float
  | TSTR of string
  | TID of string
  | TLP
  | TRP
  | TCOMMA
  | TCOLON
  | TPLUS
  | TMINUS
  | TSTAR
  | TSLASH
  | TPOW
  | TASSIGN  (** = *)
  | TEQ      (** .EQ. or == *)
  | TNE
  | TLT
  | TLE
  | TGT
  | TGE
  | TAND
  | TOR
  | TNOT
  | TTRUE
  | TFALSE
[@@deriving show { with_path = false }, eq]

(* Lexer faults raise [Diag.Fatal] with a real line/column location (the
   old bare [Lex_error of string] is gone).  [col] is 1-based. *)
let error ~line ~col fmt =
  Printf.ksprintf
    (fun s -> raise (Diag.Fatal (Diag.make ~loc:(Diag.loc ~col line) Diag.Lex s)))
    fmt

(** A logical source line: optional label, tokens, original line number. *)
type line = { label : int option; tokens : token list; lineno : int }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident c = is_alpha c || is_digit c || c = '_'

(* Dot-delimited operator words, e.g. [.EQ.]. *)
let dot_word = function
  | "EQ" -> Some TEQ
  | "NE" -> Some TNE
  | "LT" -> Some TLT
  | "LE" -> Some TLE
  | "GT" -> Some TGT
  | "GE" -> Some TGE
  | "AND" -> Some TAND
  | "OR" -> Some TOR
  | "NOT" -> Some TNOT
  | "TRUE" -> Some TTRUE
  | "FALSE" -> Some TFALSE
  | _ -> None

(* Try to read a dot-operator starting at s.[i] (which is '.').  Returns
   (token, next position) if the letters between the dots form an operator
   word. *)
let try_dot_op s i =
  let n = String.length s in
  let j = ref (i + 1) in
  while !j < n && is_alpha s.[!j] do
    incr j
  done;
  if !j < n && s.[!j] = '.' && !j > i + 1 then
    let word = String.uppercase_ascii (String.sub s (i + 1) (!j - i - 1)) in
    match dot_word word with Some t -> Some (t, !j + 1) | None -> None
  else None

(* Lex a numeric literal starting at position [i]; the first char is a digit
   or a '.' followed by a digit. *)
let lex_number lineno s i =
  let n = String.length s in
  let j = ref i in
  let buf = Buffer.create 16 in
  let is_real = ref false in
  while !j < n && is_digit s.[!j] do
    Buffer.add_char buf s.[!j];
    incr j
  done;
  (* Fractional part, unless the dot starts an operator word like .EQ. *)
  (if !j < n && s.[!j] = '.' then
     match try_dot_op s !j with
     | Some _ -> ()
     | None ->
         is_real := true;
         Buffer.add_char buf '.';
         incr j;
         while !j < n && is_digit s.[!j] do
           Buffer.add_char buf s.[!j];
           incr j
         done);
  (* Exponent: E or D (double) forms. *)
  (if
     !j < n
     && (s.[!j] = 'e' || s.[!j] = 'E' || s.[!j] = 'd' || s.[!j] = 'D')
     && !j + 1 < n
     && (is_digit s.[!j + 1]
        || ((s.[!j + 1] = '+' || s.[!j + 1] = '-')
           && !j + 2 < n
           && is_digit s.[!j + 2]))
   then begin
     is_real := true;
     Buffer.add_char buf 'e';
     incr j;
     if s.[!j] = '+' || s.[!j] = '-' then begin
       Buffer.add_char buf s.[!j];
       incr j
     end;
     while !j < n && is_digit s.[!j] do
       Buffer.add_char buf s.[!j];
       incr j
     done
   end);
  let text = Buffer.contents buf in
  let tok =
    if !is_real then TREAL (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> TINT v
      | None ->
          error ~line:lineno ~col:(i + 1) "invalid integer literal %S" text
  in
  (tok, !j)

(** Tokenize one logical line (comments already stripped). *)
let tokenize_line lineno s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\r' then go (i + 1) acc
      else if is_digit c then
        let tok, j = lex_number lineno s i in
        go j (tok :: acc)
      else if c = '.' && i + 1 < n && is_digit s.[i + 1] then
        let tok, j = lex_number lineno s i in
        go j (tok :: acc)
      else if c = '.' then (
        match try_dot_op s i with
        | Some (t, j) -> go j (t :: acc)
        | None -> error ~line:lineno ~col:(i + 1) "stray '.' in %S" s)
      else if is_alpha c || c = '_' then begin
        let j = ref i in
        while !j < n && is_ident s.[!j] do
          incr j
        done;
        let id = String.uppercase_ascii (String.sub s i (!j - i)) in
        go !j (TID id :: acc)
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let j = ref (i + 1) in
        let fin = ref None in
        while !fin = None do
          if !j >= n then
            error ~line:lineno ~col:(i + 1) "unterminated string"
          else if s.[!j] = '\'' then
            if !j + 1 < n && s.[!j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              j := !j + 2
            end
            else fin := Some (!j + 1)
          else begin
            Buffer.add_char buf s.[!j];
            incr j
          end
        done;
        go (Option.get !fin) (TSTR (Buffer.contents buf) :: acc)
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "**" -> go (i + 2) (TPOW :: acc)
        | "==" -> go (i + 2) (TEQ :: acc)
        | "/=" -> go (i + 2) (TNE :: acc)
        | "<=" -> go (i + 2) (TLE :: acc)
        | ">=" -> go (i + 2) (TGE :: acc)
        | ".N" | ".A" | ".O" | ".T" | ".F" | ".E" | ".L" | ".G" ->
            error ~line:lineno ~col:(i + 1) "bad dot operator in %S" s
        | _ -> (
            match c with
            | '(' -> go (i + 1) (TLP :: acc)
            | ')' -> go (i + 1) (TRP :: acc)
            | ',' -> go (i + 1) (TCOMMA :: acc)
            | ':' -> go (i + 1) (TCOLON :: acc)
            | '+' -> go (i + 1) (TPLUS :: acc)
            | '-' -> go (i + 1) (TMINUS :: acc)
            | '*' -> go (i + 1) (TSTAR :: acc)
            | '/' -> go (i + 1) (TSLASH :: acc)
            | '=' -> go (i + 1) (TASSIGN :: acc)
            | '<' -> go (i + 1) (TLT :: acc)
            | '>' -> go (i + 1) (TGT :: acc)
            | _ -> error ~line:lineno ~col:(i + 1) "unexpected character %C" c)
  in
  go 0 []

(* Strip a '!' comment, respecting string literals. *)
let strip_comment s =
  let n = String.length s in
  let rec go i in_str =
    if i >= n then s
    else if in_str then go (i + 1) (s.[i] <> '\'')
    else if s.[i] = '\'' then go (i + 1) true
    else if s.[i] = '!' then String.sub s 0 i
    else go (i + 1) false
  in
  go 0 false

let is_comment_line s =
  let t = String.trim s in
  String.length t = 0 || t.[0] = '*' || t.[0] = '!'

(** Split a source string into labeled, tokenized logical lines.

    With [dg], tokenizer faults are emitted into the collector and the
    offending logical line is dropped, so one bad statement costs one
    statement rather than the whole file; without it the first fault
    raises {!Diag.Fatal}. *)
let logical_lines ?(dg : Diag.collector option) source =
  let raw = String.split_on_char '\n' source in
  (* Join continuations: a line ending in '&' continues on the next. *)
  let rec join lineno acc = function
    | [] -> List.rev acc
    | l :: rest ->
        if is_comment_line l then join (lineno + 1) acc rest
        else
          let l = strip_comment l in
          let rec absorb l consumed rest =
            let t = String.trim l in
            (* trailing '&' continues onto the next line *)
            if String.length t > 0 && t.[String.length t - 1] = '&' then
              match rest with
              | [] -> (
                  match dg with
                  | Some dg ->
                      Diag.error dg
                        ~loc:(Diag.loc ~col:(String.length l) lineno)
                        Diag.Lex "dangling continuation";
                      (String.sub t 0 (String.length t - 1), consumed, [])
                  | None ->
                      error ~line:lineno ~col:(String.length l)
                        "dangling continuation")
              | next :: rest' ->
                  let next =
                    if is_comment_line next then "" else strip_comment next
                  in
                  absorb
                    (String.sub t 0 (String.length t - 1) ^ " " ^ next)
                    (consumed + 1) rest'
            else
              (* a next line beginning with '&' continues this one *)
              match rest with
              | next :: rest' when not (is_comment_line next) -> (
                  let nt = String.trim (strip_comment next) in
                  match nt with
                  | "" -> (l, consumed, rest)
                  | _ when nt.[0] = '&' ->
                      absorb
                        (t ^ " " ^ String.sub nt 1 (String.length nt - 1))
                        (consumed + 1) rest'
                  | _ -> (l, consumed, rest))
              | _ -> (l, consumed, rest)
          in
          let merged, consumed, rest = absorb l 0 rest in
          join (lineno + 1 + consumed) ((lineno, merged) :: acc) rest
  in
  let lines = join 1 [] raw in
  List.filter_map
    (fun (lineno, text) ->
      if String.trim text = "" then None
      else
        match
          if Fault.check "frontend.lexer.line" then
            error ~line:lineno ~col:0 "injected fault at frontend.lexer.line";
          tokenize_line lineno text
        with
        | [] -> None
        | TINT label :: rest when rest <> [] ->
            Some { label = Some label; tokens = rest; lineno }
        | toks -> Some { label = None; tokens = toks; lineno }
        | exception Diag.Fatal d when dg <> None ->
            (* salvage: record the fault, drop this statement *)
            Diag.emit (Option.get dg) d;
            None)
    lines
