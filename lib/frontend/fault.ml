(** Deterministic fault injection for chaos testing.

    Every layer that can fail exposes a named *fault point* — a call to
    {!point}, {!check} or {!stall} with a stable dotted site name
    ([layer.component\[.detail\]], e.g. ["dependence.ddtest"],
    ["runtime.pool.chunk"]).  With no plan armed these calls are a single
    uncontended atomic load and a branch, the same zero-cost-when-off
    contract as {!Prof}, {!Span} and the runtime tracer, so production
    paths pay nothing.

    A {!plan} is parsed from a seeded schedule spec ([SEED\[:RULES\]],
    see {!parse_spec}) and armed with {!with_plan} for a dynamic extent.
    Rules are deterministic: "trip the Nth arrival at site X", "trip
    every Kth arrival", or a per-arrival probability decided by a
    splitmix64 hash of (seed, site, arrival) — no hidden RNG state, so
    the same spec over the same work trips the same faults, regardless
    of domain interleaving (arrival counters are shared across domains
    under a mutex; probability draws depend only on the arrival number).

    Faults surface as {!Injected} (registered with a readable printer)
    or, at sites with their own structured failure channel, via {!check}
    — the parser converts a tripped check into [Diag.Fatal] so its
    recovery loop exercises the real salvage path, and the interpreter
    converts one into a fuel-style trap. *)

type trigger =
  | Nth of int  (** fire on exactly the [n]th arrival (1-based) *)
  | Every of int  (** fire on every [k]th arrival *)
  | Prob of float  (** fire each arrival with probability [p] *)

type action =
  | Raise  (** raise {!Injected} (or make {!check} return [true]) *)
  | Stall of float  (** report a stall of this many seconds at {!stall} *)

type rule = { r_site : string; r_trigger : trigger; r_action : action }
(** [r_site] is an exact site name, or a prefix when it ends in [*]
    (["dependence.*"], or bare ["*"] for every site). *)

(** One fault that actually fired, for post-run reporting. *)
type fired = { f_site : string; f_arrival : int; f_stalled : bool }

type plan = {
  p_seed : int;
  p_rules : rule list;
  p_spec : string;  (** the spec string the plan was parsed from *)
  p_m : Mutex.t;
  p_arrivals : (string, int ref) Hashtbl.t;
  mutable p_fired : fired list;  (** newest first *)
}

exception Injected of string * int
(** [Injected (site, arrival)]: the fault tripped at [site] on its
    [arrival]th visit.  Classified transient by the pool's retry logic. *)

let () =
  Printexc.register_printer (function
    | Injected (site, n) ->
        Some (Printf.sprintf "injected fault at site %s (arrival %d)" site n)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

(* The armed plan, if any.  A single global slot (not domain-local): the
   suite driver's worker domains must see the plan armed by the caller,
   and fault points are rare enough under chaos that the plan mutex is
   uncontended in practice. *)
let installed : plan option Atomic.t = Atomic.make None

let on () = Atomic.get installed <> None

(** Arm [pl] for the duration of [f], restoring the previous plan
    afterwards (exceptions included).  Not reentrant across domains:
    arm from the control domain only. *)
let with_plan (pl : plan) (f : unit -> 'a) : 'a =
  let prev = Atomic.get installed in
  Atomic.set installed (Some pl);
  Fun.protect ~finally:(fun () -> Atomic.set installed prev) f

let with_opt (pl : plan option) (f : unit -> 'a) : 'a =
  match pl with None -> f () | Some pl -> with_plan pl f

(* ------------------------------------------------------------------ *)
(* Deterministic probability draws                                     *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer: a well-mixed 64-bit hash, self-contained so
   draws are stable across OCaml versions (no Hashtbl.hash). *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fnv1a (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  !h

(* Uniform draw in [0,1) from (seed, site, arrival), order-independent. *)
let u01 ~seed ~site ~arrival =
  let z =
    Int64.add
      (Int64.logxor (fnv1a site) (Int64.of_int (seed * 0x9e3779b9)))
      (Int64.of_int (arrival * 0x85ebca6b))
  in
  Int64.to_float (Int64.shift_right_logical (mix64 z) 11) /. 9007199254740992.0

(* ------------------------------------------------------------------ *)
(* Firing                                                              *)
(* ------------------------------------------------------------------ *)

let site_matches pattern site =
  if String.equal pattern "*" then true
  else if String.length pattern > 0
          && pattern.[String.length pattern - 1] = '*' then
    let prefix = String.sub pattern 0 (String.length pattern - 1) in
    String.length site >= String.length prefix
    && String.equal (String.sub site 0 (String.length prefix)) prefix
  else String.equal pattern site

let trigger_fires trig ~seed ~site ~arrival =
  match trig with
  | Nth k -> arrival = k
  | Every k -> k > 0 && arrival mod k = 0
  | Prob p -> u01 ~seed ~site ~arrival < p

(* Count the arrival and return the first matching rule's action, if the
   rule's action kind is admissible for this query ([stall_ok] selects
   Stall rules, its negation Raise rules — a stall-only site ignores
   Raise rules and vice versa, so one global rule cannot demand a sleep
   from a layer that cannot sleep). *)
let decide pl site ~stall_ok =
  Mutex.lock pl.p_m;
  let r =
    match Hashtbl.find_opt pl.p_arrivals site with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace pl.p_arrivals site r;
        r
  in
  incr r;
  let arrival = !r in
  let admissible ru =
    match ru.r_action with Stall _ -> stall_ok | Raise -> not stall_ok
  in
  let rec scan = function
    | [] -> None
    | ru :: tl ->
        if admissible ru
           && site_matches ru.r_site site
           && trigger_fires ru.r_trigger ~seed:pl.p_seed ~site ~arrival
        then Some ru.r_action
        else scan tl
  in
  let act = scan pl.p_rules in
  (match act with
  | Some a ->
      pl.p_fired <-
        { f_site = site; f_arrival = arrival; f_stalled = a <> Raise }
        :: pl.p_fired
  | None -> ());
  Mutex.unlock pl.p_m;
  (act, arrival)

(** Fault point: raises {!Injected} when the armed plan trips here. *)
let point (site : string) : unit =
  match Atomic.get installed with
  | None -> ()
  | Some pl -> (
      match decide pl site ~stall_ok:false with
      | Some Raise, n ->
          Prof.tick_fault_injected ();
          raise (Injected (site, n))
      | _ -> ())

(** Fault point for sites with their own structured failure channel:
    returns [true] when tripped; the caller raises its native error
    (e.g. [Diag.Fatal] in the parser, a trap in the interpreter). *)
let check (site : string) : bool =
  match Atomic.get installed with
  | None -> false
  | Some pl -> (
      match decide pl site ~stall_ok:false with
      | Some Raise, _ ->
          Prof.tick_fault_injected ();
          true
      | _ -> false)

(** Stall point: seconds the caller should sleep to simulate a hung
    worker ([0.] when not tripped).  The sleep itself happens in the
    caller — this layer has no [Unix]. *)
let stall (site : string) : float =
  match Atomic.get installed with
  | None -> 0.0
  | Some pl -> (
      match decide pl site ~stall_ok:true with
      | Some (Stall s), _ ->
          Prof.tick_fault_injected ();
          s
      | _ -> 0.0)

(* ---- readers ---- *)

(** Faults that fired, in firing order. *)
let fired (pl : plan) = List.rev pl.p_fired

let fired_count (pl : plan) = List.length pl.p_fired
let spec (pl : plan) = pl.p_spec
let seed (pl : plan) = pl.p_seed

(** Fired count of the globally armed plan ([0] when none is armed).
    The daemon reads this before and after each request to attribute
    fired sites to log lines. *)
let armed_fired_count () : int =
  match Atomic.get installed with
  | None -> 0
  | Some pl ->
      Mutex.lock pl.p_m;
      let n = List.length pl.p_fired in
      Mutex.unlock pl.p_m;
      n

(** Site names of faults fired on the armed plan beyond the first [n0],
    oldest first.  Concurrent requests may attribute each other's faults
    (the fired list is global); that imprecision is acceptable for a
    request log. *)
let armed_fired_since (n0 : int) : string list =
  match Atomic.get installed with
  | None -> []
  | Some pl ->
      Mutex.lock pl.p_m;
      let l = pl.p_fired in
      Mutex.unlock pl.p_m;
      let extra = List.length l - n0 in
      if extra <= 0 then []
      else
        List.rev
          (List.filteri (fun i _ -> i < extra) l |> List.map (fun f -> f.f_site))

(** One-line post-run summary, e.g.
    ["chaos seed 7: 3 faults fired (dependence.ddtest x2, inliner.annot x1)"]. *)
let summary (pl : plan) =
  let by_site = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun f ->
      match Hashtbl.find_opt by_site f.f_site with
      | Some r -> incr r
      | None ->
          Hashtbl.replace by_site f.f_site (ref 1);
          order := f.f_site :: !order)
    (fired pl);
  let parts =
    List.rev_map
      (fun s -> Printf.sprintf "%s x%d" s !(Hashtbl.find by_site s))
      !order
  in
  let n = fired_count pl in
  Printf.sprintf "chaos seed %d: %d fault%s fired%s" pl.p_seed n
    (if n = 1 then "" else "s")
    (if parts = [] then "" else " (" ^ String.concat ", " parts ^ ")")

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

(* Grammar (documented in DESIGN.md):

     SPEC  := SEED [':' RULE (',' RULE)*]
     RULE  := SITE '=' TRIG ['~' MILLIS]
     TRIG  := INT            exactly the INTth arrival
            | '*' INT        every INTth arrival
            | FLOAT '%'      probability per arrival

   A bare SEED means the default background schedule: 0.5% probability
   at every site.  '~MILLIS' turns the rule into a stall (honored only
   at stall-capable sites). *)

let default_rules = [ { r_site = "*"; r_trigger = Prob 0.005; r_action = Raise } ]

let parse_rule (s : string) : (rule, string) result =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "rule %S: expected SITE=TRIGGER" s)
  | Some i -> (
      let site = String.sub s 0 i in
      let rhs = String.sub s (i + 1) (String.length s - i - 1) in
      if site = "" then Error (Printf.sprintf "rule %S: empty site" s)
      else
        let trig_s, stall_ms =
          match String.index_opt rhs '~' with
          | None -> (rhs, None)
          | Some j ->
              ( String.sub rhs 0 j,
                Some (String.sub rhs (j + 1) (String.length rhs - j - 1)) )
        in
        let trigger =
          if trig_s = "" then Error (Printf.sprintf "rule %S: empty trigger" s)
          else if trig_s.[0] = '*' then
            match
              int_of_string_opt (String.sub trig_s 1 (String.length trig_s - 1))
            with
            | Some k when k > 0 -> Ok (Every k)
            | _ -> Error (Printf.sprintf "rule %S: bad period" s)
          else if trig_s.[String.length trig_s - 1] = '%' then
            match
              float_of_string_opt
                (String.sub trig_s 0 (String.length trig_s - 1))
            with
            | Some p when p >= 0.0 && p <= 100.0 -> Ok (Prob (p /. 100.0))
            | _ -> Error (Printf.sprintf "rule %S: bad probability" s)
          else
            match int_of_string_opt trig_s with
            | Some n when n > 0 -> Ok (Nth n)
            | _ -> Error (Printf.sprintf "rule %S: bad arrival number" s)
        in
        match trigger with
        | Error e -> Error e
        | Ok trig -> (
            match stall_ms with
            | None -> Ok { r_site = site; r_trigger = trig; r_action = Raise }
            | Some ms -> (
                match float_of_string_opt ms with
                | Some v when v >= 0.0 ->
                    Ok
                      {
                        r_site = site;
                        r_trigger = trig;
                        r_action = Stall (v /. 1000.0);
                      }
                | _ -> Error (Printf.sprintf "rule %S: bad stall millis" s))))

(** Parse [SEED\[:RULES\]] into a plan.  [Error] carries a usage
    message; the CLI renders it as a [Diag.Cli] diagnostic. *)
let parse_spec (s : string) : (plan, string) result =
  let seed_s, rules_s =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match int_of_string_opt (String.trim seed_s) with
  | None -> Error (Printf.sprintf "chaos spec %S: expected SEED[:RULES]" s)
  | Some seed -> (
      let rules =
        match rules_s with
        | None | Some "" -> Ok default_rules
        | Some rs ->
            List.fold_left
              (fun acc r ->
                match (acc, parse_rule (String.trim r)) with
                | Error e, _ -> Error e
                | _, Error e -> Error e
                | Ok acc, Ok ru -> Ok (ru :: acc))
              (Ok [])
              (String.split_on_char ',' rs)
            |> Result.map List.rev
      in
      match rules with
      | Error e -> Error e
      | Ok p_rules ->
          Ok
            {
              p_seed = seed;
              p_rules;
              p_spec = s;
              p_m = Mutex.create ();
              p_arrivals = Hashtbl.create 32;
              p_fired = [];
            })

(** A plan built directly from rules (tests). *)
let plan_of_rules ?(seed = 0) rules =
  {
    p_seed = seed;
    p_rules = rules;
    p_spec = Printf.sprintf "%d:<rules>" seed;
    p_m = Mutex.create ();
    p_arrivals = Hashtbl.create 32;
    p_fired = [];
  }
