(** Abstract syntax for the Fortran-77 subset consumed by the parallelizer.

    The subset covers everything the PERFECT-style benchmarks of the paper
    need: subroutines and functions, COMMON blocks, PARAMETER constants,
    multi-dimensional arrays (including assumed-size array parameters),
    labeled and block [DO] loops, logical and block [IF], [CALL], [RETURN],
    [STOP], and list-directed output.  Two extensions support the paper's
    machinery: OpenMP metadata attached to loops by the parallelizer, and
    [Tagged] regions bracketing code produced by annotation-based inlining. *)

type dtype =
  | Integer
  | Real
  | Double
  | Logical
  | Character
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Not [@@deriving show { with_path = false }, eq, ord]

(** One bound of a Fortran-90-style array section; [None] means the
    declared bound.  Sections appear only in annotation-derived code and are
    lowered to loops before dependence analysis. *)
type section_bound = expr option * expr option * expr option

and expr =
  | Int_const of int
  | Real_const of float
  | Str_const of string
  | Logical_const of bool
  | Var of string
  | Array_ref of string * expr list
  | Func_call of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Section of string * section_bound list
[@@deriving show { with_path = false }, eq, ord]

type lvalue =
  | Lvar of string
  | Larray of string * expr list
  | Lsection of string * section_bound list
[@@deriving show { with_path = false }, eq, ord]

(** Reduction operators recognized by the parallelizer. *)
type red_op = Rsum | Rprod | Rmax | Rmin
[@@deriving show { with_path = false }, eq, ord]

(** OpenMP clauses the parallelizer attaches to a [DO] loop. *)
type omp = {
  omp_private : string list;
  omp_reductions : (red_op * string) list;
}
[@@deriving show { with_path = false }, eq]

(** Provenance tag for a region produced by annotation-based inlining.
    [tag_callee] and [tag_actuals] record the original call so the reverse
    inliner can restore it even if pattern matching were to fail. *)
type tag = { tag_id : int; tag_callee : string; tag_actuals : expr list }
[@@deriving show { with_path = false }, eq]

type stmt = { sid : int; node : stmt_node }

and stmt_node =
  | Assign of lvalue * expr
  | Do_loop of do_loop
  | If of expr * stmt list * stmt list
  | Call of string * expr list
  | Return
  | Stop of string option
  | Print of expr list
  | Continue
  | Tagged of tag * stmt list

and do_loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : expr;
  body : stmt list;
  do_label : int option;
  parallel : omp option;
  loop_id : int;  (** stable across inlining copies; used for Table II *)
  do_line : int;
      (** source line of the DO statement (0 = synthesized); inlined
          copies keep the callee's line — provenance, not position *)
}
[@@deriving show { with_path = false }, eq]

type dim = Dim_star | Dim_expr of expr
[@@deriving show { with_path = false }, eq]

type decl = { d_name : string; d_type : dtype; d_dims : dim list }
[@@deriving show { with_path = false }, eq]

type unit_kind = Main | Subroutine | Function of dtype
[@@deriving show { with_path = false }, eq]

type program_unit = {
  u_name : string;
  u_kind : unit_kind;
  u_params : string list;
  u_decls : decl list;
  u_commons : (string * string list) list;
  u_params_const : (string * expr) list;  (** PARAMETER (name = expr) *)
  u_body : stmt list;
}

type program = { p_units : program_unit list }

(* ------------------------------------------------------------------ *)
(* Constructors and id management                                      *)
(* ------------------------------------------------------------------ *)

(* Domain-local: the suite driver compiles benchmarks on concurrent
   domains, and shared counters would race — losing increments can hand
   two statements of one program the same id.  Per-domain counters plus a
   per-compilation [reset_ids] keep ids deterministic regardless of how
   tasks are scheduled. *)
let stmt_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let loop_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let tag_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_sid () =
  let r = Domain.DLS.get stmt_counter in
  incr r;
  !r

let fresh_loop_id () =
  let r = Domain.DLS.get loop_counter in
  incr r;
  !r

let fresh_tag_id () =
  let r = Domain.DLS.get tag_counter in
  incr r;
  !r

(** Reset the calling domain's id counters; used by tests and by the
    suite driver (per compilation task) for reproducible ids. *)
let reset_ids () =
  Domain.DLS.get stmt_counter := 0;
  Domain.DLS.get loop_counter := 0;
  Domain.DLS.get tag_counter := 0

let mk node = { sid = fresh_sid (); node }

let mk_loop ?(label = None) ?(parallel = None) ?(line = 0) index lo hi step
    body =
  mk
    (Do_loop
       {
         index;
         lo;
         hi;
         step;
         body;
         do_label = label;
         parallel;
         loop_id = fresh_loop_id ();
         do_line = line;
       })

let int_ n = Int_const n
let var v = Var v
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)

(* ------------------------------------------------------------------ *)
(* Generic traversals                                                  *)
(* ------------------------------------------------------------------ *)

(** Fold over every sub-expression of [e], innermost last. *)
let rec fold_expr f acc e =
  let acc =
    match e with
    | Int_const _ | Real_const _ | Str_const _ | Logical_const _ | Var _ -> acc
    | Array_ref (_, args) | Func_call (_, args) ->
        List.fold_left (fold_expr f) acc args
    | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
    | Unop (_, a) -> fold_expr f acc a
    | Section (_, bounds) ->
        List.fold_left
          (fun acc (a, b, c) ->
            let g acc = function Some e -> fold_expr f acc e | None -> acc in
            g (g (g acc a) b) c)
          acc bounds
  in
  f acc e

(** Rewrite an expression bottom-up with [f]. *)
let rec map_expr f e =
  let e' =
    match e with
    | Int_const _ | Real_const _ | Str_const _ | Logical_const _ | Var _ -> e
    | Array_ref (a, args) -> Array_ref (a, List.map (map_expr f) args)
    | Func_call (a, args) -> Func_call (a, List.map (map_expr f) args)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Section (a, bounds) ->
        Section
          ( a,
            List.map
              (fun (x, y, z) ->
                let g = Option.map (map_expr f) in
                (g x, g y, g z))
              bounds )
  in
  f e'

let map_lvalue f = function
  | Lvar v -> (
      (* allow f to rename the variable via a Var round-trip *)
      match f (Var v) with Var v' -> Lvar v' | _ -> Lvar v)
  | Larray (a, args) -> Larray (a, List.map (map_expr f) args)
  | Lsection (a, bounds) ->
      Lsection
        ( a,
          List.map
            (fun (x, y, z) ->
              let g = Option.map (map_expr f) in
              (g x, g y, g z))
            bounds )

(** Map over every statement bottom-up, preserving [sid]s. *)
let rec map_stmts f stmts = List.concat_map (map_stmt f) stmts

and map_stmt f s =
  let node =
    match s.node with
    | Do_loop l -> Do_loop { l with body = map_stmts f l.body }
    | If (c, t, e) -> If (c, map_stmts f t, map_stmts f e)
    | Tagged (tag, body) -> Tagged (tag, map_stmts f body)
    | n -> n
  in
  f { s with node }

(** Fold over every statement, pre-order. *)
let rec fold_stmts f acc stmts = List.fold_left (fold_stmt f) acc stmts

and fold_stmt f acc s =
  let acc = f acc s in
  match s.node with
  | Do_loop l -> fold_stmts f acc l.body
  | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
  | Tagged (_, body) -> fold_stmts f acc body
  | Assign _ | Call _ | Return | Stop _ | Print _ | Continue -> acc

(** Rewrite every expression appearing in a statement list. *)
let map_exprs_in_stmts f stmts =
  let fe = map_expr f in
  map_stmts
    (fun s ->
      let node =
        match s.node with
        | Assign (lv, e) -> Assign (map_lvalue f lv, fe e)
        | Do_loop l ->
            Do_loop { l with lo = fe l.lo; hi = fe l.hi; step = fe l.step }
        | If (c, t, e) -> If (fe c, t, e)
        | Call (n, args) -> Call (n, List.map fe args)
        | Print es -> Print (List.map fe es)
        | Tagged (tag, body) ->
            Tagged ({ tag with tag_actuals = List.map fe tag.tag_actuals }, body)
        | (Return | Stop _ | Continue) as n -> n
      in
      [ { s with node } ])
    stmts

(** All loops in a statement list, pre-order. *)
let collect_loops stmts =
  List.rev
    (fold_stmts
       (fun acc s ->
         match s.node with Do_loop l -> l :: acc | _ -> acc)
       [] stmts)

(** Variables read by an expression (array names included). *)
let expr_vars e =
  fold_expr
    (fun acc e ->
      match e with
      | Var v -> v :: acc
      | Array_ref (a, _) | Func_call (a, _) | Section (a, _) -> a :: acc
      | _ -> acc)
    [] e

let lvalue_name = function
  | Lvar v | Larray (v, _) | Lsection (v, _) -> v

let lvalue_indices = function
  | Lvar _ -> []
  | Larray (_, idx) -> idx
  | Lsection (_, _) -> []

(** Structural equality on statements ignoring [sid]s and loop ids. *)
let rec equal_stmt_structure s1 s2 = equal_node s1.node s2.node

and equal_node n1 n2 =
  match (n1, n2) with
  | Assign (l1, e1), Assign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | Do_loop l1, Do_loop l2 ->
      String.equal l1.index l2.index && equal_expr l1.lo l2.lo
      && equal_expr l1.hi l2.hi && equal_expr l1.step l2.step
      && equal_body l1.body l2.body
  | If (c1, t1, e1), If (c2, t2, e2) ->
      equal_expr c1 c2 && equal_body t1 t2 && equal_body e1 e2
  | Call (n1, a1), Call (n2, a2) ->
      String.equal n1 n2 && List.length a1 = List.length a2
      && List.for_all2 equal_expr a1 a2
  | Return, Return | Continue, Continue -> true
  | Stop m1, Stop m2 -> Option.equal String.equal m1 m2
  | Print e1, Print e2 ->
      List.length e1 = List.length e2 && List.for_all2 equal_expr e1 e2
  | Tagged (t1, b1), Tagged (t2, b2) ->
      String.equal t1.tag_callee t2.tag_callee && equal_body b1 b2
  | _ -> false

and equal_body b1 b2 =
  List.length b1 = List.length b2 && List.for_all2 equal_stmt_structure b1 b2

let find_unit program name =
  List.find_opt
    (fun u -> String.equal u.u_name name)
    program.p_units

let find_unit_exn program name =
  match find_unit program name with
  | Some u -> u
  | None -> invalid_arg (Printf.sprintf "find_unit_exn: no unit %s" name)

(** Replace a unit (by name) in a program. *)
let replace_unit program u =
  {
    p_units =
      List.map
        (fun u' -> if String.equal u'.u_name u.u_name then u else u')
        program.p_units;
  }

let find_decl u name =
  List.find_opt (fun d -> String.equal d.d_name name) u.u_decls

(** Fortran implicit typing: names starting with I..N are INTEGER.  A
    leading '?' (reverse-inliner unification marker for a formal) is
    skipped so markers type like the formal they stand for. *)
let implicit_type name =
  let name =
    if String.length name > 0 && name.[0] = '?' then
      String.sub name 1 (String.length name - 1)
    else name
  in
  if String.length name = 0 then Real
  else
    match name.[0] with 'I' .. 'N' | 'i' .. 'n' -> Integer | _ -> Real

let type_of_var u name =
  match find_decl u name with
  | Some d -> d.d_type
  | None -> implicit_type name

let is_array u name =
  match find_decl u name with Some d -> d.d_dims <> [] | None -> false

(** Names of all units in the program, used to resolve Array_ref vs call. *)
let unit_names program = List.map (fun u -> u.u_name) program.p_units
