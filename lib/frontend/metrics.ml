(** Live telemetry: a process-wide metrics registry with counters,
    gauges, and log-bucketed latency histograms.

    {!Prof} answers "where did this one run spend its time" — it is
    per-run, domain-local, and post-hoc.  This module answers the
    service-shaped questions a long-lived [parinline serve] daemon gets
    asked while it is running: request latency distributions (p50 / p90 /
    p99), cache hit counters per operation, pool queue-wait vs execute
    time, live gauges (requests in flight, uptime).  It is the data
    source for the daemon's [metrics] protocol op and the Prometheus-style
    text exposition behind [parinline client --op metrics].

    The contract matches {!Fault} and {!Prof}:

    - {b Zero-cost when off.}  A registry is armed in a single global
      [Atomic] slot (not domain-local — pool worker domains must feed the
      same registry as the control domain).  Every [incr] / [observe]
      first loads that slot; with no registry armed the instrumentation
      is one uncontended atomic load and a branch.  Arming a registry
      never changes analysis output — only observation.

    - {b Per-domain shards.}  Each domain lazily registers a private
      shard (cached in [Domain.DLS]) and ticks it without locks; a
      {!snapshot} merges all shards.  Histogram merge is an elementwise
      bucket sum, so it is associative and commutative — shard order
      cannot change the report.  Snapshot reads of other domains' shards
      are deliberately unsynchronized: counters are immediate ints (no
      tearing), and metrics tolerate being a tick stale.

    - {b Log-spaced buckets.}  Latencies are recorded in nanoseconds
      into buckets with 8 sub-buckets per power of two (values 0–7 ns
      are exact).  Bucket width is at most 12.5% of its lower bound, so
      a quantile estimated by linear interpolation inside one bucket is
      within ~12.5% of the true order statistic — accurate enough for an
      SLO gate, in a few hundred ints of memory per histogram. *)

external monotonic_ns : unit -> int64 = "parinline_monotonic_ns"

(* ------------------------------------------------------------------ *)
(* Bucket scheme                                                       *)
(* ------------------------------------------------------------------ *)

(* Values 0..7 ns map to buckets 0..7 exactly.  For v >= 8 with
   k = floor(log2 v), the three bits below the leading bit select one of
   8 sub-buckets: index = 8k + ((v >> (k-3)) land 7) - 16.  Index 8 is
   [8,9), index 15 is [15,16), index 16 is [16,18), ... — contiguous,
   monotone, and every bucket spans at most 1/8 of its lower bound. *)

let n_buckets = 488 (* covers k up to 62: the full positive int63 range *)

let log2i n =
  (* floor(log2 n) for n >= 1 *)
  let k = ref 0 and v = ref n in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let bucket_of_ns (ns : int) : int =
  if ns < 8 then if ns < 0 then 0 else ns
  else
    let k = log2i ns in
    let idx = (8 * k) + ((ns lsr (k - 3)) land 7) - 16 in
    if idx >= n_buckets then n_buckets - 1 else idx

(** Inclusive-lower / exclusive-upper bounds of a bucket, in ns (floats:
    the topmost octaves overflow a tagged int). *)
let bucket_bounds (idx : int) : float * float =
  if idx < 8 then (float_of_int idx, float_of_int (idx + 1))
  else
    let k = (idx + 16) / 8 and sub = (idx + 16) mod 8 in
    let step = Float.of_int (1 lsl (k - 3)) in
    let lo = Float.of_int (1 lsl k) +. (float_of_int sub *. step) in
    (lo, lo +. step)

(* ------------------------------------------------------------------ *)
(* Metric identity                                                     *)
(* ------------------------------------------------------------------ *)

type kind = Counter | Gauge | Histogram

type meta = {
  m_id : int;
  m_family : string;
  m_labels : (string * string) list;  (** sorted by label key *)
  m_kind : kind;
}

type counter = int
type gauge = int
type histogram = int

(* Handles are interned process-wide (independent of which registry is
   armed): the same (family, labels, kind) always yields the same id, so
   a handle may be created statically at module init or dynamically per
   request — the dynamic path is one mutex + hashtable probe. *)
let names_m = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let metas : (int, meta) Hashtbl.t = Hashtbl.create 64
let helps : (string, string) Hashtbl.t = Hashtbl.create 64
let n_metas = ref 0

let intern (kind : kind) ?help ?(labels = []) (family : string) : int =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let key =
    family ^ "\000"
    ^ String.concat "\000" (List.map (fun (k, v) -> k ^ "\001" ^ v) labels)
  in
  Mutex.lock names_m;
  let id =
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
        let id = !n_metas in
        incr n_metas;
        Hashtbl.replace ids key id;
        Hashtbl.replace metas id { m_id = id; m_family = family; m_labels = labels; m_kind = kind };
        id
  in
  (match help with
  | Some h when not (Hashtbl.mem helps family) -> Hashtbl.replace helps family h
  | _ -> ());
  Mutex.unlock names_m;
  id

let counter ?help ?labels family : counter = intern Counter ?help ?labels family
let gauge ?help ?labels family : gauge = intern Gauge ?help ?labels family

let histogram ?help ?labels family : histogram =
  intern Histogram ?help ?labels family

(* ------------------------------------------------------------------ *)
(* Registry and shards                                                 *)
(* ------------------------------------------------------------------ *)

type hist_cell = {
  mutable h_count : int;
  mutable h_sum_ns : int;
  mutable h_min_ns : int;  (** [max_int] while empty *)
  mutable h_max_ns : int;
  h_buckets : int array;
}

type cell = C_counter of int ref | C_hist of hist_cell

type shard = { mutable s_cells : cell option array }

type t = {
  r_m : Mutex.t;
  mutable r_shards : shard list;
  r_gauges : (int, float) Hashtbl.t;  (** gauges are global, mutex-set *)
}

let create () =
  { r_m = Mutex.create (); r_shards = []; r_gauges = Hashtbl.create 16 }

(* The armed registry, if any.  A global slot for the same reason as
   {!Fault.installed}: worker domains must see it. *)
let armed : t option Atomic.t = Atomic.make None

let on () = Atomic.get armed <> None

(** Arm [r] for the duration of [f], restoring the previous registry
    afterwards (exceptions included).  Arm from the control domain only. *)
let with_metrics (r : t) (f : unit -> 'a) : 'a =
  let prev = Atomic.get armed in
  Atomic.set armed (Some r);
  Fun.protect ~finally:(fun () -> Atomic.set armed prev) f

(** Arm [r] open-endedly (the daemon arms at startup, disarms at drain). *)
let install (r : t) = Atomic.set armed (Some r)

let uninstall (r : t) =
  match Atomic.get armed with
  | Some r' when r' == r -> Atomic.set armed None
  | _ -> ()

let shard_slot : (t * shard) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let my_shard (r : t) : shard =
  match Domain.DLS.get shard_slot with
  | Some (r', s) when r' == r -> s
  | _ ->
      let s = { s_cells = Array.make 64 None } in
      Mutex.lock r.r_m;
      r.r_shards <- s :: r.r_shards;
      Mutex.unlock r.r_m;
      Domain.DLS.set shard_slot (Some (r, s));
      s

let cell (s : shard) (id : int) (make : unit -> cell) : cell =
  if id >= Array.length s.s_cells then begin
    let n = ref (Array.length s.s_cells) in
    while id >= !n do
      n := !n * 2
    done;
    let a = Array.make !n None in
    Array.blit s.s_cells 0 a 0 (Array.length s.s_cells);
    s.s_cells <- a
  end;
  match s.s_cells.(id) with
  | Some c -> c
  | None ->
      let c = make () in
      s.s_cells.(id) <- Some c;
      c

(* ------------------------------------------------------------------ *)
(* Ticks (one atomic load + branch when no registry is armed)          *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) (c : counter) : unit =
  match Atomic.get armed with
  | None -> ()
  | Some r -> (
      match cell (my_shard r) c (fun () -> C_counter (ref 0)) with
      | C_counter n -> n := !n + by
      | C_hist _ -> ())

let fresh_hist () =
  C_hist
    {
      h_count = 0;
      h_sum_ns = 0;
      h_min_ns = max_int;
      h_max_ns = 0;
      h_buckets = Array.make n_buckets 0;
    }

let observe_ns (h : histogram) (ns : int) : unit =
  match Atomic.get armed with
  | None -> ()
  | Some r -> (
      let ns = if ns < 0 then 0 else ns in
      match cell (my_shard r) h fresh_hist with
      | C_hist hc ->
          hc.h_count <- hc.h_count + 1;
          hc.h_sum_ns <- hc.h_sum_ns + ns;
          if ns < hc.h_min_ns then hc.h_min_ns <- ns;
          if ns > hc.h_max_ns then hc.h_max_ns <- ns;
          let b = bucket_of_ns ns in
          hc.h_buckets.(b) <- hc.h_buckets.(b) + 1
      | C_counter _ -> ())

(** Time [f] into histogram [h] when a registry is armed; otherwise just
    run it.  Faulting work still records its time. *)
let time (h : histogram) (f : unit -> 'a) : 'a =
  if Atomic.get armed = None then f ()
  else
    let t0 = monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        observe_ns h (Int64.to_int (Int64.sub (monotonic_ns ()) t0)))
      f

let set_gauge (g : gauge) (v : float) : unit =
  match Atomic.get armed with
  | None -> ()
  | Some r ->
      Mutex.lock r.r_m;
      Hashtbl.replace r.r_gauges g v;
      Mutex.unlock r.r_m

let add_gauge (g : gauge) (dv : float) : unit =
  match Atomic.get armed with
  | None -> ()
  | Some r ->
      Mutex.lock r.r_m;
      let v = match Hashtbl.find_opt r.r_gauges g with Some v -> v | None -> 0.0 in
      Hashtbl.replace r.r_gauges g (v +. dv);
      Mutex.unlock r.r_m

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hsnap = {
  hs_count : int;
  hs_sum_ns : int;
  hs_min_ns : int;  (** 0 when empty *)
  hs_max_ns : int;
  hs_buckets : (int * int) list;
      (** (bucket index, count), index-ascending, non-zero entries only *)
}

let empty_hsnap =
  { hs_count = 0; hs_sum_ns = 0; hs_min_ns = 0; hs_max_ns = 0; hs_buckets = [] }

(** Merge two histogram snapshots.  Elementwise bucket sum with min/max
    union; the empty snapshot is the identity, so the merge is
    associative and commutative — shard order cannot change totals. *)
let merge_hist (a : hsnap) (b : hsnap) : hsnap =
  if a.hs_count = 0 then b
  else if b.hs_count = 0 then a
  else
    let rec zip xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (i, n) :: xt, (j, m) :: yt ->
          if i < j then (i, n) :: zip xt ys
          else if j < i then (j, m) :: zip xs yt
          else (i, n + m) :: zip xt yt
    in
    {
      hs_count = a.hs_count + b.hs_count;
      hs_sum_ns = a.hs_sum_ns + b.hs_sum_ns;
      hs_min_ns = min a.hs_min_ns b.hs_min_ns;
      hs_max_ns = max a.hs_max_ns b.hs_max_ns;
      hs_buckets = zip a.hs_buckets b.hs_buckets;
    }

(** Quantile estimate in nanoseconds for [q] in [0,1]: walk the
    cumulative bucket counts to the target rank and interpolate linearly
    inside the bucket, clamped to the observed min/max.  Monotone in [q]
    by construction (cumulative walk + linear interpolation). *)
let quantile (h : hsnap) (q : float) : float =
  if h.hs_count = 0 then 0.0
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.hs_count in
    let rec walk cum = function
      | [] -> float_of_int h.hs_max_ns
      | (idx, n) :: tl ->
          let cum' = cum + n in
          if float_of_int cum' >= target then
            let lo, hi = bucket_bounds idx in
            let inside =
              if n = 0 then 0.0
              else (target -. float_of_int cum) /. float_of_int n
            in
            lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 inside))
          else walk cum' tl
    in
    let est = walk 0 h.hs_buckets in
    Float.max (float_of_int h.hs_min_ns) (Float.min (float_of_int h.hs_max_ns) est)

type sample = S_counter of int | S_gauge of float | S_hist of hsnap

type snapshot = (meta * sample) list
(** Sorted by (family, labels) for deterministic rendering. *)

let hsnap_of_cell (hc : hist_cell) : hsnap =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if hc.h_buckets.(i) > 0 then buckets := (i, hc.h_buckets.(i)) :: !buckets
  done;
  let count = hc.h_count in
  {
    hs_count = count;
    hs_sum_ns = hc.h_sum_ns;
    hs_min_ns = (if count = 0 then 0 else hc.h_min_ns);
    hs_max_ns = hc.h_max_ns;
    hs_buckets = !buckets;
  }

(** Merge all shards (and gauges) into one sorted sample list. *)
let snapshot (r : t) : snapshot =
  Mutex.lock r.r_m;
  let shards = r.r_shards in
  let gauges = Hashtbl.fold (fun id v acc -> (id, v) :: acc) r.r_gauges [] in
  Mutex.unlock r.r_m;
  let acc : (int, sample) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let cells = s.s_cells in
      Array.iteri
        (fun id c ->
          match c with
          | None -> ()
          | Some (C_counter n) ->
              let prev =
                match Hashtbl.find_opt acc id with
                | Some (S_counter p) -> p
                | _ -> 0
              in
              Hashtbl.replace acc id (S_counter (prev + !n))
          | Some (C_hist hc) ->
              let prev =
                match Hashtbl.find_opt acc id with
                | Some (S_hist p) -> p
                | _ -> empty_hsnap
              in
              Hashtbl.replace acc id (S_hist (merge_hist prev (hsnap_of_cell hc))))
        cells)
    shards;
  List.iter (fun (id, v) -> Hashtbl.replace acc id (S_gauge v)) gauges;
  Mutex.lock names_m;
  let metas_of id = Hashtbl.find_opt metas id in
  let samples =
    Hashtbl.fold
      (fun id s acc ->
        match metas_of id with Some m -> (m, s) :: acc | None -> acc)
      acc []
  in
  Mutex.unlock names_m;
  List.sort
    (fun (a, _) (b, _) ->
      match compare a.m_family b.m_family with
      | 0 -> compare a.m_labels b.m_labels
      | c -> c)
    samples

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape_label_value (v : string) =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels ?extra (labels : (string * string) list) : string =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
           labels)
    ^ "}"

let fmt_f (v : float) = Printf.sprintf "%.9g" v
let ns_to_s (ns : float) = ns /. 1e9

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

(** Prometheus-style text exposition.  One [# TYPE] comment per family;
    histograms render cumulative [_bucket{le="..."}] lines (bounds in
    seconds), [_sum] / [_count], and a companion [<family>_quantile]
    gauge family carrying the p50/p90/p99 estimates. *)
let to_prometheus (snap : snapshot) : string =
  let b = Buffer.create 4096 in
  let families : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header fam kind =
    if not (Hashtbl.mem families fam) then begin
      Hashtbl.replace families fam ();
      (match Hashtbl.find_opt helps fam with
      | Some h -> Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" fam h)
      | None -> ());
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" fam kind)
    end
  in
  (* counters and gauges first, then histograms (each histogram family is
     contiguous anyway because the snapshot is family-sorted) *)
  List.iter
    (fun (m, s) ->
      match s with
      | S_counter n ->
          header m.m_family "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m.m_family (render_labels m.m_labels) n)
      | S_gauge v ->
          header m.m_family "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" m.m_family (render_labels m.m_labels)
               (fmt_f v))
      | S_hist _ -> ())
    snap;
  List.iter
    (fun (m, s) ->
      match s with
      | S_hist h ->
          header m.m_family "histogram";
          let cum = ref 0 in
          List.iter
            (fun (idx, n) ->
              cum := !cum + n;
              let _, hi = bucket_bounds idx in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" m.m_family
                   (render_labels m.m_labels ~extra:("le", fmt_f (ns_to_s hi)))
                   !cum))
            h.hs_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" m.m_family
               (render_labels m.m_labels ~extra:("le", "+Inf"))
               h.hs_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" m.m_family
               (render_labels m.m_labels)
               (fmt_f (ns_to_s (float_of_int h.hs_sum_ns))));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m.m_family
               (render_labels m.m_labels) h.hs_count)
      | _ -> ())
    snap;
  List.iter
    (fun (m, s) ->
      match s with
      | S_hist h ->
          let fam = m.m_family ^ "_quantile" in
          header fam "gauge";
          List.iter
            (fun (qs, q) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" fam
                   (render_labels m.m_labels ~extra:("quantile", qs))
                   (fmt_f (ns_to_s (quantile h q)))))
            quantiles
      | _ -> ())
    snap;
  Buffer.contents b

let name_with_labels (m : meta) =
  m.m_family ^ render_labels m.m_labels

let ns_to_ms (ns : float) = ns /. 1e6

(** JSON form of a snapshot (histograms carry count / sum / min / max /
    p50 / p90 / p99, all times in milliseconds). *)
let to_json (snap : snapshot) : Json.t =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (m, s) ->
      let key = name_with_labels m in
      match s with
      | S_counter n -> counters := (key, Json.Int n) :: !counters
      | S_gauge v -> gauges := (key, Json.Float v) :: !gauges
      | S_hist h ->
          hists :=
            ( key,
              Json.Obj
                [
                  ("count", Json.Int h.hs_count);
                  ("sum_ms", Json.Float (ns_to_ms (float_of_int h.hs_sum_ns)));
                  ("min_ms", Json.Float (ns_to_ms (float_of_int h.hs_min_ns)));
                  ("max_ms", Json.Float (ns_to_ms (float_of_int h.hs_max_ns)));
                  ("p50_ms", Json.Float (ns_to_ms (quantile h 0.5)));
                  ("p90_ms", Json.Float (ns_to_ms (quantile h 0.9)));
                  ("p99_ms", Json.Float (ns_to_ms (quantile h 0.99)));
                ] )
            :: !hists)
    snap;
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !hists));
    ]
