(** Post-parse resolution: the parser cannot distinguish [F(X)] as an array
    reference from a function call, so it produces [Array_ref] everywhere.
    This pass rewrites references whose name is an intrinsic or a FUNCTION
    unit -- and not a locally declared array -- into [Func_call]. *)

open Ast

let function_names program =
  List.filter_map
    (fun u ->
      match u.u_kind with Function _ -> Some u.u_name | _ -> None)
    program.p_units

let resolve_unit ~functions (u : program_unit) =
  let is_local_array name = is_array u name in
  let is_function name =
    (not (is_local_array name))
    && (Intrinsics.is_intrinsic name || List.mem name functions)
  in
  let fix e =
    match e with
    | Array_ref (name, args) when is_function name -> Func_call (name, args)
    | e -> e
  in
  { u with u_body = map_exprs_in_stmts fix u.u_body }

let resolve_program (p : program) =
  let functions = function_names p in
  { p_units = List.map (resolve_unit ~functions) p.p_units }

(** Parse and resolve in one step -- the usual entry point.  Strict: the
    first fault raises {!Diag.Fatal}. *)
let parse source = resolve_program (Parser.parse_program source)

(** Fault-tolerant variant: salvages the units that parse, accumulating
    located diagnostics for the rest (see {!Parser.parse_program_robust}). *)
let parse_robust ?max_errors source : program * Diag.t list =
  let p, diags = Parser.parse_program_robust ?max_errors source in
  (resolve_program p, diags)
