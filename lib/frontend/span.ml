(** Span tracing: begin/end events over the compilation phases.

    Where {!Prof} answers "how much time did each pass take in total",
    the span tracer answers "what happened, when, on which domain":
    every instrumented region (pipeline phase, per-loop analysis,
    dependence test, annotation site, reverse match, driver task) emits
    a begin/end event pair carrying a monotonic-ns timestamp and the
    emitting domain id.  The event stream exports as Chrome
    [trace_event] JSON ([--trace-out FILE]) for flame-graph inspection
    in [chrome://tracing] / Perfetto.

    Discipline mirrors {!Prof}: a sink is installed into domain-local
    storage for the duration of a run, and every instrumentation site
    first checks the domain-local slot — when no sink is installed a
    span is a load and a branch around the traced function.  Unlike a
    profile, one sink may be installed on several domains at once (the
    suite driver's workers all feed the run's single sink), so the
    event buffer is mutex-protected; contention is irrelevant at phase
    granularity and acceptable at dependence-test granularity.

    The buffer is bounded ([max_events], default 1M): a span that would
    overflow emits nothing (neither B nor E — the pair is reserved at
    begin time, keeping the stream balanced) and is counted in
    [dropped]. *)

type ph = B  (** span begin *) | E  (** span end *) | I  (** instant *)

type event = {
  e_name : string;  (** region name, e.g. ["parallelize"], ["dep-test"] *)
  e_cat : string;  (** category: pipeline | parallelize | ddtest | inline | reverse | driver *)
  e_unit : string;  (** owning program unit / benchmark; [""] when n/a *)
  e_loop : int;  (** owning loop id; [-1] when n/a *)
  e_ph : ph;
  e_ns : int64;  (** monotonic timestamp *)
  e_dom : int;  (** emitting domain id *)
}

type sink = {
  mutable events : event list;  (** newest first *)
  mutable count : int;
  mutable dropped : int;  (** spans (not events) dropped on overflow *)
  max_events : int;
  m : Mutex.t;
}

let default_max_events = 1_000_000

let create ?(max_events = default_max_events) () =
  { events = []; count = 0; dropped = 0; max_events = max 2 max_events; m = Mutex.create () }

(* The installed sink of the current domain, if any.  Same slot
   discipline as [Prof]; the sink itself may be shared across domains. *)
let slot : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get slot
let on () = current () <> None

(** Install [s] as the calling domain's sink for the duration of [f],
    restoring the previous sink afterwards (exceptions included). *)
let with_tracing (s : sink) (f : unit -> 'a) : 'a =
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some s);
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

(** [with_opt sink f]: trace under [Some s], plain call under [None]. *)
let with_opt (sink : sink option) (f : unit -> 'a) : 'a =
  match sink with None -> f () | Some s -> with_tracing s f

let domain_id () = (Domain.self () :> int)

let push s ev =
  Mutex.lock s.m;
  s.events <- ev :: s.events;
  Mutex.unlock s.m

(* Reserve room for a B/E pair; [false] = dropped (emit neither). *)
let reserve_pair s =
  Mutex.lock s.m;
  let ok = s.count + 2 <= s.max_events in
  if ok then s.count <- s.count + 2 else s.dropped <- s.dropped + 1;
  Mutex.unlock s.m;
  ok

(** Trace [f] as a span named [name].  The end event is emitted even
    when [f] raises: a fault-isolated pass that crashes still closes its
    span, so exported traces stay balanced. *)
let span ?(cat = "pipeline") ?(unit_ = "") ?(loop = -1) (name : string)
    (f : unit -> 'a) : 'a =
  match current () with
  | None -> f ()
  | Some s ->
      if not (reserve_pair s) then f ()
      else begin
        let dom = domain_id () in
        let mk ph =
          {
            e_name = name;
            e_cat = cat;
            e_unit = unit_;
            e_loop = loop;
            e_ph = ph;
            e_ns = Prof.monotonic_ns ();
            e_dom = dom;
          }
        in
        push s (mk B);
        Fun.protect ~finally:(fun () -> push s (mk E)) f
      end

(** One-off marker (verdict emission, salvage events, ...). *)
let instant ?(cat = "pipeline") ?(unit_ = "") ?(loop = -1) (name : string) =
  match current () with
  | None -> ()
  | Some s ->
      Mutex.lock s.m;
      if s.count + 1 <= s.max_events then begin
        s.count <- s.count + 1;
        s.events <-
          {
            e_name = name;
            e_cat = cat;
            e_unit = unit_;
            e_loop = loop;
            e_ph = I;
            e_ns = Prof.monotonic_ns ();
            e_dom = domain_id ();
          }
          :: s.events
      end
      else s.dropped <- s.dropped + 1;
      Mutex.unlock s.m

(* ---- readers ---- *)

(** Events in chronological (emission) order. *)
let events (s : sink) : event list =
  Mutex.lock s.m;
  let evs = List.rev s.events in
  Mutex.unlock s.m;
  evs

let dropped (s : sink) = s.dropped

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let ph_name = function B -> "B" | E -> "E" | I -> "i"

(** Export as Chrome [trace_event] JSON (the ["traceEvents"] envelope
    understood by chrome://tracing and Perfetto).  Timestamps are
    microseconds relative to the first event; [tid] is the emitting
    domain, so driver workers render as parallel tracks. *)
let to_chrome_json (s : sink) : string =
  let evs = events s in
  let t0 = match evs with [] -> 0L | e :: _ -> e.e_ns in
  let json_of_event (e : event) =
    let args =
      (if e.e_unit = "" then [] else [ ("unit", Json.Str e.e_unit) ])
      @ if e.e_loop < 0 then [] else [ ("loop", Json.Int e.e_loop) ]
    in
    Json.Obj
      ([
         ("name", Json.Str e.e_name);
         ("cat", Json.Str e.e_cat);
         ("ph", Json.Str (ph_name e.e_ph));
         ( "ts",
           Json.Float (Int64.to_float (Int64.sub e.e_ns t0) /. 1e3) );
         ("pid", Json.Int 1);
         ("tid", Json.Int e.e_dom);
       ]
      @ (if e.e_ph = I then [ ("s", Json.Str "t") ] else [])
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map json_of_event evs));
         ("displayTimeUnit", Json.Str "ms");
         ("droppedSpans", Json.Int s.dropped);
       ])
  ^ "\n"
