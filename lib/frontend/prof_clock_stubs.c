/* Monotonic clock for the pass profiler (Prof).  Unix.gettimeofday is
   wall-clock and can jump backwards under NTP; pass timings need a
   monotonic source.  clock_gettime(CLOCK_MONOTONIC) is POSIX and needs
   no extra linkage on glibc >= 2.17 / musl / macOS. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#ifndef CLOCK_MONOTONIC
#define CLOCK_MONOTONIC CLOCK_REALTIME
#endif

CAMLprim value parinline_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_int64(0);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
