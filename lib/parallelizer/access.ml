(** Contextual access collection for one candidate loop: every memory
    access of the body, with the stack of *inner* loops enclosing it, a
    conditional-context flag, and its source position. *)

open Frontend
open Analysis

type t = {
  ca_name : string;
  ca_index : Ast.expr list;  (** [] = scalar or whole-array access *)
  ca_write : bool;
  ca_inner : (string * Ast.expr * Ast.expr) list;
      (** inner loops enclosing the access (index, lo, hi), outermost first *)
  ca_cond : bool;  (** under an IF inside the candidate body *)
  ca_path : int list;
      (** enclosing IF branches, as [2*sid + side] markers, outermost
          first; a write kills a read when its path is a prefix of the
          read's path *)
  ca_order : int;  (** source order within the body *)
  ca_sid : int;
}

let collect (body : Ast.stmt list) : t list =
  (* local, not module-level: [collect] runs on concurrent domains under
     the suite driver, and a shared counter would scramble the source
     ordering the kill analysis depends on *)
  let order_counter = ref 0 in
  let out = ref [] in
  let emit ~inner ~path (a : Usedef.access) =
    incr order_counter;
    out :=
      {
        ca_name = a.acc_name;
        ca_index = a.acc_index;
        ca_write = a.acc_write;
        ca_inner = inner;
        ca_cond = path <> [];
        ca_path = path;
        ca_order = !order_counter;
        ca_sid = a.acc_sid;
      }
      :: !out
  in
  let rec walk inner path stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.node with
        | Ast.Do_loop l ->
            (* bound expressions evaluated outside the inner loop *)
            List.iter
              (fun e ->
                List.iter (emit ~inner ~path)
                  (Usedef.expr_reads s.sid e []))
              [ l.lo; l.hi; l.step ];
            emit ~inner ~path
              {
                Usedef.acc_name = l.index;
                acc_index = [];
                acc_write = true;
                acc_sid = s.sid;
              };
            walk (inner @ [ (l.index, l.lo, l.hi) ]) path l.body
        | Ast.If (c, t, e) ->
            List.iter (emit ~inner ~path) (Usedef.expr_reads s.sid c []);
            walk inner (path @ [ (2 * s.sid) ]) t;
            walk inner (path @ [ (2 * s.sid) + 1 ]) e
        | Ast.Tagged (_, b) -> walk inner path b
        | _ ->
            List.iter (emit ~inner ~path)
              (Usedef.accesses_of_stmts [ s ]
              |> List.map (fun (a : Usedef.access) -> a)))
      stmts
  in
  walk [] [] body;
  List.rev !out

(** Accesses grouped by base name. *)
let by_name accesses =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let prev = try Hashtbl.find tbl a.ca_name with Not_found -> [] in
      Hashtbl.replace tbl a.ca_name (a :: prev))
    accesses;
  Hashtbl.fold (fun name accs acc -> (name, List.rev accs) :: acc) tbl []
  |> List.sort compare
