(** Structured parallelization verdicts: every DO-loop decision as a
    first-class, queryable artifact.

    The paper's headline results are *attributions* — which parallel
    loops are lost under conventional inlining, which extra loops are
    gained by annotation-based inlining, and why.  A free-form reason
    string cannot be joined across configurations; a {!t} can.  Each
    analyzed loop gets a stable {!loop_id} (owning unit, source line,
    index variable, nesting path, plus the Table-II gensym id used to
    join copies and configurations) and an {!outcome}: [Parallel] with
    its PRIVATE/REDUCTION clauses, or [Serial] with the *complete* list
    of {!blocker}s — the parallelizer collects every obstacle instead
    of bailing at the first.

    Rendering contract: {!render_blocker} reproduces verbatim the
    legacy [rep_reason] strings ("subroutine call", "carried dependence
    on array X", ...), so the first blocker's rendering is exactly what
    the pre-verdict pipeline reported.  {!describe_blocker} is the rich
    human-readable form used by [parinline explain].  JSON round-trips
    through {!to_json}/{!of_json} for the bench schema and the tests. *)

open Frontend

(* ------------------------------------------------------------------ *)
(* Stable loop identity                                                *)
(* ------------------------------------------------------------------ *)

(** Identity of an analyzed loop.  The structural fields ([lid_unit],
    [lid_line], [lid_index], [lid_path]) are a pure function of the
    source text — stable across gensym resets and across processes; the
    [lid_loop] gensym is the within-run join key shared by inlining
    copies (Table II identity).  An inlined copy keeps the callee's
    [lid_line] but reports the *host* unit in [lid_unit]. *)
type loop_id = {
  lid_unit : string;  (** owning program unit (routine) at analysis time *)
  lid_line : int;  (** source line of the DO statement; 0 = synthesized *)
  lid_index : string;  (** DO index variable *)
  lid_path : string list;
      (** index variables of the enclosing DO loops, outermost first *)
  lid_loop : int;  (** gensym loop id, shared by copies of this loop *)
}

(** Stable textual key, e.g. ["INTERF:I.J@42"]: unit, dotted nesting
    path ending in the loop's own index, source line.  Gensym-free. *)
let key (l : loop_id) =
  Printf.sprintf "%s:%s@%d" l.lid_unit
    (String.concat "." (l.lid_path @ [ l.lid_index ]))
    l.lid_line

(* ------------------------------------------------------------------ *)
(* Blockers                                                            *)
(* ------------------------------------------------------------------ *)

(** Why a loop stayed serial.  Every constructor carries enough to
    reproduce the paper's loop-level attribution mechanically. *)
type blocker =
  | Io_stmt  (** I/O, STOP or RETURN in the body *)
  | Unknown_call of string  (** CALL to an un-inlined subroutine *)
  | Unknown_func of string  (** reference to an impure/opaque function *)
  | Index_write  (** the loop index is assigned in the body *)
  | Scalar_blocker of { sb_name : string; sb_why : string }
      (** scalar neither private nor a recognized reduction *)
  | Dep_cycle of {
      dc_array : string;  (** array carrying the dependence *)
      dc_ref_a : string;  (** deciding pair, rendered, e.g. ["XDT(I)"] *)
      dc_ref_b : string;
      dc_test : string;
          (** which dependence test fired / why the pair was assumed
              dependent: ["inconclusive"], ["symbolic-step"],
              ["subscript-shape"], ... *)
    }
  | Array_not_private of string
      (** the dependent array also resisted privatization *)
  | Nonunit_peel
      (** live-out privatization needs last-iteration peeling, which
          requires a unit step *)
  | Not_analyzed of string
      (** no verdict reached this loop in this configuration (crashed
          unit, unreachable copy); the payload says why *)

let blocker_kind = function
  | Io_stmt -> "io-stmt"
  | Unknown_call _ -> "unknown-call"
  | Unknown_func _ -> "unknown-func"
  | Index_write -> "index-write"
  | Scalar_blocker _ -> "scalar-blocker"
  | Dep_cycle _ -> "dep-cycle"
  | Array_not_private _ -> "array-not-private"
  | Nonunit_peel -> "nonunit-peel"
  | Not_analyzed _ -> "not-analyzed"

(** Legacy rendering: byte-identical to the pre-verdict [rep_reason]
    strings.  [rep_reason] is defined as the first blocker under this
    rendering, so no test-visible text changes. *)
let render_blocker = function
  | Io_stmt -> "I/O, STOP or RETURN"
  | Unknown_call _ -> "subroutine call"
  | Unknown_func _ -> "function call"
  | Index_write -> "loop index modified in body"
  | Scalar_blocker { sb_name; sb_why } ->
      Printf.sprintf "scalar %s: %s" sb_name sb_why
  | Dep_cycle { dc_array; _ } ->
      Printf.sprintf "carried dependence on array %s" dc_array
  | Array_not_private a -> Printf.sprintf "array %s not privatizable" a
  | Nonunit_peel -> "live-out privatization in non-unit-step loop"
  | Not_analyzed why -> Printf.sprintf "not analyzed (%s)" why

(** Rich rendering for [parinline explain] and the diff reports. *)
let describe_blocker = function
  | Io_stmt -> "I/O, STOP or RETURN in loop body"
  | Unknown_call c -> Printf.sprintf "opaque subroutine call CALL %s" c
  | Unknown_func f -> Printf.sprintf "opaque function reference %s()" f
  | Index_write -> "loop index modified in body"
  | Scalar_blocker { sb_name; sb_why } ->
      Printf.sprintf "scalar %s: %s" sb_name sb_why
  | Dep_cycle { dc_array; dc_ref_a; dc_ref_b; dc_test } ->
      Printf.sprintf "carried dependence on array %s (%s vs %s; %s)" dc_array
        dc_ref_a dc_ref_b dc_test
  | Array_not_private a ->
      Printf.sprintf "array %s resists privatization (no covering write)" a
  | Nonunit_peel -> "live-out privatization in non-unit-step loop"
  | Not_analyzed why -> Printf.sprintf "not analyzed (%s)" why

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

(** Parallel-outcome payload: the emitted clauses plus whether the
    directive was actually attached ([par_marked = false] means safe but
    under the profitability threshold). *)
type par_info = {
  par_private : string list;
  par_reductions : (Ast.red_op * string) list;
  par_peeled : bool;  (** last iteration peeled for live-out privates *)
  par_marked : bool;  (** directive attached (profitable) *)
}

type outcome = Parallel of par_info | Serial of blocker list

type t = { v_loop : loop_id; v_outcome : outcome }

let is_parallel v =
  match v.v_outcome with Parallel _ -> true | Serial _ -> false

let is_marked v =
  match v.v_outcome with Parallel p -> p.par_marked | Serial _ -> false

let blockers v = match v.v_outcome with Parallel _ -> [] | Serial bs -> bs

(** One-line report, the [explain] table row. *)
let render (v : t) =
  let l = v.v_loop in
  match v.v_outcome with
  | Parallel p ->
      let clause =
        (if p.par_private = [] then ""
         else " private(" ^ String.concat "," p.par_private ^ ")")
        ^ (if p.par_reductions = [] then ""
           else
             " reduction("
             ^ String.concat ","
                 (List.map
                    (fun (op, n) ->
                      (match op with
                      | Ast.Rsum -> "+"
                      | Ast.Rprod -> "*"
                      | Ast.Rmax -> "max"
                      | Ast.Rmin -> "min")
                      ^ ":" ^ n)
                    p.par_reductions)
             ^ ")")
        ^ if p.par_peeled then " [peeled]" else ""
      in
      Printf.sprintf "%-24s [id %d] %s%s" (key l) l.lid_loop
        (if p.par_marked then "PARALLEL" else "safe (not profitable)")
        clause
  | Serial bs ->
      Printf.sprintf "%-24s [id %d] SERIAL\n%s" (key l) l.lid_loop
        (String.concat "\n"
           (List.map
              (fun b ->
                Printf.sprintf "    blocker %-18s %s" (blocker_kind b)
                  (describe_blocker b))
              bs))

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let red_op_name = function
  | Ast.Rsum -> "sum"
  | Ast.Rprod -> "prod"
  | Ast.Rmax -> "max"
  | Ast.Rmin -> "min"

let red_op_of_name = function
  | "sum" -> Some Ast.Rsum
  | "prod" -> Some Ast.Rprod
  | "max" -> Some Ast.Rmax
  | "min" -> Some Ast.Rmin
  | _ -> None

let blocker_to_json (b : blocker) : Json.t =
  let base = [ ("kind", Json.Str (blocker_kind b)) ] in
  Json.Obj
    (base
    @
    match b with
    | Io_stmt | Index_write | Nonunit_peel -> []
    | Unknown_call c -> [ ("callee", Json.Str c) ]
    | Unknown_func f -> [ ("callee", Json.Str f) ]
    | Scalar_blocker { sb_name; sb_why } ->
        [ ("name", Json.Str sb_name); ("why", Json.Str sb_why) ]
    | Dep_cycle { dc_array; dc_ref_a; dc_ref_b; dc_test } ->
        [
          ("array", Json.Str dc_array);
          ("ref_a", Json.Str dc_ref_a);
          ("ref_b", Json.Str dc_ref_b);
          ("test", Json.Str dc_test);
        ]
    | Array_not_private a -> [ ("array", Json.Str a) ]
    | Not_analyzed why -> [ ("why", Json.Str why) ])

let blocker_of_json (j : Json.t) : blocker option =
  let str k = Json.to_str (Json.member k j) in
  match str "kind" with
  | "io-stmt" -> Some Io_stmt
  | "unknown-call" -> Some (Unknown_call (str "callee"))
  | "unknown-func" -> Some (Unknown_func (str "callee"))
  | "index-write" -> Some Index_write
  | "scalar-blocker" ->
      Some (Scalar_blocker { sb_name = str "name"; sb_why = str "why" })
  | "dep-cycle" ->
      Some
        (Dep_cycle
           {
             dc_array = str "array";
             dc_ref_a = str "ref_a";
             dc_ref_b = str "ref_b";
             dc_test = str "test";
           })
  | "array-not-private" -> Some (Array_not_private (str "array"))
  | "nonunit-peel" -> Some Nonunit_peel
  | "not-analyzed" -> Some (Not_analyzed (str "why"))
  | _ -> None

let loop_id_to_json (l : loop_id) : Json.t =
  Json.Obj
    [
      ("key", Json.Str (key l));
      ("unit", Json.Str l.lid_unit);
      ("line", Json.Int l.lid_line);
      ("index", Json.Str l.lid_index);
      ("path", Json.List (List.map (fun p -> Json.Str p) l.lid_path));
      ("loop", Json.Int l.lid_loop);
    ]

let loop_id_of_json (j : Json.t) : loop_id =
  {
    lid_unit = Json.to_str (Json.member "unit" j);
    lid_line = Json.to_int (Json.member "line" j);
    lid_index = Json.to_str (Json.member "index" j);
    lid_path = List.map (fun p -> Json.to_str p) (Json.to_list (Json.member "path" j));
    lid_loop = Json.to_int (Json.member "loop" j);
  }

let to_json (v : t) : Json.t =
  let outcome_fields =
    match v.v_outcome with
    | Parallel p ->
        [
          ("outcome", Json.Str "parallel");
          ("marked", Json.Bool p.par_marked);
          ("peeled", Json.Bool p.par_peeled);
          ( "private",
            Json.List (List.map (fun n -> Json.Str n) p.par_private) );
          ( "reductions",
            Json.List
              (List.map
                 (fun (op, n) ->
                   Json.Obj
                     [ ("op", Json.Str (red_op_name op)); ("var", Json.Str n) ])
                 p.par_reductions) );
        ]
    | Serial bs ->
        [
          ("outcome", Json.Str "serial");
          ("blockers", Json.List (List.map blocker_to_json bs));
        ]
  in
  Json.Obj (("loop_id", loop_id_to_json v.v_loop) :: outcome_fields)

let of_json (j : Json.t) : t option =
  let lid = loop_id_of_json (Json.member "loop_id" j) in
  match Json.to_str (Json.member "outcome" j) with
  | "parallel" ->
      Some
        {
          v_loop = lid;
          v_outcome =
            Parallel
              {
                par_marked = Json.to_bool (Json.member "marked" j);
                par_peeled = Json.to_bool (Json.member "peeled" j);
                par_private =
                  List.map
                    (fun n -> Json.to_str n)
                    (Json.to_list (Json.member "private" j));
                par_reductions =
                  List.filter_map
                    (fun r ->
                      match
                        red_op_of_name (Json.to_str (Json.member "op" r))
                      with
                      | Some op -> Some (op, Json.to_str (Json.member "var" r))
                      | None -> None)
                    (Json.to_list (Json.member "reductions" j));
              };
        }
  | "serial" ->
      Some
        {
          v_loop = lid;
          v_outcome =
            Serial
              (List.filter_map blocker_of_json
                 (Json.to_list (Json.member "blockers" j)));
        }
  | _ -> None
