(** The automatic loop parallelizer (the Polaris stand-in).

    For every DO loop, innermost first, decide whether all its carried
    dependences can be disproven, privatized, or folded into reductions; if
    so (and the loop looks profitable) attach an OpenMP directive.  Loops
    containing I/O, STOP, RETURN or opaque calls stay sequential -- those
    are exactly the obstacles annotation-based inlining removes. *)

open Frontend
open Analysis
open Dependence
module S = Set.Make (String)

type config = {
  min_trip : int;  (** don't mark loops with a known trip count below this *)
  mark_nested : bool;  (** also mark parallel loops inside parallel loops *)
  trust_nonlinear : bool;
      (** ablation switch: treat unanalyzable subscripts as independent
          (unsound in general; shows the losses are analysis-side) *)
  allow_pure_functions : bool;
      (** treat invocations of {!Purity}-pure functions like intrinsics *)
}

let default_config =
  {
    min_trip = 4;
    mark_nested = true;
    trust_nonlinear = false;
    allow_pure_functions = false;
  }

type loop_report = {
  rep_unit : string;
  rep_loop_id : int;
  rep_index : string;
  rep_safe : bool;
  rep_marked : bool;
  rep_reason : string;
      (** first blocker, legacy rendering, when unsafe (see {!Verdict}) *)
  rep_private : string list;
  rep_reductions : (Ast.red_op * string) list;
  rep_peeled : bool;
  rep_verdict : Verdict.t;
      (** the structured decision: stable loop id + outcome with the
          complete blocker list (the analysis no longer bails at the
          first obstacle) *)
}

(* ------------------------------------------------------------------ *)

let body_sids stmts =
  Ast.fold_stmts (fun acc s -> s.Ast.sid :: acc) [] stmts

let live_outside u (l : Ast.do_loop) name =
  let common_members = List.concat_map snd u.Ast.u_commons in
  List.mem name common_members
  || List.mem name u.Ast.u_params
  ||
  let inside = List.sort_uniq compare (body_sids l.body) in
  let all = Usedef.accesses_of_stmts u.Ast.u_body in
  List.exists
    (fun (a : Usedef.access) ->
      String.equal a.acc_name name
      && not (List.mem a.acc_sid inside))
    all

(* All loops inside a body (for the positivity context). *)
let inner_loops body =
  List.rev
    (Ast.fold_stmts
       (fun acc s -> match s.Ast.node with Ast.Do_loop l -> l :: acc | _ -> acc)
       [] body)

type decision = {
  dec_private : string list;
  dec_reductions : (Ast.red_op * string) list;
  dec_peel : bool;
}

(* Rendered array reference for the deciding pair of a [Dep_cycle]
   blocker, e.g. "XDT(I-1)"; a subscript-free access is the bare name. *)
let render_ref (a : Access.t) =
  if a.ca_index = [] then a.ca_name
  else
    a.ca_name ^ "("
    ^ String.concat "," (List.map Pretty.expr_str a.ca_index)
    ^ ")"

(** Analyze one candidate loop.  Unlike the historical version, which
    raised at the first obstacle, this collects *every* blocker — a
    multi-cause loop reports all its causes, in the same detection order
    the first-bail analysis used (so the head of the list is exactly the
    blocker the old code reported). *)
let analyze_loop ?(pure = S.empty) cfg (u : Ast.program_unit)
    (outer : Ast.do_loop list) (l : Ast.do_loop) :
    (decision, Verdict.blocker list) result =
  Fault.point "parallelizer.loop";
  let blockers = ref [] in
  let block b = blockers := b :: !blockers in
  (* first-occurrence-order dedup: a callee invoked five times is one
     blocker, reported where it first appears *)
  let dedup names =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, seen) n ->
              if S.mem n seen then (acc, seen) else (n :: acc, S.add n seen))
            ([], S.empty) names))
  in
  (* structural blockers *)
  if Usedef.has_side_exit l.body then block Verdict.Io_stmt;
  List.iter
    (fun callee -> block (Verdict.Unknown_call callee))
    (dedup (List.map fst (Usedef.calls l.body)));
  List.iter
    (fun f ->
      if not (cfg.allow_pure_functions && S.mem f pure) then
        block (Verdict.Unknown_func f))
    (dedup (Usedef.func_calls l.body));
  let ctx =
    Ctx.make ~cunit:u ~outer ~candidate:l ~inner_loops:(inner_loops l.body)
  in
  let accesses = Access.collect l.body in
  if
    List.exists
      (fun (a : Access.t) -> a.ca_write && String.equal a.ca_name l.index)
      accesses
  then block Verdict.Index_write;
  let groups = Access.by_name accesses in
  let privates = ref [] in
  let reductions = ref [] in
  let peel = ref false in
  List.iter
    (fun (name, accs) ->
      if String.equal name l.index then ()
      else
        let is_scalar_like =
          (not (Ast.is_array u name))
          || List.for_all (fun (a : Access.t) -> a.ca_index = []) accs
        in
        let writes = List.filter (fun (a : Access.t) -> a.ca_write) accs in
        let is_inner_index =
          List.exists
            (fun (il : Ast.do_loop) -> String.equal il.index name)
            (inner_loops l.body)
        in
        if writes = [] then ()
        else if is_scalar_like then begin
          match Scalars.classify u l.body name with
          | Scalars.Read_only -> ()
          | Scalars.Reduction op -> reductions := (op, name) :: !reductions
          | Scalars.Private ->
              privates := name :: !privates;
              (* F77 leaves a DO index undefined after loop completion,
                 so inner indices never need their last value *)
              if (not is_inner_index) && live_outside u l name then
                peel := true
          | Scalars.Blocker why ->
              block (Verdict.Scalar_blocker { sb_name = name; sb_why = why })
        end
        else begin
          (* array: pairwise dependence tests.  Each access is interned
             exactly once ([Ddtest.mk_aref]) so the many duplicate
             references inlining produces share one memo key, and the
             pair walk is lazy in the original (i, j>=i) order: the
             witness — the first pair the tester cannot disprove, with
             the reason the conservative answer stood — is unchanged,
             but no quadratic pair list is materialized and the walk
             stops at the first carried pair. *)
          let arr = Array.of_list accs in
          let arefs =
            Array.map
              (fun (a : Access.t) ->
                Ddtest.mk_aref u ~index:a.ca_index ~inner:a.ca_inner)
              arr
          in
          let n = Array.length arr in
          let rec scan i j =
            if i >= n then None
            else if j >= n then scan (i + 1) (i + 1)
            else
              let a = arr.(i) and b = arr.(j) in
              if a.ca_write || b.ca_write then
                let carry, why =
                  Ddtest.may_carry_why ctx arefs.(i) arefs.(j)
                in
                if carry then Some (a, b, why) else scan i (j + 1)
              else scan i (j + 1)
          in
          let witness = if cfg.trust_nonlinear then None else scan 0 0 in
          match witness with
          | None -> ()
          | Some (a, b, why) ->
              let live = live_outside u l name in
              if Array_private.privatizable ctx ~live_out:live accs then begin
                privates := name :: !privates;
                if live then peel := true
              end
              else begin
                block
                  (Verdict.Dep_cycle
                     {
                       dc_array = name;
                       dc_ref_a = render_ref a;
                       dc_ref_b = render_ref b;
                       dc_test = why;
                     });
                block (Verdict.Array_not_private name)
              end
        end)
    groups;
  if !peel && l.step <> Ast.Int_const 1 then block Verdict.Nonunit_peel;
  match List.rev !blockers with
  | [] ->
      Ok
        {
          dec_private = List.sort_uniq compare !privates;
          dec_reductions = List.sort_uniq compare !reductions;
          dec_peel = !peel;
        }
  | bs -> Error bs

(* Profitability: known-constant trip counts below the threshold are not
   worth a fork/join. *)
let profitable cfg u (l : Ast.do_loop) =
  let const e = Poly.to_const (Poly.of_expr (Simplify.simplify u e)) in
  match (const l.lo, const l.hi, const l.step) with
  | Some lo, Some hi, Some st when st <> 0 ->
      ((hi - lo) / st) + 1 >= cfg.min_trip
  | _ -> true

(* ------------------------------------------------------------------ *)

let rec process_stmts ~pure cfg u outer reports stmts =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.node with
      | Ast.Do_loop l -> process_loop ~pure cfg u outer reports s l
      | Ast.If (c, t, e) ->
          let t' = process_stmts ~pure cfg u outer reports t in
          let e' = process_stmts ~pure cfg u outer reports e in
          [ { s with node = Ast.If (c, t', e') } ]
      | Ast.Tagged (tag, b) ->
          let b' = process_stmts ~pure cfg u outer reports b in
          [ { s with node = Ast.Tagged (tag, b') } ]
      | _ -> [ s ])
    stmts

and process_loop ~pure cfg u outer reports s (l : Ast.do_loop) =
  (* inner loops first *)
  let body = process_stmts ~pure cfg u (outer @ [ l ]) reports l.body in
  let l = { l with body } in
  let lid =
    {
      Verdict.lid_unit = u.Ast.u_name;
      lid_line = l.do_line;
      lid_index = l.index;
      lid_path = List.map (fun (o : Ast.do_loop) -> o.Ast.index) outer;
      lid_loop = l.loop_id;
    }
  in
  let analysis =
    Span.span ~cat:"parallelize" ~unit_:u.u_name ~loop:l.loop_id
      "analyze-loop" (fun () -> analyze_loop ~pure cfg u outer l)
  in
  match analysis with
  | Error bs ->
      reports :=
        {
          rep_unit = u.u_name;
          rep_loop_id = l.loop_id;
          rep_index = l.index;
          rep_safe = false;
          rep_marked = false;
          rep_reason = Verdict.render_blocker (List.hd bs);
          rep_private = [];
          rep_reductions = [];
          rep_peeled = false;
          rep_verdict = { Verdict.v_loop = lid; v_outcome = Verdict.Serial bs };
        }
        :: !reports;
      [ { s with node = Ast.Do_loop l } ]
  | Ok dec ->
      let mark = profitable cfg u l in
      let omp =
        { Ast.omp_private = dec.dec_private; omp_reductions = dec.dec_reductions }
      in
      reports :=
        {
          rep_unit = u.u_name;
          rep_loop_id = l.loop_id;
          rep_index = l.index;
          rep_safe = true;
          rep_marked = mark;
          rep_reason = "";
          rep_private = dec.dec_private;
          rep_reductions = dec.dec_reductions;
          rep_peeled = mark && dec.dec_peel;
          rep_verdict =
            {
              Verdict.v_loop = lid;
              v_outcome =
                Verdict.Parallel
                  {
                    Verdict.par_private = dec.dec_private;
                    par_reductions = dec.dec_reductions;
                    par_peeled = mark && dec.dec_peel;
                    par_marked = mark;
                  };
            };
        }
        :: !reports;
      if not mark then [ { s with node = Ast.Do_loop l } ]
      else if dec.dec_peel then Peel.peel_last l omp
      else [ { s with node = Ast.Do_loop { l with parallel = Some omp } } ]

(* Strip directives from loops nested inside marked loops. *)
let rec strip_nested ?(inside = false) stmts =
  List.map
    (fun (s : Ast.stmt) ->
      let node =
        match s.Ast.node with
        | Ast.Do_loop l ->
            let here = inside && l.parallel <> None in
            let parallel = if here then None else l.parallel in
            let inside' = inside || l.parallel <> None in
            Ast.Do_loop
              { l with parallel; body = strip_nested ~inside:inside' l.body }
        | Ast.If (c, t, e) ->
            Ast.If (c, strip_nested ~inside t, strip_nested ~inside e)
        | Ast.Tagged (tag, b) -> Ast.Tagged (tag, strip_nested ~inside b)
        | n -> n
      in
      { s with node })
    stmts

let run_unit ?(config = default_config) ?(pure = S.empty)
    (u : Ast.program_unit) : Ast.program_unit * loop_report list =
  (* No cache reset here: memo keys carry the type signature of every
     identifier they mention (see [Dependence.Memo]), so entries are
     unit-independent and legally persist across units and inlining
     configurations — that cross-config reuse is where most of the
     cache's value lies.  Verdicts stay deterministic; only the
     per-unit hit/miss split depends on what this domain analyzed
     before (hence the bench suite pins counters single-job). *)
  Fault.point "parallelizer.unit";
  let reports = ref [] in
  let body = process_stmts ~pure config u [] reports u.u_body in
  let body = if config.mark_nested then body else strip_nested body in
  ({ u with u_body = body }, List.rev !reports)

(** Parallelize every unit of the program. *)
let run ?(config = default_config) (p : Ast.program) :
    Ast.program * loop_report list =
  let pure =
    if config.allow_pure_functions then Purity.pure_functions p else S.empty
  in
  let units, reports =
    List.fold_left
      (fun (us, rs) u ->
        let u', r = run_unit ~config ~pure u in
        (u' :: us, rs @ r))
      ([], []) p.p_units
  in
  ({ Ast.p_units = List.rev units }, reports)
