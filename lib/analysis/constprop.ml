(** Constant propagation: PARAMETER constants are substituted everywhere,
    then scalar constants are propagated along straight-line code with the
    usual kill rules at control-flow joins.  One of the normalizations the
    paper's reverse-inline matcher must tolerate. *)

open Frontend
module M = Map.Make (String)
module S = Set.Make (String)

let is_const = function
  | Ast.Int_const _ | Ast.Real_const _ | Ast.Logical_const _ -> true
  | _ -> false

(* Remove from [env] everything the statements may write. *)
let kill_written env stmts =
  match Usedef.written stmts with
  | Usedef.All -> M.empty
  | Usedef.Vars w -> M.filter (fun v _ -> not (S.mem v w)) env

let subst_env env e =
  Ast.map_expr
    (function
      | Ast.Var v as e -> ( match M.find_opt v env with Some c -> c | None -> e)
      | e -> e)
    e

(** Propagate constants through a statement list; returns rewritten
    statements.  [env0] seeds the environment (PARAMETER constants). *)
let propagate_stmts u env0 stmts =
  let rec go env stmts =
    let env = ref env in
    let out =
      List.map
        (fun (s : Ast.stmt) ->
          let node =
            match s.node with
            | Ast.Assign (lv, e) ->
                let e = Simplify.simplify u (subst_env !env e) in
                let lv = Ast.map_lvalue (subst_env !env) lv in
                (match lv with
                | Ast.Lvar v when not (Ast.is_array u v) ->
                    if is_const e then env := M.add v e !env
                    else env := M.remove v !env
                | Ast.Lvar v -> env := M.remove v !env
                | Ast.Larray _ | Ast.Lsection _ -> ());
                Ast.Assign (lv, e)
            | Ast.Do_loop l ->
                let lo = Simplify.simplify u (subst_env !env l.lo) in
                let hi = Simplify.simplify u (subst_env !env l.hi) in
                let step = Simplify.simplify u (subst_env !env l.step) in
                (* inside the loop nothing written by the body (or the
                   index) may be assumed constant *)
                let env_in = M.remove l.index (kill_written !env l.body) in
                let body, _ = go env_in l.body in
                env := kill_written (M.remove l.index !env) l.body;
                Ast.Do_loop { l with lo; hi; step; body }
            | Ast.If (c, t, e) ->
                let c = Simplify.simplify u (subst_env !env c) in
                let t', _ = go !env t in
                let e', _ = go !env e in
                env := kill_written (kill_written !env t) e;
                Ast.If (c, t', e')
            | Ast.Call (n, args) ->
                let args = List.map (fun a -> Simplify.simplify u (subst_env !env a)) args in
                (* a call may clobber globals and by-ref arguments *)
                env := M.empty;
                Ast.Call (n, args)
            | Ast.Print es ->
                Ast.Print (List.map (fun a -> Simplify.simplify u (subst_env !env a)) es)
            | Ast.Tagged (tag, body) ->
                let body', _ = go !env body in
                env := kill_written !env body;
                Ast.Tagged
                  ( { tag with tag_actuals = List.map (subst_env !env) tag.tag_actuals },
                    body' )
            | (Ast.Return | Ast.Stop _ | Ast.Continue) as n -> n
          in
          { s with node })
        stmts
    in
    (out, !env)
  in
  fst (go env0 stmts)

(** Evaluate PARAMETER constants of a unit to literal values. *)
let parameter_env (u : Ast.program_unit) =
  List.fold_left
    (fun env (name, e) ->
      let e' = Simplify.basic_simplify (subst_env env e) in
      if is_const e' then M.add name e' env else env)
    M.empty u.u_params_const

(** Run constant propagation over one unit. *)
let run_unit (u : Ast.program_unit) =
  Fault.point "analysis.constprop";
  let env0 = parameter_env u in
  { u with u_body = propagate_stmts u env0 u.u_body }

let run (p : Ast.program) = { Ast.p_units = List.map run_unit p.p_units }
