(** Induction-variable substitution.

    Recognizes scalars updated as [v = v + c] (with [c] loop-invariant)
    exactly once per iteration at the top level of a loop body, rewrites
    all uses of [v] into a closed form over the loop index, removes the
    update, and materializes the final value after the loop:

      I = I0                          I = I0
      DO J = 1, N                     DO J = 1, N
        I = I + 1          ==>          X(I0 + J) = ...
        X(I) = ...                    ENDDO
      ENDDO                           I = I0 + MAX(0, N)

    Inner loops are processed first so that an inner loop's accumulated
    increment (a single invariant post-loop update) becomes a candidate
    increment for the enclosing loop -- which is how the PCINIT nest of
    Fig. 2 of the paper becomes fully affine.

    Since uses are rewritten in terms of the value of [v] at loop entry, we
    only substitute when [v] is not read before the update within the
    iteration in a position we cannot see; we require the update to be a
    top-level statement and rewrite uses positionally (before/after it). *)

open Frontend

(* Find candidate (position, var, increment) updates: top-level statements
   of the body of form [v = v + c] / [v = c + v]. *)
let candidates (l : Ast.do_loop) =
  List.filteri (fun _ _ -> true) l.body
  |> List.mapi (fun i s -> (i, s))
  |> List.filter_map (fun (i, (s : Ast.stmt)) ->
         match s.node with
         | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Add, Ast.Var v', c))
           when String.equal v v' ->
             Some (i, v, c)
         | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Add, c, Ast.Var v'))
           when String.equal v v' ->
             Some (i, v, c)
         | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Sub, Ast.Var v', c))
           when String.equal v v' ->
             Some (i, v, Ast.Unop (Ast.Neg, c))
         | _ -> None)

(* number of completed iterations before the one where index = idx *)
let iterations_before (l : Ast.do_loop) =
  (* (idx - lo) / step, exact for the values idx takes *)
  let open Ast in
  match l.step with
  | Int_const 1 -> Binop (Sub, Var l.index, l.lo)
  | step -> Binop (Div, Binop (Sub, Var l.index, l.lo), step)

(* Total trip count.  Polaris guards or versions loops that might execute
   zero times; we instead assume counted loops have a non-negative trip
   count (true of the PERFECT-style codes this targets), because wrapping
   the expression in MAX(0, .) would hide it from the symbolic range test
   that later needs to cancel it against the loop bounds. *)
let trip_count (l : Ast.do_loop) =
  let open Ast in
  match l.step with
  | Int_const 1 -> Binop (Add, Binop (Sub, l.hi, l.lo), Int_const 1)
  | step -> Binop (Div, Binop (Add, Binop (Sub, l.hi, l.lo), step), step)

let subst_var v replacement stmts =
  Ast.map_exprs_in_stmts
    (function Ast.Var x when String.equal x v -> replacement | e -> e)
    stmts

(** Substitute induction variables in [l]; returns the transformed loop
    plus statements to place immediately after it (final values). *)
let substitute_in_loop u (l : Ast.do_loop) : Ast.do_loop * Ast.stmt list =
  let writes = Invariance.loop_writes l in
  let cands = candidates l in
  let chosen =
    List.filter
      (fun (pos, v, c) ->
        (* c invariant in the loop *)
        Invariance.expr_invariant writes c
        (* v written nowhere else in the body *)
        && (let other_writes =
              List.filter
                (fun a -> a.Usedef.acc_write && String.equal a.Usedef.acc_name v)
                (Usedef.accesses_of_stmts l.body)
            in
            List.length other_writes = 1)
        (* v is an integer scalar *)
        && Ast.type_of_var u v = Ast.Integer
        && not (Ast.is_array u v)
        (* the update must not sit inside an IF: top-level position check *)
        && pos >= 0)
      cands
  in
  (* Apply each chosen substitution in turn. *)
  List.fold_left
    (fun ((l : Ast.do_loop), finals) (_, v, c) ->
      (* Recompute position in the *current* body. *)
      let pos =
        let found = ref (-1) in
        List.iteri
          (fun i (s : Ast.stmt) ->
            if !found < 0 then
              match s.node with
              | Ast.Assign (Ast.Lvar v', _) when String.equal v v' -> found := i
              | _ -> ())
          l.body;
        !found
      in
      if pos < 0 then (l, finals)
      else
        let open Ast in
        let k = iterations_before l in
        let before_val =
          Simplify.simplify u (Binop (Add, Var v, Binop (Mul, k, c)))
        in
        let after_val =
          Simplify.simplify u
            (Binop (Add, Var v, Binop (Mul, Binop (Add, k, Int_const 1), c)))
        in
        let body_before = List.filteri (fun i _ -> i < pos) l.body in
        let body_after = List.filteri (fun i _ -> i > pos) l.body in
        (* uses of v in the loop bounds refer to the entry value: fine *)
        let body_before = subst_var v before_val body_before in
        let body_after = subst_var v after_val body_after in
        let l = { l with body = body_before @ body_after } in
        let final =
          mk
            (Assign
               ( Lvar v,
                 Simplify.simplify u
                   (Binop (Add, Var v, Binop (Mul, trip_count l, c))) ))
        in
        (l, finals @ [ final ]))
    (l, []) chosen

(** Run induction substitution over a statement list, innermost loops
    first. *)
let rec run_stmts u stmts =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.node with
      | Ast.Do_loop l ->
          let body = run_stmts u l.body in
          let l = { l with body } in
          let l', finals = substitute_in_loop u l in
          { s with node = Ast.Do_loop l' } :: finals
      | Ast.If (c, t, e) ->
          [ { s with node = Ast.If (c, run_stmts u t, run_stmts u e) } ]
      | Ast.Tagged (tag, body) ->
          [ { s with node = Ast.Tagged (tag, run_stmts u body) } ]
      | _ -> [ s ])
    stmts

let run_unit (u : Ast.program_unit) =
  Fault.point "analysis.induction";
  { u with u_body = run_stmts u u.u_body }
let run (p : Ast.program) = { Ast.p_units = List.map run_unit p.p_units }
