(** Lowering of Fortran-90 array sections to explicit DO loops.

    Annotations use sections ([FE(1:NSFE, ID) = ...]) for brevity; the
    dependence framework wants element-wise loops.  This pass rewrites

      A(l1:h1, e) = rhs     ==>    DO it = l1, h1
                                     A(it, e) = rhs[sections -> it]
                                   ENDDO

    matching the k-th sectioned dimension of the left-hand side with the
    k-th sectioned dimension of every section on the right.  Whole-array
    assignments ([A = expr] where [A] is declared with known dimensions)
    are expanded the same way. *)

open Frontend

(* Domain-local so concurrent compilations (the suite driver) neither
   race nor perturb each other's generated names. *)
let counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_index () =
  let r = Domain.DLS.get counter in
  incr r;
  (* leading I gives implicit INTEGER typing *)
  Printf.sprintf "ITSEC%d" !r

(** Reset the calling domain's name counter (per-compilation, for
    deterministic output regardless of task scheduling). *)
let reset_gensym () = Domain.DLS.get counter := 0

(* Replace the sections of an expression with element references driven by
   [idx_of k], the index expression for the k-th sectioned dimension. *)
let elementize idx_of e =
  Ast.map_expr
    (function
      | Ast.Section (a, bounds) ->
          let k = ref (-1) in
          let args =
            List.map
              (fun (lo, hi, _step) ->
                match (lo, hi) with
                | Some l, Some h when Ast.equal_expr l h -> l (* plain index *)
                | _ ->
                    incr k;
                    idx_of !k)
              bounds
          in
          Ast.Array_ref (a, args)
      | e -> e)
    e

let rec lower_assignment (u : Ast.program_unit) (s : Ast.stmt) : Ast.stmt list =
  match s.node with
  | Ast.Assign (Ast.Lsection (a, bounds), rhs) ->
      (* one loop per sectioned dim, innermost = first dim (column major
         order is irrelevant for semantics; go left to right, outer last) *)
      let sectioned =
        List.filteri
          (fun _ (lo, hi, _) ->
            match (lo, hi) with
            | Some l, Some h when Ast.equal_expr l h -> false
            | _ -> true)
          bounds
      in
      let idx_names = List.map (fun _ -> fresh_index ()) sectioned in
      let idx_of k = Ast.Var (List.nth idx_names k) in
      let k = ref (-1) in
      let lhs_args =
        List.map
          (fun (lo, hi, _) ->
            match (lo, hi) with
            | Some l, Some h when Ast.equal_expr l h -> l
            | _ ->
                incr k;
                idx_of !k)
          bounds
      in
      let body_stmt =
        Ast.mk (Ast.Assign (Ast.Larray (a, lhs_args), elementize idx_of rhs))
      in
      let default_bounds dim_pos =
        (* declared bounds for missing section endpoints *)
        match Ast.find_decl u a with
        | Some d when List.length d.d_dims > dim_pos -> (
            match List.nth d.d_dims dim_pos with
            | Ast.Dim_expr e -> (Ast.Int_const 1, e)
            | Ast.Dim_star -> (Ast.Int_const 1, Ast.Int_const 1))
        | _ -> (Ast.Int_const 1, Ast.Int_const 1)
      in
      let loops =
        List.mapi
          (fun k (lo, hi, step) ->
            let dim_pos =
              (* position of the k-th sectioned dim in bounds *)
              let seen = ref (-1) in
              let res = ref 0 in
              List.iteri
                (fun i (l, h, _) ->
                  let is_sec =
                    match (l, h) with
                    | Some a', Some b' when Ast.equal_expr a' b' -> false
                    | _ -> true
                  in
                  if is_sec then begin
                    incr seen;
                    if !seen = k then res := i
                  end)
                bounds;
              !res
            in
            let dlo, dhi = default_bounds dim_pos in
            ( List.nth idx_names k,
              Option.value ~default:dlo lo,
              Option.value ~default:dhi hi,
              Option.value ~default:(Ast.Int_const 1) step ))
          sectioned
      in
      (* innermost loop is the first sectioned dimension *)
      let nest =
        List.fold_left
          (fun inner (iv, lo, hi, step) -> [ Ast.mk_loop iv lo hi step inner ])
          [ body_stmt ]
          loops
      in
      nest
  | Ast.Assign (Ast.Lvar a, rhs) when Ast.is_array u a ->
      (* whole-array broadcast: A = rhs with A's declared dims *)
      let dims =
        match Ast.find_decl u a with Some d -> d.d_dims | None -> []
      in
      if
        dims = []
        || List.exists (function Ast.Dim_star -> true | _ -> false) dims
      then [ s ]
      else
        let bounds =
          List.map
            (fun d ->
              match d with
              | Ast.Dim_expr e -> (None, Some e, None)
              | Ast.Dim_star -> assert false)
            dims
        in
        lower_assignment u
          { s with node = Ast.Assign (Ast.Lsection (a, bounds), rhs) }
  | _ -> [ s ]

(** Lower all sections in a statement list. *)
let lower_stmts u stmts =
  Ast.map_stmts
    (fun s ->
      match s.node with
      | Ast.Assign ((Ast.Lsection _ | Ast.Lvar _), _) -> lower_assignment u s
      | _ -> [ s ])
    stmts

let run_unit u = { u with Ast.u_body = lower_stmts u u.Ast.u_body }
let run (p : Ast.program) = { Ast.p_units = List.map run_unit p.p_units }
