(** Forward substitution of scalar definitions into later uses.

    Polaris forward-substitutes scalars so that array subscripts expose
    their structure to dependence analysis; e.g.

      ID = IDBEGS(ISS) + 1 + K
      CALL FSMP(ID, K)

    becomes [CALL FSMP(IDBEGS(ISS) + 1 + K, K)], making the linearity of
    the first argument in [K] visible.  The defining assignment is kept
    (it is semantically harmless); dead-store removal is not this pass's
    job.

    A definition [v = rhs] is propagated into following statements of the
    same block -- descending into nested loops/ifs -- until [v] or any
    variable read by [rhs] (array bases included) is (possibly) rewritten.
    Substitution into a nested construct requires the whole construct to
    leave [v] and the rhs inputs untouched. *)

open Frontend
module S = Set.Make (String)

let max_rhs_size = 30
let expr_size e = Ast.fold_expr (fun n _ -> n + 1) 0 e

(* Substitute inside the subscripts of an lvalue, never its base name. *)
let subst_lvalue f = function
  | Ast.Lvar v -> Ast.Lvar v
  | Ast.Larray (a, idx) -> Ast.Larray (a, List.map f idx)
  | Ast.Lsection (a, bounds) ->
      Ast.Lsection
        ( a,
          List.map
            (fun (x, y, z) ->
              let g = Option.map f in
              (g x, g y, g z))
            bounds )

(* rhs is pure: only reads, intrinsic calls allowed. *)
let pure_rhs e =
  Ast.fold_expr
    (fun ok sub ->
      ok
      &&
      match sub with
      | Ast.Func_call (f, _) -> Intrinsics.is_intrinsic f
      | Ast.Section _ -> false
      | _ -> true)
    true e

type def = { dv : string; drhs : Ast.expr; dinputs : S.t }

let kills (w : Usedef.write_set) (d : def) =
  Usedef.mem d.dv w || S.exists (fun v -> Usedef.mem v w) d.dinputs

let subst_defs defs e =
  Ast.map_expr
    (function
      | Ast.Var v as e -> (
          match List.find_opt (fun d -> String.equal d.dv v) defs with
          | Some d -> d.drhs
          | None -> e)
      | e -> e)
    e

(* Process a block: thread the list of live definitions through the
   statements, substituting as we go. *)
let rec process_block u (defs : def list) (stmts : Ast.stmt list) :
    Ast.stmt list =
  match stmts with
  | [] -> []
  | s :: rest ->
      let s', defs' = process_stmt u defs s in
      s' :: process_block u defs' rest

and process_stmt u defs (s : Ast.stmt) : Ast.stmt * def list =
  let sub e = Simplify.simplify u (subst_defs defs e) in
  match s.node with
  | Ast.Assign (lv, e) ->
      let e = sub e in
      let lv = subst_lvalue sub lv in
      let name = Ast.lvalue_name lv in
      let w = Usedef.Vars (S.singleton name) in
      let defs = List.filter (fun d -> not (kills w d)) defs in
      let defs =
        match lv with
        | Ast.Lvar v
          when (not (Ast.is_array u v))
               && pure_rhs e
               && expr_size e <= max_rhs_size
               && not (S.mem v (S.of_list (Ast.expr_vars e))) ->
            { dv = v; drhs = e; dinputs = S.of_list (Ast.expr_vars e) } :: defs
        | _ -> defs
      in
      ({ s with node = Ast.Assign (lv, e) }, defs)
  | Ast.Do_loop l ->
      let w = Invariance.loop_writes l in
      (* defs that survive the whole loop may be substituted inside *)
      let live = List.filter (fun d -> not (kills w d)) defs in
      let body = process_block u live l.body in
      let node =
        Ast.Do_loop
          { l with lo = sub l.lo; hi = sub l.hi; step = sub l.step; body }
      in
      ({ s with node }, live)
  | Ast.If (c, t, e) ->
      let wt = Usedef.written t and we = Usedef.written e in
      let live_t = List.filter (fun d -> not (kills wt d)) defs in
      let live_e = List.filter (fun d -> not (kills we d)) defs in
      let t' = process_block u live_t t in
      let e' = process_block u live_e e in
      let keep =
        List.filter (fun d -> not (kills wt d) && not (kills we d)) defs
      in
      ({ s with node = Ast.If (sub c, t', e') }, keep)
  | Ast.Call (n, args) ->
      (* after a call with unknown effects nothing survives *)
      ({ s with node = Ast.Call (n, List.map sub args) }, [])
  | Ast.Print es -> ({ s with node = Ast.Print (List.map sub es) }, defs)
  | Ast.Tagged (tag, body) ->
      let w = Usedef.written body in
      let live = List.filter (fun d -> not (kills w d)) defs in
      let body' = process_block u live body in
      (* keep the recorded actuals consistent with the substituted body *)
      let tag = { tag with Ast.tag_actuals = List.map sub tag.tag_actuals } in
      ({ s with node = Ast.Tagged (tag, body') }, live)
  | Ast.Return | Ast.Stop _ | Ast.Continue -> (s, defs)

let run_unit (u : Ast.program_unit) =
  Fault.point "analysis.forward_subst";
  { u with u_body = process_block u [] u.u_body }

let run (p : Ast.program) = { Ast.p_units = List.map run_unit p.p_units }
