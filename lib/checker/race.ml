(** Clause-aware classification of traced conflicts.

    The access tracer ({!Runtime.Trace}) reports every cross-iteration
    write-write / read-write conflict a serial replay witnesses inside a
    [PARALLEL DO] loop.  Not every conflict is a race: accesses covered by
    the loop's [PRIVATE] and [REDUCTION] clauses are *exempt* — each
    worker gets its own storage (or an identity-seeded accumulator merged
    under a lock), so the serial replay's apparent reuse of one location
    is an artifact of replaying without privatization.  The loop index
    itself is always private, and lastprivate semantics are realized
    upstream by last-iteration peeling (the peeled iteration runs outside
    the directive loop and is therefore never traced as part of it).

    A conflict is excused iff {e either} endpoint access was made under
    an exempt name.  Both endpoints of a conflict are by construction the
    same storage location, and the runtime privatizes by {e storage}, not
    by name ({!Runtime.Interp} remaps privatized COMMON storage across
    call boundaries by physical identity): once one access proves the
    location belongs to an exempt variable, every access to it — through
    a callee formal bound by reference, or a COMMON re-declaration under
    another name — hits the worker's private copy too. *)

open Frontend

module S = Set.Make (String)

(** Declared-clause summary of one directive loop id.  Inlining may copy
    a loop; copies share the id, and their clause sets are unioned. *)
type clause_info = {
  cl_unit : string;  (** unit owning (a copy of) the loop *)
  cl_exempt : S.t;  (** index + PRIVATE + REDUCTION names *)
}

let clauses_of_program (p : Ast.program) : (int, clause_info) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (u : Ast.program_unit) ->
      List.iter
        (fun (l : Ast.do_loop) ->
          match l.parallel with
          | None -> ()
          | Some omp ->
              let names =
                S.of_list
                  ((l.index :: omp.omp_private)
                  @ List.map snd omp.omp_reductions)
              in
              let info =
                match Hashtbl.find_opt tbl l.loop_id with
                | Some prev ->
                    { prev with cl_exempt = S.union prev.cl_exempt names }
                | None -> { cl_unit = u.Ast.u_name; cl_exempt = names }
              in
              Hashtbl.replace tbl l.loop_id info)
        (Ast.collect_loops u.Ast.u_body))
    p.Ast.p_units;
  tbl

(** One classified conflict: a {!Runtime.Trace.conflict} joined with the
    owning loop's clauses.  [r_iter]/[r_iter'] are the witness iteration
    pair (values of the loop index; [r_iter] happened first in the serial
    replay). *)
type race = {
  r_loop : int;
  r_unit : string;
  r_kind : Runtime.Trace.kind;
  r_var : string;
  r_var' : string;
  r_iter : int;
  r_iter' : int;
  r_off : int;  (** flattened element offset; [-1] = whole object *)
  r_excused : bool;
}

let classify (p : Ast.program) (cs : Runtime.Trace.conflict list) : race list =
  let tbl = clauses_of_program p in
  List.map
    (fun (c : Runtime.Trace.conflict) ->
      let info = Hashtbl.find_opt tbl c.Runtime.Trace.c_loop in
      let exempt name =
        match info with Some i -> S.mem name i.cl_exempt | None -> false
      in
      {
        r_loop = c.Runtime.Trace.c_loop;
        r_unit = (match info with Some i -> i.cl_unit | None -> "?");
        r_kind = c.Runtime.Trace.c_kind;
        r_var = c.Runtime.Trace.c_var;
        r_var' = c.Runtime.Trace.c_var';
        r_iter = c.Runtime.Trace.c_iter;
        r_iter' = c.Runtime.Trace.c_iter';
        r_off = c.Runtime.Trace.c_off;
        r_excused =
          exempt c.Runtime.Trace.c_var || exempt c.Runtime.Trace.c_var';
      })
    cs

let describe (r : race) =
  let target =
    if String.equal r.r_var r.r_var' then r.r_var
    else Printf.sprintf "%s aka %s" r.r_var r.r_var'
  in
  let where =
    if r.r_off < 0 then "" else Printf.sprintf " (element %d)" (r.r_off + 1)
  in
  Printf.sprintf
    "loop %d in %s: cross-iteration %s conflict on %s%s, witness iterations \
     %d and %d"
    r.r_loop r.r_unit
    (Runtime.Trace.kind_name r.r_kind)
    target where r.r_iter r.r_iter'

(** Unexcused races are errors; excused conflicts render as notes (they
    are the clause-covered accesses the detector deliberately forgives). *)
let diag_of_race (r : race) : Diag.t =
  let severity = if r.r_excused then Diag.Note else Diag.Error in
  let suffix =
    if r.r_excused then " [excused by PRIVATE/REDUCTION clause]" else ""
  in
  Diag.make ~severity Diag.Race (describe r ^ suffix)
