(** The validation oracle for emitted [PARALLEL DO] directives.

    Two independent checks over an optimized program:

    - {b race detection}: replay the program serially under the
      {!Runtime.Trace} sink and classify every cross-iteration conflict
      against the loop's declared clauses ({!Race.classify}).  Any
      unexcused conflict is a hard error carrying a witness iteration
      pair.
    - {b differential execution}: run the same program under
      {!Runtime.Pool} with the directives honored and compare the final
      observable state — printed output plus every COMMON block, element
      by element — against the serial run.  Divergence is a hard error.

    The serial traced replay doubles as the serial half of the
    differential, so a verdict costs exactly two executions.  Comparisons
    use a small relative tolerance: parallel reductions legally
    reassociate floating-point sums, so the last digits may differ.

    Failures surface as structured {!Frontend.Diag} records (codes
    [Race], [Verify], [Exec], [Trap]); the oracle never raises on a
    bad program.  When a {!Frontend.Prof} profile is installed the
    oracle ticks the [iterations_traced] / [race_conflicts] /
    [race_excused] counters. *)

open Frontend
open Runtime

(** Numeric output comparison: identical text, or line-by-line numeric
    equality within a small relative tolerance. *)
let outputs_equal a b =
  String.equal a b
  ||
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  List.length la = List.length lb
  && List.for_all2
       (fun x y ->
         String.equal x y
         ||
         let tx = String.split_on_char ' ' (String.trim x) in
         let ty = String.split_on_char ' ' (String.trim y) in
         List.length tx = List.length ty
         && List.for_all2
              (fun u v ->
                String.equal u v
                ||
                match (float_of_string_opt u, float_of_string_opt v) with
                | Some fu, Some fv ->
                    Float.abs (fu -. fv)
                    <= 1e-5
                       *. Float.max 1.0 (Float.max (Float.abs fu) (Float.abs fv))
                | _ -> false)
              tx ty)
       la lb

(** Element-wise COMMON-state comparison with relative tolerance
    (see {!Runtime.Interp.run_program_state} for the representation).
    Keys in [ignore] are skipped: COMMON members named in a PRIVATE
    clause have unspecified contents after the loop (each worker wrote
    only its own copy), so serial and parallel runs may legitimately
    disagree on them. *)
let states_agree ?(tol = 1e-6) ?(ignore = []) (s1 : (string * float array) list)
    (s2 : (string * float array) list) =
  List.length s1 = List.length s2
  && List.for_all2
       (fun (k1, (a1 : float array)) (k2, a2) ->
         String.equal k1 k2
         && Array.length a1 = Array.length a2
         && (List.mem k1 ignore
            ||
         let ok = ref true in
         Array.iteri
           (fun i x ->
             let y = a2.(i) in
             if
               not
                 (Float.abs (x -. y)
                 <= tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
                 )
             then ok := false)
           a1;
         !ok))
       s1 s2

(** The oracle's verdict on one program. *)
type verdict = {
  v_ok : bool;  (** no unexcused race, no divergence, both runs completed *)
  v_races : Race.race list;  (** every classified conflict, excused or not *)
  v_unexcused : int;
  v_excused : int;
  v_iterations : int;  (** directive-loop iterations traced *)
  v_diverged : bool;  (** serial and parallel observable state disagree *)
  v_crashed : bool;  (** a run died (trap / runtime error) before comparing *)
  v_diags : Diag.t list;
}

let clean_verdict =
  {
    v_ok = true;
    v_races = [];
    v_unexcused = 0;
    v_excused = 0;
    v_iterations = 0;
    v_diverged = false;
    v_crashed = false;
    v_diags = [];
  }

let default_threads = 3

(** Validate [program]'s directives: serial traced replay, clause-aware
    race classification, then a differential run at [threads] domains.
    [fuel]/[max_depth] bound both executions like any other run. *)
let validate ?(threads = default_threads) ?fuel ?max_depth
    (program : Ast.program) : verdict =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let run_guarded label f =
    match
      Fault.point ("checker.oracle." ^ label);
      f ()
    with
    | r -> Some r
    | exception Value.Runtime_error m ->
        add
          (Diag.make Diag.Exec
             (Printf.sprintf "validation %s run failed: %s" label m));
        None
    | exception Interp.Trap d ->
        add
          { d with Diag.d_message = Printf.sprintf
              "validation %s run trapped: %s" label d.Diag.d_message };
        None
    | exception Fault.Injected (site, n) ->
        add
          (Diag.make Diag.Exec
             (Printf.sprintf
                "validation %s run hit injected fault at %s (arrival %d)"
                label site n));
        None
    | exception Pool.Worker_failure (l, e) ->
        let bt = Printexc.get_raw_backtrace () in
        add
          (Diag.make
             ~backtrace:(Printexc.raw_backtrace_to_string bt)
             Diag.Exec
             (Printf.sprintf "validation %s run lost worker (%s): %s" label l
                (Printexc.to_string e)));
        None
  in
  let sink = Trace.create () in
  let serial =
    run_guarded "serial" (fun () ->
        Trace.with_tracing sink (fun () ->
            Interp.run_program_state ~threads:1 ?fuel ?max_depth program))
  in
  let races = Race.classify program (Trace.conflicts sink) in
  let unexcused, excused =
    List.partition (fun (r : Race.race) -> not r.Race.r_excused) races
  in
  Prof.add_iterations_traced (Trace.iterations sink);
  List.iter
    (fun (r : Race.race) -> Prof.tick_race_conflict ~excused:r.Race.r_excused)
    races;
  List.iter (fun r -> add (Race.diag_of_race r)) unexcused;
  if excused <> [] then
    add
      (Diag.make ~severity:Diag.Note Diag.Race
         (Printf.sprintf
            "%d conflict(s) excused by PRIVATE/REDUCTION clauses"
            (List.length excused)));
  let diverged, par_crashed =
    match serial with
    | None -> (false, false)
    | Some (out_seq, state_seq) -> (
        match
          run_guarded "parallel" (fun () ->
              Interp.run_program_state ~threads ?fuel ?max_depth program)
        with
        | None -> (false, true)
        | Some (out_par, state_par) ->
            let out_ok = outputs_equal out_seq out_par in
            let state_ok =
              states_agree
                ~ignore:(Interp.private_state_keys program)
                state_seq state_par
            in
            if out_ok && state_ok then (false, false)
            else begin
              add
                (Diag.make Diag.Verify
                   (Printf.sprintf
                      "serial/parallel divergence at %d threads: %s"
                      threads
                      (match (out_ok, state_ok) with
                      | false, false -> "printed output and COMMON state disagree"
                      | false, true -> "printed output disagrees"
                      | _ -> "final COMMON state disagrees")));
              (true, false)
            end)
  in
  let crashed = serial = None || par_crashed in
  {
    v_ok = unexcused = [] && (not diverged) && not crashed;
    v_races = races;
    v_unexcused = List.length unexcused;
    v_excused = List.length excused;
    v_iterations = Trace.iterations sink;
    v_diverged = diverged;
    v_crashed = crashed;
    v_diags = List.rev !diags;
  }

(** One-line verdict for table/report rendering, e.g.
    ["ok (842 iterations, 3 excused)"] or ["RACE x2, DIVERGED"]. *)
let verdict_summary (v : verdict) =
  if v.v_ok then
    Printf.sprintf "ok (%d iterations%s)" v.v_iterations
      (if v.v_excused > 0 then Printf.sprintf ", %d excused" v.v_excused
       else "")
  else
    String.concat ", "
      ((if v.v_unexcused > 0 then
          [ Printf.sprintf "RACE x%d" v.v_unexcused ]
        else [])
      @ (if v.v_diverged then [ "DIVERGED" ] else [])
      @ if v.v_crashed then [ "CRASHED" ] else [])
