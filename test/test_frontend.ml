(** Frontend tests: lexer, parser, pretty-printer, resolution, validator. *)

open Frontend
open Helpers

let check = Alcotest.check
let ci = Alcotest.(check int)
let cs = Alcotest.(check string)
let cb = Alcotest.(check bool)

(* ---------------- lexer ---------------- *)

let toks s = (List.hd (Lexer.logical_lines s)).Lexer.tokens

let test_lex_numbers () =
  (* a leading integer would lex as a statement label, so anchor with X *)
  check (Alcotest.list (Alcotest.testable Lexer.pp_token Lexer.equal_token))
    "ints and reals"
    [ Lexer.TID "X"; Lexer.TINT 42; Lexer.TREAL 3.5; Lexer.TREAL 2.0;
      Lexer.TREAL 1e-3 ]
    (toks "X 42 3.5 2.D0 1.0E-3")

let test_lex_dot_ops () =
  ci "dot ops count" 7 (List.length (toks "A .EQ. B .AND. C .LT. 1"));
  cb "eq token" true (List.mem Lexer.TEQ (toks "A .EQ. B"));
  cb "and token" true (List.mem Lexer.TAND (toks "A .AND. B"));
  cb "true literal" true (List.mem Lexer.TTRUE (toks "X = .TRUE."))

let test_lex_int_vs_real_dot () =
  (* 1 .EQ. 2 must not lex "1." as a real *)
  match toks "(1 .EQ. 2)" with
  | [ Lexer.TLP; Lexer.TINT 1; Lexer.TEQ; Lexer.TINT 2; Lexer.TRP ] -> ()
  | _ -> Alcotest.fail "1 .EQ. 2 mis-lexed"

let test_lex_strings () =
  match toks "'HELLO ''WORLD'''" with
  | [ Lexer.TSTR s ] -> cs "escaped quotes" "HELLO 'WORLD'" s
  | _ -> Alcotest.fail "string mis-lexed"

let test_lex_continuation_trailing () =
  let lines = Lexer.logical_lines "      X = 1 +&\n     2\n" in
  ci "one logical line" 1 (List.length lines)

let test_lex_continuation_leading () =
  let lines = Lexer.logical_lines "      X = 1 +\n     & 2\n      Y = 3\n" in
  ci "two logical lines" 2 (List.length lines);
  ci "merged token count" 5 (List.length (List.hd lines).Lexer.tokens)

let test_lex_labels () =
  let lines = Lexer.logical_lines " 200  CONTINUE\n" in
  check Alcotest.(option int) "label" (Some 200) (List.hd lines).Lexer.label

let test_lex_comments () =
  let lines = Lexer.logical_lines "* full comment\n      X = 1 ! trailing\n" in
  ci "comment stripped" 1 (List.length lines);
  ci "trailing comment stripped" 3 (List.length (List.hd lines).Lexer.tokens)

let test_lex_error () =
  try
    ignore (Lexer.logical_lines "X # Y");
    Alcotest.fail "bad char accepted"
  with Diag.Fatal d ->
    check Alcotest.string "message" "unexpected character '#'" d.Diag.d_message;
    (match d.Diag.d_loc with
    | Some { Diag.l_line; l_col } ->
        ci "line" 1 l_line;
        ci "col" 3 l_col
    | None -> Alcotest.fail "lex diagnostic carries no location")

(* ---------------- parser ---------------- *)

let test_parse_program_units () =
  let p = parse "      PROGRAM A\n      X = 1\n      END\n      SUBROUTINE B(Y)\n      Y = 2\n      END\n" in
  ci "two units" 2 (List.length p.Ast.p_units);
  let b = Ast.find_unit_exn p "B" in
  check Alcotest.(list string) "params" [ "Y" ] b.u_params

let test_parse_function () =
  let p = parse "      DOUBLE PRECISION FUNCTION F(X)\n      F = X * 2.0\n      END\n" in
  match (List.hd p.Ast.p_units).u_kind with
  | Ast.Function Ast.Double -> ()
  | _ -> Alcotest.fail "function kind"

let test_parse_decls () =
  let u =
    Ast.find_unit_exn
      (parse
         "      SUBROUTINE S\n      INTEGER A, B(10)\n      DOUBLE PRECISION C(5,6)\n      DIMENSION D(7)\n      END\n")
      "S"
  in
  cb "A scalar int" true (Ast.type_of_var u "A" = Ast.Integer);
  ci "B rank" 1 (List.length (Option.get (Ast.find_decl u "B")).d_dims);
  ci "C rank" 2 (List.length (Option.get (Ast.find_decl u "C")).d_dims);
  cb "D implicitly real" true (Ast.type_of_var u "D" = Ast.Real)

let test_parse_implicit_typing () =
  let u = parse_unit "      X = 1" in
  cb "I..N integer" true (Ast.type_of_var u "NSPEC" = Ast.Integer);
  cb "other real" true (Ast.type_of_var u "X2" = Ast.Real)

let test_parse_common () =
  let u =
    Ast.find_unit_exn
      (parse "      SUBROUTINE S\n      COMMON /BLK/ A, B(4)\n      A = 1\n      END\n")
      "S"
  in
  check Alcotest.(list (pair string (list string))) "commons"
    [ ("BLK", [ "A"; "B" ]) ]
    u.u_commons

let test_parse_parameter () =
  let u =
    Ast.find_unit_exn
      (parse "      SUBROUTINE S\n      PARAMETER (N = 10, M = N + 1)\n      X = N\n      END\n")
      "S"
  in
  ci "two parameter constants" 2 (List.length u.u_params_const)

let test_parse_do_block () =
  let u = parse_unit "      DO I = 1, 10\n        X = I\n      ENDDO" in
  match u.u_body with
  | [ { Ast.node = Ast.Do_loop l; _ } ] ->
      cs "index" "I" l.index;
      ci "body size" 1 (List.length l.body)
  | _ -> Alcotest.fail "do block"

let test_parse_do_labeled_shared () =
  (* Fig. 2 of the paper: two nested loops terminated by one CONTINUE *)
  let u =
    parse_unit
      "      DO 200 N = 1, 4\n        DO 200 J = 1, 5\n          X = N + J\n 200  CONTINUE"
  in
  match u.u_body with
  | [ { Ast.node = Ast.Do_loop outer; _ } ] -> (
      cs "outer" "N" outer.index;
      match outer.body with
      | { Ast.node = Ast.Do_loop inner; _ } :: _ -> cs "inner" "J" inner.index
      | _ -> Alcotest.fail "inner loop missing")
  | _ -> Alcotest.fail "outer loop missing"

let test_parse_do_step () =
  let u = parse_unit "      DO K = 10, 2, -2\n        X = K\n      ENDDO" in
  match u.u_body with
  | [ { Ast.node = Ast.Do_loop l; _ } ] ->
      check expr_testable "step" (Ast.Unop (Ast.Neg, Ast.Int_const 2)) l.step
  | _ -> Alcotest.fail "step loop"

let test_parse_if_forms () =
  let u =
    parse_unit
      "      IF (X .GT. 0) Y = 1\n      IF (X .LT. 0) THEN\n        Y = 2\n      ELSE IF (X .EQ. 0) THEN\n        Y = 3\n      ELSE\n        Y = 4\n      ENDIF"
  in
  ci "two statements" 2 (List.length u.u_body);
  match (List.nth u.u_body 1).Ast.node with
  | Ast.If (_, _, [ { Ast.node = Ast.If (_, _, e2); _ } ]) ->
      ci "final else" 1 (List.length e2)
  | _ -> Alcotest.fail "elseif chain"

let test_parse_call_stop_write () =
  let u =
    parse_unit
      "      CALL FOO(1, X)\n      CALL BAR\n      WRITE(6,*) X, Y\n      STOP 'DONE'"
  in
  match List.map (fun (s : Ast.stmt) -> s.node) u.u_body with
  | [ Ast.Call ("FOO", [ _; _ ]); Ast.Call ("BAR", []); Ast.Print [ _; _ ];
      Ast.Stop (Some "DONE") ] ->
      ()
  | _ -> Alcotest.fail "statement forms"

let test_parse_expr_precedence () =
  check expr_testable "mul before add"
    (parse_expr "A + (B * C)")
    (parse_expr "A + B * C");
  check expr_testable "pow right assoc"
    (parse_expr "A ** (B ** C)")
    (parse_expr "A ** B ** C");
  check expr_testable "unary minus"
    Ast.(Unop (Neg, Var "A"))
    (parse_expr "-A")

let test_parse_goto_rejected () =
  try
    ignore (parse "      PROGRAM T\n      GOTO 10\n      END\n");
    Alcotest.fail "GOTO accepted"
  with Diag.Fatal d -> ci "line" 2 (match d.Diag.d_loc with Some l -> l.Diag.l_line | None -> -1)

(* ---------------- pretty-printer roundtrip ---------------- *)

let roundtrip_src src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 = parse printed in
  cb
    ("roundtrip stable for " ^ String.sub src 0 (min 30 (String.length src)))
    true
    (List.for_all2
       (fun (a : Ast.program_unit) (b : Ast.program_unit) ->
         Ast.equal_body a.u_body b.u_body)
       p1.p_units p2.p_units)

let test_pretty_roundtrip_bench () =
  List.iter
    (fun (b : Perfect.Bench_def.t) -> roundtrip_src b.source)
    Perfect.Suite.all

let test_code_size () =
  let p = parse "      PROGRAM T\n      X = 1\n      END\n" in
  ci "code size" 3 (Pretty.code_size p)

(* ---------------- resolution & validation ---------------- *)

let test_resolve_function_call () =
  let p =
    parse
      "      PROGRAM T\n      X = F(3.0) + A(1)\n      END\n      REAL FUNCTION F(Y)\n      F = Y\n      END\n"
  in
  (* A is undeclared: stays an array ref; F resolves to a call *)
  let main = Ast.find_unit_exn p "T" in
  match main.u_body with
  | [ { Ast.node = Ast.Assign (_, Ast.Binop (_, Ast.Func_call ("F", _), Ast.Array_ref ("A", _))); _ } ] ->
      ()
  | _ -> Alcotest.fail "resolution"

let test_resolve_intrinsic () =
  match parse_expr "MAX(A, B)" with
  | Ast.Func_call ("MAX", _) -> ()
  | _ -> Alcotest.fail "intrinsic resolution"

let test_validate_ok () =
  List.iter
    (fun (b : Perfect.Bench_def.t) ->
      check (Alcotest.list (Alcotest.testable Validate.pp_issue (fun a b -> a = b)))
        (b.name ^ " validates") []
        (Validate.check (Perfect.Bench_def.parse b)))
    Perfect.Suite.all

let test_validate_arity () =
  let p =
    parse
      "      PROGRAM T\n      CALL S(1)\n      END\n      SUBROUTINE S(A, B)\n      A = B\n      END\n"
  in
  cb "arity issue found" true (Validate.check p <> [])

let test_validate_undefined_call () =
  let p = parse "      PROGRAM T\n      CALL NOSUCH\n      END\n" in
  cb "undefined call found" true (Validate.check p <> [])

let test_validate_common_mismatch () =
  let p =
    parse
      "      PROGRAM T\n      COMMON /B/ X, Y\n      X = 1\n      END\n      SUBROUTINE S\n      COMMON /B/ X, Z\n      X = 2\n      END\n"
  in
  cb "common mismatch found" true
    (List.exists
       (fun (i : Validate.issue) ->
         (* substring check *)
         let msg = i.message and sub = "COMMON" in
         let n = String.length msg and m = String.length sub in
         let rec go k = k + m <= n && (String.sub msg k m = sub || go (k + 1)) in
         go 0)
       (Validate.check p))

let suite =
  [
    ("lex: numbers", `Quick, test_lex_numbers);
    ("lex: dot operators", `Quick, test_lex_dot_ops);
    ("lex: int .EQ. disambiguation", `Quick, test_lex_int_vs_real_dot);
    ("lex: strings", `Quick, test_lex_strings);
    ("lex: trailing continuation", `Quick, test_lex_continuation_trailing);
    ("lex: leading continuation", `Quick, test_lex_continuation_leading);
    ("lex: labels", `Quick, test_lex_labels);
    ("lex: comments", `Quick, test_lex_comments);
    ("lex: error", `Quick, test_lex_error);
    ("parse: program units", `Quick, test_parse_program_units);
    ("parse: function", `Quick, test_parse_function);
    ("parse: declarations", `Quick, test_parse_decls);
    ("parse: implicit typing", `Quick, test_parse_implicit_typing);
    ("parse: COMMON", `Quick, test_parse_common);
    ("parse: PARAMETER", `Quick, test_parse_parameter);
    ("parse: block DO", `Quick, test_parse_do_block);
    ("parse: shared-label DO nest", `Quick, test_parse_do_labeled_shared);
    ("parse: negative step", `Quick, test_parse_do_step);
    ("parse: IF forms", `Quick, test_parse_if_forms);
    ("parse: CALL/STOP/WRITE", `Quick, test_parse_call_stop_write);
    ("parse: precedence", `Quick, test_parse_expr_precedence);
    ("parse: GOTO rejected", `Quick, test_parse_goto_rejected);
    ("pretty: roundtrip all benchmarks", `Quick, test_pretty_roundtrip_bench);
    ("pretty: code size", `Quick, test_code_size);
    ("resolve: functions vs arrays", `Quick, test_resolve_function_call);
    ("resolve: intrinsics", `Quick, test_resolve_intrinsic);
    ("validate: benchmarks clean", `Quick, test_validate_ok);
    ("validate: arity", `Quick, test_validate_arity);
    ("validate: undefined call", `Quick, test_validate_undefined_call);
    ("validate: COMMON mismatch", `Quick, test_validate_common_mismatch);
  ]
