(** Chaos-layer tests: fault-registry semantics, pipeline degradation
    under injected faults, pool self-healing, and the off-mode
    inertness/differential guarantees. *)

open Frontend

let () = Printexc.record_backtrace true

(* A plan from literal rules, no spec-string round trip. *)
let plan ?(seed = 0) rules = Fault.plan_of_rules ~seed rules
let nth site n = { Fault.r_site = site; r_trigger = Nth n; r_action = Raise }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let msrc =
  "      PROGRAM T\n\
  \      REAL A(10)\n\
  \      INTEGER I\n\
  \      DO I = 1, 10\n\
  \        A(I) = FLOAT(I)\n\
  \      ENDDO\n\
  \      DO I = 1, 10\n\
  \        A(I) = A(I) * 2.0\n\
  \      ENDDO\n\
  \      PRINT *, A(5)\n\
  \      END\n"

(* A program whose loop calls a subroutine: exercises the full ladder
   (annotation site -> conventional -> none). *)
let call_src =
  "      PROGRAM T\n\
  \      REAL A(10), B(10)\n\
  \      INTEGER I\n\
  \      DO I = 1, 10\n\
  \        A(I) = FLOAT(I)\n\
  \        B(I) = 1.0\n\
  \      ENDDO\n\
  \      DO I = 1, 10\n\
  \        CALL STEP(A, B, I)\n\
  \      ENDDO\n\
  \      PRINT *, A(5)\n\
  \      END\n\
  \      SUBROUTINE STEP(X, Y, I)\n\
  \      REAL X(10), Y(10)\n\
  \      INTEGER I\n\
  \      X(I) = X(I) + Y(I)\n\
  \      END\n"

let robust ?(mode = Core.Pipeline.Annotation_based) ?(annot = "") src =
  Core.Pipeline.run_source_robust ~mode ~annot_source:annot src

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_inert_off () =
  Alcotest.(check bool) "off" false (Fault.on ());
  (* no plan installed: every query is a cheap no-op *)
  Fault.point "any.site";
  Alcotest.(check bool) "check off" false (Fault.check "any.site");
  Alcotest.(check (float 0.0)) "stall off" 0.0 (Fault.stall "any.site")

let test_nth_fires_once () =
  let pl = plan [ nth "a.b" 2 ] in
  Fault.with_plan pl (fun () ->
      Fault.point "a.b";
      (* arrival 1: no fire *)
      (match Fault.point "a.b" with
      | () -> Alcotest.fail "arrival 2 should have fired"
      | exception Fault.Injected ("a.b", 2) -> ()
      | exception e -> raise e);
      Fault.point "a.b" (* arrival 3: Nth already consumed *));
  Alcotest.(check int) "one firing" 1 (Fault.fired_count pl);
  (* other sites never match *)
  let pl2 = plan [ nth "a.b" 1 ] in
  Fault.with_plan pl2 (fun () -> Fault.point "other.site");
  Alcotest.(check int) "no firing" 0 (Fault.fired_count pl2)

let test_every_and_prefix () =
  let pl =
    plan [ { Fault.r_site = "x.*"; r_trigger = Every 2; r_action = Raise } ]
  in
  let fired = ref 0 in
  Fault.with_plan pl (fun () ->
      for _ = 1 to 6 do
        match Fault.point "x.y" with
        | () -> ()
        | exception Fault.Injected _ -> incr fired
      done);
  Alcotest.(check int) "every 2nd of 6" 3 !fired;
  (* prefix pattern must not match an unrelated site *)
  Fault.with_plan (plan [ nth "x.*" 1 ]) (fun () -> Fault.point "y.z")

let test_prob_deterministic () =
  let count seed =
    let pl =
      plan ~seed
        [ { Fault.r_site = "*"; r_trigger = Prob 0.5; r_action = Raise } ]
    in
    let n = ref 0 in
    Fault.with_plan pl (fun () ->
        for _ = 1 to 200 do
          match Fault.point "p.q" with
          | () -> ()
          | exception Fault.Injected _ -> incr n
        done);
    !n
  in
  let a = count 7 and b = count 7 in
  Alcotest.(check int) "same seed, same schedule" a b;
  Alcotest.(check bool) "prob 0.5 fires sometimes" true (a > 20 && a < 180);
  Alcotest.(check bool) "different seed differs" true (count 7 <> count 8)

let test_parse_spec () =
  (match Fault.parse_spec "42" with
  | Ok pl ->
      Alcotest.(check int) "seed" 42 (Fault.seed pl);
      Alcotest.(check string) "spec kept" "42" (Fault.spec pl)
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "1:dependence.ddtest=3,inliner.*=*2,*=0.5%" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Fault.parse_spec "9:runtime.pool.stall=1~50" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" bad
      | Error _ -> ())
    [ ""; "x"; "1:nosuchsep"; "1:a="; "1:a=b"; "1:a=-1"; "1:a=200%" ]

let test_stall_only_at_stall_sites () =
  let pl =
    plan
      [ { Fault.r_site = "*"; r_trigger = Every 1; r_action = Stall 0.05 } ]
  in
  Fault.with_plan pl (fun () ->
      (* a stall rule must not fire at a raise-only point *)
      Fault.point "some.point";
      Alcotest.(check bool) "check ignores stall rules" false
        (Fault.check "some.point");
      Alcotest.(check (float 1e-9)) "stall site sees it" 0.05
        (Fault.stall "runtime.pool.stall"))

let test_prof_counter () =
  let p = Prof.create () in
  Prof.with_profiling p (fun () ->
      Fault.with_plan (plan [ nth "c.d" 1 ]) (fun () ->
          match Fault.point "c.d" with
          | () -> Alcotest.fail "should fire"
          | exception Fault.Injected _ -> ()));
  Alcotest.(check int) "counter ticked" 1 (Prof.snapshot p).Prof.faults_injected

(* ------------------------------------------------------------------ *)
(* Pipeline degradation ladder                                          *)
(* ------------------------------------------------------------------ *)

let degraded_sites diags =
  List.filter
    (fun (d : Diag.t) -> contains d.Diag.d_message "injected fault")
    diags

let test_ladder_annot_site () =
  (* the per-site barrier eats the fault; inlining falls back for that
     site and the run still completes (MDG has real annotations) *)
  let r =
    Fault.with_plan (plan [ nth "inliner.annot.site" 1 ]) (fun () ->
        robust ~annot:Perfect.Mdg.annotations Perfect.Mdg.source)
  in
  Alcotest.(check bool) "salvage diag names the site" true
    (degraded_sites r.res_diags <> []);
  Alcotest.(check bool) "program produced" true (r.res_program.Frontend.Ast.p_units <> [])

let test_ladder_annot_pass () =
  let r =
    Fault.with_plan (plan [ nth "inliner.annot" 1 ]) (fun () ->
        robust ~annot:Perfect.Mdg.annotations Perfect.Mdg.source)
  in
  Alcotest.(check bool) "salvaged" true (degraded_sites r.res_diags <> []);
  Alcotest.(check bool) "program produced" true (r.res_program.Frontend.Ast.p_units <> [])

let test_ladder_conventional () =
  let r =
    Fault.with_plan (plan [ nth "inliner.inline" 1 ]) (fun () ->
        robust ~mode:Core.Pipeline.Conventional call_src)
  in
  Alcotest.(check bool) "salvaged" true (degraded_sites r.res_diags <> []);
  Alcotest.(check bool) "program produced" true (r.res_program.Frontend.Ast.p_units <> [])

let test_ladder_parallelizer () =
  let r =
    Fault.with_plan (plan [ nth "parallelizer.unit" 1 ]) (fun () ->
        robust ~mode:Core.Pipeline.No_inlining msrc)
  in
  Alcotest.(check bool) "salvaged" true (degraded_sites r.res_diags <> []);
  (* the faulted unit is left serial *)
  Alcotest.(check (list int)) "no directives" [] r.res_marked

let test_salvage_carries_backtrace () =
  let r =
    Fault.with_plan (plan [ nth "parallelizer.unit" 1 ]) (fun () ->
        robust ~mode:Core.Pipeline.No_inlining msrc)
  in
  match degraded_sites r.res_diags with
  | [] -> Alcotest.fail "expected a salvage diagnostic"
  | d :: _ ->
      Alcotest.(check bool) "backtrace recorded" true
        (match d.Diag.d_backtrace with Some s -> String.length s > 0 | None -> false)

let test_parser_fault_is_structured () =
  (* frontend faults take the Diag channel: the robust parser drops the
     statement/unit and the pipeline still returns *)
  let r =
    Fault.with_plan (plan [ nth "frontend.parser.stmt" 1 ]) (fun () ->
        robust ~mode:Core.Pipeline.No_inlining msrc)
  in
  Alcotest.(check bool) "parse diag present" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.d_code = Diag.Parse)
       r.res_diags)

(* ------------------------------------------------------------------ *)
(* Pool self-healing                                                    *)
(* ------------------------------------------------------------------ *)

let test_shutdown_idempotent () =
  let p = Runtime.Pool.create 2 in
  Runtime.Pool.shutdown p;
  Runtime.Pool.shutdown p

let test_parallel_for_after_shutdown () =
  let p = Runtime.Pool.create 2 in
  Runtime.Pool.shutdown p;
  match Runtime.Pool.parallel_for p ~chunks:2 (fun _ -> ()) with
  | () -> Alcotest.fail "expected Diag.Fatal on a shut-down pool"
  | exception Diag.Fatal d ->
      Alcotest.(check bool) "exec code" true (d.Diag.d_code = Diag.Exec)

let test_retry_transient () =
  let p = Runtime.Pool.create 1 in
  let attempts = Array.make 4 0 in
  Runtime.Pool.parallel_for p ~retries:2 ~backoff_s:0.001
    ~transient:(fun e -> e = Not_found)
    ~chunks:4
    (fun c ->
      attempts.(c) <- attempts.(c) + 1;
      if c = 2 && attempts.(c) = 1 then raise Not_found);
  Alcotest.(check int) "chunk re-ran" 2 attempts.(2);
  Alcotest.(check int) "retry counted" 1 (Runtime.Pool.stats p).retries;
  Runtime.Pool.shutdown p

let test_nontransient_reported () =
  let p = Runtime.Pool.create 2 in
  let events = ref [] in
  Runtime.Pool.parallel_for p ~retries:3
    ~report:(fun evs -> events := evs)
    ~chunks:3
    (fun c -> if c = 1 then failwith "boom");
  let failed =
    List.filter_map
      (function
        | Runtime.Pool.Chunk_failed { chunk; backtrace; _ } ->
            Some (chunk, backtrace)
        | _ -> None)
      !events
  in
  (match failed with
  | [ (1, _) ] -> ()
  | _ -> Alcotest.fail "expected exactly chunk 1 to fail");
  Alcotest.(check int) "no retries for non-transients" 0
    (Runtime.Pool.stats p).retries;
  Runtime.Pool.shutdown p

let test_worker_death_respawn () =
  let p = Runtime.Pool.create 3 in
  let pl = plan [ nth "runtime.pool.worker" 1 ] in
  Fault.with_plan pl (fun () ->
      let seen = Array.make 8 false in
      (* slow chunks so the worker domains actually wake up and take the
         job (the first to arrive dies at the injected point) *)
      Runtime.Pool.parallel_for p ~chunks:8 (fun c ->
          Unix.sleepf 0.01;
          seen.(c) <- true);
      Alcotest.(check bool) "all chunks ran" true
        (Array.for_all Fun.id seen));
  (* the killed worker is respawned (lazily, at the next dispatch) *)
  let seen2 = Array.make 8 false in
  Runtime.Pool.parallel_for p ~chunks:8 (fun c -> seen2.(c) <- true);
  Alcotest.(check bool) "pool still works" true (Array.for_all Fun.id seen2);
  let st = Runtime.Pool.stats p in
  Alcotest.(check bool) "death recorded" true (st.deaths >= 1);
  Alcotest.(check bool) "respawn recorded" true (st.respawns >= st.deaths);
  Runtime.Pool.shutdown p

let test_deadline_watchdog () =
  let p = Runtime.Pool.create 2 in
  let pl =
    plan
      [
        {
          Fault.r_site = "runtime.pool.stall";
          r_trigger = Nth 1;
          r_action = Stall 0.4;
        };
      ]
  in
  let events = ref [] in
  Fault.with_plan pl (fun () ->
      Runtime.Pool.parallel_for p ~deadline_s:0.05
        ~report:(fun evs -> events := evs)
        ~chunks:2
        (fun _ -> ()));
  Alcotest.(check bool) "deadline missed" true
    (List.exists
       (function Runtime.Pool.Deadline_missed _ -> true | _ -> false)
       !events);
  Alcotest.(check bool) "miss counted" true
    ((Runtime.Pool.stats p).deadline_misses >= 1);
  Runtime.Pool.shutdown p

let test_deadline_raises_timeout_without_report () =
  let p = Runtime.Pool.create 2 in
  let pl =
    plan
      [
        {
          Fault.r_site = "runtime.pool.stall";
          r_trigger = Nth 1;
          r_action = Stall 0.4;
        };
      ]
  in
  (match
     Fault.with_plan pl (fun () ->
         Runtime.Pool.parallel_for p ~deadline_s:0.05 ~chunks:2 (fun _ -> ()))
   with
  | () -> Alcotest.fail "expected a timeout"
  | exception Diag.Fatal d ->
      Alcotest.(check bool) "timeout code" true (d.Diag.d_code = Diag.Timeout));
  Runtime.Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Suite driver under chaos                                             *)
(* ------------------------------------------------------------------ *)

let small_benches = [ Perfect.Mdg.bench; Perfect.Trfd.bench ]

let test_driver_degrades_one_point () =
  (* a lexer fault during one task's parse kills that point only *)
  let pl = plan [ nth "frontend.lexer.line" 30 ] in
  let points =
    Fault.with_plan pl (fun () ->
        Perfect.Driver.run_suite ~benches:small_benches ())
  in
  Alcotest.(check int) "full matrix" 8 (List.length points);
  let crashed =
    List.filter (fun (p : Perfect.Driver.point) -> p.pt_crashed) points
  in
  Alcotest.(check int) "exactly one point lost" 1 (List.length crashed);
  let p = List.hd crashed in
  Alcotest.(check bool) "diag names the site and owning unit" true
    (List.exists
       (fun (d : Diag.t) ->
         contains d.Diag.d_message "frontend.lexer.line"
         && d.Diag.d_unit = Some p.pt_bench)
       p.pt_diags);
  Alcotest.(check bool) "exit contract" true
    (Perfect.Driver.exit_status points <= 1)

let test_driver_pool_retry_heals_chunk () =
  (* an injected chunk fault is transient by default: with retries the
     point completes clean aside from the retry counter *)
  let pl = plan [ nth "runtime.pool.chunk" 2 ] in
  let points =
    Fault.with_plan pl (fun () ->
        Perfect.Driver.run_suite ~jobs:2 ~retries:2 ~benches:small_benches ())
  in
  Alcotest.(check int) "full matrix" 8 (List.length points);
  Alcotest.(check bool) "no point crashed" true
    (List.for_all (fun (p : Perfect.Driver.point) -> not p.pt_crashed) points);
  Alcotest.(check int) "one retry recorded" 1
    (List.fold_left
       (fun a (p : Perfect.Driver.point) -> a + p.pt_retries)
       0 points)

(* ------------------------------------------------------------------ *)
(* Off-mode differential                                                *)
(* ------------------------------------------------------------------ *)

let fingerprint (points : Perfect.Driver.point list) =
  List.map
    (fun (p : Perfect.Driver.point) ->
      ( p.pt_bench,
        Core.Pipeline.mode_name p.pt_config,
        (p.pt_par, p.pt_loss, p.pt_extra, p.pt_size),
        p.pt_counters.Prof.dep_tests_run,
        p.pt_counters.Prof.faults_injected,
        List.length p.pt_verdicts ))
    points

let test_armed_empty_equals_off () =
  (* arming the registry with a schedule that never fires must not
     perturb any observable result *)
  let off = Perfect.Driver.run_suite ~benches:small_benches () in
  let never = plan [ nth "dependence.ddtest" 999_999_999 ] in
  let armed =
    Fault.with_plan never (fun () ->
        Perfect.Driver.run_suite ~benches:small_benches ())
  in
  Alcotest.(check bool) "identical fingerprints" true
    (fingerprint off = fingerprint armed);
  Alcotest.(check bool) "armed-but-inert fired nothing" true
    (Fault.fired_count never = 0);
  (* and the explain-diff attribution is byte-identical *)
  let js pts =
    Frontend.Json.to_string (Perfect.Explain.to_json (Perfect.Driver.explain pts))
  in
  Alcotest.(check string) "explain-diff identical" (js off) (js armed)

let suite =
  [
    Alcotest.test_case "off: registry is inert" `Quick test_inert_off;
    Alcotest.test_case "nth trigger fires exactly once" `Quick
      test_nth_fires_once;
    Alcotest.test_case "every trigger + prefix match" `Quick
      test_every_and_prefix;
    Alcotest.test_case "probability schedule is seed-deterministic" `Quick
      test_prob_deterministic;
    Alcotest.test_case "spec grammar parses and rejects" `Quick
      test_parse_spec;
    Alcotest.test_case "stall rules only bind stall-capable sites" `Quick
      test_stall_only_at_stall_sites;
    Alcotest.test_case "faults_injected counter ticks" `Quick
      test_prof_counter;
    Alcotest.test_case "ladder: annotation site falls back" `Quick
      test_ladder_annot_site;
    Alcotest.test_case "ladder: annotation pass falls back" `Quick
      test_ladder_annot_pass;
    Alcotest.test_case "ladder: conventional inliner falls back" `Quick
      test_ladder_conventional;
    Alcotest.test_case "ladder: parallelizer leaves unit serial" `Quick
      test_ladder_parallelizer;
    Alcotest.test_case "salvage diagnostics carry backtraces" `Quick
      test_salvage_carries_backtrace;
    Alcotest.test_case "parser faults stay on the Diag channel" `Quick
      test_parser_fault_is_structured;
    Alcotest.test_case "pool: shutdown is idempotent" `Quick
      test_shutdown_idempotent;
    Alcotest.test_case "pool: parallel_for after shutdown is structured"
      `Quick test_parallel_for_after_shutdown;
    Alcotest.test_case "pool: transient failures retry" `Quick
      test_retry_transient;
    Alcotest.test_case "pool: non-transients reported with backtrace" `Quick
      test_nontransient_reported;
    Alcotest.test_case "pool: killed worker is respawned" `Quick
      test_worker_death_respawn;
    Alcotest.test_case "pool: watchdog reports missed deadline" `Quick
      test_deadline_watchdog;
    Alcotest.test_case "pool: deadline raises structured timeout" `Quick
      test_deadline_raises_timeout_without_report;
    Alcotest.test_case "driver: fault degrades one point" `Quick
      test_driver_degrades_one_point;
    Alcotest.test_case "driver: pool retry heals a chunk" `Quick
      test_driver_pool_retry_heals_chunk;
    Alcotest.test_case "armed-but-empty schedule is a no-op" `Quick
      test_armed_empty_equals_off;
  ]
