(* Test entry point: one alcotest runner over all suites. *)

let () =
  Alcotest.run "parinline"
    [
      ("frontend", Test_frontend.suite);
      ("diag", Test_diag.suite);
      ("analysis", Test_analysis.suite);
      ("dependence", Test_dependence.suite);
      ("exact", Test_exact.suite);
      ("inliner", Test_inliner.suite);
      ("core", Test_core.suite);
      ("runtime", Test_runtime.suite);
      ("perfect", Test_perfect.suite);
      ("soundness", Test_soundness.suite);
      ("state", Test_state.suite);
      ("experiment", Test_experiment.suite);
      ("driver", Test_driver.suite);
      ("explain", Test_explain.suite);
      ("checker", Test_checker.suite);
      ("perf", Test_perf.suite);
      ("planner", Test_planner.suite);
      ("chaos", Test_chaos.suite);
      ("server", Test_server.suite);
      ("metrics", Test_metrics.suite);
      ("fuzz", Test_fuzz.suite);
    ]
