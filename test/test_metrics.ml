(** Tests for the telemetry registry: histogram merge associativity
    (including across real domain shards), quantile monotonicity, the
    zero-cost-when-off contract (an uninstalled registry leaves
    pipeline output byte-identical), the [metrics] serve op's NDJSON
    round-trip, and fault injections surfacing as registry counters. *)

module Json = Frontend.Json
module Metrics = Core.Metrics
module Serve = Server.Serve

let cb = Alcotest.(check bool)
let ci = Alcotest.(check int)
let cs = Alcotest.(check string)

let contains_sub (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* Run [f] with a fresh registry armed, then disarm it no matter what. *)
let with_registry (f : Metrics.t -> 'a) : 'a =
  let r = Metrics.create () in
  Metrics.install r;
  Fun.protect ~finally:(fun () -> Metrics.uninstall r) (fun () -> f r)

(* Pull the merged histogram snapshot for [family] out of a registry
   snapshot; fails the test when the family is absent. *)
let hist_of ?(labels = []) family (snap : Metrics.snapshot) : Metrics.hsnap =
  let rec find = function
    | [] -> Alcotest.failf "histogram %s not in snapshot" family
    | ((m : Metrics.meta), Metrics.S_hist h) :: _
      when m.m_family = family && m.m_labels = labels ->
        h
    | _ :: tl -> find tl
  in
  find snap

let counter_of ?(labels = []) family (snap : Metrics.snapshot) : int =
  let rec find = function
    | [] -> Alcotest.failf "counter %s not in snapshot" family
    | ((m : Metrics.meta), Metrics.S_counter n) :: _
      when m.m_family = family && m.m_labels = labels ->
        n
    | _ :: tl -> find tl
  in
  find snap

(* An hsnap built by observing [values] into a throwaway registry —
   the only public way to construct one, which is the point: tests go
   through the same shard/merge machinery production does. *)
let hsnap_of_values values : Metrics.hsnap =
  with_registry @@ fun r ->
  let h = Metrics.histogram "parinline_test_assoc_seconds" in
  List.iter (Metrics.observe_ns h) values;
  hist_of "parinline_test_assoc_seconds" (Metrics.snapshot r)

(* ---------------- merge algebra ---------------- *)

let test_merge_associativity () =
  let a = hsnap_of_values [ 3; 17; 950; 12_000 ] in
  let b = hsnap_of_values [ 1; 1; 2_000_000; 40 ] in
  let c = hsnap_of_values [ 7; 999_999_999; 64; 64; 64 ] in
  let open Metrics in
  cb "associative" true
    (merge_hist (merge_hist a b) c = merge_hist a (merge_hist b c));
  cb "commutative" true (merge_hist a b = merge_hist b a);
  cb "empty is left identity" true (merge_hist empty_hsnap a = a);
  cb "empty is right identity" true (merge_hist a empty_hsnap = a);
  let ab = merge_hist a b in
  ci "counts add" (a.hs_count + b.hs_count) ab.hs_count;
  ci "sums add exactly" (a.hs_sum_ns + b.hs_sum_ns) ab.hs_sum_ns;
  ci "min unions" 1 ab.hs_min_ns;
  ci "max unions" 2_000_000 ab.hs_max_ns

(* The same observations spread across three real domains must
   snapshot to exactly what a single domain records: the per-domain
   shards merge without loss or double counting. *)
let test_merge_across_domain_shards () =
  let chunks =
    [ [ 5; 80; 3_000 ]; [ 1_000_000; 12; 12 ]; [ 700; 700; 99_000_000 ] ]
  in
  let sharded =
    with_registry @@ fun r ->
    let h = Metrics.histogram "parinline_test_shard_seconds" in
    let ds =
      List.map
        (fun vs -> Domain.spawn (fun () -> List.iter (Metrics.observe_ns h) vs))
        chunks
    in
    List.iter Domain.join ds;
    hist_of "parinline_test_shard_seconds" (Metrics.snapshot r)
  in
  let single = hsnap_of_values (List.concat chunks) in
  (* families differ but the payloads must not *)
  cb "sharded = single-domain" true (sharded = single);
  ci "all nine observations kept" 9 sharded.Metrics.hs_count

(* ---------------- quantiles ---------------- *)

let test_quantile_monotone () =
  (* deterministic LCG spread over six orders of magnitude *)
  let values =
    let x = ref 12345 in
    List.init 500 (fun _ ->
        x := ((!x * 1103515245) + 12121) land 0x3FFFFFFF;
        1 + (!x mod 50_000_000))
  in
  let h = hsnap_of_values values in
  let qs = List.init 101 (fun i -> float_of_int i /. 100.0) in
  let ests = List.map (Metrics.quantile h) qs in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  cb "monotone in q" true (monotone ests);
  let lo = float_of_int h.Metrics.hs_min_ns
  and hi = float_of_int h.Metrics.hs_max_ns in
  cb "clamped to observed range" true
    (List.for_all (fun e -> e >= lo && e <= hi) ests);
  cb "p0 is the min" true (Metrics.quantile h 0.0 = lo);
  cb "p100 is the max" true (Metrics.quantile h 1.0 = hi);
  (* the estimate must land within one log-bucket (<= 12.5% relative
     error) of the true median of a known distribution *)
  let exact = hsnap_of_values (List.init 101 (fun i -> 1000 + (i * 10))) in
  let est = Metrics.quantile exact 0.5 in
  cb "median within bucket resolution" true
    (abs_float (est -. 1500.0) /. 1500.0 < 0.125);
  cs "empty quantile is 0" "0."
    (string_of_float (Metrics.quantile Metrics.empty_hsnap 0.99))

(* ---------------- zero-cost when off ---------------- *)

let src =
  "      PROGRAM MAIN\n\
  \      DIMENSION A(100), B(100)\n\
  \      DO I = 1, 100\n\
  \        A(I) = I\n\
  \      ENDDO\n\
  \      DO K = 1, 10\n\
  \        DO J = 1, 10\n\
  \          B(J + 10*K - 10) = A(J)\n\
  \        ENDDO\n\
  \      ENDDO\n\
  \      WRITE(6,*) B(5)\n\
  \      END\n"

let oneshot () =
  Perfect.Driver.reset_gensyms ();
  let r =
    Core.Pipeline.run_source_robust ~mode:Core.Pipeline.Annotation_based
      ~annot_source:"" src
  in
  Json.to_string
    (Json.List
       (List.map
          (fun (rep : Parallelizer.Parallelize.loop_report) ->
            Parallelizer.Verdict.to_json rep.rep_verdict)
          r.Core.Pipeline.res_reports))

let test_off_is_byte_identical () =
  cb "registry starts disarmed" false (Metrics.on ());
  let off = oneshot () in
  let on_ =
    with_registry @@ fun r ->
    cb "registry armed" true (Metrics.on ());
    let out = oneshot () in
    (* the run was actually observed, not silently skipped *)
    cb "armed run recorded pass timings" true
      (List.exists
         (fun ((m : Metrics.meta), _) ->
           m.m_family = "parinline_pass_duration_seconds")
         (Metrics.snapshot r));
    out
  in
  cs "verdict bytes identical with metrics on and off" off on_;
  cb "registry disarmed again" false (Metrics.on ());
  cs "and a second off run still agrees" off (oneshot ())

(* ---------------- the metrics serve op ---------------- *)

let test_metrics_op_roundtrip () =
  let t, _ = Serve.create () in
  Fun.protect ~finally:(fun () -> ignore (Serve.drain t))
  @@ fun () ->
  let send j =
    match Json.parse (Serve.handle_line t (Json.to_string j)) with
    | Ok r -> r
    | Error e -> Alcotest.failf "unparseable response: %s" e
  in
  let r =
    send (Serve.request ~op:"analyze" ~mode:"annotation" ~source:src ())
  in
  cb "analyze ok" true (Json.to_bool (Json.member "ok" r));
  let r = send (Serve.request ~id:42 ~op:"metrics" ()) in
  cb "metrics ok" true (Json.to_bool (Json.member "ok" r));
  ci "id echoed" 42 (Json.to_int (Json.member "id" r));
  cb "request_id stamped" true
    (match Json.member "request_id" r with
    | Json.Str s -> String.length s > 1 && s.[0] = 'r'
    | _ -> false);
  let expo = Json.to_str (Json.member "exposition" r) in
  cb "exposition has TYPE lines" true
    (contains_sub expo "# TYPE parinline_requests_total counter");
  cb "exposition has request histogram buckets" true
    (contains_sub expo "parinline_request_duration_seconds_bucket{");
  let m = Json.member "metrics" r in
  cb "counters object present" true (Json.member "counters" m <> Json.Null);
  cb "histograms carry the request family" true
    (match Json.member "histograms" m with
    | Json.Obj kvs ->
        List.exists
          (fun (k, v) ->
            let prefix = "parinline_request_duration_seconds{" in
            String.length k >= String.length prefix
            && String.sub k 0 (String.length prefix) = prefix
            && Json.to_int (Json.member "count" v) >= 1
            && Json.member "p99_ms" v <> Json.Null)
          kvs
    | _ -> false);
  (* the scrape itself must round-trip through one NDJSON line *)
  let line = Json.to_string (Serve.request ~id:43 ~op:"metrics" ()) in
  cb "one-line request" true (not (String.contains line '\n'));
  cb "one-line response" true
    (not (String.contains (Serve.handle_line t line) '\n'))

(* ---------------- the server.log chaos site ---------------- *)

(* A poisoned request-log write costs that one log line, never the
   response: the daemon degrades to a Diag warning on stderr and keeps
   both serving and logging. *)
let test_log_fault_degrades () =
  let log = Filename.temp_file "parinline-log-fault" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
  @@ fun () ->
  (match Core.Fault.parse_spec "7:server.log=2" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok plan ->
      Core.Fault.with_plan plan (fun () ->
          (* arrival 1 is the start event; arrival 2 — the first
             analyze's log line — trips the fault *)
          let t, _ = Serve.create ~log_file:log () in
          Fun.protect ~finally:(fun () -> ignore (Serve.drain t))
          @@ fun () ->
          let send j =
            match Json.parse (Serve.handle_line t (Json.to_string j)) with
            | Ok r -> r
            | Error e -> Alcotest.failf "unparseable response: %s" e
          in
          let r1 =
            send (Serve.request ~op:"analyze" ~mode:"annotation" ~source:src ())
          in
          cb "response survives the poisoned log write" true
            (Json.to_bool (Json.member "ok" r1));
          let r2 =
            send (Serve.request ~op:"analyze" ~mode:"annotation" ~source:src ())
          in
          cb "daemon keeps serving" true (Json.to_bool (Json.member "ok" r2));
          cb "warm hit after the drop" true
            (Json.to_bool (Json.member "cached" r2))));
  let lines =
    In_channel.with_open_bin log In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  cb "start event logged before the fault" true
    (List.exists (fun l -> contains_sub l "\"event\":\"start\"") lines);
  ci "exactly one analyze line survives (the poisoned one dropped)" 1
    (List.length (List.filter (fun l -> contains_sub l "\"op\":\"analyze\"") lines));
  cb "the surviving analyze line is the warm hit" true
    (List.exists
       (fun l ->
         contains_sub l "\"op\":\"analyze\"" && contains_sub l "\"cache\":\"hit\"")
       lines)

(* ---------------- faults surface as counters ---------------- *)

let test_faults_visible_in_registry () =
  with_registry @@ fun r ->
  Core.Prof.tick_fault_injected ();
  Core.Prof.tick_fault_injected ();
  let n = counter_of "parinline_faults_injected_total" (Metrics.snapshot r) in
  ci "two injections counted" 2 n;
  (* and the exposition renders them as a counter family *)
  let expo = Metrics.to_prometheus (Metrics.snapshot r) in
  cb "rendered" true
    (contains_sub expo
       "# TYPE parinline_faults_injected_total counter\n\
        parinline_faults_injected_total 2")

let suite =
  [
    Alcotest.test_case "merge: associative, commutative, identity" `Quick
      test_merge_associativity;
    Alcotest.test_case "merge: domain shards = single domain" `Quick
      test_merge_across_domain_shards;
    Alcotest.test_case "quantile: monotone and clamped" `Quick
      test_quantile_monotone;
    Alcotest.test_case "off: pipeline output byte-identical" `Quick
      test_off_is_byte_identical;
    Alcotest.test_case "serve: metrics op round-trips" `Quick
      test_metrics_op_roundtrip;
    Alcotest.test_case "server.log fault drops the line, not the response"
      `Quick test_log_fault_degrades;
    Alcotest.test_case "faults: injections visible as counters" `Quick
      test_faults_visible_in_registry;
  ]
